// Message layer: latency bounds, Table-1 loss probabilities, crash
// semantics, accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "net/latency.h"
#include "net/loss.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace kadsim::net {
namespace {

TEST(LossModel, Table1OneWayProbabilities) {
    // Paper Table 1: none 0%, low 2.5%, medium 13.4%, high 29.3% (one-way).
    EXPECT_DOUBLE_EQ(LossModel::from_level(LossLevel::kNone).p_one_way, 0.0);
    EXPECT_NEAR(LossModel::from_level(LossLevel::kLow).p_one_way, 0.025, 0.0006);
    EXPECT_NEAR(LossModel::from_level(LossLevel::kMedium).p_one_way, 0.134, 0.0006);
    EXPECT_NEAR(LossModel::from_level(LossLevel::kHigh).p_one_way, 0.293, 0.0006);
}

TEST(LossModel, TwoWayRoundTrips) {
    for (const double p2 : {0.0, 0.05, 0.25, 0.50}) {
        EXPECT_NEAR(LossModel::from_two_way(p2).p_two_way(), p2, 1e-12);
    }
}

TEST(LossLevel, Names) {
    EXPECT_EQ(to_string(LossLevel::kNone), "none");
    EXPECT_EQ(to_string(LossLevel::kHigh), "high");
}

TEST(LatencyModel, SamplesWithinBounds) {
    sim::Simulator sim(3);
    auto rng = sim.split_rng();
    LatencyModel lat{10, 100};
    for (int i = 0; i < 2000; ++i) {
        const auto d = lat.sample(rng);
        ASSERT_GE(d, 10);
        ASSERT_LE(d, 100);
    }
    LatencyModel fixed{40, 40};
    EXPECT_EQ(fixed.sample(rng), 40);
}

TEST(Network, DeliversWithLatencyInBounds) {
    sim::Simulator sim(5);
    Network net(sim, LatencyModel{10, 100}, LossModel{});
    const Address a = net.register_endpoint();
    const Address b = net.register_endpoint();
    sim::SimTime delivered_at = -1;
    net.transmit(a, b, [&] { delivered_at = sim.now(); });
    sim.run_until(sim::seconds(1));
    ASSERT_GE(delivered_at, 10);
    ASSERT_LE(delivered_at, 100);
    EXPECT_EQ(net.counters().delivered, 1u);
}

TEST(Network, MessageToCrashedNodeIsDropped) {
    sim::Simulator sim(6);
    Network net(sim, LatencyModel{10, 10}, LossModel{});
    const Address a = net.register_endpoint();
    const Address b = net.register_endpoint();
    net.set_up(b, false);
    bool delivered = false;
    net.transmit(a, b, [&delivered] { delivered = true; });
    sim.run_until(sim::seconds(1));
    EXPECT_FALSE(delivered);
    EXPECT_EQ(net.counters().dropped_dead, 1u);
}

TEST(Network, CrashDuringFlightDropsMessage) {
    sim::Simulator sim(7);
    Network net(sim, LatencyModel{50, 50}, LossModel{});
    const Address a = net.register_endpoint();
    const Address b = net.register_endpoint();
    bool delivered = false;
    net.transmit(a, b, [&delivered] { delivered = true; });
    sim.schedule_at(20, [&net, b] { net.set_up(b, false); });  // crash mid-flight
    sim.run_until(sim::seconds(1));
    EXPECT_FALSE(delivered);
    EXPECT_EQ(net.counters().dropped_dead, 1u);
}

TEST(Network, CrashedSenderCannotTransmit) {
    sim::Simulator sim(8);
    Network net(sim, LatencyModel{10, 10}, LossModel{});
    const Address a = net.register_endpoint();
    const Address b = net.register_endpoint();
    net.set_up(a, false);
    bool delivered = false;
    net.transmit(a, b, [&delivered] { delivered = true; });
    sim.run_until(sim::seconds(1));
    EXPECT_FALSE(delivered);
}

struct LossCase {
    LossLevel level;
    double expected_one_way;
};

class NetworkLossTest : public ::testing::TestWithParam<LossCase> {};

TEST_P(NetworkLossTest, EmpiricalLossMatchesTable1) {
    const auto param = GetParam();
    sim::Simulator sim(9);
    Network net(sim, LatencyModel{1, 1}, LossModel::from_level(param.level));
    const Address a = net.register_endpoint();
    const Address b = net.register_endpoint();
    const int trials = 40000;
    int delivered = 0;
    for (int i = 0; i < trials; ++i) {
        net.transmit(a, b, [&delivered] { ++delivered; });
    }
    sim.run_until(sim::seconds(1));
    const double observed_loss = 1.0 - static_cast<double>(delivered) / trials;
    EXPECT_NEAR(observed_loss, param.expected_one_way, 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, NetworkLossTest,
    ::testing::Values(LossCase{LossLevel::kNone, 0.0},
                      LossCase{LossLevel::kLow, 0.025},
                      LossCase{LossLevel::kMedium, 0.134},
                      LossCase{LossLevel::kHigh, 0.293}));

TEST(Network, CountersAddUp) {
    sim::Simulator sim(10);
    Network net(sim, LatencyModel{1, 1}, LossModel::from_two_way(0.25));
    const Address a = net.register_endpoint();
    const Address b = net.register_endpoint();
    const int trials = 10000;
    for (int i = 0; i < trials; ++i) net.transmit(a, b, [] {});
    sim.run_until(sim::seconds(1));
    const auto& c = net.counters();
    EXPECT_EQ(c.sent, static_cast<std::uint64_t>(trials));
    EXPECT_EQ(c.delivered + c.dropped_loss + c.dropped_dead, c.sent);
    EXPECT_GT(c.dropped_loss, 0u);
}

}  // namespace
}  // namespace kadsim::net
