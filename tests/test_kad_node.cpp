// KademliaNode protocol behaviour on small hand-built networks: join,
// lookup correctness against a global oracle, dissemination/retrieval,
// staleness eviction, crash semantics, ping-evict policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "kad/node.h"
#include "kad/node_arena.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace kadsim::kad {
namespace {

class MiniNetwork {
public:
    explicit MiniNetwork(KademliaConfig config, std::uint64_t seed = 11,
                         net::LossModel loss = {})
        : config_(config),
          sim_(seed),
          net_(sim_, net::LatencyModel{5, 25}, loss),
          arena_(config_, sim_, net_) {}

    KademliaNode* add_node(std::optional<std::size_t> bootstrap_index) {
        const net::Address address = net_.register_endpoint();
        auto id = NodeId::hash_of("mini-node-" + std::to_string(address), config_.b);
        KademliaNode* node = arena_.add_node(id, address);
        std::optional<Contact> bootstrap;
        if (bootstrap_index.has_value()) {
            bootstrap = arena_.node_at(*bootstrap_index)->contact();
        }
        node->join(bootstrap);
        return node;
    }

    /// Builds `count` nodes, each bootstrapping from node 0, spaced 2 s apart.
    void build(int count) {
        add_node(std::nullopt);
        for (int i = 1; i < count; ++i) {
            run_for(sim::seconds(2));
            add_node(0);
        }
        run_for(sim::minutes(2));  // settle
    }

    void run_for(sim::SimTime d) { sim_.run_until(sim_.now() + d); }

    [[nodiscard]] KademliaNode& node(std::size_t i) {
        return *arena_.node_at(static_cast<net::Address>(i));
    }
    [[nodiscard]] std::size_t size() const { return arena_.size(); }
    [[nodiscard]] sim::Simulator& sim() { return sim_; }
    [[nodiscard]] net::Network& network() { return net_; }

    /// Global oracle: the k live node-ids closest to `target`.
    [[nodiscard]] std::vector<NodeId> global_closest(const NodeId& target,
                                                     std::size_t k) const {
        std::vector<NodeId> ids;
        for (net::Address a = 0; a < arena_.size(); ++a) {
            if (arena_.alive(a)) ids.push_back(arena_.id_of(a));
        }
        std::sort(ids.begin(), ids.end(), [&target](const NodeId& a, const NodeId& b) {
            return target.distance_to(a) < target.distance_to(b);
        });
        ids.resize(std::min(k, ids.size()));
        return ids;
    }

private:
    KademliaConfig config_;
    sim::Simulator sim_;
    net::Network net_;
    NodeArena arena_;
};

KademliaConfig small_config(int k = 8, int s = 2) {
    KademliaConfig cfg;
    cfg.k = k;
    cfg.alpha = 3;
    cfg.s = s;
    return cfg;
}

TEST(KademliaNode, JoinPopulatesRoutingTables) {
    MiniNetwork mini(small_config());
    mini.build(20);
    for (std::size_t i = 0; i < mini.size(); ++i) {
        EXPECT_GT(mini.node(i).routing_table().size(), 0u) << "node " << i;
        EXPECT_TRUE(mini.node(i).routing_table().check_invariants());
    }
}

TEST(KademliaNode, LookupFindsGloballyClosestNodes) {
    MiniNetwork mini(small_config(8));
    mini.build(24);
    mini.run_for(sim::minutes(5));

    const NodeId target = NodeId::hash_of("lookup-target", 160);
    std::vector<Contact> result;
    bool done = false;
    mini.node(3).lookup_node(target, [&](const NodeId&, bool,
                                         const std::vector<Contact>& closest) {
        result = closest;
        done = true;
    });
    mini.run_for(sim::minutes(2));
    ASSERT_TRUE(done);
    ASSERT_FALSE(result.empty());

    // With the paper's no-progress termination a lookup contacts fewer than k
    // nodes once it stops getting closer, but it always reaches the globally
    // closest node, and its results come back in true distance order.
    const auto oracle = mini.global_closest(target, 8);
    EXPECT_EQ(result[0].id, oracle[0]);
    for (std::size_t i = 1; i < result.size(); ++i) {
        EXPECT_LT(target.distance_to(result[i - 1].id),
                  target.distance_to(result[i].id));
    }
}

TEST(KademliaNode, DisseminateThenFindValue) {
    MiniNetwork mini(small_config(6));
    mini.build(20);

    const NodeId key = NodeId::hash_of("object-1", 160);
    mini.node(2).disseminate(key, 4242, {});
    mini.run_for(sim::minutes(2));

    // Replication: at least one full α-wave of nodes stores the object, and
    // crucially the *globally closest* node to the key holds a replica —
    // that is what makes FIND_VALUE (which converges toward the key) succeed.
    int stored = 0;
    for (std::size_t i = 0; i < mini.size(); ++i) {
        if (mini.node(i).stored_value(key).has_value()) ++stored;
    }
    EXPECT_GE(stored, 3);
    const auto closest_id = mini.global_closest(key, 1).at(0);
    for (std::size_t i = 0; i < mini.size(); ++i) {
        if (mini.node(i).id() == closest_id) {
            EXPECT_TRUE(mini.node(i).stored_value(key).has_value());
        }
    }

    bool found = false;
    mini.node(15).lookup_value(key, [&](const NodeId&, bool value_found,
                                        const std::vector<Contact>&) {
        found = value_found;
    });
    mini.run_for(sim::minutes(2));
    EXPECT_TRUE(found);
}

TEST(KademliaNode, FindValueForUnknownKeyReportsNotFound) {
    MiniNetwork mini(small_config(6));
    mini.build(12);
    bool done = false;
    bool found = true;
    mini.node(1).lookup_value(NodeId::hash_of("never-stored", 160),
                              [&](const NodeId&, bool value_found,
                                  const std::vector<Contact>&) {
                                  done = true;
                                  found = value_found;
                              });
    mini.run_for(sim::minutes(2));
    EXPECT_TRUE(done);
    EXPECT_FALSE(found);
}

TEST(KademliaNode, StoredValuesExpire) {
    KademliaConfig cfg = small_config(6);
    cfg.storage_expiry = sim::minutes(5);
    MiniNetwork mini(cfg);
    mini.build(10);
    const NodeId key = NodeId::hash_of("ephemeral", 160);
    mini.node(0).disseminate(key, 7, {});
    mini.run_for(sim::minutes(1));
    int stored_now = 0;
    for (std::size_t i = 0; i < mini.size(); ++i) {
        if (mini.node(i).stored_value(key).has_value()) ++stored_now;
    }
    EXPECT_GT(stored_now, 0);
    mini.run_for(sim::minutes(10));
    for (std::size_t i = 0; i < mini.size(); ++i) {
        EXPECT_FALSE(mini.node(i).stored_value(key).has_value()) << "node " << i;
    }
}

TEST(KademliaNode, StalenessLimitEvictsCrashedContact) {
    MiniNetwork mini(small_config(8, 2));  // s = 2
    mini.build(12);
    mini.run_for(sim::minutes(3));

    KademliaNode& victim = mini.node(5);
    const NodeId victim_id = victim.id();
    // Find a node that knows the victim.
    KademliaNode* observer = nullptr;
    for (std::size_t i = 0; i < mini.size(); ++i) {
        if (i != 5 && mini.node(i).routing_table().contains(victim_id)) {
            observer = &mini.node(i);
            break;
        }
    }
    ASSERT_NE(observer, nullptr);

    victim.crash();
    // Lookups toward the victim's id force RPCs to it; each timeout counts one
    // failure, and after s=2 consecutive failures the contact is dropped.
    for (int round = 0; round < 6; ++round) {
        observer->lookup_node(victim_id, {});
        mini.run_for(sim::minutes(1));
        if (!observer->routing_table().contains(victim_id)) break;
    }
    EXPECT_FALSE(observer->routing_table().contains(victim_id));
}

TEST(KademliaNode, CrashMakesNodeInert) {
    MiniNetwork mini(small_config());
    mini.build(10);
    KademliaNode& node = mini.node(4);
    node.crash();
    EXPECT_FALSE(node.alive());
    EXPECT_EQ(node.routing_table().size(), 0u);
    EXPECT_EQ(node.storage_size(), 0u);
    const auto rpcs_before = node.counters().rpcs_sent;
    mini.run_for(sim::minutes(90));  // a full refresh cycle elapses
    EXPECT_EQ(node.counters().rpcs_sent, rpcs_before);
    // Crashing twice is harmless.
    node.crash();
    EXPECT_FALSE(node.alive());
}

TEST(KademliaNode, RefreshKeepsTablesPopulatedWithoutTraffic) {
    MiniNetwork mini(small_config());
    mini.build(16);
    const std::size_t before = mini.node(15).routing_table().size();
    mini.run_for(sim::minutes(70));  // one bucket-refresh cycle for everyone
    EXPECT_GE(mini.node(15).routing_table().size(), before);
}

TEST(KademliaNode, JoinWithoutBootstrapIsLonelyButSane) {
    MiniNetwork mini(small_config());
    KademliaNode* loner = mini.add_node(std::nullopt);
    mini.run_for(sim::minutes(5));
    EXPECT_TRUE(loner->alive());
    EXPECT_EQ(loner->routing_table().size(), 0u);
    EXPECT_EQ(loner->counters().lookups_completed, loner->counters().lookups_started);
}

TEST(KademliaNode, PingEvictKeepsResponsiveLrsContact) {
    KademliaConfig cfg = small_config(2, 1);  // tiny buckets force fullness
    cfg.bucket_policy = BucketPolicy::kPingEvict;
    MiniNetwork mini(cfg);
    mini.build(16);
    mini.run_for(sim::minutes(10));
    // With every node alive, eviction pings succeed and tables stay valid.
    for (std::size_t i = 0; i < mini.size(); ++i) {
        EXPECT_TRUE(mini.node(i).routing_table().check_invariants());
    }
    // Ping traffic happened (served requests exceed pure lookup load is hard
    // to assert exactly; at least the network stayed consistent).
    EXPECT_GT(mini.network().counters().delivered, 0u);
}

TEST(KademliaNode, CountersTrackActivity) {
    MiniNetwork mini(small_config());
    mini.build(10);
    // Node 0 joined alone: it serves requests but initiates nothing until its
    // first refresh cycle.
    const auto& first = mini.node(0).counters();
    EXPECT_EQ(first.rpcs_sent, 0u);
    EXPECT_GT(first.requests_served, 0u);
    // A later joiner actively looked itself up.
    const auto& later = mini.node(5).counters();
    EXPECT_GT(later.rpcs_sent, 0u);
    EXPECT_GE(later.lookups_started, 1u);  // the join lookup
    EXPECT_EQ(later.lookups_completed, later.lookups_started);
}

}  // namespace
}  // namespace kadsim::kad
