// graph::build_certificate — the Nagamochi–Ibaraki sparse certificate the
// flow kernels run on under use_certificate.
//
// Three layers of pinning:
//   * structural properties of the certificate itself (subgraph, edge
//     budget ≤ k·(n−1), every asymmetric arc kept, determinism);
//   * the certificate theorem per pair: κ/λ preserved exactly whenever the
//     pair's degree cap is below the certificate order k;
//   * the kernel-level differential across 200 seeds: vertex_connectivity /
//     edge_connectivity with use_certificate on vs off are bit-identical in
//     every reported aggregate — the property the analyzer's golden-series
//     pinning ultimately rests on — and thread-count independent.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "exec/thread_pool.h"
#include "flow/edge_connectivity.h"
#include "flow/even_transform.h"
#include "flow/vertex_connectivity.h"
#include "graph/certificate.h"
#include "graph/digraph.h"
#include "util/rng.h"

namespace kadsim {
namespace {

/// Kademlia-like connectivity graph: target out-degree `deg`, mostly
/// reciprocated edges (the §5.2 shape the certificate is designed for).
graph::Digraph kademlia_like_graph(int n, int deg, std::uint64_t seed) {
    util::Rng rng(seed);
    graph::Digraph g(n);
    for (int u = 0; u < n; ++u) {
        for (int j = 0; j < deg; ++j) {
            const int v =
                static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
            if (v == u) continue;
            g.add_edge(u, v);
            if (rng.next_bool(0.9)) g.add_edge(v, u);
        }
    }
    g.finalize();
    return g;
}

TEST(Certificate, SubgraphEdgeBudgetAndAsymmetricRetention) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        const int n = 16 + static_cast<int>(seed % 9);
        const graph::Digraph g = kademlia_like_graph(n, 4, seed * 31);
        for (const int k : {1, 2, 3, 5}) {
            const graph::SparseCertificate cert = graph::build_certificate(g, k);
            EXPECT_EQ(cert.k, k);
            EXPECT_EQ(cert.graph.vertex_count(), n);
            EXPECT_LE(cert.core_edges_kept,
                      static_cast<std::int64_t>(k) * (n - 1));
            EXPECT_LE(cert.core_edges_kept, cert.core_edges);
            EXPECT_LE(cert.graph.edge_count(),
                      2 * cert.core_edges_kept + cert.asymmetric_arcs);

            std::int64_t asymmetric = 0;
            for (int u = 0; u < n; ++u) {
                for (const int v : g.out(u)) {
                    if (g.has_edge(v, u)) continue;
                    ++asymmetric;
                    // Every non-reciprocated arc survives unconditionally.
                    EXPECT_TRUE(cert.graph.has_edge(u, v))
                        << "seed " << seed << " k " << k << " arc " << u << "->"
                        << v;
                }
                // Subgraph: the certificate never invents arcs.
                for (const int v : cert.graph.out(u)) {
                    EXPECT_TRUE(g.has_edge(u, v))
                        << "seed " << seed << " k " << k << " arc " << u << "->"
                        << v;
                }
            }
            EXPECT_EQ(cert.asymmetric_arcs, asymmetric);
        }
    }
}

TEST(Certificate, LargeOrderKeepsEveryArc) {
    const graph::Digraph g = kademlia_like_graph(20, 3, 404);
    const graph::SparseCertificate cert =
        graph::build_certificate(g, g.vertex_count());
    EXPECT_EQ(cert.graph.edge_count(), g.edge_count());
    EXPECT_EQ(cert.core_edges_kept, cert.core_edges);
}

TEST(Certificate, DeterministicForSameInput) {
    const graph::Digraph g = kademlia_like_graph(22, 4, 99);
    const graph::SparseCertificate a = graph::build_certificate(g, 3);
    const graph::SparseCertificate b = graph::build_certificate(g, 3);
    ASSERT_EQ(a.graph.edge_count(), b.graph.edge_count());
    EXPECT_EQ(a.core_edges_kept, b.core_edges_kept);
    for (int u = 0; u < a.graph.vertex_count(); ++u) {
        const auto ra = a.graph.out(u);
        const auto rb = b.graph.out(u);
        ASSERT_EQ(ra.size(), rb.size());
        EXPECT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin()));
    }
}

// The certificate theorem, per pair: for every pair whose degree cap
// min(out_degree(u), in_degree(v)) is < k, κ and λ in the certificate equal
// the full-graph values exactly.
TEST(Certificate, PreservesKappaAndLambdaBelowOrder) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        const int n = 12 + static_cast<int>(seed % 5);
        const graph::Digraph g = kademlia_like_graph(n, 3, seed * 1009);
        const std::vector<int> in_g = g.in_degrees();
        for (const int k : {2, 4}) {
            const graph::SparseCertificate cert = graph::build_certificate(g, k);
            const graph::Digraph& h = cert.graph;

            const flow::FlowNetwork even_g = flow::even_transform(g);
            flow::FlowWorkspace ws_even_g(even_g);
            const flow::FlowNetwork even_h = flow::even_transform(h);
            flow::FlowWorkspace ws_even_h(even_h);
            const flow::FlowNetwork unit_g = flow::unit_capacity_network(g);
            flow::FlowWorkspace ws_unit_g(unit_g);
            const flow::FlowNetwork unit_h = flow::unit_capacity_network(h);
            flow::FlowWorkspace ws_unit_h(unit_h);

            for (int u = 0; u < n; ++u) {
                for (int v = 0; v < n; ++v) {
                    if (u == v) continue;
                    const int bound = std::min(g.out_degree(u),
                                               in_g[static_cast<std::size_t>(v)]);
                    if (bound >= k) continue;
                    EXPECT_EQ(
                        flow::pair_edge_connectivity(h, unit_h, ws_unit_h, u, v),
                        flow::pair_edge_connectivity(g, unit_g, ws_unit_g, u, v))
                        << "lambda seed " << seed << " k " << k << " pair (" << u
                        << "," << v << ")";
                    // κ is defined for non-adjacent pairs; the certificate is
                    // a subgraph, so non-adjacency in g implies it in h.
                    if (!g.has_edge(u, v)) {
                        EXPECT_EQ(flow::pair_vertex_connectivity(h, even_h,
                                                                 ws_even_h, u, v),
                                  flow::pair_vertex_connectivity(g, even_g,
                                                                 ws_even_g, u, v))
                            << "kappa seed " << seed << " k " << k << " pair ("
                            << u << "," << v << ")";
                    }
                }
            }
        }
    }
}

// The kernel-level contract across 200 seeds: every aggregate the analyzer
// consumes is bit-identical with the certificate on, because the kernels
// pick k above every evaluated pair's cap.
TEST(Certificate, KernelDifferentialAcross200Seeds) {
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        const int n = 18 + static_cast<int>(seed % 13);
        const int deg = 2 + static_cast<int>(seed % 3);
        const graph::Digraph g = kademlia_like_graph(n, deg, seed * 7919);

        flow::ConnectivityOptions ko;
        ko.sample_fraction = 0.3;
        ko.min_sources = 3;
        const flow::ConnectivityResult plain_k = flow::vertex_connectivity(g, ko);
        ko.use_certificate = true;
        const flow::ConnectivityResult cert_k = flow::vertex_connectivity(g, ko);
        EXPECT_EQ(cert_k.kappa_min, plain_k.kappa_min) << "seed " << seed;
        EXPECT_EQ(cert_k.kappa_sum, plain_k.kappa_sum) << "seed " << seed;
        EXPECT_EQ(cert_k.kappa_avg, plain_k.kappa_avg) << "seed " << seed;
        EXPECT_EQ(cert_k.pairs_evaluated, plain_k.pairs_evaluated)
            << "seed " << seed;
        EXPECT_EQ(cert_k.sources_used, plain_k.sources_used) << "seed " << seed;
        EXPECT_LE(cert_k.cert_edges_kept,
                  static_cast<std::uint64_t>(n) *
                      static_cast<std::uint64_t>(cert_k.n))
            << "seed " << seed;
        EXPECT_EQ(plain_k.cert_edges_kept, 0u);

        flow::EdgeConnectivityOptions lo;
        lo.sample_fraction = 0.3;
        lo.min_sources = 3;
        const flow::EdgeConnectivityResult plain_l = flow::edge_connectivity(g, lo);
        lo.use_certificate = true;
        const flow::EdgeConnectivityResult cert_l = flow::edge_connectivity(g, lo);
        EXPECT_EQ(cert_l.lambda_min, plain_l.lambda_min) << "seed " << seed;
        EXPECT_EQ(cert_l.lambda_sum, plain_l.lambda_sum) << "seed " << seed;
        EXPECT_EQ(cert_l.lambda_avg, plain_l.lambda_avg) << "seed " << seed;
        EXPECT_EQ(cert_l.pairs_evaluated, plain_l.pairs_evaluated)
            << "seed " << seed;
    }
}

// The certificate-enabled sweep is deterministic across execution engines:
// inline, 2-worker and 4-worker pools report identical aggregates.
TEST(Certificate, CertificateSweepThreadCountIndependent) {
    const graph::Digraph g = kademlia_like_graph(40, 4, 20170327);

    flow::ConnectivityOptions ko;
    ko.sample_fraction = 0.2;
    ko.min_sources = 4;
    ko.use_certificate = true;
    const flow::ConnectivityResult inline_r = flow::vertex_connectivity(g, ko);
    for (const int workers : {2, 4}) {
        exec::ThreadPool pool(workers);
        ko.pool = &pool;
        const flow::ConnectivityResult pooled = flow::vertex_connectivity(g, ko);
        EXPECT_EQ(pooled.kappa_min, inline_r.kappa_min);
        EXPECT_EQ(pooled.kappa_sum, inline_r.kappa_sum);
        EXPECT_EQ(pooled.kappa_avg, inline_r.kappa_avg);
        EXPECT_EQ(pooled.pairs_evaluated, inline_r.pairs_evaluated);
        EXPECT_EQ(pooled.cert_edges_kept, inline_r.cert_edges_kept);
        ko.pool = nullptr;
    }

    flow::EdgeConnectivityOptions lo;
    lo.sample_fraction = 0.2;
    lo.min_sources = 4;
    lo.use_certificate = true;
    const flow::EdgeConnectivityResult inline_l = flow::edge_connectivity(g, lo);
    for (const int workers : {2, 4}) {
        exec::ThreadPool pool(workers);
        lo.pool = &pool;
        const flow::EdgeConnectivityResult pooled = flow::edge_connectivity(g, lo);
        EXPECT_EQ(pooled.lambda_min, inline_l.lambda_min);
        EXPECT_EQ(pooled.lambda_sum, inline_l.lambda_sum);
        EXPECT_EQ(pooled.lambda_avg, inline_l.lambda_avg);
        EXPECT_EQ(pooled.pairs_evaluated, inline_l.pairs_evaluated);
        EXPECT_EQ(pooled.cert_edges_kept, inline_l.cert_edges_kept);
        lo.pool = nullptr;
    }
}

}  // namespace
}  // namespace kadsim
