// Digraph container, reciprocity, SCC oracle.
#include <gtest/gtest.h>

#include "graph/digraph.h"

namespace kadsim::graph {
namespace {

TEST(Digraph, BuildFinalizeQuery) {
    Digraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 1);  // duplicate, deduplicated by finalize
    g.finalize();
    EXPECT_EQ(g.vertex_count(), 4);
    EXPECT_EQ(g.edge_count(), 2);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 2));
    EXPECT_FALSE(g.has_edge(1, 0));
    EXPECT_FALSE(g.has_edge(2, 3));
}

TEST(Digraph, DegreesAndReversal) {
    Digraph g(3);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 2);
    g.finalize();
    EXPECT_EQ(g.out_degree(0), 2);
    EXPECT_EQ(g.out_degree(2), 0);
    const auto in = g.in_degrees();
    EXPECT_EQ(in[0], 0);
    EXPECT_EQ(in[2], 2);

    const Digraph r = g.reversed();
    EXPECT_TRUE(r.has_edge(1, 0));
    EXPECT_TRUE(r.has_edge(2, 0));
    EXPECT_TRUE(r.has_edge(2, 1));
    EXPECT_EQ(r.edge_count(), 3);
}

TEST(Digraph, Reciprocity) {
    Digraph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 0);
    g.add_edge(1, 2);  // unreciprocated
    g.finalize();
    EXPECT_DOUBLE_EQ(g.reciprocity(), 2.0 / 3.0);

    Digraph empty(3);
    empty.finalize();
    EXPECT_DOUBLE_EQ(empty.reciprocity(), 1.0);
}

TEST(Digraph, CompleteDetection) {
    Digraph g(3);
    for (int u = 0; u < 3; ++u) {
        for (int v = 0; v < 3; ++v) {
            if (u != v) g.add_edge(u, v);
        }
    }
    g.finalize();
    EXPECT_TRUE(g.is_complete());

    Digraph h(3);
    h.add_edge(0, 1);
    h.finalize();
    EXPECT_FALSE(h.is_complete());
}

TEST(Scc, SingleComponentCycle) {
    Digraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    g.add_edge(3, 0);
    g.finalize();
    EXPECT_EQ(strongly_connected_components(g), 1);
    EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Scc, ChainHasOneComponentPerVertex) {
    Digraph g(5);
    for (int i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1);
    g.finalize();
    EXPECT_EQ(strongly_connected_components(g), 5);
    EXPECT_FALSE(is_strongly_connected(g));
}

TEST(Scc, TwoCyclesWithBridge) {
    Digraph g(6);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 0);
    g.add_edge(3, 4);
    g.add_edge(4, 5);
    g.add_edge(5, 3);
    g.add_edge(2, 3);  // one-way bridge
    g.finalize();
    std::vector<int> ids;
    EXPECT_EQ(strongly_connected_components(g, &ids), 2);
    EXPECT_EQ(ids[0], ids[1]);
    EXPECT_EQ(ids[1], ids[2]);
    EXPECT_EQ(ids[3], ids[4]);
    EXPECT_EQ(ids[4], ids[5]);
    EXPECT_NE(ids[0], ids[3]);
}

TEST(Scc, IsolatedVerticesAreOwnComponents) {
    Digraph g(3);
    g.finalize();
    EXPECT_EQ(strongly_connected_components(g), 3);
}

TEST(Scc, EmptyAndSingleton) {
    Digraph g0(0);
    g0.finalize();
    EXPECT_EQ(strongly_connected_components(g0), 0);
    Digraph g1(1);
    g1.finalize();
    EXPECT_EQ(strongly_connected_components(g1), 1);
    EXPECT_TRUE(is_strongly_connected(g1));
}

TEST(Scc, DeepChainNoStackOverflow) {
    // Iterative Tarjan must handle paths far deeper than the C stack allows
    // for recursion.
    const int n = 200000;
    Digraph g(n);
    for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
    g.finalize();
    EXPECT_EQ(strongly_connected_components(g), n);
}

}  // namespace
}  // namespace kadsim::graph
