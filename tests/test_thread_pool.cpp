// Execution engine: ThreadPool task submission/exceptions/reuse and
// BoundedQueue backpressure/close semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/bounded_queue.h"
#include "exec/thread_pool.h"

namespace kadsim::exec {
namespace {

TEST(ThreadPool, SubmitReturnsValue) {
    ThreadPool pool(2);
    auto future = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(pool.wait_get(future), 42);
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1);
    auto future = pool.submit([] { return 1; });
    EXPECT_EQ(pool.wait_get(future), 1);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
    ThreadPool pool(2);
    auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait_get(future), std::runtime_error);
    // The pool survives a throwing task.
    auto ok = pool.submit([] { return 7; });
    EXPECT_EQ(pool.wait_get(ok), 7);
}

TEST(ThreadPool, ExceptionsPropagateFromParallelFor) {
    ThreadPool pool(3);
    EXPECT_THROW(pool.parallel_for(0, 100,
                                   [](int i) {
                                       if (i == 63) throw std::runtime_error("63");
                                   }),
                 std::runtime_error);
}

TEST(ThreadPool, PoolIsReusableAcrossSubmissionRounds) {
    ThreadPool pool(3);
    for (int round = 0; round < 5; ++round) {
        std::vector<std::future<int>> futures;
        for (int i = 0; i < 16; ++i) {
            futures.push_back(pool.submit([i] { return i * i; }));
        }
        int sum = 0;
        for (auto& future : futures) sum += pool.wait_get(future);
        EXPECT_EQ(sum, 1240);  // sum of squares 0..15
    }
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, 1000, [&hits](int i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyAndTinyRanges) {
    ThreadPool pool(4);
    int calls = 0;
    pool.parallel_for(5, 5, [&calls](int) { ++calls; });
    EXPECT_EQ(calls, 0);
    std::atomic<int> single{0};
    pool.parallel_for(7, 8, [&single](int i) { single += i; });
    EXPECT_EQ(single.load(), 7);
}

TEST(ThreadPool, InWorkerFlagVisibleInsideTasks) {
    ThreadPool pool(1);
    EXPECT_FALSE(ThreadPool::in_worker());
    auto future = pool.submit([] { return ThreadPool::in_worker(); });
    EXPECT_TRUE(pool.wait_get(future));
    EXPECT_FALSE(ThreadPool::in_worker());
}

TEST(ThreadPool, WaitGetHelpsRunQueuedTasks) {
    // Park the only worker on a gate, then wait_get a queued task: the sole
    // way its future can become ready is the waiting caller stealing and
    // running it itself — deterministic proof of the cooperative wait.
    ThreadPool pool(1);
    std::promise<void> started;
    std::promise<void> gate;
    auto blocker = pool.submit([&started, opened = gate.get_future().share()] {
        started.set_value();
        opened.wait();
    });
    started.get_future().wait();  // the worker owns the blocker before we help
    std::thread::id ran_on{};
    auto stolen = pool.submit([&ran_on] { ran_on = std::this_thread::get_id(); });
    pool.wait_get(stolen);
    EXPECT_EQ(ran_on, std::this_thread::get_id());
    gate.set_value();
    pool.wait_get(blocker);
}

TEST(BoundedQueue, FifoThroughOneConsumer) {
    BoundedQueue<int> queue(4);
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.push(i));
    queue.close();
    for (int i = 0; i < 4; ++i) {
        const auto item = queue.pop();
        ASSERT_TRUE(item.has_value());
        EXPECT_EQ(*item, i);
    }
    EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueue, TryPushRespectsCapacity) {
    BoundedQueue<int> queue(2);
    EXPECT_TRUE(queue.try_push(1));
    EXPECT_TRUE(queue.try_push(2));
    EXPECT_FALSE(queue.try_push(3));  // full
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(*queue.try_pop(), 1);
    EXPECT_TRUE(queue.try_push(3));
}

TEST(BoundedQueue, PushBlocksUntilSpaceAvailable) {
    BoundedQueue<int> queue(1);
    ASSERT_TRUE(queue.push(0));

    std::atomic<bool> second_push_done{false};
    std::thread producer([&] {
        queue.push(1);  // must block: capacity 1, queue full
        second_push_done = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(second_push_done.load());  // backpressure held the producer

    EXPECT_EQ(*queue.pop(), 0);  // frees the slot, unblocking the producer
    producer.join();
    EXPECT_TRUE(second_push_done.load());
    EXPECT_EQ(*queue.pop(), 1);
}

TEST(BoundedQueue, CloseUnblocksProducerAndFailsPush) {
    BoundedQueue<int> queue(1);
    ASSERT_TRUE(queue.push(0));
    std::atomic<bool> push_result{true};
    std::thread producer([&] { push_result = queue.push(1); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
    producer.join();
    EXPECT_FALSE(push_result.load());
    // The pending item is still delivered; then the closed queue drains out.
    EXPECT_EQ(*queue.pop(), 0);
    EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueue, ManyProducersOneConsumer) {
    // The MPSC shape: 4 producers × 250 items through a capacity-8 queue.
    BoundedQueue<int> queue(8);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 250;
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&queue, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                ASSERT_TRUE(queue.push(p * kPerProducer + i));
            }
        });
    }
    std::vector<int> seen;
    std::thread consumer([&] {
        while (auto item = queue.pop()) seen.push_back(*item);
    });
    for (auto& producer : producers) producer.join();
    queue.close();
    consumer.join();

    ASSERT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
    std::sort(seen.begin(), seen.end());
    for (int i = 0; i < kProducers * kPerProducer; ++i) {
        EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
    }
}

}  // namespace
}  // namespace kadsim::exec
