// serve::Daemon — the resilience-as-a-service analysis daemon, driven
// through its in-process request API (the socket layer is the same
// handle_request engine behind protocol framing; the framing itself is
// pinned in test_serve.cpp and the full socket path by tools/smoke_daemon.sh).
//
// The load-bearing property is the determinism contract: a METRICS response
// carries byte-for-byte the row the offline analyzer produces for the same
// snapshot file. The remaining tests pin the daemon's failure-isolation and
// resource-bounding behavior: malformed ingest is rejected without damage,
// the ingest queue applies backpressure, and the hot-state LRU evicts and
// rebuilds from the snapshot spool.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/analyzer.h"
#include "flow/mincut.h"
#include "graph/snapshot.h"
#include "scen/runner.h"
#include "serve/daemon.h"
#include "serve/result_cache.h"

namespace kadsim {
namespace {

/// A short churny run captured at three instants — three related but
/// distinct snapshots, the shape the daemon ingests in production.
std::vector<graph::RoutingSnapshot> capture_series() {
    scen::ScenarioConfig scenario;
    scenario.name = "daemon-test";
    scenario.initial_size = 36;
    scenario.seed = 19;
    scenario.kad.k = 8;
    scenario.kad.s = 1;
    scenario.fault.churn = scen::ChurnSpec{1, 1};
    scenario.phases.set_end(sim::minutes(90));
    scen::Runner runner(scenario);
    std::vector<graph::RoutingSnapshot> snaps;
    for (const int minute : {30, 60, 90}) {
        runner.step_to(sim::minutes(minute));
        snaps.push_back(runner.snapshot());
    }
    return snaps;
}

std::string to_text(const graph::RoutingSnapshot& snap) {
    std::ostringstream out;
    snap.save(out);
    return out.str();
}

std::string to_binary(const graph::RoutingSnapshot& snap) {
    std::ostringstream out(std::ios::binary);
    snap.save_binary(out);
    return out.str();
}

/// The offline pipeline the daemon must match: parse the serialized file
/// (dropping Runner-filled companions, exactly as an ingested file has
/// them dropped), then analyze.
core::ResilienceSample offline_analyze(const std::string& bytes,
                                       const core::AnalyzerOptions& options) {
    std::istringstream in(bytes, std::ios::binary);
    const auto snap = graph::RoutingSnapshot::parse(in);
    return core::ConnectivityAnalyzer(options).analyze(snap);
}

serve::DaemonConfig test_config() {
    serve::DaemonConfig config;
    config.analyzer.sample_c = 0.05;
    config.analyzer.min_sources = 4;
    config.query_timeout_ms = 60000;
    return config;
}

/// "OK <hash>" -> hash.
std::string hash_of(const std::string& ingest_response) {
    EXPECT_TRUE(ingest_response.starts_with("OK "))
        << "ingest failed: " << ingest_response;
    return ingest_response.substr(3);
}

struct TempDir {
    explicit TempDir(const char* tag) {
        path = (std::filesystem::temp_directory_path() /
                (std::string("kadsim_") + tag + "_" +
                 std::to_string(::getpid())))
                   .string();
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
    std::string path;
};

TEST(ServeDaemon, MetricsRowsAreByteIdenticalToOfflineAnalyzer) {
    const auto snaps = capture_series();
    serve::Daemon daemon(test_config());
    daemon.start();

    // Mixed formats on ingest: text and binary files of the same series.
    std::vector<std::string> hashes;
    for (std::size_t i = 0; i < snaps.size(); ++i) {
        const std::string bytes = i % 2 == 0 ? to_text(snaps[i]) : to_binary(snaps[i]);
        hashes.push_back(hash_of(
            daemon.ingest_bytes(bytes, "series-" + std::to_string(i))));
    }
    for (std::size_t i = 0; i < snaps.size(); ++i) {
        const std::string response = daemon.handle_request("METRICS " + hashes[i]);
        ASSERT_TRUE(response.starts_with("OK ")) << response;
        // Offline reference always goes through the *text* serialization:
        // cross-format byte-identity falls out because text and binary
        // parse to the same snapshot.
        const auto sample =
            offline_analyze(to_text(snaps[i]), daemon.config().analyzer);
        EXPECT_EQ(response.substr(3), serve::ResultCache::format_sample_row(sample))
            << "daemon row diverged from offline analyzer for snapshot " << i;
    }
    daemon.stop();
}

TEST(ServeDaemon, TextAndBinaryOfSameSnapshotShareContentHash) {
    const auto snaps = capture_series();
    serve::Daemon daemon(test_config());
    daemon.start();
    const std::string h_text = hash_of(daemon.ingest_bytes(to_text(snaps[0]), "t"));
    const std::string h_bin = hash_of(daemon.ingest_bytes(to_binary(snaps[0]), "b"));
    EXPECT_EQ(h_text, h_bin);
    const auto counters = daemon.counters();
    EXPECT_EQ(counters.ingested, 1u);
    EXPECT_EQ(counters.duplicates, 1u);
    daemon.stop();
}

TEST(ServeDaemon, MalformedIngestIsRejectedWithoutDamage) {
    const auto snaps = capture_series();
    serve::Daemon daemon(test_config());
    daemon.start();

    const std::string garbage = daemon.ingest_bytes("complete garbage\n", "bad1");
    EXPECT_TRUE(garbage.starts_with("ERR bad1:")) << garbage;

    // A truncated binary snapshot: valid magic, missing payload.
    std::string truncated = to_binary(snaps[0]).substr(0, 40);
    const std::string trunc_resp = daemon.ingest_bytes(truncated, "bad2");
    EXPECT_TRUE(trunc_resp.starts_with("ERR bad2:")) << trunc_resp;

    const std::string empty = daemon.ingest_bytes("", "bad3");
    EXPECT_TRUE(empty.starts_with("ERR bad3:")) << empty;

    // The daemon still works: a good snapshot ingests and analyzes.
    const std::string hash = hash_of(daemon.ingest_bytes(to_text(snaps[0]), "good"));
    EXPECT_TRUE(daemon.handle_request("KAPPA " + hash).starts_with("OK kappa_min="));

    const auto counters = daemon.counters();
    EXPECT_EQ(counters.rejected, 3u);
    EXPECT_EQ(counters.ingested, 1u);
    EXPECT_EQ(counters.analysis_failures, 0u);
    daemon.stop();
}

TEST(ServeDaemon, IngestQueueAppliesBackpressure) {
    const auto snaps = capture_series();
    auto config = test_config();
    config.queue_capacity = 1;
    serve::Daemon daemon(std::move(config));
    // Not started: nothing drains the queue yet. The first ingest fills the
    // single slot; the second must block in push() until the worker starts.
    ASSERT_TRUE(daemon.ingest_bytes(to_text(snaps[0]), "first").starts_with("OK"));
    std::atomic<bool> second_done{false};
    std::thread producer([&] {
        EXPECT_TRUE(daemon.ingest_bytes(to_text(snaps[1]), "second").starts_with("OK"));
        second_done.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_FALSE(second_done.load()) << "push did not block on a full queue";
    daemon.start();
    producer.join();
    EXPECT_TRUE(second_done.load());
    EXPECT_TRUE(daemon.handle_request("METRICS latest").starts_with("OK "));
    daemon.stop();
}

TEST(ServeDaemon, EvictedHotStateIsRebuiltFromSpool) {
    const auto snaps = capture_series();
    TempDir tmp("daemon_lru");
    auto config = test_config();
    config.hot_capacity = 1;  // the second ingest evicts the first
    config.cache_dir = tmp.path;
    serve::Daemon daemon(std::move(config));
    daemon.start();

    const std::string first = hash_of(daemon.ingest_bytes(to_text(snaps[0]), "a"));
    const std::string second = hash_of(daemon.ingest_bytes(to_text(snaps[1]), "b"));
    ASSERT_TRUE(daemon.handle_request("METRICS " + second).starts_with("OK "));

    // Find a non-adjacent pair in the first snapshot and the offline answer.
    std::istringstream in(to_text(snaps[0]));
    const auto parsed = graph::RoutingSnapshot::parse(in);
    const auto g = parsed.to_digraph();
    int u = -1;
    int v = -1;
    for (int a = 0; a < g.vertex_count() && u < 0; ++a) {
        for (int b = 0; b < g.vertex_count(); ++b) {
            if (a != b && !g.has_edge(a, b)) {
                u = a;
                v = b;
                break;
            }
        }
    }
    ASSERT_GE(u, 0) << "test graph is complete; no non-adjacent pair";
    const auto offline_cut = flow::min_vertex_cut(g, u, v);

    const std::string response = daemon.handle_request(
        "PAIR " + first + " " + std::to_string(u) + " " + std::to_string(v));
    ASSERT_TRUE(response.starts_with("OK kappa=")) << response;
    EXPECT_TRUE(response.starts_with("OK kappa=" + std::to_string(offline_cut.size())))
        << response << " vs offline kappa " << offline_cut.size();

    const auto counters = daemon.counters();
    EXPECT_GE(counters.hot_evictions, 1u);
    daemon.stop();
}

TEST(ServeDaemon, SecondDaemonAnswersFromSharedResultCache) {
    const auto snaps = capture_series();
    TempDir tmp("daemon_cache");
    auto config = test_config();
    config.cache_dir = tmp.path;

    std::string row;
    {
        serve::Daemon daemon{serve::DaemonConfig{config}};
        daemon.start();
        const std::string hash = hash_of(daemon.ingest_bytes(to_text(snaps[0]), "a"));
        row = daemon.handle_request("METRICS " + hash);
        ASSERT_TRUE(row.starts_with("OK ")) << row;
        EXPECT_EQ(daemon.counters().analyzed, 1u);
        daemon.stop();
    }
    {
        serve::Daemon daemon{serve::DaemonConfig{config}};
        daemon.start();
        const std::string hash = hash_of(daemon.ingest_bytes(to_text(snaps[0]), "a"));
        EXPECT_EQ(daemon.handle_request("METRICS " + hash), row);
        const auto counters = daemon.counters();
        EXPECT_EQ(counters.result_cache_hits, 1u);
        EXPECT_EQ(counters.analyzed, 0u) << "restart re-analyzed a cached snapshot";
        daemon.stop();
    }
}

TEST(ServeDaemon, QueryErrorsAreDiagnosticNotFatal) {
    const auto snaps = capture_series();
    serve::Daemon daemon(test_config());
    daemon.start();
    EXPECT_EQ(daemon.handle_request("KAPPA latest"), "ERR no snapshots ingested");
    EXPECT_TRUE(daemon.handle_request("BOGUS").starts_with("ERR unknown command"));
    EXPECT_TRUE(daemon.handle_request("KAPPA nope").starts_with("ERR unknown snapshot"));
    EXPECT_TRUE(daemon.handle_request("INGEST only-a-label")
                    .starts_with("ERR INGEST needs"));

    const std::string hash = hash_of(daemon.ingest_bytes(to_text(snaps[0]), "a"));
    EXPECT_TRUE(daemon.handle_request("PAIR latest 0 0").starts_with("ERR PAIR needs"));
    EXPECT_TRUE(
        daemon.handle_request("PAIR latest -1 3").starts_with("ERR PAIR needs"));
    // Prefix resolution: the first 12 hex chars are unambiguous here.
    EXPECT_TRUE(daemon.handle_request("KAPPA " + hash.substr(0, 12))
                    .starts_with("OK kappa_min="));
    EXPECT_TRUE(daemon.handle_request("PING") == "OK pong");
    const auto counters = daemon.counters();
    EXPECT_GE(counters.query_errors, 5u);
    daemon.stop();
}

TEST(ServeDaemon, ShutdownRequestSetsStopFlagAfterReply) {
    serve::Daemon daemon(test_config());
    daemon.start();
    bool deferred = false;
    EXPECT_EQ(daemon.handle_request("SHUTDOWN", &deferred), "OK shutting down");
    EXPECT_TRUE(deferred);
    EXPECT_FALSE(daemon.stop_requested()) << "deferred shutdown applied early";
    EXPECT_EQ(daemon.handle_request("SHUTDOWN"), "OK shutting down");
    EXPECT_TRUE(daemon.stop_requested());
    daemon.stop();
}

}  // namespace
}  // namespace kadsim
