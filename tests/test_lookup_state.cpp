// The iterative lookup state machine (paper §4.1): α-parallelism, k-success
// termination, no-progress termination, value short-circuit.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "kad/lookup.h"
#include "util/rng.h"

namespace kadsim::kad {
namespace {

std::vector<Contact> make_contacts(util::Rng& rng, int count, net::Address base) {
    std::vector<Contact> out;
    for (int i = 0; i < count; ++i) {
        out.push_back(Contact{NodeId::random(rng, 160), base + static_cast<net::Address>(i)});
    }
    return out;
}

LookupState::Params params(int k, int alpha) { return {k, alpha, 0}; }

TEST(LookupState, EmptySeedFinishesImmediately) {
    util::Rng rng(1);
    LookupState lookup(NodeId::random(rng, 160), NodeId::random(rng, 160),
                       LookupMode::kFindNode, params(3, 2));
    EXPECT_FALSE(lookup.next_query().has_value());
    EXPECT_TRUE(lookup.finished());
    EXPECT_TRUE(lookup.successful_closest().empty());
}

TEST(LookupState, RespectsAlphaInflightBound) {
    util::Rng rng(2);
    LookupState lookup(NodeId::random(rng, 160), NodeId::random(rng, 160),
                       LookupMode::kFindNode, params(10, 3));
    const auto seeds = make_contacts(rng, 8, 1);
    lookup.seed(seeds);
    int launched = 0;
    while (lookup.next_query().has_value()) ++launched;
    EXPECT_EQ(launched, 3);
    EXPECT_EQ(lookup.inflight(), 3);
    EXPECT_FALSE(lookup.finished());
}

TEST(LookupState, SeedsSelfAreIgnored) {
    util::Rng rng(3);
    const NodeId self = NodeId::random(rng, 160);
    LookupState lookup(self, NodeId::random(rng, 160), LookupMode::kFindNode,
                       params(3, 2));
    lookup.seed(std::vector<Contact>{Contact{self, 1}});
    EXPECT_FALSE(lookup.next_query().has_value());
    EXPECT_TRUE(lookup.finished());
}

TEST(LookupState, TerminatesAfterKSuccesses) {
    util::Rng rng(4);
    const NodeId target = NodeId::random(rng, 160);
    LookupState lookup(NodeId::random(rng, 160), target, LookupMode::kFindNode,
                       params(3, 3));
    const auto seeds = make_contacts(rng, 6, 1);
    lookup.seed(seeds);
    int responded = 0;
    while (!lookup.finished()) {
        const auto q = lookup.next_query();
        ASSERT_TRUE(q.has_value());
        lookup.on_response(q->id, {}, false);
        ++responded;
    }
    EXPECT_EQ(responded, 3);  // k successes end the lookup
    EXPECT_EQ(lookup.successful_closest().size(), 3u);
    EXPECT_EQ(lookup.stats().rpcs_succeeded, 3);
}

TEST(LookupState, NoProgressTerminationWhenAllFail) {
    util::Rng rng(5);
    LookupState lookup(NodeId::random(rng, 160), NodeId::random(rng, 160),
                       LookupMode::kFindNode, params(5, 2));
    lookup.seed(make_contacts(rng, 4, 1));
    while (!lookup.finished()) {
        const auto q = lookup.next_query();
        if (!q.has_value()) break;
        lookup.on_failure(q->id);
    }
    EXPECT_TRUE(lookup.finished());
    EXPECT_TRUE(lookup.successful_closest().empty());
    EXPECT_EQ(lookup.stats().rpcs_failed, 4);
}

TEST(LookupState, ResponsesFeedNewCandidatesWhileProgressing) {
    // Hand-built ids: target 0, seed at distance 0x40; every response returns
    // a strictly closer contact, so the lookup keeps going until k successes.
    const NodeId target;  // zero
    const NodeId self = NodeId::from_limbs(0xF000, 0, 0);
    LookupState lookup(self, target, LookupMode::kFindNode, params(4, 1));
    const std::uint64_t distances[] = {0x40, 0x20, 0x10, 0x08, 0x04};
    lookup.seed(std::vector<Contact>{
        Contact{NodeId::from_limbs(distances[0], 0, 0), 1}});
    int responded = 0;
    for (int i = 0; i < 4; ++i) {
        const auto q = lookup.next_query();
        ASSERT_TRUE(q.has_value()) << "query " << i;
        // Each response advertises the next-closer node: progress every time.
        const Contact closer{NodeId::from_limbs(distances[i + 1], 0, 0),
                             static_cast<net::Address>(10 + i)};
        lookup.on_response(q->id, std::vector<Contact>{closer}, false);
        ++responded;
    }
    EXPECT_TRUE(lookup.finished());  // 4 successes == k
    EXPECT_EQ(responded, 4);
    EXPECT_EQ(lookup.successful_closest().size(), 4u);
}

TEST(LookupState, NoProgressWaveTerminatesEarly) {
    // §4.1: "no more progress is made in getting closer" — α consecutive
    // unhelpful responses end the lookup even though un-queried candidates
    // remain.
    util::Rng rng(6);
    const NodeId target = NodeId::random(rng, 160);
    LookupState lookup(NodeId::random(rng, 160), target, LookupMode::kFindNode,
                       params(20, 3));
    lookup.seed(make_contacts(rng, 12, 1));
    int responded = 0;
    while (!lookup.finished()) {
        const auto q = lookup.next_query();
        ASSERT_TRUE(q.has_value());
        lookup.on_response(q->id, {}, false);  // nothing new, no progress
        ++responded;
    }
    EXPECT_EQ(responded, 3);  // one full α-wave without progress
    EXPECT_LT(lookup.successful_closest().size(), 12u);
}

TEST(LookupState, ValueFoundShortCircuits) {
    util::Rng rng(7);
    LookupState lookup(NodeId::random(rng, 160), NodeId::random(rng, 160),
                       LookupMode::kFindValue, params(10, 2));
    lookup.seed(make_contacts(rng, 5, 1));
    const auto q = lookup.next_query();
    ASSERT_TRUE(q.has_value());
    lookup.on_response(q->id, {}, true);
    EXPECT_TRUE(lookup.finished());
    EXPECT_TRUE(lookup.value_found());
}

TEST(LookupState, ValueFlagIgnoredInFindNodeMode) {
    util::Rng rng(8);
    LookupState lookup(NodeId::random(rng, 160), NodeId::random(rng, 160),
                       LookupMode::kFindNode, params(10, 2));
    lookup.seed(make_contacts(rng, 5, 1));
    const auto q = lookup.next_query();
    ASSERT_TRUE(q.has_value());
    lookup.on_response(q->id, {}, true);
    EXPECT_FALSE(lookup.value_found());
    EXPECT_FALSE(lookup.finished());
}

TEST(LookupState, StaleResponsesAreIgnored) {
    util::Rng rng(9);
    LookupState lookup(NodeId::random(rng, 160), NodeId::random(rng, 160),
                       LookupMode::kFindNode, params(5, 2));
    const auto seeds = make_contacts(rng, 3, 1);
    lookup.seed(seeds);
    // Respond for a contact never queried: no effect.
    lookup.on_response(seeds[2].id, {}, false);
    EXPECT_EQ(lookup.stats().rpcs_succeeded, 0);
    // Failure for unknown id: no effect.
    lookup.on_failure(NodeId::random(rng, 160));
    EXPECT_EQ(lookup.stats().rpcs_failed, 0);
}

TEST(LookupState, DuplicateCandidatesNotDoubleTracked) {
    util::Rng rng(10);
    const NodeId target = NodeId::random(rng, 160);
    LookupState lookup(NodeId::random(rng, 160), target, LookupMode::kFindNode,
                       params(5, 5));
    const auto seeds = make_contacts(rng, 3, 1);
    lookup.seed(seeds);
    lookup.seed(seeds);  // duplicates
    EXPECT_EQ(lookup.shortlist_size(), 3u);
}

TEST(LookupState, SuccessfulClosestIsSortedByDistance) {
    util::Rng rng(11);
    const NodeId target = NodeId::random(rng, 160);
    LookupState lookup(NodeId::random(rng, 160), target, LookupMode::kFindNode,
                       params(10, 10));
    const auto seeds = make_contacts(rng, 10, 1);
    lookup.seed(seeds);
    while (true) {
        const auto q = lookup.next_query();
        if (!q.has_value()) break;
        lookup.on_response(q->id, {}, false);
    }
    const auto closest = lookup.successful_closest();
    ASSERT_EQ(closest.size(), 10u);
    for (std::size_t i = 1; i < closest.size(); ++i) {
        EXPECT_LT(target.distance_to(closest[i - 1].id),
                  target.distance_to(closest[i].id));
    }
}

TEST(LookupState, ShortlistCapBoundsMemory) {
    util::Rng rng(12);
    const NodeId target = NodeId::random(rng, 160);
    LookupState lookup(NodeId::random(rng, 160), target, LookupMode::kFindNode,
                       params(2, 1));  // cap = 4k = 8
    lookup.seed(make_contacts(rng, 4, 1));
    const auto q = lookup.next_query();
    ASSERT_TRUE(q.has_value());
    lookup.on_response(q->id, make_contacts(rng, 50, 100), false);
    EXPECT_LE(lookup.shortlist_size(), 8u);
}

TEST(LookupState, FailedContactsAreReplacedByFartherOnes) {
    // A failed near candidate must not block farther candidates from the
    // query window: after the two closest fail, the lookup queries the third.
    util::Rng rng(13);
    const NodeId target = NodeId::random(rng, 160);
    LookupState lookup(NodeId::random(rng, 160), target, LookupMode::kFindNode,
                       params(2, 1));
    auto seeds = make_contacts(rng, 4, 1);
    std::sort(seeds.begin(), seeds.end(), [&target](const Contact& a, const Contact& b) {
        return target.distance_to(a.id) < target.distance_to(b.id);
    });
    lookup.seed(seeds);
    // Fail the two closest; failures don't count as "no progress" waves.
    for (int i = 0; i < 2; ++i) {
        const auto q = lookup.next_query();
        ASSERT_TRUE(q.has_value());
        EXPECT_EQ(q->id, seeds[static_cast<std::size_t>(i)].id);
        lookup.on_failure(q->id);
        EXPECT_FALSE(lookup.finished());
    }
    // The third candidate succeeds; with α=1 one unhelpful response is a
    // full wave, and the closest live candidate has now been contacted.
    const auto q = lookup.next_query();
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->id, seeds[2].id);
    lookup.on_response(q->id, {}, false);
    EXPECT_TRUE(lookup.finished());
    const auto closest = lookup.successful_closest();
    ASSERT_EQ(closest.size(), 1u);
    EXPECT_EQ(closest[0].id, seeds[2].id);
}

TEST(LookupState, StrictModeIgnoresNoProgressWaves) {
    // Strict-k (join/STORE placement): unhelpful responses do not end the
    // lookup — it must contact the k closest it knows about.
    util::Rng rng(14);
    const NodeId target = NodeId::random(rng, 160);
    LookupState lookup(NodeId::random(rng, 160), target, LookupMode::kFindNode,
                       LookupState::Params{6, 3, 0, /*strict_k=*/true});
    lookup.seed(make_contacts(rng, 10, 1));
    int responded = 0;
    while (!lookup.finished()) {
        const auto q = lookup.next_query();
        ASSERT_TRUE(q.has_value());
        lookup.on_response(q->id, {}, false);  // never any progress
        ++responded;
    }
    EXPECT_EQ(responded, 6);  // exactly k successes, no early exit
    EXPECT_EQ(lookup.successful_closest().size(), 6u);
}

TEST(LookupState, StrictModeStillExhausts) {
    util::Rng rng(15);
    LookupState lookup(NodeId::random(rng, 160), NodeId::random(rng, 160),
                       LookupMode::kFindNode,
                       LookupState::Params{20, 3, 0, /*strict_k=*/true});
    lookup.seed(make_contacts(rng, 4, 1));  // fewer candidates than k
    while (true) {
        const auto q = lookup.next_query();
        if (!q.has_value()) break;
        lookup.on_response(q->id, {}, false);
    }
    EXPECT_TRUE(lookup.finished());
    EXPECT_EQ(lookup.successful_closest().size(), 4u);
}

class LookupSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // (k, alpha)

TEST_P(LookupSweepTest, AlwaysTerminatesUnderRandomOutcomes) {
    const auto [k, alpha] = GetParam();
    util::Rng rng(100 + static_cast<std::uint64_t>(k * 10 + alpha));
    const NodeId target = NodeId::random(rng, 160);
    LookupState lookup(NodeId::random(rng, 160), target, LookupMode::kFindNode,
                       LookupState::Params{k, alpha, 0});
    lookup.seed(make_contacts(rng, k, 1));
    int steps = 0;
    net::Address next_addr = 1000;
    while (!lookup.finished() && steps < 10000) {
        const auto q = lookup.next_query();
        if (q.has_value()) {
            if (rng.next_bool(0.3)) {
                lookup.on_failure(q->id);
            } else {
                const int fan = static_cast<int>(rng.next_below(4));
                auto more = make_contacts(rng, fan, next_addr);
                next_addr += 10;
                lookup.on_response(q->id, more, false);
            }
        }
        ++steps;
    }
    EXPECT_TRUE(lookup.finished());
    EXPECT_LE(static_cast<int>(lookup.successful_closest().size()), k);
    EXPECT_EQ(lookup.inflight(), 0 + lookup.inflight());  // no negative inflight
    EXPECT_GE(lookup.inflight(), 0);
}

INSTANTIATE_TEST_SUITE_P(KAlphaGrid, LookupSweepTest,
                         ::testing::Combine(::testing::Values(1, 2, 5, 20),
                                            ::testing::Values(1, 3, 5)));

}  // namespace
}  // namespace kadsim::kad
