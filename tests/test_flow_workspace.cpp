// The touched-arc undo log: randomized differential testing of the
// shared-structure kernel (capped Dinic on a reused workspace vs. exact
// push-relabel on a fresh one vs. the brute-force oracle), plus
// workspace-reuse purity across pairs and the kernel counters' contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "flow/dinic.h"
#include "flow/even_transform.h"
#include "flow/flow_workspace.h"
#include "flow/push_relabel.h"
#include "flow/vertex_connectivity.h"
#include "graph/digraph.h"
#include "util/rng.h"

namespace kadsim::flow {
namespace {

/// Kademlia-like connectivity graph at tiny n: target out-degree `deg`,
/// mostly reciprocated edges (same shape as the micro-bench generator).
graph::Digraph kademlia_like_graph(int n, int deg, std::uint64_t seed) {
    util::Rng rng(seed);
    graph::Digraph g(n);
    for (int u = 0; u < n; ++u) {
        for (int j = 0; j < deg; ++j) {
            const int v = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
            if (v == u) continue;
            g.add_edge(u, v);
            if (rng.next_bool(0.9)) g.add_edge(v, u);
        }
    }
    g.finalize();
    return g;
}

std::vector<std::pair<int, int>> non_adjacent_pairs(const graph::Digraph& g) {
    std::vector<std::pair<int, int>> pairs;
    for (int u = 0; u < g.vertex_count(); ++u) {
        for (int v = 0; v < g.vertex_count(); ++v) {
            if (u != v && !g.has_edge(u, v)) pairs.emplace_back(u, v);
        }
    }
    return pairs;
}

// ~100 seeded graphs: every non-adjacent pair must agree between the capped
// Dinic running on ONE workspace reused via touched-arc resets and an exact
// push-relabel on a fresh workspace per pair (no reset path at all). The
// brute-force oracle double-checks a deterministic subset of pairs.
TEST(FlowWorkspaceDifferential, TouchedArcDinicVsExactPushRelabelVsBruteforce) {
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        const int n = 6 + static_cast<int>(seed % 4);  // 6..9
        const graph::Digraph g = kademlia_like_graph(n, 2, seed);
        const std::vector<int> in_degrees = g.in_degrees();
        const FlowNetwork net = even_transform(g);
        FlowWorkspace reused(net);
        Dinic dinic;
        PushRelabel push_relabel;

        const auto pairs = non_adjacent_pairs(g);
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            const auto [u, v] = pairs[i];
            const int bound =
                std::min(g.out_degree(u), in_degrees[static_cast<std::size_t>(v)]);
            reused.reset();
            const int capped =
                dinic.max_flow(reused, out_vertex(u), in_vertex(v), bound);

            FlowWorkspace fresh(net);
            const int exact =
                push_relabel.max_flow(fresh, out_vertex(u), in_vertex(v));
            EXPECT_EQ(capped, exact)
                << "seed " << seed << " pair (" << u << "," << v << ")";

            if (i % 7 == 0) {  // oracle on a deterministic subset (it is slow)
                EXPECT_EQ(exact, pair_vertex_connectivity_bruteforce(g, u, v))
                    << "seed " << seed << " pair (" << u << "," << v << ")";
            }
        }
    }
}

// Reusing one workspace across pairs must be pure: recomputing a pair after
// arbitrary interleaved work gives the same κ as a fresh workspace, and a
// reset leaves every arc at its as-built capacity.
TEST(FlowWorkspacePurity, ReuseAcrossPairsMatchesFreshWorkspace) {
    const graph::Digraph g = kademlia_like_graph(12, 3, 42);
    const FlowNetwork net = even_transform(g);
    FlowWorkspace reused(net);
    const auto pairs = non_adjacent_pairs(g);
    ASSERT_GE(pairs.size(), 3u);

    // First sweep on the reused workspace.
    std::vector<int> first;
    for (const auto& [u, v] : pairs) {
        first.push_back(pair_vertex_connectivity(g, net, reused, u, v));
    }
    // Second sweep in reverse order: every value must replay identically.
    for (std::size_t i = pairs.size(); i-- > 0;) {
        const auto [u, v] = pairs[i];
        EXPECT_EQ(pair_vertex_connectivity(g, net, reused, u, v), first[i])
            << "pair (" << u << "," << v << ") not pure under reuse";
    }
    // And against fresh workspaces (the convenience overload).
    for (std::size_t i = 0; i < pairs.size(); i += 5) {
        const auto [u, v] = pairs[i];
        EXPECT_EQ(pair_vertex_connectivity(g, u, v), first[i]);
    }
    // After a final reset, the residual capacities are exactly as built.
    reused.reset();
    for (int a = 0; a < net.arc_count(); ++a) {
        ASSERT_EQ(reused.cap(a), net.original_cap(a)) << "arc " << a;
    }
}

TEST(FlowWorkspaceCounters, ResetIsTouchedNotFullSweep) {
    const graph::Digraph g = kademlia_like_graph(64, 4, 7);
    const FlowNetwork net = even_transform(g);
    FlowWorkspace ws(net);
    Dinic dinic;
    const auto pairs = non_adjacent_pairs(g);
    ASSERT_GE(pairs.size(), 10u);
    for (std::size_t i = 0; i < 10; ++i) {
        ws.reset();
        (void)dinic.max_flow(ws, out_vertex(pairs[i].first),
                             in_vertex(pairs[i].second));
    }
    ws.reset();  // flush the last run
    const auto& stats = ws.stats();
    // Every counted reset had a non-empty log, shorter than the arc array:
    // the undo did strictly less work than m+n full sweeps would have.
    EXPECT_GT(stats.resets, 0u);
    EXPECT_EQ(stats.full_sweeps_avoided, stats.resets);
    EXPECT_LT(stats.arcs_touched,
              stats.resets * static_cast<std::uint64_t>(net.arc_count()));
}

// The counters surface through vertex_connectivity and are thread-count
// independent (per-pair work is deterministic; sums are commutative).
TEST(FlowWorkspaceCounters, SurfaceThroughConnectivityResult) {
    const graph::Digraph g = kademlia_like_graph(48, 4, 11);
    const auto r = vertex_connectivity(g);
    EXPECT_GT(r.pairs_evaluated, 0u);
    EXPECT_GT(r.arcs_touched, 0u);
    EXPECT_GT(r.full_resets_avoided, 0u);
    EXPECT_GT(r.arena_bytes, 0u);
}

}  // namespace
}  // namespace kadsim::flow
