// FlatSnapshot::load_binary hardening — a resilience daemon ingests
// snapshot files from outside the process, so a truncated upload, a
// corrupted disk block, or a hostile header must produce a clean parse
// error that names the byte position, never a crash, a multi-gigabyte
// allocation, or a partially-filled snapshot.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>

#include "graph/flat_snapshot.h"
#include "graph/snapshot.h"

namespace kadsim::graph {
namespace {

FlatSnapshot make_snapshot() {
    FlatSnapshot snap;
    snap.push_node(10);
    snap.push_contact(20);
    snap.push_contact(30);
    snap.push_node(20);
    snap.push_contact(10);
    snap.push_node(30);
    snap.push_contact(10);
    snap.push_contact(20);
    snap.push_contact(99);
    return snap;
}

std::string serialize(const FlatSnapshot& snap, std::int64_t time_ms = 12345) {
    std::ostringstream out(std::ios::binary);
    snap.save_binary(out, time_ms);
    return out.str();
}

/// A sentinel snapshot whose contents must survive any failed load.
FlatSnapshot sentinel() {
    FlatSnapshot snap;
    snap.push_node(7);
    snap.push_contact(8);
    return snap;
}

/// Attempts load_binary on `bytes`; returns the error message ("" = parsed).
/// Asserts the no-partial-state contract on failure.
std::string try_load(const std::string& bytes) {
    FlatSnapshot dst = sentinel();
    std::istringstream in(bytes, std::ios::binary);
    try {
        (void)dst.load_binary(in);
        return {};
    } catch (const std::runtime_error& e) {
        EXPECT_EQ(dst, sentinel())
            << "failed load left partial state behind: " << e.what();
        return e.what();
    }
}

TEST(SnapshotCorruption, RoundTripParsesAndEveryStrictPrefixThrows) {
    const FlatSnapshot original = make_snapshot();
    const std::string bytes = serialize(original);

    // The full file round-trips.
    FlatSnapshot dst;
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_EQ(dst.load_binary(in), 12345);
    EXPECT_EQ(dst, original);

    // Every strict prefix — header cut short, arrays cut short, arrays cut
    // mid-element — is a clean diagnosable error naming a byte position.
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        const std::string message = try_load(bytes.substr(0, len));
        ASSERT_FALSE(message.empty()) << "prefix of " << len << " bytes parsed";
        EXPECT_NE(message.find("byte"), std::string::npos)
            << "no byte position in: " << message << " (prefix " << len << ")";
    }
}

TEST(SnapshotCorruption, BadMagicAndVersionAreRejected) {
    std::string bytes = serialize(make_snapshot());
    std::string corrupt = bytes;
    corrupt[0] = 'X';
    EXPECT_NE(try_load(corrupt).find("bad magic"), std::string::npos);

    corrupt = bytes;
    corrupt[4] = 9;  // version field
    EXPECT_NE(try_load(corrupt).find("unsupported version"), std::string::npos);
}

TEST(SnapshotCorruption, ImpossibleHeaderCountsFailBeforeAllocation) {
    std::string bytes = serialize(make_snapshot());

    // n = 2^32: more nodes than the u32 address space can hold. The check
    // must fire on the header alone — the file has nowhere near that data.
    std::string corrupt = bytes;
    const std::uint64_t impossible_n = 0x100000000ull;
    std::memcpy(corrupt.data() + 16, &impossible_n, sizeof impossible_n);
    EXPECT_NE(try_load(corrupt).find("impossible node count"), std::string::npos);

    corrupt = bytes;
    const std::uint64_t impossible_m = 0x100000000ull;
    std::memcpy(corrupt.data() + 24, &impossible_m, sizeof impossible_m);
    EXPECT_NE(try_load(corrupt).find("contact count overflow"), std::string::npos);

    // A plausible-looking but oversized m on a seekable stream: rejected by
    // the payload-size check, before any array is read.
    corrupt = bytes;
    const std::uint64_t oversized_m = 1000000;
    std::memcpy(corrupt.data() + 24, &oversized_m, sizeof oversized_m);
    EXPECT_NE(try_load(corrupt).find("file too short for declared counts"),
              std::string::npos);
}

TEST(SnapshotCorruption, InconsistentOffsetsAreRejected) {
    const FlatSnapshot original = make_snapshot();
    const std::string bytes = serialize(original);
    const std::size_t header = 32;
    const std::size_t offsets_start = header + original.node_count() * 4;

    // offsets[1] jumps beyond m: the rows no longer tile the contact slab.
    std::string corrupt = bytes;
    const std::uint32_t bogus = 0xFFFFFFFFu;
    std::memcpy(corrupt.data() + offsets_start + 4, &bogus, sizeof bogus);
    EXPECT_NE(try_load(corrupt).find("inconsistent offsets"), std::string::npos);

    // offsets[0] != 0.
    corrupt = bytes;
    const std::uint32_t one = 1;
    std::memcpy(corrupt.data() + offsets_start, &one, sizeof one);
    EXPECT_NE(try_load(corrupt).find("inconsistent offsets"), std::string::npos);
}

TEST(SnapshotCorruption, EmptySnapshotRoundTripsAndTruncatedEmptyThrows) {
    const FlatSnapshot empty;
    const std::string bytes = serialize(empty, -7);
    FlatSnapshot dst = make_snapshot();
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_EQ(dst.load_binary(in), -7);
    EXPECT_EQ(dst.node_count(), 0u);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_FALSE(try_load(bytes.substr(0, len)).empty());
    }
}

TEST(SnapshotCorruption, RoutingSnapshotParseWrapsBinaryErrors) {
    // Through the format-auto-detecting front door: a byte stream that
    // opens like KSNP but lies must fail cleanly there too.
    const std::string bytes = serialize(make_snapshot());
    std::istringstream in(bytes.substr(0, 20), std::ios::binary);
    EXPECT_THROW((void)RoutingSnapshot::parse(in), std::runtime_error);

    std::istringstream garbage("this is not a snapshot\n");
    EXPECT_THROW((void)RoutingSnapshot::parse(garbage), std::runtime_error);
}

}  // namespace
}  // namespace kadsim::graph
