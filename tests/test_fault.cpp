// Fault models: deterministic victim selection on fixed snapshots, seeded
// rerun identity, scheduling contracts, spec validation and the factory.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fault/models.h"

namespace kadsim::fault {
namespace {

/// Hand-built overlay view: live addresses plus an explicit routing snapshot.
/// Node ids are synthesized with the scenario hash rule so region tests can
/// reason about real identifier bits.
class FakeView final : public FaultView {
public:
    FakeView(std::vector<net::Address> live,
             std::vector<std::pair<net::Address, std::vector<net::Address>>> tables,
             int id_bits = 16)
        : live_(std::move(live)), id_bits_(id_bits) {
        for (auto& [address, contacts] : tables) {
            graph::SnapshotNode node;
            node.address = address;
            node.contacts = std::move(contacts);
            snap_.nodes.push_back(std::move(node));
        }
    }

    [[nodiscard]] sim::SimTime now() const override { return now_; }
    [[nodiscard]] const std::vector<net::Address>& live() const override {
        return live_;
    }
    [[nodiscard]] bool is_live(net::Address address) const override {
        return std::find(live_.begin(), live_.end(), address) != live_.end();
    }
    [[nodiscard]] kad::NodeId node_id(net::Address address) const override {
        if (id_overrides_.count(address) != 0) return id_overrides_.at(address);
        return kad::NodeId::hash_of("fake-" + std::to_string(address), id_bits_);
    }
    [[nodiscard]] int id_bits() const override { return id_bits_; }
    [[nodiscard]] const graph::RoutingSnapshot& routing() const override {
        return snap_;
    }

    void set_now(sim::SimTime t) { now_ = t; }
    void set_id(net::Address address, kad::NodeId id) { id_overrides_[address] = id; }

private:
    std::vector<net::Address> live_;
    int id_bits_;
    sim::SimTime now_ = 0;
    graph::RoutingSnapshot snap_;
    std::map<net::Address, kad::NodeId> id_overrides_;
};

TEST(RandomChurnModel, MatchesInlineDrawOrder) {
    // The extracted model must consume the stream exactly like the
    // pre-fault-layer inline code: one uniform instant per scheduled event
    // (removals first), then one uniform index per fired removal.
    FakeView view({7, 3, 9}, {});
    RandomChurn model(ChurnSpec{2, 3});

    util::Rng rng(42);
    util::Rng reference(42);

    const auto removals = model.removal_times(view, rng);
    ASSERT_EQ(removals.size(), 3u);
    for (const sim::SimTime t : removals) {
        EXPECT_EQ(t, static_cast<sim::SimTime>(reference.next_below(
                         static_cast<std::uint64_t>(sim::kMinute))));
        EXPECT_GE(t, 0);
        EXPECT_LT(t, sim::kMinute);
    }
    const auto arrivals = model.arrivals(view, rng);
    ASSERT_EQ(arrivals.size(), 2u);
    for (const sim::SimTime t : arrivals) {
        EXPECT_EQ(t, static_cast<sim::SimTime>(reference.next_below(
                         static_cast<std::uint64_t>(sim::kMinute))));
    }

    const auto victims = model.select_removals(view, rng);
    ASSERT_EQ(victims.size(), 1u);
    const auto index = reference.next_below(3);
    EXPECT_EQ(victims[0], view.live()[index]);
}

TEST(RandomChurnModel, EmptyNetworkDrawsNothing) {
    FakeView view({}, {});
    RandomChurn model(ChurnSpec{0, 1});
    util::Rng rng(1);
    util::Rng untouched(1);
    EXPECT_TRUE(model.select_removals(view, rng).empty());
    // No draw happened: the streams are still in lockstep.
    EXPECT_EQ(rng.next_u64(), untouched.next_u64());
}

TEST(DegreeAttack, RemovesMostReferencedNode) {
    // 1 and 2 reference 5; only 1 references 2 → victim 5.
    FakeView view({1, 2, 5}, {{1, {5, 2}}, {2, {5}}, {5, {1}}});
    TargetedDegreeAttack model(ChurnSpec{0, 1});
    util::Rng rng(9);
    EXPECT_EQ(model.select_removals(view, rng),
              (std::vector<net::Address>{5}));
}

TEST(DegreeAttack, IgnoresStaleReferencesAndBreaksTiesBySmallestAddress) {
    // 9 is dead: references to it must not count. 2 and 5 both have live
    // in-degree 1 → smallest address 2 wins.
    FakeView view({1, 2, 5}, {{1, {5, 9}}, {2, {9}}, {5, {2, 9}}});
    TargetedDegreeAttack model(ChurnSpec{0, 1});
    util::Rng rng(9);
    EXPECT_EQ(model.select_removals(view, rng),
              (std::vector<net::Address>{2}));
}

TEST(KappaAttack, StarvesTheWeakestNode) {
    // Live out-degrees: 1 → {2,5,6} (3), 2 → {5} (1, the κ_min pin),
    // 5 → {1,2} (2). Victim: the pin's only live contact, 5.
    FakeView view({1, 2, 5, 6},
                  {{1, {2, 5, 6}}, {2, {5}}, {5, {1, 2}}, {6, {1, 2}}});
    TargetedKappaAttack model(ChurnSpec{0, 1});
    util::Rng rng(9);
    EXPECT_EQ(model.select_removals(view, rng),
              (std::vector<net::Address>{5}));
}

TEST(KappaAttack, SkipsFullyStarvedNodesAndPicksSmallestContact) {
    // 2 has no live contacts (already starved, κ already 0 through it);
    // the next-weakest with live contacts is 5 (degree 1... contacts {6});
    // among equals the smallest-address pin wins and its smallest live
    // contact is removed.
    FakeView view({1, 2, 5, 6},
                  {{1, {5, 6, 2}}, {2, {9}}, {5, {6}}, {6, {5, 1}}});
    TargetedKappaAttack model(ChurnSpec{0, 1});
    util::Rng rng(9);
    // Pins by degree: 2 (0, skipped), 5 (1) and 6 (2), 1 (3). Pin = 5,
    // victim = its only live contact 6.
    EXPECT_EQ(model.select_removals(view, rng),
              (std::vector<net::Address>{6}));
}

TEST(KappaAttack, EdgelessGraphFallsBackToSmallestAddress) {
    FakeView view({4, 2, 7}, {{4, {}}, {2, {}}, {7, {}}});
    TargetedKappaAttack model(ChurnSpec{0, 1});
    util::Rng rng(9);
    EXPECT_EQ(model.select_removals(view, rng),
              (std::vector<net::Address>{2}));
}

TEST(TargetedModels, AreRngPure) {
    // Targeted selection must not consume the shared stream (their schedule
    // draws are the only stream interaction).
    FakeView view({1, 2, 5}, {{1, {5, 2}}, {2, {5}}, {5, {1}}});
    util::Rng rng(31);
    util::Rng untouched(31);
    TargetedDegreeAttack degree(ChurnSpec{0, 1});
    TargetedKappaAttack kappa(ChurnSpec{0, 1});
    (void)degree.select_removals(view, rng);
    (void)kappa.select_removals(view, rng);
    EXPECT_EQ(rng.next_u64(), untouched.next_u64());
}

TEST(RegionOutage, InRegionMatchesTopPrefixBits) {
    // 16-bit ids: region = top 2 bits equal 0b10.
    const auto id = [](std::uint16_t value) {
        return kad::NodeId::from_limbs(value, 0, 0);
    };
    EXPECT_TRUE(CorrelatedOutage::in_region(id(0x8000), 16, 2, 2));
    EXPECT_TRUE(CorrelatedOutage::in_region(id(0xBFFF), 16, 2, 2));
    EXPECT_FALSE(CorrelatedOutage::in_region(id(0xC000), 16, 2, 2));
    EXPECT_FALSE(CorrelatedOutage::in_region(id(0x7FFF), 16, 2, 2));
}

TEST(RegionOutage, FiresOnceAtTheScheduledInstantAndCutsTheRegion) {
    FaultSpec spec;
    spec.model = ModelKind::kRegionOutage;
    spec.outage_at = sim::minutes(150) + 1234;
    spec.outage_prefix_bits = 1;
    spec.outage_prefix = 1;  // top bit set
    CorrelatedOutage model(spec);

    FakeView view({1, 2, 3, 4}, {});
    view.set_id(1, kad::NodeId::from_limbs(0x8001, 0, 0));  // in region
    view.set_id(2, kad::NodeId::from_limbs(0x0001, 0, 0));
    view.set_id(3, kad::NodeId::from_limbs(0xFFFF, 0, 0));  // in region
    view.set_id(4, kad::NodeId::from_limbs(0x7FFF, 0, 0));

    util::Rng rng(5);
    // Minutes before the cut: nothing scheduled.
    view.set_now(sim::minutes(149));
    EXPECT_TRUE(model.removal_times(view, rng).empty());
    // The cut minute: one event at the exact sub-minute offset.
    view.set_now(sim::minutes(150));
    const auto times = model.removal_times(view, rng);
    ASSERT_EQ(times.size(), 1u);
    EXPECT_EQ(times[0], 1234);
    // One-shot: later minutes schedule nothing.
    view.set_now(sim::minutes(151));
    EXPECT_TRUE(model.removal_times(view, rng).empty());

    const auto victims = model.select_removals(view, rng);
    EXPECT_EQ(victims, (std::vector<net::Address>{1, 3}));
}

TEST(RegionOutage, OverdueCutFiresImmediatelyAtTheFirstTick) {
    // A non-minute-aligned stabilization boundary can place the first fault
    // tick after outage_at; the cut must fire then (delay 0), not vanish.
    FaultSpec spec;
    spec.model = ModelKind::kRegionOutage;
    spec.outage_at = sim::minutes(120) + 5000;
    CorrelatedOutage model(spec);
    FakeView view({1}, {});
    view.set_now(sim::minutes(121));
    util::Rng rng(5);
    const auto times = model.removal_times(view, rng);
    ASSERT_EQ(times.size(), 1u);
    EXPECT_EQ(times[0], 0);
    // Still one-shot.
    view.set_now(sim::minutes(122));
    EXPECT_TRUE(model.removal_times(view, rng).empty());
}

TEST(FaultSpecModel, LabelsAndFactory) {
    FaultSpec spec;
    spec.churn = ChurnSpec{1, 1};
    EXPECT_EQ(spec.label(), "random(1/1)");
    EXPECT_EQ(make_fault_model(spec)->name(), "random");

    spec.model = ModelKind::kDegreeAttack;
    EXPECT_EQ(spec.label(), "degree(1/1)");
    EXPECT_EQ(make_fault_model(spec)->name(), "degree");

    spec.model = ModelKind::kKappaAttack;
    EXPECT_EQ(make_fault_model(spec)->name(), "kappa");

    spec.model = ModelKind::kRegionOutage;
    spec.churn = ChurnSpec{1, 0};  // arrivals allowed, removals are the cut's
    spec.outage_at = sim::minutes(150);
    spec.outage_prefix_bits = 2;
    spec.outage_prefix = 3;
    EXPECT_EQ(spec.label(), "region(1/0,t=150,p=2:3)");
    EXPECT_EQ(make_fault_model(spec)->name(), "region");
    // Sub-minute outage instants keep millisecond precision in the label
    // (distinct specs must never share a bench cache key).
    spec.outage_at = sim::minutes(150) + 30000;
    EXPECT_EQ(spec.label(),
              "region(1/0,t=" + std::to_string(sim::minutes(150) + 30000) +
                  "ms,p=2:3)");
}

TEST(FaultSpecModel, Validation) {
    FaultSpec spec;
    spec.churn = ChurnSpec{-1, 0};
    EXPECT_THROW(spec.validate(), std::invalid_argument);

    spec = FaultSpec{};
    spec.model = ModelKind::kRegionOutage;
    spec.outage_prefix_bits = 0;
    EXPECT_THROW(spec.validate(), std::invalid_argument);
    spec.outage_prefix_bits = 2;
    spec.outage_prefix = 4;  // needs 3 bits
    EXPECT_THROW(spec.validate(), std::invalid_argument);
    spec.outage_prefix = 3;
    EXPECT_NO_THROW(spec.validate());
    // Per-minute removals would be silently ignored by the cut → rejected.
    spec.churn = ChurnSpec{0, 2};
    EXPECT_THROW(spec.validate(), std::invalid_argument);
    spec.churn = ChurnSpec{2, 0};
    EXPECT_NO_THROW(spec.validate());

    EXPECT_FALSE(FaultSpec{}.any());
    FaultSpec churny;
    churny.churn = ChurnSpec{0, 1};
    EXPECT_TRUE(churny.any());
    FaultSpec outage;
    outage.model = ModelKind::kRegionOutage;
    outage.outage_at = sim::minutes(150);
    EXPECT_TRUE(outage.any());
}

TEST(FaultSpecModel, SeededReplaysAreIdentical) {
    FakeView view({1, 2, 5, 6},
                  {{1, {2, 5, 6}}, {2, {5}}, {5, {1, 2}}, {6, {1, 2}}});
    for (const ModelKind kind :
         {ModelKind::kRandomChurn, ModelKind::kDegreeAttack, ModelKind::kKappaAttack}) {
        FaultSpec spec;
        spec.model = kind;
        spec.churn = ChurnSpec{2, 3};
        auto a = make_fault_model(spec);
        auto b = make_fault_model(spec);
        util::Rng rng_a(123);
        util::Rng rng_b(123);
        EXPECT_EQ(a->removal_times(view, rng_a), b->removal_times(view, rng_b));
        EXPECT_EQ(a->select_removals(view, rng_a), b->select_removals(view, rng_b));
        EXPECT_EQ(a->arrivals(view, rng_a), b->arrivals(view, rng_b));
    }
}

}  // namespace
}  // namespace kadsim::fault
