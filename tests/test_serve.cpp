// serve::LruCache and the serve::protocol frame layer — the daemon's
// resource-bounding and wire primitives, pinned in isolation (the daemon
// behavior built on them is covered by test_serve_daemon.cpp).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>

#include "serve/lru_cache.h"
#include "serve/protocol.h"

namespace kadsim::serve {
namespace {

// ---------------------------------------------------------------------------
// LruCache
// ---------------------------------------------------------------------------

TEST(LruCache, EvictsLeastRecentlyUsed) {
    LruCache<std::string, int> cache(2);
    cache.put("a", std::make_shared<int>(1));
    cache.put("b", std::make_shared<int>(2));
    ASSERT_NE(cache.get("a"), nullptr);  // refresh "a": "b" is now LRU
    cache.put("c", std::make_shared<int>(3));
    EXPECT_EQ(cache.get("b"), nullptr);
    ASSERT_NE(cache.get("a"), nullptr);
    ASSERT_NE(cache.get("c"), nullptr);
    EXPECT_EQ(cache.size(), 2u);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 3u);
}

TEST(LruCache, ReinsertRefreshesWithoutEviction) {
    LruCache<std::string, int> cache(2);
    cache.put("a", std::make_shared<int>(1));
    cache.put("b", std::make_shared<int>(2));
    cache.put("a", std::make_shared<int>(10));  // replace, no eviction
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_EQ(*cache.get("a"), 10);
    cache.put("c", std::make_shared<int>(3));  // "b" is LRU now
    EXPECT_EQ(cache.get("b"), nullptr);
    EXPECT_NE(cache.get("a"), nullptr);
}

TEST(LruCache, EvictedValueSurvivesWhileHeld) {
    LruCache<std::string, int> cache(1);
    cache.put("a", std::make_shared<int>(7));
    const std::shared_ptr<int> held = cache.get("a");
    cache.put("b", std::make_shared<int>(8));  // evicts "a" from the cache
    EXPECT_EQ(cache.get("a"), nullptr);
    ASSERT_NE(held, nullptr);
    EXPECT_EQ(*held, 7) << "eviction must not invalidate a held value";
}

TEST(LruCache, CapacityOneDegeneratesToSingleSlot) {
    LruCache<int, int> cache(1);
    for (int i = 0; i < 5; ++i) cache.put(i, std::make_shared<int>(i));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().evictions, 4u);
    EXPECT_EQ(*cache.get(4), 4);
}

// ---------------------------------------------------------------------------
// Protocol framing (over a socketpair, the same byte stream the AF_UNIX
// connection carries)
// ---------------------------------------------------------------------------

struct FdPair {
    int a = -1;
    int b = -1;
    FdPair() {
        int fds[2];
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a = fds[0];
        b = fds[1];
    }
    ~FdPair() {
        if (a >= 0) ::close(a);
        if (b >= 0) ::close(b);
    }
};

TEST(Protocol, RoundTripsPayloadsIncludingEmptyAndBinary) {
    FdPair fds;
    std::string binary = "KSNP\x01\x00\x00\x00";
    binary.push_back('\0');
    binary += "tail";
    for (const std::string& payload : {std::string("KAPPA latest"), std::string(),
                                       binary, std::string(100000, 'x')}) {
        std::thread writer(
            [&] { EXPECT_EQ(write_frame(fds.a, payload), FrameResult::kOk); });
        std::string got = "poisoned";
        EXPECT_EQ(read_frame(fds.b, got), FrameResult::kOk);
        EXPECT_EQ(got, payload);
        writer.join();
    }
}

TEST(Protocol, CleanCloseBetweenFramesReadsAsClosed) {
    FdPair fds;
    ASSERT_EQ(write_frame(fds.a, "one"), FrameResult::kOk);
    ::close(fds.a);
    fds.a = -1;
    std::string got;
    EXPECT_EQ(read_frame(fds.b, got), FrameResult::kOk);
    EXPECT_EQ(got, "one");
    EXPECT_EQ(read_frame(fds.b, got), FrameResult::kClosed);
}

TEST(Protocol, MidFrameCloseReadsAsTruncated) {
    FdPair fds;
    // A length prefix promising 100 bytes, then only 3, then EOF.
    const char partial[] = {100, 0, 0, 0, 'a', 'b', 'c'};
    ASSERT_EQ(::write(fds.a, partial, sizeof partial),
              static_cast<ssize_t>(sizeof partial));
    ::close(fds.a);
    fds.a = -1;
    std::string got;
    EXPECT_EQ(read_frame(fds.b, got), FrameResult::kTruncated);
}

TEST(Protocol, OversizedDeclaredLengthIsRejectedNotAllocated) {
    FdPair fds;
    const unsigned char huge[] = {0xFF, 0xFF, 0xFF, 0xFF};  // ~4 GiB claim
    ASSERT_EQ(::write(fds.a, huge, sizeof huge), static_cast<ssize_t>(sizeof huge));
    std::string got;
    EXPECT_EQ(read_frame(fds.b, got, /*max_payload=*/1 << 20), FrameResult::kTooLarge);
}

}  // namespace
}  // namespace kadsim::serve
