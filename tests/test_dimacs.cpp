// DIMACS max-flow format round-trip (the paper's HIPR interchange format).
#include <gtest/gtest.h>

#include <sstream>

#include "flow/dimacs.h"
#include "flow/dinic.h"
#include "flow/even_transform.h"
#include "flow/flow_workspace.h"
#include "graph/digraph.h"

namespace kadsim::flow {
namespace {

TEST(Dimacs, WriteProducesExpectedHeader) {
    FlowNetwork net(3);
    net.add_arc(0, 1, 4);
    net.add_arc(1, 2, 2);
    net.finalize();
    std::ostringstream out;
    write_dimacs(net, 0, 2, out);
    const std::string text = out.str();
    EXPECT_NE(text.find("p max 3 2"), std::string::npos);
    EXPECT_NE(text.find("n 1 s"), std::string::npos);
    EXPECT_NE(text.find("n 3 t"), std::string::npos);
    EXPECT_NE(text.find("a 1 2 4"), std::string::npos);
    EXPECT_NE(text.find("a 2 3 2"), std::string::npos);
}

TEST(Dimacs, RoundTripPreservesMaxFlow) {
    graph::Digraph g(6);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 3);
    g.add_edge(3, 4);
    g.add_edge(4, 5);
    g.add_edge(0, 4);
    g.finalize();
    const FlowNetwork net = even_transform(g);

    std::stringstream buffer;
    write_dimacs(net, out_vertex(0), in_vertex(5), buffer);
    const DimacsProblem parsed = read_dimacs(buffer);

    Dinic solver;
    FlowWorkspace original_ws(net);
    const int expected = solver.max_flow(original_ws, out_vertex(0), in_vertex(5));
    Dinic solver2;
    FlowWorkspace parsed_ws(parsed.network);
    EXPECT_EQ(solver2.max_flow(parsed_ws, parsed.source, parsed.sink), expected);
}

TEST(Dimacs, ParsesCommentsAndBlankLines) {
    std::istringstream in(
        "c a comment\n"
        "\n"
        "p max 2 1\n"
        "n 1 s\n"
        "n 2 t\n"
        "a 1 2 9\n");
    const DimacsProblem p = read_dimacs(in);
    EXPECT_EQ(p.network.vertex_count(), 2);
    EXPECT_EQ(p.source, 0);
    EXPECT_EQ(p.sink, 1);
}

TEST(Dimacs, RejectsMalformedInput) {
    {
        std::istringstream in("p max 2 1\nn 1 s\na 1 2 5\n");  // missing sink
        EXPECT_THROW((void)read_dimacs(in), std::runtime_error);
    }
    {
        std::istringstream in("p max 2 2\nn 1 s\nn 2 t\na 1 2 5\n");  // arc count
        EXPECT_THROW((void)read_dimacs(in), std::runtime_error);
    }
    {
        std::istringstream in("p max 2 1\nn 1 s\nn 2 t\na 1 9 5\n");  // bad vertex
        EXPECT_THROW((void)read_dimacs(in), std::runtime_error);
    }
    {
        std::istringstream in("a 1 2 5\n");  // arc before problem line
        EXPECT_THROW((void)read_dimacs(in), std::runtime_error);
    }
    {
        std::istringstream in("x nonsense\n");
        EXPECT_THROW((void)read_dimacs(in), std::runtime_error);
    }
}

}  // namespace
}  // namespace kadsim::flow
