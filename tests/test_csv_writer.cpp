// util::CsvWriter I/O-error behavior — a bench that ran for an hour must
// never print "csv: <path>" over a file the filesystem silently dropped.
// Regression tests for the stream-state checking: unwritable paths fail at
// construction, a full device fails at close() (or earlier), and use after
// close is an error instead of a silent no-op.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "util/csv.h"

namespace kadsim::util {
namespace {

std::string temp_path(const char* tag) {
    return (std::filesystem::temp_directory_path() /
            (std::string("kadsim_csv_") + tag + "_" + std::to_string(::getpid()) +
             ".csv"))
        .string();
}

TEST(CsvWriter, WritesAndClosesCleanly) {
    const std::string path = temp_path("ok");
    {
        CsvWriter csv(path);
        csv.write_row({"a", "b,comma", "c\"quote"});
        csv.write_row({CsvWriter::field(1.5), CsvWriter::field(7LL)});
        csv.close();
    }
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "a,\"b,comma\",\"c\"\"quote\"");
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "1.5,7");
    std::filesystem::remove(path);
}

TEST(CsvWriter, UnopenablePathThrowsAtConstruction) {
    // A parent that exists as a *file* cannot gain children.
    const std::string blocker = temp_path("blocker");
    std::ofstream(blocker).put('x');
    EXPECT_THROW(CsvWriter(blocker + "/sub/out.csv"), std::runtime_error);
    std::filesystem::remove(blocker);
}

TEST(CsvWriter, FullDeviceFailsLoudlyNotSilently) {
    // /dev/full accepts the open and fails every flushed write with ENOSPC —
    // the canonical full-disk simulation.
    if (!std::filesystem::exists("/dev/full")) GTEST_SKIP() << "no /dev/full";
    auto writer_on_full_device = [] {
        CsvWriter csv("/dev/full");
        // Enough bytes to defeat any stdio buffer, so the failure surfaces
        // in write_row or, at the latest, in close().
        for (int i = 0; i < 100000; ++i) {
            csv.write_row({"0123456789", "abcdefghij", "0123456789"});
        }
        csv.close();
    };
    EXPECT_THROW(writer_on_full_device(), std::runtime_error);
}

TEST(CsvWriter, WriteAfterCloseThrows) {
    const std::string path = temp_path("after_close");
    CsvWriter csv(path);
    csv.write_row({"x"});
    csv.close();
    EXPECT_THROW(csv.write_row({"y"}), std::runtime_error);
    csv.close();  // idempotent: a second close is a no-op, not an error
    std::filesystem::remove(path);
}

}  // namespace
}  // namespace kadsim::util
