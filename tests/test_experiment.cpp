// End-to-end experiment driver on small networks.
#include <gtest/gtest.h>

#include "core/experiment.h"

namespace kadsim::core {
namespace {

ExperimentConfig tiny_experiment(std::uint64_t seed = 3) {
    ExperimentConfig cfg;
    cfg.scenario.name = "tiny";
    cfg.scenario.initial_size = 25;
    cfg.scenario.seed = seed;
    cfg.scenario.kad.k = 8;
    cfg.scenario.kad.s = 1;
    cfg.scenario.traffic.enabled = true;
    cfg.scenario.phases.end = sim::minutes(150);
    cfg.snapshot_interval = sim::minutes(30);
    cfg.analyzer.sample_c = 1.0;  // exact on tiny graphs
    cfg.analyzer.threads = 2;
    return cfg;
}

TEST(Experiment, ProducesOneSamplePerInterval) {
    const auto series = run_experiment(tiny_experiment());
    ASSERT_EQ(series.samples.size(), 5u);  // 30,60,90,120,150
    EXPECT_DOUBLE_EQ(series.samples.front().time_min, 30.0);
    EXPECT_DOUBLE_EQ(series.samples.back().time_min, 150.0);
    EXPECT_EQ(series.name, "tiny");
}

TEST(Experiment, StabilizedSmallNetworkIsConnected) {
    const auto series = run_experiment(tiny_experiment());
    const auto& last = series.samples.back();
    EXPECT_EQ(last.n, 25);
    EXPECT_GT(last.kappa_min, 0);
    EXPECT_GE(last.kappa_avg, last.kappa_min);
    EXPECT_EQ(last.scc_count, 1);
    // §5.2: the connectivity graph is nearly undirected.
    EXPECT_GT(last.reciprocity, 0.8);
}

TEST(Experiment, ProgressCallbackSeesEverySample) {
    int calls = 0;
    const auto series = run_experiment(tiny_experiment(),
                                       [&calls](const ConnectivitySample&) { ++calls; });
    EXPECT_EQ(calls, static_cast<int>(series.samples.size()));
}

TEST(Experiment, DeterministicSeriesForSameSeed) {
    const auto a = run_experiment(tiny_experiment(9));
    const auto b = run_experiment(tiny_experiment(9));
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].kappa_min, b.samples[i].kappa_min);
        EXPECT_DOUBLE_EQ(a.samples[i].kappa_avg, b.samples[i].kappa_avg);
        EXPECT_EQ(a.samples[i].n, b.samples[i].n);
        EXPECT_EQ(a.samples[i].m, b.samples[i].m);
    }
}

TEST(Experiment, SeriesAccessorsAlign) {
    const auto series = run_experiment(tiny_experiment());
    const auto kmin = series.kappa_min_series();
    const auto kavg = series.kappa_avg_series();
    const auto size = series.size_at_samples();
    ASSERT_EQ(kmin.size(), series.samples.size());
    ASSERT_EQ(kavg.size(), series.samples.size());
    ASSERT_EQ(size.size(), series.samples.size());
    for (std::size_t i = 0; i < kmin.size(); ++i) {
        EXPECT_DOUBLE_EQ(kmin.time_at(i), series.samples[i].time_min);
        EXPECT_DOUBLE_EQ(kmin.value_at(i), series.samples[i].kappa_min);
    }
    // Network-size series recorded every minute.
    EXPECT_GE(series.network_size.size(), 150u);
}

TEST(Experiment, SummariesSelectTimeWindow) {
    const auto series = run_experiment(tiny_experiment());
    const auto all = series.kappa_min_summary(0.0, 1e9);
    EXPECT_EQ(all.count(), series.samples.size());
    const auto late = series.kappa_min_summary(120.0, 1e9);
    EXPECT_EQ(late.count(), 2u);  // samples at 120 and 150
    const auto none = series.kappa_min_summary(1000.0, 2000.0);
    EXPECT_EQ(none.count(), 0u);
}

}  // namespace
}  // namespace kadsim::core
