// Analysis-layer invariants, property-tested across seeded graphs:
//   * Whitney's chain κ(u,v) ≤ λ(u,v) ≤ min(out_degree(u), in_degree(v))
//     per sampled pair;
//   * SCC fraction ∈ [0,1], largest-SCC size monotone under vertex deletion;
//   * articulation points matching an O(n·m) delete-and-recheck oracle;
//   * the metric suite's determinism (pool fan-out vs inline) and its
//     values on graphs with known structure.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "analysis/metrics.h"
#include "analysis/structure.h"
#include "exec/thread_pool.h"
#include "flow/edge_connectivity.h"
#include "flow/even_transform.h"
#include "flow/sampling.h"
#include "flow/vertex_connectivity.h"
#include "graph/certificate.h"
#include "graph/digraph.h"
#include "util/rng.h"

namespace kadsim::analysis {
namespace {

/// Kademlia-like connectivity graph: target out-degree `deg`, mostly
/// reciprocated edges (same shape as the micro-bench generator).
graph::Digraph kademlia_like_graph(int n, int deg, std::uint64_t seed) {
    util::Rng rng(seed);
    graph::Digraph g(n);
    for (int u = 0; u < n; ++u) {
        for (int j = 0; j < deg; ++j) {
            const int v = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
            if (v == u) continue;
            g.add_edge(u, v);
            if (rng.next_bool(0.9)) g.add_edge(v, u);
        }
    }
    g.finalize();
    return g;
}

/// The induced subgraph after deleting `removed` vertices (ids compacted in
/// ascending order of the survivors).
graph::Digraph without_vertices(const graph::Digraph& g,
                                const std::vector<bool>& removed) {
    const int n = g.vertex_count();
    std::vector<int> remap(static_cast<std::size_t>(n), -1);
    int kept = 0;
    for (int v = 0; v < n; ++v) {
        if (!removed[static_cast<std::size_t>(v)]) remap[static_cast<std::size_t>(v)] = kept++;
    }
    graph::Digraph sub(kept);
    for (int u = 0; u < n; ++u) {
        if (removed[static_cast<std::size_t>(u)]) continue;
        for (const int v : g.out(u)) {
            if (removed[static_cast<std::size_t>(v)]) continue;
            sub.add_edge(remap[static_cast<std::size_t>(u)],
                         remap[static_cast<std::size_t>(v)]);
        }
    }
    sub.finalize();
    return sub;
}

// Whitney's chain per sampled pair, across seeded graphs: for the same
// smallest-out-degree sources the analyzer uses, κ(u,v) ≤ λ(u,v) for every
// non-adjacent sink, and λ(u,v) ≤ min(out_degree(u), in_degree(v)) for every
// sink.
TEST(AnalysisInvariants, KappaLambdaDegreeChainPerSampledPair) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        const int n = 18 + static_cast<int>(seed % 5);
        const graph::Digraph g = kademlia_like_graph(n, 3, seed);
        const std::vector<int> in_degrees = g.in_degrees();
        const flow::FlowNetwork even_net = flow::even_transform(g);
        flow::FlowWorkspace even_ws(even_net);
        const flow::FlowNetwork unit_net = flow::unit_capacity_network(g);
        flow::FlowWorkspace unit_ws(unit_net);

        const std::vector<int> sources =
            flow::pick_smallest_out_degree_sources(g, 0.25, 2);
        for (const int u : sources) {
            for (int v = 0; v < n; ++v) {
                if (v == u) continue;
                const int bound =
                    std::min(g.out_degree(u), in_degrees[static_cast<std::size_t>(v)]);
                const int lambda = flow::pair_edge_connectivity(g, unit_net, unit_ws, u, v);
                EXPECT_LE(lambda, bound)
                    << "seed " << seed << " pair (" << u << "," << v << ")";
                if (!g.has_edge(u, v)) {
                    const int kappa =
                        flow::pair_vertex_connectivity(g, even_net, even_ws, u, v);
                    EXPECT_LE(kappa, lambda)
                        << "seed " << seed << " pair (" << u << "," << v << ")";
                }
            }
        }
    }
}

// SCC fraction stays in [0,1] and the largest-SCC size never grows when a
// vertex is deleted (any strongly connected set of G−v is one of G).
TEST(AnalysisInvariants, LargestSccMonotoneUnderVertexDeletion) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        graph::Digraph g = kademlia_like_graph(16, 2, seed * 17);
        std::vector<bool> removed(16, false);
        int previous = largest_scc_size(g);
        for (int victim = 0; victim < 12; ++victim) {
            removed[static_cast<std::size_t>(victim)] = true;
            const graph::Digraph sub = without_vertices(g, removed);
            const int largest = largest_scc_size(sub);
            EXPECT_LE(largest, previous) << "seed " << seed << " victim " << victim;
            if (sub.vertex_count() > 0) {
                const double frac = static_cast<double>(largest) /
                                    static_cast<double>(sub.vertex_count());
                EXPECT_GE(frac, 0.0);
                EXPECT_LE(frac, 1.0);
                EXPECT_GT(largest, 0);  // a lone vertex is an SCC of size 1
            }
            previous = largest;
        }
    }
}

/// Oracle: weak components of the undirected projection among `alive`
/// vertices, by BFS (O(n+m) per call).
int weak_components(const graph::Digraph& g, int skip) {
    const int n = g.vertex_count();
    // Undirected adjacency via both directions of every edge.
    std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
    for (int u = 0; u < n; ++u) {
        for (const int v : g.out(u)) {
            adj[static_cast<std::size_t>(u)].push_back(v);
            adj[static_cast<std::size_t>(v)].push_back(u);
        }
    }
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    int components = 0;
    for (int root = 0; root < n; ++root) {
        if (root == skip || seen[static_cast<std::size_t>(root)]) continue;
        ++components;
        std::vector<int> queue{root};
        seen[static_cast<std::size_t>(root)] = true;
        for (std::size_t head = 0; head < queue.size(); ++head) {
            for (const int w : adj[static_cast<std::size_t>(queue[head])]) {
                if (w == skip || seen[static_cast<std::size_t>(w)]) continue;
                seen[static_cast<std::size_t>(w)] = true;
                queue.push_back(w);
            }
        }
    }
    return components;
}

// The iterative-Tarjan articulation set must equal the delete-and-recheck
// oracle: v is an articulation point iff removing it increases the weak
// component count.
TEST(AnalysisInvariants, ArticulationPointsMatchDeleteAndRecheckOracle) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const int n = 10 + static_cast<int>(seed % 6);
        // Sparse graphs (target out-degree 1) so cut vertices actually occur.
        const graph::Digraph g = kademlia_like_graph(n, 1, seed * 7);
        const UndirectedStructure s = undirected_structure(g);

        const int base_components = weak_components(g, /*skip=*/-1);
        EXPECT_EQ(s.components, base_components) << "seed " << seed;
        std::vector<int> oracle;
        for (int v = 0; v < n; ++v) {
            if (weak_components(g, v) > base_components) oracle.push_back(v);
        }
        EXPECT_EQ(s.articulation_points, oracle) << "seed " << seed;
    }
}

TEST(AnalysisInvariants, BridgesAndArticulationOnKnownShapes) {
    // Bidirectional path 0-1-2-3-4: every edge a bridge, interior vertices
    // articulation points.
    graph::Digraph path(5);
    for (int v = 0; v + 1 < 5; ++v) {
        path.add_edge(v, v + 1);
        path.add_edge(v + 1, v);
    }
    path.finalize();
    const UndirectedStructure ps = undirected_structure(path);
    EXPECT_EQ(ps.components, 1);
    EXPECT_EQ(ps.largest_component, 5);
    EXPECT_EQ(ps.bridge_count, 4);
    EXPECT_EQ(ps.articulation_points, (std::vector<int>{1, 2, 3}));

    // Bidirectional cycle: 2-edge-connected, no cut structure at all.
    graph::Digraph cycle(6);
    for (int v = 0; v < 6; ++v) {
        cycle.add_edge(v, (v + 1) % 6);
        cycle.add_edge((v + 1) % 6, v);
    }
    cycle.finalize();
    const UndirectedStructure cs = undirected_structure(cycle);
    EXPECT_EQ(cs.bridge_count, 0);
    EXPECT_TRUE(cs.articulation_points.empty());

    // Two triangles sharing vertex 2: exactly one articulation point, no
    // bridges, one component of 5.
    graph::Digraph bowtie(5);
    const int triangles[2][3] = {{0, 1, 2}, {2, 3, 4}};
    for (const auto& t : triangles) {
        for (int i = 0; i < 3; ++i) {
            bowtie.add_edge(t[i], t[(i + 1) % 3]);
            bowtie.add_edge(t[(i + 1) % 3], t[i]);
        }
    }
    bowtie.finalize();
    const UndirectedStructure bs = undirected_structure(bowtie);
    EXPECT_EQ(bs.components, 1);
    EXPECT_EQ(bs.largest_component, 5);
    EXPECT_EQ(bs.bridge_count, 0);
    EXPECT_EQ(bs.articulation_points, (std::vector<int>{2}));
}

// The metric suite on a graph with known structure, inline vs pool fan-out:
// identical values either way (the determinism contract).
TEST(AnalysisInvariants, MetricSuiteDeterministicAcrossExecutionModes) {
    // Bidirectional ring of 12 with a pendant vertex 12 attached to node 0:
    // one cut vertex (0), one bridge ({0,12}), λ_min = 1 via the pendant.
    graph::Digraph g(13);
    for (int v = 0; v < 12; ++v) {
        g.add_edge(v, (v + 1) % 12);
        g.add_edge((v + 1) % 12, v);
    }
    g.add_edge(0, 12);
    g.add_edge(12, 0);
    g.finalize();

    const MetricContext inline_context{g, 1.0, 1, nullptr};
    const ResilienceMetrics inline_metrics = run_metrics(inline_context);
    EXPECT_EQ(inline_metrics.lambda_min, 1);   // pendant severed by one edge
    EXPECT_EQ(inline_metrics.scc_count, 1);
    EXPECT_DOUBLE_EQ(inline_metrics.scc_frac, 1.0);
    EXPECT_DOUBLE_EQ(inline_metrics.wcc_frac, 1.0);
    EXPECT_EQ(inline_metrics.articulation_points, 1);  // vertex 0
    EXPECT_EQ(inline_metrics.bridges, 1);              // edge {0,12}
    EXPECT_EQ(inline_metrics.out_degree_min, 1);
    EXPECT_EQ(inline_metrics.in_degree_min, 1);

    exec::ThreadPool pool(3);
    const MetricContext pooled_context{g, 1.0, 1, &pool};
    const ResilienceMetrics pooled = run_metrics(pooled_context);
    EXPECT_EQ(pooled.scc_count, inline_metrics.scc_count);
    EXPECT_EQ(pooled.lambda_min, inline_metrics.lambda_min);
    EXPECT_DOUBLE_EQ(pooled.lambda_avg, inline_metrics.lambda_avg);
    EXPECT_DOUBLE_EQ(pooled.scc_frac, inline_metrics.scc_frac);
    EXPECT_DOUBLE_EQ(pooled.wcc_frac, inline_metrics.wcc_frac);
    EXPECT_EQ(pooled.articulation_points, inline_metrics.articulation_points);
    EXPECT_EQ(pooled.bridges, inline_metrics.bridges);
    EXPECT_EQ(pooled.out_degree_min, inline_metrics.out_degree_min);
    EXPECT_EQ(pooled.in_degree_min, inline_metrics.in_degree_min);
}

// Whitney's chain survives certificate preprocessing: on the sparse
// certificate built at the kernels' order rule (k above every sampled pair's
// degree cap), κ_cert(u,v) ≤ λ_cert(u,v) ≤ min(out_degree(u), in_degree(v))
// still holds against the *original* graph's degree bounds — the certificate
// never pushes a pair above its full-graph cap — and the certificate's core
// stays within the Nagamochi–Ibaraki edge budget k·n.
TEST(AnalysisInvariants, KappaLambdaDegreeChainOnCertificateGraphs) {
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        const int n = 14 + static_cast<int>(seed % 7);
        const graph::Digraph g = kademlia_like_graph(n, 3, seed * 131);
        const std::vector<int> in_degrees = g.in_degrees();
        const std::vector<int> sources =
            flow::pick_smallest_out_degree_sources(g, 0.25, 2);

        // The kernels' certificate order: strictly above every sampled
        // source's out-degree, hence above every sampled pair's cap.
        int k = 1;
        for (const int u : sources) k = std::max(k, g.out_degree(u) + 1);
        const graph::SparseCertificate cert = graph::build_certificate(g, k);
        EXPECT_LE(cert.core_edges_kept,
                  static_cast<std::int64_t>(k) * static_cast<std::int64_t>(n))
            << "seed " << seed;

        const graph::Digraph& h = cert.graph;
        const flow::FlowNetwork even_net = flow::even_transform(h);
        flow::FlowWorkspace even_ws(even_net);
        const flow::FlowNetwork unit_net = flow::unit_capacity_network(h);
        flow::FlowWorkspace unit_ws(unit_net);

        for (const int u : sources) {
            for (int v = 0; v < n; ++v) {
                if (v == u) continue;
                const int bound = std::min(
                    g.out_degree(u), in_degrees[static_cast<std::size_t>(v)]);
                const int lambda =
                    flow::pair_edge_connectivity(h, unit_net, unit_ws, u, v);
                EXPECT_LE(lambda, bound)
                    << "seed " << seed << " pair (" << u << "," << v << ")";
                if (!g.has_edge(u, v)) {
                    const int kappa = flow::pair_vertex_connectivity(
                        h, even_net, even_ws, u, v);
                    EXPECT_LE(kappa, lambda)
                        << "seed " << seed << " pair (" << u << "," << v << ")";
                }
            }
        }
    }
}

// Fragmented graph: the fractions see the pieces, κ/λ are 0.
TEST(AnalysisInvariants, FragmentedGraphFractions) {
    // Two bidirectional triangles, no connection between them, plus an
    // isolated vertex: largest SCC/WCC = 3 of 7.
    graph::Digraph g(7);
    const int triangles[2][3] = {{0, 1, 2}, {3, 4, 5}};
    for (const auto& t : triangles) {
        for (int i = 0; i < 3; ++i) {
            g.add_edge(t[i], t[(i + 1) % 3]);
            g.add_edge(t[(i + 1) % 3], t[i]);
        }
    }
    g.finalize();
    const MetricContext context{g, 1.0, 1, nullptr};
    const ResilienceMetrics m = run_metrics(context);
    EXPECT_EQ(m.lambda_min, 0);
    EXPECT_EQ(m.scc_count, 3);  // two triangles plus the isolated vertex
    EXPECT_NEAR(m.scc_frac, 3.0 / 7.0, 1e-12);
    EXPECT_NEAR(m.wcc_frac, 3.0 / 7.0, 1e-12);
    EXPECT_EQ(m.out_degree_min, 0);  // the isolated vertex
    EXPECT_EQ(m.in_degree_min, 0);
}

}  // namespace
}  // namespace kadsim::analysis
