// CalendarQueue vs the reference binary-heap EventQueue: the calendar layout
// must never influence ordering. The differential suite drives both through
// identical randomized push/pop schedules (ties included) and asserts the
// pop streams match element-for-element — the property that makes swapping
// the simulator's queue invisible to the byte-identity replay goldens.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/calendar_queue.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace kadsim::sim {
namespace {

/// Pushes the same (time, payload) into both queues; payloads record pop
/// order so the streams can be compared exactly.
class Tandem {
public:
    void push(SimTime t) {
        const std::uint64_t tag = next_tag_++;
        reference_.push(t, [this, tag] { reference_log_.push_back(tag); });
        calendar_.push(t, [this, tag] { calendar_log_.push_back(tag); });
    }

    void pop_one() {
        ASSERT_FALSE(reference_.empty());
        ASSERT_FALSE(calendar_.empty());
        ASSERT_EQ(reference_.next_time(), calendar_.next_time());
        auto a = reference_.pop();
        auto b = calendar_.pop();
        ASSERT_EQ(a.time, b.time);
        ASSERT_EQ(a.seq, b.seq);
        a.fn();
        b.fn();
        ASSERT_EQ(reference_log_.back(), calendar_log_.back());
    }

    void drain() {
        while (!reference_.empty()) pop_one();
        EXPECT_TRUE(calendar_.empty());
        EXPECT_EQ(reference_log_, calendar_log_);
    }

    [[nodiscard]] std::size_t pending() const { return reference_.size(); }
    [[nodiscard]] const std::vector<std::uint64_t>& log() const {
        return calendar_log_;
    }

private:
    EventQueue reference_;
    CalendarQueue calendar_;
    std::uint64_t next_tag_ = 0;
    std::vector<std::uint64_t> reference_log_;
    std::vector<std::uint64_t> calendar_log_;
};

TEST(CalendarQueue, PopsInTimeOrderWithStableTies) {
    CalendarQueue q;
    std::vector<std::uint64_t> order;
    q.push(50, [&] { order.push_back(2); });
    q.push(10, [&] { order.push_back(0); });
    q.push(50, [&] { order.push_back(3); });  // tie: insertion order wins
    q.push(20, [&] { order.push_back(1); });
    while (!q.empty()) q.pop().fn();
    EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 3}));
    EXPECT_EQ(q.pushed(), 4u);
}

TEST(CalendarQueue, DifferentialRandomizedMixedWorkload) {
    // Time offsets drawn from a mix that exercises every tier: same-epoch
    // (< 16 ms), ring-band (< 65 s) and overflow (minutes-to-hours ahead),
    // plus deliberate exact-tie collisions.
    util::Rng rng(20170327);
    Tandem tandem;
    SimTime now = 0;
    SimTime last_tie = 0;
    for (int round = 0; round < 20000; ++round) {
        const std::uint64_t action = rng.next_below(100);
        if (action < 60 || tandem.pending() == 0) {
            SimTime t;
            const std::uint64_t band = rng.next_below(10);
            if (band < 4) {
                t = now + static_cast<SimTime>(rng.next_below(16));
            } else if (band < 8) {
                t = now + static_cast<SimTime>(rng.next_below(65000));
            } else if (band < 9) {
                t = now + static_cast<SimTime>(rng.next_below(3600 * 1000));
            } else {
                t = last_tie;  // exact timestamp collision
            }
            if (t < now) t = now;
            last_tie = t;
            tandem.push(t);
        } else {
            tandem.pop_one();
            if (::testing::Test::HasFatalFailure()) return;
        }
    }
    tandem.drain();
    EXPECT_GT(tandem.log().size(), 10000u);  // most rounds pushed
}

TEST(CalendarQueue, DifferentialSimulatorShapedWorkload) {
    // Mimics the simulator's actual push profile: pops advance a clock and
    // each popped event schedules a handful of follow-ups at RPC-delivery,
    // timeout and minute-tick distances from the *current* time.
    util::Rng rng(7);
    Tandem tandem;
    SimTime now = 0;
    for (int i = 0; i < 200; ++i) {
        tandem.push(static_cast<SimTime>(rng.next_below(30 * 60 * 1000)));
    }
    for (int round = 0; round < 30000 && tandem.pending() > 0; ++round) {
        tandem.pop_one();
        if (::testing::Test::HasFatalFailure()) return;
        now += static_cast<SimTime>(rng.next_below(40));
        const std::uint64_t fanout = rng.next_below(3);
        for (std::uint64_t j = 0; j < fanout; ++j) {
            const std::uint64_t kind = rng.next_below(10);
            SimTime t = now;
            if (kind < 6) {
                t += 10 + static_cast<SimTime>(rng.next_below(90));  // delivery
            } else if (kind < 9) {
                t += 2000;  // RPC timeout
            } else {
                t += 60 * 1000;  // minute tick / refresh spread
            }
            tandem.push(t);
        }
    }
    tandem.drain();
}

TEST(CalendarQueue, FarFutureFallbackMigratesExactlyOnce) {
    // A burst of far-future events (initial-join style: uniform over 30 min)
    // goes to the overflow heap, then migrates through the ring as the window
    // slides. The pop stream must still be globally sorted by (time, seq).
    util::Rng rng(99);
    CalendarQueue q;
    std::vector<SimTime> times;
    for (int i = 0; i < 5000; ++i) {
        const auto t = static_cast<SimTime>(rng.next_below(30 * 60 * 1000));
        times.push_back(t);
        q.push(t, [] {});
    }
    SimTime prev = -1;
    std::uint64_t prev_seq = 0;
    std::size_t popped = 0;
    while (!q.empty()) {
        const auto e = q.pop();
        if (e.time == prev) {
            EXPECT_GT(e.seq, prev_seq);
        } else {
            EXPECT_GT(e.time, prev);
        }
        prev = e.time;
        prev_seq = e.seq;
        ++popped;
    }
    EXPECT_EQ(popped, times.size());
}

TEST(CalendarQueue, JumpsIdleStretchesWithoutWalkingTheRing) {
    // Sparse far-apart events (hours apart): the queue must jump to the next
    // overflow epoch rather than walking empty ring slots; this test would
    // time out if each gap cost one iteration per 16 ms epoch... at Debug
    // assertion levels it simply pins correctness of the jump path.
    CalendarQueue q;
    std::vector<std::uint64_t> order;
    for (std::uint64_t h = 10; h > 0; --h) {
        q.push(static_cast<SimTime>(h) * 3600 * 1000, [&order, h] { order.push_back(h); });
    }
    while (!q.empty()) q.pop().fn();
    EXPECT_EQ(order.size(), 10u);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(CalendarQueue, PushIntoDrainedPastEpochStillOrdersCorrectly) {
    // After the cursor jumps far forward (overflow refill), a push at an
    // earlier time — legal as long as it is >= the last popped time — must
    // still pop before the later events.
    CalendarQueue q;
    q.push(0, [] {});
    q.push(3600 * 1000, [] {});
    (void)q.pop();                     // now at epoch 0
    EXPECT_EQ(q.next_time(), 3600 * 1000);  // cursor jumped to the far epoch
    std::vector<int> order;
    q.push(5, [&] { order.push_back(0); });  // before the far event
    q.push(3600 * 1000, [&] { order.push_back(1); });
    while (!q.empty()) q.pop().fn();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(CalendarQueue, ClearResetsEverything) {
    CalendarQueue q;
    for (SimTime t = 0; t < 100; ++t) q.push(t * 1000, [] {});
    EXPECT_EQ(q.size(), 100u);
    q.clear();
    EXPECT_TRUE(q.empty());
    q.push(7, [] {});
    EXPECT_EQ(q.next_time(), 7);
    EXPECT_GT(q.memory_bytes(), 0u);
}

}  // namespace
}  // namespace kadsim::sim
