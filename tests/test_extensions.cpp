// Protocol extensions and failure injection: bootstrap fallback under total
// loss, dynamic loss swaps, and the §6 connectivity-boost parameter.
#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/experiment.h"
#include "kad/node.h"
#include "kad/node_arena.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace kadsim {
namespace {

/// Minimal arena fixture (mirrors tests/test_kad_node.cpp).
class Harness {
public:
    explicit Harness(kad::KademliaConfig config, net::LossModel loss = {})
        : config_(config),
          sim_(99),
          net_(sim_, net::LatencyModel{5, 25}, loss),
          arena_(config_, sim_, net_) {}

    kad::KademliaNode* add_node(std::optional<std::size_t> bootstrap_index) {
        const net::Address address = net_.register_endpoint();
        auto id = kad::NodeId::hash_of("ext-node-" + std::to_string(address),
                                       config_.b);
        kad::KademliaNode* node = arena_.add_node(id, address);
        std::optional<kad::Contact> bootstrap;
        if (bootstrap_index.has_value()) {
            bootstrap = arena_.node_at(*bootstrap_index)->contact();
        }
        node->join(bootstrap);
        return node;
    }

    void run_for(sim::SimTime d) { sim_.run_until(sim_.now() + d); }
    [[nodiscard]] net::Network& network() { return net_; }
    [[nodiscard]] kad::KademliaNode& node(std::size_t i) {
        return *arena_.node_at(static_cast<net::Address>(i));
    }

private:
    kad::KademliaConfig config_;
    sim::Simulator sim_;
    net::Network net_;
    kad::NodeArena arena_;
};

kad::KademliaConfig config_with(int k, int s) {
    kad::KademliaConfig cfg;
    cfg.k = k;
    cfg.s = s;
    return cfg;
}

TEST(BootstrapFallback, NodeIsolatedByTotalLossRejoinsAfterRecovery) {
    // Blackout during join: every message is lost, the bootstrap contact gets
    // evicted after its first timeout (s=1). When the network heals, the next
    // lookup falls back to the remembered bootstrap address and re-joins.
    Harness h(config_with(8, 1));
    for (int i = 0; i < 6; ++i) {
        h.add_node(i == 0 ? std::nullopt : std::optional<std::size_t>(0));
        h.run_for(sim::seconds(5));
    }
    h.run_for(sim::minutes(2));

    h.network().set_loss(net::LossModel{1.0});  // total blackout
    kad::KademliaNode* late = h.add_node(0);
    h.run_for(sim::minutes(2));
    EXPECT_EQ(late->routing_table().size(), 0u);  // fully isolated

    h.network().set_loss(net::LossModel{0.0});  // network heals
    late->lookup_node(late->id(), {});          // any traffic re-seeds from bootstrap
    h.run_for(sim::minutes(2));
    EXPECT_GT(late->routing_table().size(), 0u);
}

TEST(BootstrapFallback, FallbackIsHarmlessWhenBootstrapIsDead) {
    Harness h(config_with(8, 1));
    for (int i = 0; i < 5; ++i) {
        h.add_node(i == 0 ? std::nullopt : std::optional<std::size_t>(0));
        h.run_for(sim::seconds(5));
    }
    h.network().set_loss(net::LossModel{1.0});
    kad::KademliaNode* late = h.add_node(2);
    h.run_for(sim::minutes(2));
    h.network().set_loss(net::LossModel{0.0});
    h.node(2).crash();  // the only address the orphan knows
    late->lookup_node(late->id(), {});
    h.run_for(sim::minutes(2));
    // Still isolated — matches the paper's churn+loss dips — but sane.
    EXPECT_TRUE(late->alive());
    EXPECT_EQ(late->routing_table().size(), 0u);
}

TEST(ConnectivityBoost, AdvertisementsRaiseInDegreeOfLateJoiner) {
    // The mechanism itself, deterministically: a late joiner is known by few;
    // self-advertisement lookups re-announce it and its in-degree must grow
    // monotonically (every receiver is direct communication evidence).
    Harness h(config_with(4, 1));
    for (int i = 0; i < 25; ++i) {
        h.add_node(i == 0 ? std::nullopt : std::optional<std::size_t>(0));
        h.run_for(sim::seconds(3));
    }
    h.run_for(sim::minutes(5));

    kad::KademliaNode* late = h.add_node(3);
    h.run_for(sim::minutes(2));
    auto in_links = [&h, late] {
        int links = 0;
        for (std::size_t i = 0; i < 25; ++i) {
            if (h.node(i).routing_table().contains(late->id())) ++links;
        }
        return links;
    };
    const int before = in_links();
    for (int g = 0; g < 4; ++g) {
        late->lookup_node(late->id(), {});  // what advertise_per_refresh issues
        h.run_for(sim::minutes(1));
    }
    const int after = in_links();
    EXPECT_GE(after, before);
    EXPECT_GT(after, 0);
}

TEST(ConnectivityBoost, GammaZeroIsExactlyPaperBehaviour) {
    // advertise_per_refresh=0 must not change a single event: compare series.
    core::ExperimentConfig a;
    a.scenario.initial_size = 25;
    a.scenario.seed = 31;
    a.scenario.kad.k = 8;
    a.scenario.kad.s = 1;
    a.scenario.traffic.enabled = true;
    a.scenario.phases.end = sim::minutes(150);
    a.snapshot_interval = sim::minutes(30);
    a.analyzer.sample_c = 1.0;
    core::ExperimentConfig b = a;
    b.scenario.kad.advertise_per_refresh = 0;  // explicit default

    const auto sa = core::run_experiment(a);
    const auto sb = core::run_experiment(b);
    ASSERT_EQ(sa.samples.size(), sb.samples.size());
    for (std::size_t i = 0; i < sa.samples.size(); ++i) {
        EXPECT_EQ(sa.samples[i].kappa_min, sb.samples[i].kappa_min);
        EXPECT_EQ(sa.samples[i].m, sb.samples[i].m);
    }
}

TEST(FailureInjection, LossSpikeDegradesThenHeals) {
    // A 30-minute loss spike mid-run: RPC failures surge, tables shrink
    // (s=1 evictions), then the overlay re-wires after recovery.
    Harness h(config_with(8, 1));
    for (int i = 0; i < 25; ++i) {
        h.add_node(i == 0 ? std::nullopt : std::optional<std::size_t>(0));
        h.run_for(sim::seconds(4));
    }
    h.run_for(sim::minutes(70));  // stabilize + one refresh cycle

    std::size_t before = 0;
    for (int i = 0; i < 25; ++i) before += h.node(static_cast<std::size_t>(i)).routing_table().size();

    h.network().set_loss(net::LossModel::from_level(net::LossLevel::kHigh));
    h.run_for(sim::minutes(70));
    h.network().set_loss(net::LossModel{0.0});
    h.run_for(sim::minutes(70));

    std::size_t after = 0;
    for (int i = 0; i < 25; ++i) after += h.node(static_cast<std::size_t>(i)).routing_table().size();
    // Healed network is at least as connected as before the spike (loss
    // evictions free slots; the paper's §5.8 re-wiring effect).
    EXPECT_GE(after + 5, before);  // small slack for in-flight churn
    for (int i = 0; i < 25; ++i) {
        EXPECT_TRUE(h.node(static_cast<std::size_t>(i)).routing_table().check_invariants());
    }
}

}  // namespace
}  // namespace kadsim
