// Histogram edge cases — the daemon reports query-latency quantiles from a
// COUNTERS endpoint that can be hit before any query arrived, and the
// interval-extraction diff() is the guard between "merge-order bug" and
// "counter wrapped to ~2^64 in a CSV". Pins: quantile on an empty histogram,
// q = 1.0 meaning the maximum (not one-past-the-end), out-of-range q
// clamping, and diff() aborting on regressed history instead of wrapping.
#include <gtest/gtest.h>

#include <cstdint>

#include "stats/histogram.h"

namespace kadsim::stats {
namespace {

TEST(HistogramEdges, EmptyHistogramsReportZeroEverywhere) {
    const CountHistogram ch;
    EXPECT_TRUE(ch.empty());
    EXPECT_EQ(ch.quantile(0.0), 0);
    EXPECT_EQ(ch.quantile(0.5), 0);
    EXPECT_EQ(ch.quantile(1.0), 0);
    EXPECT_EQ(ch.min(), 0);
    EXPECT_EQ(ch.max(), 0);

    const Log2Histogram lh;
    EXPECT_TRUE(lh.empty());
    EXPECT_EQ(lh.quantile(0.0), 0);
    EXPECT_EQ(lh.quantile(0.99), 0);
    EXPECT_EQ(lh.quantile(1.0), 0);
}

TEST(HistogramEdges, QuantileOneIsTheMaximumNotOnePastIt) {
    CountHistogram ch;
    for (std::int64_t v : {1, 2, 3, 4}) ch.add(v);
    // floor(1.0 * 4) = 4 would index past the last sample; the clamp makes
    // q = 1.0 the maximum.
    EXPECT_EQ(ch.quantile(1.0), 4);
    EXPECT_EQ(ch.quantile(0.0), 1);
    // The pinned sorted[n/2] median convention: sorted[2] of {1,2,3,4} = 3.
    EXPECT_EQ(ch.quantile(0.5), 3);

    Log2Histogram lh;
    lh.add(5);
    lh.add(1000);
    EXPECT_EQ(lh.quantile(1.0), Log2Histogram::bucket_floor(
                                    Log2Histogram::index_of(1000)));
    EXPECT_EQ(lh.quantile(0.0), 5);
}

TEST(HistogramEdges, OutOfRangeQuantilesClampToTheBounds) {
    CountHistogram ch;
    for (std::int64_t v : {10, 20, 30}) ch.add(v);
    EXPECT_EQ(ch.quantile(-0.5), ch.quantile(0.0));
    EXPECT_EQ(ch.quantile(1.5), ch.quantile(1.0));
    EXPECT_EQ(ch.quantile(-1e300), 10);
    EXPECT_EQ(ch.quantile(1e300), 30);

    Log2Histogram lh;
    lh.add(3);
    lh.add(700);
    EXPECT_EQ(lh.quantile(-2.0), lh.quantile(0.0));
    EXPECT_EQ(lh.quantile(42.0), lh.quantile(1.0));
}

TEST(HistogramEdges, SingleSampleIsEveryQuantile) {
    CountHistogram ch;
    ch.add(9);
    for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) EXPECT_EQ(ch.quantile(q), 9);
    Log2Histogram lh;
    lh.add(6);
    for (double q : {0.0, 0.5, 1.0}) EXPECT_EQ(lh.quantile(q), 6);
}

TEST(HistogramEdges, DiffExtractsTheIntervalAndPreservesQuantiles) {
    CountHistogram cumulative;
    cumulative.add(1);
    cumulative.add(2);
    const CountHistogram prev = cumulative;
    cumulative.add(5);
    cumulative.add(5);
    const CountHistogram interval = cumulative.diff(prev);
    EXPECT_EQ(interval.total(), 2u);
    EXPECT_EQ(interval.min(), 5);
    EXPECT_EQ(interval.max(), 5);

    Log2Histogram lcum;
    lcum.add(100);
    const Log2Histogram lprev = lcum;
    lcum.add(4000);
    const Log2Histogram linterval = lcum.diff(lprev);
    EXPECT_EQ(linterval.total(), 1u);
    EXPECT_EQ(linterval.quantile(0.5),
              Log2Histogram::bucket_floor(Log2Histogram::index_of(4000)));
}

TEST(HistogramEdgesDeathTest, CountDiffAbortsOnRegressedHistory) {
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    CountHistogram later;
    later.add(2);
    CountHistogram bogus_prev;
    bogus_prev.add(1);
    bogus_prev.add(1);  // more total than `later`: not a prefix history
    EXPECT_DEATH((void)later.diff(bogus_prev), "not a prefix history");

    CountHistogram shifted;  // same total, smaller bucket: count regressed
    shifted.add(1);
    EXPECT_DEATH((void)later.diff(shifted), "regressed");
}

TEST(HistogramEdgesDeathTest, Log2DiffAbortsOnRegressedHistory) {
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    Log2Histogram later;
    later.add(64);
    Log2Histogram bogus_prev;
    bogus_prev.add(64);
    bogus_prev.add(64);
    EXPECT_DEATH((void)later.diff(bogus_prev), "not a prefix history");

    Log2Histogram shifted;
    shifted.add(128);
    EXPECT_DEATH((void)later.diff(shifted), "regressed");
}

TEST(HistogramEdgesDeathTest, LookupTrafficDiffAbortsOnRegressedCounter) {
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    LookupTraffic later;
    later.issued = 5;
    later.completed = 5;
    LookupTraffic bogus_prev;
    bogus_prev.issued = 6;  // regressed relative to `later`
    EXPECT_DEATH((void)later.diff(bogus_prev), "counter regressed");
}

}  // namespace
}  // namespace kadsim::stats
