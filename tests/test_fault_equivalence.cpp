// RandomChurn vs the pre-refactor inline churn path.
//
// The fault-layer refactor must leave every existing scenario bit-identical:
// RandomChurn consumes the shared RNG stream in exactly the order the
// inlined churn_tick()/remove_random_node() did. These goldens were captured
// from the pre-refactor tree (commit 273d54a) by running the same configs
// and hashing the serialized analyzer series — any stream perturbation in
// the runner, the fault layer, or the analyzer fast paths shows up here as
// a hash mismatch.
#include <gtest/gtest.h>

#include <array>
#include <set>
#include <sstream>
#include <string>

#include "core/experiment.h"
#include "scen/runner.h"
#include "util/sha1.h"

namespace kadsim {
namespace {

/// The cache-CSV sample serialization of the pre-refactor tree (the
/// `removed` column and the analysis-layer metric columns are newer and
/// deliberately excluded — the golden pins the original eight fields).
std::string serialize(const core::ExperimentSeries& series) {
    std::ostringstream out;
    for (const auto& s : series.samples) {
        out << s.time_min << ',' << s.n << ',' << s.m << ',' << s.kappa_min << ','
            << s.kappa_avg << ',' << s.scc_count << ',' << s.reciprocity << ','
            << s.pairs_evaluated << '\n';
    }
    return out.str();
}

/// The full ResilienceSample serialization (every cache-CSV column,
/// including the appended metric columns) — pinned by its own golden.
std::string serialize_full(const core::ExperimentSeries& series) {
    std::ostringstream out;
    for (const auto& s : series.samples) {
        out << s.time_min << ',' << s.n << ',' << s.m << ',' << s.kappa_min << ','
            << s.kappa_avg << ',' << s.scc_count << ',' << s.reciprocity << ','
            << s.pairs_evaluated << ',' << s.removed_total << ',' << s.lambda_min
            << ',' << s.lambda_avg << ',' << s.scc_frac << ',' << s.wcc_frac << ','
            << s.articulation_points << ',' << s.bridges << ',' << s.out_degree_min
            << ',' << s.in_degree_min << ',' << s.kappa_degree_gap << '\n';
    }
    return out.str();
}

std::string series_sha1(const core::ExperimentConfig& config) {
    return util::to_hex(util::sha1(serialize(core::run_experiment(config))));
}

core::ExperimentConfig small_churny() {
    core::ExperimentConfig cfg;
    cfg.scenario.name = "small";
    cfg.scenario.initial_size = 60;
    cfg.scenario.seed = 77;
    cfg.scenario.kad.k = 8;
    cfg.scenario.kad.s = 1;
    cfg.scenario.traffic.enabled = true;
    cfg.scenario.fault.churn = scen::ChurnSpec{1, 1};
    cfg.scenario.phases.end = sim::minutes(240);
    cfg.snapshot_interval = sim::minutes(30);
    cfg.analyzer.sample_c = 0.02;
    cfg.analyzer.min_sources = 4;
    cfg.analyzer.threads = 1;
    return cfg;
}

TEST(FaultEquivalence, SmallChurnSeriesMatchesPreRefactorGolden) {
    EXPECT_EQ(series_sha1(small_churny()),
              "a9548c63f7e0a6e87dad8b10f71deb7c17384096");
}

TEST(FaultEquivalence, SmallChurnTotalsMatchPreRefactorGolden) {
    scen::Runner runner(small_churny().scenario);
    runner.step_to(sim::minutes(240));
    const auto t = runner.totals();
    EXPECT_EQ(t.events_executed, 2341194u);
    EXPECT_EQ(t.network.sent, 1456880u);
    EXPECT_EQ(t.joins, 180u);
    EXPECT_EQ(t.crashes, 120u);
    EXPECT_EQ(t.protocol.rpcs_sent, 732989u);
    EXPECT_EQ(runner.live_count(), 60);
}

// Simulation E at quick scale (the acceptance pin for sims A–L): size 250,
// churn 1/1, data traffic, k=20, horizon 360 min. ~15 s of simulation — the
// long pole of the suite, but it is the contract that keeps every published
// figure CSV byte-stable across the fault refactor AND the metric-suite
// extension: the series is computed once, the pre-existing columns are
// hashed against the pre-refactor golden, each full row must extend its
// pre-existing prefix byte-for-byte, and the full ResilienceSample
// serialization is pinned by its own golden (captured when the metric suite
// landed).
TEST(FaultEquivalence, SimEQuickScaleSeriesMatchesPreRefactorGolden) {
    core::ExperimentConfig cfg;
    cfg.scenario.name = "E:quick";
    cfg.scenario.initial_size = 250;
    cfg.scenario.seed = 20170327;
    cfg.scenario.kad.k = 20;
    cfg.scenario.kad.b = 160;
    cfg.scenario.kad.alpha = 3;
    cfg.scenario.kad.s = 1;
    cfg.scenario.traffic.enabled = true;
    cfg.scenario.fault.churn = scen::ChurnSpec{1, 1};
    cfg.scenario.phases.end = sim::minutes(360);
    cfg.snapshot_interval = sim::minutes(30);
    cfg.analyzer.sample_c = 0.02;
    cfg.analyzer.min_sources = 4;
    cfg.analyzer.threads = 1;
    const core::ExperimentSeries series = core::run_experiment(cfg);

    // The pre-existing columns are byte-identical to the pre-refactor tree.
    EXPECT_EQ(util::to_hex(util::sha1(serialize(series))),
              "a20bbcdab954ca90535e8aa278d92810bc503b1b");

    // Appending metric columns must leave the old bytes a strict row prefix.
    std::istringstream old_rows(serialize(series));
    std::istringstream full_rows(serialize_full(series));
    std::string old_row;
    std::string full_row;
    while (std::getline(old_rows, old_row)) {
        ASSERT_TRUE(std::getline(full_rows, full_row));
        ASSERT_EQ(full_row.substr(0, old_row.size()), old_row);
        ASSERT_EQ(full_row[old_row.size()], ',');
    }

    // The full ResilienceSample series (κ plus λ / reachability / cut
    // structure / degree columns) has its own golden.
    EXPECT_EQ(util::to_hex(util::sha1(serialize_full(series))),
              "542860fcc1966fae1883a76f5354410efce8573d");
}

// Region-sharded stepping pins: `regions` is a logical parameter, but
// `shard_threads` is execution-only — for a fixed region count the whole
// run (merged snapshot bytes, engine totals, live count) must be
// byte-identical whether regions step serially or on 2 or 4 pool threads.
TEST(FaultEquivalence, ShardedSteppingIsThreadCountInvariant) {
    const auto run_digest = [](int shard_threads) {
        core::ExperimentConfig cfg = small_churny();
        cfg.scenario.regions = 4;
        cfg.scenario.shard_threads = shard_threads;
        scen::Runner runner(cfg.scenario);
        runner.step_to(sim::minutes(180));
        std::ostringstream out;
        runner.snapshot().save(out);
        const auto t = runner.totals();
        out << t.events_executed << ',' << t.network.sent << ','
            << t.network.delivered << ',' << t.joins << ',' << t.crashes << ','
            << t.protocol.rpcs_sent << ',' << runner.live_count();
        return util::to_hex(util::sha1(out.str()));
    };
    const std::string serial = run_digest(1);
    EXPECT_EQ(serial, run_digest(2));
    EXPECT_EQ(serial, run_digest(4));
}

// An unsharded run is the regions = 1 special case of the sharded engine;
// the pre-refactor goldens above pin that path. This pins the sharded
// address layout: global addresses are unique and region-tagged, and the
// merged live list agrees with the per-node views.
TEST(FaultEquivalence, ShardedSnapshotSpeaksGlobalAddresses) {
    core::ExperimentConfig cfg = small_churny();
    cfg.scenario.regions = 4;
    cfg.scenario.shard_threads = 1;
    scen::Runner runner(cfg.scenario);
    runner.step_to(sim::minutes(60));

    const auto& live = runner.live_addresses();
    EXPECT_EQ(static_cast<int>(live.size()), runner.live_count());
    std::set<net::Address> seen;
    for (const net::Address a : live) {
        EXPECT_TRUE(seen.insert(a).second) << "duplicate global address " << a;
        const kad::KademliaNode* n = runner.node(a);
        ASSERT_NE(n, nullptr);
        EXPECT_TRUE(n->alive());
    }
    // All four regions received their share of the initial population.
    std::array<int, 4> per_region{};
    for (const net::Address a : live) ++per_region[a % 4];
    for (int r = 0; r < 4; ++r) EXPECT_GT(per_region[r], 0) << "region " << r;
}

}  // namespace
}  // namespace kadsim
