// analysis::SnapshotDeltaCache — cross-snapshot κ/λ reuse via witness
// revalidation, and its end-to-end wiring through AnalyzerOptions::use_delta.
//
// The load-bearing property is byte-identity: reuse may only skip work,
// never change a value. The series tests pin that with the same
// serialization the golden-hash suite (test_fault_equivalence.cpp) uses —
// delta+certificate runs must reproduce the delta-off series exactly,
// including the pre-refactor golden hash on the churn scenario. The unit
// tests pin the two-sided revalidation rules one by one: witness-edge churn
// forcing a recompute, a fresh route around the stored cut forcing a
// recompute, degree drift *outside* the witness not forcing one, departed
// interior nodes and endpoints, and the zero-length direct-edge witness
// of λ.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/incremental.h"
#include "core/analyzer.h"
#include "core/experiment.h"
#include "fault/spec.h"
#include "graph/snapshot.h"
#include "util/rng.h"
#include "util/sha1.h"

namespace kadsim {
namespace {

/// The full cache-CSV sample serialization (every column) — mirrors
/// serialize_full in test_fault_equivalence.cpp, so equality here means the
/// published CSVs are byte-identical too.
std::string serialize_full(const core::ExperimentSeries& series) {
    std::ostringstream out;
    for (const auto& s : series.samples) {
        out << s.time_min << ',' << s.n << ',' << s.m << ',' << s.kappa_min << ','
            << s.kappa_avg << ',' << s.scc_count << ',' << s.reciprocity << ','
            << s.pairs_evaluated << ',' << s.removed_total << ',' << s.lambda_min
            << ',' << s.lambda_avg << ',' << s.scc_frac << ',' << s.wcc_frac << ','
            << s.articulation_points << ',' << s.bridges << ',' << s.out_degree_min
            << ',' << s.in_degree_min << ',' << s.kappa_degree_gap << '\n';
    }
    return out.str();
}

/// The churny scenario pinned by the pre-refactor golden hash.
core::ExperimentConfig small_churny() {
    core::ExperimentConfig cfg;
    cfg.scenario.name = "small";
    cfg.scenario.initial_size = 60;
    cfg.scenario.seed = 77;
    cfg.scenario.kad.k = 8;
    cfg.scenario.kad.s = 1;
    cfg.scenario.traffic.enabled = true;
    cfg.scenario.fault.churn = scen::ChurnSpec{1, 1};
    cfg.scenario.phases.end = sim::minutes(240);
    cfg.snapshot_interval = sim::minutes(30);
    cfg.analyzer.sample_c = 0.02;
    cfg.analyzer.min_sources = 4;
    cfg.analyzer.threads = 1;
    return cfg;
}

/// A small adversarial scenario: stabilized overlay, then an in-degree
/// attack with no arrivals (the fault family's hardest case for reuse —
/// every removal invalidates many witnesses).
core::ExperimentConfig small_attack() {
    core::ExperimentConfig cfg;
    cfg.scenario.name = "attack";
    cfg.scenario.initial_size = 60;
    cfg.scenario.seed = 41;
    cfg.scenario.kad.k = 8;
    cfg.scenario.kad.s = 1;
    cfg.scenario.fault.churn = scen::ChurnSpec{0, 1};
    cfg.scenario.fault.model = fault::ModelKind::kDegreeAttack;
    cfg.scenario.phases.end = sim::minutes(160);
    cfg.snapshot_interval = sim::minutes(10);
    cfg.analyzer.sample_c = 0.02;
    cfg.analyzer.min_sources = 4;
    cfg.analyzer.threads = 1;
    return cfg;
}

TEST(IncrementalAnalysis, ChurnSeriesByteIdenticalAndMatchesGolden) {
    const core::ExperimentSeries baseline = core::run_experiment(small_churny());

    core::ExperimentConfig accel_cfg = small_churny();
    accel_cfg.analyzer.use_delta = true;
    accel_cfg.analyzer.use_certificate = true;
    const core::ExperimentSeries accel = core::run_experiment(accel_cfg);

    EXPECT_EQ(serialize_full(accel), serialize_full(baseline));

    // The accelerated run reproduces the pre-refactor golden too (first
    // eight columns — the hash pinned in test_fault_equivalence.cpp).
    std::ostringstream old_columns;
    for (const auto& s : accel.samples) {
        old_columns << s.time_min << ',' << s.n << ',' << s.m << ','
                    << s.kappa_min << ',' << s.kappa_avg << ',' << s.scc_count
                    << ',' << s.reciprocity << ',' << s.pairs_evaluated << '\n';
    }
    EXPECT_EQ(util::to_hex(util::sha1(old_columns.str())),
              "a9548c63f7e0a6e87dad8b10f71deb7c17384096");
}

TEST(IncrementalAnalysis, AttackSeriesByteIdenticalDeltaOnVsOff) {
    const core::ExperimentSeries baseline = core::run_experiment(small_attack());

    core::ExperimentConfig accel_cfg = small_attack();
    accel_cfg.analyzer.use_delta = true;
    accel_cfg.analyzer.use_certificate = true;
    const core::ExperimentSeries accel = core::run_experiment(accel_cfg);

    EXPECT_EQ(serialize_full(accel), serialize_full(baseline));
}

// use_delta forces the experiment engine onto its sequential path even with
// threads > 1 (pipelined analysis would reorder snapshots); the series must
// still be byte-identical to the single-threaded delta-off run.
TEST(IncrementalAnalysis, DeltaWithThreadsMatchesSingleThreadedBaseline) {
    const core::ExperimentSeries baseline = core::run_experiment(small_churny());

    core::ExperimentConfig accel_cfg = small_churny();
    accel_cfg.analyzer.use_delta = true;
    accel_cfg.analyzer.use_certificate = true;
    accel_cfg.analyzer.threads = 3;
    const core::ExperimentSeries accel = core::run_experiment(accel_cfg);

    EXPECT_EQ(serialize_full(accel), serialize_full(baseline));
}

// --- unit tests against hand-built snapshots -------------------------------

/// Snapshot with nodes[i].address = addrs[i] and contacts per `edges`
/// (indices into addrs). to_digraph() maps vertex i ⇔ nodes[i].
graph::RoutingSnapshot make_snapshot(
    const std::vector<std::uint32_t>& addrs,
    const std::vector<std::pair<int, int>>& edges) {
    std::vector<graph::SnapshotNode> nodes(addrs.size());
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        nodes[i].address = addrs[i];
    }
    for (const auto& [u, v] : edges) {
        nodes[static_cast<std::size_t>(u)].contacts.push_back(
            addrs[static_cast<std::size_t>(v)]);
    }
    graph::RoutingSnapshot snap;
    snap.nodes.reserve(nodes.size());
    for (const auto& node : nodes) snap.nodes.push_back(node);
    return snap;
}

TEST(SnapshotDeltaCache, ReusesOnlyWhileWitnessSurvives) {
    const std::vector<std::uint32_t> addrs{100, 101, 102, 103};
    // 0→1→2 plus 0→3→2: two vertex-disjoint 0⇒2 paths through 1 and 3.
    const std::vector<std::pair<int, int>> edges{
        {0, 1}, {1, 2}, {0, 3}, {3, 2}};

    analysis::SnapshotDeltaCache cache;
    const graph::RoutingSnapshot snap1 = make_snapshot(addrs, edges);
    const graph::Digraph g1 = snap1.to_digraph();
    cache.begin_snapshot(snap1, g1);

    // Pair (0,2): κ = 2 with witness paths {1}, {3} and cut {1, 3}.
    const std::vector<int> witness{1, 3};
    const std::vector<int> offsets{0, 1, 2};
    const std::vector<int> cut{1, 3};
    cache.kappa_hook()->store(0, 2, 2, witness, offsets, cut);
    // Stores are invisible until end_snapshot commits them.
    EXPECT_EQ(cache.kappa_hook()->lookup(0, 2), -1);
    cache.end_snapshot();

    // Same graph next snapshot: paths intact, cut still separates → hit.
    const graph::RoutingSnapshot snap2 = make_snapshot(addrs, edges);
    const graph::Digraph g2 = snap2.to_digraph();
    cache.begin_snapshot(snap2, g2);
    EXPECT_EQ(cache.kappa_hook()->lookup(0, 2), 2);
    cache.end_snapshot();

    // Degree drift outside the witness — an extra edge 2→0 changes both
    // endpoints' degrees (and so the bound a fresh computation would run
    // under) but neither witness half: still a hit.
    const graph::RoutingSnapshot snap2b =
        make_snapshot(addrs, {{0, 1}, {1, 2}, {0, 3}, {3, 2}, {2, 0}});
    const graph::Digraph g2b = snap2b.to_digraph();
    cache.begin_snapshot(snap2b, g2b);
    EXPECT_EQ(cache.kappa_hook()->lookup(0, 2), 2);
    cache.end_snapshot();

    // Churn inside the witness: edge 1→2 evicted → revalidation fails and
    // the pair must be recomputed.
    const graph::RoutingSnapshot snap3 =
        make_snapshot(addrs, {{0, 1}, {0, 3}, {3, 2}});
    const graph::Digraph g3 = snap3.to_digraph();
    cache.begin_snapshot(snap3, g3);
    EXPECT_EQ(cache.kappa_hook()->lookup(0, 2), -1);
    cache.end_snapshot();

    // Churn inside the witness: interior node 101 departed entirely. The
    // surviving nodes keep their relative order, so pair (0,2) is now ids
    // (0,1) — and must still recompute because a witness path died.
    const graph::RoutingSnapshot snap4 =
        make_snapshot({100, 102, 103}, {{0, 2}, {2, 1}});
    const graph::Digraph g4 = snap4.to_digraph();
    cache.begin_snapshot(snap4, g4);
    EXPECT_EQ(cache.kappa_hook()->lookup(0, 1), -1);
    cache.end_snapshot();
}

// The cut half of the witness: a joiner that opens a route around the
// stored separator must force a recompute even though every witness path is
// intact (κ may genuinely have grown).
TEST(SnapshotDeltaCache, FreshRouteAroundCutForcesRecompute) {
    const std::vector<std::uint32_t> addrs{100, 101, 102, 103};
    const std::vector<std::pair<int, int>> edges{
        {0, 1}, {1, 2}, {0, 3}, {3, 2}};

    analysis::SnapshotDeltaCache cache;
    const graph::RoutingSnapshot snap1 = make_snapshot(addrs, edges);
    const graph::Digraph g1 = snap1.to_digraph();
    cache.begin_snapshot(snap1, g1);
    cache.kappa_hook()->store(0, 2, 2, std::vector<int>{1, 3},
                              std::vector<int>{0, 1, 2}, std::vector<int>{1, 3});
    cache.end_snapshot();

    // Node 104 joins with 0→4→2: {101, 103} no longer separates.
    const graph::RoutingSnapshot snap2 = make_snapshot(
        {100, 101, 102, 103, 104},
        {{0, 1}, {1, 2}, {0, 3}, {3, 2}, {0, 4}, {4, 2}});
    const graph::Digraph g2 = snap2.to_digraph();
    cache.begin_snapshot(snap2, g2);
    EXPECT_EQ(cache.kappa_hook()->lookup(0, 2), -1);
    cache.end_snapshot();
}

TEST(SnapshotDeltaCache, DirectEdgeLambdaWitness) {
    const std::vector<std::uint32_t> addrs{7, 9};
    analysis::SnapshotDeltaCache cache;

    const graph::RoutingSnapshot snap1 = make_snapshot(addrs, {{0, 1}, {1, 0}});
    const graph::Digraph g1 = snap1.to_digraph();
    cache.begin_snapshot(snap1, g1);
    // λ(0,1) = 1 via the direct edge: a single zero-length witness path,
    // and the edge itself — stored as a flattened (tail, head) pair — is
    // the cut.
    const std::vector<int> offsets{0, 0};
    const std::vector<int> cut{0, 1};
    cache.lambda_hook()->store(0, 1, 1, {}, offsets, cut);
    cache.end_snapshot();

    const graph::RoutingSnapshot snap2 = make_snapshot(addrs, {{0, 1}, {1, 0}});
    const graph::Digraph g2 = snap2.to_digraph();
    cache.begin_snapshot(snap2, g2);
    EXPECT_EQ(cache.lambda_hook()->lookup(0, 1), 1);
    cache.end_snapshot();

    // The direct edge evicted → the zero-length path fails has_edge.
    const graph::RoutingSnapshot snap3 = make_snapshot(addrs, {{1, 0}});
    const graph::Digraph g3 = snap3.to_digraph();
    cache.begin_snapshot(snap3, g3);
    EXPECT_EQ(cache.lambda_hook()->lookup(0, 1), -1);
    cache.end_snapshot();
}

// The λ cut half: a two-hop detour joining the overlay makes the stored
// single-edge cut insufficient — the entry must be refused even though the
// direct edge (the witness path) is intact.
TEST(SnapshotDeltaCache, NewDetourAroundLambdaCutForcesRecompute) {
    analysis::SnapshotDeltaCache cache;
    const graph::RoutingSnapshot snap1 = make_snapshot({7, 9}, {{0, 1}, {1, 0}});
    const graph::Digraph g1 = snap1.to_digraph();
    cache.begin_snapshot(snap1, g1);
    cache.lambda_hook()->store(0, 1, 1, {}, std::vector<int>{0, 0},
                               std::vector<int>{0, 1});
    cache.end_snapshot();

    // Node 11 joins with 0→2→1 alongside the direct edge: λ(0,1) is now 2.
    const graph::RoutingSnapshot snap2 =
        make_snapshot({7, 9, 11}, {{0, 1}, {1, 0}, {0, 2}, {2, 1}});
    const graph::Digraph g2 = snap2.to_digraph();
    cache.begin_snapshot(snap2, g2);
    EXPECT_EQ(cache.lambda_hook()->lookup(0, 1), -1);
    cache.end_snapshot();
}

TEST(SnapshotDeltaCache, PrunesEntriesWhoseEndpointsDeparted) {
    const std::vector<std::uint32_t> addrs{10, 11, 12};
    analysis::SnapshotDeltaCache cache;

    const graph::RoutingSnapshot snap1 =
        make_snapshot(addrs, {{0, 1}, {1, 2}, {2, 0}});
    const graph::Digraph g1 = snap1.to_digraph();
    cache.begin_snapshot(snap1, g1);
    cache.kappa_hook()->store(0, 1, 0, {}, std::vector<int>{0}, {});
    cache.kappa_hook()->store(1, 2, 0, {}, std::vector<int>{0}, {});
    cache.end_snapshot();
    EXPECT_EQ(cache.kappa_stats().entries, 2u);

    // Node 11 departs: both entries touch it as an endpoint and are pruned.
    const graph::RoutingSnapshot snap2 = make_snapshot({10, 12}, {{0, 1}, {1, 0}});
    const graph::Digraph g2 = snap2.to_digraph();
    cache.begin_snapshot(snap2, g2);
    EXPECT_EQ(cache.kappa_stats().entries, 0u);
    cache.end_snapshot();
}

/// Kademlia-like snapshot (reciprocal-heavy random contacts) for exercising
/// the analyzer-level wiring on something with real flow structure.
graph::RoutingSnapshot kademlia_like_snapshot(int n, int deg,
                                              std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<std::uint32_t> addrs;
    addrs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) addrs.push_back(1000u + static_cast<std::uint32_t>(i));
    std::vector<std::pair<int, int>> edges;
    for (int u = 0; u < n; ++u) {
        for (int j = 0; j < deg; ++j) {
            const int v =
                static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
            if (v == u) continue;
            edges.emplace_back(u, v);
            if (rng.next_bool(0.9)) edges.emplace_back(v, u);
        }
    }
    return make_snapshot(addrs, edges);
}

// Analyzer-level engagement: with use_delta, re-analyzing an (unchanged)
// successor snapshot reuses pairs — observable through delta_cache() — and
// reports identical values.
TEST(SnapshotDeltaCache, AnalyzerReusesAcrossIdenticalSnapshots) {
    const graph::RoutingSnapshot snap = kademlia_like_snapshot(40, 4, 20170327);

    core::AnalyzerOptions options;
    options.sample_c = 0.1;
    options.min_sources = 4;
    options.use_delta = true;
    const core::ConnectivityAnalyzer analyzer(options);
    ASSERT_EQ(analyzer.delta_cache(), nullptr);

    const core::ResilienceSample first = analyzer.analyze(snap);
    ASSERT_NE(analyzer.delta_cache(), nullptr);
    const analysis::DeltaStats after_first = analyzer.delta_cache()->kappa_stats();
    EXPECT_GT(after_first.stores, 0u);
    EXPECT_EQ(after_first.hits, 0u);

    const core::ResilienceSample second = analyzer.analyze(snap);
    const analysis::DeltaStats after_second =
        analyzer.delta_cache()->kappa_stats();
    EXPECT_GT(after_second.hits, 0u);
    EXPECT_GT(analyzer.delta_cache()->lambda_stats().hits, 0u);

    EXPECT_EQ(second.kappa_min, first.kappa_min);
    EXPECT_EQ(second.kappa_avg, first.kappa_avg);
    EXPECT_EQ(second.pairs_evaluated, first.pairs_evaluated);
    EXPECT_EQ(second.lambda_min, first.lambda_min);
    EXPECT_EQ(second.lambda_avg, first.lambda_avg);
}

}  // namespace
}  // namespace kadsim
