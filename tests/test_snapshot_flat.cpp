// Flat snapshot pipeline suite.
//
// Contracts pinned here:
//   * differential equality — the flat capture + CSR compaction produces a
//     Digraph bit-identical to the legacy AoS export + hash-remap build,
//     across seeded churn and attack runs, sharded and unsharded;
//   * thread invariance — the flat arrays and the compacted Digraph are
//     byte-identical for shard_threads 1/2/4 and for pooled vs inline
//     to_digraph;
//   * allocation-free steady state — a warm Runner::capture into a reused
//     buffer performs zero heap allocations (counting global operator new,
//     same technique as tests/test_lookup_engine.cpp);
//   * binary format — text↔binary round-trips are byte-identical and
//     malformed binary input throws.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/thread_pool.h"
#include "graph/snapshot.h"
#include "scen/runner.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Counting replacements for the global allocation functions (throwing
// scalar/array forms only; all deletes forward to free so paths match —
// GCC's mismatched-new-delete heuristic can't see that and is silenced).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace kadsim {
namespace {

/// The pre-flat digraph build, kept verbatim as the differential oracle:
/// hash-map address→index (first wins), contacts at departed addresses or
/// the owner dropped, per-edge add_edge, finalize's sort+dedupe.
graph::Digraph legacy_digraph(const graph::RoutingSnapshot& snap) {
    std::unordered_map<std::uint32_t, int> index;
    index.reserve(snap.nodes.size());
    for (std::size_t i = 0; i < snap.nodes.size(); ++i) {
        index.emplace(snap.nodes[i].address, static_cast<int>(i));
    }
    graph::Digraph g(static_cast<int>(snap.nodes.size()));
    for (std::size_t i = 0; i < snap.nodes.size(); ++i) {
        for (const std::uint32_t contact : snap.nodes[i].contacts) {
            const auto it = index.find(contact);
            if (it == index.end() || it->second == static_cast<int>(i)) continue;
            g.add_edge(static_cast<int>(i), it->second);
        }
    }
    g.finalize();
    return g;
}

/// Byte-level digest of a finalized Digraph: n, m and every CSR row.
std::string digraph_digest(const graph::Digraph& g) {
    std::ostringstream out;
    out << g.vertex_count() << '/' << g.edge_count() << '|';
    for (int u = 0; u < g.vertex_count(); ++u) {
        for (const int v : g.out(u)) out << v << ',';
        out << ';';
    }
    return out.str();
}

/// Byte-level digest of the flat arrays themselves (capture invariance).
std::string flat_digest(const graph::FlatSnapshot& flat) {
    std::ostringstream out;
    for (const std::uint32_t a : flat.addresses()) out << a << ',';
    out << '|';
    for (const std::uint32_t o : flat.offsets()) out << o << ',';
    out << '|';
    for (const std::uint32_t c : flat.contacts()) out << c << ',';
    return out.str();
}

scen::ScenarioConfig churny_scenario(int size, int regions,
                                     fault::ModelKind model) {
    scen::ScenarioConfig cfg;
    cfg.initial_size = size;
    cfg.seed = 77;
    cfg.kad.k = 8;
    cfg.kad.s = 1;
    cfg.regions = regions;
    cfg.traffic.enabled = true;
    cfg.fault.model = model;
    cfg.fault.churn = scen::ChurnSpec{2, 1};
    cfg.phases.end = sim::minutes(240);
    return cfg;
}

class FlatVsLegacy : public ::testing::TestWithParam<std::pair<int, fault::ModelKind>> {};

TEST_P(FlatVsLegacy, DigraphMatchesLegacyBuildUnderFaults) {
    const auto [regions, model] = GetParam();
    scen::Runner runner(churny_scenario(120, regions, model));
    // Several instants across the churn phase: departed contacts accumulate,
    // so the compaction's dropped-row bookkeeping is actually exercised.
    for (const int minute : {40, 80, 120}) {
        runner.step_to(sim::minutes(minute));
        const graph::RoutingSnapshot snap = runner.snapshot();
        EXPECT_GT(snap.nodes.size(), 0u);
        EXPECT_EQ(digraph_digest(snap.to_digraph()),
                  digraph_digest(legacy_digraph(snap)))
            << "minute=" << minute << " regions=" << regions;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ChurnAndAttacks, FlatVsLegacy,
    ::testing::Values(std::pair{1, fault::ModelKind::kRandomChurn},
                      std::pair{4, fault::ModelKind::kRandomChurn},
                      std::pair{1, fault::ModelKind::kDegreeAttack},
                      std::pair{1, fault::ModelKind::kKappaAttack}));

TEST(FlatSnapshot, PooledCompactionMatchesInline) {
    scen::Runner runner(churny_scenario(200, 1, fault::ModelKind::kRandomChurn));
    runner.step_to(sim::minutes(90));
    const graph::RoutingSnapshot snap = runner.snapshot();
    exec::ThreadPool pool(3);
    EXPECT_EQ(digraph_digest(snap.to_digraph(&pool)),
              digraph_digest(snap.to_digraph()));
}

TEST(FlatSnapshot, CaptureIsShardThreadInvariant) {
    std::string reference;
    for (const int threads : {1, 2, 4}) {
        auto cfg = churny_scenario(120, 4, fault::ModelKind::kRandomChurn);
        cfg.shard_threads = threads;
        scen::Runner runner(cfg);
        runner.step_to(sim::minutes(90));
        const graph::RoutingSnapshot snap = runner.snapshot();
        const std::string digest =
            flat_digest(snap.flat()) + "#" + digraph_digest(snap.to_digraph());
        if (reference.empty()) {
            reference = digest;
        } else {
            EXPECT_EQ(digest, reference) << "shard_threads=" << threads;
        }
    }
}

TEST(FlatSnapshot, WarmCaptureAllocatesNothing) {
    // Single region: the capture path is the per-region export loop itself,
    // with no pool hand-off. The first capture sizes the slab; once warm,
    // refilling it must never touch the heap.
    scen::Runner runner(churny_scenario(150, 1, fault::ModelKind::kRandomChurn));
    runner.step_to(sim::minutes(60));
    graph::RoutingSnapshot snap;
    runner.capture(snap);
    runner.capture(snap);  // warm the slab at this population level
    const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    runner.capture(snap);
    const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u);
    EXPECT_GT(snap.nodes.size(), 0u);
    EXPECT_GT(runner.snapshot_capture_us(), 0u);
}

TEST(FlatSnapshot, BinaryTextRoundTripIsByteIdentical) {
    scen::Runner runner(churny_scenario(100, 1, fault::ModelKind::kRandomChurn));
    runner.step_to(sim::minutes(60));
    const graph::RoutingSnapshot snap = runner.snapshot();

    std::stringstream text1;
    snap.save(text1);

    // text → parse → binary → parse → text must reproduce the bytes.
    std::stringstream binary;
    graph::RoutingSnapshot::parse(text1).save_binary(binary);
    const graph::RoutingSnapshot from_binary = graph::RoutingSnapshot::parse(binary);
    EXPECT_EQ(from_binary.time_ms, snap.time_ms);
    EXPECT_TRUE(from_binary.flat() == snap.flat());

    std::stringstream text2;
    from_binary.save(text2);
    EXPECT_EQ(text2.str(), text1.str());

    // Binary bytes themselves are stable across a round-trip.
    std::stringstream binary2;
    from_binary.save_binary(binary2);
    EXPECT_EQ(binary2.str(), binary.str());
}

TEST(FlatSnapshot, EmptySnapshotBinaryRoundTrip) {
    graph::RoutingSnapshot empty;
    empty.time_ms = 42;
    std::stringstream binary;
    empty.save_binary(binary);
    const graph::RoutingSnapshot parsed = graph::RoutingSnapshot::parse(binary);
    EXPECT_EQ(parsed.time_ms, 42);
    EXPECT_EQ(parsed.nodes.size(), 0u);
}

TEST(FlatSnapshot, BinaryRejectsBadMagic) {
    std::stringstream in("KSNQ not a snapshot");
    EXPECT_THROW((void)graph::RoutingSnapshot::parse(in), std::runtime_error);
}

TEST(FlatSnapshot, BinaryRejectsTruncatedStream) {
    graph::RoutingSnapshot snap;
    snap.nodes.push_back({1, {2}});
    snap.nodes.push_back({2, {1}});
    std::stringstream full;
    snap.save_binary(full);
    const std::string bytes = full.str();
    std::stringstream truncated(bytes.substr(0, bytes.size() - 3));
    EXPECT_THROW((void)graph::RoutingSnapshot::parse(truncated),
                 std::runtime_error);
}

TEST(FlatSnapshot, BinaryRejectsUnsupportedVersion) {
    graph::RoutingSnapshot snap;
    snap.nodes.push_back({1, {}});
    std::stringstream full;
    snap.save_binary(full);
    std::string bytes = full.str();
    bytes[4] = static_cast<char>(0xEE);  // version field (u32 after magic)
    std::stringstream mangled(bytes);
    EXPECT_THROW((void)graph::RoutingSnapshot::parse(mangled),
                 std::runtime_error);
}

}  // namespace
}  // namespace kadsim
