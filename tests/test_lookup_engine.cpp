// Lookup workload engine determinism suite.
//
// Three contracts pinned here:
//   * thread invariance — the per-snapshot lookup/probe series (counts plus
//     every histogram bucket) is byte-identical for any shard_threads value,
//     because regions share no mutable lookup state and merges run in fixed
//     region order;
//   * seeded replay — the same config reproduces the same series;
//   * arena purity — a LookupArena slot can be reused indefinitely with
//     identical results and zero heap allocations after warmup (counting
//     global operator new, same technique as tests/test_bench_cache.cpp).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "kad/lookup_arena.h"
#include "scen/runner.h"
#include "util/rng.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Counting replacements for the global allocation functions (throwing
// scalar/array forms only; all deletes forward to free so paths match).
void* operator new(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace kadsim {
namespace {

/// Serializes every observable of the interval lookup series: scalar counts
/// plus all non-zero histogram buckets of hops and latency, and the probe
/// results. Any divergence — ordering, bucket, count — changes the string.
std::string digest(const stats::LookupTraffic& t, const stats::ProbeStats& p) {
    std::ostringstream out;
    out << t.issued << '/' << t.completed << '/' << t.succeeded << '/'
        << t.values_found << "|h:";
    for (const auto c : t.hops.counts()) out << c << ',';
    out << "|l:";
    const auto lat = t.latency_ms.counts();
    for (std::size_t i = 0; i < lat.size(); ++i) {
        if (lat[i] != 0) out << i << ':' << lat[i] << ',';
    }
    out << "|p:" << p.probes << '/' << p.succeeded << "|ph:";
    for (const auto c : p.hops.counts()) out << c << ',';
    return out.str();
}

scen::ScenarioConfig engine_scenario(std::uint64_t seed = 77) {
    scen::ScenarioConfig cfg;
    cfg.initial_size = 60;
    cfg.seed = seed;
    cfg.kad.k = 8;
    cfg.kad.s = 1;
    cfg.regions = 4;
    cfg.traffic.enabled = true;
    cfg.traffic.probes_per_snapshot = 16;
    cfg.fault.churn = scen::ChurnSpec{1, 1};
    cfg.phases.end = sim::minutes(180);
    return cfg;
}

/// Runs the scenario to its end and returns the concatenated per-snapshot
/// lookup/probe digests.
std::string series_digest(const scen::ScenarioConfig& cfg) {
    scen::Runner runner(cfg);
    std::string out;
    runner.run(sim::minutes(30), [&out](const graph::RoutingSnapshot& snap) {
        out += digest(snap.lookups, snap.probes);
        out += '\n';
    });
    return out;
}

TEST(LookupEngine, SeriesIsByteIdenticalAcrossThreadCounts) {
    auto cfg = engine_scenario();
    cfg.shard_threads = 1;
    const std::string serial = series_digest(cfg);
    EXPECT_FALSE(serial.empty());
    for (const int threads : {2, 4}) {
        cfg.shard_threads = threads;
        EXPECT_EQ(series_digest(cfg), serial)
            << "lookup/probe series diverged at shard_threads=" << threads;
    }
}

TEST(LookupEngine, SeededReplayReproducesSeries) {
    const auto cfg = engine_scenario();
    const std::string first = series_digest(cfg);
    EXPECT_EQ(series_digest(cfg), first);
    // A different seed must actually move the series — otherwise the digest
    // is insensitive and the identity checks above prove nothing.
    EXPECT_NE(series_digest(engine_scenario(78)), first);
}

TEST(LookupEngine, TrafficSeriesIsRecorded) {
    scen::Runner runner(engine_scenario());
    runner.run(sim::minutes(30), [](const graph::RoutingSnapshot&) {});
    const auto traffic = runner.lookup_traffic();
    EXPECT_GT(traffic.issued, 0u);
    EXPECT_GT(traffic.completed, 0u);
    EXPECT_GE(traffic.issued, traffic.completed);
    // One hop sample and one latency sample per completed lookup — the
    // histograms carry the full distribution with no per-sample storage.
    EXPECT_EQ(traffic.hops.total(), traffic.completed);
    EXPECT_EQ(traffic.latency_ms.total(), traffic.completed);
    EXPECT_GT(runner.lookup_arena_bytes(), 0u);
}

TEST(LookupEngine, ProbesSucceedOnStableOverlay) {
    auto cfg = engine_scenario();
    cfg.fault.churn = scen::ChurnSpec{0, 0};
    cfg.traffic.enabled = false;
    scen::Runner runner(cfg);
    runner.step_to(sim::minutes(60));
    const auto probes = runner.run_lookup_probes(25);
    EXPECT_EQ(probes.probes, 100u);  // 25 per region × 4 regions
    // A stable, fully bootstrapped overlay resolves essentially every probe
    // to the ground-truth closest node.
    EXPECT_GE(static_cast<double>(probes.succeeded), 0.9 * 100.0);
    EXPECT_GT(probes.hops.total(), 0u);
}

// --- arena purity -----------------------------------------------------------

struct ScriptedOverlay {
    kad::NodeId self;
    kad::NodeId target;
    std::vector<kad::Contact> seeds;
    /// Response a queried address returns (missing address = timeout).
    std::unordered_map<net::Address, std::vector<kad::Contact>> responses;
};

ScriptedOverlay make_overlay() {
    util::Rng rng(2024);
    ScriptedOverlay o;
    o.self = kad::NodeId::random(rng, 160);
    o.target = kad::NodeId::random(rng, 160);
    std::vector<kad::Contact> pool;
    for (net::Address a = 1; a <= 24; ++a) {
        pool.push_back({kad::NodeId::random(rng, 160), a});
    }
    o.seeds.assign(pool.begin(), pool.begin() + 6);
    for (std::size_t i = 0; i < pool.size(); ++i) {
        if (i % 5 == 4) continue;  // every fifth contact times out
        std::vector<kad::Contact> reply;
        for (std::size_t j = 1; j <= 4; ++j) {
            reply.push_back(pool[(i * 7 + j) % pool.size()]);
        }
        o.responses.emplace(pool[i].address, std::move(reply));
    }
    return o;
}

/// One full scripted lookup through `arena`; returns the hop count and fills
/// `closest`. Performs no allocation itself (map find, span views).
int run_scripted(kad::LookupArena& arena, const ScriptedOverlay& o,
                 std::vector<kad::Contact>& closest) {
    const auto slot =
        arena.begin(o.self, o.target, kad::LookupMode::kFindNode, false, 0);
    arena.seed(slot, o.seeds);
    while (auto next = arena.next_query(slot)) {
        const auto it = o.responses.find(next->address);
        if (it != o.responses.end()) {
            arena.on_response(slot, next->id, it->second, false);
        } else {
            arena.on_failure(slot, next->id);
        }
    }
    const int hops = arena.hop_count(slot);
    closest.clear();
    arena.successful_closest(slot, closest);
    arena.release(slot);
    return hops;
}

TEST(LookupEngine, ArenaReuseIsPureAndAllocationFree) {
    const ScriptedOverlay overlay = make_overlay();
    kad::LookupArena arena(kad::LookupArena::Params{4, 2, 0, 0});

    // Warmup: first run grows the slot vectors and the shortlist slab.
    std::vector<kad::Contact> first;
    first.reserve(16);
    const int first_hops = run_scripted(arena, overlay, first);
    EXPECT_GT(first_hops, 0);
    ASSERT_FALSE(first.empty());
    const std::size_t slots_after_warmup = arena.slot_count();

    // Steady state: the same lookup run again in the same arena must return
    // identical results and allocate nothing.
    std::vector<kad::Contact> again;
    again.reserve(16);
    bool identical = true;
    const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    for (int round = 0; round < 50; ++round) {
        const int hops = run_scripted(arena, overlay, again);
        identical = identical && hops == first_hops &&
                    again.size() == first.size();
        for (std::size_t i = 0; identical && i < again.size(); ++i) {
            identical = again[i].id == first[i].id &&
                        again[i].address == first[i].address;
        }
    }
    const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);

    EXPECT_TRUE(identical) << "arena reuse changed the lookup result";
    EXPECT_EQ(after - before, 0u)
        << "steady-state lookups allocated; the arena has regressed to "
           "per-lookup heap state";
    EXPECT_EQ(arena.slot_count(), slots_after_warmup);
    EXPECT_EQ(arena.live_count(), 0u);
}

TEST(LookupEngine, BoostWidensWindowOnFailures) {
    const ScriptedOverlay overlay = make_overlay();
    // alpha=1: the paper engine keeps exactly one query in flight. boost=2
    // grants one extra window slot per observed failure, up to alpha+2.
    kad::LookupArena boosted(kad::LookupArena::Params{4, 1, 0, 2});
    const auto slot = boosted.begin(overlay.self, overlay.target,
                                    kad::LookupMode::kFindNode, false, 0);
    boosted.seed(slot, overlay.seeds);
    const auto q1 = boosted.next_query(slot);
    ASSERT_TRUE(q1.has_value());
    EXPECT_FALSE(boosted.next_query(slot).has_value());  // window full at α=1
    boosted.on_failure(slot, q1->id);
    // The failure widened the window to 2: two queries may now fly at once.
    const auto q2 = boosted.next_query(slot);
    const auto q3 = boosted.next_query(slot);
    EXPECT_TRUE(q2.has_value());
    EXPECT_TRUE(q3.has_value());
    EXPECT_EQ(boosted.inflight(slot), 2);
    boosted.release(slot);

    // boost=0 control: the same failure leaves the window at α.
    kad::LookupArena paper(kad::LookupArena::Params{4, 1, 0, 0});
    const auto pslot = paper.begin(overlay.self, overlay.target,
                                   kad::LookupMode::kFindNode, false, 0);
    paper.seed(pslot, overlay.seeds);
    const auto p1 = paper.next_query(pslot);
    ASSERT_TRUE(p1.has_value());
    paper.on_failure(pslot, p1->id);
    EXPECT_TRUE(paper.next_query(pslot).has_value());
    EXPECT_FALSE(paper.next_query(pslot).has_value());
    paper.release(pslot);
}

}  // namespace
}  // namespace kadsim
