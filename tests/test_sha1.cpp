// SHA-1 against the FIPS 180-1 reference vectors, plus incremental API.
#include <gtest/gtest.h>

#include <string>

#include "util/sha1.h"

namespace kadsim::util {
namespace {

TEST(Sha1, EmptyString) {
    EXPECT_EQ(to_hex(sha1(std::string_view{})),
              "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
    EXPECT_EQ(to_hex(sha1("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
    EXPECT_EQ(to_hex(sha1("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
              "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
    Sha1 h;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) h.update(chunk);
    EXPECT_EQ(to_hex(h.finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
    const std::string message =
        "The quick brown fox jumps over the lazy dog, repeatedly and with vigour.";
    for (std::size_t split = 0; split <= message.size(); split += 7) {
        Sha1 h;
        h.update(std::string_view(message).substr(0, split));
        h.update(std::string_view(message).substr(split));
        EXPECT_EQ(h.finish(), sha1(message)) << "split at " << split;
    }
}

TEST(Sha1, BoundaryLengths) {
    // 55/56/57/63/64/65 bytes hit the padding edge cases.
    const std::string base(70, 'x');
    for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
        const auto d1 = sha1(std::string_view(base).substr(0, len));
        Sha1 h;
        for (std::size_t i = 0; i < len; ++i) {
            h.update(std::string_view(base).substr(i, 1));
        }
        EXPECT_EQ(h.finish(), d1) << "length " << len;
    }
}

TEST(Sha1, ResetAllowsReuse) {
    Sha1 h;
    h.update("garbage");
    (void)h.finish();
    h.reset();
    h.update("abc");
    EXPECT_EQ(to_hex(h.finish()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, DistinctInputsDistinctDigests) {
    EXPECT_NE(sha1("node-1"), sha1("node-2"));
    EXPECT_NE(sha1("a"), sha1("b"));
}

}  // namespace
}  // namespace kadsim::util
