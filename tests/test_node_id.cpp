// Identifiers and the XOR metric (paper §4.1).
#include <gtest/gtest.h>

#include <set>

#include "kad/node_id.h"
#include "util/rng.h"

namespace kadsim::kad {
namespace {

TEST(NodeId, DefaultIsZero) {
    NodeId id;
    EXPECT_TRUE(id.is_zero());
}

TEST(NodeId, XorMetricIdentity) {
    util::Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        const NodeId a = NodeId::random(rng, 160);
        EXPECT_TRUE(a.distance_to(a).is_zero());
    }
}

TEST(NodeId, XorMetricSymmetry) {
    util::Rng rng(2);
    for (int i = 0; i < 100; ++i) {
        const NodeId a = NodeId::random(rng, 160);
        const NodeId b = NodeId::random(rng, 160);
        EXPECT_EQ(a.distance_to(b), b.distance_to(a));
    }
}

TEST(NodeId, XorMetricTriangleInequality) {
    // d(a,c) <= d(a,b) + d(b,c) holds for XOR since x^z = (x^y)^(y^z) and
    // u^v <= u+v for non-negative integers. Verified on the low limb to avoid
    // 192-bit addition.
    util::Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        const NodeId a = NodeId::random(rng, 60);
        const NodeId b = NodeId::random(rng, 60);
        const NodeId c = NodeId::random(rng, 60);
        const auto dab = a.distance_to(b).limb(0);
        const auto dbc = b.distance_to(c).limb(0);
        const auto dac = a.distance_to(c).limb(0);
        EXPECT_LE(dac, dab + dbc);
    }
}

TEST(NodeId, ComparisonIsIntegerOrder) {
    const NodeId one = NodeId::from_limbs(1, 0, 0);
    const NodeId two = NodeId::from_limbs(2, 0, 0);
    const NodeId big = NodeId::from_limbs(0, 0, 1);  // bit 128
    EXPECT_LT(one, two);
    EXPECT_LT(two, big);
    EXPECT_EQ(one, NodeId::from_limbs(1, 0, 0));
}

TEST(NodeId, BucketIndexIsFloorLog2OfDistance) {
    const NodeId zero;
    for (int bit = 0; bit < 160; ++bit) {
        NodeId d;
        d.set_bit(bit, true);
        if (bit > 0) d.set_bit(bit / 2, true);  // lower bits don't matter
        EXPECT_EQ(zero.distance_to(d).bucket_index(), bit);
    }
}

TEST(NodeId, BucketCondition) {
    // Contact in bucket i satisfies 2^i <= dist < 2^{i+1} (paper §4.1).
    util::Rng rng(4);
    const NodeId self = NodeId::random(rng, 160);
    for (int i = 0; i < 200; ++i) {
        const NodeId other = NodeId::random(rng, 160);
        if (other == self) continue;
        const NodeId dist = self.distance_to(other);
        const int bucket = dist.bucket_index();
        NodeId lower;
        lower.set_bit(bucket, true);
        EXPECT_GE(dist, lower);
        if (bucket + 1 < 160) {
            NodeId upper;
            upper.set_bit(bucket + 1, true);
            EXPECT_LT(dist, upper);
        }
    }
}

TEST(NodeId, RandomRespectsBitLength) {
    util::Rng rng(5);
    for (const int b : {1, 8, 63, 64, 65, 80, 127, 128, 160}) {
        for (int i = 0; i < 50; ++i) {
            const NodeId id = NodeId::random(rng, b);
            for (int bit = b; bit < 160; ++bit) {
                EXPECT_FALSE(id.get_bit(bit)) << "b=" << b << " bit=" << bit;
            }
        }
    }
}

class RandomInBucketTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomInBucketTest, DistanceFallsInBucketRange) {
    const int bucket = GetParam();
    util::Rng rng(6 + static_cast<std::uint64_t>(bucket));
    const NodeId self = NodeId::random(rng, 160);
    for (int i = 0; i < 100; ++i) {
        const NodeId target = NodeId::random_in_bucket(self, bucket, rng, 160);
        const NodeId dist = self.distance_to(target);
        ASSERT_FALSE(dist.is_zero());
        EXPECT_EQ(dist.bucket_index(), bucket);
    }
}

INSTANTIATE_TEST_SUITE_P(AllRanges, RandomInBucketTest,
                         ::testing::Values(0, 1, 5, 63, 64, 65, 100, 127, 128, 159));

TEST(NodeId, FromDigestUsesTopBits) {
    // Digest with a known leading byte: 0x80... → top bit of a 160-bit id set.
    util::Sha1Digest digest{};
    digest[0] = 0x80;
    const NodeId full = NodeId::from_digest(digest, 160);
    EXPECT_TRUE(full.get_bit(159));
    // Truncated to 8 bits the id becomes 0x80 >> 0 == bit 7 of the top byte.
    const NodeId small = NodeId::from_digest(digest, 8);
    EXPECT_TRUE(small.get_bit(7));
    for (int bit = 8; bit < 160; ++bit) EXPECT_FALSE(small.get_bit(bit));
}

TEST(NodeId, HashOfIsDeterministicAndSpread) {
    const NodeId a = NodeId::hash_of("node-1", 160);
    const NodeId b = NodeId::hash_of("node-1", 160);
    const NodeId c = NodeId::hash_of("node-2", 160);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(NodeId, HashOfRespectsBitLength) {
    const NodeId a = NodeId::hash_of("x", 80);
    for (int bit = 80; bit < 160; ++bit) EXPECT_FALSE(a.get_bit(bit));
}

TEST(NodeId, UniquenessOverManyIds) {
    std::set<std::string> seen;
    for (int i = 0; i < 5000; ++i) {
        seen.insert(NodeId::hash_of("node-" + std::to_string(i), 160).to_hex());
    }
    EXPECT_EQ(seen.size(), 5000u);
}

TEST(NodeId, ToHexRoundTripKnownValue) {
    const NodeId id = NodeId::from_limbs(0xdeadbeefULL, 0, 0);
    EXPECT_EQ(id.to_hex(), "deadbeef");
    EXPECT_EQ(NodeId().to_hex(), "0");
}

TEST(NodeId, CloserHelper) {
    const NodeId origin;
    const NodeId near = NodeId::from_limbs(1, 0, 0);
    const NodeId far = NodeId::from_limbs(0xFF, 0, 0);
    EXPECT_TRUE(origin.closer(near, far));
    EXPECT_FALSE(origin.closer(far, near));
}

TEST(NodeIdHash, SpreadsUniformIds) {
    util::Rng rng(7);
    std::set<std::size_t> hashes;
    for (int i = 0; i < 1000; ++i) {
        hashes.insert(NodeIdHash{}(NodeId::random(rng, 160)));
    }
    EXPECT_GT(hashes.size(), 995u);
}

}  // namespace
}  // namespace kadsim::kad
