// Minimum vertex cut witnesses: |cut| = κ(v,w) and removal disconnects.
#include <gtest/gtest.h>

#include <vector>

#include "flow/even_transform.h"
#include "flow/mincut.h"
#include "flow/vertex_connectivity.h"
#include "graph/digraph.h"
#include "util/rng.h"

namespace kadsim::flow {
namespace {

bool reachable_avoiding(const graph::Digraph& g, int from, int to,
                        const std::vector<int>& removed) {
    std::vector<bool> blocked(static_cast<std::size_t>(g.vertex_count()), false);
    for (const int r : removed) blocked[static_cast<std::size_t>(r)] = true;
    std::vector<bool> seen(static_cast<std::size_t>(g.vertex_count()), false);
    std::vector<int> queue{from};
    seen[static_cast<std::size_t>(from)] = true;
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const int u = queue[head];
        for (const int v : g.out(u)) {
            if (v == to) return true;
            const auto vs = static_cast<std::size_t>(v);
            if (seen[vs] || blocked[vs]) continue;
            seen[vs] = true;
            queue.push_back(v);
        }
    }
    return false;
}

TEST(MinVertexCut, HubIsTheCut) {
    // 0 → {1,2,3} → 4 → {5,6} → 7: vertex 4 is the unique cut.
    graph::Digraph g(8);
    for (int m : {1, 2, 3}) {
        g.add_edge(0, m);
        g.add_edge(m, 4);
    }
    for (int m : {5, 6}) {
        g.add_edge(4, m);
        g.add_edge(m, 7);
    }
    g.finalize();
    const auto cut = min_vertex_cut(g, 0, 7);
    ASSERT_EQ(cut.size(), 1u);
    EXPECT_EQ(cut[0], 4);
    EXPECT_FALSE(reachable_avoiding(g, 0, 7, cut));
}

TEST(MinVertexCut, SizeEqualsPairConnectivity) {
    util::Rng rng(7);
    for (int trial = 0; trial < 25; ++trial) {
        const int n = 8 + static_cast<int>(rng.next_below(8));
        graph::Digraph g(n);
        for (int u = 0; u < n; ++u) {
            for (int v = 0; v < n; ++v) {
                if (u != v && rng.next_bool(0.3)) g.add_edge(u, v);
            }
        }
        g.finalize();
        // One transform + workspace per graph, reused across all pair
        // trials (the caller-supplied-network overloads).
        const FlowNetwork even_net = even_transform(g);
        FlowWorkspace even_ws(even_net);
        const FlowNetwork witness_net = mincut_witness_network(g);
        FlowWorkspace witness_ws(witness_net);
        for (int pair_trial = 0; pair_trial < 5; ++pair_trial) {
            const int u = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
            int v = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
            if (u == v || g.has_edge(u, v)) continue;
            const int kappa = pair_vertex_connectivity(g, even_net, even_ws, u, v);
            const auto cut = min_vertex_cut(g, witness_net, witness_ws, u, v);
            EXPECT_EQ(static_cast<int>(cut.size()), kappa)
                << "trial " << trial << " pair (" << u << "," << v << ")";
            // Removing the cut must disconnect the pair.
            EXPECT_FALSE(reachable_avoiding(g, u, v, cut));
            // The cut contains neither endpoint.
            for (const int c : cut) {
                EXPECT_NE(c, u);
                EXPECT_NE(c, v);
            }
        }
    }
}

TEST(MinVertexCut, EmptyCutForDisconnectedPair) {
    graph::Digraph g(4);
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    g.finalize();
    const auto cut = min_vertex_cut(g, 0, 3);
    EXPECT_TRUE(cut.empty());  // already disconnected: κ = 0
}

}  // namespace
}  // namespace kadsim::flow
