// Routing snapshots → connectivity graphs; text round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "graph/snapshot.h"

namespace kadsim::graph {
namespace {

TEST(RoutingSnapshot, ToDigraphCompactsAddresses) {
    RoutingSnapshot snap;
    snap.time_ms = 60000;
    snap.nodes.push_back({100, {200, 300}});
    snap.nodes.push_back({200, {100}});
    snap.nodes.push_back({300, {200}});
    const Digraph g = snap.to_digraph();
    EXPECT_EQ(g.vertex_count(), 3);
    EXPECT_EQ(g.edge_count(), 4);
    EXPECT_TRUE(g.has_edge(0, 1));  // 100 → 200
    EXPECT_TRUE(g.has_edge(0, 2));  // 100 → 300
    EXPECT_TRUE(g.has_edge(1, 0));
    EXPECT_TRUE(g.has_edge(2, 1));
}

TEST(RoutingSnapshot, DeadContactsAreFilteredOut) {
    // Node 7 appears in routing tables but is not part of the snapshot
    // (it left the network): edges toward it must vanish.
    RoutingSnapshot snap;
    snap.nodes.push_back({1, {2, 7}});
    snap.nodes.push_back({2, {1, 7}});
    const Digraph g = snap.to_digraph();
    EXPECT_EQ(g.vertex_count(), 2);
    EXPECT_EQ(g.edge_count(), 2);
}

TEST(RoutingSnapshot, SelfReferencesAreDropped) {
    RoutingSnapshot snap;
    snap.nodes.push_back({1, {1, 2}});
    snap.nodes.push_back({2, {}});
    const Digraph g = snap.to_digraph();
    EXPECT_EQ(g.edge_count(), 1);
}

TEST(RoutingSnapshot, SaveParseRoundTrip) {
    RoutingSnapshot snap;
    snap.time_ms = 123456;
    snap.nodes.push_back({5, {6, 7, 8}});
    snap.nodes.push_back({6, {}});
    snap.nodes.push_back({7, {5}});
    snap.nodes.push_back({8, {5, 6}});

    std::stringstream buffer;
    snap.save(buffer);
    const RoutingSnapshot parsed = RoutingSnapshot::parse(buffer);
    EXPECT_EQ(parsed.time_ms, snap.time_ms);
    ASSERT_EQ(parsed.nodes.size(), snap.nodes.size());
    for (std::size_t i = 0; i < snap.nodes.size(); ++i) {
        EXPECT_EQ(parsed.nodes[i].address, snap.nodes[i].address);
        EXPECT_TRUE(std::ranges::equal(parsed.nodes[i].contacts,
                                       snap.nodes[i].contacts));
    }
}

TEST(RoutingSnapshot, ParseRejectsMalformedLine) {
    std::istringstream in("t 5\nn 1\ngarbage without colon\n");
    EXPECT_THROW((void)RoutingSnapshot::parse(in), std::runtime_error);
}

TEST(RoutingSnapshot, ParseRejectsCountMismatch) {
    std::istringstream in("t 5\nn 3\n1: 2\n2: 1\n");
    EXPECT_THROW((void)RoutingSnapshot::parse(in), std::runtime_error);
}

TEST(RoutingSnapshot, ParseRejectsNonNumericAddress) {
    std::istringstream in("t 5\nn 1\nabc: 2\n");
    EXPECT_THROW((void)RoutingSnapshot::parse(in), std::runtime_error);
}

TEST(RoutingSnapshot, ParseRejectsTrailingGarbageInRow) {
    std::istringstream in("t 5\nn 1\n1: 2 oops\n");
    EXPECT_THROW((void)RoutingSnapshot::parse(in), std::runtime_error);
}

TEST(RoutingSnapshot, ParseRejectsMalformedHeader) {
    std::istringstream in("t notatime\nn 0\n");
    EXPECT_THROW((void)RoutingSnapshot::parse(in), std::runtime_error);
}

TEST(RoutingSnapshot, EmptySnapshotYieldsEmptyGraph) {
    RoutingSnapshot snap;
    const Digraph g = snap.to_digraph();
    EXPECT_EQ(g.vertex_count(), 0);
    EXPECT_EQ(g.edge_count(), 0);
}

}  // namespace
}  // namespace kadsim::graph
