// Connectivity analyzer: snapshot → κ pipeline on synthetic inputs.
#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "exec/thread_pool.h"

namespace kadsim::core {
namespace {

AnalyzerOptions exact_options() {
    AnalyzerOptions opts;
    opts.sample_c = 1.0;  // exact
    opts.threads = 2;
    return opts;
}

graph::RoutingSnapshot ring_snapshot(int n) {
    // Bidirectional ring over addresses 10, 11, ..., 10+n-1: κ = 2.
    graph::RoutingSnapshot snap;
    snap.time_ms = 90 * 60000;
    for (int i = 0; i < n; ++i) {
        const auto addr = static_cast<std::uint32_t>(10 + i);
        const auto prev = static_cast<std::uint32_t>(10 + (i + n - 1) % n);
        const auto next = static_cast<std::uint32_t>(10 + (i + 1) % n);
        snap.nodes.push_back({addr, {prev, next}});
    }
    return snap;
}

TEST(ConnectivityAnalyzer, RingSnapshotHasKappaTwo) {
    const ConnectivityAnalyzer analyzer(exact_options());
    const auto sample = analyzer.analyze(ring_snapshot(8));
    EXPECT_EQ(sample.n, 8);
    EXPECT_EQ(sample.m, 16);
    EXPECT_EQ(sample.kappa_min, 2);
    EXPECT_DOUBLE_EQ(sample.kappa_avg, 2.0);
    EXPECT_EQ(sample.scc_count, 1);
    EXPECT_DOUBLE_EQ(sample.reciprocity, 1.0);
    EXPECT_DOUBLE_EQ(sample.time_min, 90.0);
}

TEST(ConnectivityAnalyzer, RingSnapshotMetricSuite) {
    // The bidirectional ring is 2-regular and 2-connected in every sense:
    // the whole κ ≤ λ ≤ δ_min chain collapses to 2 and no cut structure
    // exists.
    const ConnectivityAnalyzer analyzer(exact_options());
    const auto sample = analyzer.analyze(ring_snapshot(8));
    EXPECT_EQ(sample.lambda_min, 2);
    EXPECT_DOUBLE_EQ(sample.lambda_avg, 2.0);
    EXPECT_DOUBLE_EQ(sample.scc_frac, 1.0);
    EXPECT_DOUBLE_EQ(sample.wcc_frac, 1.0);
    EXPECT_EQ(sample.articulation_points, 0);
    EXPECT_EQ(sample.bridges, 0);
    EXPECT_EQ(sample.out_degree_min, 2);
    EXPECT_EQ(sample.in_degree_min, 2);
    EXPECT_EQ(sample.kappa_degree_gap, 0);
}

TEST(ConnectivityAnalyzer, DisconnectedSnapshotMetricSuite) {
    // Two 2-cliques: fractions see the halves, λ matches κ at 0, and each
    // pair-component's single mutual link is a bridge (not an articulation
    // point — removing an endpoint leaves a lone vertex, same count).
    graph::RoutingSnapshot snap;
    snap.nodes.push_back({1, {2}});
    snap.nodes.push_back({2, {1}});
    snap.nodes.push_back({3, {4}});
    snap.nodes.push_back({4, {3}});
    const ConnectivityAnalyzer analyzer(exact_options());
    const auto sample = analyzer.analyze(snap);
    EXPECT_EQ(sample.lambda_min, 0);
    EXPECT_DOUBLE_EQ(sample.scc_frac, 0.5);
    EXPECT_DOUBLE_EQ(sample.wcc_frac, 0.5);
    EXPECT_EQ(sample.articulation_points, 0);
    EXPECT_EQ(sample.bridges, 2);
    EXPECT_EQ(sample.kappa_degree_gap, 1);  // δ_min = 1, κ_min = 0
}

TEST(ConnectivityAnalyzer, DisconnectedSnapshotHasKappaZero) {
    graph::RoutingSnapshot snap;
    snap.nodes.push_back({1, {2}});
    snap.nodes.push_back({2, {1}});
    snap.nodes.push_back({3, {4}});
    snap.nodes.push_back({4, {3}});
    const ConnectivityAnalyzer analyzer(exact_options());
    const auto sample = analyzer.analyze(snap);
    EXPECT_EQ(sample.kappa_min, 0);
    EXPECT_EQ(sample.scc_count, 2);
}

TEST(ConnectivityAnalyzer, EmptySnapshotIsHarmless) {
    const ConnectivityAnalyzer analyzer(exact_options());
    const auto sample = analyzer.analyze(graph::RoutingSnapshot{});
    EXPECT_EQ(sample.n, 0);
    EXPECT_EQ(sample.kappa_min, 0);
}

TEST(ConnectivityAnalyzer, PropagatesFaultLayerRemovalCount) {
    graph::RoutingSnapshot snap = ring_snapshot(6);
    snap.removed_total = 37;
    const ConnectivityAnalyzer analyzer(exact_options());
    EXPECT_EQ(analyzer.analyze(snap).removed_total, 37u);
    // Empty snapshots keep the count too (a fully drained network still
    // reports its removal budget).
    graph::RoutingSnapshot empty;
    empty.removed_total = 12;
    EXPECT_EQ(analyzer.analyze(empty).removed_total, 12u);
}

TEST(ConnectivityAnalyzer, AsymmetricTablesLowerReciprocity) {
    graph::RoutingSnapshot snap;
    snap.nodes.push_back({1, {2, 3}});
    snap.nodes.push_back({2, {1, 3}});
    snap.nodes.push_back({3, {1}});  // 3 knows 1 but not 2
    const ConnectivityAnalyzer analyzer(exact_options());
    const auto sample = analyzer.analyze(snap);
    EXPECT_LT(sample.reciprocity, 1.0);
    EXPECT_GT(sample.reciprocity, 0.5);
}

TEST(ConnectivityAnalyzer, PooledAnalysisMatchesInline) {
    const ConnectivityAnalyzer analyzer(exact_options());
    const auto snap = ring_snapshot(12);
    exec::ThreadPool pool(3);
    const auto pooled = analyzer.analyze(snap, &pool);
    const auto inline_sample = analyzer.analyze(snap);
    EXPECT_EQ(pooled.kappa_min, inline_sample.kappa_min);
    EXPECT_DOUBLE_EQ(pooled.kappa_avg, inline_sample.kappa_avg);
    EXPECT_EQ(pooled.pairs_evaluated, inline_sample.pairs_evaluated);
    // The metric suite (fanned out alongside κ on the pool) is bit-identical
    // to the inline run too.
    EXPECT_EQ(pooled.lambda_min, inline_sample.lambda_min);
    EXPECT_DOUBLE_EQ(pooled.lambda_avg, inline_sample.lambda_avg);
    EXPECT_DOUBLE_EQ(pooled.scc_frac, inline_sample.scc_frac);
    EXPECT_DOUBLE_EQ(pooled.wcc_frac, inline_sample.wcc_frac);
    EXPECT_EQ(pooled.articulation_points, inline_sample.articulation_points);
    EXPECT_EQ(pooled.bridges, inline_sample.bridges);
    EXPECT_EQ(pooled.kappa_degree_gap, inline_sample.kappa_degree_gap);
}

TEST(ConnectivityAnalyzer, SampledModeEvaluatesFewerPairs) {
    AnalyzerOptions sampled;
    sampled.sample_c = 0.25;
    sampled.min_sources = 2;
    const ConnectivityAnalyzer exact(exact_options());
    const ConnectivityAnalyzer approx(sampled);
    const auto snap = ring_snapshot(16);
    const auto se = exact.analyze(snap);
    const auto sa = approx.analyze(snap);
    EXPECT_LT(sa.pairs_evaluated, se.pairs_evaluated);
    // The ring is vertex-transitive: sampling still finds the true κ.
    EXPECT_EQ(sa.kappa_min, se.kappa_min);
}

}  // namespace
}  // namespace kadsim::core
