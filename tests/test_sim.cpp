// Discrete-event engine: ordering, stability, clock semantics, periodic
// tasks. Determinism here underwrites every experiment in the repo.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/periodic.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace kadsim::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.push(30, [&order] { order.push_back(3); });
    q.push(10, [&order] { order.push_back(1); });
    q.push(20, [&order] { order.push_back(2); });
    while (!q.empty()) q.pop().fn();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TieBreaksByInsertionOrder) {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
        q.push(5, [&order, i] { order.push_back(i); });
    }
    while (!q.empty()) q.pop().fn();
    for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, InterleavedPushPop) {
    EventQueue q;
    q.push(10, [] {});
    q.push(5, [] {});
    EXPECT_EQ(q.next_time(), 5);
    (void)q.pop();
    q.push(1, [] {});
    EXPECT_EQ(q.next_time(), 1);
    (void)q.pop();
    EXPECT_EQ(q.next_time(), 10);
}

TEST(EventQueue, SizeAndPushedCounters) {
    EventQueue q;
    EXPECT_TRUE(q.empty());
    q.push(1, [] {});
    q.push(2, [] {});
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.pushed(), 2u);
    (void)q.pop();
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.pushed(), 2u);
}

TEST(Simulator, RunUntilExecutesInclusiveBoundary) {
    Simulator sim(1);
    int fired = 0;
    sim.schedule_at(100, [&fired] { ++fired; });
    sim.schedule_at(101, [&fired] { fired += 10; });
    const auto executed = sim.run_until(100);
    EXPECT_EQ(executed, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 100);
    sim.run_until(200);
    EXPECT_EQ(fired, 11);
}

TEST(Simulator, ClockAdvancesToHorizonWhenIdle) {
    Simulator sim(1);
    sim.run_until(500);
    EXPECT_EQ(sim.now(), 500);
}

TEST(Simulator, ScheduleInIsRelative) {
    Simulator sim(1);
    SimTime seen = -1;
    sim.schedule_at(50, [&sim, &seen] {
        sim.schedule_in(25, [&sim, &seen] { seen = sim.now(); });
    });
    sim.run_until(1000);
    EXPECT_EQ(seen, 75);
}

TEST(Simulator, EventsCanScheduleAtSameTime) {
    Simulator sim(1);
    std::vector<int> order;
    sim.schedule_at(10, [&] {
        order.push_back(1);
        sim.schedule_in(0, [&order] { order.push_back(2); });
    });
    sim.schedule_at(10, [&order] { order.push_back(3); });
    sim.run_until(10);
    // The zero-delay event was inserted after the second t=10 event.
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, RunAllDrainsEverything) {
    Simulator sim(1);
    int count = 0;
    for (int i = 0; i < 10; ++i) {
        sim.schedule_at(i * 10, [&] {
            if (++count <= 5) sim.schedule_in(1000, [&count] { ++count; });
        });
    }
    sim.run_all();
    EXPECT_EQ(sim.pending_events(), 0u);
    EXPECT_EQ(count, 15);
}

TEST(Simulator, SplitRngDeterministicByCallOrder) {
    Simulator a(77);
    Simulator b(77);
    auto ra0 = a.split_rng();
    auto ra1 = a.split_rng();
    auto rb0 = b.split_rng();
    auto rb1 = b.split_rng();
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(ra0.next_u64(), rb0.next_u64());
        EXPECT_EQ(ra1.next_u64(), rb1.next_u64());
    }
}

TEST(Simulator, TimeConversionHelpers) {
    EXPECT_EQ(minutes(2), 120000);
    EXPECT_EQ(seconds(3), 3000);
    EXPECT_DOUBLE_EQ(to_minutes(minutes(90)), 90.0);
    EXPECT_EQ(kHour, 60 * kMinute);
}

TEST(PeriodicTask, FiresAtFixedIntervals) {
    Simulator sim(1);
    std::vector<SimTime> fired;
    auto task = PeriodicTask::start(sim, 100, 50,
                                    [&fired](SimTime t) { fired.push_back(t); });
    sim.run_until(300);
    EXPECT_EQ(fired, (std::vector<SimTime>{100, 150, 200, 250, 300}));
}

TEST(PeriodicTask, CancelStopsFutureFirings) {
    Simulator sim(1);
    int count = 0;
    auto task = PeriodicTask::start(sim, 10, 10, [&count](SimTime) { ++count; });
    sim.run_until(35);
    EXPECT_EQ(count, 3);
    task->cancel();
    sim.run_until(1000);
    EXPECT_EQ(count, 3);
}

TEST(PeriodicTask, DestructionStopsFirings) {
    Simulator sim(1);
    int count = 0;
    {
        auto task = PeriodicTask::start(sim, 10, 10, [&count](SimTime) { ++count; });
        sim.run_until(25);
    }
    sim.run_until(500);
    EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, TaskCanCancelItselfFromTick) {
    Simulator sim(1);
    int count = 0;
    std::unique_ptr<PeriodicTask> task;
    task = PeriodicTask::start(sim, 10, 10, [&](SimTime) {
        if (++count == 3) task->cancel();
    });
    sim.run_until(1000);
    EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace kadsim::sim
