// CSV writer, text tables, CLI parsing, env knobs, ASCII plots.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/ascii_plot.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/env.h"
#include "util/table.h"

namespace kadsim::util {
namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(Csv, WritesRowsAndEscapes) {
    const std::string path = "/tmp/kadsim_test_csv.csv";
    {
        CsvWriter csv(path);
        csv.write_row({"a", "b,c", "d\"e"});
        csv.write_row({CsvWriter::field(1.5), CsvWriter::field(42LL)});
    }
    const std::string content = read_file(path);
    EXPECT_NE(content.find("a,\"b,c\",\"d\"\"e\"\n"), std::string::npos);
    EXPECT_NE(content.find("1.5,42\n"), std::string::npos);
    std::filesystem::remove(path);
}

TEST(Csv, CreatesParentDirectories) {
    const std::string dir = "/tmp/kadsim_csv_dir/nested";
    const std::string path = dir + "/out.csv";
    std::filesystem::remove_all("/tmp/kadsim_csv_dir");
    {
        CsvWriter csv(path);
        csv.write_row({"x"});
    }
    EXPECT_TRUE(std::filesystem::exists(path));
    std::filesystem::remove_all("/tmp/kadsim_csv_dir");
}

TEST(TextTable, AlignsColumns) {
    TextTable t({"name", "value"});
    t.add_row({"k", "20"});
    t.add_row({"alpha", "3"});
    const std::string rendered = t.to_string();
    EXPECT_NE(rendered.find("| name "), std::string::npos);
    EXPECT_NE(rendered.find("| alpha"), std::string::npos);
    // Every line has the same width.
    std::stringstream ss(rendered);
    std::string line;
    std::size_t width = 0;
    while (std::getline(ss, line)) {
        if (width == 0) width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

TEST(TextTable, NumFormatting) {
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(3.0, 0), "3");
    EXPECT_EQ(TextTable::num(12345LL), "12345");
}

TEST(Cli, ParsesKeyValueForms) {
    // A bare flag followed by a non-option consumes it as its value, so the
    // positional argument goes first.
    const char* argv[] = {"prog", "run", "--size=250", "--k", "20", "--verbose"};
    CliArgs args(6, argv);
    EXPECT_EQ(args.get_int("size", 0), 250);
    EXPECT_EQ(args.get_int("k", 0), 20);
    EXPECT_TRUE(args.get_bool("verbose", false));
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "run");
    EXPECT_EQ(args.get_int("missing", 7), 7);
}

TEST(Cli, TypedErrors) {
    const char* argv[] = {"prog", "--n=abc"};
    CliArgs args(2, argv);
    EXPECT_THROW((void)args.get_int("n", 0), std::invalid_argument);
}

TEST(Env, IntAndDoubleParsing) {
    ::setenv("KADSIM_TEST_ENV_INT", "123", 1);
    EXPECT_EQ(env_int("KADSIM_TEST_ENV_INT", 0), 123);
    ::setenv("KADSIM_TEST_ENV_INT", "garbage", 1);
    EXPECT_EQ(env_int("KADSIM_TEST_ENV_INT", 55), 55);
    ::unsetenv("KADSIM_TEST_ENV_INT");
    EXPECT_EQ(env_int("KADSIM_TEST_ENV_INT", -1), -1);

    ::setenv("KADSIM_TEST_ENV_DBL", "0.25", 1);
    EXPECT_DOUBLE_EQ(env_double("KADSIM_TEST_ENV_DBL", 0.0), 0.25);
    ::unsetenv("KADSIM_TEST_ENV_DBL");
}

TEST(Env, ScaleKnobs) {
    ::unsetenv("REPRO_SCALE");
    EXPECT_EQ(repro_scale(), ReproScale::kQuick);
    ::setenv("REPRO_SCALE", "paper", 1);
    EXPECT_EQ(repro_scale(), ReproScale::kPaper);
    ::setenv("REPRO_SCALE", "full", 1);
    EXPECT_EQ(repro_scale(), ReproScale::kFull);
    ::unsetenv("REPRO_SCALE");

    ::setenv("REPRO_SEED", "77", 1);
    EXPECT_EQ(repro_seed(), 77u);
    ::unsetenv("REPRO_SEED");
    EXPECT_EQ(repro_seed(), 20170327u);
}

TEST(AsciiPlot, RendersSeriesAndLegend) {
    AsciiPlot plot(40, 10);
    PlotSeries s;
    s.name = "kappa";
    s.glyph = 'o';
    for (int i = 0; i <= 10; ++i) {
        s.x.push_back(i);
        s.y.push_back(i * i);
    }
    plot.add_series(std::move(s));
    plot.set_title("demo");
    const std::string out = plot.render();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find('o'), std::string::npos);
    EXPECT_NE(out.find("legend: [o] kappa"), std::string::npos);
}

TEST(AsciiPlot, EmptyPlotDoesNotCrash) {
    AsciiPlot plot(20, 5);
    EXPECT_EQ(plot.render(), "(no data)\n");
}

}  // namespace
}  // namespace kadsim::util
