// Build sanity: library identity constants and the paper's default protocol
// parameters (§4.1 / §5.3). A regression here means the build wired up a
// stale library or someone changed the defaults the figure benches rely on.
#include <gtest/gtest.h>

#include <string>

#include "core/version.h"
#include "kad/config.h"
#include "sim/time.h"

namespace kadsim {
namespace {

TEST(BuildSanity, VersionConstantsAreConsistent) {
    const std::string expected = std::to_string(core::kVersionMajor) + "." +
                                 std::to_string(core::kVersionMinor) + "." +
                                 std::to_string(core::kVersionPatch);
    EXPECT_EQ(expected, core::kVersionString);
    EXPECT_STREQ(core::kPaperArxivId, "1703.09171");
    EXPECT_STREQ(core::kCompanionArxivId, "1605.08002");
}

TEST(BuildSanity, KademliaDefaultsMatchPaper) {
    const kad::KademliaConfig cfg;
    EXPECT_EQ(cfg.b, 160);    // id bit-length (paper also sweeps 80, §5.7)
    EXPECT_EQ(cfg.k, 20);     // bucket size / lookup width
    EXPECT_EQ(cfg.alpha, 3);  // lookup parallelism
    EXPECT_EQ(cfg.s, 5);      // staleness limit before removal
    EXPECT_EQ(cfg.rpc_timeout, 2 * sim::kSecond);
    EXPECT_EQ(cfg.refresh_interval, 60 * sim::kMinute);
    EXPECT_EQ(cfg.bucket_policy, kad::BucketPolicy::kDropNew);
    EXPECT_EQ(cfg.refresh_policy, kad::RefreshPolicy::kAllBuckets);
    EXPECT_EQ(cfg.advertise_per_refresh, 0);  // paper behaviour, no extension
    EXPECT_NO_THROW(cfg.validate());
}

TEST(BuildSanity, ConfigValidateRejectsOutOfRange) {
    kad::KademliaConfig cfg;
    cfg.b = kad::kMaxBits + 1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = {};
    cfg.k = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = {};
    cfg.alpha = -1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace kadsim
