// Even's transformation (paper §4.3, Figure 1): structure and the worked
// example from the paper — max-flow 3 on the raw graph vs κ(a,i) = 1 on the
// transformed one.
#include <gtest/gtest.h>

#include "flow/dinic.h"
#include "flow/even_transform.h"
#include "flow/flow_workspace.h"
#include "graph/digraph.h"

namespace kadsim::flow {
namespace {

/// The paper's Figure 1 graph: a fans out to {b,c,d}, all funnel through e,
/// which fans out to {f,g,h}, all reaching i. 9 vertices, 12 edges.
graph::Digraph figure1_graph() {
    enum { a, b, c, d, e, f, g, h, i };
    graph::Digraph gr(9);
    gr.add_edge(a, b);
    gr.add_edge(a, c);
    gr.add_edge(a, d);
    gr.add_edge(b, e);
    gr.add_edge(c, e);
    gr.add_edge(d, e);
    gr.add_edge(e, f);
    gr.add_edge(e, g);
    gr.add_edge(e, h);
    gr.add_edge(f, i);
    gr.add_edge(g, i);
    gr.add_edge(h, i);
    gr.finalize();
    return gr;
}

TEST(EvenTransform, ProducesTwoNVerticesAndMPlusNArcs) {
    const graph::Digraph g = figure1_graph();
    const FlowNetwork net = even_transform(g);
    EXPECT_EQ(net.vertex_count(), 2 * g.vertex_count());
    // add_arc stores forward+reverse, so forward arcs = arc_count()/2.
    EXPECT_EQ(net.arc_count() / 2,
              static_cast<int>(g.edge_count()) + g.vertex_count());
}

TEST(EvenTransform, InternalArcsHaveCapacityOne) {
    const graph::Digraph g = figure1_graph();
    const FlowNetwork net = even_transform(g);
    // Internal arc of vertex v was added first (index 2v), capacity 1.
    for (int v = 0; v < g.vertex_count(); ++v) {
        EXPECT_EQ(net.arc_to(2 * v), out_vertex(v));
        EXPECT_EQ(net.original_cap(2 * v), 1);
    }
}

TEST(EvenTransform, DegreesArePreserved) {
    const graph::Digraph g = figure1_graph();
    const FlowNetwork net = even_transform(g);
    const auto in_degrees = g.in_degrees();
    for (int v = 0; v < g.vertex_count(); ++v) {
        // v' has in-degree din(v) (+ its internal arc's reverse);
        // v'' has out-degree dout(v) (+ its internal arc's reverse).
        int forward_out_of_vpp = 0;
        for (const int ai : net.arcs_of(out_vertex(v))) {
            if (ai % 2 == 0) ++forward_out_of_vpp;
        }
        EXPECT_EQ(forward_out_of_vpp, g.out_degree(v)) << "v=" << v;

        int forward_into_vp = 0;
        for (const int ai : net.arcs_of(in_vertex(v))) {
            if (ai % 2 == 0 && net.arc_to(ai) == out_vertex(v)) continue;
            if (ai % 2 == 1) ++forward_into_vp;  // reverse stubs of incoming arcs
        }
        EXPECT_EQ(forward_into_vp, in_degrees[static_cast<std::size_t>(v)]) << "v=" << v;
    }
}

TEST(EvenTransform, PaperFigure1MaxFlowVsVertexConnectivity) {
    const graph::Digraph g = figure1_graph();

    // Raw graph with unit edge capacities: max flow a→i is 3 ...
    FlowNetwork raw(g.vertex_count());
    for (int u = 0; u < g.vertex_count(); ++u) {
        for (const int v : g.out(u)) raw.add_arc(u, v, 1);
    }
    raw.finalize();
    FlowWorkspace raw_ws(raw);
    Dinic solver;
    EXPECT_EQ(solver.max_flow(raw_ws, 0, 8), 3);

    // ... but the vertex connectivity κ(a,i) is 1 (every path passes e).
    const FlowNetwork transformed = even_transform(g);
    FlowWorkspace ws(transformed);
    Dinic solver2;
    EXPECT_EQ(solver2.max_flow(ws, out_vertex(0), in_vertex(8)), 1);
}

TEST(EvenTransform, TwoVertexDisjointPathsGadget) {
    // 0→1→3, 0→2→3: two internally disjoint paths, κ(0,3) = 2.
    graph::Digraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 3);
    g.add_edge(0, 2);
    g.add_edge(2, 3);
    g.finalize();
    const FlowNetwork net = even_transform(g);
    FlowWorkspace ws(net);
    Dinic solver;
    EXPECT_EQ(solver.max_flow(ws, out_vertex(0), in_vertex(3)), 2);
}

TEST(EvenTransform, SourceAndSinkInternalArcsDoNotCapFlow) {
    // Flow starts at v'' and ends at w', so the endpoints' own internal arcs
    // are not on any path: a high-degree pair can carry flow > 1.
    graph::Digraph g(5);
    // 0 and 4 joined via three middle vertices.
    for (int mid = 1; mid <= 3; ++mid) {
        g.add_edge(0, mid);
        g.add_edge(mid, 4);
    }
    g.finalize();
    const FlowNetwork net = even_transform(g);
    FlowWorkspace ws(net);
    Dinic solver;
    EXPECT_EQ(solver.max_flow(ws, out_vertex(0), in_vertex(4)), 3);
}

}  // namespace
}  // namespace kadsim::flow
