// bench::parse_sample_row — the cache-CSV row parser behind the bench
// harness's series cache (bench/common.cpp load_cached).
//
// The original implementation built a std::istringstream per row, which made
// probing a large cached series allocation-bound: one stream (plus its
// internal buffer) per row, tens of thousands of rows per figure at paper
// scale. The from_chars rewrite parses in place; the AllocationBudget test
// pins that property with a counting global operator new so a stream-based
// (or otherwise allocating) parser cannot silently come back.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/analyzer.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Counting replacements for the global allocation functions. Only the
// throwing scalar/array forms are replaced; the sized/nothrow deletes
// forward to free so every path stays matched.
void* operator new(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace kadsim {
namespace {

/// One cache-CSV data row in exactly the bytes store_cached writes
/// (bench/common.cpp) — the format parse_sample_row must accept.
std::string row_for(const core::ResilienceSample& s) {
    std::ostringstream out;
    out << s.time_min << ',' << s.n << ',' << s.m << ',' << s.kappa_min << ','
        << s.kappa_avg << ',' << s.scc_count << ',' << s.reciprocity << ','
        << s.pairs_evaluated << ',' << s.removed_total << ',' << s.lambda_min
        << ',' << s.lambda_avg << ',' << s.scc_frac << ',' << s.wcc_frac << ','
        << s.articulation_points << ',' << s.bridges << ',' << s.out_degree_min
        << ',' << s.in_degree_min << ',' << s.kappa_degree_gap << ','
        << s.lookups_done << ',' << s.lookup_success_rate << ','
        << s.lookup_hop_p50 << ',' << s.lookup_hop_p99 << ','
        << s.lookup_latency_p50_ms << ',' << s.lookup_latency_p99_ms << ','
        << s.probes_done << ',' << s.probe_success_rate << ','
        << s.probe_hop_p50 << ',' << s.probe_hop_p99;
    return out.str();
}

core::ResilienceSample sample_for(int i) {
    core::ResilienceSample s;
    s.time_min = 30.0 * i + 0.5;
    s.n = 250 + i;
    s.m = 31000 + 7 * i;
    s.kappa_min = 3 + i % 5;
    s.kappa_avg = 19.25 + 0.125 * (i % 8);
    s.scc_count = 1 + i % 2;
    s.reciprocity = 0.984375;
    s.pairs_evaluated = 1194u + static_cast<std::uint64_t>(i);
    s.removed_total = static_cast<std::uint64_t>(2 * i);
    s.lambda_min = 4 + i % 3;
    s.lambda_avg = 21.5 + 0.25 * (i % 4);
    // Every double here survives the store format's default 6-significant-
    // digit ostream precision, so the round-trip comparison can be exact.
    s.scc_frac = 0.875;
    s.wcc_frac = 1.0;
    s.articulation_points = i % 7;
    s.bridges = i % 11;
    s.out_degree_min = 5 + i % 4;
    s.in_degree_min = 6 + i % 9;
    s.kappa_degree_gap = 2 + i % 3;
    s.lookups_done = 40u + static_cast<std::uint64_t>(i % 13);
    s.lookup_success_rate = 0.9375;
    s.lookup_hop_p50 = 3.0 + i % 2;
    s.lookup_hop_p99 = 6.0 + i % 3;
    s.lookup_latency_p50_ms = 448.0;
    s.lookup_latency_p99_ms = 1792.0;
    s.probes_done = 64u;
    s.probe_success_rate = 0.984375;
    s.probe_hop_p50 = 3.0;
    s.probe_hop_p99 = 5.0 + i % 2;
    return s;
}

TEST(BenchCache, ParseRoundTripsStoreFormat) {
    const core::ResilienceSample expected = sample_for(13);
    core::ResilienceSample parsed;
    ASSERT_TRUE(bench::parse_sample_row(row_for(expected), parsed));
    EXPECT_EQ(parsed.time_min, expected.time_min);
    EXPECT_EQ(parsed.n, expected.n);
    EXPECT_EQ(parsed.m, expected.m);
    EXPECT_EQ(parsed.kappa_min, expected.kappa_min);
    EXPECT_EQ(parsed.kappa_avg, expected.kappa_avg);
    EXPECT_EQ(parsed.scc_count, expected.scc_count);
    EXPECT_EQ(parsed.reciprocity, expected.reciprocity);
    EXPECT_EQ(parsed.pairs_evaluated, expected.pairs_evaluated);
    EXPECT_EQ(parsed.removed_total, expected.removed_total);
    EXPECT_EQ(parsed.lambda_min, expected.lambda_min);
    EXPECT_EQ(parsed.lambda_avg, expected.lambda_avg);
    EXPECT_EQ(parsed.scc_frac, expected.scc_frac);
    EXPECT_EQ(parsed.wcc_frac, expected.wcc_frac);
    EXPECT_EQ(parsed.articulation_points, expected.articulation_points);
    EXPECT_EQ(parsed.bridges, expected.bridges);
    EXPECT_EQ(parsed.out_degree_min, expected.out_degree_min);
    EXPECT_EQ(parsed.in_degree_min, expected.in_degree_min);
    EXPECT_EQ(parsed.kappa_degree_gap, expected.kappa_degree_gap);
    EXPECT_EQ(parsed.lookups_done, expected.lookups_done);
    EXPECT_EQ(parsed.lookup_success_rate, expected.lookup_success_rate);
    EXPECT_EQ(parsed.lookup_hop_p50, expected.lookup_hop_p50);
    EXPECT_EQ(parsed.lookup_hop_p99, expected.lookup_hop_p99);
    EXPECT_EQ(parsed.lookup_latency_p50_ms, expected.lookup_latency_p50_ms);
    EXPECT_EQ(parsed.lookup_latency_p99_ms, expected.lookup_latency_p99_ms);
    EXPECT_EQ(parsed.probes_done, expected.probes_done);
    EXPECT_EQ(parsed.probe_success_rate, expected.probe_success_rate);
    EXPECT_EQ(parsed.probe_hop_p50, expected.probe_hop_p50);
    EXPECT_EQ(parsed.probe_hop_p99, expected.probe_hop_p99);
}

TEST(BenchCache, RejectsMalformedRows) {
    core::ResilienceSample s;
    // Pre-metric-suite row: the eight original columns only.
    EXPECT_FALSE(bench::parse_sample_row("0.5,60,700,3,9.5,1,0.98,1194", s));
    // Pre-lookup-engine row: all 18 metric columns but no lookup columns —
    // older caches miss cleanly and re-simulate.
    EXPECT_FALSE(bench::parse_sample_row(
        "0.5,60,700,3,9.5,1,0.98,1194,0,4,21.5,0.99,1,0,0,5,6,2", s));
    EXPECT_FALSE(bench::parse_sample_row("", s));
    EXPECT_FALSE(bench::parse_sample_row("garbage", s));
    // Trailing junk after the final column.
    EXPECT_FALSE(bench::parse_sample_row(row_for(sample_for(0)) + ",9", s));
    EXPECT_FALSE(bench::parse_sample_row(row_for(sample_for(0)) + "x", s));
    // A non-numeric field mid-row.
    EXPECT_FALSE(
        bench::parse_sample_row("0.5,60,abc,3,9.5,1,0.98,1194,0,4,21.5,0.99,"
                                "1,0,0,5,6,2",
                                s));
    // A well-formed row still parses after all the rejects.
    EXPECT_TRUE(bench::parse_sample_row(row_for(sample_for(1)), s));
}

TEST(BenchCache, TwentyThousandRowProbeStaysUnderAllocationBudget) {
    constexpr int kRows = 20000;
    std::vector<std::string> rows;
    rows.reserve(kRows);
    for (int i = 0; i < kRows; ++i) rows.push_back(row_for(sample_for(i)));

    // The probe itself: parse every row, keep a checksum so the loop cannot
    // be optimized away. Parsing is in-place — the budget admits only
    // incidental noise (instrumentation, a lazy runtime buffer), not
    // per-row allocation.
    std::uint64_t checksum = 0;
    const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    for (const auto& row : rows) {
        core::ResilienceSample s;
        ASSERT_TRUE(bench::parse_sample_row(row, s));
        checksum += static_cast<std::uint64_t>(s.kappa_min) + s.pairs_evaluated;
    }
    const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);

    EXPECT_GT(checksum, 0u);
    EXPECT_LE(after - before, 100u)
        << "parse_sample_row allocated per row; the cache probe has "
           "regressed to stream-based parsing";
}

}  // namespace
}  // namespace kadsim
