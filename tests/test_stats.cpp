// Summary statistics and time series (Table 2's mean / relative variance).
#include <gtest/gtest.h>

#include "stats/summary.h"
#include "stats/timeseries.h"

namespace kadsim::stats {
namespace {

TEST(Summary, MeanVarianceKnownValues) {
    Summary s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.relative_variance(), 0.8);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, EmptyIsAllZero) {
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.relative_variance(), 0.0);
}

TEST(Summary, ZeroMeanHasZeroRelativeVariance) {
    // Table 2's size-2500/k=5 row: κ_min identically 0 → mean 0, RV 0.
    Summary s;
    for (int i = 0; i < 10; ++i) s.add(0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.relative_variance(), 0.0);
}

TEST(Summary, SingleValue) {
    Summary s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, WelfordMatchesDirectComputation) {
    Summary s;
    double sum = 0.0, sum_sq = 0.0;
    const int n = 1000;
    for (int i = 0; i < n; ++i) {
        const double x = std::sin(i) * 10.0 + i * 0.01;
        s.add(x);
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(s.mean(), mean, 1e-9);
    EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(TimeSeries, AppendsAndQueries) {
    TimeSeries ts;
    ts.add(0.0, 10.0);
    ts.add(1.0, 20.0);
    ts.add(2.0, 30.0);
    EXPECT_EQ(ts.size(), 3u);
    EXPECT_DOUBLE_EQ(ts.time_at(1), 1.0);
    EXPECT_DOUBLE_EQ(ts.value_at(2), 30.0);
}

TEST(TimeSeries, SummarizeBetweenIsHalfOpen) {
    TimeSeries ts;
    for (int t = 0; t < 10; ++t) ts.add(t, t * 1.0);
    const Summary s = ts.summarize_between(2.0, 5.0);  // values 2,3,4
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(TimeSeries, SummarizeAll) {
    TimeSeries ts;
    ts.add(0.0, 1.0);
    ts.add(5.0, 3.0);
    const Summary s = ts.summarize();
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

}  // namespace
}  // namespace kadsim::stats
