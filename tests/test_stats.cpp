// Summary statistics and time series (Table 2's mean / relative variance).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "stats/histogram.h"
#include "stats/summary.h"
#include "stats/timeseries.h"

namespace kadsim::stats {
namespace {

TEST(Summary, MeanVarianceKnownValues) {
    Summary s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.relative_variance(), 0.8);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, EmptyIsAllZero) {
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.relative_variance(), 0.0);
}

TEST(Summary, ZeroMeanHasZeroRelativeVariance) {
    // Table 2's size-2500/k=5 row: κ_min identically 0 → mean 0, RV 0.
    Summary s;
    for (int i = 0; i < 10; ++i) s.add(0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.relative_variance(), 0.0);
}

TEST(Summary, SingleValue) {
    Summary s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, WelfordMatchesDirectComputation) {
    Summary s;
    double sum = 0.0, sum_sq = 0.0;
    const int n = 1000;
    for (int i = 0; i < n; ++i) {
        const double x = std::sin(i) * 10.0 + i * 0.01;
        s.add(x);
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(s.mean(), mean, 1e-9);
    EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(TimeSeries, AppendsAndQueries) {
    TimeSeries ts;
    ts.add(0.0, 10.0);
    ts.add(1.0, 20.0);
    ts.add(2.0, 30.0);
    EXPECT_EQ(ts.size(), 3u);
    EXPECT_DOUBLE_EQ(ts.time_at(1), 1.0);
    EXPECT_DOUBLE_EQ(ts.value_at(2), 30.0);
}

TEST(TimeSeries, SummarizeBetweenIsHalfOpen) {
    TimeSeries ts;
    for (int t = 0; t < 10; ++t) ts.add(t, t * 1.0);
    const Summary s = ts.summarize_between(2.0, 5.0);  // values 2,3,4
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(TimeSeries, SummarizeAll) {
    TimeSeries ts;
    ts.add(0.0, 1.0);
    ts.add(5.0, 3.0);
    const Summary s = ts.summarize();
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

// --- mergeable streaming histograms (stats/histogram.h) ---------------------

TEST(CountHistogram, QuantilesMatchSortedIndexConvention) {
    // quantile(q) must equal sorted[floor(q*n)] — the `sorted[n/2]` /
    // `sorted[n/10]` convention graph_stats has always reported.
    std::vector<std::int64_t> samples = {9, 1, 4, 4, 7, 2, 2, 2, 8, 5, 3, 6};
    CountHistogram h;
    for (const auto v : samples) h.add(v);
    std::sort(samples.begin(), samples.end());
    EXPECT_EQ(h.total(), samples.size());
    EXPECT_EQ(h.min(), samples.front());
    EXPECT_EQ(h.max(), samples.back());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        EXPECT_EQ(h.value_at_index(i), samples[i]) << "index " << i;
    }
    EXPECT_EQ(h.quantile(0.5), samples[samples.size() / 2]);
    EXPECT_EQ(h.quantile(0.1), samples[samples.size() / 10]);
    EXPECT_EQ(h.quantile(0.99), samples[(samples.size() * 99) / 100]);
    // Clamped at both ends.
    EXPECT_EQ(h.quantile(0.0), samples.front());
    EXPECT_EQ(h.quantile(1.0), samples.back());
}

TEST(CountHistogram, MergeEqualsCombinedStream) {
    CountHistogram a;
    CountHistogram b;
    CountHistogram combined;
    for (int v = 0; v < 40; ++v) {
        ((v % 3 == 0) ? a : b).add(v % 11);
        combined.add(v % 11);
    }
    a.merge(b);
    EXPECT_EQ(a.total(), combined.total());
    EXPECT_EQ(a.merges(), 1u);
    ASSERT_EQ(a.counts().size(), combined.counts().size());
    for (std::size_t i = 0; i < a.counts().size(); ++i) {
        EXPECT_EQ(a.counts()[i], combined.counts()[i]);
    }
}

TEST(CountHistogram, DiffRecoversInterval) {
    CountHistogram cumulative;
    for (const auto v : {1, 2, 3}) cumulative.add(v);
    const CountHistogram checkpoint = cumulative;
    for (const auto v : {3, 5, 5, 9}) cumulative.add(v);
    const CountHistogram interval = cumulative.diff(checkpoint);
    EXPECT_EQ(interval.total(), 4u);
    EXPECT_EQ(interval.min(), 3);
    EXPECT_EQ(interval.max(), 9);
    EXPECT_EQ(interval.quantile(0.5), 5);
}

TEST(CountHistogram, EmptyAndNegativeClamp) {
    CountHistogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.quantile(0.5), 0);
    h.add(-7);  // clamps to bucket 0
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 0);
}

TEST(Log2Histogram, ExactBelowEightAndMonotoneQuantiles) {
    Log2Histogram h;
    for (const auto v : {0, 1, 2, 3, 4, 5, 6, 7}) h.add(v);
    // Values below 8 occupy exact unit buckets.
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(Log2Histogram::index_of(static_cast<std::int64_t>(i)), i);
        EXPECT_EQ(Log2Histogram::bucket_floor(i), static_cast<std::int64_t>(i));
    }
    for (const auto v : {100, 1000, 10000, 100000}) h.add(v);
    std::int64_t prev = -1;
    for (const double q : {0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
        const auto cur = h.quantile(q);
        EXPECT_GE(cur, prev) << "quantile not monotone at q=" << q;
        prev = cur;
    }
    // A bucket floor never exceeds the value mapped into the bucket.
    for (const std::int64_t v : {9, 17, 100, 12345, 1 << 30}) {
        EXPECT_LE(Log2Histogram::bucket_floor(Log2Histogram::index_of(v)), v);
        EXPECT_GT(Log2Histogram::bucket_floor(Log2Histogram::index_of(v) + 1), v);
    }
}

TEST(Log2Histogram, MergeCountersAccumulate) {
    Log2Histogram a;
    Log2Histogram b;
    Log2Histogram c;
    a.add(5);
    b.add(300);
    c.add(7);
    b.merge(c);   // b.merges = 1
    a.merge(b);   // a.merges = 1 + (b.merges) + 1... carried transitively
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.merges(), 2u);  // one merge into b, one into a
    EXPECT_EQ(a.quantile(0.0), 5);
}

TEST(LookupTrafficAggregate, MergeAndDiff) {
    LookupTraffic a;
    a.issued = 10;
    a.completed = 8;
    a.succeeded = 7;
    for (int i = 0; i < 8; ++i) {
        a.hops.add(3);
        a.latency_ms.add(480);
    }
    LookupTraffic b = a;
    b.issued = 4;
    b.completed = 4;
    b.succeeded = 4;
    a.merge(b);
    EXPECT_EQ(a.issued, 14u);
    EXPECT_EQ(a.completed, 12u);
    EXPECT_EQ(a.hops.total(), 16u);
    EXPECT_GE(a.hist_merges(), 2u);

    const LookupTraffic interval = a.diff(b);
    EXPECT_EQ(interval.issued, 10u);
    EXPECT_EQ(interval.completed, 8u);
    EXPECT_EQ(interval.hops.total(), 8u);
    EXPECT_EQ(interval.hops.quantile(0.5), 3);
}

}  // namespace
}  // namespace kadsim::stats
