// The SBO callable that carries every simulator event.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "util/inplace_function.h"

namespace kadsim::util {
namespace {

TEST(InplaceFunction, EmptyByDefault) {
    InplaceFunction<int()> f;
    EXPECT_FALSE(f.has_value());
    EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InplaceFunction, CallsLambda) {
    InplaceFunction<int(int)> f = [](int x) { return x * 2; };
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f(21), 42);
}

TEST(InplaceFunction, CapturesState) {
    int base = 10;
    InplaceFunction<int(int)> f = [base](int x) { return base + x; };
    EXPECT_EQ(f(5), 15);
}

TEST(InplaceFunction, MoveTransfersCallable) {
    InplaceFunction<int()> f = [] { return 7; };
    InplaceFunction<int()> g = std::move(f);
    EXPECT_FALSE(f.has_value());  // NOLINT(bugprone-use-after-move): asserting the move
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(g(), 7);
}

TEST(InplaceFunction, MoveOnlyCapture) {
    auto p = std::make_unique<int>(99);
    InplaceFunction<int()> f = [p = std::move(p)] { return *p; };
    InplaceFunction<int()> g = std::move(f);
    EXPECT_EQ(g(), 99);
}

TEST(InplaceFunction, DestructorRunsExactlyOnce) {
    struct Probe {
        int* counter;
        explicit Probe(int* c) : counter(c) {}
        Probe(Probe&& other) noexcept : counter(other.counter) { other.counter = nullptr; }
        Probe(const Probe&) = delete;
        ~Probe() {
            if (counter != nullptr) ++*counter;
        }
        int operator()() const { return 1; }
    };
    int destroyed = 0;
    {
        InplaceFunction<int()> f = Probe(&destroyed);
        InplaceFunction<int()> g = std::move(f);
        EXPECT_EQ(g(), 1);
    }
    EXPECT_EQ(destroyed, 1);
}

TEST(InplaceFunction, ResetDestroysCallable) {
    auto p = std::make_shared<int>(5);
    InplaceFunction<long()> f = [p] { return static_cast<long>(*p); };
    EXPECT_EQ(p.use_count(), 2);
    f.reset();
    EXPECT_EQ(p.use_count(), 1);
    EXPECT_FALSE(f.has_value());
}

TEST(InplaceFunction, MoveAssignReplacesExisting) {
    auto a = std::make_shared<int>(1);
    auto b = std::make_shared<int>(2);
    InplaceFunction<int()> f = [a] { return *a; };
    InplaceFunction<int()> g = [b] { return *b; };
    f = std::move(g);
    EXPECT_EQ(a.use_count(), 1);  // old callable destroyed
    EXPECT_EQ(f(), 2);
}

TEST(InplaceFunction, VoidSignature) {
    int called = 0;
    InplaceFunction<void()> f = [&called] { ++called; };
    f();
    f();
    EXPECT_EQ(called, 2);
}

}  // namespace
}  // namespace kadsim::util
