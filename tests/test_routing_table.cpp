// k-bucket routing table: capacity, LRU order, staleness limit s, closest-k
// correctness against brute force, ping-evict replacement cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "kad/routing_table.h"
#include "util/rng.h"

namespace kadsim::kad {
namespace {

KademliaConfig make_config(int k = 4, int s = 2,
                           BucketPolicy policy = BucketPolicy::kDropNew) {
    KademliaConfig cfg;
    cfg.k = k;
    cfg.s = s;
    cfg.bucket_policy = policy;
    return cfg;
}

Contact make_contact(util::Rng& rng, net::Address addr, int b = 160) {
    return Contact{NodeId::random(rng, b), addr};
}

TEST(RoutingTable, InsertAndContains) {
    const KademliaConfig cfg = make_config();
    util::Rng rng(1);
    const NodeId self = NodeId::random(rng, 160);
    RoutingTable table(self, cfg);
    const Contact c = make_contact(rng, 1);
    EXPECT_EQ(table.observe(c, 100), ObserveResult::kInserted);
    EXPECT_TRUE(table.contains(c.id));
    EXPECT_EQ(table.size(), 1u);
    EXPECT_TRUE(table.check_invariants());
}

TEST(RoutingTable, SelfIsNeverInserted) {
    const KademliaConfig cfg = make_config();
    util::Rng rng(2);
    const NodeId self = NodeId::random(rng, 160);
    RoutingTable table(self, cfg);
    EXPECT_EQ(table.observe(Contact{self, 9}, 1), ObserveResult::kSelf);
    EXPECT_EQ(table.size(), 0u);
}

TEST(RoutingTable, ReobserveUpdatesRecencyAndResetsFailures) {
    const KademliaConfig cfg = make_config(4, 3);
    util::Rng rng(3);
    const NodeId self = NodeId::random(rng, 160);
    RoutingTable table(self, cfg);
    const Contact c = make_contact(rng, 1);
    table.observe(c, 10);
    EXPECT_FALSE(table.record_failure(c.id, 11));  // 1 of 3
    EXPECT_FALSE(table.record_failure(c.id, 12));  // 2 of 3
    table.observe(c, 13);                          // resets the streak
    EXPECT_FALSE(table.record_failure(c.id, 14));
    EXPECT_FALSE(table.record_failure(c.id, 15));
    EXPECT_TRUE(table.contains(c.id));
    EXPECT_TRUE(table.record_failure(c.id, 16));  // 3rd consecutive: removed
    EXPECT_FALSE(table.contains(c.id));
}

TEST(RoutingTable, StalenessLimitOneRemovesImmediately) {
    const KademliaConfig cfg = make_config(4, 1);
    util::Rng rng(4);
    RoutingTable table(NodeId::random(rng, 160), cfg);
    const Contact c = make_contact(rng, 1);
    table.observe(c, 10);
    EXPECT_TRUE(table.record_failure(c.id, 11));
    EXPECT_EQ(table.size(), 0u);
}

TEST(RoutingTable, BucketCapacityEnforced) {
    const KademliaConfig cfg = make_config(3);
    util::Rng rng(5);
    const NodeId self = NodeId::random(rng, 160);
    RoutingTable table(self, cfg);

    // Generate many contacts in the same bucket (the top one is easiest).
    std::vector<Contact> bucket_mates;
    net::Address addr = 1;
    while (bucket_mates.size() < 10) {
        const Contact c = make_contact(rng, addr++);
        if (self.distance_to(c.id).bucket_index() == 159) bucket_mates.push_back(c);
    }
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(table.observe(bucket_mates[static_cast<std::size_t>(i)], i),
                  ObserveResult::kInserted);
    }
    EXPECT_EQ(table.observe(bucket_mates[3], 99), ObserveResult::kBucketFull);
    EXPECT_EQ(table.size(), 3u);
    EXPECT_TRUE(table.check_invariants());
}

TEST(RoutingTable, LruOrderFrontIsLeastRecentlySeen) {
    const KademliaConfig cfg = make_config(3);
    util::Rng rng(6);
    const NodeId self = NodeId::random(rng, 160);
    RoutingTable table(self, cfg);
    std::vector<Contact> mates;
    net::Address addr = 1;
    while (mates.size() < 3) {
        const Contact c = make_contact(rng, addr++);
        if (self.distance_to(c.id).bucket_index() == 159) mates.push_back(c);
    }
    table.observe(mates[0], 10);
    table.observe(mates[1], 20);
    table.observe(mates[2], 30);
    auto lrs = table.least_recently_seen(mates[0].id);
    ASSERT_TRUE(lrs.has_value());
    EXPECT_EQ(lrs->id, mates[0].id);
    // Touching mates[0] moves it to the back.
    table.observe(mates[0], 40);
    lrs = table.least_recently_seen(mates[0].id);
    ASSERT_TRUE(lrs.has_value());
    EXPECT_EQ(lrs->id, mates[1].id);
}

TEST(RoutingTable, PingEvictParksReplacementAndPromotesOnRemoval) {
    const KademliaConfig cfg = make_config(2, 1, BucketPolicy::kPingEvict);
    util::Rng rng(7);
    const NodeId self = NodeId::random(rng, 160);
    RoutingTable table(self, cfg);
    std::vector<Contact> mates;
    net::Address addr = 1;
    while (mates.size() < 3) {
        const Contact c = make_contact(rng, addr++);
        if (self.distance_to(c.id).bucket_index() == 159) mates.push_back(c);
    }
    table.observe(mates[0], 10);
    table.observe(mates[1], 20);
    EXPECT_EQ(table.observe(mates[2], 30), ObserveResult::kBucketFull);
    // mates[2] parked; failing mates[0] (s=1) promotes it.
    EXPECT_TRUE(table.record_failure(mates[0].id, 40));
    EXPECT_FALSE(table.contains(mates[0].id));
    EXPECT_TRUE(table.contains(mates[2].id));
    EXPECT_EQ(table.size(), 2u);
    EXPECT_TRUE(table.check_invariants());
}

TEST(RoutingTable, DropNewPolicyDiscardsCandidate) {
    const KademliaConfig cfg = make_config(2, 1, BucketPolicy::kDropNew);
    util::Rng rng(8);
    const NodeId self = NodeId::random(rng, 160);
    RoutingTable table(self, cfg);
    std::vector<Contact> mates;
    net::Address addr = 1;
    while (mates.size() < 3) {
        const Contact c = make_contact(rng, addr++);
        if (self.distance_to(c.id).bucket_index() == 159) mates.push_back(c);
    }
    table.observe(mates[0], 10);
    table.observe(mates[1], 20);
    EXPECT_EQ(table.observe(mates[2], 30), ObserveResult::kBucketFull);
    EXPECT_TRUE(table.record_failure(mates[0].id, 40));
    // No replacement cache under kDropNew: slot stays free.
    EXPECT_FALSE(table.contains(mates[2].id));
    EXPECT_EQ(table.size(), 1u);
}

TEST(RoutingTable, RecordFailureOnUnknownContactIsNoop) {
    const KademliaConfig cfg = make_config();
    util::Rng rng(9);
    RoutingTable table(NodeId::random(rng, 160), cfg);
    EXPECT_FALSE(table.record_failure(NodeId::random(rng, 160), 1));
}

class ClosestBruteForceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // (b, want)

TEST_P(ClosestBruteForceTest, ClosestMatchesBruteForce) {
    // Property check for the bucket-pruned exact selection (the per-bucket
    // XOR distance ranges are disjoint): must agree with a full sort for any
    // bit-length and result width, including targets equal to stored ids.
    const auto [b, want] = GetParam();
    KademliaConfig cfg = make_config(20, 5);
    cfg.b = b;
    util::Rng rng(10 + static_cast<std::uint64_t>(b + want));
    const NodeId self = NodeId::random(rng, b);
    RoutingTable table(self, cfg);
    std::vector<Contact> inserted;
    for (net::Address a = 1; a <= 300; ++a) {
        const Contact c = make_contact(rng, a, b);
        if (table.observe(c, a) == ObserveResult::kInserted) inserted.push_back(c);
    }
    ASSERT_GT(inserted.size(), 40u);

    for (int trial = 0; trial < 25; ++trial) {
        // Every 5th trial targets a stored id or the owner's own id.
        NodeId target = NodeId::random(rng, b);
        if (trial % 5 == 1) target = inserted[trial % inserted.size()].id;
        if (trial % 5 == 3) target = self;
        std::vector<Contact> got;
        table.closest(target, static_cast<std::size_t>(want), got);
        ASSERT_EQ(got.size(), std::min<std::size_t>(static_cast<std::size_t>(want),
                                                    inserted.size()));

        auto expected = inserted;
        std::sort(expected.begin(), expected.end(),
                  [&target](const Contact& x, const Contact& y) {
                      return target.distance_to(x.id) < target.distance_to(y.id);
                  });
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].id, expected[i].id) << "trial " << trial << " pos " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(BitLengthsAndWidths, ClosestBruteForceTest,
                         ::testing::Combine(::testing::Values(80, 160),
                                            ::testing::Values(1, 10, 40)));

TEST(RoutingTable, ClosestExcludesRequestedId) {
    const KademliaConfig cfg = make_config(20, 5);
    util::Rng rng(11);
    const NodeId self = NodeId::random(rng, 160);
    RoutingTable table(self, cfg);
    std::vector<Contact> inserted;
    for (net::Address a = 1; a <= 50; ++a) {
        const Contact c = make_contact(rng, a);
        if (table.observe(c, a) == ObserveResult::kInserted) inserted.push_back(c);
    }
    const NodeId& excluded = inserted.front().id;
    std::vector<Contact> got;
    table.closest(excluded, 20, got, &excluded);
    for (const auto& c : got) EXPECT_NE(c.id, excluded);
}

TEST(RoutingTable, ClosestWithFewerContactsReturnsAll) {
    const KademliaConfig cfg = make_config();
    util::Rng rng(12);
    RoutingTable table(NodeId::random(rng, 160), cfg);
    table.observe(make_contact(rng, 1), 1);
    table.observe(make_contact(rng, 2), 2);
    std::vector<Contact> got;
    table.closest(NodeId::random(rng, 160), 10, got);
    EXPECT_EQ(got.size(), 2u);
}

TEST(RoutingTable, ClearEmptiesEverything) {
    const KademliaConfig cfg = make_config();
    util::Rng rng(13);
    RoutingTable table(NodeId::random(rng, 160), cfg);
    for (net::Address a = 1; a <= 50; ++a) table.observe(make_contact(rng, a), a);
    EXPECT_GT(table.size(), 0u);
    table.clear();
    EXPECT_EQ(table.size(), 0u);
    EXPECT_EQ(table.nonempty_bucket_count(), 0);
    EXPECT_TRUE(table.check_invariants());
}

TEST(RoutingTable, ForEachEntryVisitsEveryContact) {
    const KademliaConfig cfg = make_config(20, 5);
    util::Rng rng(14);
    RoutingTable table(NodeId::random(rng, 160), cfg);
    std::size_t expected = 0;
    for (net::Address a = 1; a <= 100; ++a) {
        if (table.observe(make_contact(rng, a), a) == ObserveResult::kInserted) {
            ++expected;
        }
    }
    std::size_t visited = 0;
    table.for_each_entry([&visited](const RoutingTable::Entry&) { ++visited; });
    EXPECT_EQ(visited, expected);
    EXPECT_EQ(visited, table.size());
}

TEST(RoutingTable, InvariantsHoldUnderRandomWorkload) {
    const KademliaConfig cfg = make_config(5, 2);
    util::Rng rng(15);
    const NodeId self = NodeId::random(rng, 160);
    RoutingTable table(self, cfg);
    std::vector<Contact> pool;
    for (net::Address a = 1; a <= 80; ++a) pool.push_back(make_contact(rng, a));
    for (int step = 0; step < 5000; ++step) {
        const auto& c = pool[rng.next_below(pool.size())];
        switch (rng.next_below(3)) {
            case 0: table.observe(c, step); break;
            case 1: table.record_failure(c.id, step); break;
            default: {
                std::vector<Contact> out;
                table.closest(pool[rng.next_below(pool.size())].id, 5, out);
                break;
            }
        }
    }
    EXPECT_TRUE(table.check_invariants());
}

}  // namespace
}  // namespace kadsim::kad
