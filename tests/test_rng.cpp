// Deterministic RNG: reproducibility, stream independence, distribution
// sanity. The whole reproduction depends on these properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/rng.h"

namespace kadsim::util {
namespace {

TEST(SplitMix64, KnownSequenceIsStable) {
    SplitMix64 a(12345);
    SplitMix64 b(12345);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
    SplitMix64 a(1);
    SplitMix64 b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) ++equal;
    }
    EXPECT_EQ(equal, 0);
}

TEST(Rng, SameSeedSameStream) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SplitStreamsAreIndependentOfParentConsumption) {
    Rng parent1(7);
    Rng parent2(7);
    (void)parent2;  // identical state
    Rng child1 = parent1.split(3);
    // Consuming the parent after splitting must not affect the child.
    Rng parent3(7);
    for (int i = 0; i < 50; ++i) (void)parent3.next_u64();
    // Note: split derives from state at split time, so split before consuming.
    Rng child2 = Rng(7).split(3);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(Rng, SplitSaltsProduceDistinctStreams) {
    Rng parent(99);
    Rng a = parent.split(0);
    Rng b = parent.split(1);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++equal;
    }
    EXPECT_LE(equal, 1);
}

TEST(Rng, NextBelowRespectsBound) {
    Rng rng(5);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_LT(rng.next_below(bound), bound);
        }
    }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
    Rng rng(6);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextIntCoversInclusiveRange) {
    Rng rng(8);
    std::array<int, 5> seen{};
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.next_int(10, 14);
        ASSERT_GE(v, 10);
        ASSERT_LE(v, 14);
        ++seen[static_cast<std::size_t>(v - 10)];
    }
    for (const int count : seen) EXPECT_GT(count, 0);
}

TEST(Rng, NextDoubleInHalfOpenUnitInterval) {
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.next_double();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
    }
}

TEST(Rng, NextBoolMatchesProbabilityRoughly) {
    Rng rng(10);
    const double p = 0.25;
    int hits = 0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i) {
        if (rng.next_bool(p)) ++hits;
    }
    const double observed = static_cast<double>(hits) / trials;
    EXPECT_NEAR(observed, p, 0.01);
}

TEST(Rng, NextBoolDegenerateProbabilities) {
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.next_bool(0.0));
        EXPECT_TRUE(rng.next_bool(1.0));
        EXPECT_FALSE(rng.next_bool(-0.5));
        EXPECT_TRUE(rng.next_bool(1.5));
    }
}

TEST(Rng, ShuffleIsAPermutation) {
    Rng rng(12);
    std::vector<int> v(100);
    std::iota(v.begin(), v.end(), 0);
    auto shuffled = v;
    rng.shuffle(shuffled.begin(), shuffled.end());
    EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

TEST(Rng, UniformityChiSquareLoose) {
    // 16 buckets over next_below(16): loose 3-sigma band on each count.
    Rng rng(13);
    std::array<int, 16> counts{};
    const int trials = 160000;
    for (int i = 0; i < trials; ++i) ++counts[rng.next_below(16)];
    const double expected = trials / 16.0;
    for (const int c : counts) {
        EXPECT_NEAR(static_cast<double>(c), expected, 5.0 * std::sqrt(expected));
    }
}

}  // namespace
}  // namespace kadsim::util
