// Max-flow solvers: known values, limits, reuse, and the cross-solver
// equality property (push-relabel ≡ Dinic ≡ Edmonds–Karp).
#include <gtest/gtest.h>

#include "flow/dinic.h"
#include "flow/edmonds_karp.h"
#include "flow/flow_network.h"
#include "flow/push_relabel.h"
#include "util/rng.h"

namespace kadsim::flow {
namespace {

FlowNetwork diamond() {
    // s=0 → {1,2} → t=3, plus a cross edge 1→2.
    FlowNetwork net(4);
    net.add_arc(0, 1, 3);
    net.add_arc(0, 2, 2);
    net.add_arc(1, 3, 2);
    net.add_arc(2, 3, 3);
    net.add_arc(1, 2, 5);
    return net;
}

TEST(Dinic, DiamondValue) {
    FlowNetwork net = diamond();
    Dinic solver;
    EXPECT_EQ(solver.max_flow(net, 0, 3), 5);
}

TEST(EdmondsKarp, DiamondValue) {
    FlowNetwork net = diamond();
    EdmondsKarp solver;
    EXPECT_EQ(solver.max_flow(net, 0, 3), 5);
}

TEST(PushRelabel, DiamondValue) {
    FlowNetwork net = diamond();
    PushRelabel solver;
    EXPECT_EQ(solver.max_flow(net, 0, 3), 5);
}

TEST(Dinic, DisconnectedIsZero) {
    FlowNetwork net(4);
    net.add_arc(0, 1, 5);
    net.add_arc(2, 3, 5);
    Dinic solver;
    EXPECT_EQ(solver.max_flow(net, 0, 3), 0);
}

TEST(Dinic, FlowLimitStopsEarly) {
    FlowNetwork net(2);
    net.add_arc(0, 1, 100);
    Dinic solver;
    EXPECT_EQ(solver.max_flow(net, 0, 1, 7), 7);
}

TEST(EdmondsKarp, FlowLimitStopsEarly) {
    FlowNetwork net(2);
    net.add_arc(0, 1, 100);
    EdmondsKarp solver;
    EXPECT_EQ(solver.max_flow(net, 0, 1, 7), 7);
}

TEST(FlowNetwork, ResetRestoresCapacities) {
    FlowNetwork net = diamond();
    Dinic solver;
    EXPECT_EQ(solver.max_flow(net, 0, 3), 5);
    net.reset();
    EXPECT_EQ(solver.max_flow(net, 0, 3), 5);  // identical after reset
}

TEST(FlowNetwork, FlowOnTracksSaturation) {
    FlowNetwork net(3);
    const int a01 = net.add_arc(0, 1, 4);
    const int a12 = net.add_arc(1, 2, 3);
    Dinic solver;
    EXPECT_EQ(solver.max_flow(net, 0, 2), 3);
    EXPECT_EQ(net.flow_on(a01), 3);
    EXPECT_EQ(net.flow_on(a12), 3);
}

TEST(Dinic, AntiparallelArcs) {
    FlowNetwork net(3);
    net.add_arc(0, 1, 2);
    net.add_arc(1, 0, 2);
    net.add_arc(1, 2, 1);
    Dinic solver;
    EXPECT_EQ(solver.max_flow(net, 0, 2), 1);
}

TEST(Dinic, ParallelArcsAccumulate) {
    FlowNetwork net(2);
    net.add_arc(0, 1, 2);
    net.add_arc(0, 1, 3);
    Dinic solver;
    EXPECT_EQ(solver.max_flow(net, 0, 1), 5);
}

TEST(PushRelabel, ZeroWhenSinkUnreachable) {
    FlowNetwork net(3);
    net.add_arc(1, 0, 4);  // wrong direction
    net.add_arc(1, 2, 4);
    PushRelabel solver;
    EXPECT_EQ(solver.max_flow(net, 0, 2), 0);
}

TEST(PushRelabel, LongChain) {
    const int n = 50;
    FlowNetwork net(n);
    for (int i = 0; i + 1 < n; ++i) net.add_arc(i, i + 1, 2 + (i % 3));
    PushRelabel solver;
    EXPECT_EQ(solver.max_flow(net, 0, n - 1), 2);
}

/// Random graph generator for cross-solver property tests.
FlowNetwork random_network(util::Rng& rng, int n, double p, int max_cap) {
    FlowNetwork net(n);
    for (int u = 0; u < n; ++u) {
        for (int v = 0; v < n; ++v) {
            if (u != v && rng.next_bool(p)) {
                net.add_arc(u, v, 1 + static_cast<int>(rng.next_below(
                                          static_cast<std::uint64_t>(max_cap))));
            }
        }
    }
    return net;
}

class CrossSolverTest : public ::testing::TestWithParam<int> {};

TEST_P(CrossSolverTest, AllSolversAgreeOnRandomGraphs) {
    const int seed = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(seed));
    const int n = 6 + static_cast<int>(rng.next_below(20));
    const double p = 0.1 + rng.next_double() * 0.4;
    const FlowNetwork base = random_network(rng, n, p, 5);

    Dinic dinic;
    EdmondsKarp ek;
    PushRelabel pr;
    for (int trial = 0; trial < 4; ++trial) {
        const int s = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
        int t = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
        if (t == s) t = (t + 1) % n;

        FlowNetwork net1 = base;
        FlowNetwork net2 = base;
        FlowNetwork net3 = base;
        const int f1 = dinic.max_flow(net1, s, t);
        const int f2 = ek.max_flow(net2, s, t);
        const int f3 = pr.max_flow(net3, s, t);
        EXPECT_EQ(f1, f2) << "dinic vs edmonds-karp, seed " << seed;
        EXPECT_EQ(f1, f3) << "dinic vs push-relabel, seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CrossSolverTest, ::testing::Range(1, 26));

TEST(CrossSolver, UnitCapacityDenseGraph) {
    util::Rng rng(999);
    FlowNetwork base = random_network(rng, 30, 0.3, 1);
    Dinic dinic;
    PushRelabel pr;
    FlowNetwork a = base;
    FlowNetwork b = base;
    EXPECT_EQ(dinic.max_flow(a, 0, 29), pr.max_flow(b, 0, 29));
}

}  // namespace
}  // namespace kadsim::flow
