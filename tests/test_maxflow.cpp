// Max-flow solvers: known values, limits, workspace reuse, and the
// cross-solver equality property (push-relabel ≡ Dinic ≡ Edmonds–Karp).
#include <gtest/gtest.h>

#include "flow/dinic.h"
#include "flow/edmonds_karp.h"
#include "flow/flow_network.h"
#include "flow/flow_workspace.h"
#include "flow/push_relabel.h"
#include "util/rng.h"

namespace kadsim::flow {
namespace {

FlowNetwork diamond() {
    // s=0 → {1,2} → t=3, plus a cross edge 1→2.
    FlowNetwork net(4);
    net.add_arc(0, 1, 3);
    net.add_arc(0, 2, 2);
    net.add_arc(1, 3, 2);
    net.add_arc(2, 3, 3);
    net.add_arc(1, 2, 5);
    net.finalize();
    return net;
}

TEST(Dinic, DiamondValue) {
    const FlowNetwork net = diamond();
    FlowWorkspace ws(net);
    Dinic solver;
    EXPECT_EQ(solver.max_flow(ws, 0, 3), 5);
}

TEST(EdmondsKarp, DiamondValue) {
    const FlowNetwork net = diamond();
    FlowWorkspace ws(net);
    EdmondsKarp solver;
    EXPECT_EQ(solver.max_flow(ws, 0, 3), 5);
}

TEST(PushRelabel, DiamondValue) {
    const FlowNetwork net = diamond();
    FlowWorkspace ws(net);
    PushRelabel solver;
    EXPECT_EQ(solver.max_flow(ws, 0, 3), 5);
}

TEST(Dinic, DisconnectedIsZero) {
    FlowNetwork net(4);
    net.add_arc(0, 1, 5);
    net.add_arc(2, 3, 5);
    net.finalize();
    FlowWorkspace ws(net);
    Dinic solver;
    EXPECT_EQ(solver.max_flow(ws, 0, 3), 0);
}

TEST(Dinic, FlowLimitStopsEarly) {
    FlowNetwork net(2);
    net.add_arc(0, 1, 100);
    net.finalize();
    FlowWorkspace ws(net);
    Dinic solver;
    EXPECT_EQ(solver.max_flow(ws, 0, 1, 7), 7);
}

TEST(EdmondsKarp, FlowLimitStopsEarly) {
    FlowNetwork net(2);
    net.add_arc(0, 1, 100);
    net.finalize();
    FlowWorkspace ws(net);
    EdmondsKarp solver;
    EXPECT_EQ(solver.max_flow(ws, 0, 1, 7), 7);
}

TEST(FlowWorkspace, ResetRestoresCapacities) {
    const FlowNetwork net = diamond();
    FlowWorkspace ws(net);
    Dinic solver;
    EXPECT_EQ(solver.max_flow(ws, 0, 3), 5);
    ws.reset();
    for (int a = 0; a < net.arc_count(); ++a) {
        EXPECT_EQ(ws.cap(a), net.original_cap(a)) << "arc " << a;
    }
    EXPECT_EQ(solver.max_flow(ws, 0, 3), 5);  // identical after reset
}

TEST(FlowWorkspace, ResetUndoesOnlyTouchedArcs) {
    const FlowNetwork net = diamond();
    FlowWorkspace ws(net);
    Dinic solver;
    (void)solver.max_flow(ws, 0, 3);
    ws.reset();
    const auto& stats = ws.stats();
    EXPECT_EQ(stats.resets, 1u);
    EXPECT_GT(stats.arcs_touched, 0u);
    EXPECT_LE(stats.arcs_touched, static_cast<std::uint64_t>(net.arc_count()));
    // A reset with nothing touched is free and uncounted.
    ws.reset();
    EXPECT_EQ(ws.stats().resets, 1u);
}

TEST(FlowWorkspace, FlowOnTracksSaturation) {
    FlowNetwork net(3);
    const int a01 = net.add_arc(0, 1, 4);
    const int a12 = net.add_arc(1, 2, 3);
    net.finalize();
    FlowWorkspace ws(net);
    Dinic solver;
    EXPECT_EQ(solver.max_flow(ws, 0, 2), 3);
    EXPECT_EQ(ws.flow_on(a01), 3);
    EXPECT_EQ(ws.flow_on(a12), 3);
}

TEST(FlowNetwork, CsrAdjacencyPreservesArcOrderAndEndpoints) {
    const FlowNetwork net = diamond();
    // Vertex 0 emits forward arcs 0 (0→1) and 2 (0→2), in insertion order.
    const auto arcs0 = net.arcs_of(0);
    ASSERT_EQ(arcs0.size(), 2u);
    EXPECT_EQ(arcs0[0], 0);
    EXPECT_EQ(arcs0[1], 2);
    EXPECT_EQ(net.arc_to(0), 1);
    EXPECT_EQ(net.arc_to(2), 2);
    // Vertex 3 holds the reverse stubs of arcs 4 (1→3) and 6 (2→3).
    const auto arcs3 = net.arcs_of(3);
    ASSERT_EQ(arcs3.size(), 2u);
    EXPECT_EQ(arcs3[0], 5);
    EXPECT_EQ(arcs3[1], 7);
    // The tail of any arc is the head of its pair.
    for (int a = 0; a < net.arc_count(); ++a) {
        bool found = false;
        for (const int id : net.arcs_of(net.arc_to(a ^ 1))) found |= id == a;
        EXPECT_TRUE(found) << "arc " << a << " missing from its tail's row";
    }
}

TEST(Dinic, AntiparallelArcs) {
    FlowNetwork net(3);
    net.add_arc(0, 1, 2);
    net.add_arc(1, 0, 2);
    net.add_arc(1, 2, 1);
    net.finalize();
    FlowWorkspace ws(net);
    Dinic solver;
    EXPECT_EQ(solver.max_flow(ws, 0, 2), 1);
}

TEST(Dinic, ParallelArcsAccumulate) {
    FlowNetwork net(2);
    net.add_arc(0, 1, 2);
    net.add_arc(0, 1, 3);
    net.finalize();
    FlowWorkspace ws(net);
    Dinic solver;
    EXPECT_EQ(solver.max_flow(ws, 0, 1), 5);
}

TEST(PushRelabel, ZeroWhenSinkUnreachable) {
    FlowNetwork net(3);
    net.add_arc(1, 0, 4);  // wrong direction
    net.add_arc(1, 2, 4);
    net.finalize();
    FlowWorkspace ws(net);
    PushRelabel solver;
    EXPECT_EQ(solver.max_flow(ws, 0, 2), 0);
}

TEST(PushRelabel, LongChain) {
    const int n = 50;
    FlowNetwork net(n);
    for (int i = 0; i + 1 < n; ++i) net.add_arc(i, i + 1, 2 + (i % 3));
    net.finalize();
    FlowWorkspace ws(net);
    PushRelabel solver;
    EXPECT_EQ(solver.max_flow(ws, 0, n - 1), 2);
}

/// Random graph generator for cross-solver property tests.
FlowNetwork random_network(util::Rng& rng, int n, double p, int max_cap) {
    FlowNetwork net(n);
    for (int u = 0; u < n; ++u) {
        for (int v = 0; v < n; ++v) {
            if (u != v && rng.next_bool(p)) {
                net.add_arc(u, v, 1 + static_cast<int>(rng.next_below(
                                          static_cast<std::uint64_t>(max_cap))));
            }
        }
    }
    net.finalize();
    return net;
}

class CrossSolverTest : public ::testing::TestWithParam<int> {};

TEST_P(CrossSolverTest, AllSolversAgreeOnRandomGraphs) {
    const int seed = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(seed));
    const int n = 6 + static_cast<int>(rng.next_below(20));
    const double p = 0.1 + rng.next_double() * 0.4;
    const FlowNetwork base = random_network(rng, n, p, 5);

    Dinic dinic;
    EdmondsKarp ek;
    PushRelabel pr;
    // One workspace per solver, shared across trials: exercises the
    // touched-arc reset path the connectivity sweep depends on.
    FlowWorkspace ws1(base);
    FlowWorkspace ws2(base);
    FlowWorkspace ws3(base);
    for (int trial = 0; trial < 4; ++trial) {
        const int s = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
        int t = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
        if (t == s) t = (t + 1) % n;

        ws1.reset();
        ws2.reset();
        ws3.reset();
        const int f1 = dinic.max_flow(ws1, s, t);
        const int f2 = ek.max_flow(ws2, s, t);
        const int f3 = pr.max_flow(ws3, s, t);
        EXPECT_EQ(f1, f2) << "dinic vs edmonds-karp, seed " << seed;
        EXPECT_EQ(f1, f3) << "dinic vs push-relabel, seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CrossSolverTest, ::testing::Range(1, 26));

TEST(CrossSolver, UnitCapacityDenseGraph) {
    util::Rng rng(999);
    const FlowNetwork base = random_network(rng, 30, 0.3, 1);
    Dinic dinic;
    PushRelabel pr;
    FlowWorkspace a(base);
    FlowWorkspace b(base);
    EXPECT_EQ(dinic.max_flow(a, 0, 29), pr.max_flow(b, 0, 29));
}

}  // namespace
}  // namespace kadsim::flow
