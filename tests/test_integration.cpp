// Qualitative paper-shape integration tests at miniature scale: these are the
// canaries that the reproduced dynamics (κ ≈ k, loss helps, churn oscillates)
// emerge from the protocol implementation rather than being baked in.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "scen/runner.h"

namespace kadsim::core {
namespace {

ExperimentConfig base_config(int size, int k, std::uint64_t seed) {
    ExperimentConfig cfg;
    cfg.scenario.initial_size = size;
    cfg.scenario.seed = seed;
    cfg.scenario.kad.k = k;
    cfg.scenario.kad.s = 1;
    cfg.scenario.traffic.enabled = true;
    cfg.scenario.phases.end = sim::minutes(240);
    cfg.snapshot_interval = sim::minutes(30);
    cfg.analyzer.sample_c = 1.0;
    cfg.analyzer.threads = 2;
    return cfg;
}

double final_kappa_min(const ExperimentSeries& s) {
    return s.samples.back().kappa_min;
}

TEST(PaperShape, ConnectivityAfterStabilizationIsNearBucketSize) {
    // §5.5: "the connectivity for k ∈ {20,30} is at roughly k". At miniature
    // scale (n=50) we assert the weaker two-sided band κ_min ∈ [k/2, 3k].
    ExperimentConfig cfg = base_config(50, 8, 21);
    const auto series = run_experiment(cfg);
    const double kappa = final_kappa_min(series);
    EXPECT_GE(kappa, 4.0);
    EXPECT_LE(kappa, 24.0);
}

TEST(PaperShape, LargerBucketsGiveHigherConnectivity) {
    // The paper's central correlation: κ tracks k.
    ExperimentConfig small_k = base_config(50, 4, 22);
    ExperimentConfig large_k = base_config(50, 12, 22);
    const auto s4 = run_experiment(small_k);
    const auto s12 = run_experiment(large_k);
    EXPECT_GT(final_kappa_min(s12), final_kappa_min(s4));
}

TEST(PaperShape, MessageLossIncreasesConnectivityWithSOne) {
    // §5.8.2 headline: "message loss ... actually increases the Kademlia
    // network connectivity" (with s=1 reaction).
    ExperimentConfig no_loss = base_config(50, 6, 23);
    ExperimentConfig high_loss = base_config(50, 6, 23);
    high_loss.scenario.loss = net::LossLevel::kHigh;
    const auto s_none = run_experiment(no_loss);
    const auto s_high = run_experiment(high_loss);
    // Compare averages over the post-stabilization window.
    const double avg_none = s_none.kappa_avg_summary(120.0, 1e9).mean();
    const double avg_high = s_high.kappa_avg_summary(120.0, 1e9).mean();
    EXPECT_GT(avg_high, avg_none);
}

TEST(PaperShape, DepartureOnlyChurnLiftsMinimumConnectivity) {
    // §5.5.1: with 0/1 churn "the minimum connectivity first increases
    // overall" — freed bucket slots let the network re-wire.
    ExperimentConfig cfg = base_config(60, 6, 24);
    cfg.scenario.fault.churn = scen::ChurnSpec{0, 1};
    cfg.scenario.phases.end = sim::minutes(150);  // 30 churn minutes: 60 → ~30
    const auto series = run_experiment(cfg);
    // κ_min at the end of stabilization vs. mid-churn.
    double at_stab = 0.0, mid_churn = 0.0;
    for (const auto& s : series.samples) {
        if (s.time_min == 120.0) at_stab = s.kappa_min;
        if (s.time_min == 150.0) mid_churn = s.kappa_min;
    }
    EXPECT_GE(mid_churn, at_stab);
}

TEST(PaperShape, HigherStalenessLimitDampsChurnResponse) {
    // §5.8.1: with churn 10/10 the average connectivity for s=5 drops below
    // s=1 (stale entries block bucket slots).
    ExperimentConfig s1 = base_config(50, 6, 25);
    s1.scenario.fault.churn = scen::ChurnSpec{5, 5};
    s1.scenario.kad.s = 1;
    ExperimentConfig s5 = s1;
    s5.scenario.kad.s = 5;
    const auto series1 = run_experiment(s1);
    const auto series5 = run_experiment(s5);
    const double avg1 = series1.kappa_avg_summary(150.0, 1e9).mean();
    const double avg5 = series5.kappa_avg_summary(150.0, 1e9).mean();
    EXPECT_GE(avg1, avg5);
}

TEST(PaperShape, BitLengthHasNoSignificantEffect) {
    // §5.7: b=80 vs b=160 shows "no significant difference".
    ExperimentConfig b160 = base_config(50, 8, 26);
    ExperimentConfig b80 = base_config(50, 8, 26);
    b80.scenario.kad.b = 80;
    const auto s160 = run_experiment(b160);
    const auto s80 = run_experiment(b80);
    const double avg160 = s160.kappa_min_summary(120.0, 1e9).mean();
    const double avg80 = s80.kappa_min_summary(120.0, 1e9).mean();
    ASSERT_GT(avg160, 0.0);
    EXPECT_NEAR(avg80 / avg160, 1.0, 0.5);
}

TEST(FailureInjection, MassCrashThenRecovery) {
    // Crash 40% of the network at once; the survivors must re-stabilize into
    // a connected overlay (stale entries evicted by s=1 + refresh).
    ExperimentConfig cfg = base_config(50, 8, 27);
    cfg.scenario.phases.end = sim::minutes(300);
    scen::Runner runner(cfg.scenario);
    runner.step_to(sim::minutes(120));

    ConnectivityAnalyzer analyzer(cfg.analyzer);
    const auto before = analyzer.analyze(runner.snapshot());
    EXPECT_GT(before.kappa_min, 0);

    // Deterministically crash every 5th node twice over (40%).
    const auto live = runner.live_addresses();
    int crashed = 0;
    for (std::size_t i = 0; i < live.size(); i += 5) {
        runner.node(live[i])->crash();
        ++crashed;
    }
    // Crash bookkeeping bypassed the live list on purpose: snapshots must
    // tolerate dead nodes discovered lazily. Re-check via routing tables.
    runner.step_to(sim::minutes(280));
    const auto after = analyzer.analyze(runner.snapshot());
    EXPECT_GE(after.kappa_min, 0);  // analysis never crashes on mixed state
    EXPECT_GT(crashed, 5);
}

}  // namespace
}  // namespace kadsim::core
