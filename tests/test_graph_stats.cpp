// Degree statistics helpers.
#include <gtest/gtest.h>

#include "graph/graph_stats.h"

namespace kadsim::graph {
namespace {

TEST(GraphStats, SummarizeKnownVector) {
    const auto s = summarize_degrees({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
    EXPECT_EQ(s.min, 1);
    EXPECT_EQ(s.max, 10);
    EXPECT_DOUBLE_EQ(s.mean, 5.5);
    EXPECT_EQ(s.median, 6);  // upper median of an even-length vector
    EXPECT_EQ(s.p10, 2);
}

TEST(GraphStats, EmptyVectorIsZeros) {
    const auto s = summarize_degrees({});
    EXPECT_EQ(s.min, 0);
    EXPECT_EQ(s.max, 0);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(GraphStats, GraphDegreeSummaries) {
    Digraph g(4);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(0, 3);
    g.add_edge(1, 0);
    g.finalize();
    const auto out = out_degree_summary(g);
    EXPECT_EQ(out.max, 3);
    EXPECT_EQ(out.min, 0);
    const auto in = in_degree_summary(g);
    EXPECT_EQ(in.max, 1);
    EXPECT_DOUBLE_EQ(in.mean, 1.0);
}

TEST(GraphStats, CountingPathMatchesExactSortOnSmallInputs) {
    // The default counting-histogram path must report the same quantiles as
    // the historical sort-per-call path (`exact_sort = true`) — including
    // duplicates, skewed shapes and single elements.
    const std::vector<std::vector<int>> cases = {
        {1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
        {5, 5, 5, 5, 5},
        {0},
        {7, 0, 7, 0, 7},
        {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4},
        {100, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
        {0, 0, 0, 0, 0, 0, 0, 0, 0, 42},
    };
    for (const auto& degrees : cases) {
        const auto counting = summarize_degrees(degrees);
        const auto sorted = summarize_degrees(degrees, /*exact_sort=*/true);
        EXPECT_EQ(counting.min, sorted.min);
        EXPECT_EQ(counting.max, sorted.max);
        EXPECT_DOUBLE_EQ(counting.mean, sorted.mean);
        EXPECT_EQ(counting.median, sorted.median);
        EXPECT_EQ(counting.p10, sorted.p10);
    }
}

TEST(GraphStats, HistogramBucketsCoverRange) {
    const auto counts = degree_histogram({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5);
    ASSERT_EQ(counts.size(), 5u);
    for (const int c : counts) EXPECT_EQ(c, 2);
}

TEST(GraphStats, HistogramOfEmptyInput) {
    const auto counts = degree_histogram({}, 4);
    ASSERT_EQ(counts.size(), 4u);
    for (const int c : counts) EXPECT_EQ(c, 0);
}

TEST(GraphStats, RenderHistogramShape) {
    const auto text = render_histogram({0, 5, 10});
    EXPECT_EQ(text.size(), 5u);  // "[" + 3 glyphs + "]"
    EXPECT_EQ(text.front(), '[');
    EXPECT_EQ(text.back(), ']');
    EXPECT_EQ(text[1], ' ');   // zero bucket
    EXPECT_EQ(text[3], '@');   // max bucket
}

TEST(GraphStats, RenderHandlesAllZero) {
    const auto text = render_histogram({0, 0});
    EXPECT_EQ(text, "[  ]");
}

}  // namespace
}  // namespace kadsim::graph
