// Vertex connectivity κ: known graphs, brute-force oracle, sampling
// soundness (paper §4.4 and §5.2).
#include <gtest/gtest.h>

#include "exec/thread_pool.h"
#include "flow/vertex_connectivity.h"
#include "graph/digraph.h"
#include "util/rng.h"

namespace kadsim::flow {
namespace {

graph::Digraph complete_graph(int n) {
    graph::Digraph g(n);
    for (int u = 0; u < n; ++u) {
        for (int v = 0; v < n; ++v) {
            if (u != v) g.add_edge(u, v);
        }
    }
    g.finalize();
    return g;
}

graph::Digraph undirected_cycle(int n) {
    graph::Digraph g(n);
    for (int i = 0; i < n; ++i) {
        g.add_edge(i, (i + 1) % n);
        g.add_edge((i + 1) % n, i);
    }
    g.finalize();
    return g;
}

graph::Digraph hypercube(int d) {
    const int n = 1 << d;
    graph::Digraph g(n);
    for (int u = 0; u < n; ++u) {
        for (int bit = 0; bit < d; ++bit) g.add_edge(u, u ^ (1 << bit));
    }
    g.finalize();
    return g;
}

graph::Digraph petersen() {
    graph::Digraph g(10);
    auto und = [&g](int u, int v) {
        g.add_edge(u, v);
        g.add_edge(v, u);
    };
    for (int i = 0; i < 5; ++i) und(i, (i + 1) % 5);        // outer cycle
    for (int i = 0; i < 5; ++i) und(i, i + 5);              // spokes
    for (int i = 0; i < 5; ++i) und(5 + i, 5 + (i + 2) % 5);  // pentagram
    g.finalize();
    return g;
}

TEST(VertexConnectivity, CompleteGraphShortcut) {
    for (const int n : {2, 3, 5, 8}) {
        const auto r = vertex_connectivity(complete_graph(n));
        EXPECT_TRUE(r.complete);
        EXPECT_EQ(r.kappa_min, n - 1);
        EXPECT_DOUBLE_EQ(r.kappa_avg, n - 1);
        EXPECT_EQ(r.pairs_evaluated, 0u);
    }
}

TEST(VertexConnectivity, TrivialGraphs) {
    graph::Digraph empty(0);
    empty.finalize();
    EXPECT_EQ(vertex_connectivity(empty).kappa_min, 0);

    graph::Digraph one(1);
    one.finalize();
    const auto r = vertex_connectivity(one);
    EXPECT_EQ(r.kappa_min, 0);
    EXPECT_TRUE(r.complete);
}

TEST(VertexConnectivity, UndirectedCycleIsTwoConnected) {
    for (const int n : {4, 5, 8, 12}) {
        const auto r = vertex_connectivity(undirected_cycle(n));
        EXPECT_EQ(r.kappa_min, 2) << "n=" << n;
    }
}

TEST(VertexConnectivity, DirectedCycleIsOneConnected) {
    graph::Digraph g(5);
    for (int i = 0; i < 5; ++i) g.add_edge(i, (i + 1) % 5);
    g.finalize();
    EXPECT_EQ(vertex_connectivity(g).kappa_min, 1);
}

TEST(VertexConnectivity, PathGraphIsNotStronglyConnected) {
    graph::Digraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    g.finalize();
    EXPECT_EQ(vertex_connectivity(g).kappa_min, 0);
}

class HypercubeTest : public ::testing::TestWithParam<int> {};

TEST_P(HypercubeTest, KappaEqualsDimension) {
    const int d = GetParam();
    const auto r = vertex_connectivity(hypercube(d));
    EXPECT_EQ(r.kappa_min, d);
}

INSTANTIATE_TEST_SUITE_P(Dims, HypercubeTest, ::testing::Values(2, 3, 4));

TEST(VertexConnectivity, PetersenGraphIsThreeConnected) {
    EXPECT_EQ(vertex_connectivity(petersen()).kappa_min, 3);
}

TEST(VertexConnectivity, StarGraphCutVertex) {
    // Star: hub 0, leaves 1..5 (undirected): κ = 1 (remove the hub).
    graph::Digraph g(6);
    for (int leaf = 1; leaf < 6; ++leaf) {
        g.add_edge(0, leaf);
        g.add_edge(leaf, 0);
    }
    g.finalize();
    EXPECT_EQ(vertex_connectivity(g).kappa_min, 1);
}

TEST(VertexConnectivity, PairIsDirectional) {
    // 0→1→2 plus 2→0: κ(0,2)=1 but κ(2,1) uses the only path 2→0→1.
    graph::Digraph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 0);
    g.finalize();
    EXPECT_EQ(pair_vertex_connectivity(g, 0, 2), 1);
    EXPECT_EQ(pair_vertex_connectivity(g, 2, 1), 1);
}

TEST(VertexConnectivity, BruteForceOracleOnRandomGraphs) {
    util::Rng rng(42);
    for (int trial = 0; trial < 30; ++trial) {
        const int n = 5 + static_cast<int>(rng.next_below(3));  // 5..7
        graph::Digraph g(n);
        for (int u = 0; u < n; ++u) {
            for (int v = 0; v < n; ++v) {
                if (u != v && rng.next_bool(0.45)) g.add_edge(u, v);
            }
        }
        g.finalize();
        for (int u = 0; u < n; ++u) {
            for (int v = 0; v < n; ++v) {
                if (u == v || g.has_edge(u, v)) continue;
                EXPECT_EQ(pair_vertex_connectivity(g, u, v),
                          pair_vertex_connectivity_bruteforce(g, u, v))
                    << "trial " << trial << " pair (" << u << "," << v << ")";
            }
        }
    }
}

TEST(VertexConnectivity, ExactEqualsMinOverAllPairs) {
    util::Rng rng(43);
    graph::Digraph g(12);
    for (int u = 0; u < 12; ++u) {
        for (int v = 0; v < 12; ++v) {
            if (u != v && rng.next_bool(0.4)) g.add_edge(u, v);
        }
    }
    g.finalize();
    const auto r = vertex_connectivity(g);
    int expected = 12;
    for (int u = 0; u < 12; ++u) {
        for (int v = 0; v < 12; ++v) {
            if (u == v || g.has_edge(u, v)) continue;
            expected = std::min(expected, pair_vertex_connectivity(g, u, v));
        }
    }
    EXPECT_EQ(r.kappa_min, expected);
}

TEST(VertexConnectivity, SampledNeverBelowExactAndC1IsExact) {
    util::Rng rng(44);
    for (int trial = 0; trial < 10; ++trial) {
        graph::Digraph g(16);
        for (int u = 0; u < 16; ++u) {
            for (int v = u + 1; v < 16; ++v) {
                if (rng.next_bool(0.3)) {
                    g.add_edge(u, v);
                    g.add_edge(v, u);
                }
            }
        }
        g.finalize();
        const auto exact = vertex_connectivity(g);
        ConnectivityOptions sampled_opts;
        sampled_opts.sample_fraction = 0.25;
        sampled_opts.min_sources = 2;
        const auto sampled = vertex_connectivity(g, sampled_opts);
        EXPECT_GE(sampled.kappa_min, exact.kappa_min);
        EXPECT_LE(sampled.pairs_evaluated, exact.pairs_evaluated);
    }
}

TEST(VertexConnectivity, SmallestOutDegreeSamplingFindsMinimumOnNearUndirected) {
    // A 3-regular-ish undirected graph with one weakly attached vertex: the
    // lowest-out-degree source pins the minimum, which is the paper's §5.2
    // sampling argument.
    graph::Digraph g = hypercube(3);  // κ = 3
    // Rebuild with an extra vertex 8 attached to only vertex 0.
    graph::Digraph h(9);
    for (int u = 0; u < 8; ++u) {
        for (const int v : g.out(u)) h.add_edge(u, v);
    }
    h.add_edge(8, 0);
    h.add_edge(0, 8);
    h.finalize();

    ConnectivityOptions opts;
    opts.sample_fraction = 0.10;  // ceil(0.9) = exactly one source: vertex 8
    opts.min_sources = 1;
    const auto sampled = vertex_connectivity(h, opts);
    EXPECT_EQ(sampled.sources_used, 1);
    EXPECT_EQ(sampled.kappa_min, 1);
    EXPECT_EQ(vertex_connectivity(h).kappa_min, 1);
}

TEST(VertexConnectivity, PooledMatchesInline) {
    util::Rng rng(45);
    graph::Digraph g(24);
    for (int u = 0; u < 24; ++u) {
        for (int v = 0; v < 24; ++v) {
            if (u != v && rng.next_bool(0.25)) g.add_edge(u, v);
        }
    }
    g.finalize();
    const ConnectivityOptions inline_opts;
    exec::ThreadPool pool(4);
    ConnectivityOptions pooled_opts;
    pooled_opts.pool = &pool;
    const auto a = vertex_connectivity(g, inline_opts);
    const auto b = vertex_connectivity(g, pooled_opts);
    EXPECT_EQ(a.kappa_min, b.kappa_min);
    EXPECT_EQ(a.kappa_sum, b.kappa_sum);
    EXPECT_EQ(a.pairs_evaluated, b.pairs_evaluated);
}

TEST(VertexConnectivity, PoolIsReusableAcrossSnapshots) {
    // The experiment pipeline hands the same pool to every snapshot's
    // analysis; three consecutive computations must agree with inline runs.
    exec::ThreadPool pool(3);
    util::Rng rng(47);
    for (int round = 0; round < 3; ++round) {
        graph::Digraph g(18);
        for (int u = 0; u < 18; ++u) {
            for (int v = 0; v < 18; ++v) {
                if (u != v && rng.next_bool(0.3)) g.add_edge(u, v);
            }
        }
        g.finalize();
        ConnectivityOptions pooled_opts;
        pooled_opts.pool = &pool;
        const auto pooled = vertex_connectivity(g, pooled_opts);
        const auto inline_result = vertex_connectivity(g);
        EXPECT_EQ(pooled.kappa_min, inline_result.kappa_min) << "round " << round;
        EXPECT_EQ(pooled.kappa_sum, inline_result.kappa_sum) << "round " << round;
    }
}

TEST(VertexConnectivity, PushRelabelBackendMatchesDinic) {
    util::Rng rng(46);
    graph::Digraph g(14);
    for (int u = 0; u < 14; ++u) {
        for (int v = 0; v < 14; ++v) {
            if (u != v && rng.next_bool(0.3)) g.add_edge(u, v);
        }
    }
    g.finalize();
    ConnectivityOptions dinic_opts;
    ConnectivityOptions pr_opts;
    pr_opts.use_push_relabel = true;
    const auto a = vertex_connectivity(g, dinic_opts);
    const auto b = vertex_connectivity(g, pr_opts);
    EXPECT_EQ(a.kappa_min, b.kappa_min);
    EXPECT_EQ(a.kappa_sum, b.kappa_sum);
}

TEST(VertexConnectivity, DisconnectedGraphHasKappaZero) {
    graph::Digraph g(6);
    g.add_edge(0, 1);
    g.add_edge(1, 0);
    g.add_edge(2, 3);
    g.add_edge(3, 2);
    g.finalize();
    EXPECT_EQ(vertex_connectivity(g).kappa_min, 0);
}

TEST(VertexConnectivity, SourceCountIsCeilOfFractionTimesN) {
    // Regression for the old `fraction * n + 0.999` hack, which under-counts
    // ⌈fraction·n⌉ whenever the product lands just above an integer (its
    // fractional part in (0, 0.001)): with n = 20 and fraction = 0.050001,
    // ⌈1.00002⌉ = 2 but the hack truncated 1.99902 down to 1.
    graph::Digraph g = undirected_cycle(20);
    ConnectivityOptions opts;
    opts.min_sources = 1;

    opts.sample_fraction = 0.050001;
    EXPECT_EQ(vertex_connectivity(g, opts).sources_used, 2);

    // Exact multiples keep their exact count (0.25 and 0.5 are dyadic, so
    // fraction * n is computed without rounding noise).
    opts.sample_fraction = 0.25;
    EXPECT_EQ(vertex_connectivity(g, opts).sources_used, 5);
    opts.sample_fraction = 0.5;
    EXPECT_EQ(vertex_connectivity(g, opts).sources_used, 10);

    // Just below a multiple still rounds up to it.
    opts.sample_fraction = 0.2499;
    EXPECT_EQ(vertex_connectivity(g, opts).sources_used, 5);

    // The paper's c = 0.02 at both paper network sizes: 0.02·250 and
    // 0.02·2500 stay exactly 5 and 50 in IEEE doubles, so the published
    // sampling configuration is unchanged by the ceil fix.
    graph::Digraph big(250);
    for (int i = 0; i < 250; ++i) {
        big.add_edge(i, (i + 1) % 250);
        big.add_edge((i + 1) % 250, i);
    }
    big.finalize();
    opts.sample_fraction = 0.02;
    EXPECT_EQ(vertex_connectivity(big, opts).sources_used, 5);
}

TEST(VertexConnectivity, DegreeBoundSkipsZeroBoundPairsWithoutFlows) {
    // Vertex 3 has no outgoing edges: every (3, v) pair has bound 0 and must
    // be settled as κ = 0 without a max-flow run; every v also loses its
    // (v, 3) pairs to the in-degree side of the bound.
    graph::Digraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 0);
    g.finalize();

    const auto r = vertex_connectivity(g);
    EXPECT_EQ(r.kappa_min, 0);
    EXPECT_GT(r.pairs_skipped, 0u);
    // Skipped pairs are still evaluated pairs (their κ = 0 is exact).
    EXPECT_LE(r.pairs_skipped, r.pairs_evaluated);
}

TEST(VertexConnectivity, DegreeBoundCapRecordsEarlyStopsAndStaysExact) {
    // On an undirected cycle every κ(u,v) = 2 = min degree, so every Dinic
    // run hits its bound: all flows are capped and the values stay exact.
    graph::Digraph cyc = undirected_cycle(8);
    const auto r = vertex_connectivity(cyc);
    EXPECT_EQ(r.kappa_min, 2);
    EXPECT_EQ(r.flows_capped, r.pairs_evaluated);
    EXPECT_EQ(r.pairs_skipped, 0u);

    // Cross-check against the cap-free push-relabel backend on irregular
    // random graphs: identical κ aggregates, counters only on the Dinic side.
    util::Rng rng(46);
    for (int trial = 0; trial < 5; ++trial) {
        graph::Digraph g(14);
        for (int u = 0; u < 14; ++u) {
            for (int v = 0; v < 14; ++v) {
                if (u != v && rng.next_bool(0.3)) g.add_edge(u, v);
            }
        }
        g.finalize();
        const auto dinic = vertex_connectivity(g);
        ConnectivityOptions pr;
        pr.use_push_relabel = true;
        const auto hipr = vertex_connectivity(g, pr);
        EXPECT_EQ(dinic.kappa_min, hipr.kappa_min);
        EXPECT_EQ(dinic.kappa_sum, hipr.kappa_sum);
        EXPECT_EQ(dinic.pairs_evaluated, hipr.pairs_evaluated);
        EXPECT_EQ(hipr.flows_capped, 0u);
        EXPECT_EQ(dinic.pairs_skipped, hipr.pairs_skipped);
    }
}

}  // namespace
}  // namespace kadsim::flow
