// serve::ResultCache — the shared content-addressed on-disk series cache
// (promoted from the per-process bench cache; bench/common.cpp now delegates
// here, so these tests also pin the bench cache's behavior).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/analyzer.h"
#include "core/experiment.h"
#include "serve/result_cache.h"

namespace kadsim::serve {
namespace {

struct TempDir {
    explicit TempDir(const char* tag) {
        path = (std::filesystem::temp_directory_path() /
                (std::string("kadsim_") + tag + "_" + std::to_string(::getpid())))
                   .string();
        std::filesystem::remove_all(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
    std::string path;
};

core::ExperimentSeries sample_series() {
    core::ExperimentSeries series;
    for (int i = 0; i < 3; ++i) {
        core::ResilienceSample s;
        s.time_min = 30.0 * i;
        s.n = 100 - i;
        s.m = 900 + i;
        s.kappa_min = 7 - i;
        s.kappa_avg = 8.25 + 0.5 * i;
        s.scc_count = 1;
        s.reciprocity = 0.987;
        s.pairs_evaluated = 42u + static_cast<std::uint64_t>(i);
        s.lambda_min = 8 - i;
        s.lookup_hop_p99 = 4.5;
        series.samples.push_back(s);
    }
    return series;
}

TEST(ResultCache, StoreLoadRoundTripIsByteStable) {
    TempDir tmp("result_cache");
    ResultCache cache(tmp.path);
    const auto series = sample_series();
    ASSERT_TRUE(cache.store("key-1", series));

    core::ExperimentSeries loaded;
    ASSERT_TRUE(cache.load("key-1", loaded));
    ASSERT_EQ(loaded.samples.size(), series.samples.size());
    for (std::size_t i = 0; i < series.samples.size(); ++i) {
        EXPECT_EQ(ResultCache::format_sample_row(loaded.samples[i]),
                  ResultCache::format_sample_row(series.samples[i]))
            << "row " << i << " changed across store/load";
    }
}

TEST(ResultCache, MissOnAbsentKeyAndUnwritableRootFailsLoudly) {
    TempDir tmp("result_cache_miss");
    ResultCache cache(tmp.path);
    core::ExperimentSeries out;
    EXPECT_FALSE(cache.load("never-stored", out));
    EXPECT_TRUE(out.samples.empty());

    // A root that cannot be created: a path through an existing *file*.
    const std::string blocker = tmp.path;
    std::filesystem::create_directories(blocker);
    std::ofstream(blocker + "/file").put('x');
    ResultCache bad(blocker + "/file/cache");
    EXPECT_FALSE(bad.store("k", sample_series()))
        << "store into an uncreatable root must report failure";
}

TEST(ResultCache, KeyOnFirstLineGuardsAgainstCollisionAndSchemeChange) {
    TempDir tmp("result_cache_key");
    ResultCache cache(tmp.path);
    ASSERT_TRUE(cache.store("key-a", sample_series()));
    // Overwrite the entry file with one claiming a different key: the load
    // must treat it as a miss, never serve the wrong series.
    {
        std::ofstream out(cache.entry_path("key-a"), std::ios::trunc);
        out << "# some-other-key\n"
            << ResultCache::csv_header() << '\n'
            << ResultCache::format_sample_row(sample_series().samples[0]) << '\n';
    }
    core::ExperimentSeries out;
    EXPECT_FALSE(cache.load("key-a", out));
}

TEST(ResultCache, StaleSchemaRowsReadAsMiss) {
    TempDir tmp("result_cache_schema");
    ResultCache cache(tmp.path);
    ASSERT_TRUE(cache.store("key-a", sample_series()));
    // Truncate each row to its first nine columns, simulating an entry
    // written before the metric columns were appended.
    {
        std::ofstream out(cache.entry_path("key-a"), std::ios::trunc);
        out << "# key-a\n" << ResultCache::csv_header() << '\n'
            << "0,100,900,7,8.25,1,0.987,42,0\n";
    }
    core::ExperimentSeries out;
    EXPECT_FALSE(cache.load("key-a", out)) << "short rows must force a re-run";
}

TEST(ResultCache, StoreNeverLeavesTempFilesBehind) {
    TempDir tmp("result_cache_tmp");
    ResultCache cache(tmp.path);
    ASSERT_TRUE(cache.store("k1", sample_series()));
    ASSERT_TRUE(cache.store("k2", sample_series()));
    std::size_t files = 0;
    for (const auto& entry : std::filesystem::directory_iterator(tmp.path)) {
        ++files;
        EXPECT_EQ(entry.path().extension(), ".csv")
            << "leftover non-entry file: " << entry.path();
    }
    EXPECT_EQ(files, 2u);
}

TEST(ResultCache, ParseRejectsMalformedAndOverlongRows) {
    const std::string good =
        ResultCache::format_sample_row(sample_series().samples[0]);
    core::ResilienceSample out;
    EXPECT_TRUE(ResultCache::parse_sample_row(good, out));
    EXPECT_FALSE(ResultCache::parse_sample_row(good + ",1", out)) << "extra column";
    EXPECT_FALSE(ResultCache::parse_sample_row(good.substr(0, good.rfind(',')), out))
        << "missing column";
    EXPECT_FALSE(ResultCache::parse_sample_row("", out));
    std::string corrupt = good;
    corrupt[corrupt.find(',') + 1] = 'x';
    EXPECT_FALSE(ResultCache::parse_sample_row(corrupt, out));
}

}  // namespace
}  // namespace kadsim::serve
