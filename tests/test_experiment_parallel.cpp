// Determinism under parallelism: the pipelined experiment engine and the
// batch runner must produce series bit-identical to the sequential run —
// same κ_min/κ_avg/pairs per sample, CSV-byte-equal — for any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/experiment.h"
#include "exec/thread_pool.h"

namespace kadsim::core {
namespace {

ExperimentConfig tiny_experiment(std::uint64_t seed, int threads) {
    ExperimentConfig cfg;
    cfg.scenario.name = "tiny-par";
    cfg.scenario.initial_size = 25;
    cfg.scenario.seed = seed;
    cfg.scenario.kad.k = 8;
    cfg.scenario.kad.s = 1;
    cfg.scenario.traffic.enabled = true;
    cfg.scenario.phases.end = sim::minutes(150);
    cfg.snapshot_interval = sim::minutes(30);
    cfg.analyzer.sample_c = 1.0;  // exact on tiny graphs
    cfg.analyzer.threads = threads;
    return cfg;
}

/// Byte-exact serialization of everything the figures consume — the CSV
/// format of the bench cache.
std::string to_csv(const ExperimentSeries& series) {
    std::ostringstream csv;
    csv << "time_min,n,m,kappa_min,kappa_avg,scc,reciprocity,pairs\n";
    for (const auto& s : series.samples) {
        csv << s.time_min << ',' << s.n << ',' << s.m << ',' << s.kappa_min << ','
            << s.kappa_avg << ',' << s.scc_count << ',' << s.reciprocity << ','
            << s.pairs_evaluated << '\n';
    }
    return csv.str();
}

void expect_identical(const ExperimentSeries& a, const ExperimentSeries& b) {
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].kappa_min, b.samples[i].kappa_min) << "sample " << i;
        EXPECT_DOUBLE_EQ(a.samples[i].kappa_avg, b.samples[i].kappa_avg)
            << "sample " << i;
        EXPECT_EQ(a.samples[i].pairs_evaluated, b.samples[i].pairs_evaluated)
            << "sample " << i;
        EXPECT_EQ(a.samples[i].n, b.samples[i].n) << "sample " << i;
        EXPECT_EQ(a.samples[i].m, b.samples[i].m) << "sample " << i;
    }
    EXPECT_EQ(to_csv(a), to_csv(b));  // CSV-byte-equal
    EXPECT_EQ(a.network_size.size(), b.network_size.size());
}

TEST(ExperimentParallel, PipelinedSeriesBitIdenticalAcrossThreadCounts) {
    const auto sequential = run_experiment(tiny_experiment(11, 1));
    const auto pipelined = run_experiment(tiny_experiment(11, 4));
    expect_identical(sequential, pipelined);
}

TEST(ExperimentParallel, ShardedScenarioSeriesBitIdenticalAcrossShardThreads) {
    // Region-sharded simulation feeding the full experiment pipeline: the
    // shard thread count must not leak into any analyzed sample.
    const auto run_with = [](int shard_threads) {
        ExperimentConfig cfg = tiny_experiment(13, 1);
        cfg.scenario.initial_size = 32;
        cfg.scenario.regions = 4;
        cfg.scenario.shard_threads = shard_threads;
        return run_experiment(cfg);
    };
    const auto serial = run_with(1);
    expect_identical(serial, run_with(2));
    expect_identical(serial, run_with(4));
}

TEST(ExperimentParallel, CallerSuppliedPoolMatchesSequential) {
    const auto sequential = run_experiment(tiny_experiment(12, 1));
    exec::ThreadPool pool(4);
    const auto pipelined = run_experiment(tiny_experiment(12, 1), nullptr, &pool);
    expect_identical(sequential, pipelined);
}

TEST(ExperimentParallel, PipelinedProgressIsInSnapshotOrder) {
    std::vector<double> times;
    const auto series = run_experiment(
        tiny_experiment(13, 4),
        [&times](const ConnectivitySample& s) { times.push_back(s.time_min); });
    ASSERT_EQ(times.size(), series.samples.size());
    for (std::size_t i = 0; i < times.size(); ++i) {
        EXPECT_DOUBLE_EQ(times[i], series.samples[i].time_min);
    }
    for (std::size_t i = 1; i < times.size(); ++i) EXPECT_GT(times[i], times[i - 1]);
}

TEST(ExperimentParallel, BatchSeriesBitIdenticalAcrossThreadCounts) {
    std::vector<ExperimentConfig> configs;
    configs.push_back(tiny_experiment(21, 1));
    configs.push_back(tiny_experiment(22, 1));
    configs.push_back(tiny_experiment(23, 1));

    // threads=1: no pool — plain sequential loop.
    const auto sequential = run_experiment_batch(configs);
    // 3 configs ≥ 2 workers: whole experiments run as concurrent pool tasks.
    exec::ThreadPool two(2);
    const auto config_level = run_experiment_batch(configs, &two);
    // 3 configs < 4 workers: each experiment pipelines over the whole pool.
    exec::ThreadPool four(4);
    const auto pipelined = run_experiment_batch(configs, &four);

    ASSERT_EQ(sequential.size(), configs.size());
    ASSERT_EQ(config_level.size(), configs.size());
    ASSERT_EQ(pipelined.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        expect_identical(sequential[i], config_level[i]);
        expect_identical(sequential[i], pipelined[i]);
    }
}

TEST(ExperimentParallel, BatchCollectsInConfigOrder) {
    std::vector<ExperimentConfig> configs;
    configs.push_back(tiny_experiment(31, 1));
    configs.push_back(tiny_experiment(32, 1));
    configs[0].scenario.name = "first";
    configs[1].scenario.name = "second";
    exec::ThreadPool pool(2);
    const auto results = run_experiment_batch(configs, &pool);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].name, "first");
    EXPECT_EQ(results[1].name, "second");
}

TEST(ExperimentParallel, BatchProgressSeesEverySampleOfEveryConfig) {
    std::vector<ExperimentConfig> configs;
    configs.push_back(tiny_experiment(41, 1));
    configs.push_back(tiny_experiment(42, 1));
    exec::ThreadPool pool(2);  // configs ≥ workers: config-level task path
    std::atomic<int> calls{0};
    std::atomic<int> bad_index{0};
    const auto results = run_experiment_batch(
        configs, &pool,
        [&](std::size_t index, const ConnectivitySample&) {
            if (index >= 2) ++bad_index;
            ++calls;
        });
    std::size_t total = 0;
    for (const auto& series : results) total += series.samples.size();
    EXPECT_EQ(static_cast<std::size_t>(calls.load()), total);
    EXPECT_EQ(bad_index.load(), 0);
}

TEST(ExperimentParallel, BatchOnCompleteFiresInConfigOrderAsResultsArrive) {
    std::vector<ExperimentConfig> configs;
    configs.push_back(tiny_experiment(71, 1));
    configs.push_back(tiny_experiment(72, 1));
    exec::ThreadPool pool(2);
    std::vector<std::size_t> completed;
    const auto results = run_experiment_batch(
        configs, &pool, nullptr,
        [&completed](std::size_t index, const ExperimentSeries& series) {
            EXPECT_FALSE(series.samples.empty());
            completed.push_back(index);  // caller thread, in config order
        });
    ASSERT_EQ(completed.size(), 2u);
    EXPECT_EQ(completed[0], 0u);
    EXPECT_EQ(completed[1], 1u);
    EXPECT_EQ(results.size(), 2u);
}

TEST(ExperimentParallel, ProgressExceptionPropagatesInsteadOfHanging) {
    // A throwing progress callback kills the analyzer consumers; the dying
    // consumers must keep draining the bounded queue so the producer can
    // finish and the exception surfaces (instead of wedging on a full queue).
    EXPECT_THROW(
        {
            const auto series = run_experiment(
                tiny_experiment(61, 2), [](const ConnectivitySample&) {
                    throw std::runtime_error("progress failed");
                });
            (void)series;
        },
        std::runtime_error);
}

TEST(ExperimentParallel, BatchWithoutPoolStillRunsEverything) {
    std::vector<ExperimentConfig> configs;
    configs.push_back(tiny_experiment(51, 2));
    const auto results = run_experiment_batch(configs);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].samples.size(), 5u);  // 30,60,90,120,150
}

}  // namespace
}  // namespace kadsim::core
