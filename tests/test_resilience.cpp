// Eq. 2 resilience calculus (paper §4.5).
#include <gtest/gtest.h>

#include "core/resilience.h"

namespace kadsim::core {
namespace {

TEST(Resilience, FromConnectivity) {
    EXPECT_EQ(resilience_from_connectivity(0), -1);  // disconnected
    EXPECT_EQ(resilience_from_connectivity(1), 0);
    EXPECT_EQ(resilience_from_connectivity(20), 19);
}

TEST(Resilience, ToleratesFollowsEq2) {
    // κ(D) > r ≥ a.
    EXPECT_TRUE(tolerates(5, 4));
    EXPECT_FALSE(tolerates(5, 5));
    EXPECT_FALSE(tolerates(0, 0));
    EXPECT_TRUE(tolerates(1, 0));
}

TEST(Resilience, RequiredConnectivity) {
    EXPECT_EQ(required_connectivity(0), 1);
    EXPECT_EQ(required_connectivity(10), 11);
}

TEST(Resilience, RecommendedBucketSize) {
    // Stable network: k > a suffices.
    EXPECT_EQ(recommended_bucket_size(10, false), 11);
    // Strong churn: slack, since κ_min dips below k (§5.5.4).
    EXPECT_GE(recommended_bucket_size(10, true), 16);
    EXPECT_GT(recommended_bucket_size(1, true), 2);
}

TEST(Resilience, VerdictStrings) {
    EXPECT_NE(resilience_verdict(0, 3).find("DISCONNECTED"), std::string::npos);
    EXPECT_NE(resilience_verdict(5, 3).find("resilient"), std::string::npos);
    EXPECT_NE(resilience_verdict(3, 5).find("NOT resilient"), std::string::npos);
}

}  // namespace
}  // namespace kadsim::core
