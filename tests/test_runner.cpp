// Scenario runner: staggered bootstrap, churn bookkeeping, snapshots,
// determinism.
#include <gtest/gtest.h>

#include "scen/runner.h"

namespace kadsim::scen {
namespace {

ScenarioConfig small_scenario(int size = 30, std::uint64_t seed = 5) {
    ScenarioConfig cfg;
    cfg.initial_size = size;
    cfg.seed = seed;
    cfg.kad.k = 8;
    cfg.kad.s = 1;
    cfg.phases.end = sim::minutes(240);
    return cfg;
}

TEST(Runner, AllInitialNodesJoinWithinSetupPhase) {
    Runner runner(small_scenario());
    runner.step_to(sim::minutes(30));
    EXPECT_EQ(runner.live_count(), 30);
    const auto totals = runner.totals();
    EXPECT_EQ(totals.joins, 30u);
    EXPECT_EQ(totals.crashes, 0u);
}

TEST(Runner, JoinsAreStaggeredNotInstant) {
    Runner runner(small_scenario(30));
    runner.step_to(sim::minutes(10));
    const int early = runner.live_count();
    EXPECT_GT(early, 0);
    EXPECT_LT(early, 30);
}

TEST(Runner, ZeroOneChurnDrainsOnePerMinute) {
    ScenarioConfig cfg = small_scenario(30);
    cfg.fault.churn = ChurnSpec{0, 1};
    Runner runner(cfg);
    runner.step_to(sim::minutes(120));
    EXPECT_EQ(runner.live_count(), 30);
    runner.step_to(sim::minutes(130));
    // 10 churn minutes → 9–10 removals depending on sub-minute offsets.
    EXPECT_LE(runner.live_count(), 21);
    EXPECT_GE(runner.live_count(), 19);
}

TEST(Runner, SymmetricChurnKeepsSizeRoughlyConstant) {
    ScenarioConfig cfg = small_scenario(30);
    cfg.fault.churn = ChurnSpec{1, 1};
    Runner runner(cfg);
    runner.step_to(sim::minutes(200));
    EXPECT_NEAR(runner.live_count(), 30, 2);
    const auto totals = runner.totals();
    EXPECT_GT(totals.crashes, 50u);
    EXPECT_EQ(totals.joins, 30u + totals.crashes +
                                static_cast<std::uint64_t>(runner.live_count()) - 30u);
}

TEST(Runner, ChurnStartsOnlyAfterStabilization) {
    ScenarioConfig cfg = small_scenario(30);
    cfg.fault.churn = ChurnSpec{10, 10};
    Runner runner(cfg);
    runner.step_to(sim::minutes(119));
    EXPECT_EQ(runner.totals().crashes, 0u);
}

TEST(Runner, SnapshotCoversExactlyLiveNodes) {
    ScenarioConfig cfg = small_scenario(25);
    cfg.fault.churn = ChurnSpec{0, 1};
    Runner runner(cfg);
    runner.step_to(sim::minutes(150));
    const auto snap = runner.snapshot();
    EXPECT_EQ(static_cast<int>(snap.nodes.size()), runner.live_count());
    EXPECT_EQ(snap.time_ms, sim::minutes(150));
}

TEST(Runner, TrafficGeneratesLookupsAndData) {
    ScenarioConfig cfg = small_scenario(20);
    cfg.traffic.enabled = true;
    Runner runner(cfg);
    runner.step_to(sim::minutes(60));
    const auto totals = runner.totals();
    // ~20 nodes × 11 ops × ~30 minutes of operation.
    EXPECT_GT(totals.protocol.lookups_started, 1000u);
    EXPECT_GT(totals.protocol.stores_sent, 0u);
    EXPECT_GT(totals.protocol.values_found, 0u);
    EXPECT_FALSE(runner.data_registry().empty());
}

TEST(Runner, NoTrafficStillHasMaintenanceLookups) {
    Runner runner(small_scenario(20));
    runner.step_to(sim::minutes(120));
    const auto totals = runner.totals();
    // Joins + hourly bucket refreshes.
    EXPECT_GT(totals.protocol.lookups_started, 20u);
}

TEST(Runner, SizeSeriesIsRecordedPerMinute) {
    Runner runner(small_scenario(15));
    runner.step_to(sim::minutes(50));
    const auto& series = runner.size_series();
    ASSERT_GE(series.size(), 50u);
    EXPECT_DOUBLE_EQ(series.times().front(), 0.0);
    // After setup the series tracks the live count.
    EXPECT_DOUBLE_EQ(series.values().back(), 15.0);
}

TEST(Runner, DeterministicAcrossRunsWithSameSeed) {
    ScenarioConfig cfg = small_scenario(25, 77);
    cfg.traffic.enabled = true;
    cfg.fault.churn = ChurnSpec{1, 1};

    Runner a(cfg);
    Runner b(cfg);
    a.step_to(sim::minutes(150));
    b.step_to(sim::minutes(150));

    EXPECT_EQ(a.live_count(), b.live_count());
    const auto ta = a.totals();
    const auto tb = b.totals();
    EXPECT_EQ(ta.network.sent, tb.network.sent);
    EXPECT_EQ(ta.protocol.rpcs_sent, tb.protocol.rpcs_sent);
    EXPECT_EQ(ta.events_executed, tb.events_executed);

    const auto sa = a.snapshot();
    const auto sb = b.snapshot();
    ASSERT_EQ(sa.nodes.size(), sb.nodes.size());
    EXPECT_TRUE(sa.nodes.flat() == sb.nodes.flat());
}

TEST(Runner, DifferentSeedsDiverge) {
    ScenarioConfig cfg_a = small_scenario(25, 1);
    ScenarioConfig cfg_b = small_scenario(25, 2);
    cfg_a.traffic.enabled = cfg_b.traffic.enabled = true;
    Runner a(cfg_a);
    Runner b(cfg_b);
    a.step_to(sim::minutes(60));
    b.step_to(sim::minutes(60));
    EXPECT_NE(a.totals().network.sent, b.totals().network.sent);
}

TEST(Runner, RunInvokesSnapshotCallbackAtInterval) {
    ScenarioConfig cfg = small_scenario(15);
    cfg.phases.stabilization_end = sim::minutes(90);
    cfg.phases.end = sim::minutes(100);
    Runner runner(cfg);
    std::vector<double> times;
    runner.run(sim::minutes(25), [&times](const graph::RoutingSnapshot& snap) {
        times.push_back(static_cast<double>(snap.time_ms) / 60000.0);
    });
    EXPECT_EQ(times, (std::vector<double>{25, 50, 75, 100}));
}

TEST(Runner, ValidatesConfig) {
    ScenarioConfig cfg = small_scenario();
    cfg.initial_size = 0;
    EXPECT_THROW(Runner{cfg}, std::invalid_argument);

    ScenarioConfig bad_phases = small_scenario();
    bad_phases.phases.end = sim::minutes(10);  // before stabilization_end
    EXPECT_THROW(Runner{bad_phases}, std::invalid_argument);

    ScenarioConfig bad_kad = small_scenario();
    bad_kad.kad.k = 0;
    EXPECT_THROW(Runner{bad_kad}, std::invalid_argument);
}

TEST(Runner, DrainToEmptyNetworkIsSafe) {
    ScenarioConfig cfg = small_scenario(10);
    cfg.fault.churn = ChurnSpec{0, 2};
    cfg.phases.end = sim::minutes(140);
    Runner runner(cfg);
    runner.step_to(sim::minutes(140));
    EXPECT_EQ(runner.live_count(), 0);
    const auto snap = runner.snapshot();
    EXPECT_TRUE(snap.nodes.empty());
    EXPECT_EQ(snap.removed_total, 10u);
}

TEST(Runner, SnapshotRecordsCumulativeRemovals) {
    ScenarioConfig cfg = small_scenario(30);
    cfg.fault.churn = ChurnSpec{0, 1};
    Runner runner(cfg);
    runner.step_to(sim::minutes(120));
    EXPECT_EQ(runner.snapshot().removed_total, 0u);
    runner.step_to(sim::minutes(150));
    const auto snap = runner.snapshot();
    EXPECT_EQ(snap.removed_total, runner.totals().crashes);
    EXPECT_GT(snap.removed_total, 0u);
}

TEST(Runner, DegreeAttackRemovesAtTheConfiguredRate) {
    ScenarioConfig cfg = small_scenario(30);
    cfg.fault.model = fault::ModelKind::kDegreeAttack;
    cfg.fault.churn = ChurnSpec{0, 2};
    Runner runner(cfg);
    runner.step_to(sim::minutes(120));
    EXPECT_EQ(runner.totals().crashes, 0u);
    runner.step_to(sim::minutes(130));
    // 10 attack minutes at 2/min → 19–20 removals depending on offsets.
    EXPECT_GE(runner.totals().crashes, 19u);
    EXPECT_LE(runner.totals().crashes, 20u);
    EXPECT_EQ(runner.totals().joins, 30u);  // no arrivals
}

TEST(Runner, TargetedAttacksAreDeterministicPerSeed) {
    for (const fault::ModelKind kind :
         {fault::ModelKind::kDegreeAttack, fault::ModelKind::kKappaAttack}) {
        ScenarioConfig cfg = small_scenario(25, 7);
        cfg.fault.model = kind;
        cfg.fault.churn = ChurnSpec{0, 1};
        Runner a(cfg);
        Runner b(cfg);
        a.step_to(sim::minutes(160));
        b.step_to(sim::minutes(160));
        EXPECT_EQ(a.totals().crashes, b.totals().crashes);
        EXPECT_EQ(a.totals().events_executed, b.totals().events_executed);
        const auto sa = a.snapshot();
        const auto sb = b.snapshot();
        ASSERT_EQ(sa.nodes.size(), sb.nodes.size());
        EXPECT_TRUE(sa.nodes.flat() == sb.nodes.flat());
    }
}

TEST(Runner, RegionOutageCutsExactlyTheRegionAtTheInstant) {
    ScenarioConfig cfg = small_scenario(40);
    cfg.fault.model = fault::ModelKind::kRegionOutage;
    cfg.fault.outage_at = sim::minutes(150);
    cfg.fault.outage_prefix_bits = 1;
    cfg.fault.outage_prefix = 1;  // top id bit set → about half the nodes
    Runner runner(cfg);

    runner.step_to(sim::minutes(150) - 1);
    EXPECT_EQ(runner.totals().crashes, 0u);
    const int before = runner.live_count();

    // Count live region members just before the cut.
    int in_region = 0;
    for (const net::Address address : runner.live_addresses()) {
        if (runner.node(address)->id().get_bit(cfg.kad.b - 1)) ++in_region;
    }
    ASSERT_GT(in_region, 0);

    runner.step_to(sim::minutes(151));
    EXPECT_EQ(runner.totals().crashes, static_cast<std::uint64_t>(in_region));
    EXPECT_EQ(runner.live_count(), before - in_region);
    // Every survivor is outside the region; the cut fires exactly once.
    for (const net::Address address : runner.live_addresses()) {
        EXPECT_FALSE(runner.node(address)->id().get_bit(cfg.kad.b - 1));
    }
    runner.step_to(sim::minutes(200));
    EXPECT_EQ(runner.totals().crashes, static_cast<std::uint64_t>(in_region));
}

TEST(Runner, RegionOutageOutsideFaultPhaseIsRejected) {
    ScenarioConfig cfg = small_scenario(10);
    cfg.fault.model = fault::ModelKind::kRegionOutage;
    cfg.fault.outage_at = sim::minutes(60);  // before stabilization_end
    EXPECT_THROW(Runner{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace kadsim::scen
