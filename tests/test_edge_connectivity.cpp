// Edge connectivity λ: randomized differential testing of the unit-capacity
// kernel (degree-capped, path-seeded Dinic over a reused touched-arc-reset
// workspace) against a brute-force min-edge-cut oracle, plus workspace-reuse
// purity (fresh vs reused workspace bit-identical).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "flow/edge_connectivity.h"
#include "graph/digraph.h"
#include "util/rng.h"

namespace kadsim::flow {
namespace {

/// Kademlia-like connectivity graph at tiny n: target out-degree `deg`,
/// mostly reciprocated edges (same shape as the micro-bench generator).
graph::Digraph kademlia_like_graph(int n, int deg, std::uint64_t seed) {
    util::Rng rng(seed);
    graph::Digraph g(n);
    for (int u = 0; u < n; ++u) {
        for (int j = 0; j < deg; ++j) {
            const int v = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
            if (v == u) continue;
            g.add_edge(u, v);
            if (rng.next_bool(0.9)) g.add_edge(v, u);
        }
    }
    g.finalize();
    return g;
}

// 100 seeded graphs: every ordered pair must agree between the kernel's
// seeded+capped path (exercised through edge_connectivity at
// sample_fraction 1.0, whose min/sum aggregate every pair) and the
// brute-force min-edge-cut oracle.
TEST(EdgeConnectivityDifferential, SampledKernelVsBruteforceMinCutOracle) {
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        const int n = 6 + static_cast<int>(seed % 4);  // 6..9
        const graph::Digraph g = kademlia_like_graph(n, 2, seed);

        int oracle_min = std::numeric_limits<int>::max();
        std::uint64_t oracle_sum = 0;
        std::uint64_t oracle_pairs = 0;
        for (int u = 0; u < n; ++u) {
            for (int v = 0; v < n; ++v) {
                if (u == v) continue;
                const int lambda = pair_edge_connectivity_bruteforce(g, u, v);
                oracle_min = std::min(oracle_min, lambda);
                oracle_sum += static_cast<std::uint64_t>(lambda);
                ++oracle_pairs;
            }
        }

        const EdgeConnectivityResult r = edge_connectivity(g);
        EXPECT_EQ(r.lambda_min, oracle_min) << "seed " << seed;
        EXPECT_EQ(r.lambda_sum, oracle_sum) << "seed " << seed;
        EXPECT_EQ(r.pairs_evaluated, oracle_pairs) << "seed " << seed;
    }
}

// The per-pair solver path (no seeding, uncapped Dinic on a reused
// workspace) must agree with the oracle too — it is what the purity test
// and external callers use.
TEST(EdgeConnectivityDifferential, PairSolverVsBruteforce) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        const int n = 6 + static_cast<int>(seed % 4);
        const graph::Digraph g = kademlia_like_graph(n, 2, seed * 31);
        const FlowNetwork net = unit_capacity_network(g);
        FlowWorkspace reused(net);
        for (int u = 0; u < n; ++u) {
            for (int v = 0; v < n; ++v) {
                if (u == v) continue;
                EXPECT_EQ(pair_edge_connectivity(g, net, reused, u, v),
                          pair_edge_connectivity_bruteforce(g, u, v))
                    << "seed " << seed << " pair (" << u << "," << v << ")";
            }
        }
    }
}

// Reusing one workspace across pairs must be pure: recomputing a pair after
// arbitrary interleaved work gives the same λ as a fresh workspace, and a
// reset leaves every arc at its as-built capacity.
TEST(EdgeConnectivityPurity, ReuseAcrossPairsMatchesFreshWorkspace) {
    const graph::Digraph g = kademlia_like_graph(12, 3, 42);
    const FlowNetwork net = unit_capacity_network(g);
    FlowWorkspace reused(net);
    std::vector<std::pair<int, int>> pairs;
    for (int u = 0; u < g.vertex_count(); ++u) {
        for (int v = 0; v < g.vertex_count(); ++v) {
            if (u != v) pairs.emplace_back(u, v);
        }
    }

    // First sweep on the reused workspace.
    std::vector<int> first;
    for (const auto& [u, v] : pairs) {
        first.push_back(pair_edge_connectivity(g, net, reused, u, v));
    }
    // Second sweep in reverse order: every value must replay identically.
    for (std::size_t i = pairs.size(); i-- > 0;) {
        const auto [u, v] = pairs[i];
        EXPECT_EQ(pair_edge_connectivity(g, net, reused, u, v), first[i])
            << "pair (" << u << "," << v << ") not pure under reuse";
    }
    // And against fresh workspaces (the convenience overload).
    for (std::size_t i = 0; i < pairs.size(); i += 7) {
        const auto [u, v] = pairs[i];
        EXPECT_EQ(pair_edge_connectivity(g, u, v), first[i]);
    }
    // After a final reset, the residual capacities are exactly as built.
    reused.reset();
    for (int a = 0; a < net.arc_count(); ++a) {
        ASSERT_EQ(reused.cap(a), net.original_cap(a)) << "arc " << a;
    }
}

// The unit-capacity network honours the documented arc-id contract: the arc
// of connectivity-graph edge j is 2j, heads match the CSR targets.
TEST(EdgeConnectivityNetwork, ArcIdContract) {
    const graph::Digraph g = kademlia_like_graph(10, 3, 7);
    const FlowNetwork net = unit_capacity_network(g);
    EXPECT_EQ(net.vertex_count(), g.vertex_count());
    EXPECT_EQ(net.arc_count(), 2 * g.edge_count());
    for (int u = 0; u < g.vertex_count(); ++u) {
        const auto out = g.out(u);
        const std::int64_t offset = g.edge_offset(u);
        for (std::size_t i = 0; i < out.size(); ++i) {
            const int arc = static_cast<int>(2 * (offset + static_cast<std::int64_t>(i)));
            EXPECT_EQ(net.arc_to(arc), out[i]);
            EXPECT_EQ(net.original_cap(arc), 1);
            EXPECT_EQ(net.arc_to(arc ^ 1), u);
            EXPECT_EQ(net.original_cap(arc ^ 1), 0);
        }
    }
}

// Pool fan-out aggregates bit-identically to the inline path (integer
// min/sum per worker, fixed-order combination).
TEST(EdgeConnectivityExecution, PooledMatchesInline) {
    const graph::Digraph g = kademlia_like_graph(48, 4, 11);
    const EdgeConnectivityResult inline_result = edge_connectivity(g);
    exec::ThreadPool pool(3);
    EdgeConnectivityOptions options;
    options.pool = &pool;
    const EdgeConnectivityResult pooled = edge_connectivity(g, options);
    EXPECT_EQ(pooled.lambda_min, inline_result.lambda_min);
    EXPECT_EQ(pooled.lambda_sum, inline_result.lambda_sum);
    EXPECT_EQ(pooled.pairs_evaluated, inline_result.pairs_evaluated);
    EXPECT_EQ(pooled.pairs_skipped, inline_result.pairs_skipped);
    EXPECT_EQ(pooled.flows_capped, inline_result.flows_capped);
}

TEST(EdgeConnectivityEdgeCases, TrivialAndCompleteGraphs) {
    graph::Digraph empty(0);
    empty.finalize();
    EXPECT_EQ(edge_connectivity(empty).lambda_min, 0);

    graph::Digraph single(1);
    single.finalize();
    EXPECT_TRUE(edge_connectivity(single).complete);

    graph::Digraph complete(5);
    for (int u = 0; u < 5; ++u) {
        for (int v = 0; v < 5; ++v) {
            if (u != v) complete.add_edge(u, v);
        }
    }
    complete.finalize();
    const EdgeConnectivityResult r = edge_connectivity(complete);
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.lambda_min, 4);
    EXPECT_DOUBLE_EQ(r.lambda_avg, 4.0);
}

}  // namespace
}  // namespace kadsim::flow
