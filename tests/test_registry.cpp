// Scenario registry: the paper's parameter rules for simulations A–L.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/registry.h"

namespace kadsim::core {
namespace {

ReproScale test_scale() {
    ReproScale s;
    s.size_small = 100;
    s.size_large = 200;
    s.churn_figs_end = sim::minutes(480);
    s.seed = 9;
    return s;
}

TEST(Registry, SimA_NoTrafficChurn01_StalenessOne) {
    const PaperScenarios reg(test_scale());
    const auto cfg = reg.sim_a(20);
    EXPECT_EQ(cfg.scenario.initial_size, 100);
    EXPECT_FALSE(cfg.scenario.traffic.enabled);
    EXPECT_EQ(cfg.scenario.fault.churn.adds_per_minute, 0);
    EXPECT_EQ(cfg.scenario.fault.churn.removes_per_minute, 1);
    EXPECT_EQ(cfg.scenario.kad.k, 20);
    // §5.3: churn simulations with loss none use s=1.
    EXPECT_EQ(cfg.scenario.kad.s, 1);
    EXPECT_EQ(cfg.scenario.kad.b, 160);
    EXPECT_EQ(cfg.scenario.kad.alpha, 3);
    EXPECT_EQ(cfg.scenario.loss, net::LossLevel::kNone);
    // 0/1 churn: runs until the network drains (120 + size minutes).
    EXPECT_EQ(cfg.scenario.phases.end, sim::minutes(220));
    EXPECT_NE(cfg.scenario.name.find("A:"), std::string::npos);
}

TEST(Registry, SimCD_HaveTraffic) {
    const PaperScenarios reg(test_scale());
    EXPECT_TRUE(reg.sim_c(10).scenario.traffic.enabled);
    EXPECT_TRUE(reg.sim_d(10).scenario.traffic.enabled);
    EXPECT_EQ(reg.sim_c(10).scenario.initial_size, 100);
    EXPECT_EQ(reg.sim_d(10).scenario.initial_size, 200);
    EXPECT_EQ(reg.sim_c(10).scenario.traffic.lookups_per_minute, 10);
    EXPECT_EQ(reg.sim_c(10).scenario.traffic.disseminations_per_minute, 1);
}

TEST(Registry, SimEFGH_SymmetricChurn) {
    const PaperScenarios reg(test_scale());
    EXPECT_EQ(reg.sim_e(5).scenario.fault.churn.label(), "1/1");
    EXPECT_EQ(reg.sim_f(5).scenario.fault.churn.label(), "1/1");
    EXPECT_EQ(reg.sim_g(5).scenario.fault.churn.label(), "10/10");
    EXPECT_EQ(reg.sim_h(5).scenario.fault.churn.label(), "10/10");
    EXPECT_EQ(reg.sim_e(5).scenario.phases.end, sim::minutes(480));
    EXPECT_EQ(reg.sim_g(5).scenario.kad.s, 1);
}

TEST(Registry, AlphaVariantsForFigure10) {
    const PaperScenarios reg(test_scale());
    EXPECT_EQ(reg.sim_g(10).scenario.kad.alpha, 3);
    EXPECT_EQ(reg.sim_g(10, 5).scenario.kad.alpha, 5);
    EXPECT_EQ(reg.sim_h(10, 5).scenario.kad.alpha, 5);
}

TEST(Registry, SimI_StalenessSweep) {
    const PaperScenarios reg(test_scale());
    const auto cfg = reg.sim_i(5, scen::ChurnSpec{10, 10});
    EXPECT_EQ(cfg.scenario.kad.s, 5);
    EXPECT_EQ(cfg.scenario.kad.k, 20);
    EXPECT_EQ(cfg.scenario.fault.churn.label(), "10/10");
    EXPECT_EQ(cfg.scenario.loss, net::LossLevel::kNone);
    EXPECT_TRUE(cfg.scenario.traffic.enabled);
}

TEST(Registry, SimJKL_LossAndChurnMatrix) {
    const PaperScenarios reg(test_scale());
    const auto j = reg.sim_j(net::LossLevel::kMedium, 1);
    EXPECT_EQ(j.scenario.loss, net::LossLevel::kMedium);
    EXPECT_EQ(j.scenario.kad.s, 1);
    EXPECT_FALSE(j.scenario.fault.churn.any());

    const auto k = reg.sim_k(net::LossLevel::kHigh, 5);
    EXPECT_EQ(k.scenario.fault.churn.label(), "1/1");
    EXPECT_EQ(k.scenario.kad.s, 5);

    const auto l = reg.sim_l(net::LossLevel::kLow, 1);
    EXPECT_EQ(l.scenario.fault.churn.label(), "10/10");
    EXPECT_EQ(l.scenario.loss, net::LossLevel::kLow);
}

TEST(Registry, BitLengthVariants) {
    const PaperScenarios reg(test_scale());
    EXPECT_EQ(reg.sim_c(20).scenario.kad.b, 160);
    EXPECT_EQ(reg.sim_c_b80(20).scenario.kad.b, 80);
    EXPECT_EQ(reg.sim_d_b80(20).scenario.kad.b, 80);
    EXPECT_NE(reg.sim_c_b80(20).scenario.name.find("b=80"), std::string::npos);
}

TEST(Registry, ScaleFromEnvDefaults) {
    ::unsetenv("REPRO_SCALE");
    ::unsetenv("REPRO_SIZE_SMALL");
    ::unsetenv("REPRO_SIZE_LARGE");
    ::unsetenv("REPRO_END_MIN");
    ::unsetenv("REPRO_SEED");
    const auto s = ReproScale::from_env();
    EXPECT_EQ(s.size_small, 250);  // paper-exact at quick scale
    EXPECT_EQ(s.size_large, 400);
    EXPECT_EQ(s.churn_figs_end, sim::minutes(360));
    EXPECT_EQ(s.seed, 20170327u);
}

TEST(Registry, ScaleFromEnvPaperMode) {
    ::setenv("REPRO_SCALE", "paper", 1);
    const auto s = ReproScale::from_env();
    EXPECT_EQ(s.size_small, 250);
    EXPECT_EQ(s.size_large, 2500);
    EXPECT_EQ(s.churn_figs_end, sim::minutes(1400));
    ::unsetenv("REPRO_SCALE");
}

TEST(Registry, AllScenariosValidate) {
    const PaperScenarios reg(test_scale());
    EXPECT_NO_THROW(reg.sim_a(5).scenario.validate());
    EXPECT_NO_THROW(reg.sim_b(30).scenario.validate());
    EXPECT_NO_THROW(reg.sim_h(10, 5).scenario.validate());
    EXPECT_NO_THROW(reg.sim_i(1, scen::ChurnSpec{1, 1}).scenario.validate());
    EXPECT_NO_THROW(reg.sim_l(net::LossLevel::kHigh, 5).scenario.validate());
    EXPECT_NO_THROW(reg.sim_d_b80(20).scenario.validate());
    EXPECT_NO_THROW(reg.attack_random().scenario.validate());
    EXPECT_NO_THROW(reg.attack_degree(true).scenario.validate());
    EXPECT_NO_THROW(reg.attack_kappa().scenario.validate());
    EXPECT_NO_THROW(reg.attack_region(true).scenario.validate());
    EXPECT_NO_THROW(reg.metrics_250().scenario.validate());
    EXPECT_NO_THROW(reg.metrics_1000().scenario.validate());
}

// Regression: negative traffic rates must be rejected even while
// traffic.enabled is false (the check used to be gated on `enabled`, so an
// invalid disabled spec validated silently until someone flipped it on).
TEST(Registry, ValidateRejectsNegativeTrafficRatesEvenWhenDisabled) {
    scen::ScenarioConfig cfg;
    cfg.traffic.enabled = false;
    cfg.traffic.lookups_per_minute = -1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.traffic.lookups_per_minute = 10;
    cfg.traffic.disseminations_per_minute = -3;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.traffic.disseminations_per_minute = 0;
    EXPECT_NO_THROW(cfg.validate());
    // And still rejected when enabled, as before.
    cfg.traffic.enabled = true;
    cfg.traffic.lookups_per_minute = -7;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Registry, MetricFamilyFixedSizesAndCadence) {
    const PaperScenarios reg(test_scale());
    const auto m250 = reg.metrics_250();
    const auto m1000 = reg.metrics_1000();
    EXPECT_EQ(m250.scenario.initial_size, 250);
    EXPECT_EQ(m1000.scenario.initial_size, 1000);
    for (const auto& cfg : {m250, m1000}) {
        EXPECT_EQ(cfg.scenario.fault.churn.label(), "1/1");
        EXPECT_FALSE(cfg.scenario.traffic.enabled);
        EXPECT_EQ(cfg.scenario.kad.k, 20);
        EXPECT_EQ(cfg.scenario.phases.end, sim::minutes(180));
        EXPECT_EQ(cfg.snapshot_interval, sim::minutes(30));
    }
    EXPECT_NE(m250.scenario.name.find("METRICS-250"), std::string::npos);
    EXPECT_NE(m1000.scenario.name.find("METRICS-1000"), std::string::npos);
}

TEST(Registry, ScaleFamilySpansAllFourTiers) {
    const PaperScenarios reg(test_scale());
    const auto s2k = reg.scale_2k();
    const auto s5k = reg.scale_5k();
    const auto s20k = reg.scale_20k();
    const auto s100k = reg.scale_100k();
    EXPECT_EQ(s2k.scenario.initial_size, 2000);
    EXPECT_EQ(s5k.scenario.initial_size, 5000);
    EXPECT_EQ(s20k.scenario.initial_size, 20000);
    EXPECT_EQ(s100k.scenario.initial_size, 100000);
    for (const auto& cfg : {s2k, s5k, s20k, s100k}) {
        EXPECT_EQ(cfg.scenario.fault.churn.label(), "1/1");
        EXPECT_FALSE(cfg.scenario.traffic.enabled);
        EXPECT_EQ(cfg.scenario.kad.k, 20);
        EXPECT_NO_THROW(cfg.scenario.validate());
    }
    EXPECT_NE(s20k.scenario.name.find("SCALE-20K"), std::string::npos);
    EXPECT_NE(s100k.scenario.name.find("SCALE-100K"), std::string::npos);
}

TEST(Registry, PaperSimulationsUseRandomChurnModel) {
    const PaperScenarios reg(test_scale());
    EXPECT_EQ(reg.sim_a(20).scenario.fault.model, fault::ModelKind::kRandomChurn);
    EXPECT_EQ(reg.sim_h(20).scenario.fault.model, fault::ModelKind::kRandomChurn);
    EXPECT_EQ(reg.sim_l(net::LossLevel::kLow, 1).scenario.fault.model,
              fault::ModelKind::kRandomChurn);
}

TEST(Registry, AttackFamilySharesOneRemovalSchedule) {
    const PaperScenarios reg(test_scale());
    const auto random = reg.attack_random();
    const auto degree = reg.attack_degree();
    const auto kappa = reg.attack_kappa();

    EXPECT_EQ(random.scenario.fault.model, fault::ModelKind::kRandomChurn);
    EXPECT_EQ(degree.scenario.fault.model, fault::ModelKind::kDegreeAttack);
    EXPECT_EQ(kappa.scenario.fault.model, fault::ModelKind::kKappaAttack);

    // Equal removal budgets: same rate, no arrivals, no repair traffic, same
    // horizon and snapshot cadence across the per-minute models.
    for (const auto& cfg : {random, degree, kappa}) {
        EXPECT_EQ(cfg.scenario.fault.churn.adds_per_minute, 0);
        EXPECT_EQ(cfg.scenario.fault.churn.removes_per_minute,
                  PaperScenarios::attack_rate(100));
        EXPECT_FALSE(cfg.scenario.traffic.enabled);
        EXPECT_EQ(cfg.scenario.phases.end, sim::minutes(200));
        EXPECT_EQ(cfg.snapshot_interval, sim::minutes(10));
        EXPECT_EQ(cfg.scenario.kad.k, 20);
        EXPECT_EQ(cfg.scenario.kad.s, 1);
        EXPECT_EQ(cfg.scenario.initial_size, 100);
    }
    EXPECT_GE(PaperScenarios::attack_rate(100), 1);
    EXPECT_EQ(PaperScenarios::attack_rate(250), 2);

    // Both paper sizes are reachable.
    EXPECT_EQ(reg.attack_random(true).scenario.initial_size, 200);
}

TEST(Registry, AttackRegionIsOneShotInsideFaultPhase) {
    const PaperScenarios reg(test_scale());
    const auto cfg = reg.attack_region();
    EXPECT_EQ(cfg.scenario.fault.model, fault::ModelKind::kRegionOutage);
    EXPECT_FALSE(cfg.scenario.fault.churn.any());
    EXPECT_EQ(cfg.scenario.fault.outage_at, sim::minutes(150));
    EXPECT_EQ(cfg.scenario.fault.outage_prefix_bits, 2);
    EXPECT_GE(cfg.scenario.fault.outage_at, cfg.scenario.phases.stabilization_end);
    EXPECT_LT(cfg.scenario.fault.outage_at, cfg.scenario.phases.end);
    EXPECT_TRUE(cfg.scenario.fault.any());
}

}  // namespace
}  // namespace kadsim::core
