#!/usr/bin/env bash
# Release smoke test for the resilience daemon: the full service loop on real
# snapshot files. Dumps three snapshots, serves them through the watch
# directory, queries kappa over the socket, verifies the counters, feeds a
# corrupt file, and checks that SHUTDOWN drains and exits 0.
# Run via ctest (daemon_smoke) with RESILIENCE_DAEMON and SNAPSHOT_TOOL set.
set -u

DAEMON="${RESILIENCE_DAEMON:?set RESILIENCE_DAEMON to the daemon binary}"
TOOL="${SNAPSHOT_TOOL:?set SNAPSHOT_TOOL to the snapshot_tool binary}"
WORK="$(mktemp -d /tmp/kadsim_daemon_smoke.XXXXXX)"
SOCKET="$WORK/daemon.sock"
WATCH="$WORK/watch"
DAEMON_PID=""

cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill "$DAEMON_PID" 2>/dev/null
        wait "$DAEMON_PID" 2>/dev/null
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

die() {
    echo "SMOKE FAIL: $*" >&2
    [ -f "$WORK/daemon.log" ] && sed 's/^/  daemon: /' "$WORK/daemon.log" >&2
    exit 1
}

# counter <name> <counters-output>: extract "name=value".
counter() {
    printf '%s\n' "$2" | sed -n "s/^$1=//p"
}

mkdir -p "$WATCH" "$WORK/staging"

# --- three snapshots: two text, one binary ---------------------------------
"$TOOL" dump --nodes 24 --minutes 30 --out "$WORK/staging/001_a.txt" \
    >/dev/null || die "dump 1 failed"
"$TOOL" dump --nodes 30 --minutes 45 --out "$WORK/staging/002_b.txt" \
    >/dev/null || die "dump 2 failed"
"$TOOL" dump --nodes 36 --minutes 60 --binary --out "$WORK/staging/003_c.bin" \
    >/dev/null || die "dump 3 failed"

# --- start the daemon -------------------------------------------------------
"$DAEMON" serve --socket "$SOCKET" --watch "$WATCH" --cache "$WORK/cache" \
    --c 0.2 --poll-ms 50 >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
    [ -S "$SOCKET" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || die "daemon died during startup"
    sleep 0.1
done
[ -S "$SOCKET" ] || die "socket never appeared"

# --- ingest via the watch directory (atomic rename, as a producer would) ----
for f in 001_a.txt 002_b.txt 003_c.bin; do
    mv "$WORK/staging/$f" "$WATCH/$f" || die "mv $f into watch dir failed"
done

# Wait until all three are analyzed (KAPPA blocks on analysis, so once LIST
# says 3 and a query succeeds, the pipeline has drained).
for _ in $(seq 1 300); do
    ingested="$(counter ingested "$("$DAEMON" query --socket "$SOCKET" COUNTERS)")"
    [ "$ingested" = "3" ] && break
    sleep 0.1
done
[ "${ingested:-0}" = "3" ] || die "expected ingested=3, got '${ingested:-none}'"

# --- kappa over the socket --------------------------------------------------
kappa_response="$("$DAEMON" query --socket "$SOCKET" KAPPA latest)" \
    || die "KAPPA latest failed: $kappa_response"
case "$kappa_response" in
    "OK kappa_min="*) ;;
    *) die "unexpected KAPPA response: $kappa_response" ;;
esac

list_response="$("$DAEMON" query --socket "$SOCKET" LIST)" || die "LIST failed"
[ "$(printf '%s\n' "$list_response" | grep -c analyzed)" = "3" ] \
    || die "LIST does not show 3 analyzed snapshots: $list_response"

# --- a corrupt file must be rejected, not crash the daemon ------------------
printf 'garbage, not a snapshot\n' > "$WORK/staging/.004_bad.txt"
mv "$WORK/staging/.004_bad.txt" "$WATCH/004_bad.txt"
for _ in $(seq 1 100); do
    counters="$("$DAEMON" query --socket "$SOCKET" COUNTERS)"
    [ "$(counter rejected "$counters")" = "1" ] && break
    sleep 0.1
done
[ "$(counter rejected "$counters")" = "1" ] \
    || die "corrupt file was not counted as rejected: $counters"
[ "$(counter analyzed "$counters")" = "3" ] \
    || die "expected analyzed=3 after corrupt file: $counters"
[ "$(counter analysis_failures "$counters")" = "0" ] \
    || die "unexpected analysis failures: $counters"

# --- clean shutdown ---------------------------------------------------------
shutdown_response="$("$DAEMON" query --socket "$SOCKET" SHUTDOWN)" \
    || die "SHUTDOWN query failed: $shutdown_response"
wait "$DAEMON_PID"
status=$?
DAEMON_PID=""
[ "$status" = "0" ] || die "daemon exited with status $status"
grep -q "clean shutdown" "$WORK/daemon.log" \
    || die "daemon log lacks clean-shutdown line"

echo "daemon smoke test: all checks passed"
