#!/usr/bin/env bash
# Dry-run clang-format over the C++ tree against the repo .clang-format.
# Advisory: exits 0 with a notice when clang-format is unavailable, so CI
# images without LLVM tooling don't fail the build on style.
#
#   tools/check_format.sh          # report violations (exit 1 if any)
#   tools/check_format.sh --fix    # rewrite files in place
set -euo pipefail
cd "$(dirname "$0")/.."

clang_format="${CLANG_FORMAT:-}"
if [[ -z "${clang_format}" ]]; then
    for candidate in clang-format clang-format-18 clang-format-17 clang-format-16 \
                     clang-format-15 clang-format-14; do
        if command -v "${candidate}" >/dev/null 2>&1; then
            clang_format="${candidate}"
            break
        fi
    done
fi
if [[ -z "${clang_format}" ]]; then
    echo "notice: clang-format not found; skipping format check (set CLANG_FORMAT to override)"
    exit 0
fi

mapfile -t files < <(git ls-files 'src/**/*.h' 'src/**/*.cpp' 'tests/*.cpp' \
    'bench/*.h' 'bench/*.cpp' 'examples/*.cpp' 'tools/*.cpp')

if [[ "${1:-}" == "--fix" ]]; then
    "${clang_format}" -i "${files[@]}"
    echo "formatted ${#files[@]} files"
    exit 0
fi

"${clang_format}" --dry-run -Werror "${files[@]}" \
    && echo "format OK (${#files[@]} files)"
