#!/usr/bin/env bash
# Runs every bench binary (figures, tables, ablations, extensions — incl.
# the attack_resilience fault-model bench and the scale_family CSR-kernel
# bench, the suite's long pole at a few minutes — and micros) from an
# existing build tree: the list is globbed from bench/*.cpp, so new benches
# are picked up automatically. Figure outputs (CSV + BENCH_*.json + cache)
# land under ./bench_out/ in the current working directory.
#
#   tools/run_all_benches.sh [build-dir]
#
# Scale knobs (read by the binaries, see src/util/env.h):
#   REPRO_SCALE=quick|paper   quick (default) shrinks horizons/sizes for CI
#   REPRO_SEED=<u64>          default 20170327
#   REPRO_THREADS=<n>         analyzer parallelism, default hardware
#   REPRO_SAMPLE_C=<f>        source-sampling fraction, default 0.02 (§5.2)
set -euo pipefail

# Bench sources are globbed from the repo root; the build dir and bench_out/
# stay relative to the caller's working directory.
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

build_dir="${1:-build}"
if [[ ! -d "${build_dir}" ]]; then
    echo "error: build dir '${build_dir}' not found; run: cmake --preset release && cmake --build --preset release" >&2
    exit 1
fi

benches=()
for src in "${repo_root}"/bench/*.cpp; do
    name="$(basename "${src}" .cpp)"
    [[ "${name}" == "common" ]] && continue
    if [[ -x "${build_dir}/${name}" ]]; then
        benches+=("${build_dir}/${name}")
    else
        echo "skip: ${name} (not built — Google Benchmark missing?)" >&2
    fi
done

echo "running ${#benches[@]} bench binaries (REPRO_SCALE=${REPRO_SCALE:-quick})"
failed=0
for bin in "${benches[@]}"; do
    echo
    echo "##### $(basename "${bin}")"
    if ! "${bin}"; then
        echo "FAILED: ${bin}" >&2
        failed=1
    fi
done
exit "${failed}"
