#!/usr/bin/env bash
# CLI contract test for snapshot_tool: every failure path exits non-zero with
# a one-line "error:" diagnostic on stderr, every success path exits zero.
# Run via ctest (snapshot_tool_cli) with SNAPSHOT_TOOL pointing at the binary.
set -u

TOOL="${SNAPSHOT_TOOL:?set SNAPSHOT_TOOL to the snapshot_tool binary}"
WORK="$(mktemp -d /tmp/kadsim_snapshot_cli.XXXXXX)"
trap 'rm -rf "$WORK"' EXIT

failures=0

fail() {
    echo "FAIL: $*" >&2
    failures=$((failures + 1))
}

# expect_ok <label> <args...>: command must exit 0.
expect_ok() {
    local label="$1"
    shift
    if ! "$TOOL" "$@" >"$WORK/out" 2>"$WORK/err"; then
        fail "$label: expected exit 0, got $? (stderr: $(cat "$WORK/err"))"
    fi
}

# expect_err <label> <args...>: command must exit non-zero and print a
# single-line "error:" diagnostic on stderr (usage errors also print usage).
expect_err() {
    local label="$1"
    shift
    if "$TOOL" "$@" >"$WORK/out" 2>"$WORK/err"; then
        fail "$label: expected non-zero exit, got 0"
        return
    fi
    if ! grep -q "error:" "$WORK/err" && ! grep -q "^usage:" "$WORK/err"; then
        fail "$label: no diagnostic on stderr (got: $(cat "$WORK/err"))"
    fi
}

# --- success paths: dump -> analyze -> convert round trip -------------------
expect_ok "dump text" dump --nodes 24 --minutes 30 --out "$WORK/snap.txt"
expect_ok "dump binary" dump --nodes 24 --minutes 30 --binary --out "$WORK/snap.bin"
expect_ok "analyze text" analyze --in "$WORK/snap.txt" --c 0.2
expect_ok "convert to binary" convert --in "$WORK/snap.txt" --to-binary --out "$WORK/rt.bin"
expect_ok "convert back to text" convert --in "$WORK/rt.bin" --to-text --out "$WORK/rt.txt"
expect_ok "analyze round-tripped" analyze --in "$WORK/rt.txt" --c 0.2
if ! cmp -s "$WORK/snap.txt" "$WORK/rt.txt"; then
    fail "text -> binary -> text round trip changed the file"
fi

# --- failure paths ----------------------------------------------------------
expect_err "missing input file" analyze --in "$WORK/does_not_exist.txt"
printf 'this is not a snapshot\n' > "$WORK/garbage.txt"
expect_err "garbage input file" analyze --in "$WORK/garbage.txt"
: > "$WORK/empty.txt"
expect_err "empty input file" analyze --in "$WORK/empty.txt"
head -c 20 "$WORK/snap.bin" > "$WORK/truncated.bin"
expect_err "truncated binary" analyze --in "$WORK/truncated.bin"
if ! grep -q "byte" "$WORK/err"; then
    fail "truncated binary: diagnostic lacks a byte position (got: $(cat "$WORK/err"))"
fi
expect_err "convert with no direction" convert --in "$WORK/snap.txt" --out "$WORK/x"
expect_err "convert with both directions" \
    convert --in "$WORK/snap.txt" --to-binary --to-text --out "$WORK/x"
expect_err "dimacs bad endpoints" dimacs --in "$WORK/snap.txt" --from 5 --to 5
expect_err "dimacs out-of-range endpoint" \
    dimacs --in "$WORK/snap.txt" --from 0 --to 100000
expect_err "unknown command" frobnicate --in "$WORK/snap.txt"
expect_err "no command"

if [ "$failures" -ne 0 ]; then
    echo "$failures snapshot_tool CLI contract check(s) failed" >&2
    exit 1
fi
echo "snapshot_tool CLI contract: all checks passed"
