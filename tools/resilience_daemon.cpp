// resilience_daemon — resilience analysis as a long-running service.
//
//   resilience_daemon serve --socket PATH [--watch DIR] [--cache DIR]
//                           [--threads N] [--lru N] [--queue N]
//                           [--poll-ms MS] [--c FRAC | --exact] [--no-delta]
//   resilience_daemon query  --socket PATH <request words...>
//   resilience_daemon ingest --socket PATH --in FILE [--source NAME]
//
// `serve` runs until SIGINT/SIGTERM or a SHUTDOWN request, then drains the
// analysis queue and exits 0. `query` sends one protocol request (e.g.
// "KAPPA latest", "COUNTERS", "PAIR latest 0 17") and prints the response:
// exit 0 on an OK response, 1 on an ERR response or connection failure.
// `ingest` pushes a snapshot file over the socket (the watched directory is
// the other ingest path). See docs/architecture.md for the protocol.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <unistd.h>

#include "serve/daemon.h"
#include "serve/protocol.h"
#include "util/cli.h"

namespace {

using namespace kadsim;

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

int cmd_serve(const util::CliArgs& args) {
    serve::DaemonConfig config;
    config.socket_path = args.get(std::string("socket"), "");
    config.watch_dir = args.get(std::string("watch"), "");
    config.cache_dir = args.get(std::string("cache"), "");
    config.analysis_threads = static_cast<int>(args.get_int("threads", 1));
    config.hot_capacity = static_cast<std::size_t>(args.get_int("lru", 4));
    config.queue_capacity = static_cast<std::size_t>(args.get_int("queue", 16));
    config.watch_poll_ms = static_cast<int>(args.get_int("poll-ms", 200));
    config.analyzer.sample_c = args.has("exact") ? 1.0 : args.get_double("c", 0.02);
    config.analyzer.use_delta = !args.has("no-delta");
    if (config.socket_path.empty() && config.watch_dir.empty()) {
        std::fprintf(stderr, "error: serve needs --socket and/or --watch\n");
        return 2;
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    // A client vanishing mid-response must not kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);

    serve::Daemon daemon(std::move(config));
    daemon.start();
    std::printf("resilience daemon: serving%s%s%s%s\n",
                daemon.config().socket_path.empty() ? "" : " socket=",
                daemon.config().socket_path.c_str(),
                daemon.config().watch_dir.empty() ? "" : " watch=",
                daemon.config().watch_dir.c_str());
    std::fflush(stdout);
    while (g_signal == 0 && !daemon.stop_requested()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    daemon.stop();
    std::printf("resilience daemon: clean shutdown (%s)\n",
                g_signal != 0 ? "signal" : "SHUTDOWN request");
    return 0;
}

/// One request/response round trip; returns the response ("ERR ..." on
/// transport failures, so callers have a single error path).
std::string round_trip(const std::string& socket_path, const std::string& request) {
    std::string error;
    const int fd = serve::connect_unix(socket_path, error);
    if (fd < 0) return "ERR " + error;
    std::string response = "ERR connection closed before response";
    if (serve::write_frame(fd, request) == serve::FrameResult::kOk) {
        std::string payload;
        if (serve::read_frame(fd, payload) == serve::FrameResult::kOk) {
            response = std::move(payload);
        }
    } else {
        response = "ERR failed to send request";
    }
    ::close(fd);
    return response;
}

int finish(const std::string& response) {
    std::printf("%s\n", response.c_str());
    return response.rfind("OK", 0) == 0 ? 0 : 1;
}

int cmd_query(const util::CliArgs& args) {
    const std::string socket_path = args.get(std::string("socket"), "");
    if (socket_path.empty() || args.positional().size() < 2) {
        std::fprintf(stderr, "error: query needs --socket PATH and a request\n");
        return 2;
    }
    std::string request;
    for (std::size_t i = 1; i < args.positional().size(); ++i) {
        if (i > 1) request += ' ';
        request += args.positional()[i];
    }
    return finish(round_trip(socket_path, request));
}

int cmd_ingest(const util::CliArgs& args) {
    const std::string socket_path = args.get(std::string("socket"), "");
    const std::string in_path = args.get(std::string("in"), "");
    if (socket_path.empty() || in_path.empty()) {
        std::fprintf(stderr, "error: ingest needs --socket PATH and --in FILE\n");
        return 2;
    }
    std::ifstream in(in_path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "error: cannot open snapshot file: %s\n", in_path.c_str());
        return 1;
    }
    std::ostringstream bytes;
    bytes << in.rdbuf();
    if (in.bad()) {
        std::fprintf(stderr, "error: read failed: %s\n", in_path.c_str());
        return 1;
    }
    const std::string source = args.get(std::string("source"), in_path);
    return finish(round_trip(socket_path, "INGEST " + source + "\n" + bytes.str()));
}

void print_usage(const char* program) {
    std::fprintf(
        stderr,
        "usage: %s <serve|query|ingest> [--key value ...]\n"
        "\n"
        "  serve  --socket PATH [--watch DIR] [--cache DIR] [--threads N]\n"
        "         [--lru N] [--queue N] [--poll-ms MS] [--c FRAC | --exact]\n"
        "         [--no-delta]\n"
        "  query  --socket PATH <request words...>   e.g. KAPPA latest\n"
        "  ingest --socket PATH --in FILE [--source NAME]\n"
        "\n"
        "Requests: PING | LIST | COUNTERS | SHUTDOWN | METRICS <id> |\n"
        "          KAPPA <id> | LAMBDA <id> | SCC <id> | ART <id> |\n"
        "          PAIR <id> <u> <v>      (<id> = latest | hash | prefix)\n",
        program);
}

}  // namespace

int main(int argc, char** argv) {
    const kadsim::util::CliArgs args(argc, argv);
    if (args.positional().empty() || args.has("help")) {
        print_usage(args.program().c_str());
        return args.has("help") ? 0 : 2;
    }
    const std::string& command = args.positional().front();
    try {
        if (command == "serve") return cmd_serve(args);
        if (command == "query") return cmd_query(args);
        if (command == "ingest") return cmd_ingest(args);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr, "error: unknown command: %s\n", command.c_str());
    return 2;
}
