#!/usr/bin/env bash
# Runs only the figNN_* binaries — the paper's Figures 1–14 — in order.
# See tools/run_all_benches.sh for the tables/ablations/extension benches
# and the REPRO_* environment knobs.
#
#   tools/run_figs.sh [build-dir]
set -euo pipefail

# Figure sources are globbed from the repo root; the build dir and bench_out/
# stay relative to the caller's working directory.
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

build_dir="${1:-build}"
if [[ ! -d "${build_dir}" ]]; then
    echo "error: build dir '${build_dir}' not found; run: cmake --preset release && cmake --build --preset release" >&2
    exit 1
fi

failed=0
for src in "${repo_root}"/bench/fig*.cpp; do
    name="$(basename "${src}" .cpp)"
    bin="${build_dir}/${name}"
    if [[ ! -x "${bin}" ]]; then
        echo "error: ${bin} not built" >&2
        failed=1
        continue
    fi
    echo
    echo "##### ${name}"
    if ! "${bin}"; then
        echo "FAILED: ${name}" >&2
        failed=1
    fi
done
exit "${failed}"
