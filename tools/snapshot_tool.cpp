// snapshot_tool — offline analysis of routing-table snapshots, mirroring the
// paper's §5.2 batch pipeline (snapshot file → Even transform → DIMACS →
// max-flow on a cluster). Lets a user analyze saved overlays without
// re-simulating, and exports DIMACS problems consumable by external solvers
// such as the original HIPR.
//
//   snapshot_tool dump    --nodes 200 --minutes 120 --out snap.txt [--binary]
//   snapshot_tool analyze --in snap.txt [--exact] [--c 0.02]
//   snapshot_tool cut     --in snap.txt --from 0 --to 17
//   snapshot_tool dimacs  --in snap.txt --from 0 --to 17 --out problem.max
//   snapshot_tool convert --in snap.txt --out snap.bin --to-binary
//   snapshot_tool convert --in snap.bin --out snap.txt --to-text
//
// Snapshot files are auto-detected on read: the text format ("# kadsim
// snapshot" header) and the versioned little-endian binary format (KSNP
// magic; see --help) are interchangeable everywhere a snapshot is consumed.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "core/analyzer.h"
#include "core/resilience.h"
#include "exec/thread_pool.h"
#include "flow/dimacs.h"
#include "flow/even_transform.h"
#include "flow/mincut.h"
#include "graph/graph_stats.h"
#include "graph/snapshot.h"
#include "scen/runner.h"
#include "util/cli.h"
#include "util/env.h"

namespace {

using namespace kadsim;

graph::RoutingSnapshot load_snapshot(const std::string& path) {
    // Binary mode: parse() auto-detects the format, and the KSNP payload
    // must not go through newline translation.
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open snapshot file: " + path);
    graph::RoutingSnapshot snap;
    try {
        snap = graph::RoutingSnapshot::parse(in);
    } catch (const std::exception& e) {
        throw std::runtime_error(path + ": " + e.what());
    }
    // An empty result means the file held no snapshot data at all (empty
    // file, or a format parse() does not recognize as either text or KSNP):
    // every command needs nodes to operate on, so fail here with the path.
    if (snap.nodes.empty()) {
        throw std::runtime_error(path + ": no nodes parsed (empty or unrecognized "
                                        "snapshot file)");
    }
    return snap;
}

void save_snapshot(const graph::RoutingSnapshot& snap, const std::string& path,
                   bool binary) {
    std::ofstream out(path, binary ? std::ios::binary : std::ios::out);
    if (!out) throw std::runtime_error("cannot open output file: " + path);
    if (binary) {
        snap.save_binary(out);
    } else {
        snap.save(out);
    }
    out.flush();
    if (!out) throw std::runtime_error("write failed: " + path);
}

int cmd_dump(const util::CliArgs& args) {
    const int nodes = static_cast<int>(args.get_int("nodes", 200));
    const auto minutes = args.get_int("minutes", 120);
    const std::string out_path = args.get(std::string("out"), "snapshot.txt");

    scen::ScenarioConfig scenario;
    scenario.name = "snapshot-dump";
    scenario.initial_size = nodes;
    scenario.seed = util::repro_seed();
    scenario.kad.k = static_cast<int>(args.get_int("k", 20));
    scenario.kad.s = 1;
    scenario.traffic.enabled = true;
    scenario.phases.end = sim::minutes(minutes);
    scenario.phases.setup_end = std::min(scenario.phases.setup_end, scenario.phases.end);
    scenario.phases.stabilization_end =
        std::min(scenario.phases.stabilization_end, scenario.phases.end);

    scen::Runner runner(scenario);
    runner.step_to(sim::minutes(minutes));
    const auto snap = runner.snapshot();
    save_snapshot(snap, out_path, args.has("binary"));
    std::printf("wrote %zu nodes to %s (t=%lld min)\n", snap.nodes.size(),
                out_path.c_str(), static_cast<long long>(minutes));
    return 0;
}

int cmd_convert(const util::CliArgs& args) {
    const bool to_binary = args.has("to-binary");
    const bool to_text = args.has("to-text");
    if (to_binary == to_text) {
        std::fprintf(stderr,
                     "error: convert needs exactly one of --to-binary / --to-text\n");
        return 2;
    }
    const std::string in_path = args.get(std::string("in"), "snapshot.txt");
    const std::string out_path =
        args.get(std::string("out"), to_binary ? "snapshot.bin" : "snapshot.txt");
    const auto snap = load_snapshot(in_path);
    save_snapshot(snap, out_path, to_binary);
    std::printf("converted %s -> %s (%zu nodes, %s)\n", in_path.c_str(),
                out_path.c_str(), snap.nodes.size(),
                to_binary ? "binary" : "text");
    return 0;
}

int cmd_analyze(const util::CliArgs& args) {
    const auto snap = load_snapshot(args.get(std::string("in"), "snapshot.txt"));
    core::AnalyzerOptions options;
    options.sample_c = args.has("exact") ? 1.0 : args.get_double("c", 0.02);
    exec::ThreadPool pool(util::repro_threads());
    const auto sample = core::ConnectivityAnalyzer(options).analyze(snap, &pool);

    const auto g = snap.to_digraph();
    const auto out_deg = graph::out_degree_summary(g);
    const auto in_deg = graph::in_degree_summary(g);

    std::printf("snapshot: t=%.0f min, n=%d, m=%lld\n", sample.time_min, sample.n,
                static_cast<long long>(sample.m));
    std::printf("degrees: out min/mean/max = %d/%.1f/%d   in = %d/%.1f/%d\n",
                out_deg.min, out_deg.mean, out_deg.max, in_deg.min, in_deg.mean,
                in_deg.max);
    std::printf("reciprocity: %.3f   strongly connected components: %d\n",
                sample.reciprocity, sample.scc_count);
    std::printf("vertex connectivity: kappa_min=%d kappa_avg=%.2f (%llu pairs%s)\n",
                sample.kappa_min, sample.kappa_avg,
                static_cast<unsigned long long>(sample.pairs_evaluated),
                options.sample_c >= 1.0 ? ", exact" : ", sampled");
    std::printf("resilience: r = %d  (%s)\n",
                core::resilience_from_connectivity(sample.kappa_min),
                core::resilience_verdict(sample.kappa_min,
                                         static_cast<int>(args.get_int("attackers", 1)))
                    .c_str());
    return 0;
}

int cmd_cut(const util::CliArgs& args) {
    const auto snap = load_snapshot(args.get(std::string("in"), "snapshot.txt"));
    const auto g = snap.to_digraph();
    int from = static_cast<int>(args.get_int("from", -1));
    int to = static_cast<int>(args.get_int("to", -1));
    if (from < 0 || to < 0) {
        // No pair given: use the first non-adjacent pair (κ is only defined
        // for those).
        for (int u = 0; u < g.vertex_count() && from < 0; ++u) {
            for (int v = 0; v < g.vertex_count(); ++v) {
                if (u != v && !g.has_edge(u, v)) {
                    from = u;
                    to = v;
                    break;
                }
            }
        }
        if (from < 0) {
            std::fprintf(stderr, "error: graph is complete: kappa = n-1, no cut\n");
            return 1;
        }
    }
    if (from >= g.vertex_count() || to >= g.vertex_count() || from == to ||
        g.has_edge(from, to)) {
        std::fprintf(stderr, "error: need two distinct, non-adjacent vertex indices\n");
        return 1;
    }
    const auto cut = flow::min_vertex_cut(g, from, to);
    std::printf("kappa(%d, %d) = %zu\nminimum vertex cut (addresses):", from, to,
                cut.size());
    for (const int v : cut) {
        std::printf(" %u", snap.nodes[static_cast<std::size_t>(v)].address);
    }
    std::printf("\n");
    return 0;
}

int cmd_dimacs(const util::CliArgs& args) {
    const auto snap = load_snapshot(args.get(std::string("in"), "snapshot.txt"));
    const auto g = snap.to_digraph();
    const int from = static_cast<int>(args.get_int("from", 0));
    const int to = static_cast<int>(args.get_int("to", g.vertex_count() - 1));
    if (from < 0 || to < 0 || from >= g.vertex_count() || to >= g.vertex_count() ||
        from == to) {
        std::fprintf(stderr,
                     "error: --from/--to must be distinct vertex indices in [0, %d)\n",
                     g.vertex_count());
        return 1;
    }
    const std::string out_path = args.get(std::string("out"), "problem.max");
    const auto net = flow::even_transform(g);
    std::ofstream out(out_path);
    if (!out) throw std::runtime_error("cannot open output file: " + out_path);
    flow::write_dimacs(net, flow::out_vertex(from), flow::in_vertex(to), out);
    out.flush();
    if (!out) throw std::runtime_error("write failed: " + out_path);
    std::printf("wrote DIMACS max-flow problem (%d vertices, %d arcs) to %s\n",
                net.vertex_count(), net.arc_count() / 2, out_path.c_str());
    return 0;
}

}  // namespace

namespace {

void print_usage(const char* program) {
    std::fprintf(
        stderr,
        "usage: %s <dump|analyze|cut|dimacs|convert> [--key value ...]\n"
        "\n"
        "  dump    --nodes N --minutes M --out FILE [--binary]\n"
        "  analyze --in FILE [--exact] [--c FRAC] [--attackers N]\n"
        "  cut     --in FILE [--from U --to V]\n"
        "  dimacs  --in FILE [--from U --to V] --out FILE\n"
        "  convert --in FILE --out FILE (--to-binary | --to-text)\n"
        "\n"
        "Snapshot files are read with format auto-detection (text or binary).\n"
        "Binary snapshot layout (all fields little-endian):\n"
        "  char[4]  magic    'K' 'S' 'N' 'P'\n"
        "  u32      version  currently 1\n"
        "  i64      time_ms  capture instant (simulated ms)\n"
        "  u64      n        node count\n"
        "  u64      m        total contact count\n"
        "  u32[n]   addresses\n"
        "  u32[n+1] offsets   CSR row starts into contacts (omitted when n=0)\n"
        "  u32[m]   contacts  global addresses, rows in offsets order\n",
        program);
}

}  // namespace

int main(int argc, char** argv) {
    const kadsim::util::CliArgs args(argc, argv);
    if (args.positional().empty() || args.has("help")) {
        print_usage(args.program().c_str());
        return args.has("help") ? 0 : 2;
    }
    const std::string& command = args.positional().front();
    try {
        if (command == "dump") return cmd_dump(args);
        if (command == "analyze") return cmd_analyze(args);
        if (command == "cut") return cmd_cut(args);
        if (command == "dimacs") return cmd_dimacs(args);
        if (command == "convert") return cmd_convert(args);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr, "error: unknown command: %s\n", command.c_str());
    return 2;
}
