// Quickstart: build a Kademlia overlay, let it stabilize, measure its vertex
// connectivity, and turn that into a resilience statement (Eq. 2).
//
//   ./build/quickstart [--nodes 100] [--k 20] [--minutes 180]
#include <cstdio>

#include "core/analyzer.h"
#include "core/resilience.h"
#include "exec/thread_pool.h"
#include "scen/runner.h"
#include "util/cli.h"
#include "util/env.h"

int main(int argc, char** argv) {
    using namespace kadsim;
    const util::CliArgs args(argc, argv);
    const int nodes = static_cast<int>(args.get_int("nodes", 100));
    const int k = static_cast<int>(args.get_int("k", 20));
    const auto minutes = args.get_int("minutes", 180);

    std::printf("kadsim quickstart: %d nodes, bucket size k=%d, %lld simulated "
                "minutes\n\n",
                nodes, k, static_cast<long long>(minutes));

    // 1. Describe the scenario: who joins, what traffic, which failures.
    scen::ScenarioConfig scenario;
    scenario.name = "quickstart";
    scenario.initial_size = nodes;
    scenario.seed = util::repro_seed();
    scenario.kad.k = k;
    scenario.kad.s = 1;               // evict unresponsive contacts quickly
    scenario.traffic.enabled = true;  // 10 lookups + 1 dissemination /node-min
    scenario.phases.set_end(sim::minutes(minutes));

    // 2. Run it.
    scen::Runner runner(scenario);
    runner.step_to(sim::minutes(minutes));
    const auto totals = runner.totals();
    std::printf("simulated: %llu events, %llu RPCs (%llu failed), %llu lookups\n",
                static_cast<unsigned long long>(totals.events_executed),
                static_cast<unsigned long long>(totals.protocol.rpcs_sent),
                static_cast<unsigned long long>(totals.protocol.rpcs_failed),
                static_cast<unsigned long long>(totals.protocol.lookups_started));

    // 3. Snapshot the routing tables and compute the vertex connectivity
    //    (Even's transformation + max-flow, sampled per the paper's §5.2).
    core::AnalyzerOptions options;
    options.sample_c = 0.05;
    const core::ConnectivityAnalyzer analyzer(options);
    exec::ThreadPool pool(util::repro_threads());
    const auto sample = analyzer.analyze(runner.snapshot(), &pool);

    std::printf("\nconnectivity graph: n=%d, m=%lld, reciprocity=%.3f\n", sample.n,
                static_cast<long long>(sample.m), sample.reciprocity);
    std::printf("vertex connectivity: kappa_min=%d, kappa_avg=%.1f\n",
                sample.kappa_min, sample.kappa_avg);

    // 4. Resilience verdict (paper §4.5: kappa > r >= a).
    const int r = core::resilience_from_connectivity(sample.kappa_min);
    std::printf("\nresilience r = kappa - 1 = %d\n", r);
    for (const int attackers : {1, k / 2, k - 1, k}) {
        std::printf("  attacker budget a=%2d -> %s\n", attackers,
                    core::resilience_verdict(sample.kappa_min, attackers).c_str());
    }
    std::printf("\nrule of thumb from the paper: pick k > a (with slack under "
                "churn); k=%d gives you about k node-disjoint paths.\n",
                k);
    return 0;
}
