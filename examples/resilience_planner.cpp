// Resilience planner: the tool a deployment engineer actually wants.
// Given an attacker budget, environment (loss, churn) and fleet size, sweep
// the bucket size k, simulate each candidate, and recommend the smallest k
// whose *churn-phase minimum* connectivity still tolerates the budget.
//
//   ./build/resilience_planner --nodes 150 --attackers 6 --loss low
//       --churn 1 --minutes 240
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/resilience.h"
#include "util/cli.h"
#include "util/env.h"
#include "util/table.h"

namespace {

kadsim::net::LossLevel parse_loss(const std::string& name) {
    using kadsim::net::LossLevel;
    if (name == "none") return LossLevel::kNone;
    if (name == "low") return LossLevel::kLow;
    if (name == "medium") return LossLevel::kMedium;
    if (name == "high") return LossLevel::kHigh;
    throw std::invalid_argument("--loss expects none|low|medium|high");
}

}  // namespace

int main(int argc, char** argv) {
    using namespace kadsim;
    const util::CliArgs args(argc, argv);
    const int nodes = static_cast<int>(args.get_int("nodes", 150));
    const int attackers = static_cast<int>(args.get_int("attackers", 6));
    const int churn_rate = static_cast<int>(args.get_int("churn", 1));
    const auto minutes = args.get_int("minutes", 240);
    const auto loss = parse_loss(args.get(std::string("loss"), "none"));

    std::printf("Resilience planner: %d nodes, attacker budget a=%d, loss=%s, "
                "churn %d/%d, horizon %lld min\n",
                nodes, attackers, args.get(std::string("loss"), "none").c_str(),
                churn_rate, churn_rate, static_cast<long long>(minutes));
    std::printf("requirement (Eq. 2): kappa(D) > a=%d at every snapshot of the "
                "churn phase\n\n",
                attackers);

    // Candidate ks around the paper guidance.
    const int guess = core::recommended_bucket_size(attackers, churn_rate >= 5);
    std::vector<int> candidates;
    for (const int k : {attackers + 1, guess, guess + 5, 2 * guess}) {
        if (candidates.empty() || candidates.back() != k) candidates.push_back(k);
    }

    util::TextTable table({"k", "min kappa (churn)", "mean kappa_min",
                           "tolerates a?", "headroom"});
    int best_k = -1;
    for (const int k : candidates) {
        core::ExperimentConfig cfg;
        cfg.scenario.name = "plan-k" + std::to_string(k);
        cfg.scenario.initial_size = nodes;
        cfg.scenario.seed = util::repro_seed() + 3;
        cfg.scenario.kad.k = k;
        cfg.scenario.kad.s = 1;
        cfg.scenario.loss = loss;
        cfg.scenario.traffic.enabled = true;
        cfg.scenario.fault.churn = scen::ChurnSpec{churn_rate, churn_rate};
        cfg.scenario.phases.set_end(sim::minutes(minutes));
        cfg.snapshot_interval = sim::minutes(30);
        cfg.analyzer.sample_c = 0.05;
        cfg.analyzer.min_sources = 4;
        cfg.analyzer.threads = util::repro_threads();

        std::printf("simulating k=%d ...\n", k);
        const auto series = core::run_experiment(cfg);
        const auto summary = series.kappa_min_summary(120.0, 1e18);
        const int worst = static_cast<int>(summary.min());
        const bool ok = core::tolerates(worst, attackers);
        if (ok && best_k < 0) best_k = k;
        table.add_row({std::to_string(k), std::to_string(worst),
                       util::TextTable::num(summary.mean(), 1), ok ? "yes" : "NO",
                       std::to_string(worst - attackers)});
    }

    std::printf("\n%s\n", table.to_string().c_str());
    if (best_k > 0) {
        std::printf("recommendation: k=%d (smallest candidate whose WORST "
                    "churn-phase connectivity still exceeds a=%d)\n",
                    best_k, attackers);
    } else {
        std::printf("no candidate k tolerated a=%d at every snapshot — raise k "
                    "beyond %d, reduce churn, or shrink the attack surface.\n",
                    attackers, candidates.back());
    }
    std::printf("note: the paper warns that under strong churn the minimum\n"
                "connectivity dips below k (§5.5.4); the planner therefore sizes\n"
                "against the measured minimum, not against k itself.\n");
    return 0;
}
