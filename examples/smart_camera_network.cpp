// Smart camera network (paper §1): a few hundred collaborating cameras
// surveil an industrial complex. Cameras fail (weather, lenses, vandalism)
// and some are publicly reachable, so an attacker may compromise a few.
//
// This example sizes the Kademlia bucket parameter for a target attacker
// budget, tracks connectivity through a maintenance window (rolling firmware
// reboots = churn), and names the cameras that form the current minimum cut
// — the ones a smart attacker would go for first.
//
//   ./build/examples/smart_camera_network [--cameras 250] [--attackers 8]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/analyzer.h"
#include "core/resilience.h"
#include "exec/thread_pool.h"
#include "flow/even_transform.h"
#include "flow/mincut.h"
#include "flow/vertex_connectivity.h"
#include "scen/runner.h"
#include "util/cli.h"
#include "util/env.h"

int main(int argc, char** argv) {
    using namespace kadsim;
    const util::CliArgs args(argc, argv);
    const int cameras = static_cast<int>(args.get_int("cameras", 250));
    const int attackers = static_cast<int>(args.get_int("attackers", 8));

    std::printf("Smart camera network: %d cameras, attacker budget a=%d\n\n",
                cameras, attackers);

    // Size k per the paper's guidance: k > a, extra slack because the
    // maintenance window churns cameras.
    const int k = core::recommended_bucket_size(attackers, /*strong_churn=*/true);
    std::printf("paper guidance (kappa tracks k, Eq. 2): choose k=%d\n\n", k);

    scen::ScenarioConfig scenario;
    scenario.name = "smart-cameras";
    scenario.initial_size = cameras;
    scenario.seed = util::repro_seed() + 1;
    scenario.kad.k = k;
    scenario.kad.s = 1;
    scenario.traffic.enabled = true;  // detections + tracking hand-offs
    scenario.fault.churn = scen::ChurnSpec{1, 1};  // rolling reboots from t=120
    scenario.phases.end = sim::minutes(300);

    scen::Runner runner(scenario);
    core::AnalyzerOptions options;
    options.sample_c = 0.05;
    const core::ConnectivityAnalyzer analyzer(options);
    exec::ThreadPool pool(util::repro_threads());

    std::printf("%8s %8s %10s %10s  verdict (a=%d)\n", "t(min)", "cameras",
                "kappa_min", "kappa_avg", attackers);
    for (const long long t : {60LL, 120LL, 180LL, 240LL, 300LL}) {
        runner.step_to(sim::minutes(t));
        const auto sample = analyzer.analyze(runner.snapshot(), &pool);
        std::printf("%8lld %8d %10d %10.1f  %s\n", t, sample.n, sample.kappa_min,
                    sample.kappa_avg,
                    core::tolerates(sample.kappa_min, attackers) ? "OK"
                                                                 : "AT RISK");
    }

    // Name the weakest pair and its minimum cut: which cameras would an
    // attacker target to split the network?
    const auto snap = runner.snapshot();
    const auto g = snap.to_digraph();
    flow::ConnectivityOptions copts;
    copts.sample_fraction = 0.05;
    copts.min_sources = 4;
    copts.pool = &pool;
    const auto result = flow::vertex_connectivity(g, copts);

    // Find one pair realizing the minimum and extract its cut. The minimum is
    // pinned by low-out-degree vertices (§5.2), so only scan those sources.
    std::vector<int> sources(static_cast<std::size_t>(g.vertex_count()));
    for (int u = 0; u < g.vertex_count(); ++u) sources[static_cast<std::size_t>(u)] = u;
    std::sort(sources.begin(), sources.end(),
              [&g](int a, int b) { return g.out_degree(a) < g.out_degree(b); });
    sources.resize(std::min<std::size_t>(sources.size(), 8));

    // One Even transform + workspace, reused across the whole pair scan (the
    // touched-arc reset makes each probe cost only the arcs the last flow
    // moved).
    const flow::FlowNetwork even_net = flow::even_transform(g);
    flow::FlowWorkspace workspace(even_net);
    int worst_u = -1, worst_v = -1;
    for (const int u : sources) {
        for (int v = 0; v < g.vertex_count(); ++v) {
            if (u == v || g.has_edge(u, v)) continue;
            if (flow::pair_vertex_connectivity(g, even_net, workspace, u, v) ==
                result.kappa_min) {
                worst_u = u;
                worst_v = v;
                break;
            }
        }
        if (worst_u >= 0) break;
    }
    if (worst_u >= 0) {
        const auto cut = flow::min_vertex_cut(g, worst_u, worst_v);
        std::printf("\nweakest pair: camera #%u -> camera #%u (kappa=%d)\n",
                    snap.nodes[static_cast<std::size_t>(worst_u)].address,
                    snap.nodes[static_cast<std::size_t>(worst_v)].address,
                    result.kappa_min);
        std::printf("minimum cut (harden or replicate these cameras):");
        for (const int c : cut) {
            std::printf(" #%u", snap.nodes[static_cast<std::size_t>(c)].address);
        }
        std::printf("\n");
    }

    std::printf("\nfinal: kappa_min=%d -> tolerates r=%d compromised cameras "
                "(budget a=%d): %s\n",
                result.kappa_min,
                core::resilience_from_connectivity(result.kappa_min), attackers,
                core::tolerates(result.kappa_min, attackers) ? "resilient"
                                                             : "NOT resilient");
    return 0;
}
