// Distributed intrusion detection system (paper §1): sensors across many
// corporate branches exchange alerts over a Kademlia overlay. Branch WAN
// links lose packets, so the operator must pick the staleness limit s:
// react fast to dead sensors (s=1) or tolerate flaky links (s=5).
//
// The paper's surprising result (§5.8): with s=1, message loss *increases*
// connectivity — lost messages evict contacts, freed bucket slots let the
// overlay re-wire into a denser graph. This example reproduces the
// trade-off on an IDS-sized deployment and reports alert-dissemination
// health alongside connectivity.
//
//   ./build/examples/intrusion_detection [--sensors 400] [--loss medium]
#include <cstdio>
#include <string>

#include "core/analyzer.h"
#include "core/resilience.h"
#include "exec/thread_pool.h"
#include "scen/runner.h"
#include "util/cli.h"
#include "util/env.h"
#include "util/table.h"

namespace {

kadsim::net::LossLevel parse_loss(const std::string& name) {
    using kadsim::net::LossLevel;
    if (name == "none") return LossLevel::kNone;
    if (name == "low") return LossLevel::kLow;
    if (name == "medium") return LossLevel::kMedium;
    if (name == "high") return LossLevel::kHigh;
    throw std::invalid_argument("--loss expects none|low|medium|high");
}

}  // namespace

int main(int argc, char** argv) {
    using namespace kadsim;
    const util::CliArgs args(argc, argv);
    const int sensors = static_cast<int>(args.get_int("sensors", 400));
    const auto loss_name = args.get(std::string("loss"), "medium");
    const net::LossLevel loss = parse_loss(loss_name);

    std::printf("Distributed IDS: %d sensors, WAN loss scenario '%s'\n\n", sensors,
                loss_name.c_str());

    util::TextTable table({"s", "kappa_min", "kappa_avg", "r = kappa-1",
                           "alerts found", "rpc failure rate"});
    exec::ThreadPool pool(util::repro_threads());
    for (const int s : {1, 5}) {
        scen::ScenarioConfig scenario;
        scenario.name = "ids-s" + std::to_string(s);
        scenario.initial_size = sensors;
        scenario.seed = util::repro_seed() + 2;
        scenario.kad.k = 20;
        scenario.kad.s = s;
        scenario.loss = loss;
        scenario.traffic.enabled = true;  // alert lookups + disseminations
        scenario.phases.end = sim::minutes(300);

        scen::Runner runner(scenario);
        runner.step_to(sim::minutes(300));

        core::AnalyzerOptions options;
        options.sample_c = 0.05;
        const auto sample =
            core::ConnectivityAnalyzer(options).analyze(runner.snapshot(), &pool);
        const auto totals = runner.totals();
        const double fail_rate =
            totals.protocol.rpcs_sent == 0
                ? 0.0
                : static_cast<double>(totals.protocol.rpcs_failed) /
                      static_cast<double>(totals.protocol.rpcs_sent);

        table.add_row({std::to_string(s), std::to_string(sample.kappa_min),
                       util::TextTable::num(sample.kappa_avg, 1),
                       std::to_string(core::resilience_from_connectivity(
                           sample.kappa_min)),
                       std::to_string(totals.protocol.values_found),
                       util::TextTable::num(fail_rate * 100, 1) + "%"});
    }
    std::printf("%s\n", table.to_string().c_str());

    std::printf("reading the table (paper §5.8):\n"
                " * s=1 turns loss into re-wiring: higher connectivity, but each\n"
                "   lost RPC also evicts a live contact (more churn in tables);\n"
                " * s=5 damps the effect: connectivity nearer k=20, tables calmer;\n"
                " * dissemination health ('alerts found') shows the cost side of\n"
                "   loss that connectivity alone hides (paper §5.8.2 remark).\n");
    return 0;
}
