#include "kad/node_id.h"

namespace kadsim::kad {

namespace {

/// Zeroes every bit ≥ bits.
constexpr void mask_to_bits(std::array<std::uint64_t, 3>& limbs, int bits) noexcept {
    for (int limb = 0; limb < 3; ++limb) {
        const int lo_bit = limb * 64;
        const auto s = static_cast<std::size_t>(limb);
        if (bits <= lo_bit) {
            limbs[s] = 0;
        } else if (bits < lo_bit + 64) {
            limbs[s] &= (~0ULL) >> (64 - (bits - lo_bit));
        }
    }
}

}  // namespace

NodeId NodeId::from_digest(const util::Sha1Digest& digest, int bits) noexcept {
    KADSIM_ASSERT(bits > 0 && bits <= kMaxBits);
    // Digest bytes are big-endian: digest[0] holds bits 159..152.
    std::array<std::uint64_t, 3> limbs{0, 0, 0};
    for (int bit = 0; bit < kMaxBits; ++bit) {
        const int byte_index = (kMaxBits - 1 - bit) / 8;
        const int bit_in_byte = bit % 8;
        const bool set =
            ((digest[static_cast<std::size_t>(byte_index)] >> bit_in_byte) & 1) != 0;
        if (set) {
            limbs[static_cast<std::size_t>(bit / 64)] |= 1ULL << (bit % 64);
        }
    }
    // Keep the top `bits` bits of the 160-bit integer: shift right.
    const int shift = kMaxBits - bits;
    if (shift > 0) {
        NodeId full = from_limbs(limbs[0], limbs[1], limbs[2]);
        std::array<std::uint64_t, 3> shifted{0, 0, 0};
        for (int bit = 0; bit < bits; ++bit) {
            if (full.get_bit(bit + shift)) {
                shifted[static_cast<std::size_t>(bit / 64)] |= 1ULL << (bit % 64);
            }
        }
        limbs = shifted;
    }
    mask_to_bits(limbs, bits);
    return from_limbs(limbs[0], limbs[1], limbs[2]);
}

NodeId NodeId::random(util::Rng& rng, int bits) noexcept {
    KADSIM_ASSERT(bits > 0 && bits <= kMaxBits);
    std::array<std::uint64_t, 3> limbs = {rng.next_u64(), rng.next_u64(),
                                          rng.next_u64()};
    mask_to_bits(limbs, bits);
    return from_limbs(limbs[0], limbs[1], limbs[2]);
}

NodeId NodeId::random_in_bucket(const NodeId& self, int bucket, util::Rng& rng,
                                int bits) noexcept {
    KADSIM_ASSERT(bucket >= 0 && bucket < bits);
    // distance = 2^bucket + uniform[0, 2^bucket): bit `bucket` set, lower bits
    // random, higher bits zero.
    NodeId dist;
    if (bucket > 0) dist = NodeId::random(rng, bucket);
    dist.set_bit(bucket, true);
    return self.distance_to(dist);  // self XOR dist
}

std::string NodeId::to_hex() const {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    out.reserve(40);
    bool started = false;
    for (int limb = 2; limb >= 0; --limb) {
        for (int nibble = 15; nibble >= 0; --nibble) {
            const auto v = static_cast<unsigned>(
                (limbs_[static_cast<std::size_t>(limb)] >> (nibble * 4)) & 0xF);
            if (!started && v == 0 && !(limb == 0 && nibble == 0)) continue;
            started = true;
            out.push_back(kDigits[v]);
        }
    }
    return out;
}

}  // namespace kadsim::kad
