#include "kad/node_arena.h"

#include "util/assert.h"

namespace kadsim::kad {

NodeArena::NodeArena(const KademliaConfig& config, sim::Simulator& sim,
                     net::Network& network)
    : config_(config),
      sim_(sim),
      network_(network),
      buckets_(config.k),
      lookup_arena_(
          LookupArena::Params{config.k, config.alpha, 0, config.lookup_boost}) {
    config.validate();
}

KademliaNode* NodeArena::add_node(NodeId id, net::Address address) {
    KADSIM_ASSERT_MSG(address == nodes_.size(), "addresses must be dense");
    ids_.push_back(id);
    alive_.push_back(1);
    // Stream draw sits exactly where the old per-object constructor drew it:
    // after endpoint registration, before join().
    rngs_.push_back(sim_.split_rng());
    tables_.emplace_back(id, config_, buckets_);
    bootstraps_.emplace_back();
    task_gen_.push_back(0);
    counters_.emplace_back();
    lookups_.emplace_back();
    storage_.emplace_back();
    if (config_.refresh_policy == RefreshPolicy::kStaleOnly) {
        bucket_last_lookup_.resize(ids_.size() * static_cast<std::size_t>(config_.b),
                                   0);
    }
    nodes_.push_back(KademliaNode(*this, address));
    return &nodes_.back();
}

void NodeArena::arm_task(net::Address address, TaskKind kind, sim::SimTime at,
                         sim::SimTime period, std::uint32_t generation) {
    sim_.schedule_at(at, [this, address, kind, period, generation] {
        if (task_gen_[address] != generation) return;  // cancelled by crash
        run_task(address, kind);
        if (task_gen_[address] != generation) return;
        arm_task(address, kind, sim_.now() + period, period, generation);
    });
}

void NodeArena::run_task(net::Address address, TaskKind kind) {
    KademliaNode& node = nodes_[address];
    switch (kind) {
        case TaskKind::kRefresh:
            node.do_refresh();
            break;
        case TaskKind::kStorageGc:
            node.gc_storage();
            break;
        case TaskKind::kAdvertise:
            node.do_advertise();
            break;
    }
}

std::uint64_t NodeArena::memory_bytes() const noexcept {
    std::uint64_t bytes = 0;
    bytes += ids_.capacity() * sizeof(NodeId);
    bytes += alive_.capacity() * sizeof(std::uint8_t);
    bytes += rngs_.capacity() * sizeof(util::Rng);
    bytes += tables_.capacity() * sizeof(RoutingTable);
    bytes += bootstraps_.capacity() * sizeof(std::optional<Contact>);
    bytes += task_gen_.capacity() * sizeof(std::uint32_t);
    bytes += counters_.capacity() * sizeof(NodeCounters);
    bytes += bucket_last_lookup_.capacity() * sizeof(sim::SimTime);
    bytes += nodes_.size() * sizeof(KademliaNode);
    bytes += lookups_.capacity() * sizeof(NodeLookups);
    for (const auto& l : lookups_) {
        bytes += l.slots.capacity() * sizeof(KademliaNode::ActiveLookup);
        bytes += l.free_slots.capacity() * sizeof(std::uint32_t);
    }
    bytes += storage_.capacity() * sizeof(std::vector<KademliaNode::StoredObject>);
    for (const auto& s : storage_) {
        bytes += s.capacity() * sizeof(KademliaNode::StoredObject);
    }
    bytes += buckets_.memory_bytes();
    bytes += pending_.memory_bytes();
    bytes += lookup_arena_.memory_bytes();
    bytes += contact_scratch_.capacity() * sizeof(contact_scratch_[0]);
    for (const auto& buf : contact_scratch_) {
        bytes += buf->capacity() * sizeof(Contact);
    }
    bytes += traffic_.hops.memory_bytes() + traffic_.latency_ms.memory_bytes();
    return bytes;
}

}  // namespace kadsim::kad
