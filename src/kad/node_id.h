// Kademlia identifiers and the XOR metric (paper §4.1).
//
// Identifiers are unsigned integers of configurable bit-length b ≤ 160
// (the paper evaluates b ∈ {80, 160}); distance between two identifiers is
// their bitwise XOR interpreted as an integer. The bucket index of a non-zero
// distance d is ⌊log2 d⌋, i.e. contacts with 2^i ≤ d < 2^{i+1} live in
// bucket i.
#ifndef KADSIM_KAD_NODE_ID_H
#define KADSIM_KAD_NODE_ID_H

#include <array>
#include <bit>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "util/assert.h"
#include "util/rng.h"
#include "util/sha1.h"

namespace kadsim::kad {

/// Maximum supported identifier width in bits (SHA-1 digest size).
inline constexpr int kMaxBits = 160;

/// A b-bit identifier stored in three little-endian 64-bit limbs
/// (limb 0 = least significant). Bits ≥ b are always zero.
class NodeId {
public:
    constexpr NodeId() noexcept = default;

    /// The identifier with the given limbs (caller guarantees bits ≥ b are 0).
    static constexpr NodeId from_limbs(std::uint64_t lo, std::uint64_t mid,
                                       std::uint64_t hi) noexcept {
        NodeId id;
        id.limbs_ = {lo, mid, hi};
        return id;
    }

    /// Truncates a SHA-1 digest to the top `bits` bits (big-endian digest →
    /// integer, then shifted down so the result is < 2^bits).
    static NodeId from_digest(const util::Sha1Digest& digest, int bits) noexcept;

    /// Hashes arbitrary bytes/text into an id (the paper's "identifiers are
    /// generated ... using a cryptographically secure hash function").
    static NodeId hash_of(std::string_view text, int bits) noexcept {
        return from_digest(util::sha1(text), bits);
    }

    /// Uniformly random b-bit id.
    static NodeId random(util::Rng& rng, int bits) noexcept;

    /// Uniformly random id whose XOR distance d from `self` satisfies
    /// 2^bucket ≤ d < 2^{bucket+1} — the id range of k-bucket `bucket`
    /// (used for bucket refreshes, paper §5.3 "Network Traffic").
    static NodeId random_in_bucket(const NodeId& self, int bucket, util::Rng& rng,
                                   int bits) noexcept;

    [[nodiscard]] constexpr bool is_zero() const noexcept {
        return (limbs_[0] | limbs_[1] | limbs_[2]) == 0;
    }

    /// XOR distance (paper §4.1: dist(a,b) = a ⊕ b).
    [[nodiscard]] constexpr NodeId distance_to(const NodeId& other) const noexcept {
        return from_limbs(limbs_[0] ^ other.limbs_[0], limbs_[1] ^ other.limbs_[1],
                          limbs_[2] ^ other.limbs_[2]);
    }

    /// Index of the highest set bit (⌊log2⌋); id must be non-zero.
    [[nodiscard]] int bit_length_minus_one() const noexcept {
        KADSIM_ASSERT(!is_zero());
        if (limbs_[2] != 0) return 128 + 63 - std::countl_zero(limbs_[2]);
        if (limbs_[1] != 0) return 64 + 63 - std::countl_zero(limbs_[1]);
        return 63 - std::countl_zero(limbs_[0]);
    }

    /// k-bucket index for a contact with this XOR distance (distance != 0).
    [[nodiscard]] int bucket_index() const noexcept { return bit_length_minus_one(); }

    [[nodiscard]] constexpr bool get_bit(int i) const noexcept {
        return ((limbs_[static_cast<std::size_t>(i / 64)] >> (i % 64)) & 1ULL) != 0;
    }

    constexpr void set_bit(int i, bool value) noexcept {
        const auto limb = static_cast<std::size_t>(i / 64);
        const std::uint64_t mask = 1ULL << (i % 64);
        if (value) {
            limbs_[limb] |= mask;
        } else {
            limbs_[limb] &= ~mask;
        }
    }

    /// Zeroes bits [0, n) in one limb pass (hot path of closest-contact
    /// selection).
    constexpr void clear_low_bits(int n) noexcept {
        for (int limb = 0; limb < 3; ++limb) {
            const int lo = limb * 64;
            const auto s = static_cast<std::size_t>(limb);
            if (n >= lo + 64) {
                limbs_[s] = 0;
            } else if (n > lo) {
                limbs_[s] &= ~((~0ULL) >> (64 - (n - lo)));
            }
        }
    }

    /// Total order by integer value — exactly the XOR-metric comparison when
    /// applied to distances.
    friend constexpr std::strong_ordering operator<=>(const NodeId& a,
                                                      const NodeId& b) noexcept {
        for (int i = 2; i >= 0; --i) {
            const auto s = static_cast<std::size_t>(i);
            if (a.limbs_[s] != b.limbs_[s]) {
                return a.limbs_[s] < b.limbs_[s] ? std::strong_ordering::less
                                                 : std::strong_ordering::greater;
            }
        }
        return std::strong_ordering::equal;
    }

    friend constexpr bool operator==(const NodeId& a, const NodeId& b) noexcept {
        return a.limbs_ == b.limbs_;
    }

    /// true iff dist(this, a) < dist(this, b): "a is closer to me than b".
    [[nodiscard]] constexpr bool closer(const NodeId& a, const NodeId& b) const noexcept {
        return distance_to(a) < distance_to(b);
    }

    [[nodiscard]] std::string to_hex() const;

    [[nodiscard]] constexpr std::uint64_t limb(int i) const noexcept {
        return limbs_[static_cast<std::size_t>(i)];
    }

    /// 64-bit hash for unordered containers (ids are already uniform).
    [[nodiscard]] constexpr std::uint64_t hash() const noexcept {
        return limbs_[0] ^ (limbs_[1] * 0x9E3779B97F4A7C15ULL) ^
               (limbs_[2] * 0xC2B2AE3D27D4EB4FULL);
    }

private:
    std::array<std::uint64_t, 3> limbs_{0, 0, 0};
};

struct NodeIdHash {
    std::size_t operator()(const NodeId& id) const noexcept {
        return static_cast<std::size_t>(id.hash());
    }
};

}  // namespace kadsim::kad

#endif  // KADSIM_KAD_NODE_ID_H
