// A Kademlia node: routing table + RPC endpoints + iterative lookups +
// maintenance (paper §4.1, §5.3).
//
// Lifecycle: construct (via NodeArena::add_node) → join() → traffic
// (lookup/disseminate) + hourly bucket refresh → crash() on churn removal.
// After crash() the instance is inert (handlers no-op) but remains
// addressable so in-flight closures stay valid.
//
// The class itself is a 16-byte handle: every field lives in the owning
// NodeArena's struct-of-arrays storage, indexed by the node's address.
// Handles have stable addresses for the lifetime of the arena (delivery
// closures capture `KademliaNode*`).
#ifndef KADSIM_KAD_NODE_H
#define KADSIM_KAD_NODE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "kad/config.h"
#include "kad/contact.h"
#include "kad/lookup.h"
#include "kad/messages.h"
#include "kad/routing_table.h"
#include "net/network.h"
#include "sim/time.h"

namespace kadsim::kad {

class NodeArena;

/// Aggregate per-node protocol counters (collected by scen::Metrics).
struct NodeCounters {
    std::uint64_t lookups_started = 0;
    std::uint64_t lookups_completed = 0;
    std::uint64_t values_found = 0;
    std::uint64_t stores_sent = 0;
    std::uint64_t rpcs_sent = 0;
    std::uint64_t rpcs_failed = 0;
    std::uint64_t requests_served = 0;
};

class KademliaNode {
public:
    /// Callback invoked when a lookup completes. Kept small: the result
    /// carries the successfully contacted closest nodes.
    using LookupDoneFn =
        util::InplaceFunction<void(const NodeId& target, bool value_found,
                                   const std::vector<Contact>& closest), 48>;

    [[nodiscard]] const NodeId& id() const noexcept;
    [[nodiscard]] net::Address address() const noexcept { return address_; }
    [[nodiscard]] Contact contact() const noexcept { return Contact{id(), address_}; }
    [[nodiscard]] bool alive() const noexcept;
    [[nodiscard]] const RoutingTable& routing_table() const noexcept;
    [[nodiscard]] const NodeCounters& counters() const noexcept;

    /// Joins via `bootstrap` (paper §5.3: a random already-joined node):
    /// inserts the bootstrap contact, looks up the node's own id, and starts
    /// the hourly bucket-refresh cycle.
    void join(const std::optional<Contact>& bootstrap);

    /// Fail-stop crash (churn removal / attacker takedown). Pending state is
    /// released; the instance stays allocated but inert.
    void crash();

    /// Iterative FIND_NODE lookup toward `target`.
    void lookup_node(const NodeId& target, LookupDoneFn on_done);

    /// Iterative FIND_VALUE lookup for data object `key`.
    void lookup_value(const NodeId& key, LookupDoneFn on_done);

    /// Dissemination procedure (paper §4.1): locate the k closest nodes to
    /// `key`, then STORE the object at each of them.
    void disseminate(const NodeId& key, std::uint64_t value, LookupDoneFn on_done);

    /// Local storage lookup (tests / examples).
    [[nodiscard]] std::optional<std::uint64_t> stored_value(const NodeId& key) const;
    [[nodiscard]] std::size_t storage_size() const noexcept;

    // --- RPC ingress (invoked by peers through delivery closures) ---
    void handle_ping(const Contact& from, std::uint64_t rpc_id);
    void handle_ping_response(std::uint64_t rpc_id, const Contact& from);
    void handle_find_node(const Contact& from, std::uint64_t rpc_id,
                          const NodeId& target);
    void handle_find_node_response(std::uint64_t rpc_id, const Contact& from,
                                   std::vector<Contact> contacts);
    void handle_find_value(const Contact& from, std::uint64_t rpc_id, const NodeId& key);
    void handle_find_value_response(std::uint64_t rpc_id, const Contact& from,
                                    std::optional<std::uint64_t> value,
                                    std::vector<Contact> contacts);
    void handle_store(const Contact& from, std::uint64_t rpc_id, const NodeId& key,
                      std::uint64_t value);
    void handle_store_response(std::uint64_t rpc_id, const Contact& from);

private:
    friend class NodeArena;
    friend class PendingRpcMap;  // slot table of in-flight PendingRpc entries

    KademliaNode(NodeArena& arena, net::Address address) noexcept
        : arena_(&arena), address_(address) {}

    struct ActiveLookup {
        /// Slot in the owning NodeArena's shared LookupArena, or
        /// kInvalidSlot when idle. The per-lookup heap allocation the old
        /// unique_ptr<LookupState> field paid is gone.
        std::uint32_t arena_slot = LookupArena::kInvalidSlot;
        LookupDoneFn on_done;
        std::uint32_t generation = 0;
        bool disseminating = false;
        /// Counted in the arena's LookupTraffic histograms: application-level
        /// lookups (lookup_node / lookup_value), not joins/advertisements.
        bool measured = false;
        std::uint64_t store_value = 0;
    };

    enum class RpcKind : std::uint8_t { kNone, kLookup, kStore, kEviction };

    struct PendingRpc {
        Contact to;
        RpcKind kind = RpcKind::kNone;
        std::uint32_t lookup_slot = 0;
        std::uint32_t lookup_generation = 0;
    };

    struct StoredObject {
        NodeId key;
        std::uint64_t value = 0;
        sim::SimTime expires = 0;
    };

    /// Any message received from a peer is liveness evidence (§4.1).
    void observe_sender(const Contact& from);
    void start_lookup(const NodeId& target, LookupMode mode, LookupDoneFn on_done,
                      bool disseminating, std::uint64_t store_value, bool strict_k,
                      bool measured);
    void pump_lookup(std::uint32_t slot);
    void finish_lookup(std::uint32_t slot);
    void send_lookup_query(std::uint32_t slot, const Contact& to);
    void send_store(const Contact& to, const NodeId& key, std::uint64_t value);
    void send_eviction_ping(const Contact& to);
    std::uint64_t register_rpc(const Contact& to, RpcKind kind,
                               std::uint32_t lookup_slot, std::uint32_t generation);
    void on_rpc_timeout(std::uint64_t rpc_id);
    void rpc_succeeded(std::uint64_t rpc_id, const Contact& from,
                       PendingRpc* out_pending);
    void do_refresh();
    void do_advertise();
    void note_lookup_target(const NodeId& target);
    void gc_storage();

    NodeArena* arena_;
    net::Address address_;
};

}  // namespace kadsim::kad

#endif  // KADSIM_KAD_NODE_H
