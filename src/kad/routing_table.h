// The Kademlia routing table: b k-buckets of contacts (paper §4.1).
//
// Bucket i holds contacts whose XOR distance d from the owner satisfies
// 2^i ≤ d < 2^{i+1} (at most k of them). Entries are kept in
// least-recently-seen order (front = oldest), per the original protocol.
// A contact is dropped after `s` consecutive failed communications
// (the staleness limit, §4.1/§5.3).
//
// Storage lives in a BucketArena — one contiguous slab of k-sized blocks
// shared by every table of a region (NodeArena mode) or owned privately
// (standalone construction, used by tests and microbenches). The table
// itself is a thin handle: self id + a contiguous BucketMeta range.
#ifndef KADSIM_KAD_ROUTING_TABLE_H
#define KADSIM_KAD_ROUTING_TABLE_H

#include <array>
#include <bit>
#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "kad/bucket_arena.h"
#include "kad/config.h"
#include "kad/contact.h"
#include "sim/time.h"

namespace kadsim::kad {

/// Result of offering a (possibly new) contact to the table.
enum class ObserveResult {
    kUpdated,     ///< already present; freshness updated
    kInserted,    ///< added to a bucket with free space
    kBucketFull,  ///< bucket full; policy decides what happens next
    kSelf,        ///< the owner's own id; ignored
};

class RoutingTable {
public:
    using Entry = BucketEntry;

    /// Standalone table with a private arena (tests/benches); validates the
    /// config, exactly like the pre-arena constructor.
    RoutingTable(NodeId self, const KademliaConfig& config);

    /// Table drawing storage from a shared arena (NodeArena mode). The arena
    /// must outlive the table; the caller is responsible for having
    /// validated `config` once.
    RoutingTable(NodeId self, const KademliaConfig& config, BucketArena& arena);

    RoutingTable(const RoutingTable&) = delete;
    RoutingTable& operator=(const RoutingTable&) = delete;
    RoutingTable(RoutingTable&&) noexcept = default;
    RoutingTable& operator=(RoutingTable&&) noexcept = default;

    /// Records evidence that `c` is alive (any message received from it).
    /// On kBucketFull with BucketPolicy::kPingEvict the contact is parked in
    /// the bucket's one-slot replacement cache (newest wins).
    ObserveResult observe(const Contact& c, sim::SimTime now);

    /// Records a failed communication attempt. Removes the contact once it
    /// accumulates `s` consecutive failures; returns true when removed.
    /// A parked replacement (kPingEvict) fills the freed slot.
    bool record_failure(const NodeId& id, sim::SimTime now);

    /// Forcibly removes a contact (used by tests and by ping-evict logic).
    bool remove(const NodeId& id);

    /// Drops every contact, replacement candidate and protocol flag (crash
    /// teardown); entry blocks return to the arena free list.
    void clear() noexcept;

    [[nodiscard]] bool contains(const NodeId& id) const;

    /// Least-recently-seen contact of the bucket that `id` maps to, if any —
    /// the eviction-ping candidate under BucketPolicy::kPingEvict.
    [[nodiscard]] std::optional<Contact> least_recently_seen(const NodeId& id) const;

    /// Appends up to `count` contacts closest (XOR) to `target` into `out`,
    /// ordered by increasing distance. `exclude` (typically the requester) is
    /// skipped. Exact: considers every stored contact. Uses per-thread
    /// scratch, so concurrent region shards never contend.
    void closest(const NodeId& target, std::size_t count, std::vector<Contact>& out,
                 const NodeId* exclude = nullptr) const;

    /// Total number of stored contacts.
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

    /// Invokes fn(const Entry&) for every stored contact (snapshot export),
    /// bucket-ascending, LRU order within a bucket.
    template <typename Fn>
    void for_each_entry(Fn&& fn) const {
        const BucketMeta* metas = arena_->meta(meta_base_);
        for (int b = 0; b < config_->b; ++b) {
            const BucketMeta& meta = metas[b];
            if (meta.count == 0) continue;
            const Entry* entries = arena_->block(meta.block);
            for (std::uint8_t i = 0; i < meta.count; ++i) fn(entries[i]);
        }
    }

    /// Bulk contact export (snapshot capture): writes every stored contact's
    /// address to `out` — the caller provides size() slots — as
    /// `address * mul + add` (the caller's local→global map) and returns the
    /// number written. Same visit order as for_each_entry (bucket-ascending,
    /// LRU within a bucket): the arena's per-table mirror span maintains that
    /// order on every mutation, so export is one dense affine copy — no
    /// bucket walk, no scattered block reads.
    std::size_t export_contacts(net::Address* out, net::Address mul = 1,
                                net::Address add = 0) const noexcept {
        if (size_ == 0) return 0;
        const net::Address* addrs = arena_->mirror(mirror_);
        for (std::size_t i = 0; i < size_; ++i) out[i] = addrs[i] * mul + add;
        return size_;
    }

    [[nodiscard]] const NodeId& self() const noexcept { return self_; }

    /// Bucket index that `id` would map to (id != self).
    [[nodiscard]] int bucket_index_of(const NodeId& id) const {
        return self_.distance_to(id).bucket_index();
    }

    /// Number of buckets holding at least one contact.
    [[nodiscard]] int nonempty_bucket_count() const noexcept;

    /// Contacts in one bucket (tests/inspection). The view is invalidated by
    /// any mutation of any table sharing the arena.
    [[nodiscard]] std::span<const Entry> bucket_entries(int index) const {
        const BucketMeta& meta = arena_->meta(meta_base_)[index];
        if (meta.count == 0) return {};
        return {arena_->block(meta.block), static_cast<std::size_t>(meta.count)};
    }

    /// Marks `bucket` as having an eviction ping in flight; returns false if
    /// one is already outstanding. (kPingEvict bookkeeping, stored in the
    /// bucket metadata so a crashed node's clear() resets it for free.)
    bool try_mark_eviction(int bucket) noexcept;
    void clear_eviction(int bucket) noexcept;

    /// Checks internal invariants (bucket membership, capacity, LRU order by
    /// last_seen); used by tests and debug builds.
    [[nodiscard]] bool check_invariants() const;

private:
    [[nodiscard]] BucketMeta& meta_of(int bucket) noexcept {
        return arena_->meta(meta_base_)[bucket];
    }
    [[nodiscard]] const BucketMeta& meta_of(int bucket) const noexcept {
        return arena_->meta(meta_base_)[bucket];
    }
    /// Index of `id` within the bucket's entries, or -1.
    [[nodiscard]] int find_in_bucket(const BucketMeta& meta, const NodeId& id) const;

    /// Start of `bucket`'s segment within the mirror span: total contact
    /// count of all populated buckets below `bucket` (occupancy-masked walk).
    [[nodiscard]] std::uint32_t bucket_offset(int bucket) const noexcept;
    /// Mirror span with capacity for `needed` entries, growing (copy to a
    /// larger class, recycle the old span) when the current one is full.
    [[nodiscard]] net::Address* mirror_ensure(std::size_t needed);

    void park_replacement(int bucket, const Contact& c);
    void promote_replacement(int bucket, BucketMeta& meta, sim::SimTime now);

    /// Keeps the nonempty-bucket bitmap in sync after a mutation.
    void set_occupancy(int bucket, bool nonempty) noexcept {
        const auto limb = static_cast<std::size_t>(bucket / 64);
        const std::uint64_t mask = 1ULL << (bucket % 64);
        if (nonempty) {
            occupancy_[limb] |= mask;
        } else {
            occupancy_[limb] &= ~mask;
        }
    }

    NodeId self_;
    const KademliaConfig* config_;
    std::unique_ptr<BucketArena> owned_;  // standalone mode only
    BucketArena* arena_;
    std::uint32_t meta_base_ = 0;
    std::size_t size_ = 0;
    /// Handle of this table's contact-address span in the arena mirror slab
    /// (see BucketArena::mirror_alloc); kNoMirror until the first insert.
    std::uint32_t mirror_ = BucketArena::kNoMirror;
    std::uint8_t mirror_class_ = 0;
    /// Bit i set iff bucket i holds at least one contact — closest() walks
    /// set bits instead of scanning all b metadata records.
    std::array<std::uint64_t, 3> occupancy_{};
    /// kPingEvict parking slots: (bucket, candidate), at most one per bucket
    /// (kHasReplacement flag). Tiny — only full buckets ever park.
    std::vector<std::pair<std::uint16_t, Contact>> replacements_;
};

}  // namespace kadsim::kad

#endif  // KADSIM_KAD_ROUTING_TABLE_H
