// The Kademlia routing table: b k-buckets of contacts (paper §4.1).
//
// Bucket i holds contacts whose XOR distance d from the owner satisfies
// 2^i ≤ d < 2^{i+1} (at most k of them). Entries are kept in
// least-recently-seen order (front = oldest), per the original protocol.
// A contact is dropped after `s` consecutive failed communications
// (the staleness limit, §4.1/§5.3).
#ifndef KADSIM_KAD_ROUTING_TABLE_H
#define KADSIM_KAD_ROUTING_TABLE_H

#include <optional>
#include <vector>

#include "kad/config.h"
#include "kad/contact.h"
#include "sim/time.h"

namespace kadsim::kad {

/// Result of offering a (possibly new) contact to the table.
enum class ObserveResult {
    kUpdated,     ///< already present; freshness updated
    kInserted,    ///< added to a bucket with free space
    kBucketFull,  ///< bucket full; policy decides what happens next
    kSelf,        ///< the owner's own id; ignored
};

class RoutingTable {
public:
    struct Entry {
        Contact contact;
        sim::SimTime last_seen = 0;
        int consecutive_failures = 0;
    };

    RoutingTable(NodeId self, const KademliaConfig& config);

    /// Records evidence that `c` is alive (any message received from it).
    /// On kBucketFull with BucketPolicy::kPingEvict the contact is parked in
    /// the bucket's one-slot replacement cache (newest wins).
    ObserveResult observe(const Contact& c, sim::SimTime now);

    /// Records a failed communication attempt. Removes the contact once it
    /// accumulates `s` consecutive failures; returns true when removed.
    /// A parked replacement (kPingEvict) fills the freed slot.
    bool record_failure(const NodeId& id, sim::SimTime now);

    /// Forcibly removes a contact (used by tests and by ping-evict logic).
    bool remove(const NodeId& id);

    /// Drops every contact and replacement candidate (crash teardown).
    void clear() noexcept;

    [[nodiscard]] bool contains(const NodeId& id) const;

    /// Least-recently-seen contact of the bucket that `id` maps to, if any —
    /// the eviction-ping candidate under BucketPolicy::kPingEvict.
    [[nodiscard]] std::optional<Contact> least_recently_seen(const NodeId& id) const;

    /// Appends up to `count` contacts closest (XOR) to `target` into `out`,
    /// ordered by increasing distance. `exclude` (typically the requester) is
    /// skipped. Exact: considers every stored contact.
    void closest(const NodeId& target, std::size_t count, std::vector<Contact>& out,
                 const NodeId* exclude = nullptr) const;

    /// Total number of stored contacts.
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

    /// Invokes fn(const Entry&) for every stored contact (snapshot export).
    template <typename Fn>
    void for_each_entry(Fn&& fn) const {
        for (const auto& bucket : buckets_) {
            for (const auto& entry : bucket.entries) fn(entry);
        }
    }

    [[nodiscard]] const NodeId& self() const noexcept { return self_; }

    /// Bucket index that `id` would map to (id != self).
    [[nodiscard]] int bucket_index_of(const NodeId& id) const {
        return self_.distance_to(id).bucket_index();
    }

    /// Number of buckets holding at least one contact.
    [[nodiscard]] int nonempty_bucket_count() const noexcept;

    /// Contacts in one bucket (tests/inspection).
    [[nodiscard]] const std::vector<Entry>& bucket_entries(int index) const {
        return buckets_[static_cast<std::size_t>(index)].entries;
    }

    /// Checks internal invariants (bucket membership, capacity, LRU order by
    /// last_seen); used by tests and debug builds.
    [[nodiscard]] bool check_invariants() const;

private:
    struct Bucket {
        std::vector<Entry> entries;              // front = least recently seen
        std::optional<Contact> replacement;      // kPingEvict parking slot
    };

    Bucket& bucket_for(const NodeId& id) {
        return buckets_[static_cast<std::size_t>(bucket_index_of(id))];
    }
    [[nodiscard]] const Bucket& bucket_for(const NodeId& id) const {
        return buckets_[static_cast<std::size_t>(bucket_index_of(id))];
    }

    NodeId self_;
    const KademliaConfig& config_;
    std::vector<Bucket> buckets_;
    std::size_t size_ = 0;
    // Scratch for closest(): avoids per-query allocation on the hot path.
    mutable std::vector<std::pair<NodeId, Contact>> scratch_;
    mutable std::vector<std::pair<NodeId, int>> bucket_order_;
};

}  // namespace kadsim::kad

#endif  // KADSIM_KAD_ROUTING_TABLE_H
