// Kademlia protocol parameters (paper §4.1 and §5.3).
#ifndef KADSIM_KAD_CONFIG_H
#define KADSIM_KAD_CONFIG_H

#include <stdexcept>

#include "kad/node_id.h"
#include "sim/time.h"

namespace kadsim::kad {

/// What a node does when a new contact arrives for a full bucket.
enum class BucketPolicy {
    /// Discard the new contact (the behaviour the paper's dynamics exhibit:
    /// slots only free up when entries turn stale; "freed up entries in the
    /// k-buckets" drive the churn-phase connectivity gains, §5.5.1).
    kDropNew,
    /// Maymounkov–Mazières original: ping the least-recently-seen entry and
    /// evict it only if it fails; the candidate is kept in a one-slot
    /// replacement cache. Provided for the `ablation_replacement` bench.
    kPingEvict,
};

/// Which buckets an hourly refresh touches. In both policies only buckets
/// that hold at least one contact are considered: ranges without any nodes
/// would otherwise trigger ~150 self-neighbourhood lookups per node-hour and
/// over-mix the overlay (see KademliaNode::do_refresh).
enum class RefreshPolicy {
    /// The paper's simulator: every (in-use) bucket gets a random-id lookup
    /// each refresh cycle ("a node randomly generates an id from the id range
    /// of each k-bucket and performs lookup procedures for these ids", §5.3).
    kAllBuckets,
    /// Maymounkov–Mazières original: only buckets with no lookup activity in
    /// the past refresh interval. Provided for the `ablation_refresh` bench.
    kStaleOnly,
};

struct KademliaConfig {
    int b = 160;   ///< id bit-length (paper: 160 and 80)
    int k = 20;    ///< bucket size / lookup width (paper: 5, 10, 20, 30)
    int alpha = 3; ///< lookup parallelism (paper: 3 and 5)
    int s = 5;     ///< staleness limit: consecutive failures before removal

    sim::SimTime rpc_timeout = 2 * sim::kSecond;
    sim::SimTime refresh_interval = 60 * sim::kMinute;
    /// Refresh lookups for one cycle are spread uniformly over this window.
    sim::SimTime refresh_spread = 1 * sim::kMinute;
    /// Stored data objects expire after this long (republishing is outside
    /// the paper's scope).
    sim::SimTime storage_expiry = 60 * sim::kMinute;

    BucketPolicy bucket_policy = BucketPolicy::kDropNew;
    RefreshPolicy refresh_policy = RefreshPolicy::kAllBuckets;

    /// Extension of the paper's future work (§6: "introduce a parameter to
    /// control its connectivity independently of the bucket size"): γ
    /// strict-k self-advertisement lookups per refresh interval, spread
    /// evenly (one every refresh_interval/γ, starting that long after the
    /// join). Each re-announces the node to its closest neighbours,
    /// repairing the in-link erosion that pins the *minimum* connectivity
    /// under churn — without touching k. 0 = paper behaviour.
    int advertise_per_refresh = 0;

    /// Salah-style lookup improvement (this repo's reading of Salah &
    /// Strufe's adaptive-parallelism scheme, PAPERS.md): each query failure
    /// observed during a lookup widens that lookup's in-flight window by
    /// one, up to α + lookup_boost — failures are evidence of a stale
    /// neighbourhood, and a wider wave restores progress without raising α
    /// globally. The no-progress termination rule keeps using the base α.
    /// 0 = paper behaviour (the default; the fault-equivalence goldens pin
    /// it).
    int lookup_boost = 0;

    /// Throws std::invalid_argument when parameters are out of range.
    void validate() const {
        if (b <= 0 || b > kMaxBits) throw std::invalid_argument("b must be in (0,160]");
        // Upper bound from the arena bucket layout (8-bit fill counts); the
        // paper never goes past k = 30.
        if (k <= 0 || k > 255) throw std::invalid_argument("k must be in (0,255]");
        if (alpha <= 0) throw std::invalid_argument("alpha must be positive");
        if (s <= 0) throw std::invalid_argument("s must be positive");
        if (rpc_timeout <= 0) throw std::invalid_argument("rpc_timeout must be positive");
        if (refresh_interval <= 0) {
            throw std::invalid_argument("refresh_interval must be positive");
        }
        if (lookup_boost < 0 || lookup_boost > 255) {
            throw std::invalid_argument("lookup_boost must be in [0,255]");
        }
    }
};

}  // namespace kadsim::kad

#endif  // KADSIM_KAD_CONFIG_H
