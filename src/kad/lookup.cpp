#include "kad/lookup.h"

#include <algorithm>

#include "util/assert.h"

namespace kadsim::kad {

LookupState::LookupState(NodeId self, NodeId target, LookupMode mode, Params params)
    : self_(self), target_(target), mode_(mode), params_(params) {
    KADSIM_ASSERT(params_.k > 0 && params_.alpha > 0);
    if (params_.shortlist_cap == 0) {
        params_.shortlist_cap = static_cast<std::size_t>(4 * params_.k);
    }
    shortlist_.reserve(params_.shortlist_cap);
}

void LookupState::seed(std::span<const Contact> contacts) {
    for (const auto& c : contacts) insert_candidate(c);
}

bool LookupState::insert_candidate(const Contact& c) {
    if (c.id == self_) return false;  // never query ourselves
    const NodeId dist = target_.distance_to(c.id);
    // Sorted insert position by distance.
    const auto pos = std::lower_bound(
        shortlist_.begin(), shortlist_.end(), dist,
        [](const Candidate& cand, const NodeId& d) { return cand.distance < d; });
    // Duplicate check: candidates with equal distance must be the same id
    // (XOR metric is injective in the second argument), so one comparison
    // suffices.
    if (pos != shortlist_.end() && pos->distance == dist) return false;

    if (shortlist_.size() >= params_.shortlist_cap) {
        if (pos == shortlist_.end()) return false;  // farther than everything
        // Drop the farthest droppable (kNew/kFailed) entry to make room;
        // in-flight and succeeded entries are load-bearing state.
        auto victim = shortlist_.end();
        for (auto it = shortlist_.end(); it != shortlist_.begin();) {
            --it;
            if (it->state == State::kNew || it->state == State::kFailed) {
                victim = it;
                break;
            }
        }
        if (victim == shortlist_.end() || victim < pos) return false;
        shortlist_.erase(victim);
    }
    const bool now_closest = pos == shortlist_.begin();
    shortlist_.insert(pos, Candidate{dist, c, State::kNew});
    return now_closest;
}

bool LookupState::has_launchable() const {
    // A candidate is launchable if it is un-queried and sits among the k
    // closest non-failed entries (the classic "query the k closest" window).
    int window = 0;
    for (const auto& cand : shortlist_) {
        if (cand.state == State::kFailed) continue;
        if (cand.state == State::kNew) return true;
        if (++window >= params_.k) break;
    }
    return false;
}

std::optional<Contact> LookupState::next_query() {
    if (finished() || inflight_ >= params_.alpha) return std::nullopt;
    int window = 0;
    for (auto& cand : shortlist_) {
        if (cand.state == State::kFailed) continue;
        if (cand.state == State::kNew) {
            cand.state = State::kInflight;
            ++inflight_;
            ++stats_.rpcs_sent;
            return cand.contact;
        }
        if (++window >= params_.k) break;
    }
    return std::nullopt;
}

LookupState::Candidate* LookupState::find_by_id(const NodeId& id) {
    const NodeId dist = target_.distance_to(id);
    const auto pos = std::lower_bound(
        shortlist_.begin(), shortlist_.end(), dist,
        [](const Candidate& cand, const NodeId& d) { return cand.distance < d; });
    if (pos != shortlist_.end() && pos->distance == dist) return &*pos;
    return nullptr;
}

void LookupState::on_response(const NodeId& from, std::span<const Contact> returned,
                              bool value_found) {
    Candidate* cand = find_by_id(from);
    if (cand == nullptr || cand->state != State::kInflight) return;  // stale reply
    cand->state = State::kOk;
    --inflight_;
    ++ok_;
    ++stats_.rpcs_succeeded;
    if (value_found && mode_ == LookupMode::kFindValue) value_found_ = true;
    if (value_found_) return;
    bool improved = false;
    for (const auto& c : returned) {
        if (insert_candidate(c)) improved = true;
    }
    // "No more progress is made in getting closer to the target" (§4.1):
    // count consecutive responses that fail to produce a new closest
    // candidate; α such responses (one full query wave) end the lookup.
    if (improved) {
        no_progress_streak_ = 0;
    } else {
        ++no_progress_streak_;
    }
}

void LookupState::on_failure(const NodeId& from) {
    Candidate* cand = find_by_id(from);
    if (cand == nullptr || cand->state != State::kInflight) return;
    cand->state = State::kFailed;
    --inflight_;
    ++stats_.rpcs_failed;
}

bool LookupState::closest_candidate_contacted() const {
    for (const auto& cand : shortlist_) {
        if (cand.state == State::kFailed) continue;
        return cand.state == State::kOk;
    }
    return true;  // nothing left to contact
}

bool LookupState::finished() const {
    if (value_found_) return true;
    if (ok_ >= params_.k) return true;
    if (!params_.strict_k && no_progress_streak_ >= params_.alpha &&
        closest_candidate_contacted()) {
        return true;
    }
    return inflight_ == 0 && !has_launchable();
}

std::vector<Contact> LookupState::successful_closest() const {
    std::vector<Contact> out;
    out.reserve(static_cast<std::size_t>(std::min<int>(ok_, params_.k)));
    for (const auto& cand : shortlist_) {
        if (cand.state == State::kOk) {
            out.push_back(cand.contact);
            if (out.size() == static_cast<std::size_t>(params_.k)) break;
        }
    }
    return out;
}

}  // namespace kadsim::kad
