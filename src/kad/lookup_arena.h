// Allocation-free arena for in-flight iterative lookups (paper §4.1).
//
// PR 7's node arena removed per-node heap churn; the lookup path was still
// one heap-allocated LookupState (plus a growable shortlist vector) per
// lookup — the throughput wall for million-lookup workloads. LookupArena
// stores every lookup struct-of-arrays instead: per-slot scalars (target,
// in-flight window, no-progress streak, hop counter, issue timestamp) in
// parallel vectors, and the k-closest shortlist as a sorted flat slice of a
// shared fixed-stride slab. Slots are recycled through a free list, so after
// warmup the steady state allocates nothing (pinned by the arena-reuse
// purity test in tests/test_lookup_engine.cpp).
//
// The state machine is the exact semantics of the original LookupState —
// LookupState itself is now a one-slot façade over this class, and the
// fault-equivalence golden hashes pin that the refactor changed no behavior.
//
// Each NodeArena (= one id-space region) owns one LookupArena shared by all
// of its nodes; regions never share one, so sharded stepping needs no
// synchronization here.
#ifndef KADSIM_KAD_LOOKUP_ARENA_H
#define KADSIM_KAD_LOOKUP_ARENA_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "kad/contact.h"
#include "sim/time.h"

namespace kadsim::kad {

enum class LookupMode { kFindNode, kFindValue };

struct LookupStats {
    int rpcs_sent = 0;
    int rpcs_failed = 0;
    int rpcs_succeeded = 0;
};

class LookupArena {
public:
    using Slot = std::uint32_t;
    static constexpr Slot kInvalidSlot = 0xFFFFFFFFu;

    struct Params {
        int k = 20;     ///< stop after k successful contacts
        int alpha = 3;  ///< base max queries in flight
        std::size_t shortlist_cap = 0;  ///< 0 = 4·k (fixed slab stride)
        /// Salah-style lookup improvement (see kad::KademliaConfig::
        /// lookup_boost): each observed query failure widens the in-flight
        /// window by one, up to alpha + boost. 0 disables (paper behavior).
        int boost = 0;
    };

    explicit LookupArena(Params params);

    /// Opens a lookup and returns its slot. `strict_k` disables the
    /// no-progress early exit (join / STORE placement); `now` is recorded
    /// as the issue timestamp for latency accounting.
    [[nodiscard]] Slot begin(const NodeId& self, const NodeId& target,
                             LookupMode mode, bool strict_k, sim::SimTime now);

    /// Returns the slot to the free list. The slot id may be reused by the
    /// very next begin(); callers must drop their handle.
    void release(Slot slot);

    /// Seeds the shortlist with the caller's own closest contacts (depth 0).
    void seed(Slot slot, std::span<const Contact> contacts);

    /// Next contact to query, marking it in-flight — or nullopt when the
    /// in-flight window is full or no un-queried candidate remains among the
    /// k closest non-failed entries. Call repeatedly until nullopt.
    [[nodiscard]] std::optional<Contact> next_query(Slot slot);

    /// Successful reply from `from` carrying its closest contacts.
    /// `value_found` short-circuits a kFindValue lookup.
    void on_response(Slot slot, const NodeId& from,
                     std::span<const Contact> returned, bool value_found);

    /// Query to `from` failed (timeout).
    void on_failure(Slot slot, const NodeId& from);

    /// Terminal-state test (§4.1): k successes, value found, α consecutive
    /// responses without progress (closest candidate contacted), or
    /// candidate exhaustion.
    [[nodiscard]] bool finished(Slot slot) const;

    [[nodiscard]] bool value_found(Slot slot) const noexcept {
        return value_found_[slot] != 0;
    }
    [[nodiscard]] const NodeId& target(Slot slot) const noexcept {
        return target_[slot];
    }
    [[nodiscard]] LookupMode mode(Slot slot) const noexcept {
        return static_cast<LookupMode>(mode_[slot]);
    }
    [[nodiscard]] int inflight(Slot slot) const noexcept {
        return inflight_[slot];
    }
    [[nodiscard]] const LookupStats& stats(Slot slot) const noexcept {
        return stats_[slot];
    }
    /// Iteration depth: 1 + the deepest successfully contacted candidate
    /// (seeds are depth 0, contacts learned from a depth-d reply are d+1).
    [[nodiscard]] int hop_count(Slot slot) const noexcept {
        return hops_[slot];
    }
    [[nodiscard]] sim::SimTime issued_at(Slot slot) const noexcept {
        return issued_[slot];
    }
    [[nodiscard]] std::size_t shortlist_size(Slot slot) const noexcept {
        return size_[slot];
    }

    /// Appends the successfully contacted nodes, closest-first, at most k.
    void successful_closest(Slot slot, std::vector<Contact>& out) const;

    [[nodiscard]] const Params& params() const noexcept { return params_; }
    [[nodiscard]] std::size_t slot_count() const noexcept {
        return self_.size();
    }
    [[nodiscard]] std::size_t live_count() const noexcept { return live_; }
    [[nodiscard]] std::size_t memory_bytes() const noexcept;

private:
    enum class State : std::uint8_t { kNew, kInflight, kOk, kFailed };

    struct Entry {
        NodeId distance;  // to target (cached sort key)
        Contact contact;
        State state = State::kNew;
        std::uint8_t depth = 0;  // iteration depth the contact was learned at
    };

    /// Returns true when the candidate was inserted AND is now the closest
    /// known candidate ("progress in getting closer", §4.1).
    bool insert_candidate(Slot slot, const Contact& c, std::uint8_t depth);
    [[nodiscard]] bool has_launchable(Slot slot) const;
    [[nodiscard]] bool closest_candidate_contacted(Slot slot) const;
    Entry* find_by_id(Slot slot, const NodeId& id);

    [[nodiscard]] Entry* slab(Slot slot) noexcept {
        return entries_.data() + static_cast<std::size_t>(slot) * stride_;
    }
    [[nodiscard]] const Entry* slab(Slot slot) const noexcept {
        return entries_.data() + static_cast<std::size_t>(slot) * stride_;
    }

    Params params_;
    std::size_t stride_;  // = resolved shortlist cap

    // Per-slot state, struct-of-arrays; index = Slot.
    std::vector<NodeId> self_;
    std::vector<NodeId> target_;
    std::vector<std::uint8_t> mode_;
    std::vector<std::uint8_t> strict_;
    std::vector<std::uint8_t> value_found_;
    std::vector<std::uint16_t> size_;      // live entries in the slot's slab
    std::vector<std::int16_t> inflight_;
    std::vector<std::int16_t> ok_;
    std::vector<std::int16_t> streak_;     // consecutive no-progress responses
    std::vector<std::uint8_t> widen_;      // granted extra window (<= boost)
    std::vector<std::uint8_t> hops_;
    std::vector<sim::SimTime> issued_;
    std::vector<LookupStats> stats_;
    std::vector<Entry> entries_;  // slot i owns [i·stride_, i·stride_+size_[i])
    std::vector<Slot> free_;
    std::size_t live_ = 0;
};

}  // namespace kadsim::kad

#endif  // KADSIM_KAD_LOOKUP_ARENA_H
