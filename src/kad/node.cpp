#include "kad/node.h"

#include <algorithm>

namespace kadsim::kad {

namespace {
/// How many of its own contacts a node seeds an iterative lookup with.
constexpr std::size_t seed_width(int k) { return static_cast<std::size_t>(k); }
}  // namespace

KademliaNode::KademliaNode(NodeId id, net::Address address,
                           const KademliaConfig& config, sim::Simulator& sim,
                           net::Network& network, NodeDirectory& directory)
    : id_(id),
      address_(address),
      config_(config),
      sim_(sim),
      network_(network),
      directory_(directory),
      rng_(sim.split_rng()),
      table_(id, config),
      bucket_last_lookup_(static_cast<std::size_t>(config.b), 0) {}

void KademliaNode::join(const std::optional<Contact>& bootstrap) {
    KADSIM_ASSERT(alive_);
    bootstrap_ = bootstrap;
    if (bootstrap.has_value()) {
        observe_sender(*bootstrap);
    }
    // Locate our own id: populates buckets along the lookup path and
    // announces our existence to the nodes we contact (paper §5.3). Joins use
    // the strict-k termination of the original protocol — the new node must
    // enter ~k routing tables right away, which is what keeps the minimum
    // connectivity near k under join churn (Table 2).
    start_lookup(id_, LookupMode::kFindNode, LookupDoneFn{}, false, 0,
                 /*strict_k=*/true);

    refresh_task_ = sim::PeriodicTask::start(
        sim_, sim_.now() + config_.refresh_interval, config_.refresh_interval,
        [this](sim::SimTime) { do_refresh(); });
    storage_gc_task_ = sim::PeriodicTask::start(
        sim_, sim_.now() + config_.storage_expiry, config_.storage_expiry / 2,
        [this](sim::SimTime) { gc_storage(); });
    if (config_.advertise_per_refresh > 0) {
        // Connectivity-boost extension: γ strict-k self-announcements per
        // refresh interval, evenly spread, starting one period after join —
        // fresh joiners get their first repair quickly, which is where the
        // minimum connectivity is pinned under churn.
        const sim::SimTime period =
            std::max<sim::SimTime>(1, config_.refresh_interval /
                                          config_.advertise_per_refresh);
        advertise_task_ = sim::PeriodicTask::start(
            sim_, sim_.now() + period, period, [this](sim::SimTime) {
                if (alive_) {
                    start_lookup(id_, LookupMode::kFindNode, LookupDoneFn{}, false,
                                 0, /*strict_k=*/true);
                }
            });
    }
}

void KademliaNode::crash() {
    if (!alive_) return;
    alive_ = false;
    network_.set_up(address_, false);
    refresh_task_.reset();
    storage_gc_task_.reset();
    advertise_task_.reset();
    pending_.clear();
    lookups_.clear();
    free_lookup_slots_.clear();
    storage_.clear();
    eviction_pings_.clear();
    table_.clear();
}

void KademliaNode::lookup_node(const NodeId& target, LookupDoneFn on_done) {
    start_lookup(target, LookupMode::kFindNode, std::move(on_done), false, 0, false);
}

void KademliaNode::lookup_value(const NodeId& key, LookupDoneFn on_done) {
    start_lookup(key, LookupMode::kFindValue, std::move(on_done), false, 0, false);
}

void KademliaNode::disseminate(const NodeId& key, std::uint64_t value,
                               LookupDoneFn on_done) {
    // STORE placement is strict-k (original protocol): the object must land
    // on the k closest nodes, so the locate phase may not stop early.
    start_lookup(key, LookupMode::kFindNode, std::move(on_done), true, value, true);
}

std::optional<std::uint64_t> KademliaNode::stored_value(const NodeId& key) const {
    const auto it = storage_.find(key);
    if (it == storage_.end() || it->second.expires <= sim_.now()) return std::nullopt;
    return it->second.value;
}

// ---------------------------------------------------------------- ingress --

void KademliaNode::handle_ping(const Contact& from, std::uint64_t rpc_id) {
    if (!alive_) return;
    observe_sender(from);
    ++counters_.requests_served;
    KademliaNode* peer = directory_.node_at(from.address);
    if (peer == nullptr) return;
    const Contact me = contact();
    network_.transmit(address_, from.address, [peer, rpc_id, me] {
        peer->handle_ping_response(rpc_id, me);
    });
}

void KademliaNode::handle_ping_response(std::uint64_t rpc_id, const Contact& from) {
    if (!alive_) return;
    observe_sender(from);
    PendingRpc pending;
    rpc_succeeded(rpc_id, from, &pending);
}

void KademliaNode::handle_find_node(const Contact& from, std::uint64_t rpc_id,
                                    const NodeId& target) {
    if (!alive_) return;
    observe_sender(from);
    ++counters_.requests_served;
    std::vector<Contact> closest;
    closest.reserve(static_cast<std::size_t>(config_.k));
    table_.closest(target, static_cast<std::size_t>(config_.k), closest, &from.id);
    KademliaNode* peer = directory_.node_at(from.address);
    if (peer == nullptr) return;
    const Contact me = contact();
    network_.transmit(address_, from.address,
                      [peer, rpc_id, me, contacts = std::move(closest)]() mutable {
                          peer->handle_find_node_response(rpc_id, me, std::move(contacts));
                      });
}

void KademliaNode::handle_find_node_response(std::uint64_t rpc_id, const Contact& from,
                                             std::vector<Contact> contacts) {
    if (!alive_) return;
    observe_sender(from);
    PendingRpc pending;
    rpc_succeeded(rpc_id, from, &pending);
    if (pending.kind != RpcKind::kLookup) return;
    auto& slot = lookups_[pending.lookup_slot];
    if (slot.generation != pending.lookup_generation || slot.state == nullptr) return;
    slot.state->on_response(from.id, contacts, false);
    pump_lookup(pending.lookup_slot);
}

void KademliaNode::handle_find_value(const Contact& from, std::uint64_t rpc_id,
                                     const NodeId& key) {
    if (!alive_) return;
    observe_sender(from);
    ++counters_.requests_served;
    KademliaNode* peer = directory_.node_at(from.address);
    if (peer == nullptr) return;
    const Contact me = contact();

    const auto it = storage_.find(key);
    if (it != storage_.end() && it->second.expires > sim_.now()) {
        const std::uint64_t value = it->second.value;
        network_.transmit(address_, from.address, [peer, rpc_id, me, value] {
            peer->handle_find_value_response(rpc_id, me, value, {});
        });
        return;
    }
    std::vector<Contact> closest;
    closest.reserve(static_cast<std::size_t>(config_.k));
    table_.closest(key, static_cast<std::size_t>(config_.k), closest, &from.id);
    network_.transmit(address_, from.address,
                      [peer, rpc_id, me, contacts = std::move(closest)]() mutable {
                          peer->handle_find_value_response(rpc_id, me, std::nullopt,
                                                           std::move(contacts));
                      });
}

void KademliaNode::handle_find_value_response(std::uint64_t rpc_id, const Contact& from,
                                              std::optional<std::uint64_t> value,
                                              std::vector<Contact> contacts) {
    if (!alive_) return;
    observe_sender(from);
    PendingRpc pending;
    rpc_succeeded(rpc_id, from, &pending);
    if (pending.kind != RpcKind::kLookup) return;
    auto& slot = lookups_[pending.lookup_slot];
    if (slot.generation != pending.lookup_generation || slot.state == nullptr) return;
    slot.state->on_response(from.id, contacts, value.has_value());
    pump_lookup(pending.lookup_slot);
}

void KademliaNode::handle_store(const Contact& from, std::uint64_t rpc_id,
                                const NodeId& key, std::uint64_t value) {
    if (!alive_) return;
    observe_sender(from);
    ++counters_.requests_served;
    storage_[key] = StoredObject{value, sim_.now() + config_.storage_expiry};
    KademliaNode* peer = directory_.node_at(from.address);
    if (peer == nullptr) return;
    const Contact me = contact();
    network_.transmit(address_, from.address, [peer, rpc_id, me] {
        peer->handle_store_response(rpc_id, me);
    });
}

void KademliaNode::handle_store_response(std::uint64_t rpc_id, const Contact& from) {
    if (!alive_) return;
    observe_sender(from);
    PendingRpc pending;
    rpc_succeeded(rpc_id, from, &pending);
}

// ---------------------------------------------------------------- internals --

void KademliaNode::observe_sender(const Contact& from) {
    const ObserveResult result = table_.observe(from, sim_.now());
    if (result == ObserveResult::kBucketFull &&
        config_.bucket_policy == BucketPolicy::kPingEvict) {
        const int bucket = table_.bucket_index_of(from.id);
        if (eviction_pings_.insert(bucket).second) {
            const auto lrs = table_.least_recently_seen(from.id);
            if (lrs.has_value()) {
                send_eviction_ping(*lrs);
            } else {
                eviction_pings_.erase(bucket);
            }
        }
    }
}

void KademliaNode::start_lookup(const NodeId& target, LookupMode mode,
                                LookupDoneFn on_done, bool disseminating,
                                std::uint64_t store_value, bool strict_k) {
    KADSIM_ASSERT(alive_);
    ++counters_.lookups_started;
    note_lookup_target(target);

    std::uint32_t slot_index;
    if (!free_lookup_slots_.empty()) {
        slot_index = free_lookup_slots_.back();
        free_lookup_slots_.pop_back();
    } else {
        slot_index = static_cast<std::uint32_t>(lookups_.size());
        lookups_.emplace_back();
    }
    auto& slot = lookups_[slot_index];
    slot.state = std::make_unique<LookupState>(
        id_, target, mode,
        LookupState::Params{config_.k, config_.alpha, 0, strict_k});
    slot.on_done = std::move(on_done);
    slot.disseminating = disseminating;
    slot.store_value = store_value;

    std::vector<Contact> seeds;
    seeds.reserve(seed_width(config_.k));
    table_.closest(target, seed_width(config_.k), seeds);
    if (seeds.empty() && bootstrap_.has_value() && bootstrap_->id != id_) {
        // Empty table (lost-join or drained by staleness): fall back to the
        // configured bootstrap address and try to re-enter the network.
        seeds.push_back(*bootstrap_);
    }
    slot.state->seed(seeds);
    pump_lookup(slot_index);
}

void KademliaNode::pump_lookup(std::uint32_t slot_index) {
    while (true) {
        auto& slot = lookups_[slot_index];
        if (slot.state == nullptr) return;
        const auto next = slot.state->next_query();
        if (!next.has_value()) break;
        send_lookup_query(slot_index, *next);
    }
    if (lookups_[slot_index].state->finished()) finish_lookup(slot_index);
}

void KademliaNode::finish_lookup(std::uint32_t slot_index) {
    auto& slot = lookups_[slot_index];
    // Detach state before invoking callbacks: a callback may start new
    // lookups, reusing or growing the slot vector.
    std::unique_ptr<LookupState> state = std::move(slot.state);
    LookupDoneFn on_done = std::move(slot.on_done);
    const bool disseminating = slot.disseminating;
    const std::uint64_t store_value = slot.store_value;
    slot.state.reset();
    slot.on_done.reset();
    ++slot.generation;  // invalidates in-flight RPC references to this slot
    free_lookup_slots_.push_back(slot_index);

    ++counters_.lookups_completed;
    if (state->value_found()) ++counters_.values_found;

    const std::vector<Contact> closest = state->successful_closest();
    if (disseminating) {
        for (const auto& c : closest) send_store(c, state->target(), store_value);
    }
    if (on_done.has_value()) {
        on_done(state->target(), state->value_found(), closest);
    }
}

void KademliaNode::send_lookup_query(std::uint32_t slot_index, const Contact& to) {
    auto& slot = lookups_[slot_index];
    const std::uint64_t rpc_id =
        register_rpc(to, RpcKind::kLookup, slot_index, slot.generation);
    KademliaNode* peer = directory_.node_at(to.address);
    KADSIM_ASSERT_MSG(peer != nullptr, "lookup query to unknown address");
    const Contact me = contact();
    const NodeId target = slot.state->target();
    if (slot.state->mode() == LookupMode::kFindValue) {
        network_.transmit(address_, to.address, [peer, me, rpc_id, target] {
            peer->handle_find_value(me, rpc_id, target);
        });
    } else {
        network_.transmit(address_, to.address, [peer, me, rpc_id, target] {
            peer->handle_find_node(me, rpc_id, target);
        });
    }
}

void KademliaNode::send_store(const Contact& to, const NodeId& key,
                              std::uint64_t value) {
    const std::uint64_t rpc_id = register_rpc(to, RpcKind::kStore, 0, 0);
    ++counters_.stores_sent;
    KademliaNode* peer = directory_.node_at(to.address);
    KADSIM_ASSERT_MSG(peer != nullptr, "store to unknown address");
    const Contact me = contact();
    network_.transmit(address_, to.address, [peer, me, rpc_id, key, value] {
        peer->handle_store(me, rpc_id, key, value);
    });
}

void KademliaNode::send_eviction_ping(const Contact& to) {
    const std::uint64_t rpc_id = register_rpc(to, RpcKind::kEviction, 0, 0);
    KademliaNode* peer = directory_.node_at(to.address);
    KADSIM_ASSERT_MSG(peer != nullptr, "ping to unknown address");
    const Contact me = contact();
    network_.transmit(address_, to.address,
                      [peer, me, rpc_id] { peer->handle_ping(me, rpc_id); });
}

std::uint64_t KademliaNode::register_rpc(const Contact& to, RpcKind kind,
                                         std::uint32_t lookup_slot,
                                         std::uint32_t generation) {
    const std::uint64_t rpc_id = next_rpc_id_++;
    pending_.emplace(rpc_id, PendingRpc{to, kind, lookup_slot, generation});
    ++counters_.rpcs_sent;
    sim_.schedule_in(config_.rpc_timeout,
                     [this, rpc_id] { on_rpc_timeout(rpc_id); });
    return rpc_id;
}

void KademliaNode::on_rpc_timeout(std::uint64_t rpc_id) {
    if (!alive_) return;
    const auto it = pending_.find(rpc_id);
    if (it == pending_.end()) return;  // answered in time
    const PendingRpc pending = it->second;
    pending_.erase(it);
    ++counters_.rpcs_failed;

    // Staleness accounting (§4.1): the contact is dropped after s consecutive
    // failures. Under ping-evict, a removed contact is replaced from the
    // bucket's parking slot inside record_failure.
    table_.record_failure(pending.to.id, sim_.now());

    if (pending.kind == RpcKind::kEviction) {
        eviction_pings_.erase(table_.bucket_index_of(pending.to.id));
        return;
    }
    if (pending.kind != RpcKind::kLookup) return;
    auto& slot = lookups_[pending.lookup_slot];
    if (slot.generation != pending.lookup_generation || slot.state == nullptr) return;
    slot.state->on_failure(pending.to.id);
    pump_lookup(pending.lookup_slot);
}

void KademliaNode::rpc_succeeded(std::uint64_t rpc_id, const Contact& from,
                                 PendingRpc* out_pending) {
    const auto it = pending_.find(rpc_id);
    if (it == pending_.end()) {
        out_pending->kind = RpcKind::kNone;  // late reply after timeout
        return;
    }
    *out_pending = it->second;
    pending_.erase(it);
    if (out_pending->kind == RpcKind::kEviction) {
        eviction_pings_.erase(table_.bucket_index_of(from.id));
    }
}

void KademliaNode::do_refresh() {
    if (!alive_) return;
    const sim::SimTime now = sim_.now();
    for (int bucket = 0; bucket < config_.b; ++bucket) {
        // Only buckets in use are refreshed: with b=160 and realistic network
        // sizes, ~150 buckets cover id ranges containing no nodes at all;
        // refreshing those would make every node probe its own neighbourhood
        // 150 times per hour and over-mix the overlay (the paper's Figs. 2-3
        // hold at kappa ~ k through stabilization, which pins down this
        // reading of "each k-bucket").
        if (table_.bucket_entries(bucket).empty()) continue;
        if (config_.refresh_policy == RefreshPolicy::kStaleOnly) {
            const sim::SimTime last = bucket_last_lookup_[static_cast<std::size_t>(bucket)];
            if (last + config_.refresh_interval > now) continue;
        }
        const NodeId target = NodeId::random_in_bucket(id_, bucket, rng_, config_.b);
        const auto delay = static_cast<sim::SimTime>(
            rng_.next_below(static_cast<std::uint64_t>(config_.refresh_spread)));
        sim_.schedule_in(delay, [this, target] {
            if (alive_) lookup_node(target, LookupDoneFn{});
        });
    }
}

void KademliaNode::note_lookup_target(const NodeId& target) {
    if (target == id_) return;
    const int bucket = table_.bucket_index_of(target);
    bucket_last_lookup_[static_cast<std::size_t>(bucket)] = sim_.now();
}

void KademliaNode::gc_storage() {
    if (!alive_) return;
    const sim::SimTime now = sim_.now();
    std::erase_if(storage_,
                  [now](const auto& kv) { return kv.second.expires <= now; });
}

}  // namespace kadsim::kad
