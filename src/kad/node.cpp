#include "kad/node.h"

#include <algorithm>

#include "kad/node_arena.h"
#include "util/assert.h"

namespace kadsim::kad {

namespace {
/// How many of its own contacts a node seeds an iterative lookup with.
constexpr std::size_t seed_width(int k) { return static_cast<std::size_t>(k); }

/// Per-node storage stays sorted by key, so every find/update is one binary
/// search (keys are unique: handle_store is find-or-insert). Works on const
/// and mutable vectors alike.
template <typename Vec>
auto find_stored(Vec& storage, const NodeId& key) -> decltype(storage.data()) {
    const auto pos =
        std::lower_bound(storage.begin(), storage.end(), key,
                         [](const auto& obj, const NodeId& k) { return obj.key < k; });
    if (pos != storage.end() && pos->key == key) return &*pos;
    return nullptr;
}
}  // namespace

// Accessor shorthand: every field lives in the arena, indexed by address_.

const NodeId& KademliaNode::id() const noexcept { return arena_->ids_[address_]; }

bool KademliaNode::alive() const noexcept { return arena_->alive_[address_] != 0; }

const RoutingTable& KademliaNode::routing_table() const noexcept {
    return arena_->tables_[address_];
}

const NodeCounters& KademliaNode::counters() const noexcept {
    return arena_->counters_[address_];
}

std::size_t KademliaNode::storage_size() const noexcept {
    return arena_->storage_[address_].size();
}

void KademliaNode::join(const std::optional<Contact>& bootstrap) {
    NodeArena& a = *arena_;
    KADSIM_ASSERT(alive());
    a.bootstraps_[address_] = bootstrap;
    if (bootstrap.has_value()) {
        observe_sender(*bootstrap);
    }
    // Locate our own id: populates buckets along the lookup path and
    // announces our existence to the nodes we contact (paper §5.3). Joins use
    // the strict-k termination of the original protocol — the new node must
    // enter ~k routing tables right away, which is what keeps the minimum
    // connectivity near k under join churn (Table 2).
    start_lookup(id(), LookupMode::kFindNode, LookupDoneFn{}, false, 0,
                 /*strict_k=*/true, /*measured=*/false);

    const KademliaConfig& cfg = a.config_;
    const std::uint32_t gen = a.task_gen_[address_];
    a.arm_task(address_, NodeArena::TaskKind::kRefresh,
               a.sim_.now() + cfg.refresh_interval, cfg.refresh_interval, gen);
    a.arm_task(address_, NodeArena::TaskKind::kStorageGc,
               a.sim_.now() + cfg.storage_expiry, cfg.storage_expiry / 2, gen);
    if (cfg.advertise_per_refresh > 0) {
        // Connectivity-boost extension: γ strict-k self-announcements per
        // refresh interval, evenly spread, starting one period after join —
        // fresh joiners get their first repair quickly, which is where the
        // minimum connectivity is pinned under churn.
        const sim::SimTime period = std::max<sim::SimTime>(
            1, cfg.refresh_interval / cfg.advertise_per_refresh);
        a.arm_task(address_, NodeArena::TaskKind::kAdvertise, a.sim_.now() + period,
                   period, gen);
    }
}

void KademliaNode::crash() {
    NodeArena& a = *arena_;
    if (!alive()) return;
    a.alive_[address_] = 0;
    a.network_.set_up(address_, false);
    ++a.task_gen_[address_];  // cancels the maintenance event chains
    auto& lookups = a.lookups_[address_];
    // Return in-flight arena slots before dropping the handles; crashed
    // lookups never reach finish_lookup (not counted as completed).
    for (auto& slot : lookups.slots) {
        if (slot.arena_slot != LookupArena::kInvalidSlot) {
            a.lookup_arena_.release(slot.arena_slot);
            slot.arena_slot = LookupArena::kInvalidSlot;
        }
    }
    lookups.slots.clear();
    lookups.free_slots.clear();
    auto& storage = a.storage_[address_];
    storage.clear();
    storage.shrink_to_fit();
    // Clears contacts, replacement candidates and eviction-ping flags, and
    // returns the bucket blocks to the arena free list. Pending-RPC entries
    // are released lazily by their timeout events (ids are unique; nothing
    // observes the map between now and then).
    a.tables_[address_].clear();
}

void KademliaNode::lookup_node(const NodeId& target, LookupDoneFn on_done) {
    start_lookup(target, LookupMode::kFindNode, std::move(on_done), false, 0, false,
                 /*measured=*/true);
}

void KademliaNode::lookup_value(const NodeId& key, LookupDoneFn on_done) {
    start_lookup(key, LookupMode::kFindValue, std::move(on_done), false, 0, false,
                 /*measured=*/true);
}

void KademliaNode::disseminate(const NodeId& key, std::uint64_t value,
                               LookupDoneFn on_done) {
    // STORE placement is strict-k (original protocol): the object must land
    // on the k closest nodes, so the locate phase may not stop early. The
    // locate walk is maintenance, not a measured lookup.
    start_lookup(key, LookupMode::kFindNode, std::move(on_done), true, value, true,
                 /*measured=*/false);
}

std::optional<std::uint64_t> KademliaNode::stored_value(const NodeId& key) const {
    const auto& storage = arena_->storage_[address_];
    const StoredObject* obj = find_stored(storage, key);
    if (obj == nullptr || obj->expires <= arena_->sim_.now()) return std::nullopt;
    return obj->value;
}

// ---------------------------------------------------------------- ingress --

void KademliaNode::handle_ping(const Contact& from, std::uint64_t rpc_id) {
    NodeArena& a = *arena_;
    if (!alive()) return;
    observe_sender(from);
    ++a.counters_[address_].requests_served;
    KademliaNode* peer = a.node_at(from.address);
    if (peer == nullptr) return;
    const Contact me = contact();
    a.network_.transmit(address_, from.address, [peer, rpc_id, me] {
        peer->handle_ping_response(rpc_id, me);
    });
}

void KademliaNode::handle_ping_response(std::uint64_t rpc_id, const Contact& from) {
    if (!alive()) return;
    observe_sender(from);
    PendingRpc pending;
    rpc_succeeded(rpc_id, from, &pending);
}

void KademliaNode::handle_find_node(const Contact& from, std::uint64_t rpc_id,
                                    const NodeId& target) {
    NodeArena& a = *arena_;
    if (!alive()) return;
    observe_sender(from);
    ++a.counters_[address_].requests_served;
    std::vector<Contact> closest;
    closest.reserve(static_cast<std::size_t>(a.config_.k));
    a.tables_[address_].closest(target, static_cast<std::size_t>(a.config_.k),
                                closest, &from.id);
    KademliaNode* peer = a.node_at(from.address);
    if (peer == nullptr) return;
    const Contact me = contact();
    a.network_.transmit(address_, from.address,
                        [peer, rpc_id, me, contacts = std::move(closest)]() mutable {
                            peer->handle_find_node_response(rpc_id, me,
                                                            std::move(contacts));
                        });
}

void KademliaNode::handle_find_node_response(std::uint64_t rpc_id, const Contact& from,
                                             std::vector<Contact> contacts) {
    if (!alive()) return;
    observe_sender(from);
    PendingRpc pending;
    rpc_succeeded(rpc_id, from, &pending);
    if (pending.kind != RpcKind::kLookup) return;
    auto& slot = arena_->lookups_[address_].slots[pending.lookup_slot];
    if (slot.generation != pending.lookup_generation ||
        slot.arena_slot == LookupArena::kInvalidSlot) {
        return;
    }
    arena_->lookup_arena_.on_response(slot.arena_slot, from.id, contacts, false);
    pump_lookup(pending.lookup_slot);
}

void KademliaNode::handle_find_value(const Contact& from, std::uint64_t rpc_id,
                                     const NodeId& key) {
    NodeArena& a = *arena_;
    if (!alive()) return;
    observe_sender(from);
    ++a.counters_[address_].requests_served;
    KademliaNode* peer = a.node_at(from.address);
    if (peer == nullptr) return;
    const Contact me = contact();

    const StoredObject* obj = find_stored(a.storage_[address_], key);
    if (obj != nullptr && obj->expires > a.sim_.now()) {
        const std::uint64_t value = obj->value;
        a.network_.transmit(address_, from.address, [peer, rpc_id, me, value] {
            peer->handle_find_value_response(rpc_id, me, value, {});
        });
        return;
    }
    std::vector<Contact> closest;
    closest.reserve(static_cast<std::size_t>(a.config_.k));
    a.tables_[address_].closest(key, static_cast<std::size_t>(a.config_.k), closest,
                                &from.id);
    a.network_.transmit(address_, from.address,
                        [peer, rpc_id, me, contacts = std::move(closest)]() mutable {
                            peer->handle_find_value_response(rpc_id, me, std::nullopt,
                                                             std::move(contacts));
                        });
}

void KademliaNode::handle_find_value_response(std::uint64_t rpc_id, const Contact& from,
                                              std::optional<std::uint64_t> value,
                                              std::vector<Contact> contacts) {
    if (!alive()) return;
    observe_sender(from);
    PendingRpc pending;
    rpc_succeeded(rpc_id, from, &pending);
    if (pending.kind != RpcKind::kLookup) return;
    auto& slot = arena_->lookups_[address_].slots[pending.lookup_slot];
    if (slot.generation != pending.lookup_generation ||
        slot.arena_slot == LookupArena::kInvalidSlot) {
        return;
    }
    arena_->lookup_arena_.on_response(slot.arena_slot, from.id, contacts,
                                      value.has_value());
    pump_lookup(pending.lookup_slot);
}

void KademliaNode::handle_store(const Contact& from, std::uint64_t rpc_id,
                                const NodeId& key, std::uint64_t value) {
    NodeArena& a = *arena_;
    if (!alive()) return;
    observe_sender(from);
    ++a.counters_[address_].requests_served;
    auto& storage = a.storage_[address_];
    const sim::SimTime expires = a.sim_.now() + a.config_.storage_expiry;
    const auto pos =
        std::lower_bound(storage.begin(), storage.end(), key,
                         [](const StoredObject& obj, const NodeId& k) {
                             return obj.key < k;
                         });
    if (pos != storage.end() && pos->key == key) {
        pos->value = value;
        pos->expires = expires;
    } else {
        storage.insert(pos, StoredObject{key, value, expires});
    }
    KademliaNode* peer = a.node_at(from.address);
    if (peer == nullptr) return;
    const Contact me = contact();
    a.network_.transmit(address_, from.address, [peer, rpc_id, me] {
        peer->handle_store_response(rpc_id, me);
    });
}

void KademliaNode::handle_store_response(std::uint64_t rpc_id, const Contact& from) {
    if (!alive()) return;
    observe_sender(from);
    PendingRpc pending;
    rpc_succeeded(rpc_id, from, &pending);
}

// ---------------------------------------------------------------- internals --

void KademliaNode::observe_sender(const Contact& from) {
    NodeArena& a = *arena_;
    RoutingTable& table = a.tables_[address_];
    const ObserveResult result = table.observe(from, a.sim_.now());
    if (result == ObserveResult::kBucketFull &&
        a.config_.bucket_policy == BucketPolicy::kPingEvict) {
        const int bucket = table.bucket_index_of(from.id);
        if (table.try_mark_eviction(bucket)) {
            const auto lrs = table.least_recently_seen(from.id);
            if (lrs.has_value()) {
                send_eviction_ping(*lrs);
            } else {
                table.clear_eviction(bucket);
            }
        }
    }
}

void KademliaNode::start_lookup(const NodeId& target, LookupMode mode,
                                LookupDoneFn on_done, bool disseminating,
                                std::uint64_t store_value, bool strict_k,
                                bool measured) {
    NodeArena& a = *arena_;
    KADSIM_ASSERT(alive());
    ++a.counters_[address_].lookups_started;
    if (measured) ++a.traffic_.issued;
    note_lookup_target(target);

    auto& lookups = a.lookups_[address_];
    std::uint32_t slot_index;
    if (!lookups.free_slots.empty()) {
        slot_index = lookups.free_slots.back();
        lookups.free_slots.pop_back();
    } else {
        slot_index = static_cast<std::uint32_t>(lookups.slots.size());
        lookups.slots.emplace_back();
    }
    auto& slot = lookups.slots[slot_index];
    slot.arena_slot =
        a.lookup_arena_.begin(id(), target, mode, strict_k, a.sim_.now());
    slot.on_done = std::move(on_done);
    slot.disseminating = disseminating;
    slot.measured = measured;
    slot.store_value = store_value;

    auto& seeds = a.acquire_scratch();
    a.tables_[address_].closest(target, seed_width(a.config_.k), seeds);
    const auto& bootstrap = a.bootstraps_[address_];
    if (seeds.empty() && bootstrap.has_value() && bootstrap->id != id()) {
        // Empty table (lost-join or drained by staleness): fall back to the
        // configured bootstrap address and try to re-enter the network.
        seeds.push_back(*bootstrap);
    }
    a.lookup_arena_.seed(slot.arena_slot, seeds);
    a.release_scratch();
    pump_lookup(slot_index);
}

void KademliaNode::pump_lookup(std::uint32_t slot_index) {
    NodeArena& a = *arena_;
    auto& slots = a.lookups_[address_].slots;
    while (true) {
        auto& slot = slots[slot_index];
        if (slot.arena_slot == LookupArena::kInvalidSlot) return;
        const auto next = a.lookup_arena_.next_query(slot.arena_slot);
        if (!next.has_value()) break;
        send_lookup_query(slot_index, *next);
    }
    if (a.lookup_arena_.finished(slots[slot_index].arena_slot)) {
        finish_lookup(slot_index);
    }
}

void KademliaNode::finish_lookup(std::uint32_t slot_index) {
    NodeArena& a = *arena_;
    auto& lookups = a.lookups_[address_];
    auto& slot = lookups.slots[slot_index];
    // Detach state before invoking callbacks: a callback may start new
    // lookups, reusing or growing the slot vector (and the arena slot).
    const LookupArena::Slot arena_slot = slot.arena_slot;
    LookupDoneFn on_done = std::move(slot.on_done);
    const bool disseminating = slot.disseminating;
    const bool measured = slot.measured;
    const std::uint64_t store_value = slot.store_value;
    slot.arena_slot = LookupArena::kInvalidSlot;
    slot.on_done.reset();
    ++slot.generation;  // invalidates in-flight RPC references to this slot
    lookups.free_slots.push_back(slot_index);

    auto& counters = a.counters_[address_];
    ++counters.lookups_completed;
    const bool value_found = a.lookup_arena_.value_found(arena_slot);
    const NodeId target = a.lookup_arena_.target(arena_slot);
    if (value_found) ++counters.values_found;

    auto& closest = a.acquire_scratch();
    a.lookup_arena_.successful_closest(arena_slot, closest);
    if (measured) {
        stats::LookupTraffic& t = a.traffic_;
        ++t.completed;
        if (value_found || !closest.empty()) ++t.succeeded;
        if (value_found) ++t.values_found;
        t.hops.add(a.lookup_arena_.hop_count(arena_slot));
        t.latency_ms.add(a.sim_.now() - a.lookup_arena_.issued_at(arena_slot));
    }
    a.lookup_arena_.release(arena_slot);

    if (disseminating) {
        for (const auto& c : closest) send_store(c, target, store_value);
    }
    if (on_done.has_value()) {
        on_done(target, value_found, closest);
    }
    a.release_scratch();
}

void KademliaNode::send_lookup_query(std::uint32_t slot_index, const Contact& to) {
    NodeArena& a = *arena_;
    auto& slot = a.lookups_[address_].slots[slot_index];
    const std::uint64_t rpc_id =
        register_rpc(to, RpcKind::kLookup, slot_index, slot.generation);
    KademliaNode* peer = a.node_at(to.address);
    KADSIM_ASSERT_MSG(peer != nullptr, "lookup query to unknown address");
    const Contact me = contact();
    const NodeId target = a.lookup_arena_.target(slot.arena_slot);
    if (a.lookup_arena_.mode(slot.arena_slot) == LookupMode::kFindValue) {
        a.network_.transmit(address_, to.address, [peer, me, rpc_id, target] {
            peer->handle_find_value(me, rpc_id, target);
        });
    } else {
        a.network_.transmit(address_, to.address, [peer, me, rpc_id, target] {
            peer->handle_find_node(me, rpc_id, target);
        });
    }
}

void KademliaNode::send_store(const Contact& to, const NodeId& key,
                              std::uint64_t value) {
    NodeArena& a = *arena_;
    const std::uint64_t rpc_id = register_rpc(to, RpcKind::kStore, 0, 0);
    ++a.counters_[address_].stores_sent;
    KademliaNode* peer = a.node_at(to.address);
    KADSIM_ASSERT_MSG(peer != nullptr, "store to unknown address");
    const Contact me = contact();
    a.network_.transmit(address_, to.address, [peer, me, rpc_id, key, value] {
        peer->handle_store(me, rpc_id, key, value);
    });
}

void KademliaNode::send_eviction_ping(const Contact& to) {
    NodeArena& a = *arena_;
    const std::uint64_t rpc_id = register_rpc(to, RpcKind::kEviction, 0, 0);
    KademliaNode* peer = a.node_at(to.address);
    KADSIM_ASSERT_MSG(peer != nullptr, "ping to unknown address");
    const Contact me = contact();
    a.network_.transmit(address_, to.address,
                        [peer, me, rpc_id] { peer->handle_ping(me, rpc_id); });
}

std::uint64_t KademliaNode::register_rpc(const Contact& to, RpcKind kind,
                                         std::uint32_t lookup_slot,
                                         std::uint32_t generation) {
    NodeArena& a = *arena_;
    const std::uint64_t rpc_id = a.next_rpc_id_++;
    a.pending_.emplace(rpc_id, PendingRpc{to, kind, lookup_slot, generation});
    ++a.counters_[address_].rpcs_sent;
    a.sim_.schedule_in(a.config_.rpc_timeout,
                       [this, rpc_id] { on_rpc_timeout(rpc_id); });
    return rpc_id;
}

void KademliaNode::on_rpc_timeout(std::uint64_t rpc_id) {
    NodeArena& a = *arena_;
    const PendingRpc* entry = a.pending_.find(rpc_id);
    if (entry == nullptr) return;  // answered in time
    if (!alive()) {
        // Sent before this node crashed: release the entry, change nothing
        // else (the pre-arena engine dropped these wholesale in crash()).
        a.pending_.erase(rpc_id);
        return;
    }
    const PendingRpc pending = *entry;
    a.pending_.erase(rpc_id);
    ++a.counters_[address_].rpcs_failed;

    RoutingTable& table = a.tables_[address_];
    // Staleness accounting (§4.1): the contact is dropped after s consecutive
    // failures. Under ping-evict, a removed contact is replaced from the
    // bucket's parking slot inside record_failure.
    table.record_failure(pending.to.id, a.sim_.now());

    if (pending.kind == RpcKind::kEviction) {
        table.clear_eviction(table.bucket_index_of(pending.to.id));
        return;
    }
    if (pending.kind != RpcKind::kLookup) return;
    auto& slot = a.lookups_[address_].slots[pending.lookup_slot];
    if (slot.generation != pending.lookup_generation ||
        slot.arena_slot == LookupArena::kInvalidSlot) {
        return;
    }
    a.lookup_arena_.on_failure(slot.arena_slot, pending.to.id);
    pump_lookup(pending.lookup_slot);
}

void KademliaNode::rpc_succeeded(std::uint64_t rpc_id, const Contact& from,
                                 PendingRpc* out_pending) {
    NodeArena& a = *arena_;
    const PendingRpc* entry = a.pending_.find(rpc_id);
    if (entry == nullptr) {
        out_pending->kind = RpcKind::kNone;  // late reply after timeout
        return;
    }
    *out_pending = *entry;
    a.pending_.erase(rpc_id);
    if (out_pending->kind == RpcKind::kEviction) {
        RoutingTable& table = a.tables_[address_];
        table.clear_eviction(table.bucket_index_of(from.id));
    }
}

void KademliaNode::do_refresh() {
    NodeArena& a = *arena_;
    if (!alive()) return;
    const sim::SimTime now = a.sim_.now();
    const RoutingTable& table = a.tables_[address_];
    for (int bucket = 0; bucket < a.config_.b; ++bucket) {
        // Only buckets in use are refreshed: with b=160 and realistic network
        // sizes, ~150 buckets cover id ranges containing no nodes at all;
        // refreshing those would make every node probe its own neighbourhood
        // 150 times per hour and over-mix the overlay (the paper's Figs. 2-3
        // hold at kappa ~ k through stabilization, which pins down this
        // reading of "each k-bucket").
        if (table.bucket_entries(bucket).empty()) continue;
        if (a.config_.refresh_policy == RefreshPolicy::kStaleOnly) {
            const sim::SimTime last =
                a.bucket_last_lookup_[static_cast<std::size_t>(address_) *
                                          static_cast<std::size_t>(a.config_.b) +
                                      static_cast<std::size_t>(bucket)];
            if (last + a.config_.refresh_interval > now) continue;
        }
        const NodeId target =
            NodeId::random_in_bucket(id(), bucket, a.rngs_[address_], a.config_.b);
        const auto delay = static_cast<sim::SimTime>(a.rngs_[address_].next_below(
            static_cast<std::uint64_t>(a.config_.refresh_spread)));
        a.sim_.schedule_in(delay, [this, target] {
            if (alive()) lookup_node(target, LookupDoneFn{});
        });
    }
}

void KademliaNode::do_advertise() {
    if (!alive()) return;
    start_lookup(id(), LookupMode::kFindNode, LookupDoneFn{}, false, 0,
                 /*strict_k=*/true, /*measured=*/false);
}

void KademliaNode::note_lookup_target(const NodeId& target) {
    NodeArena& a = *arena_;
    if (a.config_.refresh_policy != RefreshPolicy::kStaleOnly) return;
    if (target == id()) return;
    const int bucket = a.tables_[address_].bucket_index_of(target);
    a.bucket_last_lookup_[static_cast<std::size_t>(address_) *
                              static_cast<std::size_t>(a.config_.b) +
                          static_cast<std::size_t>(bucket)] = a.sim_.now();
}

void KademliaNode::gc_storage() {
    NodeArena& a = *arena_;
    if (!alive()) return;
    const sim::SimTime now = a.sim_.now();
    std::erase_if(a.storage_[address_],
                  [now](const StoredObject& obj) { return obj.expires <= now; });
}

}  // namespace kadsim::kad
