// A routing-table contact: identifier plus network address.
#ifndef KADSIM_KAD_CONTACT_H
#define KADSIM_KAD_CONTACT_H

#include "kad/node_id.h"
#include "net/network.h"

namespace kadsim::kad {

struct Contact {
    NodeId id;
    net::Address address = 0;

    friend constexpr bool operator==(const Contact& a, const Contact& b) noexcept {
        return a.id == b.id && a.address == b.address;
    }
};

}  // namespace kadsim::kad

#endif  // KADSIM_KAD_CONTACT_H
