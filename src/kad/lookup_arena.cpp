#include "kad/lookup_arena.h"

#include <algorithm>

#include "util/assert.h"

namespace kadsim::kad {

LookupArena::LookupArena(Params params) : params_(params) {
    KADSIM_ASSERT(params_.k > 0 && params_.alpha > 0 && params_.boost >= 0);
    if (params_.shortlist_cap == 0) {
        params_.shortlist_cap = static_cast<std::size_t>(4 * params_.k);
    }
    stride_ = params_.shortlist_cap;
}

LookupArena::Slot LookupArena::begin(const NodeId& self, const NodeId& target,
                                     LookupMode mode, bool strict_k,
                                     sim::SimTime now) {
    Slot slot;
    if (!free_.empty()) {
        slot = free_.back();
        free_.pop_back();
    } else {
        slot = static_cast<Slot>(self_.size());
        self_.emplace_back();
        target_.emplace_back();
        mode_.emplace_back();
        strict_.emplace_back();
        value_found_.emplace_back();
        size_.emplace_back();
        inflight_.emplace_back();
        ok_.emplace_back();
        streak_.emplace_back();
        widen_.emplace_back();
        hops_.emplace_back();
        issued_.emplace_back();
        stats_.emplace_back();
        entries_.resize(self_.size() * stride_);
    }
    self_[slot] = self;
    target_[slot] = target;
    mode_[slot] = static_cast<std::uint8_t>(mode);
    strict_[slot] = strict_k ? 1 : 0;
    value_found_[slot] = 0;
    size_[slot] = 0;
    inflight_[slot] = 0;
    ok_[slot] = 0;
    streak_[slot] = 0;
    widen_[slot] = 0;
    hops_[slot] = 0;
    issued_[slot] = now;
    stats_[slot] = LookupStats{};
    ++live_;
    return slot;
}

void LookupArena::release(Slot slot) {
    KADSIM_ASSERT(slot < self_.size());
    size_[slot] = 0;
    free_.push_back(slot);
    --live_;
}

void LookupArena::seed(Slot slot, std::span<const Contact> contacts) {
    for (const auto& c : contacts) insert_candidate(slot, c, 0);
}

bool LookupArena::insert_candidate(Slot slot, const Contact& c,
                                   std::uint8_t depth) {
    if (c.id == self_[slot]) return false;  // never query ourselves
    const NodeId dist = target_[slot].distance_to(c.id);
    Entry* base = slab(slot);
    const std::size_t count = size_[slot];
    // Sorted insert position by distance.
    const auto pos = static_cast<std::size_t>(
        std::lower_bound(base, base + count, dist,
                         [](const Entry& e, const NodeId& d) {
                             return e.distance < d;
                         }) -
        base);
    // Duplicate check: candidates with equal distance must be the same id
    // (XOR metric is injective in the second argument), so one comparison
    // suffices. Duplicates keep their original depth.
    if (pos != count && base[pos].distance == dist) return false;

    if (count >= stride_) {
        if (pos == count) return false;  // farther than everything
        // Drop the farthest droppable (kNew/kFailed) entry to make room;
        // in-flight and succeeded entries are load-bearing state.
        std::size_t victim = count;  // "end" sentinel
        for (std::size_t it = count; it-- > 0;) {
            if (base[it].state == State::kNew || base[it].state == State::kFailed) {
                victim = it;
                break;
            }
        }
        if (victim == count || victim < pos) return false;
        // erase(victim) + insert(pos) with pos <= victim collapses to one
        // right-shift of [pos, victim) — same element order as the vector
        // original, without touching entries past the victim.
        std::move_backward(base + pos, base + victim, base + victim + 1);
        base[pos] = Entry{dist, c, State::kNew, depth};
        return pos == 0;
    }
    std::move_backward(base + pos, base + count, base + count + 1);
    base[pos] = Entry{dist, c, State::kNew, depth};
    ++size_[slot];
    return pos == 0;
}

bool LookupArena::has_launchable(Slot slot) const {
    // A candidate is launchable if it is un-queried and sits among the k
    // closest non-failed entries (the classic "query the k closest" window).
    const Entry* base = slab(slot);
    const std::size_t count = size_[slot];
    int window = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (base[i].state == State::kFailed) continue;
        if (base[i].state == State::kNew) return true;
        if (++window >= params_.k) break;
    }
    return false;
}

std::optional<Contact> LookupArena::next_query(Slot slot) {
    // The in-flight window is α, widened by one per observed failure up to
    // α + boost when the Salah-style knob is on (widen_ stays 0 otherwise).
    const int window_cap = params_.alpha + widen_[slot];
    if (finished(slot) || inflight_[slot] >= window_cap) return std::nullopt;
    Entry* base = slab(slot);
    const std::size_t count = size_[slot];
    int window = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (base[i].state == State::kFailed) continue;
        if (base[i].state == State::kNew) {
            base[i].state = State::kInflight;
            ++inflight_[slot];
            ++stats_[slot].rpcs_sent;
            return base[i].contact;
        }
        if (++window >= params_.k) break;
    }
    return std::nullopt;
}

LookupArena::Entry* LookupArena::find_by_id(Slot slot, const NodeId& id) {
    const NodeId dist = target_[slot].distance_to(id);
    Entry* base = slab(slot);
    const std::size_t count = size_[slot];
    const auto pos = static_cast<std::size_t>(
        std::lower_bound(base, base + count, dist,
                         [](const Entry& e, const NodeId& d) {
                             return e.distance < d;
                         }) -
        base);
    if (pos != count && base[pos].distance == dist) return base + pos;
    return nullptr;
}

void LookupArena::on_response(Slot slot, const NodeId& from,
                              std::span<const Contact> returned,
                              bool value_found) {
    Entry* cand = find_by_id(slot, from);
    if (cand == nullptr || cand->state != State::kInflight) return;  // stale
    cand->state = State::kOk;
    const std::uint8_t depth = cand->depth;
    --inflight_[slot];
    ++ok_[slot];
    ++stats_[slot].rpcs_succeeded;
    if (depth >= hops_[slot] && hops_[slot] < 255) {
        hops_[slot] = static_cast<std::uint8_t>(depth + 1);
    }
    if (value_found && mode(slot) == LookupMode::kFindValue) {
        value_found_[slot] = 1;
    }
    if (value_found_[slot] != 0) return;
    const std::uint8_t next_depth =
        depth < 255 ? static_cast<std::uint8_t>(depth + 1) : depth;
    bool improved = false;
    for (const auto& c : returned) {
        // NOTE: insert_candidate may shift the slab, invalidating `cand` —
        // everything needed from it was copied out above.
        if (insert_candidate(slot, c, next_depth)) improved = true;
    }
    // "No more progress is made in getting closer to the target" (§4.1):
    // count consecutive responses that fail to produce a new closest
    // candidate; α such responses (one full query wave) end the lookup.
    if (improved) {
        streak_[slot] = 0;
    } else {
        ++streak_[slot];
    }
}

void LookupArena::on_failure(Slot slot, const NodeId& from) {
    Entry* cand = find_by_id(slot, from);
    if (cand == nullptr || cand->state != State::kInflight) return;
    cand->state = State::kFailed;
    --inflight_[slot];
    ++stats_[slot].rpcs_failed;
    if (widen_[slot] < params_.boost) ++widen_[slot];
}

bool LookupArena::closest_candidate_contacted(Slot slot) const {
    const Entry* base = slab(slot);
    const std::size_t count = size_[slot];
    for (std::size_t i = 0; i < count; ++i) {
        if (base[i].state == State::kFailed) continue;
        return base[i].state == State::kOk;
    }
    return true;  // nothing left to contact
}

bool LookupArena::finished(Slot slot) const {
    if (value_found_[slot] != 0) return true;
    if (ok_[slot] >= params_.k) return true;
    if (strict_[slot] == 0 && streak_[slot] >= params_.alpha &&
        closest_candidate_contacted(slot)) {
        return true;
    }
    return inflight_[slot] == 0 && !has_launchable(slot);
}

void LookupArena::successful_closest(Slot slot, std::vector<Contact>& out) const {
    const Entry* base = slab(slot);
    const std::size_t count = size_[slot];
    std::size_t taken = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (base[i].state == State::kOk) {
            out.push_back(base[i].contact);
            if (++taken == static_cast<std::size_t>(params_.k)) break;
        }
    }
}

std::size_t LookupArena::memory_bytes() const noexcept {
    return self_.capacity() * sizeof(NodeId) +
           target_.capacity() * sizeof(NodeId) +
           mode_.capacity() + strict_.capacity() + value_found_.capacity() +
           size_.capacity() * sizeof(std::uint16_t) +
           inflight_.capacity() * sizeof(std::int16_t) +
           ok_.capacity() * sizeof(std::int16_t) +
           streak_.capacity() * sizeof(std::int16_t) +
           widen_.capacity() + hops_.capacity() +
           issued_.capacity() * sizeof(sim::SimTime) +
           stats_.capacity() * sizeof(LookupStats) +
           entries_.capacity() * sizeof(Entry) + free_.capacity() * sizeof(Slot);
}

}  // namespace kadsim::kad
