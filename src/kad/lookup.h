// Iterative lookup state machine (paper §4.1).
//
// "Given a target identifier, a node queries α nodes from its routing table
// closest to that identifier. Those, in turn, answer with their own list of
// closest nodes, which can then be used in new queries. ... This process ends
// when a number of k nodes have been successfully contacted, or no more
// progress is made in getting closer to the target identifier."
//
// LookupState is a pure state machine (no I/O): the owning node asks
// next_query() for contacts to send FIND_NODE/FIND_VALUE to and feeds back
// on_response()/on_failure(). This keeps the trickiest protocol logic
// unit-testable without a simulator.
//
// Since the LookupArena refactor the machine itself lives in
// kad/lookup_arena.h (struct-of-arrays, slot-recycled, zero steady-state
// allocation); LookupState is a one-slot façade kept for unit tests and
// standalone callers. The simulator's hot path uses the arena directly.
#ifndef KADSIM_KAD_LOOKUP_H
#define KADSIM_KAD_LOOKUP_H

#include <optional>
#include <span>
#include <vector>

#include "kad/contact.h"
#include "kad/lookup_arena.h"

namespace kadsim::kad {

class LookupState {
public:
    struct Params {
        int k = 20;        ///< stop after k successful contacts
        int alpha = 3;     ///< max queries in flight
        std::size_t shortlist_cap = 0;  ///< 0 = 4·k
        /// Strict-k mode (original Kademlia join/STORE placement): the lookup
        /// only ends at k successes or candidate exhaustion — the no-progress
        /// early exit is disabled. Regular lookups use the paper's lax rule.
        bool strict_k = false;
    };

    LookupState(NodeId self, NodeId target, LookupMode mode, Params params)
        : arena_(LookupArena::Params{params.k, params.alpha,
                                     params.shortlist_cap, 0}),
          slot_(arena_.begin(self, target, mode, params.strict_k, 0)) {}

    /// Seeds the shortlist with the caller's own closest contacts.
    void seed(std::span<const Contact> contacts) { arena_.seed(slot_, contacts); }

    /// Next contact to query, marking it in-flight — or nullopt when either α
    /// queries are outstanding or no un-queried candidate remains among the k
    /// closest non-failed entries. Call repeatedly until nullopt.
    [[nodiscard]] std::optional<Contact> next_query() {
        return arena_.next_query(slot_);
    }

    /// Successful reply from `from` carrying its closest contacts.
    /// `value_found` short-circuits a kFindValue lookup.
    void on_response(const NodeId& from, std::span<const Contact> returned,
                     bool value_found) {
        arena_.on_response(slot_, from, returned, value_found);
    }

    /// Query to `from` failed (timeout).
    void on_failure(const NodeId& from) { arena_.on_failure(slot_, from); }

    /// True once the lookup reached a terminal state (§4.1): k successful
    /// contacts, value found, α consecutive responses without getting closer
    /// to the target (with the closest known candidate contacted), or
    /// candidate exhaustion.
    [[nodiscard]] bool finished() const { return arena_.finished(slot_); }

    [[nodiscard]] bool value_found() const noexcept {
        return arena_.value_found(slot_);
    }
    [[nodiscard]] const NodeId& target() const noexcept {
        return arena_.target(slot_);
    }
    [[nodiscard]] LookupMode mode() const noexcept { return arena_.mode(slot_); }
    [[nodiscard]] int inflight() const noexcept { return arena_.inflight(slot_); }
    [[nodiscard]] const LookupStats& stats() const noexcept {
        return arena_.stats(slot_);
    }
    /// Iteration depth of the deepest successful contact (see
    /// LookupArena::hop_count).
    [[nodiscard]] int hop_count() const noexcept {
        return arena_.hop_count(slot_);
    }

    /// Successfully contacted nodes, closest-first, at most k.
    [[nodiscard]] std::vector<Contact> successful_closest() const {
        std::vector<Contact> out;
        arena_.successful_closest(slot_, out);
        return out;
    }

    /// Number of distinct candidates ever tracked (tests).
    [[nodiscard]] std::size_t shortlist_size() const noexcept {
        return arena_.shortlist_size(slot_);
    }

private:
    LookupArena arena_;
    LookupArena::Slot slot_;
};

}  // namespace kadsim::kad

#endif  // KADSIM_KAD_LOOKUP_H
