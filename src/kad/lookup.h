// Iterative lookup state machine (paper §4.1).
//
// "Given a target identifier, a node queries α nodes from its routing table
// closest to that identifier. Those, in turn, answer with their own list of
// closest nodes, which can then be used in new queries. ... This process ends
// when a number of k nodes have been successfully contacted, or no more
// progress is made in getting closer to the target identifier."
//
// LookupState is a pure state machine (no I/O): the owning node asks
// next_query() for contacts to send FIND_NODE/FIND_VALUE to and feeds back
// on_response()/on_failure(). This keeps the trickiest protocol logic
// unit-testable without a simulator.
#ifndef KADSIM_KAD_LOOKUP_H
#define KADSIM_KAD_LOOKUP_H

#include <optional>
#include <span>
#include <vector>

#include "kad/contact.h"

namespace kadsim::kad {

enum class LookupMode { kFindNode, kFindValue };

struct LookupStats {
    int rpcs_sent = 0;
    int rpcs_failed = 0;
    int rpcs_succeeded = 0;
};

class LookupState {
public:
    struct Params {
        int k = 20;        ///< stop after k successful contacts
        int alpha = 3;     ///< max queries in flight
        std::size_t shortlist_cap = 0;  ///< 0 = 4·k
        /// Strict-k mode (original Kademlia join/STORE placement): the lookup
        /// only ends at k successes or candidate exhaustion — the no-progress
        /// early exit is disabled. Regular lookups use the paper's lax rule.
        bool strict_k = false;
    };

    LookupState(NodeId self, NodeId target, LookupMode mode, Params params);

    /// Seeds the shortlist with the caller's own closest contacts.
    void seed(std::span<const Contact> contacts);

    /// Next contact to query, marking it in-flight — or nullopt when either α
    /// queries are outstanding or no un-queried candidate remains among the k
    /// closest non-failed entries. Call repeatedly until nullopt.
    [[nodiscard]] std::optional<Contact> next_query();

    /// Successful reply from `from` carrying its closest contacts.
    /// `value_found` short-circuits a kFindValue lookup.
    void on_response(const NodeId& from, std::span<const Contact> returned,
                     bool value_found);

    /// Query to `from` failed (timeout).
    void on_failure(const NodeId& from);

    /// True once the lookup reached a terminal state (§4.1): k successful
    /// contacts, value found, α consecutive responses without getting closer
    /// to the target (with the closest known candidate contacted), or
    /// candidate exhaustion.
    [[nodiscard]] bool finished() const;

    [[nodiscard]] bool value_found() const noexcept { return value_found_; }
    [[nodiscard]] const NodeId& target() const noexcept { return target_; }
    [[nodiscard]] LookupMode mode() const noexcept { return mode_; }
    [[nodiscard]] int inflight() const noexcept { return inflight_; }
    [[nodiscard]] const LookupStats& stats() const noexcept { return stats_; }

    /// Successfully contacted nodes, closest-first, at most k.
    [[nodiscard]] std::vector<Contact> successful_closest() const;

    /// Number of distinct candidates ever tracked (tests).
    [[nodiscard]] std::size_t shortlist_size() const noexcept {
        return shortlist_.size();
    }

private:
    enum class State : std::uint8_t { kNew, kInflight, kOk, kFailed };

    struct Candidate {
        NodeId distance;  // to target (cached sort key)
        Contact contact;
        State state = State::kNew;
    };

    /// Returns true when the candidate was inserted AND is now the closest
    /// known candidate ("progress in getting closer", §4.1).
    bool insert_candidate(const Contact& c);
    [[nodiscard]] bool has_launchable() const;
    [[nodiscard]] bool closest_candidate_contacted() const;
    Candidate* find_by_id(const NodeId& id);

    NodeId self_;
    NodeId target_;
    LookupMode mode_;
    Params params_;
    std::vector<Candidate> shortlist_;  // sorted by distance, ascending
    int inflight_ = 0;
    int ok_ = 0;
    int no_progress_streak_ = 0;  // consecutive responses without improvement
    bool value_found_ = false;
    LookupStats stats_;
};

}  // namespace kadsim::kad

#endif  // KADSIM_KAD_LOOKUP_H
