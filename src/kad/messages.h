// Kademlia RPC vocabulary (paper §4.1). The engine delivers RPCs as typed
// handler invocations; these structs document the wire content and are used
// by tests and the message-size accounting.
#ifndef KADSIM_KAD_MESSAGES_H
#define KADSIM_KAD_MESSAGES_H

#include <cstdint>
#include <optional>
#include <vector>

#include "kad/contact.h"

namespace kadsim::kad {

enum class RpcType : std::uint8_t {
    kPing,
    kFindNode,
    kFindValue,
    kStore,
};

constexpr const char* to_string(RpcType t) noexcept {
    switch (t) {
        case RpcType::kPing: return "PING";
        case RpcType::kFindNode: return "FIND_NODE";
        case RpcType::kFindValue: return "FIND_VALUE";
        case RpcType::kStore: return "STORE";
    }
    return "?";
}

/// PING — liveness probe (used by the ping-evict bucket policy).
struct PingRequest {
    Contact from;
    std::uint64_t rpc_id = 0;
};

/// FIND_NODE — returns the k contacts closest to `target` known to the
/// receiver (excluding the requester).
struct FindNodeRequest {
    Contact from;
    std::uint64_t rpc_id = 0;
    NodeId target;
};

struct FindNodeResponse {
    std::uint64_t rpc_id = 0;
    std::vector<Contact> contacts;
};

/// FIND_VALUE — like FIND_NODE, but short-circuits with the value when the
/// receiver stores the requested object.
struct FindValueRequest {
    Contact from;
    std::uint64_t rpc_id = 0;
    NodeId key;
};

struct FindValueResponse {
    std::uint64_t rpc_id = 0;
    std::optional<std::uint64_t> value;
    std::vector<Contact> contacts;  // empty when value is present
};

/// STORE — replicates a data object at the receiver.
struct StoreRequest {
    Contact from;
    std::uint64_t rpc_id = 0;
    NodeId key;
    std::uint64_t value = 0;
};

struct StoreResponse {
    std::uint64_t rpc_id = 0;
};

}  // namespace kadsim::kad

#endif  // KADSIM_KAD_MESSAGES_H
