// Resolution of network addresses to protocol instances. Implemented by the
// scenario runner; kept abstract so kad does not depend on scen.
#ifndef KADSIM_KAD_DIRECTORY_H
#define KADSIM_KAD_DIRECTORY_H

#include "net/network.h"

namespace kadsim::kad {

class KademliaNode;

class NodeDirectory {
public:
    virtual ~NodeDirectory() = default;

    /// Protocol instance listening on `address`, or nullptr if the address
    /// was never assigned. Crashed nodes keep their (inert) instance so that
    /// in-flight delivery closures remain safe; the network's liveness check
    /// drops their traffic.
    [[nodiscard]] virtual KademliaNode* node_at(net::Address address) noexcept = 0;
};

}  // namespace kadsim::kad

#endif  // KADSIM_KAD_DIRECTORY_H
