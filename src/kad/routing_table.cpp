#include "kad/routing_table.h"

#include <algorithm>

namespace kadsim::kad {

RoutingTable::RoutingTable(NodeId self, const KademliaConfig& config)
    : self_(self), config_(config), buckets_(static_cast<std::size_t>(config.b)) {
    config.validate();
}

ObserveResult RoutingTable::observe(const Contact& c, sim::SimTime now) {
    if (c.id == self_) return ObserveResult::kSelf;
    Bucket& bucket = bucket_for(c.id);
    auto& entries = bucket.entries;

    const auto it = std::find_if(entries.begin(), entries.end(),
                                 [&](const Entry& e) { return e.contact.id == c.id; });
    if (it != entries.end()) {
        // Move to most-recently-seen position (back), reset failure streak.
        Entry updated = *it;
        updated.last_seen = now;
        updated.consecutive_failures = 0;
        updated.contact.address = c.address;
        entries.erase(it);
        entries.push_back(updated);
        return ObserveResult::kUpdated;
    }

    if (entries.size() < static_cast<std::size_t>(config_.k)) {
        entries.push_back(Entry{c, now, 0});
        ++size_;
        return ObserveResult::kInserted;
    }

    if (config_.bucket_policy == BucketPolicy::kPingEvict) {
        bucket.replacement = c;  // newest candidate wins the parking slot
    }
    return ObserveResult::kBucketFull;
}

bool RoutingTable::record_failure(const NodeId& id, sim::SimTime now) {
    if (id == self_) return false;
    Bucket& bucket = bucket_for(id);
    auto& entries = bucket.entries;
    const auto it = std::find_if(entries.begin(), entries.end(),
                                 [&](const Entry& e) { return e.contact.id == id; });
    if (it == entries.end()) return false;
    if (++it->consecutive_failures < config_.s) return false;

    entries.erase(it);
    --size_;
    if (bucket.replacement.has_value()) {
        entries.push_back(Entry{*bucket.replacement, now, 0});
        ++size_;
        bucket.replacement.reset();
    }
    return true;
}

bool RoutingTable::remove(const NodeId& id) {
    if (id == self_) return false;
    auto& entries = bucket_for(id).entries;
    const auto it = std::find_if(entries.begin(), entries.end(),
                                 [&](const Entry& e) { return e.contact.id == id; });
    if (it == entries.end()) return false;
    entries.erase(it);
    --size_;
    return true;
}

void RoutingTable::clear() noexcept {
    for (auto& bucket : buckets_) {
        bucket.entries.clear();
        bucket.replacement.reset();
    }
    size_ = 0;
    scratch_.clear();
    scratch_.shrink_to_fit();
    bucket_order_.clear();
    bucket_order_.shrink_to_fit();
}

bool RoutingTable::contains(const NodeId& id) const {
    if (id == self_) return false;
    const auto& entries = bucket_for(id).entries;
    return std::any_of(entries.begin(), entries.end(),
                       [&](const Entry& e) { return e.contact.id == id; });
}

std::optional<Contact> RoutingTable::least_recently_seen(const NodeId& id) const {
    const auto& entries = bucket_for(id).entries;
    if (entries.empty()) return std::nullopt;
    return entries.front().contact;
}

void RoutingTable::closest(const NodeId& target, std::size_t count,
                           std::vector<Contact>& out, const NodeId* exclude) const {
    if (count == 0) return;
    // Exact selection without scanning every contact. For d = self ⊕ target,
    // a contact in bucket i has distance-to-target bits: above i taken from
    // d, bit i equal to ¬d_i, bits below i arbitrary — so the per-bucket
    // distance ranges are pairwise disjoint. Visiting buckets by ascending
    // range base and sorting only inside each visited bucket yields the
    // globally closest contacts; stop once `count` are collected.
    const NodeId d = self_.distance_to(target);
    bucket_order_.clear();
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i].entries.empty()) continue;
        NodeId base = d;
        base.clear_low_bits(static_cast<int>(i) + 1);
        base.set_bit(static_cast<int>(i), !d.get_bit(static_cast<int>(i)));
        bucket_order_.emplace_back(base, static_cast<int>(i));
    }
    std::sort(bucket_order_.begin(), bucket_order_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    std::size_t collected = 0;
    for (const auto& [base, index] : bucket_order_) {
        if (collected >= count) break;
        const auto& entries = buckets_[static_cast<std::size_t>(index)].entries;
        scratch_.clear();
        for (const auto& entry : entries) {
            if (exclude != nullptr && entry.contact.id == *exclude) continue;
            scratch_.emplace_back(target.distance_to(entry.contact.id), entry.contact);
        }
        std::sort(scratch_.begin(), scratch_.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        for (const auto& [dist, contact] : scratch_) {
            if (collected >= count) break;
            out.push_back(contact);
            ++collected;
        }
    }
}

int RoutingTable::nonempty_bucket_count() const noexcept {
    int count = 0;
    for (const auto& bucket : buckets_) {
        if (!bucket.entries.empty()) ++count;
    }
    return count;
}

bool RoutingTable::check_invariants() const {
    std::size_t total = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const auto& entries = buckets_[i].entries;
        if (entries.size() > static_cast<std::size_t>(config_.k)) return false;
        for (const auto& entry : entries) {
            if (entry.contact.id == self_) return false;
            const auto dist = self_.distance_to(entry.contact.id);
            if (dist.is_zero()) return false;
            if (static_cast<std::size_t>(dist.bucket_index()) != i) return false;
            if (entry.consecutive_failures >= config_.s) return false;
        }
        for (std::size_t j = 1; j < entries.size(); ++j) {
            if (entries[j - 1].last_seen > entries[j].last_seen) return false;
        }
        total += entries.size();
    }
    return total == size_;
}

}  // namespace kadsim::kad
