#include "kad/routing_table.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace kadsim::kad {

namespace {
/// closest() scratch, shared per thread rather than per table: region shards
/// run closest() concurrently but each on its own thread, so there is no
/// contention and no per-query allocation once the vector is warm.
struct ClosestScratch {
    std::vector<std::pair<NodeId, std::uint8_t>> items;  // (distance, entry idx)
};
thread_local ClosestScratch t_scratch;
}  // namespace

RoutingTable::RoutingTable(NodeId self, const KademliaConfig& config)
    : self_(self),
      config_(&config),
      owned_(std::make_unique<BucketArena>(config.k)),
      arena_(owned_.get()) {
    config.validate();
    meta_base_ = arena_->allocate_meta(config.b);
}

RoutingTable::RoutingTable(NodeId self, const KademliaConfig& config,
                           BucketArena& arena)
    : self_(self), config_(&config), arena_(&arena) {
    meta_base_ = arena_->allocate_meta(config.b);
}

int RoutingTable::find_in_bucket(const BucketMeta& meta, const NodeId& id) const {
    if (meta.count == 0) return -1;
    const Entry* entries = arena_->block(meta.block);
    for (int i = 0; i < static_cast<int>(meta.count); ++i) {
        if (entries[i].contact.id == id) return i;
    }
    return -1;
}

std::uint32_t RoutingTable::bucket_offset(int bucket) const noexcept {
    const BucketMeta* metas = arena_->meta(meta_base_);
    const auto limb_end = static_cast<std::size_t>(bucket / 64);
    std::uint32_t off = 0;
    for (std::size_t limb = 0; limb <= limb_end; ++limb) {
        std::uint64_t bits = occupancy_[limb];
        if (limb == limb_end) bits &= (1ULL << (bucket % 64)) - 1;
        while (bits != 0) {
            const std::size_t b =
                limb * 64 + static_cast<std::size_t>(std::countr_zero(bits));
            bits &= bits - 1;
            off += metas[b].count;
        }
    }
    return off;
}

net::Address* RoutingTable::mirror_ensure(std::size_t needed) {
    if (mirror_ == BucketArena::kNoMirror) {
        mirror_class_ = BucketArena::mirror_class_for(needed);
        mirror_ = arena_->mirror_alloc(mirror_class_);
        return arena_->mirror(mirror_);
    }
    if (needed <= (std::size_t{1} << mirror_class_)) {
        return arena_->mirror(mirror_);
    }
    const std::uint8_t cls = BucketArena::mirror_class_for(needed);
    const std::uint32_t off = arena_->mirror_alloc(cls);  // may move the slab
    net::Address* dst = arena_->mirror(off);
    std::memcpy(dst, arena_->mirror(mirror_), size_ * sizeof(net::Address));
    arena_->mirror_free(mirror_, mirror_class_);
    mirror_ = off;
    mirror_class_ = cls;
    return dst;
}

ObserveResult RoutingTable::observe(const Contact& c, sim::SimTime now) {
    if (c.id == self_) return ObserveResult::kSelf;
    const int bucket = bucket_index_of(c.id);
    BucketMeta& meta = meta_of(bucket);

    const int found = find_in_bucket(meta, c.id);
    if (found >= 0) {
        // Move to most-recently-seen position (back), reset failure streak.
        Entry* entries = arena_->block(meta.block);
        net::Address* seg = arena_->mirror(mirror_) + bucket_offset(bucket);
        Entry updated = entries[found];
        updated.last_seen = now;
        updated.consecutive_failures = 0;
        updated.contact.address = c.address;
        std::move(entries + found + 1, entries + meta.count, entries + found);
        std::move(seg + found + 1, seg + meta.count, seg + found);
        entries[meta.count - 1] = updated;
        seg[meta.count - 1] = updated.contact.address;
        return ObserveResult::kUpdated;
    }

    if (meta.count < static_cast<std::uint8_t>(config_->k)) {
        if (meta.block == BucketMeta::kNoBlock) {
            meta.block = arena_->allocate_block();  // invalidates entry ptrs
        }
        arena_->block(meta.block)[meta.count] = Entry{c, now, 0};
        net::Address* m = mirror_ensure(size_ + 1);
        const std::uint32_t pos = bucket_offset(bucket) + meta.count;
        std::move_backward(m + pos, m + size_, m + size_ + 1);
        m[pos] = c.address;
        ++meta.count;
        ++size_;
        set_occupancy(bucket, true);
        return ObserveResult::kInserted;
    }

    if (config_->bucket_policy == BucketPolicy::kPingEvict) {
        park_replacement(bucket, c);  // newest candidate wins the parking slot
    }
    return ObserveResult::kBucketFull;
}

bool RoutingTable::record_failure(const NodeId& id, sim::SimTime now) {
    if (id == self_) return false;
    const int bucket = bucket_index_of(id);
    BucketMeta& meta = meta_of(bucket);
    const int found = find_in_bucket(meta, id);
    if (found < 0) return false;
    Entry* entries = arena_->block(meta.block);
    if (++entries[found].consecutive_failures < config_->s) return false;

    net::Address* m = arena_->mirror(mirror_);
    const std::uint32_t pos = bucket_offset(bucket) + static_cast<std::uint32_t>(found);
    std::move(entries + found + 1, entries + meta.count, entries + found);
    std::move(m + pos + 1, m + size_, m + pos);
    --meta.count;
    --size_;
    if ((meta.flags & BucketMeta::kHasReplacement) != 0) {
        promote_replacement(bucket, meta, now);
    }
    if (meta.count == 0) {
        arena_->free_block(meta.block);
        meta.block = BucketMeta::kNoBlock;
    }
    set_occupancy(bucket, meta.count > 0);
    return true;
}

bool RoutingTable::remove(const NodeId& id) {
    if (id == self_) return false;
    const int bucket = bucket_index_of(id);
    BucketMeta& meta = meta_of(bucket);
    const int found = find_in_bucket(meta, id);
    if (found < 0) return false;
    Entry* entries = arena_->block(meta.block);
    net::Address* m = arena_->mirror(mirror_);
    const std::uint32_t pos = bucket_offset(bucket) + static_cast<std::uint32_t>(found);
    std::move(entries + found + 1, entries + meta.count, entries + found);
    std::move(m + pos + 1, m + size_, m + pos);
    --meta.count;
    --size_;
    if (meta.count == 0) {
        arena_->free_block(meta.block);
        meta.block = BucketMeta::kNoBlock;
        set_occupancy(bucket, false);
    }
    return true;
}

void RoutingTable::clear() noexcept {
    BucketMeta* metas = arena_->meta(meta_base_);
    for (int b = 0; b < config_->b; ++b) {
        if (metas[b].block != BucketMeta::kNoBlock) {
            arena_->free_block(metas[b].block);
        }
        metas[b] = BucketMeta{};
    }
    if (mirror_ != BucketArena::kNoMirror) {
        arena_->mirror_free(mirror_, mirror_class_);
        mirror_ = BucketArena::kNoMirror;
        mirror_class_ = 0;
    }
    size_ = 0;
    occupancy_ = {};
    replacements_.clear();
}

bool RoutingTable::contains(const NodeId& id) const {
    if (id == self_) return false;
    return find_in_bucket(meta_of(bucket_index_of(id)), id) >= 0;
}

std::optional<Contact> RoutingTable::least_recently_seen(const NodeId& id) const {
    const BucketMeta& meta = meta_of(bucket_index_of(id));
    if (meta.count == 0) return std::nullopt;
    return arena_->block(meta.block)[0].contact;
}

void RoutingTable::closest(const NodeId& target, std::size_t count,
                           std::vector<Contact>& out, const NodeId* exclude) const {
    if (count == 0) return;
    // Exact selection without scanning every contact. For d = self ⊕ target,
    // a contact in bucket i has distance-to-target bits: above i taken from
    // d, bit i equal to ¬d_i, bits below i arbitrary — so the per-bucket
    // distance ranges are pairwise disjoint, with range base = d with bits
    // [0,i] rewritten to (¬d_i, 0…0). Flipping a 1-bit of d lowers the base
    // below d (the higher the bit, the lower the base); flipping a 0-bit
    // raises it above d (the lower the bit, the closer to d). Ascending-base
    // order is therefore: buckets with d_i = 1 by DESCENDING i, then buckets
    // with d_i = 0 by ASCENDING i — no per-bucket base ids, no sort. Visit
    // in that order, sorting only inside each visited bucket, and stop once
    // `count` contacts are collected.
    const NodeId d = self_.distance_to(target);
    const BucketMeta* metas = arena_->meta(meta_base_);
    auto& scratch = t_scratch.items;
    std::size_t collected = 0;
    const auto visit = [&](int index) {  // false = quota reached, stop
        const BucketMeta& meta = metas[index];
        const Entry* entries = arena_->block(meta.block);
        scratch.clear();
        for (std::uint8_t i = 0; i < meta.count; ++i) {
            const Entry& entry = entries[i];
            if (exclude != nullptr && entry.contact.id == *exclude) continue;
            scratch.emplace_back(target.distance_to(entry.contact.id), i);
        }
        std::sort(scratch.begin(), scratch.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        for (const auto& [dist, idx] : scratch) {
            if (collected >= count) break;
            out.push_back(entries[idx].contact);
            ++collected;
        }
        return collected < count;
    };
    // Only occupied buckets are walked: set bits of d ∧ occ from the top,
    // then set bits of ¬d ∧ occ from the bottom.
    for (int limb = 2; limb >= 0; --limb) {
        std::uint64_t word = d.limb(limb) & occupancy_[static_cast<std::size_t>(limb)];
        while (word != 0) {
            const int bit = 63 - std::countl_zero(word);
            word &= ~(1ULL << bit);
            if (!visit(limb * 64 + bit)) return;
        }
    }
    for (int limb = 0; limb < 3; ++limb) {
        std::uint64_t word = ~d.limb(limb) & occupancy_[static_cast<std::size_t>(limb)];
        while (word != 0) {
            const int bit = std::countr_zero(word);
            word &= word - 1;
            if (!visit(limb * 64 + bit)) return;
        }
    }
}

int RoutingTable::nonempty_bucket_count() const noexcept {
    const BucketMeta* metas = arena_->meta(meta_base_);
    int count = 0;
    for (int b = 0; b < config_->b; ++b) {
        if (metas[b].count > 0) ++count;
    }
    return count;
}

bool RoutingTable::try_mark_eviction(int bucket) noexcept {
    BucketMeta& meta = meta_of(bucket);
    if ((meta.flags & BucketMeta::kEvictionPingOutstanding) != 0) return false;
    meta.flags |= BucketMeta::kEvictionPingOutstanding;
    return true;
}

void RoutingTable::clear_eviction(int bucket) noexcept {
    meta_of(bucket).flags &=
        static_cast<std::uint8_t>(~BucketMeta::kEvictionPingOutstanding);
}

void RoutingTable::park_replacement(int bucket, const Contact& c) {
    BucketMeta& meta = meta_of(bucket);
    if ((meta.flags & BucketMeta::kHasReplacement) != 0) {
        for (auto& [b, contact] : replacements_) {
            if (b == static_cast<std::uint16_t>(bucket)) {
                contact = c;
                return;
            }
        }
        KADSIM_ASSERT_MSG(false, "kHasReplacement set but no parked contact");
    }
    replacements_.emplace_back(static_cast<std::uint16_t>(bucket), c);
    meta.flags |= BucketMeta::kHasReplacement;
}

void RoutingTable::promote_replacement(int bucket, BucketMeta& meta,
                                       sim::SimTime now) {
    const auto it = std::find_if(
        replacements_.begin(), replacements_.end(),
        [bucket](const auto& r) { return r.first == static_cast<std::uint16_t>(bucket); });
    KADSIM_ASSERT(it != replacements_.end());
    arena_->block(meta.block)[meta.count] = Entry{it->second, now, 0};
    net::Address* m = mirror_ensure(size_ + 1);
    const std::uint32_t pos = bucket_offset(bucket) + meta.count;
    std::move_backward(m + pos, m + size_, m + size_ + 1);
    m[pos] = it->second.address;
    ++meta.count;
    ++size_;
    replacements_.erase(it);
    meta.flags &= static_cast<std::uint8_t>(~BucketMeta::kHasReplacement);
}

bool RoutingTable::check_invariants() const {
    const BucketMeta* metas = arena_->meta(meta_base_);
    const net::Address* mirror =
        size_ > 0 ? arena_->mirror(mirror_) : nullptr;
    std::size_t total = 0;
    for (int b = 0; b < config_->b; ++b) {
        const BucketMeta& meta = metas[b];
        if (meta.count > static_cast<std::uint8_t>(config_->k)) return false;
        if (meta.count > 0 && meta.block == BucketMeta::kNoBlock) return false;
        const bool occ_bit = (occupancy_[static_cast<std::size_t>(b / 64)] >>
                              (b % 64) & 1ULL) != 0;
        if (occ_bit != (meta.count > 0)) return false;
        const Entry* entries = meta.count > 0 ? arena_->block(meta.block) : nullptr;
        for (std::uint8_t i = 0; i < meta.count; ++i) {
            const Entry& entry = entries[i];
            // The export mirror must track every entry mutation exactly:
            // bucket-ascending, LRU within a bucket, densely packed.
            if (mirror[total + i] != entry.contact.address) return false;
            if (entry.contact.id == self_) return false;
            const auto dist = self_.distance_to(entry.contact.id);
            if (dist.is_zero()) return false;
            if (dist.bucket_index() != b) return false;
            if (entry.consecutive_failures >= config_->s) return false;
        }
        for (std::uint8_t j = 1; j < meta.count; ++j) {
            if (entries[j - 1].last_seen > entries[j].last_seen) return false;
        }
        total += meta.count;
    }
    for (const auto& [bucket, contact] : replacements_) {
        if ((metas[bucket].flags & BucketMeta::kHasReplacement) == 0) return false;
    }
    return total == size_;
}

}  // namespace kadsim::kad
