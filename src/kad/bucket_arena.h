// Flat backing store for routing-table buckets.
//
// Every bucket of every routing table in a region draws its entry storage
// from one shared slab of k-sized blocks, and its per-bucket bookkeeping
// (block handle, fill count, protocol flags) from one contiguous metadata
// array. A table is then just {self id, metadata range}: no per-bucket
// std::vector headers, no scattered heap churn as buckets fill and drain
// under churn — the same flat-memory treatment PR 4 gave the flow kernel.
//
// Blocks are allocated lazily on a bucket's first insert and returned to a
// free list when the bucket drains (or the node crashes), so resident bytes
// track the number of *populated* buckets, not b × n.
#ifndef KADSIM_KAD_BUCKET_ARENA_H
#define KADSIM_KAD_BUCKET_ARENA_H

#include <array>
#include <cstdint>
#include <vector>

#include "kad/contact.h"
#include "sim/time.h"
#include "util/assert.h"

namespace kadsim::kad {

/// One stored contact (identical layout/semantics to the former
/// RoutingTable::Entry). Within a block, index 0 is the least recently seen
/// contact — the original protocol's LRU bucket order.
struct BucketEntry {
    Contact contact;
    sim::SimTime last_seen = 0;
    int consecutive_failures = 0;
};

/// Per-bucket bookkeeping, allocated as one contiguous range of b entries
/// per table. The protocol flags ride along so KademliaNode needs no side
/// tables (the old per-node unordered_set of eviction-ping buckets).
struct BucketMeta {
    static constexpr std::uint32_t kNoBlock = 0xFFFFFFFFu;
    static constexpr std::uint8_t kEvictionPingOutstanding = 1u << 0;
    static constexpr std::uint8_t kHasReplacement = 1u << 1;

    std::uint32_t block = kNoBlock;
    std::uint8_t count = 0;
    std::uint8_t flags = 0;
};

class BucketArena {
public:
    explicit BucketArena(int k) : k_(static_cast<std::uint32_t>(k)) {
        KADSIM_ASSERT(k > 0);
    }

    BucketArena(const BucketArena&) = delete;
    BucketArena& operator=(const BucketArena&) = delete;

    [[nodiscard]] int k() const noexcept { return static_cast<int>(k_); }

    /// Hands out a k-entry block (recycled from drained buckets first).
    [[nodiscard]] std::uint32_t allocate_block() {
        if (!free_blocks_.empty()) {
            const std::uint32_t b = free_blocks_.back();
            free_blocks_.pop_back();
            return b;
        }
        const std::uint32_t b =
            static_cast<std::uint32_t>(slab_.size() / k_);
        slab_.resize(slab_.size() + k_);
        return b;
    }

    void free_block(std::uint32_t block) { free_blocks_.push_back(block); }

    /// Entry storage of `block` (k consecutive entries). The pointer is
    /// invalidated by the next allocate_block — re-fetch after allocating.
    [[nodiscard]] BucketEntry* block(std::uint32_t b) noexcept {
        return slab_.data() + static_cast<std::size_t>(b) * k_;
    }
    [[nodiscard]] const BucketEntry* block(std::uint32_t b) const noexcept {
        return slab_.data() + static_cast<std::size_t>(b) * k_;
    }

    /// Reserves a contiguous range of `buckets` value-initialized BucketMeta
    /// records (one table's worth) and returns its base index.
    [[nodiscard]] std::uint32_t allocate_meta(int buckets) {
        const auto base = static_cast<std::uint32_t>(meta_.size());
        meta_.resize(meta_.size() + static_cast<std::size_t>(buckets));
        return base;
    }

    [[nodiscard]] BucketMeta* meta(std::uint32_t base) noexcept {
        return meta_.data() + base;
    }
    [[nodiscard]] const BucketMeta* meta(std::uint32_t base) const noexcept {
        return meta_.data() + base;
    }

    /// Mirror spans: every table keeps the addresses of all its stored
    /// contacts contiguous in export order (bucket-ascending, LRU within a
    /// bucket) inside this shared slab. Snapshot capture then copies one
    /// dense size()-entry run per node — no per-bucket walk, no striding
    /// over wide BucketEntry records. Spans have power-of-two capacities and
    /// are recycled through per-class free lists when a table grows or
    /// clears.
    static constexpr std::uint32_t kNoMirror = 0xFFFFFFFFu;
    static constexpr int kMirrorMinClass = 3;   // 8 slots
    static constexpr int kMirrorMaxClass = 13;  // 8192 slots >= b * k

    /// Smallest class whose capacity holds `needed` entries.
    [[nodiscard]] static std::uint8_t mirror_class_for(std::size_t needed) noexcept {
        int cls = kMirrorMinClass;
        while ((std::size_t{1} << cls) < needed) ++cls;
        return static_cast<std::uint8_t>(cls);
    }

    /// Allocates a mirror span of capacity 1 << cls (recycled first).
    [[nodiscard]] std::uint32_t mirror_alloc(std::uint8_t cls) {
        auto& fl = mirror_free_[cls];
        if (!fl.empty()) {
            const std::uint32_t off = fl.back();
            fl.pop_back();
            return off;
        }
        const auto off = static_cast<std::uint32_t>(mirror_slab_.size());
        mirror_slab_.resize(mirror_slab_.size() + (std::size_t{1} << cls));
        return off;
    }

    void mirror_free(std::uint32_t off, std::uint8_t cls) {
        mirror_free_[cls].push_back(off);
    }

    [[nodiscard]] net::Address* mirror(std::uint32_t off) noexcept {
        return mirror_slab_.data() + off;
    }
    [[nodiscard]] const net::Address* mirror(std::uint32_t off) const noexcept {
        return mirror_slab_.data() + off;
    }

    /// Capacity-based resident footprint (bench counters).
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        std::size_t free_lists = 0;
        for (const auto& fl : mirror_free_) {
            free_lists += fl.capacity() * sizeof(std::uint32_t);
        }
        return slab_.capacity() * sizeof(BucketEntry) +
               mirror_slab_.capacity() * sizeof(net::Address) + free_lists +
               meta_.capacity() * sizeof(BucketMeta) +
               free_blocks_.capacity() * sizeof(std::uint32_t);
    }

private:
    std::uint32_t k_;
    std::vector<BucketEntry> slab_;
    std::vector<std::uint32_t> free_blocks_;
    std::vector<BucketMeta> meta_;
    /// Dense per-table contact-address spans (see mirror_alloc).
    std::vector<net::Address> mirror_slab_;
    std::array<std::vector<std::uint32_t>, kMirrorMaxClass + 1> mirror_free_;
};

}  // namespace kadsim::kad

#endif  // KADSIM_KAD_BUCKET_ARENA_H
