// Struct-of-arrays storage for every Kademlia node of one overlay (or one
// region of a sharded overlay).
//
// The arena replaces the former vector<unique_ptr<KademliaNode>>: all
// per-node scalar state lives in parallel vectors indexed by net::Address,
// routing-bucket entries live in one shared BucketArena slab, and pending
// RPCs share a single map keyed by arena-globally-unique rpc ids. What
// remains of KademliaNode is a 16-byte handle (arena pointer + address),
// kept in a deque so delivery closures can capture stable `KademliaNode*`.
//
// The arena is also the address directory (the former NodeDirectory virtual
// interface): peer resolution on the RPC hot path is now a direct indexed
// load instead of a virtual call.
//
// Determinism contract (byte-identity with the pre-arena engine, pinned by
// tests/test_fault_equivalence.cpp):
//  - add_node draws the node's RNG stream at the same sequence point the old
//    KademliaNode constructor did;
//  - periodic maintenance is generation-checked self-re-arming events with
//    exactly the old PeriodicTask schedule (one push per firing, same order
//    refresh → storage-gc → advertise);
//  - the shared pending-RPC map is only ever probed by key (ids unique), so
//    its iteration order is unobservable; entries of crashed nodes are
//    lazily released by their timeout events.
#ifndef KADSIM_KAD_NODE_ARENA_H
#define KADSIM_KAD_NODE_ARENA_H

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "kad/bucket_arena.h"
#include "kad/config.h"
#include "kad/lookup_arena.h"
#include "kad/node.h"
#include "kad/routing_table.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "stats/histogram.h"
#include "util/rng.h"

namespace kadsim::kad {

/// Single-probe open-addressing table for in-flight RPCs, keyed by the
/// strictly increasing rpc id. An id is live from send until its response or
/// timeout (≤ rpc_timeout), so the live-id span is bounded by send rate ×
/// timeout; once the power-of-two capacity exceeds that span, two live ids
/// cannot share a residue. A collision therefore only means the table is too
/// small — grow past the live span and retry. find/erase are one indexed
/// load: no hashing, no chains, no probe walks.
class PendingRpcMap {
public:
    PendingRpcMap() : slots_(kInitialSlots) {}

    /// Live entry for `id`, or nullptr (answered / timed out / never sent).
    [[nodiscard]] KademliaNode::PendingRpc* find(std::uint64_t id) noexcept {
        Slot& s = slots_[id & (slots_.size() - 1)];
        return s.id == id ? &s.rpc : nullptr;
    }

    /// Inserts a fresh id (ids are never reused, so `id` is absent).
    void emplace(std::uint64_t id, KademliaNode::PendingRpc rpc) {
        Slot* s = &slots_[id & (slots_.size() - 1)];
        if (s->id != 0) {
            grow(id);
            s = &slots_[id & (slots_.size() - 1)];
        }
        s->id = id;
        s->rpc = rpc;
    }

    /// Releases a live id (caller guarantees find(id) != nullptr).
    void erase(std::uint64_t id) noexcept {
        slots_[id & (slots_.size() - 1)].id = 0;
    }

    /// Capacity-based footprint for the bench counters.
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return slots_.capacity() * sizeof(Slot);
    }

private:
    struct Slot {
        std::uint64_t id = 0;  // 0 = empty (rpc ids start at 1)
        KademliaNode::PendingRpc rpc;
    };
    static constexpr std::size_t kInitialSlots = 1024;

    /// Doubles capacity until it exceeds the live-id span (new id included),
    /// then rehashes — collision-free by the span argument above.
    void grow(std::uint64_t new_id) {
        std::uint64_t lo = new_id;
        std::uint64_t hi = new_id;
        for (const Slot& s : slots_) {
            if (s.id == 0) continue;
            lo = std::min(lo, s.id);
            hi = std::max(hi, s.id);
        }
        std::size_t cap = slots_.size();
        while (cap <= hi - lo) cap *= 2;
        if (cap == slots_.size()) cap *= 2;
        std::vector<Slot> bigger(cap);
        for (const Slot& s : slots_) {
            if (s.id != 0) bigger[s.id & (cap - 1)] = s;
        }
        slots_ = std::move(bigger);
    }

    std::vector<Slot> slots_;
};

class NodeArena {
public:
    /// `config` is validated once here; all three references must outlive
    /// the arena.
    NodeArena(const KademliaConfig& config, sim::Simulator& sim,
              net::Network& network);

    NodeArena(const NodeArena&) = delete;
    NodeArena& operator=(const NodeArena&) = delete;

    /// Creates the node listening on `address` — addresses must be assigned
    /// densely in order (address == size()). Draws the node's RNG stream
    /// from the simulator at call time, so arena construction order defines
    /// the stream order exactly as per-object construction used to.
    KademliaNode* add_node(NodeId id, net::Address address);

    /// Address → protocol handle (nullptr if never assigned). Crashed nodes
    /// keep their (inert) handle so in-flight delivery closures stay valid.
    [[nodiscard]] KademliaNode* node_at(net::Address address) noexcept {
        return address < nodes_.size() ? &nodes_[address] : nullptr;
    }
    [[nodiscard]] const KademliaNode* node_at(net::Address address) const noexcept {
        return address < nodes_.size() ? &nodes_[address] : nullptr;
    }

    [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

    [[nodiscard]] const KademliaConfig& config() const noexcept { return config_; }
    [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
    [[nodiscard]] net::Network& network() noexcept { return network_; }

    [[nodiscard]] const NodeId& id_of(net::Address address) const {
        return ids_[address];
    }
    [[nodiscard]] bool alive(net::Address address) const {
        return alive_[address] != 0;
    }
    [[nodiscard]] const NodeCounters& counters_of(net::Address address) const {
        return counters_[address];
    }
    [[nodiscard]] const RoutingTable& table_of(net::Address address) const {
        return tables_[address];
    }

    /// Stored-contact count of one node's table — O(1); the snapshot capture
    /// sums these to size its CSR slab before the bulk export pass.
    [[nodiscard]] std::size_t contact_count_of(net::Address address) const noexcept {
        return tables_[address].size();
    }

    /// Bulk contact export (snapshot capture): writes the addresses of every
    /// contact stored by `address`'s table into `out` —
    /// contact_count_of(address) slots — as `local * mul + add` (the region's
    /// local→global map) and returns the number written.
    std::size_t export_contacts_of(net::Address address, net::Address* out,
                                   net::Address mul = 1,
                                   net::Address add = 0) const noexcept {
        return tables_[address].export_contacts(out, mul, add);
    }

    /// Capacity-based resident footprint of all node state, including the
    /// shared bucket slab (the bench's arena-bytes counter). O(n) — meant
    /// for per-snapshot sampling, not per-event.
    [[nodiscard]] std::uint64_t memory_bytes() const noexcept;

    /// Cumulative workload metrics of every measured lookup issued by this
    /// arena's nodes (lookup_node / lookup_value — traffic and refresh).
    /// scen::Runner merges these across regions in fixed region order.
    [[nodiscard]] const stats::LookupTraffic& lookup_traffic() const noexcept {
        return traffic_;
    }

    /// The shared in-flight lookup storage (footprint counters, tests).
    [[nodiscard]] const LookupArena& lookup_arena() const noexcept {
        return lookup_arena_;
    }

private:
    friend class KademliaNode;

    enum class TaskKind : std::uint8_t { kRefresh, kStorageGc, kAdvertise };

    /// Generation-checked self-re-arming maintenance event: fires at `at`,
    /// runs the task, re-arms at now + period — unless the node's task
    /// generation moved (crash), which cancels the chain. Push pattern is
    /// identical to the old PeriodicTask (one event per firing).
    void arm_task(net::Address address, TaskKind kind, sim::SimTime at,
                  sim::SimTime period, std::uint32_t generation);
    void run_task(net::Address address, TaskKind kind);

    struct NodeLookups {
        std::vector<KademliaNode::ActiveLookup> slots;
        std::vector<std::uint32_t> free_slots;
    };

    /// Scratch contact buffer for the allocation-free lookup path, indexed
    /// by reentrancy depth: finish_lookup callbacks may synchronously start
    /// (and finish) nested lookups, so a single buffer would be clobbered.
    /// Buffers are heap-pinned (unique_ptr) so references stay valid while
    /// the outer vector grows; after warmup acquire/release allocate
    /// nothing.
    [[nodiscard]] std::vector<Contact>& acquire_scratch() {
        if (scratch_in_use_ == contact_scratch_.size()) {
            contact_scratch_.push_back(std::make_unique<std::vector<Contact>>());
        }
        auto& buf = *contact_scratch_[scratch_in_use_++];
        buf.clear();
        return buf;
    }
    void release_scratch() noexcept { --scratch_in_use_; }

    const KademliaConfig& config_;
    sim::Simulator& sim_;
    net::Network& network_;
    BucketArena buckets_;
    LookupArena lookup_arena_;
    stats::LookupTraffic traffic_;
    std::vector<std::unique_ptr<std::vector<Contact>>> contact_scratch_;
    std::size_t scratch_in_use_ = 0;

    std::deque<KademliaNode> nodes_;  // stable 16-byte handles, by address
    std::vector<NodeId> ids_;
    std::vector<std::uint8_t> alive_;
    std::vector<util::Rng> rngs_;
    std::vector<RoutingTable> tables_;
    std::vector<std::optional<Contact>> bootstraps_;
    std::vector<std::uint32_t> task_gen_;
    std::vector<NodeCounters> counters_;
    std::vector<NodeLookups> lookups_;
    std::vector<std::vector<KademliaNode::StoredObject>> storage_;
    /// address * b + bucket → last lookup touching the bucket; allocated
    /// only under RefreshPolicy::kStaleOnly (the only reader).
    std::vector<sim::SimTime> bucket_last_lookup_;

    /// Shared pending-RPC table; ids are arena-globally unique, so per-node
    /// maps collapsed into one single-probe slot table.
    PendingRpcMap pending_;
    std::uint64_t next_rpc_id_ = 1;
};

}  // namespace kadsim::kad

#endif  // KADSIM_KAD_NODE_ARENA_H
