// Streaming summary statistics (Welford) and the paper's Relative Variance.
//
// Table 2 reports "the means and the Relative Variance (RV), i.e.
// Variance/Mean, of the minimum connectivity during the churn phase".
//
// Summary carries no per-sample storage and therefore has no percentiles.
// Callers that need quantiles stream into stats/histogram.h instead
// (CountHistogram for exact small-integer quantiles, Log2Histogram for
// wide-range values); graph_stats' percentile path runs on CountHistogram,
// with the historical exact sort behind its `exact_sort` flag.
#ifndef KADSIM_STATS_SUMMARY_H
#define KADSIM_STATS_SUMMARY_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace kadsim::stats {

class Summary {
public:
    void add(double x) noexcept {
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }

    /// Population variance (the paper aggregates a full churn-phase series,
    /// not a sample from it).
    [[nodiscard]] double variance() const noexcept {
        return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
    }

    [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

    /// Relative Variance = Variance / Mean; defined as 0 for mean 0 (matching
    /// Table 2's "0.00 / 0.00" row for the fully disconnected case).
    [[nodiscard]] double relative_variance() const noexcept {
        const double mu = mean();
        if (mu == 0.0) return 0.0;
        return variance() / mu;
    }

    [[nodiscard]] double min() const noexcept {
        return count_ > 0 ? min_ : 0.0;
    }
    [[nodiscard]] double max() const noexcept {
        return count_ > 0 ? max_ : 0.0;
    }

private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace kadsim::stats

#endif  // KADSIM_STATS_SUMMARY_H
