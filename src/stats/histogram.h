// Mergeable streaming histograms for the lookup workload engine.
//
// The million-lookup traffic engine cannot afford per-sample storage (a
// paper-scale run issues millions of FIND_NODE walks), so hop counts and
// latencies stream into fixed-bucket histograms instead: O(1) add, O(buckets)
// quantile, and bucket-wise merge across regions. Bucket counts are integers,
// so merging is commutative and associative — but the simulator still merges
// in fixed region order (region 0, 1, …, R−1), the same contract that makes
// sharded stepping bit-identical across thread counts (docs/architecture.md,
// "Determinism under sharding").
//
// Two shapes cover every caller:
//  - CountHistogram: exact counts over small non-negative integers (hop
//    counts, vertex degrees). Quantiles equal the exact sorted-order values.
//  - Log2Histogram: log2 buckets with 8 sub-buckets per octave for wide-range
//    values (lookup latency in ms). Quantiles are bucket lower bounds —
//    relative error bounded by 1/8 of an octave.
#ifndef KADSIM_STATS_HISTOGRAM_H
#define KADSIM_STATS_HISTOGRAM_H

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.h"

namespace kadsim::stats {

namespace detail {

/// Sorted index of quantile q over `total` samples: floor(q·total) clamped
/// into [0, total−1]. q is clamped into [0, 1] first — q < 0 would otherwise
/// be undefined behavior in the float→unsigned cast, and q > 1 silently
/// wrapped; both now mean "first sample" / "last sample". `total` must be
/// positive (callers handle the empty case).
inline std::uint64_t quantile_index(double q, std::uint64_t total) noexcept {
    const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
    auto idx = static_cast<std::uint64_t>(clamped * static_cast<double>(total));
    if (idx >= total) idx = total - 1;
    return idx;
}

}  // namespace detail

/// Exact counting histogram over small non-negative integers. Memory is
/// O(max value observed); add() clamps negatives to zero. value_at_index(i)
/// reproduces std::sort(samples)[i] without the sort, which is what lets
/// graph_stats swap its sort-per-call percentile path for this class without
/// changing a single reported number.
class CountHistogram {
public:
    void add(std::int64_t value) {
        const auto idx = static_cast<std::size_t>(value < 0 ? 0 : value);
        if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
        ++counts_[idx];
        ++total_;
    }

    /// Bucket-wise addition of another histogram. Bumps the merge counter
    /// (observable in bench JSON as evidence the merge path is engaged).
    void merge(const CountHistogram& other) {
        if (other.counts_.size() > counts_.size()) {
            counts_.resize(other.counts_.size(), 0);
        }
        for (std::size_t i = 0; i < other.counts_.size(); ++i) {
            counts_[i] += other.counts_[i];
        }
        total_ += other.total_;
        merges_ += other.merges_ + 1;
    }

    /// Bucket-wise subtraction of an earlier cumulative state of the same
    /// accumulation (interval extraction). `prev` must be a prefix history
    /// of *this* — a bucket or total that regressed means an upstream
    /// merge-order bug, and is asserted rather than silently wrapping to
    /// ~2^64; the merge counter carries over from *this*.
    [[nodiscard]] CountHistogram diff(const CountHistogram& prev) const {
        KADSIM_ASSERT_MSG(prev.counts_.size() <= counts_.size() &&
                              prev.total_ <= total_,
                          "CountHistogram::diff: prev is not a prefix history");
        CountHistogram out = *this;
        for (std::size_t i = 0; i < prev.counts_.size(); ++i) {
            KADSIM_ASSERT_MSG(out.counts_[i] >= prev.counts_[i],
                              "CountHistogram::diff: bucket count regressed");
            out.counts_[i] -= prev.counts_[i];
        }
        out.total_ -= prev.total_;
        return out;
    }

    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    [[nodiscard]] std::uint64_t merges() const noexcept { return merges_; }
    [[nodiscard]] bool empty() const noexcept { return total_ == 0; }

    /// Value at 0-based position `idx` of the sorted sample multiset
    /// (exact). `idx` past the end returns the maximum observed value;
    /// an empty histogram returns 0.
    [[nodiscard]] std::int64_t value_at_index(std::uint64_t idx) const noexcept {
        std::uint64_t seen = 0;
        std::int64_t last = 0;
        for (std::size_t v = 0; v < counts_.size(); ++v) {
            if (counts_[v] == 0) continue;
            last = static_cast<std::int64_t>(v);
            seen += counts_[v];
            if (seen > idx) return last;
        }
        return last;
    }

    /// Exact quantile: value at sorted index floor(q·total), clamped to the
    /// last sample (q = 1.0 is the maximum, not one past it). q outside
    /// [0, 1] clamps to the nearest bound; an empty histogram returns 0.
    /// quantile(0.5) of {1,2,3,4} is sorted[2] = 3 — the same `sorted[n/2]`
    /// convention graph_stats has always used.
    [[nodiscard]] std::int64_t quantile(double q) const noexcept {
        if (total_ == 0) return 0;
        return value_at_index(detail::quantile_index(q, total_));
    }

    [[nodiscard]] std::int64_t min() const noexcept {
        return value_at_index(0);
    }
    [[nodiscard]] std::int64_t max() const noexcept {
        return total_ == 0 ? 0 : value_at_index(total_ - 1);
    }

    /// Raw bucket counts (tests / serialization into determinism digests).
    [[nodiscard]] std::span<const std::uint64_t> counts() const noexcept {
        return counts_;
    }

    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return counts_.capacity() * sizeof(std::uint64_t);
    }

private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t merges_ = 0;
};

/// Log-scale histogram: one octave per power of two, split into 8
/// sub-buckets (HDR-style, 3 sub-bucket bits). Values 0–7 get exact unit
/// buckets; larger values land in bucket [2^m + s·2^(m-3), …). Fixed
/// storage (488 buckets covers all of int64), no allocation after
/// construction — safe inside the zero-alloc lookup path.
class Log2Histogram {
public:
    static constexpr int kSubBits = 3;
    static constexpr std::size_t kBuckets =
        8 + (62 - kSubBits) * (std::size_t{1} << kSubBits);  // 480 + 8 = 488

    static constexpr std::size_t index_of(std::int64_t value) noexcept {
        const auto v = static_cast<std::uint64_t>(value < 0 ? 0 : value);
        if (v < 8) return static_cast<std::size_t>(v);
        const int major = std::bit_width(v) - 1;  // >= 3
        const auto minor =
            static_cast<std::size_t>((v >> (major - kSubBits)) & 7u);
        return static_cast<std::size_t>(major - 2) * 8 + minor;
    }

    /// Lower bound of bucket `idx` — the value quantiles report.
    static constexpr std::int64_t bucket_floor(std::size_t idx) noexcept {
        if (idx < 8) return static_cast<std::int64_t>(idx);
        const int major = static_cast<int>(idx / 8) + 2;
        const auto minor = static_cast<std::uint64_t>(idx % 8);
        return static_cast<std::int64_t>((std::uint64_t{1} << major) |
                                         (minor << (major - kSubBits)));
    }

    void add(std::int64_t value) noexcept {
        ++counts_[index_of(value)];
        ++total_;
    }

    void merge(const Log2Histogram& other) noexcept {
        for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
        total_ += other.total_;
        merges_ += other.merges_ + 1;
    }

    /// `prev` must be a prefix history of *this* (see CountHistogram::diff);
    /// a regressed bucket aborts instead of wrapping.
    [[nodiscard]] Log2Histogram diff(const Log2Histogram& prev) const noexcept {
        KADSIM_ASSERT_MSG(prev.total_ <= total_,
                          "Log2Histogram::diff: prev is not a prefix history");
        Log2Histogram out = *this;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            KADSIM_ASSERT_MSG(out.counts_[i] >= prev.counts_[i],
                              "Log2Histogram::diff: bucket count regressed");
            out.counts_[i] -= prev.counts_[i];
        }
        out.total_ -= prev.total_;
        return out;
    }

    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    [[nodiscard]] std::uint64_t merges() const noexcept { return merges_; }
    [[nodiscard]] bool empty() const noexcept { return total_ == 0; }

    /// Quantile as the lower bound of the bucket holding sorted index
    /// floor(q·total) — same index/clamping convention as
    /// CountHistogram::quantile (q clamped into [0, 1], empty returns 0).
    [[nodiscard]] std::int64_t quantile(double q) const noexcept {
        if (total_ == 0) return 0;
        const std::uint64_t idx = detail::quantile_index(q, total_);
        std::uint64_t seen = 0;
        std::size_t last = 0;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            if (counts_[i] == 0) continue;
            last = i;
            seen += counts_[i];
            if (seen > idx) return bucket_floor(i);
        }
        return bucket_floor(last);
    }

    [[nodiscard]] std::span<const std::uint64_t> counts() const noexcept {
        return counts_;
    }

    [[nodiscard]] static constexpr std::size_t memory_bytes() noexcept {
        return kBuckets * sizeof(std::uint64_t);
    }

private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t total_ = 0;
    std::uint64_t merges_ = 0;
};

/// Aggregate workload metrics for application-level lookups (FIND_NODE /
/// FIND_VALUE walks started via KademliaNode::lookup_node / lookup_value —
/// traffic and bucket refresh; joins, advertisements and dissemination
/// locates are maintenance and excluded). Accumulated per region inside
/// NodeArena, merged in fixed region order by scen::Runner.
struct LookupTraffic {
    std::uint64_t issued = 0;       ///< lookups started
    std::uint64_t completed = 0;    ///< lookups that reached a terminal state
    std::uint64_t succeeded = 0;    ///< completed with >= 1 successful contact
    std::uint64_t values_found = 0; ///< kFindValue short-circuits
    CountHistogram hops;            ///< iteration depth per completed lookup
    Log2Histogram latency_ms;       ///< issue -> completion wall (simulated ms)

    void merge(const LookupTraffic& other) {
        issued += other.issued;
        completed += other.completed;
        succeeded += other.succeeded;
        values_found += other.values_found;
        hops.merge(other.hops);
        latency_ms.merge(other.latency_ms);
    }

    /// Interval view: counts since `prev` (an earlier cumulative state).
    /// Regressed counters assert, same contract as the histogram diffs.
    [[nodiscard]] LookupTraffic diff(const LookupTraffic& prev) const {
        KADSIM_ASSERT_MSG(prev.issued <= issued && prev.completed <= completed &&
                              prev.succeeded <= succeeded &&
                              prev.values_found <= values_found,
                          "LookupTraffic::diff: counter regressed");
        LookupTraffic out = *this;
        out.issued -= prev.issued;
        out.completed -= prev.completed;
        out.succeeded -= prev.succeeded;
        out.values_found -= prev.values_found;
        out.hops = hops.diff(prev.hops);
        out.latency_ms = latency_ms.diff(prev.latency_ms);
        return out;
    }

    [[nodiscard]] std::uint64_t hist_merges() const noexcept {
        return hops.merges() + latency_ms.merges();
    }
};

/// Side-effect-free snapshot-time lookup probes (scen::Runner): synthetic
/// FIND_NODE walks over the live routing tables that never touch simulator
/// state, used to measure "would a lookup succeed right now?" even in
/// scenarios that run with traffic disabled (the attack benches).
struct ProbeStats {
    std::uint64_t probes = 0;
    std::uint64_t succeeded = 0;  ///< found the ground-truth closest live node
    CountHistogram hops;

    void merge(const ProbeStats& other) {
        probes += other.probes;
        succeeded += other.succeeded;
        hops.merge(other.hops);
    }
};

}  // namespace kadsim::stats

#endif  // KADSIM_STATS_HISTOGRAM_H
