// (time, value) series with range summaries — the carrier for every
// per-snapshot metric (connectivity, network size, ...).
#ifndef KADSIM_STATS_TIMESERIES_H
#define KADSIM_STATS_TIMESERIES_H

#include <vector>

#include "stats/summary.h"
#include "util/assert.h"

namespace kadsim::stats {

class TimeSeries {
public:
    void add(double t, double value) {
        KADSIM_ASSERT_MSG(times_.empty() || t >= times_.back(),
                          "time series must be appended in order");
        times_.push_back(t);
        values_.push_back(value);
    }

    [[nodiscard]] std::size_t size() const noexcept { return times_.size(); }
    [[nodiscard]] bool empty() const noexcept { return times_.empty(); }
    [[nodiscard]] const std::vector<double>& times() const noexcept { return times_; }
    [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }

    [[nodiscard]] double time_at(std::size_t i) const { return times_.at(i); }
    [[nodiscard]] double value_at(std::size_t i) const { return values_.at(i); }

    /// Summary of values with t in [t_begin, t_end).
    [[nodiscard]] Summary summarize_between(double t_begin, double t_end) const {
        Summary s;
        for (std::size_t i = 0; i < times_.size(); ++i) {
            if (times_[i] >= t_begin && times_[i] < t_end) s.add(values_[i]);
        }
        return s;
    }

    [[nodiscard]] Summary summarize() const {
        Summary s;
        for (const double v : values_) s.add(v);
        return s;
    }

private:
    std::vector<double> times_;
    std::vector<double> values_;
};

}  // namespace kadsim::stats

#endif  // KADSIM_STATS_TIMESERIES_H
