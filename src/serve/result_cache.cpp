#include "serve/result_cache.h"

#include <unistd.h>

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "util/csv.h"
#include "util/sha1.h"

namespace kadsim::serve {

namespace {

/// One comma-terminated field off the front of `s` (the final field runs to
/// the end of the line instead). from_chars never allocates and never reads
/// past `s`, so a malformed field fails cleanly instead of consuming the
/// rest of the row.
template <typename T>
bool parse_field(std::string_view& s, T& value, bool last = false) {
    const char* const begin = s.data();
    const char* const end = begin + s.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{}) return false;
    if (last) return ptr == end;
    if (ptr == end || *ptr != ',') return false;
    s.remove_prefix(static_cast<std::size_t>(ptr - begin) + 1);
    return true;
}

}  // namespace

std::string ResultCache::entry_path(const std::string& key) const {
    return root_ + "/" + util::to_hex(util::sha1(key)) + ".csv";
}

bool ResultCache::load(const std::string& key, core::ExperimentSeries& out) const {
    std::ifstream in(entry_path(key));
    if (!in) return false;
    std::string line;
    if (!std::getline(in, line) || line != "# " + key) return false;
    if (!std::getline(in, line)) return false;  // column header
    const std::size_t before = out.samples.size();
    while (std::getline(in, line)) {
        core::ResilienceSample sample;
        // Entries from before a column append fail here and re-run: the key
        // line still matches but rows lack the appended columns.
        if (!parse_sample_row(line, sample)) return false;
        out.samples.push_back(sample);
    }
    return out.samples.size() > before;
}

bool ResultCache::store(const std::string& key,
                        const core::ExperimentSeries& series) const {
    if (!util::ensure_directory(root_)) return false;
    const std::string path = entry_path(key);
    // Atomic publish: write a sibling temp file (same directory, so the
    // rename cannot cross filesystems), then rename over the final name.
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) return false;
        out << "# " << key << '\n';
        out << csv_header() << '\n';
        for (const auto& s : series.samples) out << format_sample_row(s) << '\n';
        out.flush();
        if (!out) {
            out.close();
            std::remove(tmp.c_str());
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

const char* ResultCache::csv_header() {
    // The first nine columns predate the metric suite; their bytes are
    // pinned by the golden hashes in tests/test_fault_equivalence.cpp.
    // Metric and lookup columns are strictly appended.
    return "time_min,n,m,kappa_min,kappa_avg,scc,reciprocity,pairs,removed,"
           "lambda_min,lambda_avg,scc_frac,wcc_frac,articulation,bridges,"
           "deg_out_min,deg_in_min,kappa_gap,"
           "lookups,lookup_ok,lookup_hop_p50,lookup_hop_p99,lookup_lat_p50,"
           "lookup_lat_p99,probes,probe_ok,probe_hop_p50,probe_hop_p99";
}

std::string ResultCache::format_sample_row(const core::ResilienceSample& s) {
    std::ostringstream out;
    out << s.time_min << ',' << s.n << ',' << s.m << ',' << s.kappa_min << ','
        << s.kappa_avg << ',' << s.scc_count << ',' << s.reciprocity << ','
        << s.pairs_evaluated << ',' << s.removed_total << ',' << s.lambda_min
        << ',' << s.lambda_avg << ',' << s.scc_frac << ',' << s.wcc_frac << ','
        << s.articulation_points << ',' << s.bridges << ',' << s.out_degree_min
        << ',' << s.in_degree_min << ',' << s.kappa_degree_gap << ','
        << s.lookups_done << ',' << s.lookup_success_rate << ','
        << s.lookup_hop_p50 << ',' << s.lookup_hop_p99 << ','
        << s.lookup_latency_p50_ms << ',' << s.lookup_latency_p99_ms << ','
        << s.probes_done << ',' << s.probe_success_rate << ','
        << s.probe_hop_p50 << ',' << s.probe_hop_p99;
    return out.str();
}

bool ResultCache::parse_sample_row(std::string_view line,
                                   core::ResilienceSample& out) {
    return parse_field(line, out.time_min) && parse_field(line, out.n) &&
           parse_field(line, out.m) && parse_field(line, out.kappa_min) &&
           parse_field(line, out.kappa_avg) && parse_field(line, out.scc_count) &&
           parse_field(line, out.reciprocity) &&
           parse_field(line, out.pairs_evaluated) &&
           parse_field(line, out.removed_total) &&
           parse_field(line, out.lambda_min) && parse_field(line, out.lambda_avg) &&
           parse_field(line, out.scc_frac) && parse_field(line, out.wcc_frac) &&
           parse_field(line, out.articulation_points) &&
           parse_field(line, out.bridges) && parse_field(line, out.out_degree_min) &&
           parse_field(line, out.in_degree_min) &&
           parse_field(line, out.kappa_degree_gap) &&
           parse_field(line, out.lookups_done) &&
           parse_field(line, out.lookup_success_rate) &&
           parse_field(line, out.lookup_hop_p50) &&
           parse_field(line, out.lookup_hop_p99) &&
           parse_field(line, out.lookup_latency_p50_ms) &&
           parse_field(line, out.lookup_latency_p99_ms) &&
           parse_field(line, out.probes_done) &&
           parse_field(line, out.probe_success_rate) &&
           parse_field(line, out.probe_hop_p50) &&
           parse_field(line, out.probe_hop_p99, /*last=*/true);
}

}  // namespace kadsim::serve
