// Resilience-as-a-service analysis daemon.
//
// A long-running process that ingests routing-graph snapshots — from a
// watched directory and/or a local AF_UNIX socket — and answers
// connectivity-metric queries over the length-prefixed protocol in
// serve/protocol.h. Ingest and analysis are decoupled through an
// exec::BoundedQueue feeding one analysis worker (so analysis runs in strict
// ingest order, which is what lets the worker's ConnectivityAnalyzer reuse
// κ/λ bounds across consecutive snapshots via analysis::SnapshotDeltaCache);
// the worker fans each snapshot's flow sweeps over an exec::ThreadPool.
//
// Determinism contract: a query's metric values are bit-identical to running
// the offline analyzer (core::ConnectivityAnalyzer with the same sample_c /
// min_sources) on the same snapshot file — the daemon runs exactly that
// pipeline, and the delta/threads/push-relabel toggles are all bit-identical
// by construction. METRICS responses carry the exact
// ResultCache::format_sample_row bytes, so daemon and offline outputs can be
// compared byte for byte (tests/test_serve_daemon.cpp pins this).
//
// State tiers, by cost:
//   - entries_: one small record per ingested snapshot (hash, state, the
//     28-column result row) — kept for the daemon's lifetime.
//   - hot_: finalized witness FlowNetwork + compacted Digraph + snapshot,
//     LRU-bounded; evicted states are rebuilt on demand from the snapshot
//     spool (cache_dir/snapshots/<hash>.ksnp) or the original source file.
//   - result cache: the shared content-addressed on-disk cache
//     (serve/result_cache.h), keyed by snapshot content hash + analyzer
//     options, shared with the bench runners.
//
// Malformed input (truncated KSNP, garbage text, impossible counts) is
// rejected with a diagnostic and counted — it never crashes the daemon or
// leaves partially-ingested state.
#ifndef KADSIM_SERVE_DAEMON_H
#define KADSIM_SERVE_DAEMON_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/analyzer.h"
#include "exec/bounded_queue.h"
#include "flow/flow_network.h"
#include "graph/digraph.h"
#include "graph/snapshot.h"
#include "serve/lru_cache.h"
#include "serve/result_cache.h"
#include "stats/histogram.h"

namespace kadsim::exec {
class ThreadPool;
}

namespace kadsim::serve {

struct DaemonConfig {
    /// Directory polled for new snapshot files ("" disables the watcher).
    /// Files must appear atomically (write elsewhere, then rename in).
    std::string watch_dir;
    /// AF_UNIX listening socket path ("" disables the socket server —
    /// tests drive handle_request() in-process instead).
    std::string socket_path;
    /// Root of the on-disk result cache and snapshot spool ("" disables
    /// both; evicted hot state is then only rebuildable from source files).
    std::string cache_dir;
    /// Flow-sweep parallelism inside the single analysis worker.
    int analysis_threads = 1;
    /// Hot-state LRU capacity (entries, each holding a finalized witness
    /// network — the dominant resident cost).
    std::size_t hot_capacity = 4;
    /// Ingest queue bound; a full queue blocks producers (backpressure).
    std::size_t queue_capacity = 16;
    int watch_poll_ms = 200;
    /// How long a metric query waits for its snapshot to finish analysis.
    int query_timeout_ms = 60000;
    core::AnalyzerOptions analyzer;
};

/// Point-in-time counters (COUNTERS endpoint, tests).
struct DaemonCounters {
    std::uint64_t ingested = 0;           ///< snapshots accepted (deduped)
    std::uint64_t duplicates = 0;         ///< re-ingests of a known hash
    std::uint64_t rejected = 0;           ///< malformed inputs turned away
    std::uint64_t analyzed = 0;           ///< fresh analyses completed
    std::uint64_t analysis_failures = 0;
    std::uint64_t result_cache_hits = 0;  ///< analyses answered from disk
    std::uint64_t queries = 0;
    std::uint64_t query_errors = 0;
    std::uint64_t hot_hits = 0;
    std::uint64_t hot_misses = 0;
    std::uint64_t hot_evictions = 0;
    std::size_t queue_depth = 0;
    std::int64_t query_latency_p50_us = 0;
    std::int64_t query_latency_p99_us = 0;
};

class Daemon {
public:
    explicit Daemon(DaemonConfig config);
    ~Daemon();

    Daemon(const Daemon&) = delete;
    Daemon& operator=(const Daemon&) = delete;

    /// Spawns the analysis worker plus (per config) the directory watcher
    /// and socket acceptor. Throws std::runtime_error if the socket cannot
    /// be bound.
    void start();

    /// Idempotent clean shutdown: stops intake, drains the queued
    /// snapshots through analysis, disconnects clients, joins every thread.
    void stop();

    /// Executes one protocol request and returns the "OK ..."/"ERR ..."
    /// response. Thread-safe; this is the socket handler's engine and the
    /// in-process API the tests drive directly. `shutdown_after_reply`
    /// (optional) defers a SHUTDOWN's stop-request until the caller has
    /// delivered the response; when null, SHUTDOWN takes effect immediately.
    std::string handle_request(std::string_view request,
                               bool* shutdown_after_reply = nullptr);

    /// Parses + enqueues snapshot bytes. `source` labels diagnostics and,
    /// when it names a readable file, serves as a rebuild source for
    /// evicted hot state. Returns "OK <hash>" or "ERR <diagnostic>".
    std::string ingest_bytes(std::string_view bytes, const std::string& source);

    /// ingest_bytes over a file's contents.
    std::string ingest_file(const std::string& path);

    [[nodiscard]] DaemonCounters counters() const;
    [[nodiscard]] const DaemonConfig& config() const noexcept { return config_; }

    /// Set by a SHUTDOWN request; the hosting binary polls this and calls
    /// stop() (a connection thread cannot join itself).
    [[nodiscard]] bool stop_requested() const noexcept {
        return stop_requested_.load(std::memory_order_relaxed);
    }

    /// Content hash of a snapshot: sha1 over its canonical binary
    /// serialization — text and binary files of the same snapshot share it.
    [[nodiscard]] static std::string content_hash(const graph::RoutingSnapshot& snap);

private:
    enum class EntryState { kQueued, kAnalyzed, kFailed };

    /// Per-snapshot lifetime record, kept after analysis (the heavy state
    /// lives in hot_ / on disk, not here).
    struct Entry {
        EntryState state = EntryState::kQueued;
        core::ResilienceSample sample{};
        std::string row;    ///< ResultCache::format_sample_row bytes
        std::string error;  ///< diagnostic when state == kFailed
        std::string source;
    };

    /// Analysis-ready state kept hot between queries.
    struct HotState {
        HotState(graph::RoutingSnapshot snapshot, graph::Digraph graph,
                 flow::FlowNetwork net)
            : snap(std::move(snapshot)), g(std::move(graph)),
              witness_net(std::move(net)) {}

        graph::RoutingSnapshot snap;
        graph::Digraph g;
        flow::FlowNetwork witness_net;
    };

    struct Job {
        std::string hash;
        std::shared_ptr<graph::RoutingSnapshot> snap;
    };

    std::string dispatch(std::string_view request, bool* shutdown_after_reply);
    std::string ingest_snapshot(graph::RoutingSnapshot snap, const std::string& source);
    void analysis_worker();
    void process_job(Job job);
    void watch_loop();
    void accept_loop();
    void serve_connection(int fd);

    /// Resolves "latest", a full hash, or a unique prefix, then waits for
    /// analysis (bounded by query_timeout_ms). On success fills `hash` and
    /// returns empty; otherwise returns the "ERR ..." response.
    std::string resolve_and_wait(std::string_view id, std::string& hash);

    /// Hot state for an analyzed snapshot, rebuilding from the spool or the
    /// source file after eviction. nullptr (with `error` set) if neither
    /// source is available.
    std::shared_ptr<HotState> hydrate(const std::string& hash, std::string& error);

    [[nodiscard]] std::string result_key(const std::string& hash) const;
    [[nodiscard]] std::string spool_path(const std::string& hash) const;
    [[nodiscard]] std::shared_ptr<HotState> build_hot(
        std::shared_ptr<graph::RoutingSnapshot> snap) const;

    std::string cmd_metrics(std::string_view id, std::string_view field);
    std::string cmd_pair(std::string_view rest);
    std::string cmd_counters() const;
    std::string cmd_list();

    const DaemonConfig config_;

    mutable std::mutex mutex_;
    std::condition_variable analyzed_cv_;
    std::unordered_map<std::string, Entry> entries_;
    std::vector<std::string> order_;  ///< ingest order of hashes
    DaemonCounters counters_{};       ///< LRU + latency fields filled on read
    stats::Log2Histogram query_latency_us_;

    exec::BoundedQueue<Job> queue_;
    LruCache<std::string, HotState> hot_;
    std::unique_ptr<ResultCache> result_cache_;
    std::unique_ptr<exec::ThreadPool> pool_;
    core::ConnectivityAnalyzer analyzer_;

    std::atomic<bool> running_{false};
    std::atomic<bool> stop_requested_{false};
    int listen_fd_ = -1;
    std::thread worker_;
    std::thread watcher_;
    std::thread acceptor_;
    std::mutex conn_mutex_;
    std::vector<std::thread> conn_threads_;
    std::vector<int> conn_fds_;
};

}  // namespace kadsim::serve

#endif  // KADSIM_SERVE_DAEMON_H
