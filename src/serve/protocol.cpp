#include "serve/protocol.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

namespace kadsim::serve {

namespace {

/// Writes all of `data`, retrying partial writes and EINTR.
bool write_all(int fd, const void* data, std::size_t size) {
    const char* p = static_cast<const char*>(data);
    while (size > 0) {
        const ssize_t n = ::write(fd, p, size);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        p += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

enum class ReadAll { kOk, kEof, kError };

/// Reads exactly `size` bytes, retrying EINTR. kEof covers both a clean
/// close before the first byte and a mid-buffer close — the caller
/// distinguishes them by how much it already consumed.
ReadAll read_all(int fd, void* data, std::size_t size) {
    char* p = static_cast<char*>(data);
    while (size > 0) {
        const ssize_t n = ::read(fd, p, size);
        if (n < 0) {
            if (errno == EINTR) continue;
            return ReadAll::kError;
        }
        if (n == 0) return ReadAll::kEof;
        p += n;
        size -= static_cast<std::size_t>(n);
    }
    return ReadAll::kOk;
}

}  // namespace

FrameResult write_frame(int fd, std::string_view payload) {
    if (payload.size() > kMaxFrameBytes) return FrameResult::kTooLarge;
    const auto len = static_cast<std::uint32_t>(payload.size());
    std::uint8_t prefix[4] = {
        static_cast<std::uint8_t>(len & 0xFF),
        static_cast<std::uint8_t>((len >> 8) & 0xFF),
        static_cast<std::uint8_t>((len >> 16) & 0xFF),
        static_cast<std::uint8_t>((len >> 24) & 0xFF),
    };
    if (!write_all(fd, prefix, sizeof prefix)) return FrameResult::kError;
    if (!payload.empty() && !write_all(fd, payload.data(), payload.size())) {
        return FrameResult::kError;
    }
    return FrameResult::kOk;
}

FrameResult read_frame(int fd, std::string& out, std::size_t max_payload) {
    std::uint8_t prefix[4];
    // EOF on the very first byte of the prefix is an orderly close; reading
    // only part of it means the peer died mid-frame.
    {
        const ssize_t n = ::read(fd, prefix, 1);
        if (n < 0 && errno == EINTR) return read_frame(fd, out, max_payload);
        if (n < 0) return FrameResult::kError;
        if (n == 0) return FrameResult::kClosed;
    }
    switch (read_all(fd, prefix + 1, 3)) {
        case ReadAll::kOk: break;
        case ReadAll::kEof: return FrameResult::kTruncated;
        case ReadAll::kError: return FrameResult::kError;
    }
    const std::size_t len = static_cast<std::size_t>(prefix[0]) |
                            (static_cast<std::size_t>(prefix[1]) << 8) |
                            (static_cast<std::size_t>(prefix[2]) << 16) |
                            (static_cast<std::size_t>(prefix[3]) << 24);
    if (len > max_payload) return FrameResult::kTooLarge;
    out.resize(len);
    if (len == 0) return FrameResult::kOk;
    switch (read_all(fd, out.data(), len)) {
        case ReadAll::kOk: return FrameResult::kOk;
        case ReadAll::kEof: return FrameResult::kTruncated;
        case ReadAll::kError: return FrameResult::kError;
    }
    return FrameResult::kError;
}

namespace {

int unix_socket(const std::string& socket_path, sockaddr_un& addr,
                std::string& error) {
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        error = "socket path too long: " + socket_path;
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket(): ") + std::strerror(errno);
        return -1;
    }
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    return fd;
}

}  // namespace

int connect_unix(const std::string& socket_path, std::string& error) {
    sockaddr_un addr{};
    const int fd = unix_socket(socket_path, addr, error);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        error = "connect(" + socket_path + "): " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

int listen_unix(const std::string& socket_path, std::string& error) {
    sockaddr_un addr{};
    const int fd = unix_socket(socket_path, addr, error);
    if (fd < 0) return -1;
    // A previous daemon's socket file would make bind() fail with EADDRINUSE
    // even though nobody is listening; the unlink is safe because a daemon
    // owns its socket path by contract.
    ::unlink(socket_path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        error = "bind(" + socket_path + "): " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 16) != 0) {
        error = "listen(" + socket_path + "): " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

}  // namespace kadsim::serve
