#include "serve/daemon.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "exec/thread_pool.h"
#include "flow/flow_workspace.h"
#include "flow/mincut.h"
#include "serve/protocol.h"
#include "util/csv.h"
#include "util/sha1.h"

namespace kadsim::serve {

namespace {

[[nodiscard]] bool is_err(std::string_view response) {
    return response.starts_with("ERR");
}

[[nodiscard]] std::string_view trim(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
    while (!s.empty() &&
           (s.back() == ' ' || s.back() == '\t' || s.back() == '\n' || s.back() == '\r')) {
        s.remove_suffix(1);
    }
    return s;
}

}  // namespace

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)),
      queue_(config_.queue_capacity),
      hot_(config_.hot_capacity),
      analyzer_(config_.analyzer) {
    if (!config_.cache_dir.empty()) {
        result_cache_ = std::make_unique<ResultCache>(config_.cache_dir);
    }
    if (config_.analysis_threads > 1) {
        pool_ = std::make_unique<exec::ThreadPool>(config_.analysis_threads);
    }
}

Daemon::~Daemon() { stop(); }

std::string Daemon::content_hash(const graph::RoutingSnapshot& snap) {
    std::ostringstream out(std::ios::binary);
    snap.save_binary(out);
    return util::to_hex(util::sha1(out.str()));
}

std::string Daemon::result_key(const std::string& hash) const {
    std::ostringstream key;
    key << "snapshot|" << hash << "|c=" << config_.analyzer.sample_c
        << "|minsrc=" << config_.analyzer.min_sources;
    return key.str();
}

std::string Daemon::spool_path(const std::string& hash) const {
    if (config_.cache_dir.empty()) return {};
    return config_.cache_dir + "/snapshots/" + hash + ".ksnp";
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void Daemon::start() {
    if (running_.exchange(true)) return;
    if (!config_.socket_path.empty()) {
        std::string error;
        listen_fd_ = listen_unix(config_.socket_path, error);
        if (listen_fd_ < 0) {
            running_.store(false);
            throw std::runtime_error("resilience daemon: " + error);
        }
    }
    worker_ = std::thread(&Daemon::analysis_worker, this);
    if (!config_.watch_dir.empty()) {
        // Create the watch directory up front so producers can start moving
        // files in immediately (and the poll loop doesn't log a miss every
        // cycle until the first producer creates it).
        if (!util::ensure_directory(config_.watch_dir)) {
            std::fprintf(stderr,
                         "resilience daemon: cannot create watch dir %s\n",
                         config_.watch_dir.c_str());
        }
        watcher_ = std::thread(&Daemon::watch_loop, this);
    }
    if (listen_fd_ >= 0) acceptor_ = std::thread(&Daemon::accept_loop, this);
}

void Daemon::stop() {
    running_.store(false);
    // Intake first: stop accepting connections and watching the directory,
    // then disconnect clients, and only then drain the analysis queue — a
    // client mid-query still gets its answer because the worker outlives it.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    if (acceptor_.joinable()) acceptor_.join();
    if (watcher_.joinable()) watcher_.join();
    {
        std::lock_guard lock(conn_mutex_);
        for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    std::vector<std::thread> conns;
    {
        std::lock_guard lock(conn_mutex_);
        conns.swap(conn_threads_);
    }
    for (auto& t : conns) {
        if (t.joinable()) t.join();
    }
    queue_.close();
    if (worker_.joinable()) worker_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        ::unlink(config_.socket_path.c_str());
    }
}

// ---------------------------------------------------------------------------
// Ingest
// ---------------------------------------------------------------------------

std::string Daemon::ingest_bytes(std::string_view bytes, const std::string& source) {
    graph::RoutingSnapshot snap;
    try {
        std::istringstream in(std::string(bytes), std::ios::binary);
        snap = graph::RoutingSnapshot::parse(in);
    } catch (const std::exception& e) {
        std::lock_guard lock(mutex_);
        ++counters_.rejected;
        return "ERR " + source + ": " + e.what();
    }
    if (snap.nodes.empty()) {
        std::lock_guard lock(mutex_);
        ++counters_.rejected;
        return "ERR " + source + ": no nodes parsed (empty or unrecognized snapshot)";
    }
    return ingest_snapshot(std::move(snap), source);
}

std::string Daemon::ingest_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::lock_guard lock(mutex_);
        ++counters_.rejected;
        return "ERR cannot open snapshot file: " + path;
    }
    std::ostringstream bytes;
    bytes << in.rdbuf();
    if (in.bad()) {
        std::lock_guard lock(mutex_);
        ++counters_.rejected;
        return "ERR read failed: " + path;
    }
    return ingest_bytes(bytes.str(), path);
}

std::string Daemon::ingest_snapshot(graph::RoutingSnapshot snap,
                                    const std::string& source) {
    const std::string hash = content_hash(snap);
    {
        std::lock_guard lock(mutex_);
        const auto [it, inserted] = entries_.try_emplace(hash);
        if (!inserted) {
            ++counters_.duplicates;
            return "OK " + hash;
        }
        it->second.source = source;
        order_.push_back(hash);
        ++counters_.ingested;
    }
    // push() blocks while the queue is full — ingest backpressure: a
    // producer can never race arbitrarily far ahead of the analysis worker.
    Job job{hash, std::make_shared<graph::RoutingSnapshot>(std::move(snap))};
    if (!queue_.push(std::move(job))) {
        {
            std::lock_guard lock(mutex_);
            auto& entry = entries_[hash];
            entry.state = EntryState::kFailed;
            entry.error = "daemon stopping";
        }
        analyzed_cv_.notify_all();
        return "ERR daemon stopping";
    }
    return "OK " + hash;
}

// ---------------------------------------------------------------------------
// Analysis worker
// ---------------------------------------------------------------------------

void Daemon::analysis_worker() {
    // The single worker is what makes AnalyzerOptions::use_delta legal here:
    // snapshots are analyzed one at a time, in ingest order.
    while (auto job = queue_.pop()) process_job(std::move(*job));
}

std::shared_ptr<Daemon::HotState> Daemon::build_hot(
    std::shared_ptr<graph::RoutingSnapshot> snap) const {
    graph::Digraph g = snap->to_digraph(pool_.get());
    flow::FlowNetwork witness_net = flow::mincut_witness_network(g);
    return std::make_shared<HotState>(std::move(*snap), std::move(g),
                                      std::move(witness_net));
}

void Daemon::process_job(Job job) {
    const std::string key = result_key(job.hash);
    core::ResilienceSample sample{};
    bool cached = false;
    if (result_cache_) {
        core::ExperimentSeries series;
        if (result_cache_->load(key, series) && series.samples.size() == 1) {
            sample = series.samples.front();
            cached = true;
        }
    }
    if (!cached) {
        try {
            sample = analyzer_.analyze(*job.snap, pool_.get());
        } catch (const std::exception& e) {
            {
                std::lock_guard lock(mutex_);
                auto& entry = entries_[job.hash];
                entry.state = EntryState::kFailed;
                entry.error = e.what();
                ++counters_.analysis_failures;
            }
            analyzed_cv_.notify_all();
            return;
        }
        if (result_cache_) {
            core::ExperimentSeries series;
            series.samples.push_back(sample);
            (void)result_cache_->store(key, series);
        }
    }
    // Spool the canonical binary so evicted hot state can be rebuilt even
    // when the snapshot arrived over the socket (no source file).
    const std::string spool = spool_path(job.hash);
    if (!spool.empty() && !std::filesystem::exists(spool)) {
        if (util::ensure_directory(config_.cache_dir + "/snapshots")) {
            const std::string tmp = spool + ".tmp." + std::to_string(::getpid());
            std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
            if (out) {
                job.snap->save_binary(out);
                out.flush();
                const bool ok = static_cast<bool>(out);
                out.close();
                std::error_code ec;
                if (ok) std::filesystem::rename(tmp, spool, ec);
                if (!ok || ec) std::remove(tmp.c_str());
            }
        }
    }
    hot_.put(job.hash, build_hot(std::move(job.snap)));
    {
        std::lock_guard lock(mutex_);
        auto& entry = entries_[job.hash];
        entry.state = EntryState::kAnalyzed;
        entry.sample = sample;
        entry.row = ResultCache::format_sample_row(sample);
        if (cached) {
            ++counters_.result_cache_hits;
        } else {
            ++counters_.analyzed;
        }
    }
    analyzed_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Directory watcher
// ---------------------------------------------------------------------------

void Daemon::watch_loop() {
    namespace fs = std::filesystem;
    std::set<std::string> seen;
    while (running_.load(std::memory_order_relaxed)) {
        std::vector<std::string> fresh;
        try {
            for (const auto& dirent : fs::directory_iterator(config_.watch_dir)) {
                if (!dirent.is_regular_file()) continue;
                const std::string name = dirent.path().filename().string();
                // Dotfiles are the in-progress-write convention: writers
                // drop ".name.tmp" and rename to "name" once complete.
                if (name.empty() || name.front() == '.') continue;
                const std::string path = dirent.path().string();
                if (seen.insert(path).second) fresh.push_back(path);
            }
        } catch (const std::exception& e) {
            std::fprintf(stderr, "resilience daemon: watch %s: %s\n",
                         config_.watch_dir.c_str(), e.what());
        }
        // Name order within one poll round: a batch dropped between polls is
        // ingested as the series its filenames spell.
        std::sort(fresh.begin(), fresh.end());
        for (const auto& path : fresh) {
            const std::string response = ingest_file(path);
            if (is_err(response)) {
                std::fprintf(stderr, "resilience daemon: rejected %s\n",
                             response.c_str() + 4);
            }
        }
        for (int waited = 0;
             waited < config_.watch_poll_ms && running_.load(std::memory_order_relaxed);
             waited += 20) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
    }
}

// ---------------------------------------------------------------------------
// Socket server
// ---------------------------------------------------------------------------

void Daemon::accept_loop() {
    while (running_.load(std::memory_order_relaxed)) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            break;  // stop() shut the listening socket down
        }
        std::lock_guard lock(conn_mutex_);
        if (!running_.load(std::memory_order_relaxed)) {
            ::close(fd);
            break;
        }
        conn_fds_.push_back(fd);
        conn_threads_.emplace_back(&Daemon::serve_connection, this, fd);
    }
}

void Daemon::serve_connection(int fd) {
    std::string request;
    while (true) {
        const FrameResult r = read_frame(fd, request);
        if (r == FrameResult::kTooLarge) {
            (void)write_frame(fd, "ERR frame exceeds maximum size");
            break;
        }
        if (r != FrameResult::kOk) break;
        bool shutdown_after_reply = false;
        const std::string response = handle_request(request, &shutdown_after_reply);
        const FrameResult w = write_frame(fd, response);
        // SHUTDOWN's stop-request is raised only after the reply frame went
        // out (or definitively failed), so the client always sees its "OK".
        if (shutdown_after_reply) stop_requested_.store(true);
        if (w != FrameResult::kOk) break;
    }
    {
        std::lock_guard lock(conn_mutex_);
        conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                        conn_fds_.end());
    }
    ::close(fd);
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

std::string Daemon::handle_request(std::string_view request,
                                   bool* shutdown_after_reply) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::string response = dispatch(request, shutdown_after_reply);
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    std::lock_guard lock(mutex_);
    query_latency_us_.add(us);
    ++counters_.queries;
    if (is_err(response)) ++counters_.query_errors;
    return response;
}

std::string Daemon::dispatch(std::string_view request, bool* shutdown_after_reply) {
    const std::size_t sp = request.find_first_of(" \n");
    const std::string_view cmd =
        request.substr(0, sp == std::string_view::npos ? request.size() : sp);
    const std::string_view rest =
        sp == std::string_view::npos ? std::string_view{} : request.substr(sp + 1);

    if (cmd == "PING") return "OK pong";
    if (cmd == "COUNTERS") return cmd_counters();
    if (cmd == "LIST") return cmd_list();
    if (cmd == "SHUTDOWN") {
        if (shutdown_after_reply) {
            *shutdown_after_reply = true;
        } else {
            stop_requested_.store(true);
        }
        return "OK shutting down";
    }
    if (cmd == "METRICS") return cmd_metrics(trim(rest), "row");
    if (cmd == "KAPPA") return cmd_metrics(trim(rest), "kappa");
    if (cmd == "LAMBDA") return cmd_metrics(trim(rest), "lambda");
    if (cmd == "SCC") return cmd_metrics(trim(rest), "scc");
    if (cmd == "ART") return cmd_metrics(trim(rest), "art");
    if (cmd == "PAIR") return cmd_pair(rest);
    if (cmd == "INGEST") {
        // Payload: "INGEST <source-label>\n<raw snapshot bytes>".
        const std::size_t nl = rest.find('\n');
        if (nl == std::string_view::npos) {
            return "ERR INGEST needs a source label line followed by snapshot bytes";
        }
        const std::string source{trim(rest.substr(0, nl))};
        return ingest_bytes(rest.substr(nl + 1),
                            source.empty() ? std::string("socket") : source);
    }
    return "ERR unknown command: " + std::string(cmd);
}

std::string Daemon::resolve_and_wait(std::string_view id, std::string& hash) {
    std::unique_lock lock(mutex_);
    std::string resolved;
    if (id.empty() || id == "latest") {
        if (order_.empty()) return "ERR no snapshots ingested";
        resolved = order_.back();
    } else {
        const std::string want(id);
        if (entries_.contains(want)) {
            resolved = want;
        } else {
            for (const auto& candidate : order_) {
                if (candidate.starts_with(want)) {
                    if (!resolved.empty()) return "ERR ambiguous snapshot id: " + want;
                    resolved = candidate;
                }
            }
            if (resolved.empty()) return "ERR unknown snapshot id: " + want;
        }
    }
    auto& entry = entries_[resolved];
    const bool done = analyzed_cv_.wait_for(
        lock, std::chrono::milliseconds(config_.query_timeout_ms),
        [&entry] { return entry.state != EntryState::kQueued; });
    if (!done) return "ERR timed out waiting for analysis of " + resolved;
    if (entry.state == EntryState::kFailed) {
        return "ERR analysis of " + resolved + " failed: " + entry.error;
    }
    hash = resolved;
    return {};
}

std::string Daemon::cmd_metrics(std::string_view id, std::string_view field) {
    std::string hash;
    if (std::string err = resolve_and_wait(id, hash); !err.empty()) return err;
    core::ResilienceSample s{};
    std::string row;
    {
        std::lock_guard lock(mutex_);
        const auto& entry = entries_[hash];
        s = entry.sample;
        row = entry.row;
    }
    if (field == "row") return "OK " + row;
    std::ostringstream out;
    out << "OK ";
    if (field == "kappa") {
        out << "kappa_min=" << s.kappa_min << " kappa_avg=" << s.kappa_avg;
    } else if (field == "lambda") {
        out << "lambda_min=" << s.lambda_min << " lambda_avg=" << s.lambda_avg;
    } else if (field == "scc") {
        out << "scc=" << s.scc_count << " scc_frac=" << s.scc_frac
            << " wcc_frac=" << s.wcc_frac;
    } else {
        out << "articulation=" << s.articulation_points << " bridges=" << s.bridges;
    }
    return out.str();
}

std::shared_ptr<Daemon::HotState> Daemon::hydrate(const std::string& hash,
                                                  std::string& error) {
    if (auto hot = hot_.get(hash)) return hot;
    std::string source;
    {
        std::lock_guard lock(mutex_);
        source = entries_[hash].source;
    }
    for (const std::string& path : {spool_path(hash), source}) {
        if (path.empty()) continue;
        std::ifstream in(path, std::ios::binary);
        if (!in) continue;
        auto snap = std::make_shared<graph::RoutingSnapshot>();
        try {
            *snap = graph::RoutingSnapshot::parse(in);
        } catch (const std::exception&) {
            continue;
        }
        // The file may have been replaced since ingest; serve only the
        // snapshot the hash names.
        if (content_hash(*snap) != hash) continue;
        auto hot = build_hot(std::move(snap));
        hot_.put(hash, hot);
        return hot;
    }
    error = "hot state for " + hash + " was evicted and no snapshot file remains";
    return nullptr;
}

std::string Daemon::cmd_pair(std::string_view rest) {
    std::istringstream in{std::string(rest)};
    std::string id;
    int u = -1;
    int v = -1;
    if (!(in >> id >> u >> v)) return "ERR usage: PAIR <id> <u> <v>";
    std::string hash;
    if (std::string err = resolve_and_wait(id, hash); !err.empty()) return err;
    std::string error;
    const auto hot = hydrate(hash, error);
    if (!hot) return "ERR " + error;
    const int n = hot->g.vertex_count();
    if (u < 0 || v < 0 || u >= n || v >= n || u == v) {
        return "ERR PAIR needs two distinct vertex indices in [0, " +
               std::to_string(n) + ")";
    }
    // κ(u,v) is undefined for adjacent pairs (no cut separates them); the
    // flow kernel asserts this, so reject here instead of aborting.
    if (hot->g.has_edge(u, v)) {
        return "ERR kappa(u,v) undefined: " + std::to_string(u) + " -> " +
               std::to_string(v) + " is a routing-table edge (adjacent pair)";
    }
    // The workspace (attached arc copies + scratch) is per thread and pinned
    // to its network: repeated PAIR queries on one connection reuse it via
    // the touched-arc undo log instead of re-attaching. The shared_ptr pin
    // also keeps an evicted network alive while this thread still uses it.
    thread_local std::shared_ptr<HotState> pinned;
    thread_local flow::FlowWorkspace workspace;
    if (pinned != hot) {
        workspace.attach(hot->witness_net);
        pinned = hot;
    }
    const auto cut = flow::min_vertex_cut(hot->g, hot->witness_net, workspace, u, v);
    std::ostringstream out;
    out << "OK kappa=" << cut.size() << " cut_addresses=";
    for (std::size_t i = 0; i < cut.size(); ++i) {
        out << (i > 0 ? "," : "")
            << hot->snap.nodes[static_cast<std::size_t>(cut[i])].address;
    }
    return out.str();
}

DaemonCounters Daemon::counters() const {
    DaemonCounters c;
    {
        std::lock_guard lock(mutex_);
        c = counters_;
        c.query_latency_p50_us = query_latency_us_.quantile(0.5);
        c.query_latency_p99_us = query_latency_us_.quantile(0.99);
    }
    const auto lru = hot_.stats();
    c.hot_hits = lru.hits;
    c.hot_misses = lru.misses;
    c.hot_evictions = lru.evictions;
    c.queue_depth = queue_.size();
    return c;
}

std::string Daemon::cmd_counters() const {
    const DaemonCounters c = counters();
    std::ostringstream out;
    out << "OK\n"
        << "ingested=" << c.ingested << '\n'
        << "duplicates=" << c.duplicates << '\n'
        << "rejected=" << c.rejected << '\n'
        << "analyzed=" << c.analyzed << '\n'
        << "analysis_failures=" << c.analysis_failures << '\n'
        << "result_cache_hits=" << c.result_cache_hits << '\n'
        << "queue_depth=" << c.queue_depth << '\n'
        << "hot_hits=" << c.hot_hits << '\n'
        << "hot_misses=" << c.hot_misses << '\n'
        << "hot_evictions=" << c.hot_evictions << '\n'
        << "queries=" << c.queries << '\n'
        << "query_errors=" << c.query_errors << '\n'
        << "query_latency_p50_us=" << c.query_latency_p50_us << '\n'
        << "query_latency_p99_us=" << c.query_latency_p99_us;
    return out.str();
}

std::string Daemon::cmd_list() {
    std::lock_guard lock(mutex_);
    std::ostringstream out;
    out << "OK " << order_.size();
    for (const auto& hash : order_) {
        const auto& entry = entries_[hash];
        const char* state = entry.state == EntryState::kAnalyzed  ? "analyzed"
                            : entry.state == EntryState::kFailed ? "failed"
                                                                 : "queued";
        out << '\n' << hash << ' ' << state << ' ' << entry.source;
    }
    return out.str();
}

}  // namespace kadsim::serve
