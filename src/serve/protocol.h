// Wire protocol of the resilience daemon: length-prefixed frames over a
// local stream socket.
//
// Each frame is a u32 little-endian byte count followed by exactly that many
// payload bytes. Requests are one text line (e.g. "KAPPA latest"), except
// INGEST whose payload carries raw snapshot bytes after the first newline;
// responses start with "OK" or "ERR". Framing keeps binary snapshot payloads
// and multi-line counter responses unambiguous without any in-band escaping.
//
// The read side is defensive: a short read, closed peer, or a declared
// length above `max_payload` yields a clean failure, never a blocked daemon
// or an unbounded allocation.
#ifndef KADSIM_SERVE_PROTOCOL_H
#define KADSIM_SERVE_PROTOCOL_H

#include <cstddef>
#include <string>
#include <string_view>

namespace kadsim::serve {

/// Frames larger than this are protocol errors (a garbage or hostile length
/// prefix must not drive a multi-gigabyte resize). Generous enough for a
/// million-node binary snapshot ingest.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 30;

enum class FrameResult {
    kOk,
    kClosed,    ///< orderly EOF on the frame boundary
    kTruncated, ///< peer vanished mid-frame
    kTooLarge,  ///< declared length exceeds max_payload
    kError,     ///< read()/write() failure (errno-level)
};

/// Writes one frame (length prefix + payload), looping over partial writes.
[[nodiscard]] FrameResult write_frame(int fd, std::string_view payload);

/// Reads one frame into `out` (replaced, not appended). kClosed only when
/// EOF lands exactly between frames.
[[nodiscard]] FrameResult read_frame(int fd, std::string& out,
                                     std::size_t max_payload = kMaxFrameBytes);

/// Client convenience: connect to a daemon's AF_UNIX socket. Returns the
/// connected fd, or -1 with a diagnostic in `error`.
[[nodiscard]] int connect_unix(const std::string& socket_path, std::string& error);

/// Server side: bind + listen on `socket_path`, unlinking any stale socket
/// file first. Returns the listening fd, or -1 with a diagnostic in `error`.
[[nodiscard]] int listen_unix(const std::string& socket_path, std::string& error);

}  // namespace kadsim::serve

#endif  // KADSIM_SERVE_PROTOCOL_H
