// Size-bounded, thread-safe LRU cache for heavy analysis state.
//
// The resilience daemon keeps finalized flow networks and compacted
// connectivity graphs hot between queries; each entry is hundreds of
// megabytes at million-node scale, so residency must be bounded. Values are
// handed out as shared_ptr so an evicted entry stays alive for any query
// still holding it — eviction bounds *cache* residency, never invalidates an
// in-flight computation.
#ifndef KADSIM_SERVE_LRU_CACHE_H
#define KADSIM_SERVE_LRU_CACHE_H

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "util/assert.h"

namespace kadsim::serve {

template <typename Key, typename Value>
class LruCache {
public:
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };

    explicit LruCache(std::size_t capacity) : capacity_(capacity) {
        KADSIM_ASSERT_MSG(capacity > 0, "LruCache capacity must be positive");
    }

    LruCache(const LruCache&) = delete;
    LruCache& operator=(const LruCache&) = delete;

    /// The value under `key`, refreshed to most-recently-used; nullptr on
    /// miss. Both outcomes are counted.
    [[nodiscard]] std::shared_ptr<Value> get(const Key& key) {
        std::lock_guard lock(mutex_);
        const auto it = index_.find(key);
        if (it == index_.end()) {
            ++stats_.misses;
            return nullptr;
        }
        order_.splice(order_.begin(), order_, it->second);
        ++stats_.hits;
        return it->second->second;
    }

    /// Inserts (or refreshes) `key`, evicting from the least-recently-used
    /// end until the entry fits. Inserting an existing key replaces its
    /// value without counting an eviction.
    void put(const Key& key, std::shared_ptr<Value> value) {
        std::lock_guard lock(mutex_);
        const auto it = index_.find(key);
        if (it != index_.end()) {
            it->second->second = std::move(value);
            order_.splice(order_.begin(), order_, it->second);
            return;
        }
        while (order_.size() >= capacity_) {
            index_.erase(order_.back().first);
            order_.pop_back();
            ++stats_.evictions;
        }
        order_.emplace_front(key, std::move(value));
        index_[key] = order_.begin();
    }

    [[nodiscard]] std::size_t size() const {
        std::lock_guard lock(mutex_);
        return order_.size();
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

    [[nodiscard]] Stats stats() const {
        std::lock_guard lock(mutex_);
        return stats_;
    }

private:
    using Entry = std::pair<Key, std::shared_ptr<Value>>;

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::list<Entry> order_;  ///< front = most recently used
    std::unordered_map<Key, typename std::list<Entry>::iterator> index_;
    Stats stats_;
};

}  // namespace kadsim::serve

#endif  // KADSIM_SERVE_LRU_CACHE_H
