// Content-addressed on-disk result cache, shared across processes.
//
// Promoted from the per-process CSV cache in bench/common.cpp: entries are
// keyed by an arbitrary string (the bench layer keys by the full experiment
// config; the resilience daemon keys by snapshot content hash + analyzer
// options), stored one file per key under <root>/<sha1(key)>.csv, and carry
// the key itself on the first line so a hash collision or a key-scheme
// change can never silently serve the wrong series. The row format is the
// 28-column ResilienceSample serialization whose first columns are pinned by
// the golden hashes in tests/test_fault_equivalence.cpp — existing bench
// caches stay byte-valid.
//
// Stores are atomic (write to a sibling temp file, then rename): concurrent
// daemon workers, bench runners sharded over machines, and a reader racing a
// writer all see either the complete entry or none of it — never a torn
// file. All I/O failures are reported (load: miss; store: false), never
// swallowed.
#ifndef KADSIM_SERVE_RESULT_CACHE_H
#define KADSIM_SERVE_RESULT_CACHE_H

#include <iosfwd>
#include <string>
#include <string_view>

#include "core/experiment.h"

namespace kadsim::serve {

class ResultCache {
public:
    /// Binds to `root` (created on first store, not here).
    explicit ResultCache(std::string root) : root_(std::move(root)) {}

    [[nodiscard]] const std::string& root() const noexcept { return root_; }

    /// On-disk path of the entry for `key`.
    [[nodiscard]] std::string entry_path(const std::string& key) const;

    /// Loads the series stored under `key` into `out` (appending to
    /// out.samples). Returns false — a cache miss — when the entry is
    /// absent, carries a different key, or any row fails to parse (rows
    /// written before a column append fail parse_sample_row and re-run).
    [[nodiscard]] bool load(const std::string& key,
                            core::ExperimentSeries& out) const;

    /// Atomically stores `series` under `key`. Returns false on any I/O
    /// failure (unwritable root, full disk); a failed store never leaves a
    /// partial entry behind.
    bool store(const std::string& key, const core::ExperimentSeries& series) const;

    // --- row serialization (shared with the bench cache probe) -----------

    /// The cache-CSV column header (no trailing newline).
    [[nodiscard]] static const char* csv_header();

    /// One data row of the 28-column serialization, without the trailing
    /// newline. Default ostream formatting — the bytes the golden hashes pin.
    [[nodiscard]] static std::string format_sample_row(
        const core::ResilienceSample& s);

    /// Parses one data row; returns false on any malformed, short, or
    /// over-long row. std::from_chars end to end — allocation-free.
    [[nodiscard]] static bool parse_sample_row(std::string_view line,
                                               core::ResilienceSample& out);

private:
    std::string root_;
};

}  // namespace kadsim::serve

#endif  // KADSIM_SERVE_RESULT_CACHE_H
