// Persistent worker pool shared by the flow, experiment and bench layers.
//
// One pool is created per process scope (a bench run, an experiment, a
// test) and reused across snapshots and experiments, replacing the
// per-snapshot std::thread spawn/join the analyzer used to pay. Tasks are
// submitted as futures; callers that block on a result are expected to call
// `wait_get`, which *helps* — it steals queued tasks and runs them on the
// waiting thread instead of idling. That rule is what makes nested use
// (an experiment task waiting on flow jobs in the same pool) deadlock-free:
// a waiting thread is always also a worker.
//
// Determinism contract: the pool schedules tasks in FIFO order but makes no
// ordering promise between workers. Every client in this codebase therefore
// keeps its *aggregation* deterministic (per-task local accumulation,
// integer sums, index-addressed result slots) so results are bit-identical
// for any worker count — the property the experiment tests pin.
#ifndef KADSIM_EXEC_THREAD_POOL_H
#define KADSIM_EXEC_THREAD_POOL_H

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/inplace_function.h"

namespace kadsim::exec {

class ThreadPool {
public:
    /// Spawns `threads` persistent workers (clamped to at least 1).
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Number of worker threads (excluding helping callers).
    [[nodiscard]] int size() const noexcept { return static_cast<int>(workers_.size()); }

    /// Enqueues `f` and returns its future. Exceptions thrown by `f` are
    /// captured and rethrown from `future::get` / `wait_get`.
    template <typename F>
    [[nodiscard]] auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
        using R = std::invoke_result_t<std::decay_t<F>>;
        std::packaged_task<R()> task(std::forward<F>(f));
        std::future<R> future = task.get_future();
        enqueue(Task([t = std::move(task)]() mutable { t(); }));
        return future;
    }

    /// Blocks until `future` is ready, running queued tasks on the calling
    /// thread while waiting (cooperative "work-stealing" wait; see file doc).
    /// With the queue empty it parks on the future in bounded slices, so an
    /// idle wait costs wakeups only at millisecond granularity.
    template <typename R>
    R wait_get(std::future<R>& future) {
        while (future.wait_for(std::chrono::seconds(0)) !=
               std::future_status::ready) {
            if (!try_run_one()) future.wait_for(std::chrono::milliseconds(1));
        }
        return future.get();
    }

    /// Runs `body(i)` for every i in [begin, end), partitioned into
    /// contiguous chunks across the workers plus the calling thread. Blocks
    /// until every index ran; the first exception (if any) is rethrown.
    template <typename F>
    void parallel_for(int begin, int end, F&& body) {
        if (begin >= end) return;
        const int count = end - begin;
        const int chunks = std::min(size() + 1, count);
        std::vector<std::future<void>> futures;
        futures.reserve(static_cast<std::size_t>(chunks - 1));
        // Chunk c covers [begin + c*count/chunks, begin + (c+1)*count/chunks).
        for (int c = 1; c < chunks; ++c) {
            const int lo = begin + static_cast<int>(
                                       static_cast<long long>(c) * count / chunks);
            const int hi = begin + static_cast<int>(
                                       static_cast<long long>(c + 1) * count / chunks);
            futures.push_back(submit([lo, hi, &body] {
                for (int i = lo; i < hi; ++i) body(i);
            }));
        }
        std::exception_ptr first_error;
        try {
            const int hi = begin + count / chunks;
            for (int i = begin; i < hi; ++i) body(i);
        } catch (...) {
            first_error = std::current_exception();
        }
        for (auto& future : futures) {
            try {
                wait_get(future);
            } catch (...) {
                if (!first_error) first_error = std::current_exception();
            }
        }
        if (first_error) std::rethrow_exception(first_error);
    }

    /// Runs one queued task on the calling thread, if any. Returns whether a
    /// task ran. The hook behind `wait_get`; also usable directly.
    bool try_run_one();

    /// True while the calling thread is executing a pool task (worker thread
    /// or helping caller). Lets re-entrant clients fall back to inline
    /// execution instead of submitting blocking work from inside the pool.
    [[nodiscard]] static bool in_worker() noexcept;

private:
    // Tasks only carry a packaged_task (whose callable state lives on the
    // heap in the shared state), so a small inline buffer always fits.
    using Task = util::InplaceFunction<void(), 64>;

    void enqueue(Task task);
    void worker_loop();
    static void run_task(Task task);

    std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<Task> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

}  // namespace kadsim::exec

#endif  // KADSIM_EXEC_THREAD_POOL_H
