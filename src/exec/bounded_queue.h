// Bounded blocking queue: the hand-off primitive of the execution engine.
//
// Designed for the pipeline shapes in this codebase — a single deterministic
// producer (scen::Runner) feeding multiple analyzer workers, and multiple
// producers feeding one collector (MPSC). `push` applies backpressure by
// blocking while the queue is full, which is what keeps the simulator from
// racing arbitrarily far ahead of the analysis and holding every pending
// snapshot in memory at once.
//
// Shutdown follows the channel idiom: `close()` wakes everyone, pending
// items are still drained, and `pop()` returns nullopt only once the queue
// is both closed and empty.
#ifndef KADSIM_EXEC_BOUNDED_QUEUE_H
#define KADSIM_EXEC_BOUNDED_QUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/assert.h"

namespace kadsim::exec {

template <typename T>
class BoundedQueue {
public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
        KADSIM_ASSERT_MSG(capacity > 0, "BoundedQueue capacity must be positive");
    }

    BoundedQueue(const BoundedQueue&) = delete;
    BoundedQueue& operator=(const BoundedQueue&) = delete;

    /// Blocks while the queue is at capacity. Returns false (dropping `item`)
    /// if the queue is or becomes closed before space is available.
    bool push(T item) {
        std::unique_lock lock(mutex_);
        not_full_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
        if (closed_) return false;
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /// Non-blocking push; fails when full or closed.
    bool try_push(T item) {
        {
            std::lock_guard lock(mutex_);
            if (closed_ || items_.size() >= capacity_) return false;
            items_.push_back(std::move(item));
        }
        not_empty_.notify_one();
        return true;
    }

    /// Blocks while the queue is empty. Returns nullopt once the queue is
    /// closed AND fully drained — pending items are always delivered.
    std::optional<T> pop() {
        std::unique_lock lock(mutex_);
        not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
        if (items_.empty()) return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

    /// Non-blocking pop; nullopt when currently empty (closed or not).
    std::optional<T> try_pop() {
        std::optional<T> item;
        {
            std::lock_guard lock(mutex_);
            if (items_.empty()) return std::nullopt;
            item = std::move(items_.front());
            items_.pop_front();
        }
        not_full_.notify_one();
        return item;
    }

    /// Idempotent: wakes all blocked producers/consumers. Blocked and future
    /// pushes fail; pops keep succeeding until the queue is drained.
    void close() {
        {
            std::lock_guard lock(mutex_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    [[nodiscard]] bool closed() const {
        std::lock_guard lock(mutex_);
        return closed_;
    }

    [[nodiscard]] std::size_t size() const {
        std::lock_guard lock(mutex_);
        return items_.size();
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<T> items_;
    bool closed_ = false;
};

}  // namespace kadsim::exec

#endif  // KADSIM_EXEC_BOUNDED_QUEUE_H
