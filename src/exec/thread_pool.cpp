#include "exec/thread_pool.h"

#include <algorithm>

namespace kadsim::exec {

namespace {
thread_local bool tl_in_pool_task = false;
}  // namespace

ThreadPool::ThreadPool(int threads) {
    const int count = std::max(1, threads);
    workers_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    ready_.notify_all();
    for (auto& worker : workers_) worker.join();
}

bool ThreadPool::in_worker() noexcept { return tl_in_pool_task; }

void ThreadPool::enqueue(Task task) {
    {
        std::lock_guard lock(mutex_);
        queue_.push_back(std::move(task));
    }
    ready_.notify_one();
}

void ThreadPool::run_task(Task task) {
    // Flag helping callers as workers too, so re-entrancy guards hold on any
    // thread currently inside a pool task.
    const bool was_in_task = tl_in_pool_task;
    tl_in_pool_task = true;
    task();  // packaged_task: exceptions land in the future, never escape
    tl_in_pool_task = was_in_task;
}

bool ThreadPool::try_run_one() {
    Task task;
    {
        std::lock_guard lock(mutex_);
        if (queue_.empty()) return false;
        task = std::move(queue_.front());
        queue_.pop_front();
    }
    run_task(std::move(task));
    return true;
}

void ThreadPool::worker_loop() {
    while (true) {
        Task task;
        {
            std::unique_lock lock(mutex_);
            ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping_ and fully drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        run_task(std::move(task));
    }
}

}  // namespace kadsim::exec
