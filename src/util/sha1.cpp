#include "util/sha1.h"

#include <cstring>

namespace kadsim::util {

namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int k) noexcept {
    return (x << k) | (x >> (32 - k));
}

}  // namespace

void Sha1::reset() noexcept {
    h_ = {0x67452301U, 0xEFCDAB89U, 0x98BADCFEU, 0x10325476U, 0xC3D2E1F0U};
    buffered_ = 0;
    total_bytes_ = 0;
}

void Sha1::update(std::string_view text) noexcept {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

void Sha1::update(std::span<const std::uint8_t> data) noexcept {
    total_bytes_ += data.size();
    std::size_t offset = 0;
    if (buffered_ > 0) {
        const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
        std::memcpy(buffer_.data() + buffered_, data.data(), take);
        buffered_ += take;
        offset = take;
        if (buffered_ == buffer_.size()) {
            process_block(buffer_.data());
            buffered_ = 0;
        }
    }
    while (offset + 64 <= data.size()) {
        process_block(data.data() + offset);
        offset += 64;
    }
    if (offset < data.size()) {
        std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
        buffered_ = data.size() - offset;
    }
}

Sha1Digest Sha1::finish() noexcept {
    const std::uint64_t bit_length = total_bytes_ * 8;
    // Append 0x80 then zero-pad to 56 mod 64, then the 64-bit big-endian length.
    const std::uint8_t one = 0x80;
    update(std::span<const std::uint8_t>(&one, 1));
    const std::uint8_t zero = 0x00;
    while (buffered_ != 56) {
        update(std::span<const std::uint8_t>(&zero, 1));
    }
    std::array<std::uint8_t, 8> len_bytes{};
    for (int i = 0; i < 8; ++i) {
        len_bytes[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
    }
    update(std::span<const std::uint8_t>(len_bytes.data(), len_bytes.size()));

    Sha1Digest digest{};
    for (std::size_t i = 0; i < 5; ++i) {
        digest[i * 4 + 0] = static_cast<std::uint8_t>(h_[i] >> 24);
        digest[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
        digest[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
        digest[i * 4 + 3] = static_cast<std::uint8_t>(h_[i]);
    }
    return digest;
}

void Sha1::process_block(const std::uint8_t* block) noexcept {
    std::array<std::uint32_t, 80> w{};
    for (std::size_t t = 0; t < 16; ++t) {
        w[t] = (static_cast<std::uint32_t>(block[t * 4]) << 24) |
               (static_cast<std::uint32_t>(block[t * 4 + 1]) << 16) |
               (static_cast<std::uint32_t>(block[t * 4 + 2]) << 8) |
               static_cast<std::uint32_t>(block[t * 4 + 3]);
    }
    for (std::size_t t = 16; t < 80; ++t) {
        w[t] = rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
    }

    std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
    for (std::size_t t = 0; t < 80; ++t) {
        std::uint32_t f = 0;
        std::uint32_t k = 0;
        if (t < 20) {
            f = (b & c) | (~b & d);
            k = 0x5A827999U;
        } else if (t < 40) {
            f = b ^ c ^ d;
            k = 0x6ED9EBA1U;
        } else if (t < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8F1BBCDCU;
        } else {
            f = b ^ c ^ d;
            k = 0xCA62C1D6U;
        }
        const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[t];
        e = d;
        d = c;
        c = rotl32(b, 30);
        b = a;
        a = temp;
    }
    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
    h_[4] += e;
}

Sha1Digest sha1(std::string_view text) noexcept {
    Sha1 h;
    h.update(text);
    return h.finish();
}

Sha1Digest sha1(std::span<const std::uint8_t> data) noexcept {
    Sha1 h;
    h.update(data);
    return h.finish();
}

std::string to_hex(const Sha1Digest& digest) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    out.reserve(digest.size() * 2);
    for (const std::uint8_t byte : digest) {
        out.push_back(kDigits[byte >> 4]);
        out.push_back(kDigits[byte & 0x0F]);
    }
    return out;
}

}  // namespace kadsim::util
