// SHA-1 (FIPS 180-1), implemented from the specification.
//
// The paper derives node and data-object identifiers from "a cryptographically
// secure hash function with the goal of equal distribution of identifiers in
// the identifier space" (§4.1); Kademlia's original bit-length b = 160 is
// exactly the SHA-1 digest size. SHA-1 is cryptographically broken for
// collision resistance but remains the historically faithful choice here, and
// distributional uniformity (all we rely on) is unaffected.
#ifndef KADSIM_UTIL_SHA1_H
#define KADSIM_UTIL_SHA1_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace kadsim::util {

/// 20-byte SHA-1 digest, big-endian byte order as in FIPS 180-1.
using Sha1Digest = std::array<std::uint8_t, 20>;

/// Incremental SHA-1. Typical use: Sha1 h; h.update(...); auto d = h.finish();
class Sha1 {
public:
    Sha1() noexcept { reset(); }

    void reset() noexcept;
    void update(std::span<const std::uint8_t> data) noexcept;
    void update(std::string_view text) noexcept;

    /// Finalizes and returns the digest. The object must be reset() before
    /// further use.
    [[nodiscard]] Sha1Digest finish() noexcept;

private:
    void process_block(const std::uint8_t* block) noexcept;

    std::array<std::uint32_t, 5> h_{};
    std::array<std::uint8_t, 64> buffer_{};
    std::size_t buffered_ = 0;
    std::uint64_t total_bytes_ = 0;
};

/// One-shot convenience.
[[nodiscard]] Sha1Digest sha1(std::string_view text) noexcept;
[[nodiscard]] Sha1Digest sha1(std::span<const std::uint8_t> data) noexcept;

/// Lower-case hex rendering of a digest.
[[nodiscard]] std::string to_hex(const Sha1Digest& digest);

}  // namespace kadsim::util

#endif  // KADSIM_UTIL_SHA1_H
