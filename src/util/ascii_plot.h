// Terminal line plots so every figure bench can render the paper's figure
// shape directly in the run log (EXPERIMENTS.md embeds these).
#ifndef KADSIM_UTIL_ASCII_PLOT_H
#define KADSIM_UTIL_ASCII_PLOT_H

#include <string>
#include <vector>

namespace kadsim::util {

/// One named series of (x, y) points; x is typically simulated minutes.
struct PlotSeries {
    std::string name;
    char glyph = '*';
    std::vector<double> x;
    std::vector<double> y;
};

/// Renders series onto a width×height character canvas with y-axis labels,
/// shared x-range, and a legend line. Values are linearly binned; later
/// series overwrite earlier ones on collisions.
class AsciiPlot {
public:
    AsciiPlot(int width, int height) : width_(width), height_(height) {}

    void add_series(PlotSeries series);
    /// Optional fixed y-range (otherwise auto-scaled to data).
    void set_y_range(double lo, double hi);
    void set_title(std::string title);

    [[nodiscard]] std::string render() const;

private:
    int width_;
    int height_;
    bool fixed_range_ = false;
    double y_lo_ = 0.0;
    double y_hi_ = 1.0;
    std::string title_;
    std::vector<PlotSeries> series_;
};

}  // namespace kadsim::util

#endif  // KADSIM_UTIL_ASCII_PLOT_H
