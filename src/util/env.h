// Environment-based scale knobs shared by all benches (see DESIGN.md §6).
#ifndef KADSIM_UTIL_ENV_H
#define KADSIM_UTIL_ENV_H

#include <cstdint>
#include <optional>
#include <string>

namespace kadsim::util {

[[nodiscard]] std::optional<std::string> env_string(const char* name);
[[nodiscard]] std::int64_t env_int(const char* name, std::int64_t def);
[[nodiscard]] double env_double(const char* name, double def);

/// Reproduction scale selected via REPRO_SCALE (quick | paper | full).
/// "full" is everything "paper" is plus the beyond-paper 100k-node scale
/// tier — hours of wall time, never part of CI.
enum class ReproScale { kQuick, kPaper, kFull };

[[nodiscard]] ReproScale repro_scale();
[[nodiscard]] std::uint64_t repro_seed();       // REPRO_SEED, default 20170327
[[nodiscard]] int repro_threads();              // REPRO_THREADS, default hw
[[nodiscard]] double repro_sample_c();          // REPRO_SAMPLE_C, default 0.02

/// Network sizes: paper uses 250 / 2500; quick scale uses 250 / 500.
[[nodiscard]] int repro_size_small();
[[nodiscard]] int repro_size_large();

}  // namespace kadsim::util

#endif  // KADSIM_UTIL_ENV_H
