#include "util/cli.h"

#include <cstdlib>
#include <stdexcept>

namespace kadsim::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
    if (argc > 0) program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        const std::string body = arg.substr(2);
        const auto eq = body.find('=');
        if (eq != std::string::npos) {
            options_[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            options_[body] = argv[++i];
        } else {
            options_[body] = "true";
        }
    }
}

bool CliArgs::has(const std::string& key) const { return options_.count(key) > 0; }

std::string CliArgs::get(const std::string& key, std::string def) const {
    const auto it = options_.find(key);
    return it == options_.end() ? std::move(def) : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key, std::int64_t def) const {
    const auto it = options_.find(key);
    if (it == options_.end()) return def;
    try {
        return std::stoll(it->second);
    } catch (const std::exception&) {
        throw std::invalid_argument("--" + key + " expects an integer, got '" +
                                    it->second + "'");
    }
}

double CliArgs::get_double(const std::string& key, double def) const {
    const auto it = options_.find(key);
    if (it == options_.end()) return def;
    try {
        return std::stod(it->second);
    } catch (const std::exception&) {
        throw std::invalid_argument("--" + key + " expects a number, got '" +
                                    it->second + "'");
    }
}

bool CliArgs::get_bool(const std::string& key, bool def) const {
    const auto it = options_.find(key);
    if (it == options_.end()) return def;
    const std::string& v = it->second;
    if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
    if (v == "false" || v == "0" || v == "no" || v == "off") return false;
    throw std::invalid_argument("--" + key + " expects a boolean, got '" + v + "'");
}

}  // namespace kadsim::util
