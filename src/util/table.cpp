#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/assert.h"

namespace kadsim::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
    KADSIM_ASSERT(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
    KADSIM_ASSERT_MSG(row.size() == header_.size(), "row width != header width");
    rows_.push_back(std::move(row));
}

void TextTable::add_separator() { rows_.emplace_back(); }

std::string TextTable::to_string() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
    for (const auto& row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            widths[i] = std::max(widths[i], row[i].size());
        }
    }

    auto render_line = [&](const std::vector<std::string>& cells) {
        std::string line;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            line += (i == 0) ? "| " : " | ";
            line += cells[i];
            line.append(widths[i] - cells[i].size(), ' ');
        }
        line += " |\n";
        return line;
    };
    auto render_rule = [&] {
        std::string line;
        for (std::size_t i = 0; i < widths.size(); ++i) {
            line += (i == 0) ? "+-" : "-+-";
            line.append(widths[i], '-');
        }
        line += "-+\n";
        return line;
    };

    std::string out = render_rule() + render_line(header_) + render_rule();
    for (const auto& row : rows_) {
        out += row.empty() ? render_rule() : render_line(row);
    }
    out += render_rule();
    return out;
}

std::string TextTable::num(double value, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string TextTable::num(long long value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", value);
    return buf;
}

}  // namespace kadsim::util
