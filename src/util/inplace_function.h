// Move-only, small-buffer-optimized callable. The event queue schedules tens
// of millions of events per run; std::function would heap-allocate for every
// lambda capturing more than two words (Per.14/Per.15: minimize allocations,
// don't allocate on a critical branch). InplaceFunction stores the callable
// inline and refuses (at compile time) anything that does not fit.
#ifndef KADSIM_UTIL_INPLACE_FUNCTION_H
#define KADSIM_UTIL_INPLACE_FUNCTION_H

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

#include "util/assert.h"

namespace kadsim::util {

template <typename Signature, std::size_t Capacity = 48>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
public:
    InplaceFunction() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
    InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor): function-like
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= Capacity,
                      "callable too large for InplaceFunction capacity");
        static_assert(alignof(Fn) <= alignof(std::max_align_t));
        ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
        invoke_ = [](void* storage, Args... args) -> R {
            return (*static_cast<Fn*>(storage))(std::forward<Args>(args)...);
        };
        destroy_ = [](void* storage) noexcept { static_cast<Fn*>(storage)->~Fn(); };
        relocate_ = [](void* dst, void* src) noexcept {
            ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
            static_cast<Fn*>(src)->~Fn();
        };
    }

    InplaceFunction(InplaceFunction&& other) noexcept { move_from(other); }

    InplaceFunction& operator=(InplaceFunction&& other) noexcept {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    InplaceFunction(const InplaceFunction&) = delete;
    InplaceFunction& operator=(const InplaceFunction&) = delete;

    ~InplaceFunction() { reset(); }

    void reset() noexcept {
        if (destroy_ != nullptr) {
            destroy_(storage_);
            invoke_ = nullptr;
            destroy_ = nullptr;
            relocate_ = nullptr;
        }
    }

    [[nodiscard]] bool has_value() const noexcept { return invoke_ != nullptr; }
    explicit operator bool() const noexcept { return has_value(); }

    R operator()(Args... args) {
        KADSIM_ASSERT_MSG(invoke_ != nullptr, "calling empty InplaceFunction");
        return invoke_(storage_, std::forward<Args>(args)...);
    }

private:
    void move_from(InplaceFunction& other) noexcept {
        if (other.invoke_ != nullptr) {
            other.relocate_(storage_, other.storage_);
            invoke_ = other.invoke_;
            destroy_ = other.destroy_;
            relocate_ = other.relocate_;
            other.invoke_ = nullptr;
            other.destroy_ = nullptr;
            other.relocate_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[Capacity]{};
    R (*invoke_)(void*, Args...) = nullptr;
    void (*destroy_)(void*) noexcept = nullptr;
    void (*relocate_)(void*, void*) noexcept = nullptr;
};

}  // namespace kadsim::util

#endif  // KADSIM_UTIL_INPLACE_FUNCTION_H
