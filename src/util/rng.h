// Deterministic random number generation for reproducible simulations.
//
// Design: a single master seed is split (SplitMix64) into independent
// per-component streams (xoshiro256++). Every node, churn process and traffic
// process owns its own stream, so adding instrumentation or reordering
// unrelated components never perturbs an experiment.
#ifndef KADSIM_UTIL_RNG_H
#define KADSIM_UTIL_RNG_H

#include <array>
#include <cstdint>
#include <limits>

#include "util/assert.h"

namespace kadsim::util {

/// SplitMix64: used for seeding / deriving sub-streams (Vigna's recommended
/// seeder for xoshiro family).
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256++ — fast, high-quality 64-bit PRNG. Not cryptographic; ids that
/// need hash-quality distribution go through SHA-1 (see sha1.h), mirroring the
/// paper's "cryptographically secure hash function" for identifier creation.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the four state words via SplitMix64 (never all-zero).
    explicit Rng(std::uint64_t seed) noexcept {
        SplitMix64 sm(seed);
        for (auto& word : state_) word = sm.next();
    }

    /// Derives an independent sub-stream; `salt` distinguishes siblings.
    [[nodiscard]] Rng split(std::uint64_t salt) const noexcept {
        SplitMix64 sm(state_[0] ^ (state_[3] + 0x632BE59BD9B4E019ULL * (salt + 1)));
        return Rng(sm.next());
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() noexcept { return next_u64(); }

    std::uint64_t next_u64() noexcept {
        const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform in [0, bound). bound must be > 0. Uses Lemire's rejection-free
    /// multiply-shift with rejection only in the biased band.
    std::uint64_t next_below(std::uint64_t bound) noexcept {
        KADSIM_ASSERT(bound > 0);
        while (true) {
            const std::uint64_t x = next_u64();
            const unsigned __int128 m =
                static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
            const auto low = static_cast<std::uint64_t>(m);
            if (low >= bound || low >= (0ULL - bound) % bound) {
                return static_cast<std::uint64_t>(m >> 64);
            }
        }
    }

    /// Uniform integer in the inclusive range [lo, hi].
    std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept {
        KADSIM_ASSERT(lo <= hi);
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        // span == 0 means the full 64-bit range.
        const std::uint64_t off = (span == 0) ? next_u64() : next_below(span);
        return lo + static_cast<std::int64_t>(off);
    }

    /// Uniform double in [0, 1) with 53 bits of entropy.
    double next_double() noexcept {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /// Bernoulli trial with success probability p (clamped to [0,1]).
    bool next_bool(double p) noexcept {
        if (p <= 0.0) return false;
        if (p >= 1.0) return true;
        return next_double() < p;
    }

    /// Fisher–Yates shuffle of a random-access range.
    template <typename RandomIt>
    void shuffle(RandomIt first, RandomIt last) noexcept {
        const auto n = static_cast<std::uint64_t>(last - first);
        for (std::uint64_t i = n; i > 1; --i) {
            const std::uint64_t j = next_below(i);
            using std::swap;
            swap(first[i - 1], first[j]);
        }
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

}  // namespace kadsim::util

#endif  // KADSIM_UTIL_RNG_H
