// Lightweight always-on assertions (Core Guidelines I.6/E.12: express
// preconditions and invariants; we keep them enabled in Release because the
// simulator must never silently produce wrong science).
#ifndef KADSIM_UTIL_ASSERT_H
#define KADSIM_UTIL_ASSERT_H

#include <cstdio>
#include <cstdlib>

namespace kadsim::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) noexcept {
    std::fprintf(stderr, "kadsim assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
                 line, msg != nullptr ? msg : "");
    std::abort();
}

}  // namespace kadsim::util

// The only macros in the project (Core Guidelines permit assertion macros as
// the established mechanism for capturing file/line).
#define KADSIM_ASSERT(expr)                                                          \
    (static_cast<bool>(expr)                                                         \
         ? static_cast<void>(0)                                                      \
         : ::kadsim::util::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define KADSIM_ASSERT_MSG(expr, msg)                                                 \
    (static_cast<bool>(expr)                                                         \
         ? static_cast<void>(0)                                                      \
         : ::kadsim::util::assert_fail(#expr, __FILE__, __LINE__, (msg)))

#endif  // KADSIM_UTIL_ASSERT_H
