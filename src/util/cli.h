// Tiny command-line parser for examples and benches: --key=value, --key value
// and boolean --flag forms, with typed accessors and defaults.
#ifndef KADSIM_UTIL_CLI_H
#define KADSIM_UTIL_CLI_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace kadsim::util {

class CliArgs {
public:
    CliArgs(int argc, const char* const* argv);

    [[nodiscard]] bool has(const std::string& key) const;
    [[nodiscard]] std::string get(const std::string& key, std::string def) const;
    [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t def) const;
    [[nodiscard]] double get_double(const std::string& key, double def) const;
    [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

    /// Arguments that were not --options (e.g. subcommands).
    [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
        return positional_;
    }

    [[nodiscard]] const std::string& program() const noexcept { return program_; }

private:
    std::string program_;
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
};

}  // namespace kadsim::util

#endif  // KADSIM_UTIL_CLI_H
