#include "util/env.h"

#include <cstdlib>
#include <thread>

namespace kadsim::util {

std::optional<std::string> env_string(const char* name) {
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') return std::nullopt;
    return std::string(v);
}

std::int64_t env_int(const char* name, std::int64_t def) {
    const auto s = env_string(name);
    if (!s) return def;
    try {
        return std::stoll(*s);
    } catch (const std::exception&) {
        return def;
    }
}

double env_double(const char* name, double def) {
    const auto s = env_string(name);
    if (!s) return def;
    try {
        return std::stod(*s);
    } catch (const std::exception&) {
        return def;
    }
}

ReproScale repro_scale() {
    const auto s = env_string("REPRO_SCALE");
    if (s && *s == "full") return ReproScale::kFull;
    if (s && *s == "paper") return ReproScale::kPaper;
    return ReproScale::kQuick;
}

std::uint64_t repro_seed() {
    return static_cast<std::uint64_t>(env_int("REPRO_SEED", 20170327));
}

int repro_threads() {
    const auto hw = static_cast<int>(std::thread::hardware_concurrency());
    const auto def = hw > 0 ? hw : 2;
    return static_cast<int>(env_int("REPRO_THREADS", def));
}

double repro_sample_c() { return env_double("REPRO_SAMPLE_C", 0.02); }

int repro_size_small() {
    const std::int64_t def = 250;  // paper-exact at both scales
    return static_cast<int>(env_int("REPRO_SIZE_SMALL", def));
}

int repro_size_large() {
    const std::int64_t def = repro_scale() != ReproScale::kQuick ? 2500 : 400;
    return static_cast<int>(env_int("REPRO_SIZE_LARGE", def));
}

}  // namespace kadsim::util
