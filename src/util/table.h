// Aligned ASCII tables: benches print the paper's tables (e.g. Table 2) in a
// layout directly comparable with the publication.
#ifndef KADSIM_UTIL_TABLE_H
#define KADSIM_UTIL_TABLE_H

#include <string>
#include <vector>

namespace kadsim::util {

/// Column-aligned text table with a header row and optional separators.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    void add_row(std::vector<std::string> row);
    /// Inserts a horizontal rule before the next added row.
    void add_separator();

    /// Renders with single-space-padded columns, header underline, and '|'
    /// separators.
    [[nodiscard]] std::string to_string() const;

    /// Formats a double with `digits` decimal places.
    static std::string num(double value, int digits = 2);
    static std::string num(long long value);

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace kadsim::util

#endif  // KADSIM_UTIL_TABLE_H
