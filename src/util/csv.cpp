#include "util/csv.h"

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <system_error>

namespace kadsim::util {

CsvWriter::CsvWriter(const std::string& path) : path_(path) {
    const std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    out_.open(path, std::ios::trunc);
    if (!out_) {
        throw std::runtime_error("CsvWriter: cannot open " + path);
    }
}

CsvWriter::~CsvWriter() {
    if (closed_) return;
    out_.flush();
    if (!out_) {
        // Destructors must not throw; a dropped row must still be loud.
        std::fprintf(stderr, "CsvWriter: write failed (unflushed data lost): %s\n",
                     path_.c_str());
    }
}

void CsvWriter::write_row(std::initializer_list<std::string_view> fields) {
    bool first = true;
    for (const auto f : fields) {
        if (!first) out_ << ',';
        first = false;
        write_escaped(f);
    }
    out_ << '\n';
    check_stream();
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
    bool first = true;
    for (const auto& f : fields) {
        if (!first) out_ << ',';
        first = false;
        write_escaped(f);
    }
    out_ << '\n';
    check_stream();
}

void CsvWriter::close() {
    if (closed_) return;
    out_.flush();
    out_.close();
    closed_ = true;
    if (!out_) {
        throw std::runtime_error("CsvWriter: write failed: " + path_);
    }
}

void CsvWriter::check_stream() {
    if (closed_) {
        throw std::runtime_error("CsvWriter: write after close: " + path_);
    }
    if (!out_) {
        throw std::runtime_error("CsvWriter: write failed: " + path_);
    }
}

void CsvWriter::write_escaped(std::string_view field) {
    const bool needs_quotes =
        field.find_first_of(",\"\n") != std::string_view::npos;
    if (!needs_quotes) {
        out_ << field;
        return;
    }
    out_ << '"';
    for (const char c : field) {
        if (c == '"') out_ << '"';
        out_ << c;
    }
    out_ << '"';
}

std::string CsvWriter::field(double value) {
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), value,
                                   std::chars_format::general, 10);
    return std::string(buf, res.ptr);
}

std::string CsvWriter::field(long long value) {
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), value);
    return std::string(buf, res.ptr);
}

bool ensure_directory(const std::string& path) {
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    return !ec || std::filesystem::exists(path);
}

}  // namespace kadsim::util
