// Leveled logging. Benches run with kWarn by default so hot loops stay quiet;
// examples raise to kInfo to narrate what the system does.
#ifndef KADSIM_UTIL_LOGGING_H
#define KADSIM_UTIL_LOGGING_H

#include <cstdarg>
#include <string_view>

namespace kadsim::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold (process-wide; the simulator is single-threaded and
/// analysis workers do not log).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// printf-style logging; a '\n' is appended. No-op below the threshold.
void log(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace kadsim::util

#endif  // KADSIM_UTIL_LOGGING_H
