#include "util/logging.h"

#include <cstdio>

namespace kadsim::util {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_tag(LogLevel level) noexcept {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO ";
        case LogLevel::kWarn: return "WARN ";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF  ";
    }
    return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level = level; }

LogLevel log_level() noexcept { return g_level; }

void log(LogLevel level, const char* fmt, ...) {
    if (static_cast<int>(level) < static_cast<int>(g_level) ||
        g_level == LogLevel::kOff) {
        return;
    }
    std::fprintf(stderr, "[%s] ", level_tag(level));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

}  // namespace kadsim::util
