// rng is header-only; this translation unit anchors the library target and
// provides a home for future out-of-line additions.
#include "util/rng.h"

namespace kadsim::util {

static_assert(Rng::min() == 0);
static_assert(Rng::max() == ~0ULL);

}  // namespace kadsim::util
