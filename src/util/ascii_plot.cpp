#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/assert.h"

namespace kadsim::util {

void AsciiPlot::add_series(PlotSeries series) {
    KADSIM_ASSERT(series.x.size() == series.y.size());
    series_.push_back(std::move(series));
}

void AsciiPlot::set_y_range(double lo, double hi) {
    KADSIM_ASSERT(lo < hi);
    fixed_range_ = true;
    y_lo_ = lo;
    y_hi_ = hi;
}

void AsciiPlot::set_title(std::string title) { title_ = std::move(title); }

std::string AsciiPlot::render() const {
    double x_lo = std::numeric_limits<double>::infinity();
    double x_hi = -x_lo;
    double y_lo = fixed_range_ ? y_lo_ : std::numeric_limits<double>::infinity();
    double y_hi = fixed_range_ ? y_hi_ : -std::numeric_limits<double>::infinity();
    for (const auto& s : series_) {
        for (std::size_t i = 0; i < s.x.size(); ++i) {
            x_lo = std::min(x_lo, s.x[i]);
            x_hi = std::max(x_hi, s.x[i]);
            if (!fixed_range_) {
                y_lo = std::min(y_lo, s.y[i]);
                y_hi = std::max(y_hi, s.y[i]);
            }
        }
    }
    if (!std::isfinite(x_lo) || !std::isfinite(y_lo)) return "(no data)\n";
    if (x_hi <= x_lo) x_hi = x_lo + 1.0;
    if (y_hi <= y_lo) y_hi = y_lo + 1.0;

    std::vector<std::string> canvas(static_cast<std::size_t>(height_),
                                    std::string(static_cast<std::size_t>(width_), ' '));
    for (const auto& s : series_) {
        for (std::size_t i = 0; i < s.x.size(); ++i) {
            const double xf = (s.x[i] - x_lo) / (x_hi - x_lo);
            double yf = (s.y[i] - y_lo) / (y_hi - y_lo);
            yf = std::clamp(yf, 0.0, 1.0);
            const int col = std::min(width_ - 1, static_cast<int>(xf * (width_ - 1) + 0.5));
            const int row =
                (height_ - 1) - std::min(height_ - 1, static_cast<int>(yf * (height_ - 1) + 0.5));
            canvas[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = s.glyph;
        }
    }

    std::string out;
    if (!title_.empty()) out += title_ + "\n";
    char label[32];
    for (int r = 0; r < height_; ++r) {
        const double yv = y_hi - (y_hi - y_lo) * r / (height_ - 1);
        std::snprintf(label, sizeof(label), "%8.1f |", yv);
        out += label;
        out += canvas[static_cast<std::size_t>(r)];
        out += '\n';
    }
    out += std::string(9, ' ') + '+' + std::string(static_cast<std::size_t>(width_), '-') + '\n';
    std::snprintf(label, sizeof(label), "%-10.0f", x_lo);
    out += std::string(10, ' ') + label;
    std::snprintf(label, sizeof(label), "%10.0f", x_hi);
    out += std::string(static_cast<std::size_t>(std::max(0, width_ - 30)), ' ');
    out += label;
    out += "  (x)\n";
    out += "  legend:";
    for (const auto& s : series_) {
        out += " [";
        out += s.glyph;
        out += "] " + s.name;
    }
    out += '\n';
    return out;
}

}  // namespace kadsim::util
