// Minimal CSV writer used by every bench to dump figure/table series so the
// plots can be regenerated outside the terminal.
#ifndef KADSIM_UTIL_CSV_H
#define KADSIM_UTIL_CSV_H

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace kadsim::util {

/// Writes rows of comma-separated values; fields containing commas/quotes are
/// quoted per RFC 4180.
///
/// I/O errors are loud: write_row throws as soon as the stream goes bad (full
/// disk, revoked permissions), and close() flushes and verifies the final
/// state — callers that care about the file reaching disk must call it (the
/// destructor only best-efforts a flush and reports failures on stderr,
/// since destructors must not throw).
class CsvWriter {
public:
    /// Opens (truncates) `path`; throws std::runtime_error on failure.
    explicit CsvWriter(const std::string& path);

    ~CsvWriter();

    /// Both overloads throw std::runtime_error if the stream failed — rows
    /// are never silently dropped.
    void write_row(std::initializer_list<std::string_view> fields);
    void write_row(const std::vector<std::string>& fields);

    /// Flushes and closes; throws std::runtime_error if any buffered byte
    /// failed to reach the file. Idempotent.
    void close();

    /// Convenience: formats doubles with enough digits to round-trip.
    static std::string field(double value);
    static std::string field(long long value);

    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    void write_escaped(std::string_view field);
    void check_stream();

    std::ofstream out_;
    std::string path_;
    bool closed_ = false;
};

/// Creates the directory (and parents) if missing. Returns true on success.
bool ensure_directory(const std::string& path);

}  // namespace kadsim::util

#endif  // KADSIM_UTIL_CSV_H
