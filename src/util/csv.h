// Minimal CSV writer used by every bench to dump figure/table series so the
// plots can be regenerated outside the terminal.
#ifndef KADSIM_UTIL_CSV_H
#define KADSIM_UTIL_CSV_H

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace kadsim::util {

/// Writes rows of comma-separated values; fields containing commas/quotes are
/// quoted per RFC 4180.
class CsvWriter {
public:
    /// Opens (truncates) `path`; throws std::runtime_error on failure.
    explicit CsvWriter(const std::string& path);

    void write_row(std::initializer_list<std::string_view> fields);
    void write_row(const std::vector<std::string>& fields);

    /// Convenience: formats doubles with enough digits to round-trip.
    static std::string field(double value);
    static std::string field(long long value);

    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    void write_escaped(std::string_view field);

    std::ofstream out_;
    std::string path_;
};

/// Creates the directory (and parents) if missing. Returns true on success.
bool ensure_directory(const std::string& path);

}  // namespace kadsim::util

#endif  // KADSIM_UTIL_CSV_H
