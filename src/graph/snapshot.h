// Routing-table snapshots (paper §5.2): "we interrupt the simulation and save
// the current contents of the routing tables of all network nodes ... into a
// snapshot file. We use this snapshot file to transform the connectivity
// graph with Even's algorithm."
#ifndef KADSIM_GRAPH_SNAPSHOT_H
#define KADSIM_GRAPH_SNAPSHOT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "stats/histogram.h"

namespace kadsim::graph {

/// One node's view: its address and the addresses in its routing table.
struct SnapshotNode {
    std::uint32_t address = 0;
    std::vector<std::uint32_t> contacts;
};

/// The routing state of every *live* node at one instant of simulated time.
struct RoutingSnapshot {
    std::int64_t time_ms = 0;
    /// Cumulative nodes removed by the fault layer when this snapshot was
    /// taken (scen::Runner fills it; not part of the save()/parse() format).
    std::uint64_t removed_total = 0;
    /// Lookup workload metrics for the interval since the previous snapshot
    /// (measured lookups completed by live traffic / refresh), and the
    /// side-effect-free probe results taken at this instant. Like
    /// removed_total these are Runner-filled companions, not part of the
    /// save()/parse() format.
    stats::LookupTraffic lookups;
    stats::ProbeStats probes;
    std::vector<SnapshotNode> nodes;

    /// Compacts addresses to [0, n) and keeps only edges between live nodes:
    /// stale routing-table entries pointing at departed nodes are not part of
    /// the connectivity graph (its vertices are the network's nodes, §4.2).
    [[nodiscard]] Digraph to_digraph() const;

    [[nodiscard]] std::size_t node_count() const noexcept { return nodes.size(); }

    /// Plain-text serialization (one node per line: address: c1 c2 ...);
    /// round-trips through parse().
    void save(std::ostream& out) const;
    [[nodiscard]] static RoutingSnapshot parse(std::istream& in);
};

}  // namespace kadsim::graph

#endif  // KADSIM_GRAPH_SNAPSHOT_H
