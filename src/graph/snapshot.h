// Routing-table snapshots (paper §5.2): "we interrupt the simulation and save
// the current contents of the routing tables of all network nodes ... into a
// snapshot file. We use this snapshot file to transform the connectivity
// graph with Even's algorithm."
//
// Storage is a FlatSnapshot CSR slab (addresses / offsets / contacts — see
// graph/flat_snapshot.h); RoutingSnapshot is a thin façade over it so the
// analyzer, fault models, cache CSV and save/parse callers keep their
// node-list view while capture and graph building run allocation-free on the
// flat arrays.
#ifndef KADSIM_GRAPH_SNAPSHOT_H
#define KADSIM_GRAPH_SNAPSHOT_H

#include <cstdint>
#include <iosfwd>
#include <iterator>
#include <vector>

#include "graph/digraph.h"
#include "graph/flat_snapshot.h"
#include "stats/histogram.h"

namespace kadsim::graph {

/// One node's view, as an owning value: its address and the addresses in its
/// routing table. Construction convenience for tests and hand-built
/// snapshots — stored snapshots keep rows in the flat CSR slab and hand out
/// SnapshotNodeView spans instead.
struct SnapshotNode {
    std::uint32_t address = 0;
    std::vector<std::uint32_t> contacts;
};

/// Node-list façade over a FlatSnapshot: vector-like append/size/iterate,
/// with element access returning by-value SnapshotNodeView proxies (range-for
/// with `const auto&` binds to them as usual; the contact spans stay valid
/// until the snapshot is mutated).
class SnapshotNodeList {
public:
    class const_iterator {
    public:
        using value_type = SnapshotNodeView;
        using difference_type = std::ptrdiff_t;
        using iterator_category = std::forward_iterator_tag;

        const_iterator() = default;
        const_iterator(const FlatSnapshot* flat, std::size_t index)
            : flat_(flat), index_(index) {}

        [[nodiscard]] SnapshotNodeView operator*() const { return flat_->node(index_); }
        const_iterator& operator++() {
            ++index_;
            return *this;
        }
        const_iterator operator++(int) {
            const_iterator copy = *this;
            ++index_;
            return copy;
        }
        [[nodiscard]] bool operator==(const const_iterator&) const = default;

    private:
        const FlatSnapshot* flat_ = nullptr;
        std::size_t index_ = 0;
    };

    [[nodiscard]] std::size_t size() const noexcept { return flat_.node_count(); }
    [[nodiscard]] bool empty() const noexcept { return flat_.node_count() == 0; }

    [[nodiscard]] SnapshotNodeView operator[](std::size_t i) const noexcept {
        return flat_.node(i);
    }

    [[nodiscard]] const_iterator begin() const noexcept { return {&flat_, 0}; }
    [[nodiscard]] const_iterator end() const noexcept { return {&flat_, size()}; }

    void reserve(std::size_t nodes) { flat_.reserve(nodes); }
    void clear() noexcept { flat_.clear(); }

    /// Appends one node's row to the slab (append-only: rows cannot be
    /// reopened once the next node is pushed).
    void push_back(const SnapshotNode& node) {
        flat_.push_node(node.address);
        for (const std::uint32_t contact : node.contacts) flat_.push_contact(contact);
    }

    [[nodiscard]] FlatSnapshot& flat() noexcept { return flat_; }
    [[nodiscard]] const FlatSnapshot& flat() const noexcept { return flat_; }

private:
    FlatSnapshot flat_;
};

/// The routing state of every *live* node at one instant of simulated time.
struct RoutingSnapshot {
    std::int64_t time_ms = 0;
    /// Cumulative nodes removed by the fault layer when this snapshot was
    /// taken (scen::Runner fills it; not part of the save()/parse() format).
    std::uint64_t removed_total = 0;
    /// Lookup workload metrics for the interval since the previous snapshot
    /// (measured lookups completed by live traffic / refresh), and the
    /// side-effect-free probe results taken at this instant. Like
    /// removed_total these are Runner-filled companions, not part of the
    /// save()/parse() format.
    stats::LookupTraffic lookups;
    stats::ProbeStats probes;
    SnapshotNodeList nodes;

    /// Compacts addresses to [0, n) and keeps only edges between live nodes:
    /// stale routing-table entries pointing at departed nodes are not part of
    /// the connectivity graph (its vertices are the network's nodes, §4.2).
    /// With `pool`, rows compact concurrently — byte-identical to the inline
    /// build for any thread count.
    [[nodiscard]] Digraph to_digraph(exec::ThreadPool* pool = nullptr) const {
        return nodes.flat().to_digraph(pool);
    }

    [[nodiscard]] std::size_t node_count() const noexcept { return nodes.size(); }

    [[nodiscard]] FlatSnapshot& flat() noexcept { return nodes.flat(); }
    [[nodiscard]] const FlatSnapshot& flat() const noexcept { return nodes.flat(); }

    /// Plain-text serialization (one node per line: address: c1 c2 ...);
    /// round-trips through parse().
    void save(std::ostream& out) const;

    /// Binary serialization (FlatSnapshot::save_binary layout); round-trips
    /// through parse(), which auto-detects the format. Open the stream in
    /// std::ios::binary mode.
    void save_binary(std::ostream& out) const;

    /// Parses either format, auto-detected from the first byte ('K' opens
    /// the binary magic; text lines start with '#', 't', 'n' or a digit).
    /// Text parsing is std::from_chars end to end and rejects malformed
    /// lines; neither format carries the Runner-filled companions.
    [[nodiscard]] static RoutingSnapshot parse(std::istream& in);
};

}  // namespace kadsim::graph

#endif  // KADSIM_GRAPH_SNAPSHOT_H
