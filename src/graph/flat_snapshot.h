// Flat routing-snapshot storage: every live node's address plus the raw
// contents of its routing table, held as one CSR slab (offsets/contacts)
// instead of one heap vector per node. This is the §5.2 capture path at
// million-node scale — Runner::capture() fills the three arrays in place
// (zero per-node allocation at steady state), and to_digraph() compacts the
// raw slab into the analysis-ready graph::Digraph with a dense address→index
// translation and a per-row counting compaction, optionally fanned out over
// an exec::ThreadPool (byte-identical for any thread count).
//
// Contacts are stored exactly as the routing tables hold them: they may
// reference departed nodes and (for parsed files) the owner itself or
// duplicates — to_digraph() drops/dedupes them, reproducing the legacy
// hash-remap path bit for bit.
#ifndef KADSIM_GRAPH_FLAT_SNAPSHOT_H
#define KADSIM_GRAPH_FLAT_SNAPSHOT_H

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "graph/digraph.h"
#include "util/assert.h"

namespace kadsim::exec {
class ThreadPool;
}

namespace kadsim::graph {

/// By-value view of one node's slice of a FlatSnapshot: the address and a
/// span over its stored contacts. The span points into the snapshot's
/// contact slab and stays valid until the snapshot is mutated or destroyed —
/// cheap to copy, safe to hold across loop iterations (unlike a pointer to a
/// loop-local proxy).
struct SnapshotNodeView {
    std::uint32_t address = 0;
    std::span<const std::uint32_t> contacts;
};

class FlatSnapshot {
public:
    /// Invariant: offsets.size() == addresses.size() + 1 whenever any node
    /// exists (offsets[0] = 0, offsets[i+1] - offsets[i] = node i's contact
    /// count); a default-constructed snapshot holds three empty arrays.

    [[nodiscard]] std::size_t node_count() const noexcept { return addresses_.size(); }
    [[nodiscard]] std::size_t contact_count() const noexcept { return contacts_.size(); }

    [[nodiscard]] SnapshotNodeView node(std::size_t i) const noexcept {
        return {addresses_[i], contacts_of(i)};
    }

    [[nodiscard]] std::span<const std::uint32_t> contacts_of(std::size_t i) const noexcept {
        return {contacts_.data() + offsets_[i],
                static_cast<std::size_t>(offsets_[i + 1] - offsets_[i])};
    }

    [[nodiscard]] std::uint32_t address_of(std::size_t i) const noexcept {
        return addresses_[i];
    }

    /// Drops every node but keeps the array capacities — the reuse contract
    /// behind zero-allocation steady-state capture.
    void clear() noexcept {
        addresses_.clear();
        offsets_.clear();
        contacts_.clear();
    }

    void reserve(std::size_t nodes) {
        addresses_.reserve(nodes);
        offsets_.reserve(nodes + 1);
    }

    /// Append-only build API (parse path, tests): opens a new row.
    void push_node(std::uint32_t address) {
        if (offsets_.empty()) offsets_.push_back(0);
        addresses_.push_back(address);
        offsets_.push_back(static_cast<std::uint32_t>(contacts_.size()));
    }

    /// Appends one contact to the row opened by the last push_node.
    void push_contact(std::uint32_t contact) {
        KADSIM_ASSERT(!addresses_.empty());
        contacts_.push_back(contact);
        offsets_.back() = static_cast<std::uint32_t>(contacts_.size());
    }

    /// Bulk-capture sizing: resizes the three arrays for `nodes` rows holding
    /// `total_contacts` entries and seals offsets[n]. Regions then fill
    /// disjoint slices through the mutable accessors below; existing capacity
    /// is reused, so a warm buffer resizes without touching the heap.
    void prepare(std::size_t nodes, std::size_t total_contacts) {
        KADSIM_ASSERT(total_contacts <= 0xFFFFFFFFull);
        addresses_.resize(nodes);
        offsets_.resize(nodes + 1);
        contacts_.resize(total_contacts);
        offsets_[nodes] = static_cast<std::uint32_t>(total_contacts);
    }

    [[nodiscard]] std::uint32_t* addresses_data() noexcept { return addresses_.data(); }
    [[nodiscard]] std::uint32_t* offsets_data() noexcept { return offsets_.data(); }
    [[nodiscard]] std::uint32_t* contacts_data() noexcept { return contacts_.data(); }

    [[nodiscard]] std::span<const std::uint32_t> addresses() const noexcept {
        return addresses_;
    }
    [[nodiscard]] std::span<const std::uint32_t> offsets() const noexcept {
        return offsets_;
    }
    [[nodiscard]] std::span<const std::uint32_t> contacts() const noexcept {
        return contacts_;
    }

    /// Compacts the raw slab into the connectivity graph (vertex i ⇔ row i):
    /// dense address→index translation over [0, max live address], contacts
    /// pointing at departed nodes or the owner dropped, rows sorted and
    /// deduplicated — bit-identical to the legacy unordered_map remap.
    /// With `pool`, rows are compacted in fixed-size chunks across the
    /// workers; every byte of the result is independent of the thread count.
    /// Translation and compaction scratch is thread_local and reused across
    /// calls from the same thread.
    [[nodiscard]] Digraph to_digraph(exec::ThreadPool* pool = nullptr) const;

    /// Versioned little-endian binary serialization: header (magic "KSNP",
    /// u32 version, i64 time_ms, u64 n, u64 m) followed by the three bulk
    /// arrays (u32 addresses[n], u32 offsets[n+1], u32 contacts[m]).
    /// Round-trips through load_binary; open streams in std::ios::binary.
    void save_binary(std::ostream& out, std::int64_t time_ms) const;

    /// Replaces this snapshot's contents from a binary stream positioned at
    /// the magic; returns the stored time_ms. Throws std::runtime_error —
    /// with the failing field and absolute byte position — on a bad magic,
    /// unsupported version, impossible counts, inconsistent offsets, or a
    /// truncated stream. On throw *this is left untouched (never partially
    /// filled), and allocation is bounded by the actual stream contents, so
    /// a corrupt header cannot trigger a multi-gigabyte resize.
    std::int64_t load_binary(std::istream& in);

    /// Capacity-based resident footprint (bench counters).
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return (addresses_.capacity() + offsets_.capacity() + contacts_.capacity()) *
               sizeof(std::uint32_t);
    }

    [[nodiscard]] bool operator==(const FlatSnapshot& other) const noexcept {
        return addresses_ == other.addresses_ && offsets_ == other.offsets_ &&
               contacts_ == other.contacts_;
    }

private:
    std::vector<std::uint32_t> addresses_;  ///< n live nodes, region-merged order
    std::vector<std::uint32_t> offsets_;    ///< n+1 row offsets (empty when n = 0)
    std::vector<std::uint32_t> contacts_;   ///< raw stored contacts, row-major
};

}  // namespace kadsim::graph

#endif  // KADSIM_GRAPH_FLAT_SNAPSHOT_H
