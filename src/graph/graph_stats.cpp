#include "graph/graph_stats.h"

#include <algorithm>
#include <numeric>

#include "stats/histogram.h"

namespace kadsim::graph {

DegreeSummary summarize_degrees(std::vector<int> degrees, bool exact_sort) {
    DegreeSummary s;
    if (degrees.empty()) return s;
    s.mean = static_cast<double>(
                 std::accumulate(degrees.begin(), degrees.end(), std::int64_t{0})) /
             static_cast<double>(degrees.size());
    if (exact_sort) {
        std::sort(degrees.begin(), degrees.end());
        s.min = degrees.front();
        s.max = degrees.back();
        s.median = degrees[degrees.size() / 2];
        s.p10 = degrees[degrees.size() / 10];
        return s;
    }
    // Counting path: value_at_index(i) == std::sort(degrees)[i] exactly
    // (degrees are non-negative), so both paths report identical numbers.
    stats::CountHistogram hist;
    for (const int d : degrees) hist.add(d);
    s.min = static_cast<int>(hist.min());
    s.max = static_cast<int>(hist.max());
    s.median = static_cast<int>(hist.value_at_index(degrees.size() / 2));
    s.p10 = static_cast<int>(hist.value_at_index(degrees.size() / 10));
    return s;
}

DegreeSummary out_degree_summary(const Digraph& g) {
    std::vector<int> degrees;
    degrees.reserve(static_cast<std::size_t>(g.vertex_count()));
    for (int v = 0; v < g.vertex_count(); ++v) degrees.push_back(g.out_degree(v));
    return summarize_degrees(std::move(degrees));
}

DegreeSummary in_degree_summary(const Digraph& g) {
    return summarize_degrees(g.in_degrees());
}

std::vector<int> degree_histogram(const std::vector<int>& degrees, int buckets) {
    std::vector<int> counts(static_cast<std::size_t>(std::max(1, buckets)), 0);
    if (degrees.empty()) return counts;
    const int max_degree = *std::max_element(degrees.begin(), degrees.end());
    const double width =
        (max_degree + 1) / static_cast<double>(counts.size());
    for (const int d : degrees) {
        auto bucket = static_cast<std::size_t>(d / std::max(1.0, width));
        bucket = std::min(bucket, counts.size() - 1);
        ++counts[bucket];
    }
    return counts;
}

std::string render_histogram(const std::vector<int>& counts) {
    static constexpr char kLevels[] = " .:-=+*#%@";
    const int max_count = counts.empty()
                              ? 0
                              : *std::max_element(counts.begin(), counts.end());
    std::string out = "[";
    for (const int c : counts) {
        if (max_count == 0) {
            out += ' ';
            continue;
        }
        const auto level = static_cast<std::size_t>(
            (static_cast<double>(c) / max_count) * (sizeof(kLevels) - 2));
        out += kLevels[level];
    }
    out += "]";
    return out;
}

}  // namespace kadsim::graph
