#include "graph/digraph.h"

#include <algorithm>

namespace kadsim::graph {

Digraph::Digraph(int n) : n_(n), adj_(static_cast<std::size_t>(n)) {
    KADSIM_ASSERT(n >= 0);
}

void Digraph::add_edge(int u, int v) {
    KADSIM_ASSERT(!finalized_);
    KADSIM_ASSERT(u >= 0 && u < n_ && v >= 0 && v < n_);
    KADSIM_ASSERT_MSG(u != v, "connectivity graphs have no self-loops");
    adj_[static_cast<std::size_t>(u)].push_back(v);
}

void Digraph::finalize() {
    KADSIM_ASSERT(!finalized_);
    m_ = 0;
    for (auto& list : adj_) {
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
        m_ += static_cast<std::int64_t>(list.size());
    }
    finalized_ = true;
}

bool Digraph::has_edge(int u, int v) const {
    KADSIM_ASSERT(finalized_);
    const auto& list = adj_[static_cast<std::size_t>(u)];
    return std::binary_search(list.begin(), list.end(), v);
}

std::vector<int> Digraph::in_degrees() const {
    KADSIM_ASSERT(finalized_);
    std::vector<int> degrees(static_cast<std::size_t>(n_), 0);
    for (const auto& list : adj_) {
        for (const int v : list) ++degrees[static_cast<std::size_t>(v)];
    }
    return degrees;
}

double Digraph::reciprocity() const {
    KADSIM_ASSERT(finalized_);
    if (m_ == 0) return 1.0;
    std::int64_t reciprocated = 0;
    for (int u = 0; u < n_; ++u) {
        for (const int v : adj_[static_cast<std::size_t>(u)]) {
            if (has_edge(v, u)) ++reciprocated;
        }
    }
    return static_cast<double>(reciprocated) / static_cast<double>(m_);
}

Digraph Digraph::reversed() const {
    KADSIM_ASSERT(finalized_);
    Digraph r(n_);
    for (int u = 0; u < n_; ++u) {
        for (const int v : adj_[static_cast<std::size_t>(u)]) r.add_edge(v, u);
    }
    r.finalize();
    return r;
}

int strongly_connected_components(const Digraph& g, std::vector<int>* component_ids) {
    const int n = g.vertex_count();
    std::vector<int> index(static_cast<std::size_t>(n), -1);
    std::vector<int> lowlink(static_cast<std::size_t>(n), 0);
    std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
    std::vector<int> stack;
    std::vector<int> components(static_cast<std::size_t>(n), -1);
    int next_index = 0;
    int component_count = 0;

    // Explicit DFS stack: (vertex, next-child-position).
    struct Frame {
        int v;
        std::size_t child;
    };
    std::vector<Frame> dfs;

    for (int root = 0; root < n; ++root) {
        if (index[static_cast<std::size_t>(root)] != -1) continue;
        dfs.push_back(Frame{root, 0});
        index[static_cast<std::size_t>(root)] = lowlink[static_cast<std::size_t>(root)] =
            next_index++;
        stack.push_back(root);
        on_stack[static_cast<std::size_t>(root)] = true;

        while (!dfs.empty()) {
            Frame& frame = dfs.back();
            const auto vs = static_cast<std::size_t>(frame.v);
            const auto out = g.out(frame.v);
            if (frame.child < out.size()) {
                const int w = out[frame.child++];
                const auto ws = static_cast<std::size_t>(w);
                if (index[ws] == -1) {
                    index[ws] = lowlink[ws] = next_index++;
                    stack.push_back(w);
                    on_stack[ws] = true;
                    dfs.push_back(Frame{w, 0});
                } else if (on_stack[ws]) {
                    lowlink[vs] = std::min(lowlink[vs], index[ws]);
                }
            } else {
                if (lowlink[vs] == index[vs]) {
                    while (true) {
                        const int w = stack.back();
                        stack.pop_back();
                        on_stack[static_cast<std::size_t>(w)] = false;
                        components[static_cast<std::size_t>(w)] = component_count;
                        if (w == frame.v) break;
                    }
                    ++component_count;
                }
                dfs.pop_back();
                if (!dfs.empty()) {
                    const auto ps = static_cast<std::size_t>(dfs.back().v);
                    lowlink[ps] = std::min(lowlink[ps], lowlink[vs]);
                }
            }
        }
    }
    if (component_ids != nullptr) *component_ids = std::move(components);
    return component_count;
}

}  // namespace kadsim::graph
