#include "graph/digraph.h"

#include <algorithm>

namespace kadsim::graph {

Digraph::Digraph(int n) : n_(n) { KADSIM_ASSERT(n >= 0); }

void Digraph::add_edge(int u, int v) {
    KADSIM_ASSERT(!finalized_);
    KADSIM_ASSERT(u >= 0 && u < n_ && v >= 0 && v < n_);
    KADSIM_ASSERT_MSG(u != v, "connectivity graphs have no self-loops");
    build_edges_.emplace_back(u, v);
}

void Digraph::finalize() {
    KADSIM_ASSERT(!finalized_);
    std::sort(build_edges_.begin(), build_edges_.end());
    build_edges_.erase(std::unique(build_edges_.begin(), build_edges_.end()),
                       build_edges_.end());

    offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
    targets_.resize(build_edges_.size());
    for (std::size_t i = 0; i < build_edges_.size(); ++i) {
        targets_[i] = build_edges_[i].second;
        ++offsets_[static_cast<std::size_t>(build_edges_[i].first) + 1];
    }
    for (int u = 0; u < n_; ++u) {
        offsets_[static_cast<std::size_t>(u) + 1] +=
            offsets_[static_cast<std::size_t>(u)];
    }
    build_edges_.clear();
    build_edges_.shrink_to_fit();
    finalized_ = true;
}

Digraph Digraph::from_csr(int n, std::vector<std::int64_t> offsets,
                          std::vector<int> targets) {
    Digraph g(n);
    KADSIM_ASSERT(offsets.size() == static_cast<std::size_t>(n) + 1);
    KADSIM_ASSERT(offsets.front() == 0 &&
                  offsets.back() == static_cast<std::int64_t>(targets.size()));
#ifndef NDEBUG
    for (int u = 0; u < n; ++u) {
        for (std::int64_t p = offsets[static_cast<std::size_t>(u)];
             p < offsets[static_cast<std::size_t>(u) + 1]; ++p) {
            const int v = targets[static_cast<std::size_t>(p)];
            KADSIM_ASSERT(v >= 0 && v < n && v != u);
            KADSIM_ASSERT(p == offsets[static_cast<std::size_t>(u)] ||
                          targets[static_cast<std::size_t>(p) - 1] < v);
        }
    }
#endif
    g.offsets_ = std::move(offsets);
    g.targets_ = std::move(targets);
    g.finalized_ = true;
    return g;
}

bool Digraph::has_edge(int u, int v) const {
    const auto row = out(u);
    return std::binary_search(row.begin(), row.end(), v);
}

std::vector<int> Digraph::in_degrees() const {
    KADSIM_ASSERT(finalized_);
    std::vector<int> degrees(static_cast<std::size_t>(n_), 0);
    for (const int v : targets_) ++degrees[static_cast<std::size_t>(v)];
    return degrees;
}

double Digraph::reciprocity() const {
    KADSIM_ASSERT(finalized_);
    if (targets_.empty()) return 1.0;
    std::int64_t reciprocated = 0;
    for (int u = 0; u < n_; ++u) {
        for (const int v : out(u)) {
            if (has_edge(v, u)) ++reciprocated;
        }
    }
    return static_cast<double>(reciprocated) / static_cast<double>(targets_.size());
}

Digraph Digraph::reversed() const {
    KADSIM_ASSERT(finalized_);
    Digraph r(n_);
    // Counting pass straight into the reversed CSR arrays: row v of the
    // result collects the sources of v's in-edges, which arrive in ascending
    // u order, so every row comes out sorted (and is duplicate-free because
    // this graph is).
    r.offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
    for (const int v : targets_) ++r.offsets_[static_cast<std::size_t>(v) + 1];
    for (int v = 0; v < n_; ++v) {
        r.offsets_[static_cast<std::size_t>(v) + 1] +=
            r.offsets_[static_cast<std::size_t>(v)];
    }
    r.targets_.resize(targets_.size());
    std::vector<std::int64_t> cursor(r.offsets_.begin(), r.offsets_.end() - 1);
    for (int u = 0; u < n_; ++u) {
        for (const int v : out(u)) {
            r.targets_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] =
                u;
        }
    }
    r.finalized_ = true;
    return r;
}

int strongly_connected_components(const Digraph& g, std::vector<int>* component_ids) {
    const int n = g.vertex_count();
    std::vector<int> index(static_cast<std::size_t>(n), -1);
    std::vector<int> lowlink(static_cast<std::size_t>(n), 0);
    std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
    std::vector<int> stack;
    std::vector<int> components(static_cast<std::size_t>(n), -1);
    int next_index = 0;
    int component_count = 0;

    // Explicit DFS stack: (vertex, next-child-position).
    struct Frame {
        int v;
        std::size_t child;
    };
    std::vector<Frame> dfs;

    for (int root = 0; root < n; ++root) {
        if (index[static_cast<std::size_t>(root)] != -1) continue;
        dfs.push_back(Frame{root, 0});
        index[static_cast<std::size_t>(root)] = lowlink[static_cast<std::size_t>(root)] =
            next_index++;
        stack.push_back(root);
        on_stack[static_cast<std::size_t>(root)] = true;

        while (!dfs.empty()) {
            Frame& frame = dfs.back();
            const auto vs = static_cast<std::size_t>(frame.v);
            const auto out = g.out(frame.v);
            if (frame.child < out.size()) {
                const int w = out[frame.child++];
                const auto ws = static_cast<std::size_t>(w);
                if (index[ws] == -1) {
                    index[ws] = lowlink[ws] = next_index++;
                    stack.push_back(w);
                    on_stack[ws] = true;
                    dfs.push_back(Frame{w, 0});
                } else if (on_stack[ws]) {
                    lowlink[vs] = std::min(lowlink[vs], index[ws]);
                }
            } else {
                if (lowlink[vs] == index[vs]) {
                    while (true) {
                        const int w = stack.back();
                        stack.pop_back();
                        on_stack[static_cast<std::size_t>(w)] = false;
                        components[static_cast<std::size_t>(w)] = component_count;
                        if (w == frame.v) break;
                    }
                    ++component_count;
                }
                dfs.pop_back();
                if (!dfs.empty()) {
                    const auto ps = static_cast<std::size_t>(dfs.back().v);
                    lowlink[ps] = std::min(lowlink[ps], lowlink[vs]);
                }
            }
        }
    }
    if (component_ids != nullptr) *component_ids = std::move(components);
    return component_count;
}

}  // namespace kadsim::graph
