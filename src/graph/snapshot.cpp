#include "graph/snapshot.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace kadsim::graph {

Digraph RoutingSnapshot::to_digraph() const {
    std::unordered_map<std::uint32_t, int> index;
    index.reserve(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        index.emplace(nodes[i].address, static_cast<int>(i));
    }
    Digraph g(static_cast<int>(nodes.size()));
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        for (const std::uint32_t contact : nodes[i].contacts) {
            const auto it = index.find(contact);
            if (it == index.end()) continue;  // contact left the network
            if (it->second == static_cast<int>(i)) continue;
            g.add_edge(static_cast<int>(i), it->second);
        }
    }
    g.finalize();
    return g;
}

void RoutingSnapshot::save(std::ostream& out) const {
    out << "# kadsim routing snapshot\n";
    out << "t " << time_ms << '\n';
    out << "n " << nodes.size() << '\n';
    for (const auto& node : nodes) {
        out << node.address << ':';
        for (const auto c : node.contacts) out << ' ' << c;
        out << '\n';
    }
}

RoutingSnapshot RoutingSnapshot::parse(std::istream& in) {
    RoutingSnapshot snapshot;
    std::string line;
    std::size_t expected = 0;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        if (line[0] == 't' && line.size() > 1 && line[1] == ' ') {
            snapshot.time_ms = std::stoll(line.substr(2));
            continue;
        }
        if (line[0] == 'n' && line.size() > 1 && line[1] == ' ') {
            expected = static_cast<std::size_t>(std::stoull(line.substr(2)));
            snapshot.nodes.reserve(expected);
            continue;
        }
        const auto colon = line.find(':');
        if (colon == std::string::npos) {
            throw std::runtime_error("RoutingSnapshot::parse: malformed line: " + line);
        }
        SnapshotNode node;
        node.address = static_cast<std::uint32_t>(std::stoul(line.substr(0, colon)));
        std::istringstream rest(line.substr(colon + 1));
        std::uint32_t contact = 0;
        while (rest >> contact) node.contacts.push_back(contact);
        snapshot.nodes.push_back(std::move(node));
    }
    if (expected != 0 && expected != snapshot.nodes.size()) {
        throw std::runtime_error("RoutingSnapshot::parse: node count mismatch");
    }
    return snapshot;
}

}  // namespace kadsim::graph
