#include "graph/snapshot.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <system_error>

namespace kadsim::graph {

namespace {

[[noreturn]] void malformed(std::string_view line) {
    throw std::runtime_error("RoutingSnapshot::parse: malformed line: " +
                             std::string(line));
}

/// One integer off the front of `s` (std::from_chars — no allocation, no
/// locale); on success the consumed prefix is removed.
template <typename T>
bool parse_number(std::string_view& s, T& value) {
    const char* const begin = s.data();
    const char* const end = begin + s.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{}) return false;
    s.remove_prefix(static_cast<std::size_t>(ptr - begin));
    return true;
}

/// Header line `<key> <integer>` (the "t"/"n" lines); the whole remainder
/// must be the number.
template <typename T>
T parse_header_value(std::string_view line) {
    std::string_view rest = line.substr(2);
    T value{};
    if (!parse_number(rest, value) || !rest.empty()) malformed(line);
    return value;
}

/// One `address: c1 c2 ...` row appended to `flat`. Strict: anything other
/// than space-separated integers after the colon rejects the line (the
/// legacy istringstream parser silently stopped at the first garbage token).
void parse_row(std::string_view line, FlatSnapshot& flat) {
    std::string_view rest = line;
    std::uint32_t address = 0;
    if (!parse_number(rest, address) || rest.empty() || rest.front() != ':') {
        malformed(line);
    }
    rest.remove_prefix(1);
    flat.push_node(address);
    while (!rest.empty()) {
        if (rest.front() != ' ') malformed(line);
        rest.remove_prefix(1);
        if (rest.empty()) break;  // tolerate a trailing space
        std::uint32_t contact = 0;
        if (!parse_number(rest, contact)) malformed(line);
        flat.push_contact(contact);
    }
}

}  // namespace

void RoutingSnapshot::save(std::ostream& out) const {
    out << "# kadsim routing snapshot\n";
    out << "t " << time_ms << '\n';
    out << "n " << nodes.size() << '\n';
    for (const auto& node : nodes) {
        out << node.address << ':';
        for (const auto c : node.contacts) out << ' ' << c;
        out << '\n';
    }
}

void RoutingSnapshot::save_binary(std::ostream& out) const {
    nodes.flat().save_binary(out, time_ms);
}

RoutingSnapshot RoutingSnapshot::parse(std::istream& in) {
    RoutingSnapshot snapshot;
    // Format auto-detection: the binary magic starts with 'K', which no text
    // snapshot line can (text lines open with '#', 't', 'n' or a digit).
    if (in.peek() == 'K') {
        snapshot.time_ms = snapshot.flat().load_binary(in);
        return snapshot;
    }
    std::string line;
    std::size_t expected = 0;
    while (std::getline(in, line)) {
        const std::string_view view(line);
        if (view.empty() || view[0] == '#') continue;
        if (view[0] == 't' && view.size() > 1 && view[1] == ' ') {
            snapshot.time_ms = parse_header_value<std::int64_t>(view);
            continue;
        }
        if (view[0] == 'n' && view.size() > 1 && view[1] == ' ') {
            expected = parse_header_value<std::uint64_t>(view);
            snapshot.nodes.reserve(expected);
            continue;
        }
        parse_row(view, snapshot.flat());
    }
    if (expected != 0 && expected != snapshot.nodes.size()) {
        throw std::runtime_error("RoutingSnapshot::parse: node count mismatch");
    }
    return snapshot;
}

}  // namespace kadsim::graph
