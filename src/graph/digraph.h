// Directed connectivity graph (paper §4.2): one vertex per network node, an
// edge (v,w) iff w appears in v's routing table. Edge capacities are
// implicitly 1 (assigned during the flow transformation).
//
// Storage is flat CSR (compressed sparse row): finalize() compacts the edge
// list into an offsets array (n+1 ints) plus a targets array (m ints), so a
// snapshot graph is two contiguous allocations instead of n small vectors —
// the memory layout the flow kernel's cache behavior depends on.
#ifndef KADSIM_GRAPH_DIGRAPH_H
#define KADSIM_GRAPH_DIGRAPH_H

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/assert.h"

namespace kadsim::graph {

class Digraph {
public:
    /// Creates a graph with n vertices and no edges; add edges, then
    /// finalize() before querying.
    explicit Digraph(int n);

    /// Adds a directed edge u→v. Self-loops are rejected (the connectivity
    /// graph has none by construction). Duplicate edges are deduplicated by
    /// finalize().
    void add_edge(int u, int v);

    /// Compacts the edge list into CSR form (row-sorted, deduplicated) and
    /// releases the build-phase storage; must be called exactly once after
    /// the last add_edge.
    void finalize();

    /// Adopts already-compacted CSR arrays without the add_edge/finalize
    /// round-trip (the flat snapshot pipeline builds rows directly). The
    /// caller guarantees the finalize() postconditions: offsets has n+1
    /// entries starting at 0 and ending at targets.size(), and every row is
    /// strictly increasing with in-range targets and no self-loops (checked
    /// in debug builds).
    [[nodiscard]] static Digraph from_csr(int n, std::vector<std::int64_t> offsets,
                                          std::vector<int> targets);

    [[nodiscard]] int vertex_count() const noexcept { return n_; }
    [[nodiscard]] std::int64_t edge_count() const noexcept {
        KADSIM_ASSERT(finalized_);
        return static_cast<std::int64_t>(targets_.size());
    }

    [[nodiscard]] std::span<const int> out(int u) const {
        KADSIM_ASSERT(finalized_);
        const auto us = static_cast<std::size_t>(u);
        return {targets_.data() + offsets_[us],
                static_cast<std::size_t>(offsets_[us + 1] - offsets_[us])};
    }

    /// CSR row offset of u: the global edge index of out(u)[0]. Edge (u, v)
    /// at position p in out(u) has global index edge_offset(u) + p — the
    /// flow layer uses this to map connectivity-graph edges to arc ids of
    /// the Even transform without searching.
    [[nodiscard]] std::int64_t edge_offset(int u) const {
        KADSIM_ASSERT(finalized_);
        return offsets_[static_cast<std::size_t>(u)];
    }

    /// Binary search on the sorted adjacency row.
    [[nodiscard]] bool has_edge(int u, int v) const;

    [[nodiscard]] int out_degree(int u) const {
        KADSIM_ASSERT(finalized_);
        const auto us = static_cast<std::size_t>(u);
        return static_cast<int>(offsets_[us + 1] - offsets_[us]);
    }

    [[nodiscard]] std::vector<int> in_degrees() const;

    /// Fraction of edges (u,v) whose reverse (v,u) also exists. The paper
    /// observes Kademlia connectivity graphs "come very close to being
    /// undirected" (§5.2); this quantifies it.
    [[nodiscard]] double reciprocity() const;

    /// Graph with every edge reversed (built by a direct counting pass into
    /// CSR form — no per-edge add_edge round-trip).
    [[nodiscard]] Digraph reversed() const;

    /// True iff the edge set is complete (every ordered pair, no loops) —
    /// the κ = n−1 special case of §4.4.
    [[nodiscard]] bool is_complete() const noexcept {
        KADSIM_ASSERT(finalized_);
        return static_cast<std::int64_t>(targets_.size()) ==
               static_cast<std::int64_t>(n_) * (n_ - 1);
    }

    /// Bytes held by the finalized CSR arrays (arena accounting in benches).
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return offsets_.capacity() * sizeof(std::int64_t) +
               targets_.capacity() * sizeof(int) +
               build_edges_.capacity() * sizeof(std::pair<int, int>);
    }

private:
    int n_ = 0;
    bool finalized_ = false;
    std::vector<std::pair<int, int>> build_edges_;  ///< (u,v), build phase only
    std::vector<std::int64_t> offsets_;             ///< n+1 row offsets
    std::vector<int> targets_;                      ///< flat sorted targets
};

/// Number of strongly connected components (iterative Tarjan). κ(D) > 0
/// requires exactly one SCC; the analyzer uses this as a fast consistency
/// check and the tests as an oracle for κ = 0.
[[nodiscard]] int strongly_connected_components(const Digraph& g,
                                                std::vector<int>* component_ids = nullptr);

[[nodiscard]] inline bool is_strongly_connected(const Digraph& g) {
    return g.vertex_count() <= 1 || strongly_connected_components(g) == 1;
}

}  // namespace kadsim::graph

#endif  // KADSIM_GRAPH_DIGRAPH_H
