// Directed connectivity graph (paper §4.2): one vertex per network node, an
// edge (v,w) iff w appears in v's routing table. Edge capacities are
// implicitly 1 (assigned during the flow transformation).
#ifndef KADSIM_GRAPH_DIGRAPH_H
#define KADSIM_GRAPH_DIGRAPH_H

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.h"

namespace kadsim::graph {

class Digraph {
public:
    /// Creates a graph with n vertices and no edges; add edges, then
    /// finalize() before querying.
    explicit Digraph(int n);

    /// Adds a directed edge u→v. Self-loops are rejected (the connectivity
    /// graph has none by construction). Duplicate edges are deduplicated by
    /// finalize().
    void add_edge(int u, int v);

    /// Sorts and deduplicates adjacency lists; must be called exactly once
    /// after the last add_edge.
    void finalize();

    [[nodiscard]] int vertex_count() const noexcept { return n_; }
    [[nodiscard]] std::int64_t edge_count() const noexcept {
        KADSIM_ASSERT(finalized_);
        return m_;
    }

    [[nodiscard]] std::span<const int> out(int u) const {
        KADSIM_ASSERT(finalized_);
        return adj_[static_cast<std::size_t>(u)];
    }

    /// Binary search on the sorted adjacency list.
    [[nodiscard]] bool has_edge(int u, int v) const;

    [[nodiscard]] int out_degree(int u) const {
        KADSIM_ASSERT(finalized_);
        return static_cast<int>(adj_[static_cast<std::size_t>(u)].size());
    }

    [[nodiscard]] std::vector<int> in_degrees() const;

    /// Fraction of edges (u,v) whose reverse (v,u) also exists. The paper
    /// observes Kademlia connectivity graphs "come very close to being
    /// undirected" (§5.2); this quantifies it.
    [[nodiscard]] double reciprocity() const;

    /// Graph with every edge reversed.
    [[nodiscard]] Digraph reversed() const;

    /// True iff the edge set is complete (every ordered pair, no loops) —
    /// the κ = n−1 special case of §4.4.
    [[nodiscard]] bool is_complete() const noexcept {
        KADSIM_ASSERT(finalized_);
        return m_ == static_cast<std::int64_t>(n_) * (n_ - 1);
    }

private:
    int n_ = 0;
    std::int64_t m_ = 0;
    bool finalized_ = false;
    std::vector<std::vector<int>> adj_;
};

/// Number of strongly connected components (iterative Tarjan). κ(D) > 0
/// requires exactly one SCC; the analyzer uses this as a fast consistency
/// check and the tests as an oracle for κ = 0.
[[nodiscard]] int strongly_connected_components(const Digraph& g,
                                                std::vector<int>* component_ids = nullptr);

[[nodiscard]] inline bool is_strongly_connected(const Digraph& g) {
    return g.vertex_count() <= 1 || strongly_connected_components(g) == 1;
}

}  // namespace kadsim::graph

#endif  // KADSIM_GRAPH_DIGRAPH_H
