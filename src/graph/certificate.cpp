#include "graph/certificate.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "util/assert.h"

namespace kadsim::graph {

SparseCertificate build_certificate(const Digraph& g, int k) {
    KADSIM_ASSERT(k >= 1);
    const auto start = std::chrono::steady_clock::now();
    const int n = g.vertex_count();
    SparseCertificate cert;
    cert.k = k;

    // Split the arc set: collect the symmetric core as an undirected edge
    // list (u < v, both arcs present) and count the asymmetric remainder.
    // has_edge is a binary search over the sorted CSR row of the head.
    std::vector<std::pair<int, int>> core;
    for (int u = 0; u < n; ++u) {
        for (const int v : g.out(u)) {
            if (u < v && g.has_edge(v, u)) core.emplace_back(u, v);
        }
    }
    cert.core_edges = static_cast<std::int64_t>(core.size());

    // Undirected CSR adjacency of the core, each slot carrying (neighbour,
    // edge index) so the scan can label edges.
    std::vector<std::int64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
    for (const auto& [u, v] : core) {
        ++offsets[static_cast<std::size_t>(u) + 1];
        ++offsets[static_cast<std::size_t>(v) + 1];
    }
    for (int v = 0; v < n; ++v) {
        offsets[static_cast<std::size_t>(v) + 1] += offsets[static_cast<std::size_t>(v)];
    }
    std::vector<std::pair<int, std::int64_t>> adjacency(
        static_cast<std::size_t>(offsets[static_cast<std::size_t>(n)]));
    std::vector<std::int64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t e = 0; e < core.size(); ++e) {
        const auto [u, v] = core[e];
        adjacency[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = {
            v, static_cast<std::int64_t>(e)};
        adjacency[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = {
            u, static_cast<std::int64_t>(e)};
    }

    // Nagamochi–Ibaraki scan-first search: repeatedly scan the unscanned
    // vertex with the largest attachment number r(v); scanning v gives every
    // edge to an unscanned neighbour w the label r(w)+1 (its forest index)
    // and increments r(w). Lazy max-bucket selection keeps the whole pass
    // O(n + m_core); stale bucket entries (r moved on, or already scanned)
    // are skipped on pop. Label ≤ k ⟺ the edge lies in one of the first k
    // forests, and each forest has at most n−1 edges.
    std::vector<int> attach(static_cast<std::size_t>(n), 0);
    std::vector<char> scanned(static_cast<std::size_t>(n), 0);
    std::vector<int> label(core.size(), 0);
    std::vector<std::vector<int>> bucket(static_cast<std::size_t>(n) + 1);
    bucket[0].reserve(static_cast<std::size_t>(n));
    for (int v = n - 1; v >= 0; --v) bucket[0].push_back(v);
    int cur_max = 0;
    for (int step = 0; step < n; ++step) {
        int v = -1;
        while (v < 0) {
            KADSIM_ASSERT(cur_max >= 0);
            auto& top = bucket[static_cast<std::size_t>(cur_max)];
            if (top.empty()) {
                --cur_max;
                continue;
            }
            const int candidate = top.back();
            top.pop_back();
            const auto cs = static_cast<std::size_t>(candidate);
            if (scanned[cs] == 0 && attach[cs] == cur_max) v = candidate;
        }
        scanned[static_cast<std::size_t>(v)] = 1;
        const auto begin = static_cast<std::size_t>(offsets[static_cast<std::size_t>(v)]);
        const auto end =
            static_cast<std::size_t>(offsets[static_cast<std::size_t>(v) + 1]);
        for (std::size_t i = begin; i < end; ++i) {
            const auto [w, e] = adjacency[i];
            const auto ws = static_cast<std::size_t>(w);
            if (scanned[ws] != 0) continue;
            label[static_cast<std::size_t>(e)] = attach[ws] + 1;
            ++attach[ws];
            bucket[static_cast<std::size_t>(attach[ws])].push_back(w);
            cur_max = std::max(cur_max, attach[ws]);
        }
    }

    // Assemble the certificate: both arcs of every core edge in the first k
    // forests, plus the asymmetric arcs verbatim.
    Digraph h(n);
    for (std::size_t e = 0; e < core.size(); ++e) {
        if (label[e] > k) continue;
        ++cert.core_edges_kept;
        h.add_edge(core[e].first, core[e].second);
        h.add_edge(core[e].second, core[e].first);
    }
    for (int u = 0; u < n; ++u) {
        for (const int v : g.out(u)) {
            if (!g.has_edge(v, u)) {
                ++cert.asymmetric_arcs;
                h.add_edge(u, v);
            }
        }
    }
    h.finalize();
    KADSIM_ASSERT(cert.core_edges_kept <=
                  static_cast<std::int64_t>(k) * std::max(0, n - 1));
    cert.graph = std::move(h);
    cert.build_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    return cert;
}

}  // namespace kadsim::graph
