#include "graph/flat_snapshot.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <istream>
#include <optional>
#include <ostream>
#include <stdexcept>

#include "exec/thread_pool.h"

namespace kadsim::graph {

namespace {

/// Rows per compaction chunk. Fixed (never derived from the pool size) so
/// the chunk boundaries — and therefore every intermediate value — are
/// identical for any thread count; only the schedule varies.
constexpr std::size_t kChunkRows = 4096;

/// Per-thread compaction workspace, reused across to_digraph calls from the
/// same thread (the analyzer calls once per snapshot — steady state costs no
/// allocation). The parallel fan-out reads `translate` (frozen before the
/// workers start) and writes disjoint row ranges of the two row arrays; the
/// bitmap levels belong to whichever thread runs the row kernel and obey a
/// clear-on-read invariant (all-zero between rows), so they are never reset
/// wholesale.
struct BuildScratch {
    std::vector<std::uint32_t> translate;    ///< address → row index + 1 (0 = gone)
    std::vector<std::uint16_t> translate16;  ///< narrow variant, rows < 2^16 - 1
    std::vector<int> row_targets;            ///< per-row compacted targets, raw offsets
    std::vector<std::uint32_t> row_counts;   ///< per-row valid-unique count
    std::vector<std::uint64_t> bits0;        ///< row bitmap: bit v = target v kept
    std::vector<std::uint64_t> bits1;        ///< bit w = bits0[w] nonzero
    std::vector<std::uint64_t> bits2;        ///< bit w = bits1[w] nonzero
};

BuildScratch& build_scratch() {
    thread_local BuildScratch scratch;
    return scratch;
}

/// Grows the calling thread's bitmap hierarchy to cover target ids < n.
/// resize() value-initialises the new words, and the kernel's clear-on-read
/// keeps every touched word zero afterwards, so the all-zero invariant holds.
void ensure_bitmaps(BuildScratch& scratch, std::size_t n) {
    const std::size_t w0 = (n + 63) / 64;
    const std::size_t w1 = (w0 + 63) / 64;
    const std::size_t w2 = (w1 + 63) / 64;
    if (scratch.bits0.size() < w0) scratch.bits0.resize(w0);
    if (scratch.bits1.size() < w1) scratch.bits1.resize(w1);
    if (scratch.bits2.size() < w2) scratch.bits2.resize(w2);
}

/// Row compaction kernel shared by the serial and pooled paths: translate
/// raw row `i` of the capture CSR, drop departed contacts and the self
/// reference, and write the surviving target ids to `out` sorted and deduped.
/// Sorting is a three-level bitmap counting sort instead of std::sort: each
/// kept target sets its bit (plus two summary bits), then set bits are read
/// back in ascending order, clearing as they go. Duplicates collapse into
/// one bit for free, every structure is L1/L2-resident (n bits + n/64 +
/// n/4096), and the whole row costs one pass over its contacts — the per-row
/// comparison sorts this replaces were ~90% of the compaction time.
/// `Slot` is the translation entry type: std::uint16_t whenever row + 1 fits
/// (the common case — halving the table keeps it L2-resident under the
/// random contact gathers), std::uint32_t otherwise. `kThreeLevel` selects
/// the hierarchy depth: at small n the level-1 summary is a handful of words
/// that are cheaper to scan per row than a third per-contact bit set; large
/// n needs the level-2 summary to keep the scan sublinear.
template <bool kThreeLevel, typename Slot>
std::uint32_t compact_row(const std::uint32_t* contacts, std::uint32_t lo,
                          std::uint32_t hi, std::size_t i,
                          const std::vector<Slot>& translate,
                          BuildScratch& scratch, int* out) {
    std::uint64_t* b0 = scratch.bits0.data();
    std::uint64_t* b1 = scratch.bits1.data();
    std::uint64_t* b2 = scratch.bits2.data();
    for (std::uint32_t p = lo; p < hi; ++p) {
        const std::uint32_t contact = contacts[p];
        const std::uint32_t slot =
            contact < translate.size() ? translate[contact] : 0;
        if (slot == 0) continue;  // contact left the network
        const std::uint32_t v = slot - 1;
        if (v == static_cast<std::uint32_t>(i)) continue;  // self reference
        const std::uint32_t wa = v >> 6;
        const std::uint32_t wb = wa >> 6;
        b0[wa] |= std::uint64_t{1} << (v & 63);
        b1[wb] |= std::uint64_t{1} << (wa & 63);
        if constexpr (kThreeLevel) {
            b2[wb >> 6] |= std::uint64_t{1} << (wb & 63);
        }
    }
    std::uint32_t count = 0;
    const auto drain_b1 = [&](std::size_t wb) {
        std::uint64_t m1 = b1[wb];
        b1[wb] = 0;
        while (m1 != 0) {
            const std::size_t wa =
                wb * 64 + static_cast<std::size_t>(std::countr_zero(m1));
            m1 &= m1 - 1;
            std::uint64_t m0 = b0[wa];
            b0[wa] = 0;
            while (m0 != 0) {
                out[count++] = static_cast<int>(
                    wa * 64 + static_cast<std::size_t>(std::countr_zero(m0)));
                m0 &= m0 - 1;
            }
        }
    };
    if constexpr (kThreeLevel) {
        const std::size_t w2 = scratch.bits2.size();
        for (std::size_t t = 0; t < w2; ++t) {
            std::uint64_t m2 = b2[t];
            if (m2 == 0) continue;
            b2[t] = 0;
            while (m2 != 0) {
                drain_b1(t * 64 + static_cast<std::size_t>(std::countr_zero(m2)));
                m2 &= m2 - 1;
            }
        }
    } else {
        const std::size_t w1 = scratch.bits1.size();
        for (std::size_t wb = 0; wb < w1; ++wb) {
            if (b1[wb] != 0) drain_b1(wb);
        }
    }
    return count;
}

/// The compaction flow shared by both translation widths and hierarchy
/// depths: serial streaming pass, or three chunked passes over the pool.
template <bool kThreeLevel, typename Slot>
Digraph compact_csr_impl(const std::uint32_t* offsets,
                         const std::uint32_t* contacts, std::size_t n,
                         std::size_t m, const std::vector<Slot>& translate,
                         BuildScratch& scratch, exec::ThreadPool* pool) {
    const std::size_t chunks = (n + kChunkRows - 1) / kChunkRows;

    if (pool == nullptr || chunks <= 1) {
        // Serial fast path: one streaming pass that compacts each row through
        // the bitmap kernel straight into the final CSR arrays — no
        // intermediate row buffer, no gather pass.
        ensure_bitmaps(scratch, n);
        std::vector<std::int64_t> out_offsets(n + 1);
        std::vector<int> out_targets(m);
        std::size_t total = 0;
        for (std::size_t i = 0; i < n; ++i) {
            out_offsets[i] = static_cast<std::int64_t>(total);
            total += compact_row<kThreeLevel>(contacts, offsets[i],
                                              offsets[i + 1], i, translate,
                                              scratch,
                                              out_targets.data() + total);
        }
        out_offsets[n] = static_cast<std::int64_t>(total);
        out_targets.resize(total);
        return Digraph::from_csr(static_cast<int>(n), std::move(out_offsets),
                                 std::move(out_targets));
    }

    std::vector<std::int64_t> out_offsets(n + 1);
    out_offsets[0] = 0;

    // Pass 1 — per-row compaction in place at the raw offsets: rows are
    // independent, so the chunk fan-out writes disjoint slices and the result
    // is schedule-invariant. Each worker runs the same bitmap kernel as the
    // serial path against its own thread-local hierarchy, so the rows it
    // emits are byte-identical to the serial ones.
    scratch.row_targets.resize(m);
    scratch.row_counts.resize(n);
    const auto compact_rows = [&](std::size_t begin, std::size_t end) {
        BuildScratch& local = build_scratch();  // executing thread's bitmaps
        ensure_bitmaps(local, n);
        for (std::size_t i = begin; i < end; ++i) {
            scratch.row_counts[i] = compact_row<kThreeLevel>(
                contacts, offsets[i], offsets[i + 1], i, translate, local,
                scratch.row_targets.data() + offsets[i]);
        }
    };
    const auto chunk_range = [n](std::size_t c) {
        return std::pair{c * kChunkRows, std::min((c + 1) * kChunkRows, n)};
    };
    pool->parallel_for(0, static_cast<int>(chunks),
                       [&compact_rows, &chunk_range](int c) {
                           const auto [lo, hi] =
                               chunk_range(static_cast<std::size_t>(c));
                           compact_rows(lo, hi);
                       });

    // Pass 2 — prefix-sum the per-row counts into the final CSR offsets.
    for (std::size_t i = 0; i < n; ++i) {
        out_offsets[i + 1] = out_offsets[i] + scratch.row_counts[i];
    }

    // Pass 3 — gather the compacted rows into the final targets array (same
    // disjoint-chunk fan-out as pass 1).
    std::vector<int> out_targets(static_cast<std::size_t>(out_offsets[n]));
    const auto gather_rows = [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            std::memcpy(out_targets.data() + out_offsets[i],
                        scratch.row_targets.data() + offsets[i],
                        scratch.row_counts[i] * sizeof(int));
        }
    };
    pool->parallel_for(0, static_cast<int>(chunks),
                       [&gather_rows, &chunk_range](int c) {
                           const auto [lo, hi] =
                               chunk_range(static_cast<std::size_t>(c));
                           gather_rows(lo, hi);
                       });

    return Digraph::from_csr(static_cast<int>(n), std::move(out_offsets),
                             std::move(out_targets));
}

/// Depth dispatch: up to 64 level-1 words (n <= 262144) the per-row level-1
/// scan is cheaper than maintaining a third per-contact summary bit.
template <typename Slot>
Digraph compact_csr(const std::uint32_t* offsets, const std::uint32_t* contacts,
                    std::size_t n, std::size_t m,
                    const std::vector<Slot>& translate, BuildScratch& scratch,
                    exec::ThreadPool* pool) {
    const std::size_t w1 = (((n + 63) / 64) + 63) / 64;
    if (w1 <= 64) {
        return compact_csr_impl<false>(offsets, contacts, n, m, translate,
                                       scratch, pool);
    }
    return compact_csr_impl<true>(offsets, contacts, n, m, translate, scratch,
                                  pool);
}

constexpr char kMagic[4] = {'K', 'S', 'N', 'P'};
constexpr std::uint32_t kFormatVersion = 1;
/// Header size: magic + version + time_ms + n + m.
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8 + 8;

void write_bytes(std::ostream& out, const void* data, std::size_t bytes) {
    out.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
}

/// Binary reader with a byte cursor: every failure names the field being
/// read and the absolute offset where the stream ran dry, so a truncated or
/// corrupt snapshot file is diagnosable from the message alone.
class BinaryReader {
public:
    explicit BinaryReader(std::istream& in) : in_(in) {}

    void read(void* data, std::size_t bytes, const char* what) {
        in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
        const auto got = static_cast<std::size_t>(in_.gcount());
        position_ += got;
        if (got != bytes) {
            throw std::runtime_error(
                "FlatSnapshot::load_binary: truncated " + std::string(what) +
                " at byte " + std::to_string(position_) + " (wanted " +
                std::to_string(bytes) + " bytes, got " + std::to_string(got) + ")");
        }
    }

    /// Fills `out` with `count` u32 values, growing it in bounded chunks so
    /// a corrupt header claiming billions of entries fails at the first
    /// short read instead of attempting a multi-gigabyte allocation first.
    void read_u32_array(std::vector<std::uint32_t>& out, std::uint64_t count,
                        const char* what) {
        constexpr std::uint64_t kChunk = 1u << 20;  // 4 MiB of u32s per step
        out.clear();
        std::uint64_t filled = 0;
        while (filled < count) {
            const std::uint64_t step = std::min(kChunk, count - filled);
            out.resize(static_cast<std::size_t>(filled + step));
            read(out.data() + filled, static_cast<std::size_t>(step) * sizeof(std::uint32_t),
                 what);
            filled += step;
        }
    }

    [[nodiscard]] std::uint64_t position() const noexcept { return position_; }

    /// Bytes left in the stream, when it is seekable (files, string
    /// streams); nullopt for pipes/sockets. Used to reject impossible
    /// header counts before any allocation happens.
    [[nodiscard]] std::optional<std::uint64_t> remaining_bytes() {
        const std::istream::pos_type here = in_.tellg();
        if (here == std::istream::pos_type(-1)) return std::nullopt;
        in_.seekg(0, std::ios::end);
        const std::istream::pos_type end = in_.tellg();
        in_.seekg(here);
        if (end == std::istream::pos_type(-1) || end < here) return std::nullopt;
        return static_cast<std::uint64_t>(end - here);
    }

private:
    std::istream& in_;
    std::uint64_t position_ = 0;
};

[[noreturn]] void header_error(const std::string& detail) {
    throw std::runtime_error("FlatSnapshot::load_binary: " + detail);
}

}  // namespace

Digraph FlatSnapshot::to_digraph(exec::ThreadPool* pool) const {
    const std::size_t n = addresses_.size();
    if (n == 0) return Digraph::from_csr(0, {0}, {});
    KADSIM_ASSERT(offsets_.size() == n + 1);

    BuildScratch& scratch = build_scratch();

    // Dense translation table over the live address range. First-wins on a
    // duplicate address, matching the legacy unordered_map::emplace. Narrow
    // (16-bit) entries whenever row + 1 fits: the table is indexed by raw
    // global address — much wider than n — and halving it is what keeps the
    // kernel's random gathers inside L2.
    std::uint32_t max_address = 0;
    for (const std::uint32_t a : addresses_) max_address = std::max(max_address, a);
    const std::size_t table = static_cast<std::size_t>(max_address) + 1;
    if (n + 1 <= 0xFFFF) {
        scratch.translate16.assign(table, 0);
        for (std::size_t i = 0; i < n; ++i) {
            std::uint16_t& slot = scratch.translate16[addresses_[i]];
            if (slot == 0) slot = static_cast<std::uint16_t>(i + 1);
        }
        return compact_csr(offsets_.data(), contacts_.data(), n,
                           contacts_.size(), scratch.translate16, scratch, pool);
    }
    scratch.translate.assign(table, 0);
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t& slot = scratch.translate[addresses_[i]];
        if (slot == 0) slot = static_cast<std::uint32_t>(i) + 1;
    }
    return compact_csr(offsets_.data(), contacts_.data(), n, contacts_.size(),
                       scratch.translate, scratch, pool);
}

void FlatSnapshot::save_binary(std::ostream& out, std::int64_t time_ms) const {
    const std::uint64_t n = addresses_.size();
    const std::uint64_t m = contacts_.size();
    write_bytes(out, kMagic, sizeof(kMagic));
    write_bytes(out, &kFormatVersion, sizeof(kFormatVersion));
    write_bytes(out, &time_ms, sizeof(time_ms));
    write_bytes(out, &n, sizeof(n));
    write_bytes(out, &m, sizeof(m));
    write_bytes(out, addresses_.data(), addresses_.size() * sizeof(std::uint32_t));
    if (n > 0) {
        write_bytes(out, offsets_.data(), offsets_.size() * sizeof(std::uint32_t));
    }
    write_bytes(out, contacts_.data(), contacts_.size() * sizeof(std::uint32_t));
}

std::int64_t FlatSnapshot::load_binary(std::istream& in) {
    // Any failure below leaves *this untouched: everything is parsed into
    // locals and only swapped in after the last validation passes, so a
    // truncated or corrupt file can never leave a partially-filled snapshot
    // behind (the daemon's no-partial-state contract).
    BinaryReader reader(in);
    char magic[4];
    reader.read(magic, sizeof(magic), "magic");
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        header_error("bad magic (not a KSNP snapshot)");
    }
    std::uint32_t version = 0;
    reader.read(&version, sizeof(version), "version");
    if (version != kFormatVersion) {
        header_error("unsupported version " + std::to_string(version));
    }
    std::int64_t time_ms = 0;
    std::uint64_t n = 0;
    std::uint64_t m = 0;
    reader.read(&time_ms, sizeof(time_ms), "header");
    reader.read(&n, sizeof(n), "header");
    reader.read(&m, sizeof(m), "header");
    // Impossible counts: addresses are u32, so more than 2^32 nodes cannot
    // exist, and the offsets array indexes contacts with u32 values.
    if (n > 0xFFFFFFFFull) {
        header_error("impossible node count " + std::to_string(n) + " at byte " +
                     std::to_string(kHeaderBytes));
    }
    if (m > 0xFFFFFFFFull) {
        header_error("contact count overflow (" + std::to_string(m) + ") at byte " +
                     std::to_string(kHeaderBytes));
    }
    // Offset arithmetic below is u64, but guard the payload-size product
    // anyway so `payload` can never wrap.
    const std::uint64_t rows = n > 0 ? n + 1 : 0;
    const std::uint64_t payload = (n + rows + m) * sizeof(std::uint32_t);
    if (const auto remaining = reader.remaining_bytes();
        remaining && *remaining < payload) {
        header_error("file too short for declared counts n=" + std::to_string(n) +
                     " m=" + std::to_string(m) + " (need " + std::to_string(payload) +
                     " bytes after byte " + std::to_string(kHeaderBytes) + ", have " +
                     std::to_string(*remaining) + ")");
    }
    std::vector<std::uint32_t> addresses;
    std::vector<std::uint32_t> offsets;
    std::vector<std::uint32_t> contacts;
    reader.read_u32_array(addresses, n, "addresses");
    reader.read_u32_array(offsets, rows, "offsets");
    reader.read_u32_array(contacts, m, "contacts");
    if (n > 0 &&
        (offsets.front() != 0 || offsets.back() != static_cast<std::uint32_t>(m) ||
         !std::is_sorted(offsets.begin(), offsets.end()))) {
        header_error("inconsistent offsets (rows must start at 0, end at m=" +
                     std::to_string(m) + " and be non-decreasing; offsets end at byte " +
                     std::to_string(reader.position() - m * sizeof(std::uint32_t)) +
                     ")");
    }
    addresses_ = std::move(addresses);
    offsets_ = std::move(offsets);
    contacts_ = std::move(contacts);
    return time_ms;
}

}  // namespace kadsim::graph
