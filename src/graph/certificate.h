// Sparse k-connectivity certificates (Nagamochi–Ibaraki '92, Cheriyan–
// Kao–Thurimella '93) for the directed connectivity graphs of §4.2.
//
// A k-certificate of an undirected graph is a subgraph H with at most
// k·(n−1) edges such that every pairwise connectivity value that is < k in
// the original graph is exactly preserved in H (and values ≥ k stay ≥ k).
// Nagamochi–Ibaraki build one in linear time: a single scan-first-search
// pass partitions the edges into spanning forests F1, F2, …, and
// F1 ∪ … ∪ Fk is the certificate.
//
// Kademlia connectivity graphs are directed, and no sparse certificate can
// exist for general digraphs (a complete bipartite DAG has Θ(n²) edges that
// all matter to λ = 1 cuts). What makes a certificate work here is the same
// structural property the paper's §5.2 source sampling exploits: routing
// tables are nearly reciprocal. The construction splits the arc set:
//
//   * the symmetric core — arc pairs u⇄v — is treated as an undirected
//     graph and sparsified with the NI forest decomposition;
//   * every asymmetric arc (u→v without v→u) is kept unconditionally.
//
// Both arcs of a core edge are kept iff its NI forest index is ≤ k.
// For every vertex pair with min-degree cap < k this preserves κ(u,v) and
// λ(u,v) exactly: a cut of size < k in the certificate misses at least one
// of the k core forests entirely, so the full graph admits a replacement
// path and has the same cut value (the CKT argument, applied per cut).
// The flow kernels pick k = 1 + max out-degree over the sampled sources,
// which caps every evaluated pair strictly below k — so every recorded
// value is bit-identical to the full-graph sweep by construction, while the
// solver walks a network of ≤ 2·k·(n−1) + (asymmetric) arcs instead of m.
#ifndef KADSIM_GRAPH_CERTIFICATE_H
#define KADSIM_GRAPH_CERTIFICATE_H

#include <cstdint>

#include "graph/digraph.h"

namespace kadsim::graph {

/// A directed k-certificate: same vertex ids as the source graph, a subset
/// of its arcs, and the build accounting the benches report.
struct SparseCertificate {
    Digraph graph{0};               ///< the certificate digraph (finalized)
    int k = 0;                      ///< certificate order
    std::int64_t core_edges = 0;    ///< undirected symmetric-core edges in g
    std::int64_t core_edges_kept = 0;  ///< core edges kept: ≤ k·(n−1)
    std::int64_t asymmetric_arcs = 0;  ///< non-reciprocated arcs (all kept)
    std::uint64_t build_us = 0;     ///< wall time of the construction
};

/// Builds the directed k-certificate of `g` (k ≥ 1): NI scan-first-search
/// forest decomposition of the symmetric core plus every asymmetric arc.
/// Single-threaded and deterministic — the same (g, k) always yields the
/// same certificate. Preserves κ(u,v) and λ(u,v) exactly for every pair
/// with min(out_degree(u), in_degree(v)) < k, and never increases either.
[[nodiscard]] SparseCertificate build_certificate(const Digraph& g, int k);

}  // namespace kadsim::graph

#endif  // KADSIM_GRAPH_CERTIFICATE_H
