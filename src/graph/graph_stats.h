// Degree statistics of connectivity graphs. The paper's §5.2 sampling
// argument rests on out-degrees bounding outgoing flow; these helpers expose
// the distributions that argument depends on (and that benches report).
#ifndef KADSIM_GRAPH_GRAPH_STATS_H
#define KADSIM_GRAPH_GRAPH_STATS_H

#include <string>
#include <vector>

#include "graph/digraph.h"

namespace kadsim::graph {

struct DegreeSummary {
    int min = 0;
    int max = 0;
    double mean = 0.0;
    int median = 0;
    int p10 = 0;  ///< 10th percentile — the "weak nodes" the minimum cut hits
};

/// Summary of a degree vector (empty input → all zeros).
///
/// The default path streams the degrees into a stats::CountHistogram and
/// reads the percentiles back by sorted index — O(n + max_degree), no sort,
/// and every reported number is identical to the historical sort-based
/// computation (`sorted[n/2]`, `sorted[n/10]`; pinned by
/// tests/test_graph_stats.cpp). `exact_sort = true` keeps the original
/// sort-per-call path for small-n callers that prefer O(n log n) time over
/// an O(max_degree) scratch allocation.
[[nodiscard]] DegreeSummary summarize_degrees(std::vector<int> degrees,
                                              bool exact_sort = false);

/// Out-/in-degree summaries of a digraph.
[[nodiscard]] DegreeSummary out_degree_summary(const Digraph& g);
[[nodiscard]] DegreeSummary in_degree_summary(const Digraph& g);

/// Fixed-width histogram over [0, max]; returns bucket counts and renders a
/// compact one-line sparkline-style string for logs.
[[nodiscard]] std::vector<int> degree_histogram(const std::vector<int>& degrees,
                                                int buckets);
[[nodiscard]] std::string render_histogram(const std::vector<int>& counts);

}  // namespace kadsim::graph

#endif  // KADSIM_GRAPH_GRAPH_STATS_H
