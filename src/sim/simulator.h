// Discrete-event simulator (PeerSim "EDSimulator" equivalent).
//
// Single-threaded by design: protocols run as callbacks on a virtual clock;
// determinism comes from the stable event queue plus per-component RNG
// streams handed out by split_rng(). The pending set is the calendar queue
// (O(1) amortized near-future band); its pop order is bit-identical to the
// reference binary heap in event_queue.h, so switching cost the replay
// goldens nothing.
#ifndef KADSIM_SIM_SIMULATOR_H
#define KADSIM_SIM_SIMULATOR_H

#include <cstdint>

#include "sim/calendar_queue.h"
#include "sim/time.h"
#include "util/assert.h"
#include "util/rng.h"

namespace kadsim::sim {

class Simulator {
public:
    explicit Simulator(std::uint64_t seed) : master_rng_(seed) {}

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    [[nodiscard]] SimTime now() const noexcept { return now_; }

    /// Schedules `fn` to run at now() + delay (delay ≥ 0).
    void schedule_in(SimTime delay, EventFn fn) {
        KADSIM_ASSERT(delay >= 0);
        queue_.push(now_ + delay, std::move(fn));
    }

    /// Schedules `fn` at absolute time t (t ≥ now()).
    void schedule_at(SimTime t, EventFn fn) {
        KADSIM_ASSERT(t >= now_);
        queue_.push(t, std::move(fn));
    }

    /// Runs until the queue drains or the clock passes `end` (events at
    /// exactly `end` still run). Returns the number of events executed.
    std::uint64_t run_until(SimTime end);

    /// Runs every pending event (use only for small bounded scenarios).
    std::uint64_t run_all();

    /// Independent deterministic RNG stream for a component. Call order
    /// defines the stream id, so construct components in a fixed order.
    [[nodiscard]] util::Rng split_rng() noexcept {
        return master_rng_.split(next_stream_++);
    }

    [[nodiscard]] std::uint64_t events_executed() const noexcept {
        return events_executed_;
    }
    [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }

    /// Capacity-based footprint of the pending-event set (bench counters).
    [[nodiscard]] std::size_t queue_memory_bytes() const noexcept {
        return queue_.memory_bytes();
    }

private:
    CalendarQueue queue_;
    util::Rng master_rng_;
    SimTime now_ = 0;
    std::uint64_t next_stream_ = 0;
    std::uint64_t events_executed_ = 0;
};

}  // namespace kadsim::sim

#endif  // KADSIM_SIM_SIMULATOR_H
