#include "sim/simulator.h"

namespace kadsim::sim {

std::uint64_t Simulator::run_until(SimTime end) {
    std::uint64_t executed = 0;
    while (!queue_.empty() && queue_.next_time() <= end) {
        CalendarQueue::Entry entry = queue_.pop();
        KADSIM_ASSERT_MSG(entry.time >= now_, "time went backwards");
        now_ = entry.time;
        entry.fn();
        ++executed;
    }
    // Advance the clock to the horizon even if the queue drained earlier, so
    // consecutive run_until calls observe monotone time.
    if (now_ < end) now_ = end;
    events_executed_ += executed;
    return executed;
}

std::uint64_t Simulator::run_all() {
    std::uint64_t executed = 0;
    while (!queue_.empty()) {
        CalendarQueue::Entry entry = queue_.pop();
        KADSIM_ASSERT_MSG(entry.time >= now_, "time went backwards");
        now_ = entry.time;
        entry.fn();
        ++executed;
    }
    events_executed_ += executed;
    return executed;
}

}  // namespace kadsim::sim
