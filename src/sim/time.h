// Simulated time. The paper reports everything in simulated minutes; the
// engine runs on integer milliseconds so message latencies (tens of ms) and
// phase boundaries (minutes) share one exact representation.
#ifndef KADSIM_SIM_TIME_H
#define KADSIM_SIM_TIME_H

#include <cstdint>

namespace kadsim::sim {

/// Milliseconds of simulated time since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kMillisecond = 1;
inline constexpr SimTime kSecond = 1000 * kMillisecond;
inline constexpr SimTime kMinute = 60 * kSecond;
inline constexpr SimTime kHour = 60 * kMinute;

constexpr SimTime minutes(std::int64_t m) noexcept { return m * kMinute; }
constexpr SimTime seconds(std::int64_t s) noexcept { return s * kSecond; }
constexpr double to_minutes(SimTime t) noexcept {
    return static_cast<double>(t) / static_cast<double>(kMinute);
}

}  // namespace kadsim::sim

#endif  // KADSIM_SIM_TIME_H
