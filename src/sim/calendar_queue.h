// Bucketed calendar queue: the hot-path pending-event set of the simulator.
//
// The binary heap in event_queue.h pays O(log n) pointer-chasing sifts per
// operation once hundreds of thousands of events are pending (n=100k+ overlay
// scenarios). Almost all simulator traffic is near-future — RPC deliveries
// (10–100 ms), timeouts (2 s), per-minute scenario ticks — so a calendar
// layout makes those O(1) amortized: time is divided into fixed-width epochs
// and an epoch ring covers the near-future band; only far-future events
// (hourly bucket refreshes, storage expiry, initial join schedules) fall back
// to a small binary heap and migrate into the ring as the window slides.
//
// Pop order is EXACTLY the binary heap's: non-decreasing (time, seq), with
// seq assigned at push. The structure never influences ordering — the epoch
// being drained is a sorted run plus a tiny min-heap of late arrivals, pop
// takes the smaller front, and every other tier holds strictly later epochs —
// so replays are bit-identical to EventQueue (pinned by
// tests/test_calendar_queue.cpp's differential suite).
#ifndef KADSIM_SIM_CALENDAR_QUEUE_H
#define KADSIM_SIM_CALENDAR_QUEUE_H

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/time.h"
#include "util/assert.h"

namespace kadsim::sim {

class CalendarQueue {
public:
    struct Entry {
        SimTime time = 0;
        std::uint64_t seq = 0;
        EventFn fn;
    };

    /// Epoch width 2^4 = 16 ms: narrow enough that the current-epoch heap
    /// stays tiny, wide enough that the 4096-slot ring spans 65.5 s — every
    /// RPC delivery, timeout and minute tick lands in the O(1) band.
    static constexpr int kEpochShift = 4;
    static constexpr std::size_t kRingBuckets = 4096;
    static constexpr std::size_t kRingMask = kRingBuckets - 1;

    CalendarQueue() : ring_(kRingBuckets) {}

    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }

    /// Earliest pending timestamp; queue must be non-empty. May advance the
    /// internal epoch cursor (cheap, amortized O(1)) — hence not const.
    [[nodiscard]] SimTime next_time() {
        KADSIM_ASSERT(size_ > 0);
        if (cur_.empty() && late_.empty()) refill();
        return pop_from_late() ? late_.front().time : cur_.back().time;
    }

    void push(SimTime time, EventFn fn) {
        std::uint32_t slot;
        if (!free_slots_.empty()) {
            slot = free_slots_.back();
            free_slots_.pop_back();
            pool_[slot] = std::move(fn);
        } else {
            slot = static_cast<std::uint32_t>(pool_.size());
            pool_.push_back(std::move(fn));
        }
        place(Handle{time, next_seq_++, slot});
        ++size_;
    }

    /// Removes and returns the earliest event (stable tie-break by seq).
    Entry pop() {
        KADSIM_ASSERT(size_ > 0);
        if (cur_.empty() && late_.empty()) refill();
        Handle top;
        if (pop_from_late()) {
            std::pop_heap(late_.begin(), late_.end(), after);
            top = late_.back();
            late_.pop_back();
        } else {
            top = cur_.back();
            cur_.pop_back();
        }
        --size_;
        Entry entry{top.time, top.seq, std::move(pool_[top.slot])};
        free_slots_.push_back(top.slot);
        return entry;
    }

    void clear() noexcept {
        cur_.clear();
        late_.clear();
        for (auto& bucket : ring_) bucket.clear();
        ring_count_ = 0;
        overflow_.clear();
        pool_.clear();
        free_slots_.clear();
        size_ = 0;
        cur_epoch_ = 0;
    }

    /// Total events ever pushed (also the next sequence number).
    [[nodiscard]] std::uint64_t pushed() const noexcept { return next_seq_; }

    /// Approximate resident footprint of the queue (capacity-based), for the
    /// bench counters. Ignores out-of-line closure captures (none exist:
    /// EventFn is inline-only).
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        std::size_t bytes = cur_.capacity() * sizeof(Handle) +
                            late_.capacity() * sizeof(Handle) +
                            overflow_.capacity() * sizeof(Handle) +
                            pool_.capacity() * sizeof(EventFn) +
                            free_slots_.capacity() * sizeof(std::uint32_t) +
                            ring_.capacity() * sizeof(std::vector<Handle>);
        for (const auto& bucket : ring_) bytes += bucket.capacity() * sizeof(Handle);
        return bytes;
    }

private:
    /// 16-byte handle; the (large) callables stay put in the slot pool, as in
    /// EventQueue.
    struct Handle {
        SimTime time;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    [[nodiscard]] static constexpr std::int64_t epoch_of(SimTime t) noexcept {
        return t >> kEpochShift;
    }
    [[nodiscard]] static bool before(const Handle& a, const Handle& b) noexcept {
        return a.time < b.time || (a.time == b.time && a.seq < b.seq);
    }
    /// std:: heap algorithms build max-heaps; inverting the order yields the
    /// min-heap on (time, seq).
    [[nodiscard]] static bool after(const Handle& a, const Handle& b) noexcept {
        return before(b, a);
    }

    /// True when the next pop must come from the late-arrival heap rather
    /// than the sorted drain vector. Seqs are unique, so no tie to break.
    [[nodiscard]] bool pop_from_late() const noexcept {
        return !late_.empty() && (cur_.empty() || before(late_.front(), cur_.back()));
    }

    /// Routes a handle to its tier. Invariant: `cur_` (sorted DESCENDING by
    /// (time,seq) — earliest at the back) plus the `late_` min-heap together
    /// hold every pending event of epoch <= cur_epoch_; the ring holds epochs
    /// in (cur_epoch_, cur_epoch_ + kRingBuckets) — at most kRingBuckets - 1
    /// distinct epochs, so slots never alias — and the overflow heap holds
    /// everything at or beyond the window end. `cur_` is filled (and sorted)
    /// only once per epoch at refill; events that land in an epoch already
    /// being drained go to `late_`, and pop() takes the smaller of the two
    /// fronts — the same (time,seq) order the one-heap layout produced.
    void place(Handle h) {
        const std::int64_t e = epoch_of(h.time);
        if (e <= cur_epoch_) {
            late_.push_back(h);
            std::push_heap(late_.begin(), late_.end(), after);
        } else if (e < cur_epoch_ + static_cast<std::int64_t>(kRingBuckets)) {
            ring_[static_cast<std::size_t>(e) & kRingMask].push_back(h);
            ++ring_count_;
        } else {
            overflow_.push_back(h);
            std::push_heap(overflow_.begin(), overflow_.end(), after);
        }
    }

    /// Slides the window forward until the current epoch has events. With an
    /// empty ring it jumps straight to the overflow's earliest epoch instead
    /// of walking idle slots one by one. (migrate_overflow may drop events
    /// into `late_` when it lands them in the new current epoch — hence the
    /// two-tier emptiness check.)
    void refill() {
        KADSIM_ASSERT(size_ > 0);
        while (cur_.empty() && late_.empty()) {
            if (ring_count_ == 0) {
                KADSIM_ASSERT(!overflow_.empty());
                cur_epoch_ = epoch_of(overflow_.front().time);
            } else {
                ++cur_epoch_;
            }
            migrate_overflow();
            auto& bucket = ring_[static_cast<std::size_t>(cur_epoch_) & kRingMask];
            if (!bucket.empty()) {
                ring_count_ -= bucket.size();
                cur_.insert(cur_.end(), bucket.begin(), bucket.end());
                bucket.clear();
                std::sort(cur_.begin(), cur_.end(), after);  // descending
            }
        }
    }

    /// Moves overflow events that now fall inside the window into the ring
    /// (or the current heap). Each far event migrates exactly once.
    void migrate_overflow() {
        const std::int64_t window_end =
            cur_epoch_ + static_cast<std::int64_t>(kRingBuckets);
        while (!overflow_.empty() && epoch_of(overflow_.front().time) < window_end) {
            std::pop_heap(overflow_.begin(), overflow_.end(), after);
            const Handle h = overflow_.back();
            overflow_.pop_back();
            place(h);
        }
    }

    std::vector<Handle> cur_;   // sorted descending: current epoch's drain
    std::vector<Handle> late_;  // min-heap: arrivals into the current epoch
    std::vector<std::vector<Handle>> ring_;   // unsorted near-future band
    std::size_t ring_count_ = 0;
    std::vector<Handle> overflow_;            // min-heap: beyond the window
    std::vector<EventFn> pool_;
    std::vector<std::uint32_t> free_slots_;
    std::uint64_t next_seq_ = 0;
    std::size_t size_ = 0;
    std::int64_t cur_epoch_ = 0;
};

}  // namespace kadsim::sim

#endif  // KADSIM_SIM_CALENDAR_QUEUE_H
