// Periodic process helper: re-schedules itself every `period` until cancelled.
// Used for churn ticks, traffic ticks, bucket-refresh timers and snapshots.
#ifndef KADSIM_SIM_PERIODIC_H
#define KADSIM_SIM_PERIODIC_H

#include <memory>
#include <utility>

#include "sim/simulator.h"

namespace kadsim::sim {

/// Handle for a repeating task. Destroying the handle (or calling cancel())
/// stops future firings; an in-flight event becomes a no-op.
class PeriodicTask {
public:
    using TickFn = util::InplaceFunction<void(SimTime), 40>;

    /// Starts a task firing at start, start+period, ... `tick` receives the
    /// firing time.
    static std::unique_ptr<PeriodicTask> start(Simulator& sim, SimTime first,
                                               SimTime period, TickFn tick) {
        KADSIM_ASSERT(period > 0);
        auto task = std::unique_ptr<PeriodicTask>(new PeriodicTask(sim, period, std::move(tick)));
        task->arm(first);
        return task;
    }

    ~PeriodicTask() { cancel(); }

    PeriodicTask(const PeriodicTask&) = delete;
    PeriodicTask& operator=(const PeriodicTask&) = delete;

    void cancel() noexcept { *alive_ = false; }
    [[nodiscard]] bool active() const noexcept { return *alive_; }

private:
    PeriodicTask(Simulator& sim, SimTime period, TickFn tick)
        : sim_(sim), period_(period), tick_(std::move(tick)),
          alive_(std::make_shared<bool>(true)) {}

    void arm(SimTime at) {
        // The event captures a weak liveness token, not `this` alone, so a
        // destroyed task never dereferences freed memory.
        std::weak_ptr<bool> token = alive_;
        PeriodicTask* self = this;
        sim_.schedule_at(at, [self, token] {
            const auto alive = token.lock();
            if (!alive || !*alive) return;
            const SimTime t = self->sim_.now();
            self->tick_(t);
            // tick_ may have cancelled the task.
            if (*alive) self->arm(t + self->period_);
        });
    }

    Simulator& sim_;
    SimTime period_;
    TickFn tick_;
    std::shared_ptr<bool> alive_;
};

}  // namespace kadsim::sim

#endif  // KADSIM_SIM_PERIODIC_H
