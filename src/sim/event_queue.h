// Pending-event set for the discrete-event engine.
//
// Semantics mirror PeerSim's event-driven mode: events execute in
// non-decreasing timestamp order; ties break by insertion order (stable), so
// runs are bit-reproducible regardless of heap internals.
#ifndef KADSIM_SIM_EVENT_QUEUE_H
#define KADSIM_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "util/assert.h"
#include "util/inplace_function.h"

namespace kadsim::sim {

/// Event payload: a small move-only callable. 128 bytes of inline capture is
/// enough for every handler in the code base, including RPC delivery closures
/// carrying a contact-list vector (compile-time enforced).
using EventFn = util::InplaceFunction<void(), 128>;

class EventQueue {
public:
    struct Entry {
        SimTime time = 0;
        std::uint64_t seq = 0;
        EventFn fn;
    };

    [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

    /// Earliest pending timestamp; queue must be non-empty.
    [[nodiscard]] SimTime next_time() const noexcept {
        KADSIM_ASSERT(!heap_.empty());
        return heap_.front().time;
    }

    void push(SimTime time, EventFn fn) {
        std::uint32_t slot;
        if (!free_slots_.empty()) {
            slot = free_slots_.back();
            free_slots_.pop_back();
            pool_[slot] = std::move(fn);
        } else {
            slot = static_cast<std::uint32_t>(pool_.size());
            pool_.push_back(std::move(fn));
        }
        heap_.push_back(Handle{time, next_seq_++, slot});
        sift_up(heap_.size() - 1);
    }

    /// Removes and returns the earliest event (stable tie-break by seq).
    Entry pop() {
        KADSIM_ASSERT(!heap_.empty());
        const Handle top = heap_.front();
        if (heap_.size() > 1) {
            heap_.front() = heap_.back();
            heap_.pop_back();
            sift_down(0);
        } else {
            heap_.pop_back();
        }
        Entry entry{top.time, top.seq, std::move(pool_[top.slot])};
        free_slots_.push_back(top.slot);
        return entry;
    }

    void clear() noexcept {
        heap_.clear();
        pool_.clear();
        free_slots_.clear();
    }

    /// Total events ever pushed (also the next sequence number).
    [[nodiscard]] std::uint64_t pushed() const noexcept { return next_seq_; }

private:
    /// The heap orders lightweight 16-byte handles; the (large) callables
    /// stay put in a slot pool. Sift operations therefore move handles, not
    /// 100+-byte closures (Per.14/Per.19: cheap moves on the hot path).
    struct Handle {
        SimTime time;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    [[nodiscard]] static bool before(const Handle& a, const Handle& b) noexcept {
        return a.time < b.time || (a.time == b.time && a.seq < b.seq);
    }

    void sift_up(std::size_t i) noexcept {
        const Handle item = heap_[i];
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!before(item, heap_[parent])) break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = item;
    }

    void sift_down(std::size_t i) noexcept {
        const std::size_t n = heap_.size();
        const Handle item = heap_[i];
        while (true) {
            const std::size_t left = 2 * i + 1;
            const std::size_t right = left + 1;
            std::size_t smallest = i;
            const Handle* best = &item;
            if (left < n && before(heap_[left], *best)) {
                smallest = left;
                best = &heap_[left];
            }
            if (right < n && before(heap_[right], *best)) {
                smallest = right;
                best = &heap_[right];
            }
            if (smallest == i) break;
            heap_[i] = heap_[smallest];
            i = smallest;
        }
        heap_[i] = item;
    }

    std::vector<Handle> heap_;
    std::vector<EventFn> pool_;
    std::vector<std::uint32_t> free_slots_;
    std::uint64_t next_seq_ = 0;
};

}  // namespace kadsim::sim

#endif  // KADSIM_SIM_EVENT_QUEUE_H
