#include "analysis/metrics.h"

#include <algorithm>
#include <array>
#include <exception>
#include <future>
#include <vector>

#include "analysis/structure.h"
#include "exec/thread_pool.h"
#include "flow/edge_connectivity.h"

namespace kadsim::analysis {

void EdgeConnectivityMetric::analyze(const MetricContext& context,
                                     ResilienceMetrics& out) const {
    flow::EdgeConnectivityOptions options;
    options.sample_fraction = context.sample_c;
    options.min_sources = context.min_sources;
    options.pool = context.pool;
    options.use_certificate = context.use_certificate;
    options.reuse = context.lambda_reuse;
    const flow::EdgeConnectivityResult r =
        flow::edge_connectivity(context.g, options);
    out.lambda_min = r.lambda_min;
    out.lambda_avg = r.lambda_avg;
}

void ReachabilityMetric::analyze(const MetricContext& context,
                                 ResilienceMetrics& out) const {
    const int n = context.g.vertex_count();
    if (n == 0) return;
    const SccSummary s = scc_summary(context.g);
    out.scc_count = s.count;
    out.scc_frac = static_cast<double>(s.largest) / static_cast<double>(n);
}

void CutStructureMetric::analyze(const MetricContext& context,
                                 ResilienceMetrics& out) const {
    const int n = context.g.vertex_count();
    if (n == 0) return;
    const UndirectedStructure s = undirected_structure(context.g);
    out.wcc_frac =
        static_cast<double>(s.largest_component) / static_cast<double>(n);
    out.articulation_points = static_cast<int>(s.articulation_points.size());
    out.bridges = s.bridge_count;
}

void DegreeMetric::analyze(const MetricContext& context,
                           ResilienceMetrics& out) const {
    const int n = context.g.vertex_count();
    if (n == 0) return;
    int out_min = context.g.out_degree(0);
    for (int v = 1; v < n; ++v) out_min = std::min(out_min, context.g.out_degree(v));
    const std::vector<int> in_degrees = context.g.in_degrees();
    out.out_degree_min = out_min;
    out.in_degree_min = *std::min_element(in_degrees.begin(), in_degrees.end());
}

std::span<const SnapshotMetric* const> default_metrics() {
    static const EdgeConnectivityMetric lambda;
    static const ReachabilityMetric reachability;
    static const CutStructureMetric cut_structure;
    static const DegreeMetric degree;
    // λ first: it is the expensive member, so the inline lane (the caller)
    // starts it while the cheap structural metrics ride pool tasks.
    static const std::array<const SnapshotMetric*, 4> suite{
        &lambda, &reachability, &cut_structure, &degree};
    return suite;
}

ResilienceMetrics run_metrics(std::span<const SnapshotMetric* const> suite,
                              const MetricContext& context) {
    ResilienceMetrics out;
    if (context.pool == nullptr || exec::ThreadPool::in_worker() ||
        suite.size() <= 1) {
        for (const SnapshotMetric* metric : suite) metric->analyze(context, out);
        return out;
    }
    // Fan out everything but the first metric; each task writes only the
    // fields its metric owns (see the header's determinism contract), so the
    // shared `out` needs no lock. Every submitted task must be joined before
    // this frame unwinds — collect the first error but keep waiting.
    std::vector<std::future<void>> futures;
    futures.reserve(suite.size() - 1);
    for (std::size_t i = 1; i < suite.size(); ++i) {
        futures.push_back(context.pool->submit(
            [metric = suite[i], &context, &out] { metric->analyze(context, out); }));
    }
    std::exception_ptr error;
    try {
        suite.front()->analyze(context, out);
    } catch (...) {
        error = std::current_exception();
    }
    for (auto& future : futures) {
        try {
            context.pool->wait_get(future);
        } catch (...) {
            if (!error) error = std::current_exception();
        }
    }
    if (error) std::rethrow_exception(error);
    return out;
}

ResilienceMetrics run_metrics(const MetricContext& context) {
    return run_metrics(default_metrics(), context);
}

}  // namespace kadsim::analysis
