#include "analysis/incremental.h"

#include <algorithm>

#include "util/assert.h"

namespace kadsim::analysis {

namespace detail {

namespace {

std::uint64_t pair_key(std::uint32_t src, std::uint32_t dst) {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
}

std::uint64_t edge_key(int tail, int head) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tail)) << 32) |
           static_cast<std::uint32_t>(head);
}

/// Per-thread revalidation scratch: epoch-stamped visited/blocked sets (no
/// O(n) clear per lookup) and the current entry's cut as a sorted edge-key
/// vector. Thread-local because lookups race from every flow worker.
struct LookupScratch {
    std::vector<std::uint64_t> visit_stamp;
    std::vector<std::uint64_t> block_stamp;
    std::vector<int> queue;
    std::vector<std::uint64_t> cut_edges;
    std::uint64_t epoch = 0;
};

thread_local LookupScratch tls_scratch;

}  // namespace

int PairCache::lookup(int u, int v) {
    lookups.fetch_add(1, std::memory_order_relaxed);
    const auto& addr = *id_to_addr;
    const auto it = committed.find(pair_key(addr[static_cast<std::size_t>(u)],
                                            addr[static_cast<std::size_t>(v)]));
    if (it == committed.end()) return -1;
    const Entry& entry = it->second;
    const graph::Digraph& g = *graph;
    const auto& to_id = *addr_to_id;
    // Half one — value ≥ f: every witness path must exist edge-for-edge in
    // the current graph. Interior vertices are stored as overlay addresses:
    // a departed node fails the address map, an evicted routing-table entry
    // fails has_edge. Path vertex sets are unchanged, so the paths are still
    // pairwise disjoint.
    for (std::size_t p = 0; p + 1 < entry.offsets.size(); ++p) {
        int prev = u;
        for (auto i = static_cast<std::size_t>(entry.offsets[p]);
             i < static_cast<std::size_t>(entry.offsets[p + 1]); ++i) {
            const std::uint32_t a = entry.nodes[i];
            if (a >= to_id.size() || to_id[a] < 0) return -1;
            const int w = to_id[a];
            if (!g.has_edge(prev, w)) return -1;
            prev = w;
        }
        if (!g.has_edge(prev, v)) return -1;
    }
    // Half two — value ≤ f: the stored cut must still separate u from v,
    // checked by BFS from u avoiding it. Departed cut members are skipped:
    // if fewer than f survive, the f intact disjoint paths cannot all be
    // blocked, the search reaches v, and the entry is refused — so an
    // accepted entry always has a full-strength cut behind it.
    const int n = g.vertex_count();
    LookupScratch& s = tls_scratch;
    if (s.visit_stamp.size() < static_cast<std::size_t>(n)) {
        s.visit_stamp.resize(static_cast<std::size_t>(n), 0);
        s.block_stamp.resize(static_cast<std::size_t>(n), 0);
    }
    const std::uint64_t epoch = ++s.epoch;
    if (edge_cut) {
        s.cut_edges.clear();
        KADSIM_ASSERT(entry.cut.size() % 2 == 0);
        for (std::size_t i = 0; i + 1 < entry.cut.size(); i += 2) {
            const std::uint32_t a = entry.cut[i];
            const std::uint32_t b = entry.cut[i + 1];
            if (a >= to_id.size() || to_id[a] < 0 || b >= to_id.size() ||
                to_id[b] < 0) {
                continue;  // an endpoint departed: the edge is gone anyway
            }
            s.cut_edges.push_back(edge_key(to_id[a], to_id[b]));
        }
        std::sort(s.cut_edges.begin(), s.cut_edges.end());
    } else {
        for (const std::uint32_t a : entry.cut) {
            if (a >= to_id.size() || to_id[a] < 0) continue;  // departed
            const int w = to_id[a];
            if (w == u || w == v) return -1;  // never produced by the kernels
            s.block_stamp[static_cast<std::size_t>(w)] = epoch;
        }
    }
    s.queue.clear();
    s.queue.push_back(u);
    s.visit_stamp[static_cast<std::size_t>(u)] = epoch;
    for (std::size_t head = 0; head < s.queue.size(); ++head) {
        const int x = s.queue[head];
        for (const int y : g.out(x)) {
            const auto ys = static_cast<std::size_t>(y);
            if (edge_cut) {
                if (std::binary_search(s.cut_edges.begin(), s.cut_edges.end(),
                                       edge_key(x, y))) {
                    continue;
                }
            } else if (s.block_stamp[ys] == epoch) {
                continue;
            }
            if (y == v) return -1;  // cut no longer separates: recompute
            if (s.visit_stamp[ys] == epoch) continue;
            s.visit_stamp[ys] = epoch;
            s.queue.push_back(y);
        }
    }
    hits.fetch_add(1, std::memory_order_relaxed);
    return entry.value;
}

void PairCache::store(int u, int v, int value, std::span<const int> witness,
                      std::span<const int> path_offsets,
                      std::span<const int> cut) {
    const auto& addr = *id_to_addr;
    Entry entry;
    entry.value = value;
    entry.nodes.reserve(witness.size());
    for (const int w : witness) {
        entry.nodes.push_back(addr[static_cast<std::size_t>(w)]);
    }
    entry.offsets.assign(path_offsets.begin(), path_offsets.end());
    entry.cut.reserve(cut.size());
    for (const int w : cut) {
        entry.cut.push_back(addr[static_cast<std::size_t>(w)]);
    }
    const std::uint64_t key = pair_key(addr[static_cast<std::size_t>(u)],
                                       addr[static_cast<std::size_t>(v)]);
    stores.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> guard(pending_mutex);
    pending.emplace_back(key, std::move(entry));
}

}  // namespace detail

void SnapshotDeltaCache::begin_snapshot(const graph::RoutingSnapshot& snapshot,
                                        const graph::Digraph& graph) {
    KADSIM_ASSERT(static_cast<std::size_t>(graph.vertex_count()) ==
                  snapshot.nodes.size());
    id_to_addr_.clear();
    id_to_addr_.reserve(snapshot.nodes.size());
    std::uint32_t max_addr = 0;
    for (const auto& node : snapshot.nodes) {
        id_to_addr_.push_back(node.address);
        max_addr = std::max(max_addr, node.address);
    }
    addr_to_id_.assign(static_cast<std::size_t>(max_addr) + 1, -1);
    for (std::size_t i = 0; i < id_to_addr_.size(); ++i) {
        addr_to_id_[id_to_addr_[i]] = static_cast<std::int32_t>(i);
    }
    kappa_.graph = &graph;
    lambda_.graph = &graph;
    bind(kappa_);
    bind(lambda_);

    // Drop entries whose endpoints left the network — they can never
    // revalidate again, and pruning here keeps the store proportional to
    // the live pair sample instead of growing with total churn.
    for (auto* cache : {&kappa_, &lambda_}) {
        std::erase_if(cache->committed, [this](const auto& kv) {
            const auto src = static_cast<std::uint32_t>(kv.first >> 32);
            const auto dst = static_cast<std::uint32_t>(kv.first);
            return src >= addr_to_id_.size() || addr_to_id_[src] < 0 ||
                   dst >= addr_to_id_.size() || addr_to_id_[dst] < 0;
        });
    }
}

void SnapshotDeltaCache::end_snapshot() {
    for (auto* cache : {&kappa_, &lambda_}) {
        // No lock needed: the sweeps have joined before end_snapshot.
        for (auto& [key, entry] : cache->pending) {
            cache->committed[key] = std::move(entry);
        }
        cache->pending.clear();
    }
}

void SnapshotDeltaCache::bind(detail::PairCache& cache) const {
    cache.id_to_addr = &id_to_addr_;
    cache.addr_to_id = &addr_to_id_;
}

DeltaStats SnapshotDeltaCache::stats_of(const detail::PairCache& cache) {
    DeltaStats stats;
    stats.lookups = cache.lookups.load(std::memory_order_relaxed);
    stats.hits = cache.hits.load(std::memory_order_relaxed);
    stats.stores = cache.stores.load(std::memory_order_relaxed);
    stats.entries = cache.committed.size();
    return stats;
}

DeltaStats SnapshotDeltaCache::kappa_stats() const { return stats_of(kappa_); }
DeltaStats SnapshotDeltaCache::lambda_stats() const { return stats_of(lambda_); }

}  // namespace kadsim::analysis
