// Structural decomposition of a routing-graph snapshot: the reachability and
// cut-structure measures behind the analysis metrics (cf. Ferretti 2013,
// which evaluates overlays via component structure rather than κ alone).
//
// Strong structure (largest SCC) is read off the digraph directly; weak
// structure (components, articulation points, bridges) is defined on the
// undirected projection — the simple graph with an edge {u,v} iff u→v or
// v→u exists — because a single-vertex or single-link failure severs the
// overlay exactly when it separates that projection.
#ifndef KADSIM_ANALYSIS_STRUCTURE_H
#define KADSIM_ANALYSIS_STRUCTURE_H

#include <vector>

#include "graph/digraph.h"

namespace kadsim::analysis {

/// Weak (undirected-projection) structure of a digraph.
struct UndirectedStructure {
    int components = 0;         ///< weakly connected components
    int largest_component = 0;  ///< vertices in the largest one
    /// Vertices whose removal increases the component count, ascending.
    std::vector<int> articulation_points;
    /// Projection edges whose removal increases the component count.
    int bridge_count = 0;
};

/// One iterative Tarjan DFS over the undirected projection computing
/// components, the largest component, articulation points and bridges.
[[nodiscard]] UndirectedStructure undirected_structure(const graph::Digraph& g);

/// Strong structure, from one Tarjan pass.
struct SccSummary {
    int count = 0;    ///< strongly connected components
    int largest = 0;  ///< vertices in the largest one (0 for an empty graph)
};

[[nodiscard]] SccSummary scc_summary(const graph::Digraph& g);

/// Vertices of the largest strongly connected component (0 for an empty
/// graph); the strong-reachability numerator. Test/oracle convenience over
/// scc_summary().
[[nodiscard]] inline int largest_scc_size(const graph::Digraph& g) {
    return scc_summary(g).largest;
}

}  // namespace kadsim::analysis

#endif  // KADSIM_ANALYSIS_STRUCTURE_H
