#include "analysis/structure.h"

#include <algorithm>

#include "util/assert.h"

namespace kadsim::analysis {

namespace {

/// The undirected projection as a finalized Digraph: both orientations of
/// every edge (finalize() deduplicates, so a reciprocated pair collapses to
/// one edge per direction and the projection is simple).
graph::Digraph undirected_projection(const graph::Digraph& g) {
    graph::Digraph und(g.vertex_count());
    for (int u = 0; u < g.vertex_count(); ++u) {
        for (const int v : g.out(u)) {
            und.add_edge(u, v);
            und.add_edge(v, u);
        }
    }
    und.finalize();
    return und;
}

}  // namespace

UndirectedStructure undirected_structure(const graph::Digraph& g) {
    UndirectedStructure result;
    const int n = g.vertex_count();
    if (n == 0) return result;
    const graph::Digraph und = undirected_projection(g);

    std::vector<int> disc(static_cast<std::size_t>(n), -1);
    std::vector<int> low(static_cast<std::size_t>(n), 0);
    std::vector<char> is_articulation(static_cast<std::size_t>(n), 0);
    int timer = 0;

    // Explicit DFS stack: (vertex, DFS-tree parent, next-neighbour position).
    // The projection is simple, so skipping the parent vertex (rather than
    // one parent *edge*) is the correct tree-edge exclusion.
    struct Frame {
        int v;
        int parent;
        std::size_t next;
    };
    std::vector<Frame> dfs;

    for (int root = 0; root < n; ++root) {
        if (disc[static_cast<std::size_t>(root)] != -1) continue;
        ++result.components;
        const int discovered_before = timer;
        int root_children = 0;
        disc[static_cast<std::size_t>(root)] = low[static_cast<std::size_t>(root)] =
            timer++;
        dfs.push_back(Frame{root, -1, 0});
        while (!dfs.empty()) {
            Frame& frame = dfs.back();
            const auto vs = static_cast<std::size_t>(frame.v);
            const auto out = und.out(frame.v);
            if (frame.next < out.size()) {
                const int w = out[frame.next++];
                if (w == frame.parent) continue;
                const auto ws = static_cast<std::size_t>(w);
                if (disc[ws] == -1) {
                    if (frame.v == root) ++root_children;
                    disc[ws] = low[ws] = timer++;
                    dfs.push_back(Frame{w, frame.v, 0});
                } else {
                    low[vs] = std::min(low[vs], disc[ws]);
                }
            } else {
                const int parent = frame.parent;
                dfs.pop_back();
                if (parent == -1) continue;
                const auto ps = static_cast<std::size_t>(parent);
                low[ps] = std::min(low[ps], low[vs]);
                // Tree edge (parent, v): bridge iff no back-edge from v's
                // subtree climbs above v; articulation iff none climbs above
                // parent (the root is handled by its child count instead).
                if (low[vs] > disc[ps]) ++result.bridge_count;
                if (parent != root && low[vs] >= disc[ps]) is_articulation[ps] = 1;
            }
        }
        if (root_children >= 2) is_articulation[static_cast<std::size_t>(root)] = 1;
        result.largest_component =
            std::max(result.largest_component, timer - discovered_before);
    }
    for (int v = 0; v < n; ++v) {
        if (is_articulation[static_cast<std::size_t>(v)] != 0) {
            result.articulation_points.push_back(v);
        }
    }
    return result;
}

SccSummary scc_summary(const graph::Digraph& g) {
    if (g.vertex_count() == 0) return {};
    std::vector<int> component_ids;
    const int components = graph::strongly_connected_components(g, &component_ids);
    std::vector<int> sizes(static_cast<std::size_t>(components), 0);
    for (const int id : component_ids) ++sizes[static_cast<std::size_t>(id)];
    return {components, *std::max_element(sizes.begin(), sizes.end())};
}

}  // namespace kadsim::analysis
