// Snapshot-delta analysis: cross-snapshot reuse of settled κ/λ pairs.
//
// Consecutive routing snapshots of a churning overlay differ in a handful
// of nodes, yet the full sweep re-pays every sampled max flow. This cache
// closes that gap with *witness revalidation* instead of dependency
// tracking: every pair the kernels settle is stored — keyed by the
// endpoints' stable overlay addresses — together with a two-sided witness
// (pair_reuse.h): f disjoint paths proving value ≥ f and a size-f cut
// proving value ≤ f. On a later snapshot the pair is reused iff every
// witness path still exists edge-for-edge AND the cut still separates the
// endpoints — both checked against the *current* graph, so a hit re-proves
// value = f outright, independent of how the degree bounds have drifted
// since the value was computed. Churn inside either witness half — a
// departed node, a dropped routing-table edge, a fresh edge that routes
// around the cut — fails revalidation and forces a recompute. Reuse can
// therefore never change a reported value, only skip work; the delta-on
// and delta-off series are bit-identical by construction, and
// tests/test_incremental_analysis.cpp pins exactly that.
//
// Lifecycle per snapshot (single analysis in flight at a time):
//
//   cache.begin_snapshot(snapshot, graph);   // rebind address maps, prune
//   κ-sweep with options.reuse = cache.kappa_hook();   // workers race here
//   λ-sweep with options.reuse = cache.lambda_hook();  // concurrently: fine
//   cache.end_snapshot();                    // commit this sweep's stores
//
// During the sweeps, lookups read only the committed (frozen) store and
// stores append to a mutex-guarded pending buffer, so concurrent workers —
// and the κ and λ sweeps overlapping — never observe each other's stores:
// results stay bit-identical for any thread count.
#ifndef KADSIM_ANALYSIS_INCREMENTAL_H
#define KADSIM_ANALYSIS_INCREMENTAL_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "flow/pair_reuse.h"
#include "graph/digraph.h"
#include "graph/snapshot.h"

namespace kadsim::analysis {

/// Cumulative reuse accounting across the cache's lifetime.
struct DeltaStats {
    std::uint64_t lookups = 0;   ///< pairs offered for reuse
    std::uint64_t hits = 0;      ///< pairs settled from a stored witness
    std::uint64_t stores = 0;    ///< settled pairs recorded
    std::uint64_t entries = 0;   ///< live committed entries right now
};

class SnapshotDeltaCache;

namespace detail {

/// One connectivity metric's witness store (κ and λ have independent
/// witness semantics, so the delta cache owns one of these per metric).
class PairCache final : public flow::PairReuseHook {
public:
    [[nodiscard]] int lookup(int u, int v) override;
    void store(int u, int v, int value, std::span<const int> witness,
               std::span<const int> path_offsets,
               std::span<const int> cut) override;

private:
    friend class ::kadsim::analysis::SnapshotDeltaCache;

    struct Entry {
        int value = 0;
        /// Interior vertices of every witness path, as overlay addresses,
        /// delimited by `offsets` (pair_reuse.h layout).
        std::vector<std::uint32_t> nodes;
        std::vector<std::int32_t> offsets;
        /// The separating set, as overlay addresses: `value` vertices (κ)
        /// or `value` flattened (tail, head) pairs (λ).
        std::vector<std::uint32_t> cut;
    };

    /// λ cuts are edge lists ((tail, head) address pairs), κ cuts vertex
    /// lists; set once by SnapshotDeltaCache.
    bool edge_cut = false;

    // Sweep-frozen context, rebound by SnapshotDeltaCache::begin_snapshot.
    const graph::Digraph* graph = nullptr;
    const std::vector<std::uint32_t>* id_to_addr = nullptr;
    const std::vector<std::int32_t>* addr_to_id = nullptr;

    std::unordered_map<std::uint64_t, Entry> committed;
    std::mutex pending_mutex;
    std::vector<std::pair<std::uint64_t, Entry>> pending;  // guarded by mutex
    std::atomic<std::uint64_t> lookups{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> stores{0};
};

}  // namespace detail

class SnapshotDeltaCache {
public:
    SnapshotDeltaCache() { lambda_.edge_cut = true; }

    /// Rebinds the cache to the next snapshot in the series: `graph` must be
    /// `snapshot.to_digraph()` (vertex i ⇔ snapshot.nodes[i]), and must stay
    /// alive until end_snapshot(). Prunes committed entries whose endpoints
    /// left the network. Snapshots must be presented in series order — that
    /// is what makes the reuse rate track the inter-snapshot churn.
    void begin_snapshot(const graph::RoutingSnapshot& snapshot,
                        const graph::Digraph& graph);

    /// Reuse hooks for the κ / λ kernels of the current snapshot. Valid
    /// between begin_snapshot and end_snapshot; both may be used
    /// concurrently.
    [[nodiscard]] flow::PairReuseHook* kappa_hook() { return &kappa_; }
    [[nodiscard]] flow::PairReuseHook* lambda_hook() { return &lambda_; }

    /// Commits this snapshot's stores so the *next* snapshot can reuse them.
    void end_snapshot();

    [[nodiscard]] DeltaStats kappa_stats() const;
    [[nodiscard]] DeltaStats lambda_stats() const;

private:
    void bind(detail::PairCache& cache) const;
    [[nodiscard]] static DeltaStats stats_of(const detail::PairCache& cache);

    detail::PairCache kappa_;
    detail::PairCache lambda_;
    std::vector<std::uint32_t> id_to_addr_;
    std::vector<std::int32_t> addr_to_id_;  // -1 = not live in this snapshot
};

}  // namespace kadsim::analysis

#endif  // KADSIM_ANALYSIS_INCREMENTAL_H
