// Multi-metric resilience analysis of one routing-graph snapshot.
//
// The paper measures resilience solely as vertex connectivity κ; this layer
// adds the richer structural measures its framing (and the companion CPS
// study, plus Ferretti 2013) motivates: sampled edge connectivity λ,
// strong/weak reachability fractions, articulation points and bridges, and
// degree summaries. Each measure is a SnapshotMetric; the suite runs
// per-snapshot on the shared exec::ThreadPool alongside the κ computation,
// and core::ConnectivityAnalyzer folds the results into ResilienceSample.
//
// Determinism contract: a metric is a pure function of the snapshot graph —
// no RNG, no shared mutable state — and writes only the ResilienceMetrics
// fields it owns, so the suite may fan out across threads (each field is
// written by exactly one task) and every value is bit-identical for any
// thread count.
#ifndef KADSIM_ANALYSIS_METRICS_H
#define KADSIM_ANALYSIS_METRICS_H

#include <cstdint>
#include <span>

#include "graph/digraph.h"

namespace kadsim::exec {
class ThreadPool;
}  // namespace kadsim::exec

namespace kadsim::flow {
class PairReuseHook;
}  // namespace kadsim::flow

namespace kadsim::analysis {

/// What a metric sees: the snapshot's connectivity graph plus the sampling
/// parameters and execution pool the κ analysis uses (metrics that sample
/// pairs, like λ, follow the same §5.2 source reduction).
struct MetricContext {
    const graph::Digraph& g;
    double sample_c = 1.0;
    int min_sources = 1;
    exec::ThreadPool* pool = nullptr;
    /// Preprocess flow-metric graphs with the Nagamochi–Ibaraki sparse
    /// certificate (graph/certificate.h); values are unchanged.
    bool use_certificate = false;
    /// Cross-snapshot λ reuse hook (analysis/incremental.h), or nullptr.
    /// Only EdgeConnectivityMetric consumes it; not owned.
    flow::PairReuseHook* lambda_reuse = nullptr;
};

/// The metric values of one snapshot (the non-κ half of ResilienceSample).
struct ResilienceMetrics {
    int lambda_min = 0;        ///< sampled edge connectivity λ(D)
    double lambda_avg = 0.0;   ///< mean λ(u,v) over sampled pairs
    int scc_count = 1;         ///< strongly connected components (1 ⇔ κ>0)
    double scc_frac = 0.0;     ///< largest SCC share of live nodes (strong)
    double wcc_frac = 0.0;     ///< largest weak component share (weak)
    int articulation_points = 0;  ///< single-vertex weak cut points
    int bridges = 0;              ///< single-link weak cut edges
    int out_degree_min = 0;
    int in_degree_min = 0;
};

/// One resilience measure over a snapshot graph. Implementations must be
/// stateless (analyze is called concurrently from many threads) and must
/// write only the ResilienceMetrics fields they own — see the determinism
/// contract in the file comment.
class SnapshotMetric {
public:
    virtual ~SnapshotMetric() = default;
    [[nodiscard]] virtual const char* name() const noexcept = 0;
    virtual void analyze(const MetricContext& context,
                         ResilienceMetrics& out) const = 0;
};

/// Sampled edge connectivity λ: unit-capacity max-flow per pair on the raw
/// CSR digraph (no vertex split), c·n smallest-out-degree sources × all
/// sinks, degree-capped Dinic on a touched-arc-reset workspace
/// (flow/edge_connectivity.h). Owns lambda_min / lambda_avg.
class EdgeConnectivityMetric final : public SnapshotMetric {
public:
    [[nodiscard]] const char* name() const noexcept override { return "lambda"; }
    void analyze(const MetricContext& context, ResilienceMetrics& out) const override;
};

/// Strong reachability: SCC count and the fraction of live nodes inside the
/// largest SCC, one Tarjan pass (analysis/structure.h). Owns scc_count /
/// scc_frac.
class ReachabilityMetric final : public SnapshotMetric {
public:
    [[nodiscard]] const char* name() const noexcept override { return "reachability"; }
    void analyze(const MetricContext& context, ResilienceMetrics& out) const override;
};

/// Weak structure of the undirected projection, one iterative Tarjan DFS
/// (analysis/structure.h): the largest weak-component share plus the cut
/// structure. Owns wcc_frac / articulation_points / bridges.
class CutStructureMetric final : public SnapshotMetric {
public:
    [[nodiscard]] const char* name() const noexcept override { return "cut-structure"; }
    void analyze(const MetricContext& context, ResilienceMetrics& out) const override;
};

/// Degree floor: minimum out-/in-degree, the upper bounds of the κ ≤ λ ≤
/// δ_min chain (the κ-gap is derived by the analyzer once κ is known). Owns
/// out_degree_min / in_degree_min.
class DegreeMetric final : public SnapshotMetric {
public:
    [[nodiscard]] const char* name() const noexcept override { return "degree"; }
    void analyze(const MetricContext& context, ResilienceMetrics& out) const override;
};

/// The default suite: every metric above, as shared stateless instances.
[[nodiscard]] std::span<const SnapshotMetric* const> default_metrics();

/// Runs every metric of `suite` on one snapshot. With a pool (and outside a
/// pool worker) metrics run as concurrent tasks; results are bit-identical
/// either way. Metrics writing disjoint fields of one shared struct is what
/// makes the concurrent fan-out race-free.
[[nodiscard]] ResilienceMetrics run_metrics(
    std::span<const SnapshotMetric* const> suite, const MetricContext& context);

/// run_metrics over default_metrics().
[[nodiscard]] ResilienceMetrics run_metrics(const MetricContext& context);

}  // namespace kadsim::analysis

#endif  // KADSIM_ANALYSIS_METRICS_H
