// Message-loss model (paper §5.3, Table 1).
//
// The paper defines four scenarios by the probability that a two-way
// request/response exchange fails, and derives the per-message (one-way)
// probability from it: (1 - p1)^2 = 1 - p2, i.e. p1 = 1 - sqrt(1 - p2).
//
//   none:   p1 = 0.0%    p2 = 0%
//   low:    p1 = 2.5%    p2 = 5%
//   medium: p1 = 13.4%   p2 = 25%
//   high:   p1 = 29.3%   p2 = 50%
//
// Loss is applied independently per one-way transmission, which reproduces
// the two-way probabilities exactly for request/response pairs.
#ifndef KADSIM_NET_LOSS_H
#define KADSIM_NET_LOSS_H

#include <cmath>
#include <string_view>

#include "util/assert.h"

namespace kadsim::net {

enum class LossLevel { kNone, kLow, kMedium, kHigh };

struct LossModel {
    double p_one_way = 0.0;

    /// Builds from a two-way failure probability (Table 1 parameterization).
    static LossModel from_two_way(double p_two_way) noexcept {
        KADSIM_ASSERT(p_two_way >= 0.0 && p_two_way < 1.0);
        LossModel m;
        m.p_one_way = 1.0 - std::sqrt(1.0 - p_two_way);
        return m;
    }

    static LossModel from_level(LossLevel level) noexcept {
        switch (level) {
            case LossLevel::kNone: return from_two_way(0.00);
            case LossLevel::kLow: return from_two_way(0.05);
            case LossLevel::kMedium: return from_two_way(0.25);
            case LossLevel::kHigh: return from_two_way(0.50);
        }
        KADSIM_ASSERT_MSG(false, "unknown loss level");
        return {};
    }

    [[nodiscard]] constexpr double p_two_way() const noexcept {
        return 1.0 - (1.0 - p_one_way) * (1.0 - p_one_way);
    }
};

constexpr std::string_view to_string(LossLevel level) noexcept {
    switch (level) {
        case LossLevel::kNone: return "none";
        case LossLevel::kLow: return "low";
        case LossLevel::kMedium: return "medium";
        case LossLevel::kHigh: return "high";
    }
    return "?";
}

}  // namespace kadsim::net

#endif  // KADSIM_NET_LOSS_H
