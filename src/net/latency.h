// One-way message latency model. The paper (like PeerSim configurations)
// treats latency as a uniform random transport delay; the exact bounds only
// matter relative to the RPC timeout, which is configured well above 2×max.
#ifndef KADSIM_NET_LATENCY_H
#define KADSIM_NET_LATENCY_H

#include "sim/time.h"
#include "util/assert.h"
#include "util/rng.h"

namespace kadsim::net {

struct LatencyModel {
    sim::SimTime min_delay = 10 * sim::kMillisecond;
    sim::SimTime max_delay = 100 * sim::kMillisecond;

    [[nodiscard]] sim::SimTime sample(util::Rng& rng) const noexcept {
        KADSIM_ASSERT(min_delay >= 0 && min_delay <= max_delay);
        if (min_delay == max_delay) return min_delay;
        return min_delay +
               static_cast<sim::SimTime>(rng.next_below(
                   static_cast<std::uint64_t>(max_delay - min_delay + 1)));
    }
};

}  // namespace kadsim::net

#endif  // KADSIM_NET_LATENCY_H
