// Unreliable datagram network between simulated nodes.
//
// Responsibilities (the PeerSim-transport equivalent):
//   * per-message uniform latency,
//   * independent one-way loss (Table 1 model),
//   * liveness: messages to a crashed endpoint vanish (the sender only learns
//     via its own RPC timeout, exactly like UDP),
//   * message accounting for the metrics module.
//
// The payload is a closure built by the sending protocol instance; the
// network checks destination liveness at delivery time, so a node crashing
// while a message is in flight drops it — message reordering and loss
// semantics match an asynchronous fail-stop system model (paper §3).
#ifndef KADSIM_NET_NETWORK_H
#define KADSIM_NET_NETWORK_H

#include <cstdint>
#include <vector>

#include "net/latency.h"
#include "net/loss.h"
#include "sim/simulator.h"
#include "util/assert.h"
#include "util/inplace_function.h"

namespace kadsim::net {

/// Dense endpoint index; addresses are never reused within a simulation.
using Address = std::uint32_t;

/// Delivery closure: runs at the receiver when the message arrives.
using DeliverFn = util::InplaceFunction<void(), 80>;

struct NetworkCounters {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped_loss = 0;
    std::uint64_t dropped_dead = 0;
};

class Network {
public:
    Network(sim::Simulator& sim, LatencyModel latency, LossModel loss)
        : sim_(sim), latency_(latency), loss_(loss), rng_(sim.split_rng()) {}

    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;

    /// Registers a new endpoint (initially up) and returns its address.
    Address register_endpoint() {
        up_.push_back(true);
        return static_cast<Address>(up_.size() - 1);
    }

    void set_up(Address a, bool up) noexcept {
        KADSIM_ASSERT(a < up_.size());
        up_[a] = up;
    }

    [[nodiscard]] bool is_up(Address a) const noexcept {
        return a < up_.size() && up_[a];
    }

    /// Sends a one-way message from src to dst. The closure runs at delivery
    /// time iff the message survives loss and dst is still up; otherwise it is
    /// destroyed unexecuted (fire-and-forget, like UDP).
    void transmit(Address src, Address dst, DeliverFn deliver) {
        ++counters_.sent;
        if (!is_up(src)) {  // a crashed node cannot send
            ++counters_.dropped_dead;
            return;
        }
        if (loss_.p_one_way > 0.0 && rng_.next_bool(loss_.p_one_way)) {
            ++counters_.dropped_loss;
            return;
        }
        const sim::SimTime delay = latency_.sample(rng_);
        sim_.schedule_in(delay, [this, dst, fn = std::move(deliver)]() mutable {
            if (!is_up(dst)) {
                ++counters_.dropped_dead;
                return;
            }
            ++counters_.delivered;
            fn();
        });
    }

    [[nodiscard]] const NetworkCounters& counters() const noexcept { return counters_; }
    [[nodiscard]] const LossModel& loss() const noexcept { return loss_; }
    [[nodiscard]] std::size_t endpoint_count() const noexcept { return up_.size(); }

    /// Swaps the loss model mid-simulation (failure injection / recovery
    /// experiments). Messages already in flight are unaffected.
    void set_loss(LossModel loss) noexcept { loss_ = loss; }

private:
    sim::Simulator& sim_;
    LatencyModel latency_;
    LossModel loss_;
    util::Rng rng_;
    std::vector<bool> up_;
    NetworkCounters counters_;
};

}  // namespace kadsim::net

#endif  // KADSIM_NET_NETWORK_H
