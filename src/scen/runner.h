// Scenario runner: builds the network, drives bootstrap, faults and traffic,
// and exposes routing-table snapshots at chosen instants (paper §5.2–§5.4).
//
// Membership dynamics are delegated to a pluggable fault::FaultModel: at
// every fault-phase minute boundary the runner asks the model for this
// minute's removal/arrival instants, and at each fired removal instant for
// the victims — the runner itself never decides who leaves.
#ifndef KADSIM_SCEN_RUNNER_H
#define KADSIM_SCEN_RUNNER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fault/fault_model.h"
#include "graph/snapshot.h"
#include "kad/directory.h"
#include "kad/node.h"
#include "net/network.h"
#include "scen/scenario.h"
#include "sim/periodic.h"
#include "sim/simulator.h"
#include "stats/timeseries.h"

namespace kadsim::scen {

/// Aggregated engine/protocol counters at a point in time.
struct RunnerTotals {
    kad::NodeCounters protocol;
    net::NetworkCounters network;
    std::uint64_t joins = 0;
    std::uint64_t crashes = 0;
    std::uint64_t events_executed = 0;
};

class Runner final : public kad::NodeDirectory {
public:
    explicit Runner(ScenarioConfig config);
    ~Runner() override;

    Runner(const Runner&) = delete;
    Runner& operator=(const Runner&) = delete;

    /// Advances simulated time to `t` (processing all events up to it).
    void step_to(sim::SimTime t);

    /// Convenience driver: runs to config.phases.end, invoking `on_snapshot`
    /// every `snapshot_interval` (first snapshot at t = snapshot_interval).
    void run(sim::SimTime snapshot_interval,
             const std::function<void(const graph::RoutingSnapshot&)>& on_snapshot);

    /// Routing tables of all live nodes, as a connectivity-graph source.
    [[nodiscard]] graph::RoutingSnapshot snapshot() const;

    [[nodiscard]] int live_count() const noexcept {
        return static_cast<int>(live_.size());
    }
    [[nodiscard]] const std::vector<net::Address>& live_addresses() const noexcept {
        return live_;
    }

    [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
    [[nodiscard]] const ScenarioConfig& config() const noexcept { return config_; }
    [[nodiscard]] net::Network& network() noexcept { return net_; }

    /// Per-minute network-size series (paper figures' right-hand axis).
    [[nodiscard]] const stats::TimeSeries& size_series() const noexcept {
        return size_series_;
    }

    [[nodiscard]] RunnerTotals totals() const;

    /// kad::NodeDirectory: address → protocol instance (shells persist after
    /// crash so in-flight closures stay valid).
    [[nodiscard]] kad::KademliaNode* node_at(net::Address address) noexcept override;

    /// Direct node access for tests/examples.
    [[nodiscard]] const kad::KademliaNode* node(net::Address address) const;
    [[nodiscard]] kad::KademliaNode* node(net::Address address);

    /// Ids of all data objects disseminated so far (bounded registry).
    [[nodiscard]] const std::vector<kad::NodeId>& data_registry() const noexcept {
        return data_registry_;
    }

private:
    class FaultViewImpl;

    void schedule_initial_joins();
    void start_periodic_tasks();
    void traffic_tick();
    void fault_tick();
    void add_node();
    void execute_removals();
    void remove_node(net::Address address);
    void issue_lookup(net::Address address);
    void issue_dissemination(net::Address address);
    [[nodiscard]] kad::NodeId next_data_id();
    [[nodiscard]] kad::NodeId node_id_for(net::Address address) const;

    ScenarioConfig config_;
    sim::Simulator sim_;
    net::Network net_;
    util::Rng rng_;
    std::unique_ptr<fault::FaultModel> fault_;
    std::vector<std::unique_ptr<kad::KademliaNode>> nodes_;  // by address
    std::vector<net::Address> live_;
    std::vector<std::uint32_t> live_pos_;  // address → index into live_
    std::vector<kad::NodeId> data_registry_;
    std::uint64_t data_counter_ = 0;
    std::uint64_t joins_ = 0;
    std::uint64_t crashes_ = 0;
    stats::TimeSeries size_series_;
    std::unique_ptr<sim::PeriodicTask> minute_task_;
};

}  // namespace kadsim::scen

#endif  // KADSIM_SCEN_RUNNER_H
