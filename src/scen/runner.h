// Scenario runner: builds the network, drives bootstrap, faults and traffic,
// and exposes routing-table snapshots at chosen instants (paper §5.2–§5.4).
//
// Membership dynamics are delegated to a pluggable fault::FaultModel: at
// every fault-phase minute boundary the runner asks the model for this
// minute's removal/arrival instants, and at each fired removal instant for
// the victims — the runner itself never decides who leaves.
//
// Region sharding (million-node runs): with config.regions = R the id space
// is partitioned into R independent overlays ("regions"), each with its own
// simulator, network, RNG streams, fault model and node arena. A node's
// global address is local_address * R + region; everything a caller sees —
// snapshots, live lists, fault views — speaks global addresses, while the
// protocol hot path stays region-local. Regions share no mutable state, so
// step_to() can advance them concurrently on an exec::ThreadPool; results
// are merged in fixed region order and are byte-identical for any thread
// count. R = 1 reproduces the unsharded runner bit-for-bit (pinned by
// tests/test_fault_equivalence.cpp).
#ifndef KADSIM_SCEN_RUNNER_H
#define KADSIM_SCEN_RUNNER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/snapshot.h"
#include "kad/node.h"
#include "net/network.h"
#include "scen/scenario.h"
#include "sim/simulator.h"
#include "stats/histogram.h"
#include "stats/timeseries.h"

namespace kadsim::exec {
class ThreadPool;
}

namespace kadsim::scen {

/// Aggregated engine/protocol counters at a point in time.
struct RunnerTotals {
    kad::NodeCounters protocol;
    net::NetworkCounters network;
    std::uint64_t joins = 0;
    std::uint64_t crashes = 0;
    std::uint64_t events_executed = 0;
};

class Runner final {
public:
    explicit Runner(ScenarioConfig config);
    ~Runner();

    Runner(const Runner&) = delete;
    Runner& operator=(const Runner&) = delete;

    /// Advances simulated time to `t` in every region (concurrently when
    /// sharded; see file doc for the determinism contract).
    void step_to(sim::SimTime t);

    /// Convenience driver: runs to config.phases.end, invoking `on_snapshot`
    /// every `snapshot_interval` (first snapshot at t = snapshot_interval).
    /// Each delivered snapshot additionally carries the interval's lookup
    /// traffic (diff of the cumulative per-region tallies) and — when
    /// config.traffic.probes_per_snapshot > 0 — a fresh probe wave.
    void run(sim::SimTime snapshot_interval,
             const std::function<void(const graph::RoutingSnapshot&)>& on_snapshot);

    /// Routing tables of all live nodes (global addresses), regions merged
    /// in region order — a connectivity-graph source.
    [[nodiscard]] graph::RoutingSnapshot snapshot() const;

    /// In-place variant of snapshot(): refills `out`'s flat CSR slab (plus
    /// the time/removed companions; lookups/probes reset) reusing its
    /// buffers. A warm buffer is refilled with zero heap allocations — the
    /// million-node capture path (per-region counting pass over the bucket
    /// occupancy, then a concurrent disjoint-slice fill when sharded; bytes
    /// are identical for any shard_threads value).
    void capture(graph::RoutingSnapshot& out) const;

    /// Cumulative wall-clock microseconds spent capturing snapshots
    /// (capture()/snapshot()/run(), including the lazy fault-view captures) —
    /// the bench JSON's snapshot_capture_us counter.
    [[nodiscard]] std::uint64_t snapshot_capture_us() const noexcept;

    [[nodiscard]] int live_count() const noexcept;

    /// Live global addresses, regions concatenated in region order.
    [[nodiscard]] const std::vector<net::Address>& live_addresses() const;

    /// Region 0's simulator/network — the whole engine for unsharded runs
    /// (tests drive the virtual clock through these).
    [[nodiscard]] sim::Simulator& simulator() noexcept;
    [[nodiscard]] net::Network& network() noexcept;

    [[nodiscard]] const ScenarioConfig& config() const noexcept { return config_; }

    /// Per-minute network-size series (paper figures' right-hand axis);
    /// sharded runs sum the per-region sizes minute by minute.
    [[nodiscard]] const stats::TimeSeries& size_series() const;

    [[nodiscard]] RunnerTotals totals() const;

    /// Global address → protocol instance (shells persist after crash so
    /// in-flight closures stay valid); nullptr when never assigned.
    [[nodiscard]] kad::KademliaNode* node_at(net::Address address) noexcept;

    /// Direct node access for tests/examples (global address).
    [[nodiscard]] const kad::KademliaNode* node(net::Address address) const;
    [[nodiscard]] kad::KademliaNode* node(net::Address address);

    /// Ids of all data objects disseminated so far (bounded registry),
    /// regions concatenated in region order.
    [[nodiscard]] const std::vector<kad::NodeId>& data_registry() const;

    /// Resident footprint of all node arenas (bench counter). O(n).
    [[nodiscard]] std::uint64_t arena_memory_bytes() const noexcept;

    /// Resident footprint of all event queues (bench counter).
    [[nodiscard]] std::uint64_t queue_memory_bytes() const noexcept;

    /// Resident footprint of the lookup arenas (in-flight lookup slots plus
    /// the probe scratch arenas; bench counter).
    [[nodiscard]] std::uint64_t lookup_arena_bytes() const noexcept;

    /// Cumulative measured-lookup metrics, regions merged in fixed region
    /// order (idempotent — run() turns consecutive values into per-interval
    /// diffs for the snapshot it delivers).
    [[nodiscard]] stats::LookupTraffic lookup_traffic() const;

    /// Runs `per_region` side-effect-free lookup probes in every region
    /// (concurrently when sharded) and merges the results in fixed region
    /// order. Probes walk the live routing tables synchronously with an RNG
    /// derived from (region seed, current instant) — simulator state, node
    /// tables and the simulation RNG streams are never touched, so replay
    /// determinism is preserved exactly. `verify_truth = false` skips the
    /// per-probe O(live) ground-truth scan (throughput benches: success then
    /// means "walk terminated with a confirmed shortlist"); the walk and hop
    /// counts are identical either way.
    [[nodiscard]] stats::ProbeStats run_lookup_probes(int per_region,
                                                      bool verify_truth = true);

private:
    class Region;

    ScenarioConfig config_;
    std::vector<std::unique_ptr<Region>> regions_;
    std::unique_ptr<exec::ThreadPool> pool_;
    // Merged views, rebuilt on demand for sharded runs (R = 1 returns region
    // 0's storage directly, no copy).
    mutable std::vector<net::Address> live_cache_;
    mutable std::vector<kad::NodeId> registry_cache_;
    mutable stats::TimeSeries series_cache_;
    // Reusable capture state: per-region slab bases (prefix sums over region
    // node/contact counts) and the cumulative capture-time counter.
    mutable std::vector<std::size_t> capture_node_base_;
    mutable std::vector<std::size_t> capture_contact_base_;
    mutable std::uint64_t capture_us_ = 0;
};

}  // namespace kadsim::scen

#endif  // KADSIM_SCEN_RUNNER_H
