#include "scen/runner.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <thread>

#include "exec/thread_pool.h"
#include "fault/fault_model.h"
#include "kad/node_arena.h"
#include "sim/periodic.h"
#include "util/logging.h"

namespace kadsim::scen {

namespace {
constexpr std::uint32_t kNoLivePos = 0xFFFFFFFFu;
/// Bounded data-object registry: lookups draw targets from the most recent
/// disseminations (older objects have expired from node storage anyway).
constexpr std::size_t kDataRegistryCap = 4096;

/// Seed for region r. Region 0 keeps the scenario seed unchanged — that is
/// what makes regions = 1 replay the unsharded engine bit-for-bit; the
/// golden-ratio mix gives the other regions decorrelated streams.
std::uint64_t region_seed(std::uint64_t seed, int region) {
    if (region == 0) return seed;
    return seed ^ (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(region));
}
}  // namespace

/// One shard of the id space: a complete, self-contained overlay simulation
/// (own clock, network, arena, RNG streams, fault model). For regions = 1
/// this is exactly the pre-sharding Runner. Regions never touch each other's
/// state; the owning Runner merges their outputs in region order.
class Runner::Region {
public:
    Region(const ScenarioConfig& config, int index, int count)
        : config_(config),
          index_(index),
          count_(count),
          sim_(region_seed(config.seed, index)),
          net_(sim_, config.latency, net::LossModel::from_level(config.loss)),
          rng_(sim_.split_rng()),
          fault_(fault::make_fault_model(config.fault)),
          arena_(config.kad, sim_, net_),
          probe_arena_(kad::LookupArena::Params{
              config.kad.k, config.kad.alpha, 0, config.kad.lookup_boost}) {
        schedule_initial_joins();
        start_periodic_tasks();
    }

    void step_to(sim::SimTime t) { sim_.run_until(t); }

    [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
    [[nodiscard]] net::Network& net() noexcept { return net_; }
    [[nodiscard]] const kad::NodeArena& arena() const noexcept { return arena_; }
    [[nodiscard]] kad::NodeArena& arena() noexcept { return arena_; }
    [[nodiscard]] const std::vector<net::Address>& live() const noexcept {
        return live_;
    }
    [[nodiscard]] const std::vector<kad::NodeId>& data_registry() const noexcept {
        return data_registry_;
    }
    [[nodiscard]] const stats::TimeSeries& size_series() const noexcept {
        return size_series_;
    }
    [[nodiscard]] std::uint64_t joins() const noexcept { return joins_; }
    [[nodiscard]] std::uint64_t crashes() const noexcept { return crashes_; }

    [[nodiscard]] std::uint64_t lookup_arena_bytes() const noexcept {
        return arena_.lookup_arena().memory_bytes() + probe_arena_.memory_bytes();
    }

    /// `count` side-effect-free lookup probes over this region's live
    /// routing tables (see Runner::run_lookup_probes for the contract): each
    /// probe picks a random live source and a random target, replays the
    /// iterative FIND_NODE walk synchronously against the current tables
    /// (dead contacts answer as timeouts), and succeeds when it reaches the
    /// ground-truth closest live node. The probe RNG is derived from the
    /// region seed and the current instant — the simulation streams (rng_,
    /// per-node RNGs) are never advanced.
    void run_probes(int count, bool verify_truth, stats::ProbeStats& out) {
        if (count <= 0 || live_.empty()) return;
        util::Rng prng(region_seed(config_.seed, index_) ^
                       (0xD1B54A32D192ED03ull *
                        static_cast<std::uint64_t>(sim_.now() + 1)));
        const auto k = static_cast<std::size_t>(config_.kad.k);
        for (int i = 0; i < count; ++i) {
            const net::Address src_global =
                live_[prng.next_below(static_cast<std::uint64_t>(live_.size()))];
            const net::Address src = local_of(src_global);
            const kad::NodeId self = arena_.id_of(src);
            const kad::NodeId target = kad::NodeId::random(prng, config_.kad.b);
            // Ground truth: the live node closest to the target (O(live);
            // probes are per-snapshot, not per-event). The throughput bench
            // skips it (verify_truth = false) — the scan would dominate the
            // walk it is trying to measure. The truth scan consumes no
            // randomness, so the walk itself is identical either way.
            net::Address truth = src;
            if (verify_truth) {
                kad::NodeId best = target.distance_to(self);
                for (const net::Address g : live_) {
                    const net::Address local = local_of(g);
                    const kad::NodeId d = target.distance_to(arena_.id_of(local));
                    if (d < best) {
                        best = d;
                        truth = local;
                    }
                }
            }

            const auto slot = probe_arena_.begin(
                self, target, kad::LookupMode::kFindNode, false, 0);
            probe_seeds_.clear();
            arena_.table_of(src).closest(target, k, probe_seeds_);
            probe_arena_.seed(slot, probe_seeds_);
            while (auto next = probe_arena_.next_query(slot)) {
                const net::Address peer = next->address;
                if (arena_.alive(peer)) {
                    probe_resp_.clear();
                    arena_.table_of(peer).closest(target, k, probe_resp_, &self);
                    probe_arena_.on_response(slot, next->id, probe_resp_, false);
                } else {
                    probe_arena_.on_failure(slot, next->id);
                }
            }
            ++out.probes;
            probe_closest_.clear();
            probe_arena_.successful_closest(slot, probe_closest_);
            bool ok;
            if (verify_truth) {
                ok = truth == src;  // the source itself is closest
                if (!ok) {
                    const kad::NodeId truth_id = arena_.id_of(truth);
                    for (const auto& c : probe_closest_) {
                        if (c.id == truth_id) {
                            ok = true;
                            break;
                        }
                    }
                }
            } else {
                // Unverified mode: "success" = the walk terminated with a
                // non-empty confirmed shortlist.
                ok = !probe_closest_.empty();
            }
            if (ok) ++out.succeeded;
            out.hops.add(probe_arena_.hop_count(slot));
            probe_arena_.release(slot);
        }
    }

    [[nodiscard]] net::Address local_of(net::Address global) const noexcept {
        return global / static_cast<net::Address>(count_);
    }
    [[nodiscard]] net::Address global_of(net::Address local) const noexcept {
        return local * static_cast<net::Address>(count_) +
               static_cast<net::Address>(index_);
    }

    /// Total stored contacts across this region's live tables — the counting
    /// pass that sizes the flat capture slab. O(live), O(1) per table.
    [[nodiscard]] std::size_t live_contact_total() const noexcept {
        std::size_t total = 0;
        for (const net::Address global : live_) {
            total += arena_.contact_count_of(local_of(global));
        }
        return total;
    }

    /// Fills this region's slice of a prepared FlatSnapshot: rows
    /// [node_base, node_base + live) and contacts [contact_base, ...), in
    /// live order (global addresses). Slices of distinct regions are
    /// disjoint, so sharded captures run this concurrently; no allocation.
    void capture_into(graph::FlatSnapshot& flat, std::size_t node_base,
                      std::size_t contact_base) const {
        std::uint32_t* addresses = flat.addresses_data() + node_base;
        std::uint32_t* offsets = flat.offsets_data() + node_base;
        net::Address* contacts = flat.contacts_data();
        // The tables store local addresses; the snapshot speaks global. The
        // local→global affine map rides inside the export copy itself.
        const auto mul = static_cast<net::Address>(count_);
        const auto add = static_cast<net::Address>(index_);
        std::size_t pos = contact_base;
        for (std::size_t i = 0; i < live_.size(); ++i) {
            const net::Address global = live_[i];
            addresses[i] = global;
            offsets[i] = static_cast<std::uint32_t>(pos);
            pos += arena_.export_contacts_of(local_of(global), contacts + pos,
                                             mul, add);
        }
    }

    /// Region-local snapshot (the fault view's routing window), captured
    /// into a reusable member buffer — warm fault-phase minutes allocate
    /// nothing.
    [[nodiscard]] const graph::RoutingSnapshot& capture_region_snapshot() const {
        const auto start = std::chrono::steady_clock::now();
        fault_snap_.time_ms = sim_.now();
        fault_snap_.removed_total = crashes_;
        graph::FlatSnapshot& flat = fault_snap_.flat();
        flat.prepare(live_.size(), live_contact_total());
        capture_into(flat, 0, 0);
        capture_us_ += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
        return fault_snap_;
    }

    [[nodiscard]] std::uint64_t capture_us() const noexcept { return capture_us_; }

    void accumulate(RunnerTotals& t) const {
        for (net::Address local = 0; local < arena_.size(); ++local) {
            const auto& c = arena_.counters_of(local);
            t.protocol.lookups_started += c.lookups_started;
            t.protocol.lookups_completed += c.lookups_completed;
            t.protocol.values_found += c.values_found;
            t.protocol.stores_sent += c.stores_sent;
            t.protocol.rpcs_sent += c.rpcs_sent;
            t.protocol.rpcs_failed += c.rpcs_failed;
            t.protocol.requests_served += c.requests_served;
        }
        const net::NetworkCounters nc = net_.counters();
        t.network.sent += nc.sent;
        t.network.delivered += nc.delivered;
        t.network.dropped_loss += nc.dropped_loss;
        t.network.dropped_dead += nc.dropped_dead;
        t.joins += joins_;
        t.crashes += crashes_;
        t.events_executed += sim_.events_executed();
    }

private:
    class FaultViewImpl;

    /// This region's share of the initial population (remainder spread over
    /// the low regions).
    [[nodiscard]] int initial_share() const noexcept {
        return config_.initial_size / count_ +
               (index_ < config_.initial_size % count_ ? 1 : 0);
    }

    void schedule_initial_joins() {
        // "A new node joins the network at a random point in the simulated
        // time that is evenly distributed between 0 and 30 minutes" (§5.3).
        const auto window = static_cast<std::uint64_t>(config_.phases.setup_end);
        const int share = initial_share();
        for (int i = 0; i < share; ++i) {
            const auto at = static_cast<sim::SimTime>(rng_.next_below(window));
            sim_.schedule_at(at, [this] { add_node(); });
        }
    }

    void start_periodic_tasks() {
        // One master minute tick handles faults, traffic and the size series;
        // the per-action instants are drawn uniformly inside each minute
        // (§5.3).
        minute_task_ = sim::PeriodicTask::start(
            sim_, 0, sim::kMinute, [this](sim::SimTime now) {
                size_series_.add(sim::to_minutes(now),
                                 static_cast<double>(live_.size()));
                if (config_.traffic.enabled) traffic_tick();
                if (config_.fault.any() && now >= config_.phases.stabilization_end &&
                    now < config_.phases.end) {
                    fault_tick();
                }
            });
    }

    void traffic_tick() {
        // Snapshot the live list: nodes joining during this minute start
        // traffic with the next tick.
        for (const net::Address global : live_) {
            const net::Address local = local_of(global);
            for (int i = 0; i < config_.traffic.lookups_per_minute; ++i) {
                const auto delay = static_cast<sim::SimTime>(
                    rng_.next_below(static_cast<std::uint64_t>(sim::kMinute)));
                sim_.schedule_in(delay, [this, local] { issue_lookup(local); });
            }
            for (int i = 0; i < config_.traffic.disseminations_per_minute; ++i) {
                const auto delay = static_cast<sim::SimTime>(
                    rng_.next_below(static_cast<std::uint64_t>(sim::kMinute)));
                sim_.schedule_in(delay, [this, local] { issue_dissemination(local); });
            }
        }
    }

    void fault_tick();  // defined after FaultViewImpl

    void add_node() {
        const net::Address local = net_.register_endpoint();
        kad::KademliaNode* fresh = arena_.add_node(node_id_for(local), local);

        // "The bootstrap node is randomly chosen from the already joined
        // nodes" (§5.3) — completely random, and any node can be affected by
        // churn.
        std::optional<kad::Contact> bootstrap;
        if (!live_.empty()) {
            const net::Address pick =
                live_[rng_.next_below(static_cast<std::uint64_t>(live_.size()))];
            bootstrap = arena_.node_at(local_of(pick))->contact();
        }

        live_pos_.resize(arena_.size(), kNoLivePos);
        live_pos_[local] = static_cast<std::uint32_t>(live_.size());
        live_.push_back(global_of(local));
        ++joins_;

        fresh->join(bootstrap);
    }

    void execute_removals();  // defined after FaultViewImpl

    void remove_node(net::Address global) {
        const net::Address local = local_of(global);
        KADSIM_ASSERT(local < live_pos_.size() && live_pos_[local] != kNoLivePos);
        const std::uint32_t index = live_pos_[local];

        // Swap-remove from the live list, keeping positions consistent.
        live_[index] = live_.back();
        live_pos_[local_of(live_[index])] = index;
        live_.pop_back();
        live_pos_[local] = kNoLivePos;
        ++crashes_;

        arena_.node_at(local)->crash();
    }

    void issue_lookup(net::Address local) {
        kad::KademliaNode* n = arena_.node_at(local);
        if (n == nullptr || !n->alive()) return;
        kad::NodeId target;
        if (!data_registry_.empty()) {
            target = data_registry_[rng_.next_below(
                static_cast<std::uint64_t>(data_registry_.size()))];
        } else {
            target = kad::NodeId::random(rng_, config_.kad.b);
        }
        n->lookup_value(target, {});
    }

    void issue_dissemination(net::Address local) {
        kad::KademliaNode* n = arena_.node_at(local);
        if (n == nullptr || !n->alive()) return;
        const kad::NodeId key = next_data_id();
        n->disseminate(key, ++data_counter_, {});
    }

    [[nodiscard]] kad::NodeId next_data_id() {
        // Region-seed-keyed names keep data ids distinct across regions while
        // region 0 reproduces the unsharded name sequence exactly.
        const std::string name = "kadsim-data-" +
                                 std::to_string(region_seed(config_.seed, index_)) +
                                 "-" + std::to_string(data_counter_);
        const kad::NodeId id = kad::NodeId::hash_of(name, config_.kad.b);
        if (data_registry_.size() < kDataRegistryCap) {
            data_registry_.push_back(id);
        } else {
            data_registry_[data_counter_ % kDataRegistryCap] = id;
        }
        return id;
    }

    [[nodiscard]] kad::NodeId node_id_for(net::Address local) const {
        // "Identifiers are generated from a node's network address ... using
        // a cryptographically secure hash function" (§4.1). Keyed by the
        // *global* address, so ids are unique across regions and regions = 1
        // matches the unsharded sequence.
        const std::string key = "kadsim-node-" + std::to_string(config_.seed) + "-" +
                                std::to_string(global_of(local));
        return kad::NodeId::hash_of(key, config_.kad.b);
    }

    const ScenarioConfig& config_;
    int index_;
    int count_;
    sim::Simulator sim_;
    net::Network net_;
    util::Rng rng_;
    std::unique_ptr<fault::FaultModel> fault_;
    kad::NodeArena arena_;
    /// Scratch arena + buffers for run_probes (slot/buffers recycled across
    /// probes and waves — no steady-state allocation).
    kad::LookupArena probe_arena_;
    std::vector<kad::Contact> probe_seeds_;
    std::vector<kad::Contact> probe_resp_;
    std::vector<kad::Contact> probe_closest_;
    std::vector<net::Address> live_;       // global addresses, join order
    std::vector<std::uint32_t> live_pos_;  // local address → index into live_
    std::vector<kad::NodeId> data_registry_;
    std::uint64_t data_counter_ = 0;
    std::uint64_t joins_ = 0;
    std::uint64_t crashes_ = 0;
    stats::TimeSeries size_series_;
    std::unique_ptr<sim::PeriodicTask> minute_task_;
    /// Reusable fault-view snapshot (warm fault minutes refill it without
    /// allocating) and the cumulative capture-time counter.
    mutable graph::RoutingSnapshot fault_snap_;
    mutable std::uint64_t capture_us_ = 0;
};

/// The read-only overlay window handed to the fault model. One instance per
/// fault event; the routing snapshot is built on first use and cached for
/// the lifetime of the view, so models that ignore routing state pay
/// nothing. Addresses are global; the window covers this region only (under
/// sharding each region runs its own fault process).
class Runner::Region::FaultViewImpl final : public fault::FaultView {
public:
    explicit FaultViewImpl(const Region& region) : region_(region) {}

    [[nodiscard]] sim::SimTime now() const override { return region_.sim_.now(); }
    [[nodiscard]] const std::vector<net::Address>& live() const override {
        return region_.live_;
    }
    [[nodiscard]] bool is_live(net::Address address) const override {
        const net::Address local = region_.local_of(address);
        return local < region_.live_pos_.size() &&
               region_.live_pos_[local] != kNoLivePos;
    }
    [[nodiscard]] kad::NodeId node_id(net::Address address) const override {
        return region_.arena_.id_of(region_.local_of(address));
    }
    [[nodiscard]] int id_bits() const override { return region_.config_.kad.b; }
    [[nodiscard]] const graph::RoutingSnapshot& routing() const override {
        if (snapshot_ == nullptr) snapshot_ = &region_.capture_region_snapshot();
        return *snapshot_;
    }

private:
    const Region& region_;
    /// Borrowed from the region's reusable buffer — valid for the lifetime
    /// of this view (fault events are sequential; one view alive at a time).
    mutable const graph::RoutingSnapshot* snapshot_ = nullptr;
};

void Runner::Region::fault_tick() {
    // Draw order is part of the determinism contract (removal instants, then
    // arrival instants) — it reproduces the pre-fault-layer inlined churn.
    const FaultViewImpl view(*this);
    for (const sim::SimTime delay : fault_->removal_times(view, rng_)) {
        sim_.schedule_in(delay, [this] { execute_removals(); });
    }
    for (const sim::SimTime delay : fault_->arrivals(view, rng_)) {
        sim_.schedule_in(delay, [this] { add_node(); });
    }
}

void Runner::Region::execute_removals() {
    const FaultViewImpl view(*this);
    for (const net::Address victim : fault_->select_removals(view, rng_)) {
        remove_node(victim);
    }
}

Runner::Runner(ScenarioConfig config) : config_(std::move(config)) {
    config_.validate();
    const int count = config_.regions;
    regions_.reserve(static_cast<std::size_t>(count));
    for (int r = 0; r < count; ++r) {
        regions_.push_back(std::make_unique<Region>(config_, r, count));
    }
    if (count > 1) {
        int threads = config_.shard_threads;
        if (threads == 0) {
            threads = std::min(count,
                               static_cast<int>(std::thread::hardware_concurrency()));
        }
        // parallel_for runs on the workers plus the calling thread.
        if (threads > 1) pool_ = std::make_unique<exec::ThreadPool>(threads - 1);
    }
}

Runner::~Runner() = default;

void Runner::step_to(sim::SimTime t) {
    if (regions_.size() == 1) {
        regions_[0]->step_to(t);
        return;
    }
    const int count = static_cast<int>(regions_.size());
    if (pool_ == nullptr) {
        for (int r = 0; r < count; ++r) regions_[r]->step_to(t);
        return;
    }
    pool_->parallel_for(0, count, [this, t](int r) { regions_[r]->step_to(t); });
}

void Runner::run(sim::SimTime snapshot_interval,
                 const std::function<void(const graph::RoutingSnapshot&)>& on_snapshot) {
    KADSIM_ASSERT(snapshot_interval > 0);
    // Interval extraction state is local to this driver: snapshot() and
    // lookup_traffic() stay idempotent/cumulative for direct callers.
    stats::LookupTraffic prev;
    // One snapshot buffer for the whole run: capture() refills the flat slab
    // in place, so warm intervals allocate nothing.
    graph::RoutingSnapshot snap;
    for (sim::SimTime t = snapshot_interval; t <= config_.phases.end;
         t += snapshot_interval) {
        step_to(t);
        if (on_snapshot) {
            capture(snap);
            const stats::LookupTraffic cur = lookup_traffic();
            snap.lookups = cur.diff(prev);
            prev = cur;
            if (config_.traffic.probes_per_snapshot > 0) {
                snap.probes = run_lookup_probes(config_.traffic.probes_per_snapshot);
            }
            on_snapshot(snap);
        }
    }
    if (regions_[0]->sim().now() < config_.phases.end) step_to(config_.phases.end);
}

graph::RoutingSnapshot Runner::snapshot() const {
    graph::RoutingSnapshot snap;
    capture(snap);
    return snap;
}

void Runner::capture(graph::RoutingSnapshot& out) const {
    const auto start = std::chrono::steady_clock::now();
    out.time_ms = regions_[0]->sim().now();
    out.removed_total = 0;
    out.lookups = {};
    out.probes = {};
    // Counting pass: per-region prefix sums size the flat slab exactly, so
    // the fill below writes disjoint slices — safe to shard, and byte-wise
    // independent of the thread count (region order fixes the layout).
    const std::size_t count = regions_.size();
    capture_node_base_.resize(count);
    capture_contact_base_.resize(count);
    std::size_t nodes = 0;
    std::size_t contacts = 0;
    for (std::size_t r = 0; r < count; ++r) {
        capture_node_base_[r] = nodes;
        capture_contact_base_[r] = contacts;
        nodes += regions_[r]->live().size();
        contacts += regions_[r]->live_contact_total();
        out.removed_total += regions_[r]->crashes();
    }
    graph::FlatSnapshot& flat = out.flat();
    flat.prepare(nodes, contacts);
    if (pool_ != nullptr) {
        pool_->parallel_for(0, static_cast<int>(count), [this, &flat](int r) {
            const auto i = static_cast<std::size_t>(r);
            regions_[i]->capture_into(flat, capture_node_base_[i],
                                      capture_contact_base_[i]);
        });
    } else {
        for (std::size_t r = 0; r < count; ++r) {
            regions_[r]->capture_into(flat, capture_node_base_[r],
                                      capture_contact_base_[r]);
        }
    }
    capture_us_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

std::uint64_t Runner::snapshot_capture_us() const noexcept {
    std::uint64_t total = capture_us_;
    for (const auto& region : regions_) total += region->capture_us();
    return total;
}

int Runner::live_count() const noexcept {
    std::size_t n = 0;
    for (const auto& region : regions_) n += region->live().size();
    return static_cast<int>(n);
}

const std::vector<net::Address>& Runner::live_addresses() const {
    if (regions_.size() == 1) return regions_[0]->live();
    live_cache_.clear();
    for (const auto& region : regions_) {
        live_cache_.insert(live_cache_.end(), region->live().begin(),
                           region->live().end());
    }
    return live_cache_;
}

sim::Simulator& Runner::simulator() noexcept { return regions_[0]->sim(); }

net::Network& Runner::network() noexcept { return regions_[0]->net(); }

const stats::TimeSeries& Runner::size_series() const {
    if (regions_.size() == 1) return regions_[0]->size_series();
    // Every region ticks its minute task on the same schedule, so the series
    // align point-for-point; the merged series is their sum.
    series_cache_ = stats::TimeSeries{};
    const stats::TimeSeries& base = regions_[0]->size_series();
    for (std::size_t i = 0; i < base.size(); ++i) {
        double total = 0;
        for (const auto& region : regions_) {
            total += region->size_series().value_at(i);
        }
        series_cache_.add(base.time_at(i), total);
    }
    return series_cache_;
}

RunnerTotals Runner::totals() const {
    RunnerTotals t;
    for (const auto& region : regions_) region->accumulate(t);
    return t;
}

kad::KademliaNode* Runner::node_at(net::Address address) noexcept {
    const auto count = static_cast<net::Address>(regions_.size());
    return regions_[address % count]->arena().node_at(address / count);
}

const kad::KademliaNode* Runner::node(net::Address address) const {
    const auto count = static_cast<net::Address>(regions_.size());
    const kad::KademliaNode* n =
        regions_[address % count]->arena().node_at(address / count);
    KADSIM_ASSERT(n != nullptr);
    return n;
}

kad::KademliaNode* Runner::node(net::Address address) {
    const auto count = static_cast<net::Address>(regions_.size());
    kad::KademliaNode* n = regions_[address % count]->arena().node_at(address / count);
    KADSIM_ASSERT(n != nullptr);
    return n;
}

const std::vector<kad::NodeId>& Runner::data_registry() const {
    if (regions_.size() == 1) return regions_[0]->data_registry();
    registry_cache_.clear();
    for (const auto& region : regions_) {
        registry_cache_.insert(registry_cache_.end(), region->data_registry().begin(),
                               region->data_registry().end());
    }
    return registry_cache_;
}

std::uint64_t Runner::arena_memory_bytes() const noexcept {
    std::uint64_t bytes = 0;
    for (const auto& region : regions_) bytes += region->arena().memory_bytes();
    return bytes;
}

std::uint64_t Runner::queue_memory_bytes() const noexcept {
    std::uint64_t bytes = 0;
    for (const auto& region : regions_) {
        bytes += region->sim().queue_memory_bytes();
    }
    return bytes;
}

std::uint64_t Runner::lookup_arena_bytes() const noexcept {
    std::uint64_t bytes = 0;
    for (const auto& region : regions_) bytes += region->lookup_arena_bytes();
    return bytes;
}

stats::LookupTraffic Runner::lookup_traffic() const {
    stats::LookupTraffic out;
    // Fixed region order — same merge contract as snapshot()/totals().
    for (const auto& region : regions_) out.merge(region->arena().lookup_traffic());
    return out;
}

stats::ProbeStats Runner::run_lookup_probes(int per_region, bool verify_truth) {
    const int count = static_cast<int>(regions_.size());
    std::vector<stats::ProbeStats> per(regions_.size());
    if (pool_ != nullptr) {
        // Regions probe concurrently (each touches only its own tables and
        // scratch arena); the merge below runs in fixed region order, so the
        // result is byte-identical for any thread count.
        pool_->parallel_for(0, count, [this, per_region, verify_truth, &per](int r) {
            regions_[static_cast<std::size_t>(r)]->run_probes(
                per_region, verify_truth, per[static_cast<std::size_t>(r)]);
        });
    } else {
        for (int r = 0; r < count; ++r) {
            regions_[static_cast<std::size_t>(r)]->run_probes(
                per_region, verify_truth, per[static_cast<std::size_t>(r)]);
        }
    }
    stats::ProbeStats out;
    for (const auto& p : per) out.merge(p);
    return out;
}

}  // namespace kadsim::scen
