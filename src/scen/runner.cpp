#include "scen/runner.h"

#include <algorithm>
#include <optional>
#include <string>

#include "util/logging.h"

namespace kadsim::scen {

namespace {
constexpr std::uint32_t kNoLivePos = 0xFFFFFFFFu;
/// Bounded data-object registry: lookups draw targets from the most recent
/// disseminations (older objects have expired from node storage anyway).
constexpr std::size_t kDataRegistryCap = 4096;
}  // namespace

/// The read-only overlay window handed to the fault model. One instance per
/// fault event; the routing snapshot is built on first use and cached for
/// the lifetime of the view, so models that ignore routing state pay nothing.
class Runner::FaultViewImpl final : public fault::FaultView {
public:
    explicit FaultViewImpl(const Runner& runner) : runner_(runner) {}

    [[nodiscard]] sim::SimTime now() const override { return runner_.sim_.now(); }
    [[nodiscard]] const std::vector<net::Address>& live() const override {
        return runner_.live_;
    }
    [[nodiscard]] bool is_live(net::Address address) const override {
        return address < runner_.live_pos_.size() &&
               runner_.live_pos_[address] != kNoLivePos;
    }
    [[nodiscard]] kad::NodeId node_id(net::Address address) const override {
        return runner_.node(address)->id();
    }
    [[nodiscard]] int id_bits() const override { return runner_.config_.kad.b; }
    [[nodiscard]] const graph::RoutingSnapshot& routing() const override {
        if (!snapshot_) snapshot_ = runner_.snapshot();
        return *snapshot_;
    }

private:
    const Runner& runner_;
    mutable std::optional<graph::RoutingSnapshot> snapshot_;
};

Runner::Runner(ScenarioConfig config)
    : config_(std::move(config)),
      sim_(config_.seed),
      net_(sim_, config_.latency, net::LossModel::from_level(config_.loss)),
      rng_(sim_.split_rng()),
      fault_(fault::make_fault_model(config_.fault)) {
    config_.validate();
    schedule_initial_joins();
    start_periodic_tasks();
}

Runner::~Runner() = default;

kad::KademliaNode* Runner::node_at(net::Address address) noexcept {
    if (address >= nodes_.size()) return nullptr;
    return nodes_[address].get();
}

const kad::KademliaNode* Runner::node(net::Address address) const {
    KADSIM_ASSERT(address < nodes_.size());
    return nodes_[address].get();
}

kad::KademliaNode* Runner::node(net::Address address) {
    KADSIM_ASSERT(address < nodes_.size());
    return nodes_[address].get();
}

kad::NodeId Runner::node_id_for(net::Address address) const {
    // "Identifiers are generated from a node's network address ... using a
    // cryptographically secure hash function" (§4.1).
    const std::string key =
        "kadsim-node-" + std::to_string(config_.seed) + "-" + std::to_string(address);
    return kad::NodeId::hash_of(key, config_.kad.b);
}

void Runner::schedule_initial_joins() {
    // "A new node joins the network at a random point in the simulated time
    // that is evenly distributed between 0 and 30 minutes" (§5.3).
    const auto window = static_cast<std::uint64_t>(config_.phases.setup_end);
    for (int i = 0; i < config_.initial_size; ++i) {
        const auto at = static_cast<sim::SimTime>(rng_.next_below(window));
        sim_.schedule_at(at, [this] { add_node(); });
    }
}

void Runner::start_periodic_tasks() {
    // One master minute tick handles faults, traffic and the size series; the
    // per-action instants are drawn uniformly inside each minute (§5.3).
    minute_task_ = sim::PeriodicTask::start(
        sim_, 0, sim::kMinute, [this](sim::SimTime now) {
            size_series_.add(sim::to_minutes(now), live_count());
            if (config_.traffic.enabled) traffic_tick();
            if (config_.fault.any() && now >= config_.phases.stabilization_end &&
                now < config_.phases.end) {
                fault_tick();
            }
        });
}

void Runner::traffic_tick() {
    // Snapshot the live list: nodes joining during this minute start traffic
    // with the next tick.
    for (const net::Address address : live_) {
        for (int i = 0; i < config_.traffic.lookups_per_minute; ++i) {
            const auto delay = static_cast<sim::SimTime>(
                rng_.next_below(static_cast<std::uint64_t>(sim::kMinute)));
            sim_.schedule_in(delay, [this, address] { issue_lookup(address); });
        }
        for (int i = 0; i < config_.traffic.disseminations_per_minute; ++i) {
            const auto delay = static_cast<sim::SimTime>(
                rng_.next_below(static_cast<std::uint64_t>(sim::kMinute)));
            sim_.schedule_in(delay, [this, address] { issue_dissemination(address); });
        }
    }
}

void Runner::fault_tick() {
    // Draw order is part of the determinism contract (removal instants, then
    // arrival instants) — it reproduces the pre-fault-layer inlined churn.
    const FaultViewImpl view(*this);
    for (const sim::SimTime delay : fault_->removal_times(view, rng_)) {
        sim_.schedule_in(delay, [this] { execute_removals(); });
    }
    for (const sim::SimTime delay : fault_->arrivals(view, rng_)) {
        sim_.schedule_in(delay, [this] { add_node(); });
    }
}

void Runner::add_node() {
    const net::Address address = net_.register_endpoint();
    KADSIM_ASSERT(address == nodes_.size());
    nodes_.push_back(std::make_unique<kad::KademliaNode>(
        node_id_for(address), address, config_.kad, sim_, net_, *this));
    kad::KademliaNode* fresh = nodes_.back().get();

    // "The bootstrap node is randomly chosen from the already joined nodes"
    // (§5.3) — completely random, and any node can be affected by churn.
    std::optional<kad::Contact> bootstrap;
    if (!live_.empty()) {
        const net::Address pick =
            live_[rng_.next_below(static_cast<std::uint64_t>(live_.size()))];
        bootstrap = nodes_[pick]->contact();
    }

    live_pos_.resize(nodes_.size(), kNoLivePos);
    live_pos_[address] = static_cast<std::uint32_t>(live_.size());
    live_.push_back(address);
    ++joins_;

    fresh->join(bootstrap);
}

void Runner::execute_removals() {
    const FaultViewImpl view(*this);
    for (const net::Address victim : fault_->select_removals(view, rng_)) {
        remove_node(victim);
    }
}

void Runner::remove_node(net::Address address) {
    KADSIM_ASSERT(address < live_pos_.size() && live_pos_[address] != kNoLivePos);
    const std::uint32_t index = live_pos_[address];

    // Swap-remove from the live list, keeping positions consistent.
    live_[index] = live_.back();
    live_pos_[live_[index]] = index;
    live_.pop_back();
    live_pos_[address] = kNoLivePos;
    ++crashes_;

    nodes_[address]->crash();
}

void Runner::issue_lookup(net::Address address) {
    kad::KademliaNode* n = nodes_[address].get();
    if (n == nullptr || !n->alive()) return;
    kad::NodeId target;
    if (!data_registry_.empty()) {
        target = data_registry_[rng_.next_below(
            static_cast<std::uint64_t>(data_registry_.size()))];
    } else {
        target = kad::NodeId::random(rng_, config_.kad.b);
    }
    n->lookup_value(target, {});
}

void Runner::issue_dissemination(net::Address address) {
    kad::KademliaNode* n = nodes_[address].get();
    if (n == nullptr || !n->alive()) return;
    const kad::NodeId key = next_data_id();
    n->disseminate(key, ++data_counter_, {});
}

kad::NodeId Runner::next_data_id() {
    const std::string name = "kadsim-data-" + std::to_string(config_.seed) + "-" +
                             std::to_string(data_counter_);
    const kad::NodeId id = kad::NodeId::hash_of(name, config_.kad.b);
    if (data_registry_.size() < kDataRegistryCap) {
        data_registry_.push_back(id);
    } else {
        data_registry_[data_counter_ % kDataRegistryCap] = id;
    }
    return id;
}

void Runner::step_to(sim::SimTime t) { sim_.run_until(t); }

void Runner::run(sim::SimTime snapshot_interval,
                 const std::function<void(const graph::RoutingSnapshot&)>& on_snapshot) {
    KADSIM_ASSERT(snapshot_interval > 0);
    for (sim::SimTime t = snapshot_interval; t <= config_.phases.end;
         t += snapshot_interval) {
        step_to(t);
        if (on_snapshot) on_snapshot(snapshot());
    }
    if (sim_.now() < config_.phases.end) step_to(config_.phases.end);
}

graph::RoutingSnapshot Runner::snapshot() const {
    graph::RoutingSnapshot snap;
    snap.time_ms = sim_.now();
    snap.removed_total = crashes_;
    snap.nodes.reserve(live_.size());
    for (const net::Address address : live_) {
        graph::SnapshotNode record;
        record.address = address;
        const auto& table = nodes_[address]->routing_table();
        record.contacts.reserve(table.size());
        table.for_each_entry([&record](const kad::RoutingTable::Entry& entry) {
            record.contacts.push_back(entry.contact.address);
        });
        snap.nodes.push_back(std::move(record));
    }
    return snap;
}

RunnerTotals Runner::totals() const {
    RunnerTotals t;
    for (const auto& n : nodes_) {
        const auto& c = n->counters();
        t.protocol.lookups_started += c.lookups_started;
        t.protocol.lookups_completed += c.lookups_completed;
        t.protocol.values_found += c.values_found;
        t.protocol.stores_sent += c.stores_sent;
        t.protocol.rpcs_sent += c.rpcs_sent;
        t.protocol.rpcs_failed += c.rpcs_failed;
        t.protocol.requests_served += c.requests_served;
    }
    t.network = net_.counters();
    t.joins = joins_;
    t.crashes = crashes_;
    t.events_executed = sim_.events_executed();
    return t;
}

}  // namespace kadsim::scen
