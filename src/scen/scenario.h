// Scenario configuration: the paper's eight simulation dimensions (§5.3) —
// network size, churn, traffic, message loss, k, α, b, s — plus the phase
// plan (§5.4: setup until minute 30, stabilization until minute 120, churn
// afterwards).
#ifndef KADSIM_SCEN_SCENARIO_H
#define KADSIM_SCEN_SCENARIO_H

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "fault/spec.h"
#include "kad/config.h"
#include "net/latency.h"
#include "net/loss.h"
#include "sim/time.h"

namespace kadsim::scen {

/// Membership-dynamics vocabulary now lives in the fault layer; the aliases
/// keep the established scenario spelling (`scen::ChurnSpec{1, 1}`) working.
using ChurnSpec = fault::ChurnSpec;
using FaultSpec = fault::FaultSpec;

/// Data traffic (§5.3): with traffic, every node performs 10 lookups and 1
/// dissemination per minute at random instants within the minute.
struct TrafficSpec {
    bool enabled = false;
    int lookups_per_minute = 10;
    int disseminations_per_minute = 1;
    /// Side-effect-free lookup probes per region at every Runner::run()
    /// snapshot: synthetic FIND_NODE walks over the live routing tables
    /// (own RNG stream, no messages, no table updates) that measure "would
    /// a lookup succeed right now?". Independent of `enabled`, so attack
    /// scenarios — which run with traffic off precisely because live
    /// traffic repairs the tables — still get a lookup-success series
    /// alongside κ/λ. 0 disables.
    int probes_per_snapshot = 64;
};

/// Phase boundaries (§5.4). Events scheduled at random times happen inside
/// [phase start, phase end).
struct PhasePlan {
    sim::SimTime setup_end = sim::minutes(30);
    sim::SimTime stabilization_end = sim::minutes(120);
    sim::SimTime end = sim::minutes(400);

    /// Sets the horizon and clamps the earlier boundaries so horizons
    /// shorter than the §5.4 defaults still satisfy setup <= stab <= end.
    void set_end(sim::SimTime t) noexcept {
        end = t;
        stabilization_end = std::min(stabilization_end, end);
        setup_end = std::min(setup_end, stabilization_end);
    }
};

struct ScenarioConfig {
    std::string name = "scenario";
    int initial_size = 250;
    kad::KademliaConfig kad;
    net::LossLevel loss = net::LossLevel::kNone;
    net::LatencyModel latency;
    /// Membership dynamics: failure model + schedule + per-minute intensity.
    /// The default (RandomChurn at fault.churn rates) is the paper's churn.
    FaultSpec fault;
    TrafficSpec traffic;
    PhasePlan phases;
    std::uint64_t seed = 1;

    /// Region sharding (million-node runs): the id space is split into
    /// `regions` independent overlays, each with its own simulator, network
    /// and node arena, stepped concurrently and merged in fixed region order.
    ///
    /// `regions` is a *logical* parameter — changing it changes the simulated
    /// system (per-region seeds, per-region churn/traffic rates: ChurnSpec
    /// and TrafficSpec intensities apply to each region independently when
    /// regions > 1). `shard_threads` is an *execution-only* knob: results are
    /// byte-identical for any thread count, because regions share no mutable
    /// state and are merged in region order (0 or 1 = step serially).
    int regions = 1;
    int shard_threads = 0;

    void validate() const {
        kad.validate();
        fault.validate();
        if (initial_size <= 0) throw std::invalid_argument("initial_size must be > 0");
        if (fault.model == kadsim::fault::ModelKind::kRegionOutage &&
            (fault.outage_at < phases.stabilization_end ||
             fault.outage_at >= phases.end)) {
            throw std::invalid_argument(
                "region outage must fall inside the fault phase [stab_end, end)");
        }
        if (!(phases.setup_end <= phases.stabilization_end &&
              phases.stabilization_end <= phases.end)) {
            throw std::invalid_argument("phases must be ordered setup <= stab <= end");
        }
        // Unconditional: a disabled-but-invalid spec must not validate
        // silently only to blow up when someone flips `enabled` on.
        if (traffic.lookups_per_minute < 0 || traffic.disseminations_per_minute < 0) {
            throw std::invalid_argument("traffic rates must be >= 0");
        }
        if (traffic.probes_per_snapshot < 0) {
            throw std::invalid_argument("probes_per_snapshot must be >= 0");
        }
        if (regions < 1) throw std::invalid_argument("regions must be >= 1");
        if (regions > initial_size) {
            throw std::invalid_argument("regions must not exceed initial_size");
        }
        if (shard_threads < 0) throw std::invalid_argument("shard_threads must be >= 0");
    }
};

}  // namespace kadsim::scen

#endif  // KADSIM_SCEN_SCENARIO_H
