// Scenario configuration: the paper's eight simulation dimensions (§5.3) —
// network size, churn, traffic, message loss, k, α, b, s — plus the phase
// plan (§5.4: setup until minute 30, stabilization until minute 120, churn
// afterwards).
#ifndef KADSIM_SCEN_SCENARIO_H
#define KADSIM_SCEN_SCENARIO_H

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "kad/config.h"
#include "net/latency.h"
#include "net/loss.h"
#include "sim/time.h"

namespace kadsim::scen {

/// Nodes added/removed per minute of simulated time during the churn phase.
/// The paper's scenarios: (0/1), (1/1), (10/10).
struct ChurnSpec {
    int adds_per_minute = 0;
    int removes_per_minute = 0;

    [[nodiscard]] bool any() const noexcept {
        return adds_per_minute > 0 || removes_per_minute > 0;
    }
    [[nodiscard]] std::string label() const {
        return std::to_string(adds_per_minute) + "/" + std::to_string(removes_per_minute);
    }
};

/// Data traffic (§5.3): with traffic, every node performs 10 lookups and 1
/// dissemination per minute at random instants within the minute.
struct TrafficSpec {
    bool enabled = false;
    int lookups_per_minute = 10;
    int disseminations_per_minute = 1;
};

/// Phase boundaries (§5.4). Events scheduled at random times happen inside
/// [phase start, phase end).
struct PhasePlan {
    sim::SimTime setup_end = sim::minutes(30);
    sim::SimTime stabilization_end = sim::minutes(120);
    sim::SimTime end = sim::minutes(400);

    /// Sets the horizon and clamps the earlier boundaries so horizons
    /// shorter than the §5.4 defaults still satisfy setup <= stab <= end.
    void set_end(sim::SimTime t) noexcept {
        end = t;
        stabilization_end = std::min(stabilization_end, end);
        setup_end = std::min(setup_end, stabilization_end);
    }
};

struct ScenarioConfig {
    std::string name = "scenario";
    int initial_size = 250;
    kad::KademliaConfig kad;
    net::LossLevel loss = net::LossLevel::kNone;
    net::LatencyModel latency;
    ChurnSpec churn;
    TrafficSpec traffic;
    PhasePlan phases;
    std::uint64_t seed = 1;

    void validate() const {
        kad.validate();
        if (initial_size <= 0) throw std::invalid_argument("initial_size must be > 0");
        if (churn.adds_per_minute < 0 || churn.removes_per_minute < 0) {
            throw std::invalid_argument("churn rates must be >= 0");
        }
        if (!(phases.setup_end <= phases.stabilization_end &&
              phases.stabilization_end <= phases.end)) {
            throw std::invalid_argument("phases must be ordered setup <= stab <= end");
        }
        if (traffic.enabled &&
            (traffic.lookups_per_minute < 0 || traffic.disseminations_per_minute < 0)) {
            throw std::invalid_argument("traffic rates must be >= 0");
        }
    }
};

}  // namespace kadsim::scen

#endif  // KADSIM_SCEN_SCENARIO_H
