// Fault-injection configuration: which failure model drives membership
// dynamics, at what intensity, and on what schedule.
//
// The paper (§5.3) evaluates *random* churn only; the fault layer
// generalizes that into a family of composable failure models so the same
// κ_min/κ_avg question can be asked under adversarial failures (the
// targeted-vs-random distinction of Heck et al. 2016 and Ferretti 2013).
// `ModelKind::kRandomChurn` reproduces the paper's behavior bit-for-bit.
#ifndef KADSIM_FAULT_SPEC_H
#define KADSIM_FAULT_SPEC_H

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/time.h"

namespace kadsim::fault {

/// Nodes added/removed per minute of simulated time during the fault phase.
/// The paper's scenarios: (0/1), (1/1), (10/10).
struct ChurnSpec {
    int adds_per_minute = 0;
    int removes_per_minute = 0;

    [[nodiscard]] bool any() const noexcept {
        return adds_per_minute > 0 || removes_per_minute > 0;
    }
    [[nodiscard]] std::string label() const {
        return std::to_string(adds_per_minute) + "/" + std::to_string(removes_per_minute);
    }
};

/// The concrete failure models (see models.h for behavior and victim rules).
enum class ModelKind {
    kRandomChurn,    ///< the paper's uniform churn (§5.3), extracted verbatim
    kDegreeAttack,   ///< remove the most-referenced node (max in-degree)
    kKappaAttack,    ///< starve the κ_min-pinning node of its contacts
    kRegionOutage,   ///< one-shot loss of a contiguous XOR-prefix region
};

[[nodiscard]] constexpr const char* to_string(ModelKind kind) noexcept {
    switch (kind) {
        case ModelKind::kRandomChurn: return "random";
        case ModelKind::kDegreeAttack: return "degree";
        case ModelKind::kKappaAttack: return "kappa";
        case ModelKind::kRegionOutage: return "region";
    }
    return "?";
}

/// Schedule + model + intensity of the membership dynamics of a scenario.
/// Replaces the bare ChurnSpec plumbing: the per-minute intensity applies to
/// every per-minute model, while kRegionOutage adds a one-shot cut.
struct FaultSpec {
    ModelKind model = ModelKind::kRandomChurn;
    /// Per-minute removal/arrival intensity (victim *selection* is the
    /// model's job; the counts and sub-minute instants follow §5.3).
    ChurnSpec churn;
    /// kRegionOutage: instant of the cut (must fall inside the fault phase,
    /// i.e. [stabilization_end, end) — checked by ScenarioConfig::validate).
    sim::SimTime outage_at = 0;
    /// kRegionOutage: a node is in the region iff the top `outage_prefix_bits`
    /// bits of its identifier equal `outage_prefix` (expected region share of
    /// a uniform id space: 2^-bits).
    int outage_prefix_bits = 2;
    std::uint64_t outage_prefix = 0;

    /// True iff the model can ever remove or add a node.
    [[nodiscard]] bool any() const noexcept {
        return churn.any() || (model == ModelKind::kRegionOutage && outage_at > 0);
    }

    /// Stable, parameter-complete label (cache keys, bench JSON, narration):
    /// two specs that simulate differently must label differently, so the
    /// outage instant keeps millisecond precision when not minute-aligned.
    [[nodiscard]] std::string label() const {
        std::string s = std::string(to_string(model)) + "(" + churn.label();
        if (model == ModelKind::kRegionOutage) {
            s += ",t=" + (outage_at % sim::kMinute == 0
                              ? std::to_string(outage_at / sim::kMinute)
                              : std::to_string(outage_at) + "ms") +
                 ",p=" + std::to_string(outage_prefix_bits) + ":" +
                 std::to_string(outage_prefix);
        }
        return s + ")";
    }

    void validate() const {
        if (churn.adds_per_minute < 0 || churn.removes_per_minute < 0) {
            throw std::invalid_argument("churn rates must be >= 0");
        }
        if (model == ModelKind::kRegionOutage) {
            if (outage_prefix_bits < 1 || outage_prefix_bits > 64) {
                throw std::invalid_argument("outage_prefix_bits must be in [1, 64]");
            }
            if (outage_prefix_bits < 64 &&
                outage_prefix >= (1ULL << outage_prefix_bits)) {
                throw std::invalid_argument("outage_prefix exceeds its bit width");
            }
            if (churn.removes_per_minute > 0) {
                // The cut is this model's only removal source; a nonzero
                // per-minute removal rate would be silently ignored.
                throw std::invalid_argument(
                    "region outage does not take per-minute removals");
            }
        }
    }
};

}  // namespace kadsim::fault

#endif  // KADSIM_FAULT_SPEC_H
