// Pluggable fault-injection layer: the scenario runner delegates every
// membership decision (who leaves, who arrives, and when) to a FaultModel.
//
// Determinism contract: models are pure functions of (view, rng, own state).
// For a fixed seed, a model must consume `rng` in exactly the same order on
// every run — the runner interleaves model draws with traffic and bootstrap
// draws on one stream, so an extra or missing draw perturbs the whole
// simulation. RandomChurn reproduces the pre-fault-layer inlined churn draw
// order bit-for-bit (pinned by tests/test_fault_equivalence.cpp).
//
// Scheduling protocol, mirroring §5.3 ("per-minute actions at random
// instants within the minute"): at every fault-phase minute boundary the
// runner calls removal_times()/arrivals() for the sub-minute delays at which
// events fire; at each fired removal instant it calls select_removals() for
// the victims. Deferring victim selection to the fired instant keeps
// RandomChurn's RNG order intact and lets targeted models act on the
// *current* overlay state rather than a minute-old view.
#ifndef KADSIM_FAULT_FAULT_MODEL_H
#define KADSIM_FAULT_FAULT_MODEL_H

#include <memory>
#include <string>
#include <vector>

#include "fault/spec.h"
#include "graph/snapshot.h"
#include "kad/node_id.h"
#include "net/network.h"
#include "sim/time.h"
#include "util/rng.h"

namespace kadsim::fault {

/// Read-only window onto the live overlay, handed to fault models. The
/// routing snapshot is built lazily (models that never look at routing
/// state — RandomChurn — cost nothing extra).
class FaultView {
public:
    virtual ~FaultView() = default;

    [[nodiscard]] virtual sim::SimTime now() const = 0;
    /// Live addresses in the runner's canonical order (RandomChurn indexes
    /// into this exactly like the pre-refactor inline code did).
    [[nodiscard]] virtual const std::vector<net::Address>& live() const = 0;
    [[nodiscard]] virtual bool is_live(net::Address address) const = 0;
    [[nodiscard]] virtual kad::NodeId node_id(net::Address address) const = 0;
    /// Identifier bit-length b of the scenario (region membership tests).
    [[nodiscard]] virtual int id_bits() const = 0;
    /// Routing tables of all live nodes at this instant; built on first call
    /// and cached for the lifetime of the view (one fault event).
    [[nodiscard]] virtual const graph::RoutingSnapshot& routing() const = 0;
};

class FaultModel {
public:
    virtual ~FaultModel() = default;

    /// Sub-minute delays (from now) at which removal events fire during the
    /// coming minute; the runner schedules one select_removals() per entry.
    [[nodiscard]] virtual std::vector<sim::SimTime> removal_times(
        const FaultView& view, util::Rng& rng) = 0;

    /// Sub-minute delays at which one fresh node joins.
    [[nodiscard]] virtual std::vector<sim::SimTime> arrivals(const FaultView& view,
                                                             util::Rng& rng) = 0;

    /// Victims to crash at one fired removal instant (may be empty, e.g. on
    /// an already-drained network).
    [[nodiscard]] virtual std::vector<net::Address> select_removals(
        const FaultView& view, util::Rng& rng) = 0;

    [[nodiscard]] virtual std::string name() const = 0;
};

/// Builds the model a spec describes (fresh state per runner, so identically
/// seeded reruns are identical).
[[nodiscard]] std::unique_ptr<FaultModel> make_fault_model(const FaultSpec& spec);

}  // namespace kadsim::fault

#endif  // KADSIM_FAULT_FAULT_MODEL_H
