// Concrete fault models. All are deterministic given (seed, view):
//
//   RandomChurn          the paper's uniform churn (§5.3), extracted from the
//                        pre-fault-layer scen::Runner with an identical RNG
//                        draw order — existing scenarios are bit-identical.
//   TargetedDegreeAttack an adversary with a global view removes the node
//                        most referenced by live routing tables (highest
//                        in-degree in the connectivity graph); ties fall to
//                        the smallest address.
//   TargetedKappaAttack  κ-guided attack reusing the pick_sources insight of
//                        flow/vertex_connectivity.cpp: κ_min is pinned by the
//                        minimum out-degree, so the attacker severs the
//                        remaining out-links of the weakest node (removing
//                        the pin itself would *relieve* the minimum). Victim:
//                        the smallest-address live contact of the lowest
//                        out-degree node that still has live contacts.
//   CorrelatedOutage     models correlated infrastructure failure: at one
//                        scheduled instant, every live node whose identifier
//                        lies in a contiguous XOR-prefix region crashes at
//                        once. The churn arrival intensity still applies
//                        (per-minute removals do not — the cut is the only
//                        removal source).
#ifndef KADSIM_FAULT_MODELS_H
#define KADSIM_FAULT_MODELS_H

#include "fault/fault_model.h"

namespace kadsim::fault {

/// Shared §5.3 schedule: `removes_per_minute` removal events and
/// `adds_per_minute` arrivals per minute, each at an independent uniform
/// instant inside the minute. The draw order (all removal delays, then all
/// arrival delays) matches the pre-fault-layer churn_tick exactly.
class PerMinuteFaultModel : public FaultModel {
public:
    explicit PerMinuteFaultModel(ChurnSpec churn) : churn_(churn) {}

    [[nodiscard]] std::vector<sim::SimTime> removal_times(const FaultView& view,
                                                          util::Rng& rng) override;
    [[nodiscard]] std::vector<sim::SimTime> arrivals(const FaultView& view,
                                                     util::Rng& rng) override;

    [[nodiscard]] const ChurnSpec& churn() const noexcept { return churn_; }

private:
    ChurnSpec churn_;
};

class RandomChurn final : public PerMinuteFaultModel {
public:
    using PerMinuteFaultModel::PerMinuteFaultModel;
    [[nodiscard]] std::vector<net::Address> select_removals(const FaultView& view,
                                                            util::Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "random"; }
};

class TargetedDegreeAttack final : public PerMinuteFaultModel {
public:
    using PerMinuteFaultModel::PerMinuteFaultModel;
    [[nodiscard]] std::vector<net::Address> select_removals(const FaultView& view,
                                                            util::Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "degree"; }
};

class TargetedKappaAttack final : public PerMinuteFaultModel {
public:
    using PerMinuteFaultModel::PerMinuteFaultModel;
    [[nodiscard]] std::vector<net::Address> select_removals(const FaultView& view,
                                                            util::Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "kappa"; }
};

class CorrelatedOutage final : public FaultModel {
public:
    explicit CorrelatedOutage(const FaultSpec& spec)
        : churn_(spec.churn),
          outage_at_(spec.outage_at),
          prefix_bits_(spec.outage_prefix_bits),
          prefix_(spec.outage_prefix) {}

    [[nodiscard]] std::vector<sim::SimTime> removal_times(const FaultView& view,
                                                          util::Rng& rng) override;
    [[nodiscard]] std::vector<sim::SimTime> arrivals(const FaultView& view,
                                                     util::Rng& rng) override;
    [[nodiscard]] std::vector<net::Address> select_removals(const FaultView& view,
                                                            util::Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "region"; }

    /// True iff `id`'s top `prefix_bits` bits equal `prefix` (the region).
    [[nodiscard]] static bool in_region(const kad::NodeId& id, int id_bits,
                                        int prefix_bits, std::uint64_t prefix);

private:
    ChurnSpec churn_;
    sim::SimTime outage_at_;
    int prefix_bits_;
    std::uint64_t prefix_;
    bool cut_scheduled_ = false;
};

}  // namespace kadsim::fault

#endif  // KADSIM_FAULT_MODELS_H
