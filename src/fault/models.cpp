#include "fault/models.h"

#include <algorithm>
#include <limits>

#include "util/assert.h"

namespace kadsim::fault {

namespace {

/// `count` independent uniform instants inside the coming minute — the §5.3
/// per-minute action schedule. One rng draw per instant, in order.
std::vector<sim::SimTime> uniform_instants(int count, util::Rng& rng) {
    std::vector<sim::SimTime> times;
    times.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        times.push_back(static_cast<sim::SimTime>(
            rng.next_below(static_cast<std::uint64_t>(sim::kMinute))));
    }
    return times;
}

/// Live out-neighbour count of one snapshot node (its connectivity-graph
/// out-degree: stale entries pointing at departed nodes don't count, §4.2).
int live_out_degree(const graph::SnapshotNodeView& node, const FaultView& view) {
    int degree = 0;
    for (const net::Address contact : node.contacts) {
        if (view.is_live(contact)) ++degree;
    }
    return degree;
}

}  // namespace

std::vector<sim::SimTime> PerMinuteFaultModel::removal_times(const FaultView&,
                                                             util::Rng& rng) {
    return uniform_instants(churn_.removes_per_minute, rng);
}

std::vector<sim::SimTime> PerMinuteFaultModel::arrivals(const FaultView&,
                                                        util::Rng& rng) {
    return uniform_instants(churn_.adds_per_minute, rng);
}

std::vector<net::Address> RandomChurn::select_removals(const FaultView& view,
                                                       util::Rng& rng) {
    // Exactly the pre-fault-layer remove_random_node(): no draw on an empty
    // network, otherwise one uniform index into the live list.
    const auto& live = view.live();
    if (live.empty()) return {};
    const std::uint64_t index = rng.next_below(static_cast<std::uint64_t>(live.size()));
    return {live[index]};
}

std::vector<net::Address> TargetedDegreeAttack::select_removals(const FaultView& view,
                                                                util::Rng&) {
    const auto& live = view.live();
    if (live.empty()) return {};

    // In-degree over the connectivity graph: how many live routing tables
    // reference each live address. Live addresses bound the index space.
    const net::Address max_live = *std::max_element(live.begin(), live.end());
    std::vector<std::uint32_t> in_degree(static_cast<std::size_t>(max_live) + 1, 0);
    for (const auto& node : view.routing().nodes) {
        for (const net::Address contact : node.contacts) {
            if (view.is_live(contact)) ++in_degree[contact];
        }
    }

    net::Address victim = live.front();
    std::uint32_t best = 0;
    bool first = true;
    for (const net::Address address : live) {
        const std::uint32_t degree = in_degree[address];
        if (first || degree > best || (degree == best && address < victim)) {
            victim = address;
            best = degree;
            first = false;
        }
    }
    return {victim};
}

std::vector<net::Address> TargetedKappaAttack::select_removals(const FaultView& view,
                                                               util::Rng&) {
    const auto& live = view.live();
    if (live.empty()) return {};

    // pick_sources insight (flow/vertex_connectivity.cpp): κ_min is pinned by
    // the smallest out-degree. Removing the pin itself would *relieve* the
    // minimum, so the attack severs the pin's remaining out-links instead:
    // find the lowest-out-degree node that still has live contacts and crash
    // its smallest-address live contact. Once the pin's out-degree hits 0,
    // κ_min = 0 and the attack moves to the next-weakest node.
    const graph::RoutingSnapshot& snap = view.routing();
    // The iterator yields views by value; the copied spans stay valid — they
    // point into the snapshot's flat storage, not the iterator.
    graph::SnapshotNodeView pin{};
    bool have_pin = false;
    int pin_degree = std::numeric_limits<int>::max();
    for (const graph::SnapshotNodeView node : snap.nodes) {
        const int degree = live_out_degree(node, view);
        if (degree == 0) continue;  // already fully starved
        if (degree < pin_degree ||
            (degree == pin_degree && node.address < pin.address)) {
            pin = node;
            have_pin = true;
            pin_degree = degree;
        }
    }
    if (!have_pin) {
        // No live edges at all: κ is already 0 everywhere; keep the removal
        // budget flowing deterministically.
        return {*std::min_element(live.begin(), live.end())};
    }

    net::Address victim = 0;
    bool found = false;
    for (const net::Address contact : pin.contacts) {
        if (view.is_live(contact) && (!found || contact < victim)) {
            victim = contact;
            found = true;
        }
    }
    KADSIM_ASSERT(found);  // pin_degree > 0 guarantees a live contact
    return {victim};
}

std::vector<sim::SimTime> CorrelatedOutage::removal_times(const FaultView& view,
                                                          util::Rng&) {
    if (cut_scheduled_) return {};
    const sim::SimTime now = view.now();
    if (outage_at_ >= now + sim::kMinute) return {};
    // Due this minute — or overdue because the first fault tick landed after
    // `outage_at_` (a non-minute-aligned stabilization boundary): fire now
    // rather than silently dropping the cut.
    cut_scheduled_ = true;
    return {std::max<sim::SimTime>(0, outage_at_ - now)};
}

std::vector<sim::SimTime> CorrelatedOutage::arrivals(const FaultView&,
                                                     util::Rng& rng) {
    return uniform_instants(churn_.adds_per_minute, rng);
}

std::vector<net::Address> CorrelatedOutage::select_removals(const FaultView& view,
                                                            util::Rng&) {
    std::vector<net::Address> victims;
    for (const net::Address address : view.live()) {
        if (in_region(view.node_id(address), view.id_bits(), prefix_bits_, prefix_)) {
            victims.push_back(address);
        }
    }
    return victims;
}

bool CorrelatedOutage::in_region(const kad::NodeId& id, int id_bits, int prefix_bits,
                                 std::uint64_t prefix) {
    const int bits = std::min(prefix_bits, id_bits);
    std::uint64_t top = 0;
    for (int i = 0; i < bits; ++i) {
        top = (top << 1) | (id.get_bit(id_bits - 1 - i) ? 1ULL : 0ULL);
    }
    return top == prefix;
}

std::unique_ptr<FaultModel> make_fault_model(const FaultSpec& spec) {
    spec.validate();
    switch (spec.model) {
        case ModelKind::kRandomChurn:
            return std::make_unique<RandomChurn>(spec.churn);
        case ModelKind::kDegreeAttack:
            return std::make_unique<TargetedDegreeAttack>(spec.churn);
        case ModelKind::kKappaAttack:
            return std::make_unique<TargetedKappaAttack>(spec.churn);
        case ModelKind::kRegionOutage:
            return std::make_unique<CorrelatedOutage>(spec);
    }
    KADSIM_ASSERT_MSG(false, "unknown fault model kind");
    return nullptr;
}

}  // namespace kadsim::fault
