// Experiment driver: scenario simulation × periodic connectivity analysis →
// the time series behind every figure, plus churn-phase summaries (Table 2).
#ifndef KADSIM_CORE_EXPERIMENT_H
#define KADSIM_CORE_EXPERIMENT_H

#include <functional>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "scen/scenario.h"
#include "stats/summary.h"
#include "stats/timeseries.h"

namespace kadsim::core {

struct ExperimentConfig {
    scen::ScenarioConfig scenario;
    sim::SimTime snapshot_interval = sim::minutes(30);
    AnalyzerOptions analyzer;
};

/// The analyzed output of one simulation run.
struct ExperimentSeries {
    std::string name;
    std::vector<ConnectivitySample> samples;
    stats::TimeSeries network_size;  // per simulated minute

    [[nodiscard]] stats::TimeSeries kappa_min_series() const;
    [[nodiscard]] stats::TimeSeries kappa_avg_series() const;
    [[nodiscard]] stats::TimeSeries size_at_samples() const;

    /// Summary of κ_min over samples taken in [begin_min, end_min) — the
    /// Table 2 aggregation when applied to the churn phase.
    [[nodiscard]] stats::Summary kappa_min_summary(double begin_min,
                                                   double end_min) const;
    [[nodiscard]] stats::Summary kappa_avg_summary(double begin_min,
                                                   double end_min) const;
};

/// Runs the scenario to completion, analyzing a snapshot every
/// `snapshot_interval`. `on_progress` (optional) is invoked after each
/// analyzed snapshot — benches use it for live narration.
[[nodiscard]] ExperimentSeries run_experiment(
    const ExperimentConfig& config,
    const std::function<void(const ConnectivitySample&)>& on_progress = nullptr);

}  // namespace kadsim::core

#endif  // KADSIM_CORE_EXPERIMENT_H
