// Experiment driver: scenario simulation × periodic connectivity analysis →
// the time series behind every figure, plus churn-phase summaries (Table 2).
//
// Execution model: the simulation itself is single-threaded and
// deterministic (scen::Runner on one virtual clock), but the per-snapshot
// connectivity analysis — the n(n−1) max-flow bottleneck of §5.2 — is
// pipelined onto an exec::ThreadPool: the runner produces value-type
// RoutingSnapshots into a bounded queue while analyzer workers drain it
// concurrently. run_experiment_batch additionally runs *independent*
// experiments (each with its own Runner + RNG) concurrently. Both paths
// produce series bit-identical to the sequential run for any thread count.
#ifndef KADSIM_CORE_EXPERIMENT_H
#define KADSIM_CORE_EXPERIMENT_H

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "scen/scenario.h"
#include "stats/summary.h"
#include "stats/timeseries.h"

namespace kadsim::exec {
class ThreadPool;
}  // namespace kadsim::exec

namespace kadsim::core {

struct ExperimentConfig {
    scen::ScenarioConfig scenario;
    sim::SimTime snapshot_interval = sim::minutes(30);
    AnalyzerOptions analyzer;
};

/// The analyzed output of one simulation run.
struct ExperimentSeries {
    std::string name;
    std::vector<ConnectivitySample> samples;
    stats::TimeSeries network_size;  // per simulated minute
    /// Wall-clock cost of producing this series (not part of the result
    /// data; 0 when the series was loaded from a cache).
    double wall_seconds = 0.0;
    /// Cumulative runner time spent capturing routing snapshots (same
    /// caveat: measurement metadata, 0 when cache-loaded).
    std::uint64_t snapshot_capture_us = 0;

    [[nodiscard]] stats::TimeSeries kappa_min_series() const;
    [[nodiscard]] stats::TimeSeries kappa_avg_series() const;
    [[nodiscard]] stats::TimeSeries lambda_min_series() const;
    [[nodiscard]] stats::TimeSeries size_at_samples() const;

    /// Summary of κ_min over samples taken in [begin_min, end_min) — the
    /// Table 2 aggregation when applied to the churn phase.
    [[nodiscard]] stats::Summary kappa_min_summary(double begin_min,
                                                   double end_min) const;
    [[nodiscard]] stats::Summary kappa_avg_summary(double begin_min,
                                                   double end_min) const;
    [[nodiscard]] stats::Summary lambda_min_summary(double begin_min,
                                                    double end_min) const;
};

/// Runs the scenario to completion, analyzing a snapshot every
/// `snapshot_interval`. `on_progress` (optional) is invoked after each
/// analyzed snapshot, in snapshot order — benches use it for live narration.
///
/// Execution: with `pool` (or, when no pool is given, config.analyzer.threads
/// > 1, in which case the engine owns a pool for the run), snapshots are
/// analyzed concurrently with the simulation via a bounded queue; otherwise
/// everything runs inline on the caller. The returned series is bit-identical
/// across all of these modes.
[[nodiscard]] ExperimentSeries run_experiment(
    const ExperimentConfig& config,
    const std::function<void(const ConnectivitySample&)>& on_progress = nullptr,
    exec::ThreadPool* pool = nullptr);

/// Per-sample progress for a batch: (config index, sample). May be invoked
/// concurrently for *different* configs; per config it is in snapshot order.
using BatchProgress =
    std::function<void(std::size_t config_index, const ConnectivitySample&)>;

/// Per-config completion for a batch, invoked on the calling thread in
/// config order as results are collected — cache layers persist finished
/// experiments as they arrive instead of only after the whole batch.
using BatchComplete =
    std::function<void(std::size_t config_index, const ExperimentSeries&)>;

/// Runs independent experiments concurrently on `pool` (each config gets its
/// own Runner and RNG streams; a config's whole run executes sequentially
/// inside one pool task, so experiments never contend on shared state).
/// Results are collected in config order and are bit-identical to running
/// each config through run_experiment by itself. If a config fails, its
/// exception is rethrown only after every other config finished (and
/// reached `on_complete`).
[[nodiscard]] std::vector<ExperimentSeries> run_experiment_batch(
    std::span<const ExperimentConfig> configs, exec::ThreadPool* pool = nullptr,
    const BatchProgress& on_progress = nullptr,
    const BatchComplete& on_complete = nullptr);

}  // namespace kadsim::core

#endif  // KADSIM_CORE_EXPERIMENT_H
