#include "core/experiment.h"

#include "scen/runner.h"

namespace kadsim::core {

stats::TimeSeries ExperimentSeries::kappa_min_series() const {
    stats::TimeSeries s;
    for (const auto& sample : samples) s.add(sample.time_min, sample.kappa_min);
    return s;
}

stats::TimeSeries ExperimentSeries::kappa_avg_series() const {
    stats::TimeSeries s;
    for (const auto& sample : samples) s.add(sample.time_min, sample.kappa_avg);
    return s;
}

stats::TimeSeries ExperimentSeries::size_at_samples() const {
    stats::TimeSeries s;
    for (const auto& sample : samples) s.add(sample.time_min, sample.n);
    return s;
}

stats::Summary ExperimentSeries::kappa_min_summary(double begin_min,
                                                   double end_min) const {
    stats::Summary s;
    for (const auto& sample : samples) {
        if (sample.time_min >= begin_min && sample.time_min < end_min) {
            s.add(sample.kappa_min);
        }
    }
    return s;
}

stats::Summary ExperimentSeries::kappa_avg_summary(double begin_min,
                                                   double end_min) const {
    stats::Summary s;
    for (const auto& sample : samples) {
        if (sample.time_min >= begin_min && sample.time_min < end_min) {
            s.add(sample.kappa_avg);
        }
    }
    return s;
}

ExperimentSeries run_experiment(
    const ExperimentConfig& config,
    const std::function<void(const ConnectivitySample&)>& on_progress) {
    ExperimentSeries series;
    series.name = config.scenario.name;

    scen::Runner runner(config.scenario);
    const ConnectivityAnalyzer analyzer(config.analyzer);

    runner.run(config.snapshot_interval,
               [&](const graph::RoutingSnapshot& snap) {
                   ConnectivitySample sample = analyzer.analyze(snap);
                   if (on_progress) on_progress(sample);
                   series.samples.push_back(sample);
               });
    series.network_size = runner.size_series();
    return series;
}

}  // namespace kadsim::core
