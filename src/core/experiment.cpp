#include "core/experiment.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "exec/bounded_queue.h"
#include "exec/thread_pool.h"
#include "scen/runner.h"
#include "util/assert.h"

namespace kadsim::core {

stats::TimeSeries ExperimentSeries::kappa_min_series() const {
    stats::TimeSeries s;
    for (const auto& sample : samples) s.add(sample.time_min, sample.kappa_min);
    return s;
}

stats::TimeSeries ExperimentSeries::kappa_avg_series() const {
    stats::TimeSeries s;
    for (const auto& sample : samples) s.add(sample.time_min, sample.kappa_avg);
    return s;
}

stats::TimeSeries ExperimentSeries::lambda_min_series() const {
    stats::TimeSeries s;
    for (const auto& sample : samples) s.add(sample.time_min, sample.lambda_min);
    return s;
}

stats::TimeSeries ExperimentSeries::size_at_samples() const {
    stats::TimeSeries s;
    for (const auto& sample : samples) s.add(sample.time_min, sample.n);
    return s;
}

stats::Summary ExperimentSeries::kappa_min_summary(double begin_min,
                                                   double end_min) const {
    stats::Summary s;
    for (const auto& sample : samples) {
        if (sample.time_min >= begin_min && sample.time_min < end_min) {
            s.add(sample.kappa_min);
        }
    }
    return s;
}

stats::Summary ExperimentSeries::kappa_avg_summary(double begin_min,
                                                   double end_min) const {
    stats::Summary s;
    for (const auto& sample : samples) {
        if (sample.time_min >= begin_min && sample.time_min < end_min) {
            s.add(sample.kappa_avg);
        }
    }
    return s;
}

stats::Summary ExperimentSeries::lambda_min_summary(double begin_min,
                                                    double end_min) const {
    stats::Summary s;
    for (const auto& sample : samples) {
        if (sample.time_min >= begin_min && sample.time_min < end_min) {
            s.add(sample.lambda_min);
        }
    }
    return s;
}

namespace {

using ProgressFn = std::function<void(const ConnectivitySample&)>;

/// The original engine: simulate and analyze alternately on one thread.
/// Also the per-task body of run_experiment_batch (with `pool` null) — then
/// it never blocks on the pool, which is what makes batch tasks safe to run
/// *on* pool workers. A non-null `pool` parallelizes *within* each snapshot
/// while snapshots stay strictly ordered — the mode the snapshot-delta
/// cache requires (analyze() under use_delta must see the series in order).
ExperimentSeries run_sequential(const ExperimentConfig& config,
                                const ProgressFn& on_progress,
                                exec::ThreadPool* pool = nullptr) {
    ExperimentSeries series;
    series.name = config.scenario.name;

    scen::Runner runner(config.scenario);
    const ConnectivityAnalyzer analyzer(config.analyzer);

    runner.run(config.snapshot_interval,
               [&](const graph::RoutingSnapshot& snap) {
                   ConnectivitySample sample = analyzer.analyze(snap, pool);
                   if (on_progress) on_progress(sample);
                   series.samples.push_back(sample);
               });
    series.network_size = runner.size_series();
    series.snapshot_capture_us = runner.snapshot_capture_us();
    return series;
}

/// One snapshot travelling from the simulator to an analyzer worker.
struct PendingSnapshot {
    std::size_t index = 0;
    graph::RoutingSnapshot snap;
};

/// Completed samples, re-ordered to snapshot order for emission. Workers
/// finish out of order; `emit_ready` advances a cursor over the contiguous
/// completed prefix so on_progress observes the same sequence a sequential
/// run would produce.
class OrderedEmitter {
public:
    void complete(std::size_t index, ConnectivitySample sample,
                  const ProgressFn& on_progress) {
        std::lock_guard lock(mutex_);
        if (index >= done_.size()) done_.resize(index + 1);
        done_[index] = std::move(sample);
        while (next_ < done_.size() && done_[next_].has_value()) {
            // Advance before invoking: a throwing callback must not see the
            // same sample re-delivered by the next completion.
            const ConnectivitySample& ready = *done_[next_];
            ++next_;
            if (on_progress) on_progress(ready);
        }
    }

    /// All samples in snapshot order (call after every worker joined).
    std::vector<ConnectivitySample> take() {
        std::vector<ConnectivitySample> samples;
        samples.reserve(done_.size());
        for (auto& sample : done_) {
            KADSIM_ASSERT_MSG(sample.has_value(), "pipeline lost a snapshot");
            samples.push_back(std::move(*sample));
        }
        return samples;
    }

private:
    std::mutex mutex_;
    std::vector<std::optional<ConnectivitySample>> done_;
    std::size_t next_ = 0;
};

/// The pipelined engine: the caller thread runs the deterministic simulation
/// and feeds value-type snapshots through a bounded queue (backpressure caps
/// the snapshots alive at once) to analyzer workers on `pool`.
ExperimentSeries run_pipelined(const ExperimentConfig& config,
                               const ProgressFn& on_progress,
                               exec::ThreadPool& pool) {
    ExperimentSeries series;
    series.name = config.scenario.name;

    scen::Runner runner(config.scenario);
    const ConnectivityAnalyzer analyzer(config.analyzer);

    const int workers = pool.size();
    exec::BoundedQueue<PendingSnapshot> queue(2 * static_cast<std::size_t>(workers));
    OrderedEmitter emitter;

    // Consumer submission and the producer share one try block: however we
    // leave it, the queue gets closed and every submitted consumer joined
    // before the stack-allocated queue/emitter unwind.
    std::vector<std::future<void>> consumers;
    consumers.reserve(static_cast<std::size_t>(workers));
    std::exception_ptr error;
    try {
        for (int i = 0; i < workers; ++i) {
            consumers.push_back(
                pool.submit([&queue, &emitter, &analyzer, &on_progress] {
                    try {
                        while (auto item = queue.pop()) {
                            emitter.complete(item->index,
                                             analyzer.analyze(item->snap),
                                             on_progress);
                        }
                    } catch (...) {
                        // Keep draining (discarding) until the producer
                        // closes the queue: if every consumer died with the
                        // queue full, the producer would otherwise block in
                        // push() forever and the exception never surface.
                        while (queue.pop()) {
                        }
                        throw;
                    }
                }));
        }

        std::size_t index = 0;
        runner.run(config.snapshot_interval,
                   [&queue, &index](const graph::RoutingSnapshot& snap) {
                       queue.push({index++, snap});
                   });
    } catch (...) {
        error = std::current_exception();
    }
    queue.close();
    for (auto& consumer : consumers) {
        try {
            pool.wait_get(consumer);
        } catch (...) {
            if (!error) error = std::current_exception();
        }
    }
    if (error) std::rethrow_exception(error);

    series.samples = emitter.take();
    series.network_size = runner.size_series();
    series.snapshot_capture_us = runner.snapshot_capture_us();
    return series;
}

}  // namespace

ExperimentSeries run_experiment(const ExperimentConfig& config,
                                const ProgressFn& on_progress,
                                exec::ThreadPool* pool) {
    const auto start = std::chrono::steady_clock::now();
    ExperimentSeries series;
    // The pipelined engine analyzes snapshots concurrently and out of order,
    // which the snapshot-delta cache cannot accept (its reuse rate — and its
    // one-analysis-in-flight contract — depend on consecutive snapshots).
    // Under use_delta, run sequentially but keep the pool for within-snapshot
    // parallelism.
    const bool delta = config.analyzer.use_delta;
    // Pipelining needs a free caller thread to drive the simulator; from
    // inside a pool task (e.g. a batch experiment), run sequentially instead.
    if (exec::ThreadPool::in_worker()) {
        series = run_sequential(config, on_progress);
    } else if (pool != nullptr) {
        series = delta ? run_sequential(config, on_progress, pool)
                       : run_pipelined(config, on_progress, *pool);
    } else if (config.analyzer.threads > 1) {
        // No caller-supplied engine: own a pool for the duration of the run
        // (persistent across snapshots — never per-snapshot spawn/join).
        exec::ThreadPool owned(config.analyzer.threads);
        series = delta ? run_sequential(config, on_progress, &owned)
                       : run_pipelined(config, on_progress, owned);
    } else {
        series = run_sequential(config, on_progress);
    }
    series.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return series;
}

std::vector<ExperimentSeries> run_experiment_batch(
    std::span<const ExperimentConfig> configs, exec::ThreadPool* pool,
    const BatchProgress& on_progress, const BatchComplete& on_complete) {
    std::vector<ExperimentSeries> results(configs.size());
    if (configs.empty()) return results;

    const auto progress_for = [&on_progress](std::size_t index) -> ProgressFn {
        if (!on_progress) return nullptr;
        return [&on_progress, index](const ConnectivitySample& sample) {
            on_progress(index, sample);
        };
    };

    // Config-level tasks only pay off when they can cover the workers; with
    // fewer configs than workers (or no usable pool at all) defer to
    // run_experiment per config, whose snapshot pipeline spreads each single
    // run across the whole pool instead of leaving workers idle.
    if (pool == nullptr || pool->size() <= 1 ||
        configs.size() < static_cast<std::size_t>(pool->size()) ||
        exec::ThreadPool::in_worker()) {
        for (std::size_t i = 0; i < configs.size(); ++i) {
            results[i] = run_experiment(configs[i], progress_for(i), pool);
            if (on_complete) on_complete(i, results[i]);
        }
        return results;
    }

    std::vector<std::future<ExperimentSeries>> futures;
    futures.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        futures.push_back(pool->submit(
            [&config = configs[i], progress = progress_for(i)] {
                const auto start = std::chrono::steady_clock::now();
                ExperimentSeries series = run_sequential(config, progress);
                series.wall_seconds = std::chrono::duration<double>(
                                          std::chrono::steady_clock::now() - start)
                                          .count();
                return series;
            }));
    }
    // Deterministic, config-order collection; the caller helps run queued
    // experiments while waiting. Each success reaches on_complete as it is
    // collected; the first failure is rethrown only after every task
    // finished (no task outlives `configs`, and completed work is not lost).
    std::exception_ptr error;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        try {
            results[i] = pool->wait_get(futures[i]);
            if (on_complete) on_complete(i, results[i]);
        } catch (...) {
            if (!error) error = std::current_exception();
        }
    }
    if (error) std::rethrow_exception(error);
    return results;
}

}  // namespace kadsim::core
