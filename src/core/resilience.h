// Resilience calculus (paper §4.5).
//
// A network is r-resilient when any pair of nodes stays connected with up to
// r compromised nodes. Menger gives: κ(D) node-disjoint paths exist between
// any pair, each compromised node can break at most one of them, hence
//     κ(D) > r ≥ a           (Eq. 2)
// where a is the attacker's budget. From a measured κ: r = κ − 1. To
// tolerate a given a, a network needs κ > a; the paper's conclusion maps
// this to the bucket size: choose k > a (κ tracks k in stable networks).
#ifndef KADSIM_CORE_RESILIENCE_H
#define KADSIM_CORE_RESILIENCE_H

#include <algorithm>
#include <string>

namespace kadsim::core {

/// Resilience of a network with vertex connectivity `kappa` (Eq. 2, part 1):
/// r = κ − 1 (a disconnected or 1-connected network tolerates no failure).
[[nodiscard]] constexpr int resilience_from_connectivity(int kappa) noexcept {
    return kappa > 0 ? kappa - 1 : -1;  // -1: not even connected
}

/// Whether a network with connectivity `kappa` tolerates `attackers`
/// compromised nodes (Eq. 2: κ > r ≥ a).
[[nodiscard]] constexpr bool tolerates(int kappa, int attackers) noexcept {
    return kappa > attackers;
}

/// Minimum connectivity required for an attacker budget a (κ > a).
[[nodiscard]] constexpr int required_connectivity(int attackers) noexcept {
    return attackers + 1;
}

/// The paper's parameter guidance (§6): κ tracks the bucket size k in stable
/// networks, so pick k strictly greater than the attacker budget — with
/// slack under churn, since κ_min can dip below k (§5.5.3–§5.5.4).
[[nodiscard]] constexpr int recommended_bucket_size(int attackers,
                                                    bool strong_churn) noexcept {
    const int base = attackers + 1;
    return strong_churn ? std::max(base + base / 2, base + 5) : base;
}

/// Human-readable verdict for reports.
[[nodiscard]] inline std::string resilience_verdict(int kappa, int attackers) {
    if (kappa <= 0) return "DISCONNECTED (some node pair has no path)";
    if (tolerates(kappa, attackers)) {
        return "resilient: tolerates " + std::to_string(kappa - 1) +
               " compromised node(s), attacker budget " + std::to_string(attackers);
    }
    return "NOT resilient: connectivity " + std::to_string(kappa) +
           " <= attacker budget " + std::to_string(attackers);
}

}  // namespace kadsim::core

#endif  // KADSIM_CORE_RESILIENCE_H
