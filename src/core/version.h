// Library identity constants: version and the paper this tree reproduces.
#ifndef KADSIM_CORE_VERSION_H
#define KADSIM_CORE_VERSION_H

namespace kadsim::core {

inline constexpr int kVersionMajor = 0;
inline constexpr int kVersionMinor = 1;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "0.1.0";

/// The study this repository reproduces (ICDCS 2017).
inline constexpr const char* kPaperTitle =
    "Evaluating Connection Resilience for the Overlay Network Kademlia";
inline constexpr const char* kPaperArxivId = "1703.09171";
/// Companion CPS-resilience study referenced by docs/figures.md.
inline constexpr const char* kCompanionArxivId = "1605.08002";

}  // namespace kadsim::core

#endif  // KADSIM_CORE_VERSION_H
