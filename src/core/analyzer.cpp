#include "core/analyzer.h"

#include <algorithm>
#include <exception>
#include <future>

#include "exec/thread_pool.h"

namespace kadsim::core {

ResilienceSample ConnectivityAnalyzer::analyze(const graph::RoutingSnapshot& snap,
                                               exec::ThreadPool* pool) const {
    ResilienceSample sample;
    sample.time_min = static_cast<double>(snap.time_ms) / 60000.0;
    sample.removed_total = snap.removed_total;
    // Lookup workload companions (Runner-filled; zeros when the snapshot
    // came from elsewhere). Quantiles walk the streamed histograms — there
    // is no per-sample storage anywhere in this pipeline.
    sample.lookups_done = snap.lookups.completed;
    if (snap.lookups.completed > 0) {
        sample.lookup_success_rate =
            static_cast<double>(snap.lookups.succeeded) /
            static_cast<double>(snap.lookups.completed);
        sample.lookup_hop_p50 =
            static_cast<double>(snap.lookups.hops.quantile(0.50));
        sample.lookup_hop_p99 =
            static_cast<double>(snap.lookups.hops.quantile(0.99));
        sample.lookup_latency_p50_ms =
            static_cast<double>(snap.lookups.latency_ms.quantile(0.50));
        sample.lookup_latency_p99_ms =
            static_cast<double>(snap.lookups.latency_ms.quantile(0.99));
    }
    sample.probes_done = snap.probes.probes;
    if (snap.probes.probes > 0) {
        sample.probe_success_rate = static_cast<double>(snap.probes.succeeded) /
                                    static_cast<double>(snap.probes.probes);
        sample.probe_hop_p50 =
            static_cast<double>(snap.probes.hops.quantile(0.50));
        sample.probe_hop_p99 =
            static_cast<double>(snap.probes.hops.quantile(0.99));
    }
    // Pool-assisted CSR compaction — but not from inside a pool lane (the
    // pipelined driver analyzes on a worker; nested fan-out would deadlock).
    const graph::Digraph g = snap.to_digraph(
        (pool != nullptr && !exec::ThreadPool::in_worker()) ? pool : nullptr);
    sample.n = g.vertex_count();
    sample.m = g.edge_count();
    if (sample.n == 0) return sample;

    sample.reciprocity = g.reciprocity();

    // Cross-snapshot reuse: rebind the (lazily created) delta cache to this
    // snapshot and hand its hooks to both flow sweeps. Lookups only read the
    // store committed by *previous* snapshots, so the κ/λ halves may still
    // overlap freely below.
    if (options_.use_delta && delta_ == nullptr) {
        delta_ = std::make_unique<analysis::SnapshotDeltaCache>();
    }
    if (delta_ != nullptr) delta_->begin_snapshot(snap, g);

    // Fan the metric suite out alongside κ: one task computes the metrics
    // (which run sequentially inside it — the task is already a pool lane)
    // while this thread drives the κ flows across the remaining workers.
    // Both halves are deterministic, so the overlap never changes a value.
    const analysis::MetricContext context{
        g,
        options_.sample_c,
        options_.min_sources,
        pool,
        options_.use_certificate,
        delta_ != nullptr ? delta_->lambda_hook() : nullptr};
    std::future<analysis::ResilienceMetrics> metrics_future;
    if (pool != nullptr && !exec::ThreadPool::in_worker()) {
        metrics_future =
            pool->submit([&context] { return analysis::run_metrics(context); });
    }

    // The metrics task references this frame's graph, so it must be joined
    // before any unwind: collect a κ failure, finish the wait, then rethrow.
    flow::ConnectivityResult r;
    std::exception_ptr error;
    try {
        r = analyze_graph(g, pool,
                          delta_ != nullptr ? delta_->kappa_hook() : nullptr);
    } catch (...) {
        error = std::current_exception();
    }
    analysis::ResilienceMetrics metrics;
    if (metrics_future.valid()) {
        try {
            metrics = pool->wait_get(metrics_future);
        } catch (...) {
            if (!error) error = std::current_exception();
        }
    } else if (!error) {
        metrics = analysis::run_metrics(context);
    }
    // Both sweeps have joined: commit this snapshot's witness stores so the
    // next snapshot can reuse them (harmless on the error path — stored
    // pairs are revalidated against whichever graph looks them up).
    if (delta_ != nullptr) delta_->end_snapshot();
    if (error) std::rethrow_exception(error);

    sample.kappa_min = r.kappa_min;
    sample.kappa_avg = r.kappa_avg;
    sample.pairs_evaluated = r.pairs_evaluated;
    sample.lambda_min = metrics.lambda_min;
    sample.lambda_avg = metrics.lambda_avg;
    // scc_count predates the metric suite; ReachabilityMetric now computes
    // it in the same Tarjan pass as scc_frac (values unchanged — the golden
    // series hashes pin them).
    sample.scc_count = metrics.scc_count;
    sample.scc_frac = metrics.scc_frac;
    sample.wcc_frac = metrics.wcc_frac;
    sample.articulation_points = metrics.articulation_points;
    sample.bridges = metrics.bridges;
    sample.out_degree_min = metrics.out_degree_min;
    sample.in_degree_min = metrics.in_degree_min;
    sample.kappa_degree_gap =
        std::min(metrics.out_degree_min, metrics.in_degree_min) - sample.kappa_min;
    return sample;
}

flow::ConnectivityResult ConnectivityAnalyzer::analyze_graph(
    const graph::Digraph& g, exec::ThreadPool* pool,
    flow::PairReuseHook* reuse) const {
    flow::ConnectivityOptions options;
    options.sample_fraction = options_.sample_c;
    options.min_sources = options_.min_sources;
    options.pool = pool;
    options.use_push_relabel = options_.use_push_relabel;
    options.use_certificate = options_.use_certificate;
    options.reuse = reuse;
    return flow::vertex_connectivity(g, options);
}

analysis::ResilienceMetrics ConnectivityAnalyzer::analyze_metrics(
    const graph::Digraph& g, exec::ThreadPool* pool) const {
    return analysis::run_metrics(analysis::MetricContext{
        g, options_.sample_c, options_.min_sources, pool,
        options_.use_certificate});
}

}  // namespace kadsim::core
