#include "core/analyzer.h"

namespace kadsim::core {

ConnectivitySample ConnectivityAnalyzer::analyze(const graph::RoutingSnapshot& snap,
                                                 exec::ThreadPool* pool) const {
    ConnectivitySample sample;
    sample.time_min = static_cast<double>(snap.time_ms) / 60000.0;
    sample.removed_total = snap.removed_total;
    const graph::Digraph g = snap.to_digraph();
    sample.n = g.vertex_count();
    sample.m = g.edge_count();
    if (sample.n == 0) return sample;

    sample.scc_count = graph::strongly_connected_components(g);
    sample.reciprocity = g.reciprocity();

    const flow::ConnectivityResult r = analyze_graph(g, pool);
    sample.kappa_min = r.kappa_min;
    sample.kappa_avg = r.kappa_avg;
    sample.pairs_evaluated = r.pairs_evaluated;
    return sample;
}

flow::ConnectivityResult ConnectivityAnalyzer::analyze_graph(
    const graph::Digraph& g, exec::ThreadPool* pool) const {
    flow::ConnectivityOptions options;
    options.sample_fraction = options_.sample_c;
    options.min_sources = options_.min_sources;
    options.pool = pool;
    options.use_push_relabel = options_.use_push_relabel;
    return flow::vertex_connectivity(g, options);
}

}  // namespace kadsim::core
