// Registry of the paper's simulation scenarios A–L (§5.3–§5.8).
//
// Naming follows the paper:
//   A/B: churn 0/1, no data traffic, sizes 250/2500          (Figs. 2–3)
//   C/D: churn 0/1, with data traffic                        (Figs. 4–5)
//   E/F: churn 1/1, with data traffic                        (Figs. 6–7)
//   G/H: churn 10/10, with data traffic                      (Figs. 8–9)
//   I:   s ∈ {1,5}, loss none, churn {1/1, 10/10}, k = 20    (Fig. 11)
//   J/K/L: loss {low,med,high} × s {1,5}, churn {-, 1/1, 10/10} (Figs. 12–14)
//
// Paper parameter rules honoured here:
//   * default b=160, α=3;
//   * churn simulations with loss `none` not aimed at evaluating s use s=1
//     ("This allows quick reaction to nodes leaving", §5.3);
//   * with data traffic: 10 lookups + 1 dissemination per node-minute;
//   * phases: setup [0,30), stabilization [30,120), churn from 120 (§5.4).
//
// Horizons and the large-network size honour REPRO_SCALE (DESIGN.md §6):
// "paper" reproduces the authors' exact sizes/durations; "quick" (default)
// keeps the small network paper-exact and scales the large one down to a
// 2-core budget.
#ifndef KADSIM_CORE_REGISTRY_H
#define KADSIM_CORE_REGISTRY_H

#include <string>

#include "core/experiment.h"

namespace kadsim::core {

/// Default worker count for analysis/bench execution: REPRO_THREADS if set,
/// otherwise all hardware threads (never less than 1).
[[nodiscard]] int default_thread_count();

/// Scale-resolved experiment defaults, all REPRO_* env overridable.
struct ReproScale {
    int size_small = 250;
    int size_large = 400;
    sim::SimTime churn_figs_end = sim::minutes(360);  // paper: 1400
    sim::SimTime snapshot_interval = sim::minutes(30);
    double sample_c = 0.02;
    int min_sources = 4;
    int threads = default_thread_count();
    std::uint64_t seed = 20170327;

    /// Reads REPRO_SCALE / REPRO_* environment knobs.
    static ReproScale from_env();
};

/// Scenario families, parameterized exactly along the paper's dimensions.
class PaperScenarios {
public:
    explicit PaperScenarios(ReproScale scale) : scale_(scale) {}

    [[nodiscard]] const ReproScale& scale() const noexcept { return scale_; }

    // Simulations A–H (bucket-size sweeps, Figures 2–9 and Table 2).
    [[nodiscard]] ExperimentConfig sim_a(int k) const;  // 250, 0/1, no traffic
    [[nodiscard]] ExperimentConfig sim_b(int k) const;  // 2500, 0/1, no traffic
    [[nodiscard]] ExperimentConfig sim_c(int k) const;  // 250, 0/1, traffic
    [[nodiscard]] ExperimentConfig sim_d(int k) const;  // 2500, 0/1, traffic
    [[nodiscard]] ExperimentConfig sim_e(int k) const;  // 250, 1/1, traffic
    [[nodiscard]] ExperimentConfig sim_f(int k) const;  // 2500, 1/1, traffic
    [[nodiscard]] ExperimentConfig sim_g(int k, int alpha = 3) const;  // 250, 10/10
    [[nodiscard]] ExperimentConfig sim_h(int k, int alpha = 3) const;  // 2500, 10/10

    // Simulation I (staleness without loss, Figure 11): k=20, large network.
    [[nodiscard]] ExperimentConfig sim_i(int s, const scen::ChurnSpec& churn) const;

    // Simulations J/K/L (message loss × staleness, Figures 12–14).
    [[nodiscard]] ExperimentConfig sim_j(net::LossLevel loss, int s) const;
    [[nodiscard]] ExperimentConfig sim_k(net::LossLevel loss, int s) const;
    [[nodiscard]] ExperimentConfig sim_l(net::LossLevel loss, int s) const;

    // §5.7: C/D with b = 80.
    [[nodiscard]] ExperimentConfig sim_c_b80(int k) const;
    [[nodiscard]] ExperimentConfig sim_d_b80(int k) const;

    // Adversarial fault family (beyond the paper; see src/fault/models.h):
    // stabilized network, then removals with no arrivals from minute 120 —
    // uniformly random (the equal-budget baseline), highest-in-degree,
    // κ-pin starvation, or one correlated XOR-region cut at minute 150.
    // `large` selects the paper's large network size, else the small one.
    [[nodiscard]] ExperimentConfig attack_random(bool large = false) const;
    [[nodiscard]] ExperimentConfig attack_degree(bool large = false) const;
    [[nodiscard]] ExperimentConfig attack_kappa(bool large = false) const;
    [[nodiscard]] ExperimentConfig attack_region(bool large = false) const;

    /// Removal budget per minute the per-minute attack scenarios use.
    [[nodiscard]] static int attack_rate(int size);

    // Scale family (beyond the paper's sizes): fixed n = 2000 / 5000
    // networks under the paper's 1/1 churn on a short horizon, sized to
    // exercise the CSR flow kernel rather than the simulator (no data
    // traffic — the cost being measured is the per-snapshot κ analysis).
    // `bench/scale_family` runs these and records wall time plus the flow
    // kernel's peak arena bytes.
    [[nodiscard]] ExperimentConfig scale_2k() const;
    [[nodiscard]] ExperimentConfig scale_5k() const;
    // Upper tiers of the scale family: 20k runs at REPRO_SCALE=paper and
    // above, 100k only at REPRO_SCALE=full (bench/scale_family gates on
    // those tiers — the tiers only bound which configs the bench *runs*).
    [[nodiscard]] ExperimentConfig scale_20k() const;
    [[nodiscard]] ExperimentConfig scale_100k() const;

    // Sharded simulator family (million-node core): region-sharded overlays
    // exercising the struct-of-arrays node arena, flat buckets and calendar
    // queue at population scales the flow analysis never sees. Churn rates
    // are per region (16 × 10/10 and 64 × 10/10 node-swaps per minute).
    // sim_100k is meant for REPRO_SCALE=paper and above; sim_1m only for
    // REPRO_SCALE=full — never CI (bench/micro_kademlia gates on the tiers).
    [[nodiscard]] ExperimentConfig sim_100k() const;
    [[nodiscard]] ExperimentConfig sim_1m() const;

    // Metric family (beyond the paper): fixed n = 250 / 1000 networks under
    // the paper's 1/1 churn with no data traffic, 180-min horizon, 30-min
    // snapshots — sized so `bench/metric_suite` exercises the full
    // multi-metric analysis (κ, sampled λ, reachability fractions, cut
    // structure) at two scales in CI time.
    [[nodiscard]] ExperimentConfig metrics_250() const;
    [[nodiscard]] ExperimentConfig metrics_1000() const;

    /// Churn-phase start in minutes (Table 2 aggregates from here on).
    [[nodiscard]] static double churn_start_min() { return 120.0; }

private:
    [[nodiscard]] ExperimentConfig base(const std::string& name, int size, int k,
                                        bool traffic, scen::ChurnSpec churn,
                                        sim::SimTime end) const;
    [[nodiscard]] ExperimentConfig attack_base(const std::string& name,
                                               fault::ModelKind model,
                                               bool large) const;

    ReproScale scale_;
};

}  // namespace kadsim::core

#endif  // KADSIM_CORE_REGISTRY_H
