#include "core/registry.h"

#include <algorithm>

#include "util/env.h"

namespace kadsim::core {

int default_thread_count() { return std::max(1, util::repro_threads()); }

ReproScale ReproScale::from_env() {
    ReproScale s;
    const bool paper = util::repro_scale() != util::ReproScale::kQuick;
    s.size_small = util::repro_size_small();
    s.size_large = util::repro_size_large();
    s.churn_figs_end =
        sim::minutes(util::env_int("REPRO_END_MIN", paper ? 1400 : 360));
    s.snapshot_interval = sim::minutes(util::env_int("REPRO_SNAPSHOT_MIN", 30));
    s.sample_c = util::repro_sample_c();
    s.threads = default_thread_count();
    s.seed = util::repro_seed();
    return s;
}

ExperimentConfig PaperScenarios::base(const std::string& name, int size, int k,
                                      bool traffic, scen::ChurnSpec churn,
                                      sim::SimTime end) const {
    ExperimentConfig cfg;
    cfg.scenario.name = name;
    cfg.scenario.initial_size = size;
    cfg.scenario.seed = scale_.seed;
    cfg.scenario.kad.k = k;
    cfg.scenario.kad.b = 160;
    cfg.scenario.kad.alpha = 3;
    // §5.3: churn simulations with loss none (not evaluating s) use s=1.
    cfg.scenario.kad.s = churn.any() ? 1 : 5;
    cfg.scenario.traffic.enabled = traffic;
    cfg.scenario.fault.churn = churn;
    cfg.scenario.phases.end = end;
    cfg.snapshot_interval = scale_.snapshot_interval;
    cfg.analyzer.sample_c = scale_.sample_c;
    cfg.analyzer.min_sources = scale_.min_sources;
    cfg.analyzer.threads = scale_.threads;
    return cfg;
}

namespace {
/// 0/1 churn drains the network at one node per minute from minute 120; run
/// just past the drain (the paper's Figs. 2–5 end with ≈10 nodes left).
sim::SimTime drain_end(int size) {
    return sim::minutes(120) + sim::minutes(size);
}
}  // namespace

ExperimentConfig PaperScenarios::sim_a(int k) const {
    return base("A:size=" + std::to_string(scale_.size_small) + ",churn=0/1,k=" +
                    std::to_string(k),
                scale_.size_small, k, false, scen::ChurnSpec{0, 1},
                drain_end(scale_.size_small));
}

ExperimentConfig PaperScenarios::sim_b(int k) const {
    return base("B:size=" + std::to_string(scale_.size_large) + ",churn=0/1,k=" +
                    std::to_string(k),
                scale_.size_large, k, false, scen::ChurnSpec{0, 1},
                drain_end(scale_.size_large));
}

ExperimentConfig PaperScenarios::sim_c(int k) const {
    return base("C:size=" + std::to_string(scale_.size_small) +
                    ",churn=0/1,traffic,k=" + std::to_string(k),
                scale_.size_small, k, true, scen::ChurnSpec{0, 1},
                drain_end(scale_.size_small));
}

ExperimentConfig PaperScenarios::sim_d(int k) const {
    return base("D:size=" + std::to_string(scale_.size_large) +
                    ",churn=0/1,traffic,k=" + std::to_string(k),
                scale_.size_large, k, true, scen::ChurnSpec{0, 1},
                drain_end(scale_.size_large));
}

ExperimentConfig PaperScenarios::sim_e(int k) const {
    return base("E:size=" + std::to_string(scale_.size_small) +
                    ",churn=1/1,traffic,k=" + std::to_string(k),
                scale_.size_small, k, true, scen::ChurnSpec{1, 1},
                scale_.churn_figs_end);
}

ExperimentConfig PaperScenarios::sim_f(int k) const {
    return base("F:size=" + std::to_string(scale_.size_large) +
                    ",churn=1/1,traffic,k=" + std::to_string(k),
                scale_.size_large, k, true, scen::ChurnSpec{1, 1},
                scale_.churn_figs_end);
}

ExperimentConfig PaperScenarios::sim_g(int k, int alpha) const {
    ExperimentConfig cfg =
        base("G:size=" + std::to_string(scale_.size_small) +
                 ",churn=10/10,traffic,k=" + std::to_string(k) + ",alpha=" +
                 std::to_string(alpha),
             scale_.size_small, k, true, scen::ChurnSpec{10, 10},
             scale_.churn_figs_end);
    cfg.scenario.kad.alpha = alpha;
    return cfg;
}

ExperimentConfig PaperScenarios::sim_h(int k, int alpha) const {
    ExperimentConfig cfg =
        base("H:size=" + std::to_string(scale_.size_large) +
                 ",churn=10/10,traffic,k=" + std::to_string(k) + ",alpha=" +
                 std::to_string(alpha),
             scale_.size_large, k, true, scen::ChurnSpec{10, 10},
             scale_.churn_figs_end);
    cfg.scenario.kad.alpha = alpha;
    return cfg;
}

ExperimentConfig PaperScenarios::sim_i(int s, const scen::ChurnSpec& churn) const {
    ExperimentConfig cfg = base(
        "I:churn=" + churn.label() + ",s=" + std::to_string(s) + ",k=20",
        scale_.size_large, 20, true, churn, scale_.churn_figs_end);
    cfg.scenario.kad.s = s;
    return cfg;
}

namespace {
ExperimentConfig with_loss(ExperimentConfig cfg, net::LossLevel loss, int s) {
    cfg.scenario.loss = loss;
    cfg.scenario.kad.s = s;
    return cfg;
}
}  // namespace

ExperimentConfig PaperScenarios::sim_j(net::LossLevel loss, int s) const {
    ExperimentConfig cfg =
        base("J:loss=" + std::string(net::to_string(loss)) + ",s=" +
                 std::to_string(s) + ",k=20",
             scale_.size_large, 20, true, scen::ChurnSpec{0, 0},
             scale_.churn_figs_end);
    return with_loss(std::move(cfg), loss, s);
}

ExperimentConfig PaperScenarios::sim_k(net::LossLevel loss, int s) const {
    ExperimentConfig cfg =
        base("K:loss=" + std::string(net::to_string(loss)) + ",s=" +
                 std::to_string(s) + ",k=20,churn=1/1",
             scale_.size_large, 20, true, scen::ChurnSpec{1, 1},
             scale_.churn_figs_end);
    return with_loss(std::move(cfg), loss, s);
}

ExperimentConfig PaperScenarios::sim_l(net::LossLevel loss, int s) const {
    ExperimentConfig cfg =
        base("L:loss=" + std::string(net::to_string(loss)) + ",s=" +
                 std::to_string(s) + ",k=20,churn=10/10",
             scale_.size_large, 20, true, scen::ChurnSpec{10, 10},
             scale_.churn_figs_end);
    return with_loss(std::move(cfg), loss, s);
}

ExperimentConfig PaperScenarios::attack_base(const std::string& name,
                                             fault::ModelKind model,
                                             bool large) const {
    const int size = large ? scale_.size_large : scale_.size_small;
    // Equal removal budgets across models: `rate` victims per minute, no
    // arrivals, for the fixed 80-minute attack window after stabilization
    // (a 64% budget at the default rate). No data traffic: the adversary
    // strikes a quiescent overlay, so routing tables cannot repair through
    // per-minute lookups (with repair traffic on, removal at these rates is
    // outpaced by 10 lookups/node-minute and every model converges to the
    // random baseline — measured while tuning this family).
    ExperimentConfig cfg = base(name + ":size=" + std::to_string(size) + ",k=20",
                                size, 20, false, scen::ChurnSpec{0, attack_rate(size)},
                                sim::minutes(200));
    cfg.scenario.kad.s = 1;  // quick reaction to departures, as in §5.3 churn
    cfg.scenario.fault.model = model;
    cfg.snapshot_interval = sim::minutes(10);  // resolve the degradation curve
    return cfg;
}

int PaperScenarios::attack_rate(int size) { return std::max(1, size / 125); }

ExperimentConfig PaperScenarios::attack_random(bool large) const {
    return attack_base("ATK-random", fault::ModelKind::kRandomChurn, large);
}

ExperimentConfig PaperScenarios::attack_degree(bool large) const {
    return attack_base("ATK-degree", fault::ModelKind::kDegreeAttack, large);
}

ExperimentConfig PaperScenarios::attack_kappa(bool large) const {
    return attack_base("ATK-kappa", fault::ModelKind::kKappaAttack, large);
}

ExperimentConfig PaperScenarios::attack_region(bool large) const {
    const int size = large ? scale_.size_large : scale_.size_small;
    ExperimentConfig cfg = base("ATK-region:size=" + std::to_string(size) + ",k=20",
                                size, 20, false, scen::ChurnSpec{0, 0},
                                sim::minutes(200));
    cfg.scenario.kad.s = 1;
    cfg.scenario.fault.model = fault::ModelKind::kRegionOutage;
    cfg.scenario.fault.outage_at = sim::minutes(150);
    cfg.scenario.fault.outage_prefix_bits = 2;  // one quarter of the id space
    cfg.scenario.fault.outage_prefix = 0;
    cfg.snapshot_interval = sim::minutes(10);
    return cfg;
}

namespace {
/// Scale-family horizon: setup + stabilization + one hour of churn. Hourly
/// snapshots (stabilization, churn onset, churned) keep the bench a few
/// minutes long at n = 2000: each analysis is c·n sources × n sinks of
/// max-flow, so the snapshot cadence — not the simulator — sets the cost.
constexpr long long kScaleFamilyEndMin = 180;
constexpr long long kScaleFamilySnapshotMin = 60;
}  // namespace

ExperimentConfig PaperScenarios::scale_2k() const {
    ExperimentConfig cfg =
        base("SCALE-2K:size=2000,churn=1/1,k=20", 2000, 20, false,
             scen::ChurnSpec{1, 1}, sim::minutes(kScaleFamilyEndMin));
    cfg.snapshot_interval = sim::minutes(kScaleFamilySnapshotMin);
    return cfg;
}

ExperimentConfig PaperScenarios::scale_5k() const {
    ExperimentConfig cfg =
        base("SCALE-5K:size=5000,churn=1/1,k=20", 5000, 20, false,
             scen::ChurnSpec{1, 1}, sim::minutes(kScaleFamilyEndMin));
    cfg.snapshot_interval = sim::minutes(kScaleFamilySnapshotMin);
    return cfg;
}

ExperimentConfig PaperScenarios::scale_20k() const {
    ExperimentConfig cfg =
        base("SCALE-20K:size=20000,churn=1/1,k=20", 20000, 20, false,
             scen::ChurnSpec{1, 1}, sim::minutes(kScaleFamilyEndMin));
    cfg.snapshot_interval = sim::minutes(kScaleFamilySnapshotMin);
    return cfg;
}

ExperimentConfig PaperScenarios::scale_100k() const {
    ExperimentConfig cfg =
        base("SCALE-100K:size=100000,churn=1/1,k=20", 100000, 20, false,
             scen::ChurnSpec{1, 1}, sim::minutes(kScaleFamilyEndMin));
    cfg.snapshot_interval = sim::minutes(kScaleFamilySnapshotMin);
    return cfg;
}

ExperimentConfig PaperScenarios::sim_100k() const {
    ExperimentConfig cfg =
        base("SIM-100K:size=100000,regions=16,churn=10/10,k=20", 100000, 20, false,
             scen::ChurnSpec{10, 10}, sim::minutes(kScaleFamilyEndMin));
    cfg.scenario.regions = 16;
    cfg.scenario.shard_threads = 0;  // one thread per region, capped by hardware
    cfg.snapshot_interval = sim::minutes(kScaleFamilySnapshotMin);
    return cfg;
}

ExperimentConfig PaperScenarios::sim_1m() const {
    ExperimentConfig cfg =
        base("SIM-1M:size=1000000,regions=64,churn=10/10,k=20", 1000000, 20, false,
             scen::ChurnSpec{10, 10}, sim::minutes(kScaleFamilyEndMin));
    cfg.scenario.regions = 64;
    cfg.scenario.shard_threads = 0;
    cfg.snapshot_interval = sim::minutes(kScaleFamilySnapshotMin);
    return cfg;
}

namespace {
/// Metric-family horizon: setup + stabilization + one hour of churn, with
/// the standard half-hour snapshot cadence (six analyzed snapshots).
constexpr long long kMetricFamilyEndMin = 180;
constexpr long long kMetricFamilySnapshotMin = 30;
}  // namespace

ExperimentConfig PaperScenarios::metrics_250() const {
    ExperimentConfig cfg =
        base("METRICS-250:size=250,churn=1/1,k=20", 250, 20, false,
             scen::ChurnSpec{1, 1}, sim::minutes(kMetricFamilyEndMin));
    cfg.snapshot_interval = sim::minutes(kMetricFamilySnapshotMin);
    return cfg;
}

ExperimentConfig PaperScenarios::metrics_1000() const {
    ExperimentConfig cfg =
        base("METRICS-1000:size=1000,churn=1/1,k=20", 1000, 20, false,
             scen::ChurnSpec{1, 1}, sim::minutes(kMetricFamilyEndMin));
    cfg.snapshot_interval = sim::minutes(kMetricFamilySnapshotMin);
    return cfg;
}

ExperimentConfig PaperScenarios::sim_c_b80(int k) const {
    ExperimentConfig cfg = sim_c(k);
    cfg.scenario.name += ",b=80";
    cfg.scenario.kad.b = 80;
    return cfg;
}

ExperimentConfig PaperScenarios::sim_d_b80(int k) const {
    ExperimentConfig cfg = sim_d(k);
    cfg.scenario.name += ",b=80";
    cfg.scenario.kad.b = 80;
    return cfg;
}

}  // namespace kadsim::core
