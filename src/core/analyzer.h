// Connectivity analysis pipeline (paper §5.2): routing snapshot → directed
// connectivity graph → Even transformation → max-flow per vertex pair →
// κ_min / κ_avg, with the paper's c·n source sampling.
#ifndef KADSIM_CORE_ANALYZER_H
#define KADSIM_CORE_ANALYZER_H

#include <cstdint>

#include "flow/vertex_connectivity.h"
#include "graph/snapshot.h"

namespace kadsim::exec {
class ThreadPool;
}  // namespace kadsim::exec

namespace kadsim::core {

struct AnalyzerOptions {
    /// Fraction c of out-degree-smallest vertices used as flow sources
    /// (paper: c = 0.02 suffices; 1.0 = exact).
    double sample_c = 0.02;
    /// At least this many sources even in small graphs.
    int min_sources = 4;
    /// Desired analysis parallelism. The experiment engine sizes its
    /// exec::ThreadPool from this (1 = fully inline); results are
    /// bit-identical for any value.
    int threads = 1;
    /// Solve with the HIPR-style push-relabel instead of Dinic.
    bool use_push_relabel = false;
};

/// One analyzed snapshot: the quantities the paper's figures plot.
struct ConnectivitySample {
    double time_min = 0.0;
    int n = 0;                ///< live network size
    std::int64_t m = 0;       ///< connectivity-graph edges
    int kappa_min = 0;        ///< minimum connectivity (figures' "Min")
    double kappa_avg = 0.0;   ///< average connectivity (figures' "Avg")
    std::uint64_t pairs_evaluated = 0;
    int scc_count = 1;        ///< strongly connected components (1 ⇔ κ>0)
    double reciprocity = 1.0; ///< §5.2: graphs are nearly undirected
    /// Cumulative fault-layer removals when the snapshot was taken (attack
    /// scenarios read κ degradation against this removal budget).
    std::uint64_t removed_total = 0;
};

class ConnectivityAnalyzer {
public:
    explicit ConnectivityAnalyzer(AnalyzerOptions options) : options_(options) {}

    /// Full pipeline on a routing snapshot. `pool` (optional) runs the
    /// per-source flow jobs on a persistent execution pool instead of inline.
    [[nodiscard]] ConnectivitySample analyze(const graph::RoutingSnapshot& snap,
                                             exec::ThreadPool* pool = nullptr) const;

    /// κ on an already-built connectivity graph.
    [[nodiscard]] flow::ConnectivityResult analyze_graph(
        const graph::Digraph& g, exec::ThreadPool* pool = nullptr) const;

    [[nodiscard]] const AnalyzerOptions& options() const noexcept { return options_; }

private:
    AnalyzerOptions options_;
};

}  // namespace kadsim::core

#endif  // KADSIM_CORE_ANALYZER_H
