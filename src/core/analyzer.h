// Resilience analysis pipeline (paper §5.2, extended): routing snapshot →
// directed connectivity graph → Even transformation → max-flow per vertex
// pair → κ_min / κ_avg with the paper's c·n source sampling, plus the
// analysis-layer metric suite (sampled edge connectivity λ, reachability
// fractions, cut structure, degree floor) fanned out on the same pool.
#ifndef KADSIM_CORE_ANALYZER_H
#define KADSIM_CORE_ANALYZER_H

#include <cstdint>
#include <memory>

#include "analysis/incremental.h"
#include "analysis/metrics.h"
#include "flow/vertex_connectivity.h"
#include "graph/snapshot.h"

namespace kadsim::exec {
class ThreadPool;
}  // namespace kadsim::exec

namespace kadsim::core {

struct AnalyzerOptions {
    /// Fraction c of out-degree-smallest vertices used as flow sources
    /// (paper: c = 0.02 suffices; 1.0 = exact).
    double sample_c = 0.02;
    /// At least this many sources even in small graphs.
    int min_sources = 4;
    /// Desired analysis parallelism. The experiment engine sizes its
    /// exec::ThreadPool from this (1 = fully inline); results are
    /// bit-identical for any value.
    int threads = 1;
    /// Solve with the HIPR-style push-relabel instead of Dinic.
    bool use_push_relabel = false;
    /// Preprocess each snapshot graph with the Nagamochi–Ibaraki sparse
    /// certificate before the κ/λ flow sweeps (graph/certificate.h). The
    /// certificate degree k is chosen above every evaluated pair's cap, so
    /// reported values are bit-identical with or without it.
    bool use_certificate = false;
    /// Reuse bound-settled κ/λ pairs across consecutive snapshots via
    /// witness revalidation (analysis/incremental.h). Values stay
    /// bit-identical; snapshots must be analyzed one at a time, in series
    /// order — the experiment engine forces its sequential path when set.
    bool use_delta = false;
};

/// One analyzed snapshot: the paper's κ quantities plus the analysis-layer
/// resilience metrics. The first nine fields predate the metric suite and
/// their serialization (analyzer cache CSV, golden series hashes) is pinned
/// byte-for-byte — new metrics are appended, never interleaved.
struct ResilienceSample {
    double time_min = 0.0;
    int n = 0;                ///< live network size
    std::int64_t m = 0;       ///< connectivity-graph edges
    int kappa_min = 0;        ///< minimum connectivity (figures' "Min")
    double kappa_avg = 0.0;   ///< average connectivity (figures' "Avg")
    std::uint64_t pairs_evaluated = 0;
    int scc_count = 1;        ///< strongly connected components (1 ⇔ κ>0)
    double reciprocity = 1.0; ///< §5.2: graphs are nearly undirected
    /// Cumulative fault-layer removals when the snapshot was taken (attack
    /// scenarios read κ degradation against this removal budget).
    std::uint64_t removed_total = 0;

    // --- analysis-layer metrics (src/analysis/metrics.h) -----------------
    int lambda_min = 0;          ///< sampled edge connectivity λ(D)
    double lambda_avg = 0.0;     ///< mean λ(u,v) over sampled pairs
    double scc_frac = 1.0;       ///< largest SCC share of live nodes
    double wcc_frac = 1.0;       ///< largest weak-component share
    int articulation_points = 0; ///< single-vertex weak cut points
    int bridges = 0;             ///< single-link weak cut edges
    int out_degree_min = 0;
    int in_degree_min = 0;
    /// δ_min − κ_min with δ_min = min(out_degree_min, in_degree_min): how far
    /// κ sits below its degree ceiling (0 ⇔ the weakest vertex's links are
    /// fully disjoint paths).
    int kappa_degree_gap = 0;

    // --- lookup workload metrics (src/stats/histogram.h) -----------------
    // Filled from the Runner-attached snapshot companions; appended after
    // the metric-suite block per the serialization contract above.
    std::uint64_t lookups_done = 0;     ///< measured lookups this interval
    double lookup_success_rate = 0.0;   ///< of lookups_done (0 when none)
    double lookup_hop_p50 = 0.0;
    double lookup_hop_p99 = 0.0;
    double lookup_latency_p50_ms = 0.0;
    double lookup_latency_p99_ms = 0.0;
    std::uint64_t probes_done = 0;      ///< snapshot-time probe walks
    double probe_success_rate = 0.0;    ///< reached the true closest node
    double probe_hop_p50 = 0.0;
    double probe_hop_p99 = 0.0;
};

/// The pre-metric-suite name; κ-focused call sites keep using it.
using ConnectivitySample = ResilienceSample;

class ConnectivityAnalyzer {
public:
    explicit ConnectivityAnalyzer(AnalyzerOptions options) : options_(options) {}

    /// Full pipeline on a routing snapshot: κ plus the metric suite. `pool`
    /// (optional) runs the per-source flow jobs and the per-snapshot metrics
    /// on a persistent execution pool instead of inline; results are
    /// bit-identical either way. With options().use_delta, calls must not
    /// overlap and snapshots must arrive in series order (the delta cache
    /// lives on this analyzer); without it, analyze is const-threadsafe.
    [[nodiscard]] ResilienceSample analyze(const graph::RoutingSnapshot& snap,
                                           exec::ThreadPool* pool = nullptr) const;

    /// κ on an already-built connectivity graph. `reuse` (optional, not
    /// owned) is handed to the kernel as ConnectivityOptions::reuse.
    [[nodiscard]] flow::ConnectivityResult analyze_graph(
        const graph::Digraph& g, exec::ThreadPool* pool = nullptr,
        flow::PairReuseHook* reuse = nullptr) const;

    /// The metric suite on an already-built connectivity graph.
    [[nodiscard]] analysis::ResilienceMetrics analyze_metrics(
        const graph::Digraph& g, exec::ThreadPool* pool = nullptr) const;

    [[nodiscard]] const AnalyzerOptions& options() const noexcept { return options_; }

    /// The cross-snapshot reuse cache (counters for benches/tests), or
    /// nullptr before the first analyze() under use_delta.
    [[nodiscard]] const analysis::SnapshotDeltaCache* delta_cache() const noexcept {
        return delta_.get();
    }

private:
    AnalyzerOptions options_;
    /// Lazily created on the first analyze() when options_.use_delta; mutable
    /// because the cache is the one piece of cross-call state an otherwise
    /// const analyzer carries (see the analyze() threading contract).
    mutable std::unique_ptr<analysis::SnapshotDeltaCache> delta_;
};

}  // namespace kadsim::core

#endif  // KADSIM_CORE_ANALYZER_H
