#include "flow/dinic.h"

#include <algorithm>

#include "util/assert.h"

namespace kadsim::flow {

int Dinic::max_flow(FlowWorkspace& ws, int s, int t, int flow_limit) {
    KADSIM_ASSERT(s != t);
    const auto n = static_cast<std::size_t>(ws.network().vertex_count());
    ws.level.assign(n, -1);
    ws.iter.assign(n, 0);
    ws.queue.reserve(n);

    int flow = 0;
    while (flow < flow_limit && bfs(ws, s, t)) {
        std::fill(ws.iter.begin(), ws.iter.end(), 0);
        while (flow < flow_limit) {
            const int pushed = dfs(ws, s, t, flow_limit - flow);
            if (pushed == 0) break;
            flow += pushed;
        }
    }
    return flow;
}

bool Dinic::bfs(FlowWorkspace& ws, int s, int t) {
    const FlowNetwork& net = ws.network();
    std::fill(ws.level.begin(), ws.level.end(), -1);
    ws.queue.clear();
    ws.queue.push_back(s);
    ws.level[static_cast<std::size_t>(s)] = 0;
    for (std::size_t head = 0; head < ws.queue.size(); ++head) {
        const int v = ws.queue[head];
        for (const int arc_index : net.arcs_of(v)) {
            const auto& arc = ws.arc(arc_index);
            if (arc.cap > 0 && ws.level[static_cast<std::size_t>(arc.to)] < 0) {
                ws.level[static_cast<std::size_t>(arc.to)] =
                    ws.level[static_cast<std::size_t>(v)] + 1;
                if (arc.to == t) return true;
                ws.queue.push_back(arc.to);
            }
        }
    }
    return ws.level[static_cast<std::size_t>(t)] >= 0;
}

int Dinic::dfs(FlowWorkspace& ws, int v, int t, int limit) {
    if (v == t) return limit;
    const FlowNetwork& net = ws.network();
    const auto vs = static_cast<std::size_t>(v);
    const auto arcs = net.arcs_of(v);
    for (; ws.iter[vs] < arcs.size(); ++ws.iter[vs]) {
        const int arc_index = arcs[ws.iter[vs]];
        const auto& arc = ws.arc(arc_index);
        if (arc.cap <= 0) continue;
        const auto ws_to = static_cast<std::size_t>(arc.to);
        if (ws.level[ws_to] != ws.level[vs] + 1) continue;
        const int pushed = dfs(ws, arc.to, t, std::min(limit, arc.cap));
        if (pushed > 0) {
            ws.add_flow(arc_index, pushed);
            return pushed;
        }
        // Dead end: prune this vertex from the level graph.
        ws.level[ws_to] = -1;
    }
    return 0;
}

}  // namespace kadsim::flow
