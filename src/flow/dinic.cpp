#include "flow/dinic.h"

#include <algorithm>

#include "util/assert.h"

namespace kadsim::flow {

int Dinic::max_flow(FlowNetwork& net, int s, int t, int flow_limit) {
    KADSIM_ASSERT(s != t);
    const auto n = static_cast<std::size_t>(net.vertex_count());
    level_.assign(n, -1);
    iter_.assign(n, 0);
    queue_.reserve(n);

    int flow = 0;
    while (flow < flow_limit && bfs(net, s, t)) {
        std::fill(iter_.begin(), iter_.end(), 0);
        while (flow < flow_limit) {
            const int pushed = dfs(net, s, t, flow_limit - flow);
            if (pushed == 0) break;
            flow += pushed;
        }
    }
    return flow;
}

bool Dinic::bfs(const FlowNetwork& net, int s, int t) {
    std::fill(level_.begin(), level_.end(), -1);
    queue_.clear();
    queue_.push_back(s);
    level_[static_cast<std::size_t>(s)] = 0;
    for (std::size_t head = 0; head < queue_.size(); ++head) {
        const int v = queue_[head];
        for (const int arc_index : net.arcs_of(v)) {
            const auto& arc = net.arc(arc_index);
            if (arc.cap > 0 && level_[static_cast<std::size_t>(arc.to)] < 0) {
                level_[static_cast<std::size_t>(arc.to)] =
                    level_[static_cast<std::size_t>(v)] + 1;
                if (arc.to == t) return true;
                queue_.push_back(arc.to);
            }
        }
    }
    return level_[static_cast<std::size_t>(t)] >= 0;
}

int Dinic::dfs(FlowNetwork& net, int v, int t, int limit) {
    if (v == t) return limit;
    const auto vs = static_cast<std::size_t>(v);
    const auto arcs = net.arcs_of(v);
    for (; iter_[vs] < arcs.size(); ++iter_[vs]) {
        const int arc_index = arcs[iter_[vs]];
        auto& arc = net.arc(arc_index);
        if (arc.cap <= 0) continue;
        const auto ws = static_cast<std::size_t>(arc.to);
        if (level_[ws] != level_[vs] + 1) continue;
        const int pushed = dfs(net, arc.to, t, std::min(limit, arc.cap));
        if (pushed > 0) {
            arc.cap -= pushed;
            net.arc(arc_index ^ 1).cap += pushed;
            return pushed;
        }
        // Dead end: prune this vertex from the level graph.
        level_[ws] = -1;
    }
    return 0;
}

}  // namespace kadsim::flow
