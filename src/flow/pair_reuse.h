// Cross-snapshot pair-reuse hook for the connectivity kernels.
//
// Every settled pair comes with a *two-sided* certificate of its value f:
//
//   * f disjoint u→v paths — proving κ (or λ) ≥ f — and
//   * a separating set of exactly f vertices (κ) or edges (λ) — proving
//     κ (or λ) ≤ f.
//
// The κ/λ workers offer every pair to this hook before computing, and hand
// every settled pair back together with both witness halves; the
// snapshot-delta cache (analysis/incremental.h) stores them keyed by stable
// overlay address, and on a later snapshot a pair is reused iff
//
//   (a) every witness path still exists edge-for-edge in the current
//       graph (the paths are still disjoint — their vertex sets did not
//       change — so value ≥ f still holds), and
//   (b) the stored cut still separates u from v in the current graph
//       (checked by one BFS from u avoiding the cut, so value ≤ f still
//       holds; when the cut is u's own out-row the search dies inside
//       u's neighbourhood).
//
// Together (a) and (b) re-prove value = f against the *current* graph, with
// no reference to the degree bounds the original computation ran under:
// reuse survives degree drift anywhere outside the witness, covers pairs
// settled below their bound, and can never drift — only be refused. (A cut
// member that has left the network is simply skipped: f intact disjoint
// paths cannot all be blocked by fewer than f survivors, so the BFS then
// reaches v and refuses the entry.)
//
// Threading contract: lookup() and store() are called concurrently from
// every flow worker of a sweep. lookup() must only read state that is
// frozen for the duration of the sweep; store() may buffer internally (a
// pair is stored at most once per sweep). Implementations must not let a
// store affect any lookup of the same sweep — that is what keeps results
// bit-identical across thread counts and work distributions.
#ifndef KADSIM_FLOW_PAIR_REUSE_H
#define KADSIM_FLOW_PAIR_REUSE_H

#include <span>

namespace kadsim::flow {

class PairReuseHook {
public:
    virtual ~PairReuseHook() = default;

    /// Attempts to settle (u, v) — current-graph vertex ids — from a stored
    /// witness. Returns the settled value, or -1 to make the kernel compute.
    [[nodiscard]] virtual int lookup(int u, int v) = 0;

    /// Records a settled pair with its two-sided witness. `path_offsets` has
    /// one entry per path plus a terminator, path p's interior vertices
    /// being witness[path_offsets[p] .. path_offsets[p+1]); a zero-length
    /// path is the direct edge u→v (λ only). `cut` is a separating set of
    /// size `value`: vertex ids for κ, flattened (tail, head) id pairs for
    /// λ — the implementation knows which metric it serves. All ids are
    /// current-graph ids; κ cuts must not contain u or v.
    virtual void store(int u, int v, int value, std::span<const int> witness,
                       std::span<const int> path_offsets,
                       std::span<const int> cut) = 0;
};

}  // namespace kadsim::flow

#endif  // KADSIM_FLOW_PAIR_REUSE_H
