#include "flow/even_transform.h"

#include "util/assert.h"

namespace kadsim::flow {

FlowNetwork even_transform(const graph::Digraph& g, int edge_capacity) {
    KADSIM_ASSERT(edge_capacity >= 1);
    const int n = g.vertex_count();
    FlowNetwork net(2 * n);
    net.reserve(static_cast<std::size_t>(g.edge_count()) +
                static_cast<std::size_t>(n));
    // Internal arcs first: arc index of (v', v'') is 2v — handy for cut
    // extraction.
    for (int v = 0; v < n; ++v) {
        net.add_arc(in_vertex(v), out_vertex(v), 1);
    }
    for (int u = 0; u < n; ++u) {
        for (const int w : g.out(u)) {
            net.add_arc(out_vertex(u), in_vertex(w), edge_capacity);
        }
    }
    net.finalize();
    return net;
}

}  // namespace kadsim::flow
