#include "flow/edmonds_karp.h"

#include <algorithm>

#include "util/assert.h"

namespace kadsim::flow {

int EdmondsKarp::max_flow(FlowNetwork& net, int s, int t, int flow_limit) {
    KADSIM_ASSERT(s != t);
    const auto n = static_cast<std::size_t>(net.vertex_count());
    int flow = 0;
    while (flow < flow_limit) {
        parent_arc_.assign(n, -1);
        queue_.clear();
        queue_.push_back(s);
        bool reached = false;
        for (std::size_t head = 0; head < queue_.size() && !reached; ++head) {
            const int v = queue_[head];
            for (const int arc_index : net.arcs_of(v)) {
                const auto& arc = net.arc(arc_index);
                if (arc.cap <= 0 || arc.to == s) continue;
                if (parent_arc_[static_cast<std::size_t>(arc.to)] != -1) continue;
                parent_arc_[static_cast<std::size_t>(arc.to)] = arc_index;
                if (arc.to == t) {
                    reached = true;
                    break;
                }
                queue_.push_back(arc.to);
            }
        }
        if (!reached) break;

        // Bottleneck along the parent chain.
        int bottleneck = flow_limit - flow;
        for (int v = t; v != s;) {
            const int arc_index = parent_arc_[static_cast<std::size_t>(v)];
            bottleneck = std::min(bottleneck, net.arc(arc_index).cap);
            v = net.arc(arc_index ^ 1).to;
        }
        for (int v = t; v != s;) {
            const int arc_index = parent_arc_[static_cast<std::size_t>(v)];
            net.arc(arc_index).cap -= bottleneck;
            net.arc(arc_index ^ 1).cap += bottleneck;
            v = net.arc(arc_index ^ 1).to;
        }
        flow += bottleneck;
    }
    return flow;
}

}  // namespace kadsim::flow
