#include "flow/edmonds_karp.h"

#include <algorithm>

#include "util/assert.h"

namespace kadsim::flow {

int EdmondsKarp::max_flow(FlowWorkspace& ws, int s, int t, int flow_limit) {
    KADSIM_ASSERT(s != t);
    const FlowNetwork& net = ws.network();
    const auto n = static_cast<std::size_t>(net.vertex_count());
    int flow = 0;
    while (flow < flow_limit) {
        ws.parent_arc.assign(n, -1);
        ws.queue.clear();
        ws.queue.push_back(s);
        bool reached = false;
        for (std::size_t head = 0; head < ws.queue.size() && !reached; ++head) {
            const int v = ws.queue[head];
            for (const int arc_index : net.arcs_of(v)) {
                const auto& arc = ws.arc(arc_index);
                if (arc.cap <= 0 || arc.to == s) continue;
                if (ws.parent_arc[static_cast<std::size_t>(arc.to)] != -1) continue;
                ws.parent_arc[static_cast<std::size_t>(arc.to)] = arc_index;
                if (arc.to == t) {
                    reached = true;
                    break;
                }
                ws.queue.push_back(arc.to);
            }
        }
        if (!reached) break;

        // Bottleneck along the parent chain.
        int bottleneck = flow_limit - flow;
        for (int v = t; v != s;) {
            const int arc_index = ws.parent_arc[static_cast<std::size_t>(v)];
            bottleneck = std::min(bottleneck, ws.cap(arc_index));
            v = ws.arc(arc_index ^ 1).to;
        }
        for (int v = t; v != s;) {
            const int arc_index = ws.parent_arc[static_cast<std::size_t>(v)];
            ws.add_flow(arc_index, bottleneck);
            v = ws.arc(arc_index ^ 1).to;
        }
        flow += bottleneck;
    }
    return flow;
}

}  // namespace kadsim::flow
