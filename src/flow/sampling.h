// Source sampling shared by the connectivity kernels (paper §5.2).
//
// Both κ (vertex) and λ (edge) connectivity are minima over ordered vertex
// pairs, and both are bounded above by the source's out-degree — so the same
// reduction applies: evaluate only the c·n vertices with the smallest
// out-degree as sources (against all sinks), and the weakest vertices pin
// the minimum. Extracted from vertex_connectivity.cpp verbatim when the edge
// connectivity kernel arrived; the selection is deterministic (ties by
// index), which the golden-series tests rely on.
#ifndef KADSIM_FLOW_SAMPLING_H
#define KADSIM_FLOW_SAMPLING_H

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

#include "graph/digraph.h"

namespace kadsim::flow {

/// The c·n vertices with the smallest out-degree (ties by index, so the
/// choice is deterministic), ordered ascending by (out-degree, index).
/// fraction >= 1 returns every vertex in index order.
inline std::vector<int> pick_smallest_out_degree_sources(const graph::Digraph& g,
                                                         double fraction,
                                                         int min_sources) {
    const int n = g.vertex_count();
    std::vector<int> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    if (fraction >= 1.0) return order;

    const auto want = static_cast<std::size_t>(
        std::clamp<long long>(static_cast<long long>(std::ceil(fraction * n)),
                              std::max(1, min_sources), n));
    // (out-degree, index) is a strict total order, so selecting the `want`
    // smallest and then ordering that prefix reproduces the stable-sort
    // result exactly — without paying O(n log n) for the ~98% of vertices
    // the sampling never uses.
    const auto by_degree_then_index = [&g](int a, int b) {
        const int da = g.out_degree(a);
        const int db = g.out_degree(b);
        return da != db ? da < db : a < b;
    };
    if (want < order.size()) {
        std::nth_element(order.begin(),
                         order.begin() + static_cast<std::ptrdiff_t>(want),
                         order.end(), by_degree_then_index);
        order.resize(want);
    }
    std::sort(order.begin(), order.end(), by_degree_then_index);
    return order;
}

}  // namespace kadsim::flow

#endif  // KADSIM_FLOW_SAMPLING_H
