// Per-thread mutable state of a max-flow computation over one immutable
// flow::FlowNetwork.
//
// A workspace owns exactly the state a solver mutates: the residual arcs
// (capacity interleaved with the arc head, so the hot BFS/DFS loops touch
// one cache line per arc probe) and the shared scratch buffers of the
// Dinic / Edmonds–Karp / push-relabel kernels. Ownership rule: the attached
// FlowNetwork must outlive the workspace, many workspaces may attach to one
// network concurrently, and a workspace must never be shared across threads.
//
// Every capacity mutation goes through add_flow(), which records the touched
// arc pair in an undo log; reset() restores only those arcs, so the per-pair
// reset cost of a connectivity sweep is O(arcs touched by the previous run)
// instead of O(m+n). With κ ≈ k and degree-capped early stops a run touches
// a few dozen arcs of a multi-thousand-arc network — the log, not the sweep,
// is what makes large-n snapshots affordable.
#ifndef KADSIM_FLOW_FLOW_WORKSPACE_H
#define KADSIM_FLOW_FLOW_WORKSPACE_H

#include <cstdint>
#include <vector>

#include "flow/flow_network.h"
#include "util/assert.h"

namespace kadsim::flow {

class FlowWorkspace {
public:
    /// Residual state of one arc: capacity plus a copy of the head vertex,
    /// interleaved so solvers read both with one load.
    struct ResidualArc {
        int cap = 0;
        int to = 0;
    };

    /// Kernel counters, cumulative across the workspace's lifetime. A
    /// "reset" here is a touched-arc undo of a run that modified anything;
    /// it is counted as a full sweep avoided when the log was shorter than
    /// the arc array (i.e. the undo did strictly less work than the old
    /// O(m+n) capacity sweep).
    struct Stats {
        std::uint64_t arcs_touched = 0;
        std::uint64_t resets = 0;
        std::uint64_t full_sweeps_avoided = 0;
    };

    FlowWorkspace() = default;
    explicit FlowWorkspace(const FlowNetwork& net) { attach(net); }

    /// Binds to `net`: copies the as-built capacities and arc heads, sizes
    /// the scratch buffers, clears the undo log and the counters.
    void attach(const FlowNetwork& net) {
        KADSIM_ASSERT(net.finalized());
        net_ = &net;
        const auto caps = net.original_caps();
        arcs_.resize(caps.size());
        for (std::size_t a = 0; a < caps.size(); ++a) {
            arcs_[a] = ResidualArc{caps[a], net.arc_to(static_cast<int>(a))};
        }
        in_log_.assign(arcs_.size(), 0);
        touched_.clear();
        stats_ = Stats{};
    }

    [[nodiscard]] bool attached() const noexcept { return net_ != nullptr; }
    [[nodiscard]] const FlowNetwork& network() const {
        KADSIM_ASSERT(net_ != nullptr);
        return *net_;
    }

    /// Residual arc (capacity + head) of arc `index`.
    [[nodiscard]] const ResidualArc& arc(int index) const {
        return arcs_[static_cast<std::size_t>(index)];
    }

    /// Residual capacity of arc `index`.
    [[nodiscard]] int cap(int index) const {
        return arcs_[static_cast<std::size_t>(index)].cap;
    }

    /// Routes `delta` units through arc `index` (and its reverse), logging
    /// both arcs for the next reset().
    void add_flow(int index, int delta) {
        touch(index);
        touch(index ^ 1);
        arcs_[static_cast<std::size_t>(index)].cap -= delta;
        arcs_[static_cast<std::size_t>(index ^ 1)].cap += delta;
    }

    /// Flow currently routed through forward arc `index`.
    [[nodiscard]] int flow_on(int index) const {
        return net_->original_cap(index) - cap(index);
    }

    /// Restores every touched arc to its as-built capacity (no-op on a clean
    /// workspace — it neither sweeps nor counts).
    void reset() noexcept {
        if (touched_.empty()) return;
        ++stats_.resets;
        if (touched_.size() < arcs_.size()) ++stats_.full_sweeps_avoided;
        stats_.arcs_touched += touched_.size();
        for (const int a : touched_) {
            arcs_[static_cast<std::size_t>(a)].cap = net_->original_cap(a);
            in_log_[static_cast<std::size_t>(a)] = 0;
        }
        touched_.clear();
    }

    [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

    /// Bytes held by the residual arcs, undo log and scratch buffers (arena
    /// accounting in benches).
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        std::size_t bytes = arcs_.capacity() * sizeof(ResidualArc) +
                            in_log_.capacity() * sizeof(char) +
                            touched_.capacity() * sizeof(int) +
                            level.capacity() * sizeof(int) +
                            iter.capacity() * sizeof(std::size_t) +
                            queue.capacity() * sizeof(int) +
                            parent_arc.capacity() * sizeof(int) +
                            excess.capacity() * sizeof(long long) +
                            height.capacity() * sizeof(int) +
                            height_count.capacity() * sizeof(int) +
                            active.capacity() * sizeof(std::vector<int>);
        for (const auto& bucket : active) bytes += bucket.capacity() * sizeof(int);
        return bytes;
    }

    // Solver scratch, reused across runs within one workspace. Contents are
    // unspecified between max_flow calls; each kernel (re)initializes what it
    // uses. Shared here rather than per-solver so a worker evaluating
    // thousands of pairs holds one arena, not one per algorithm instance.
    std::vector<int> level;               // Dinic: BFS levels
    std::vector<std::size_t> iter;        // Dinic / push-relabel: arc cursors
    std::vector<int> queue;               // BFS queues (Dinic, EK, relabel)
    std::vector<int> parent_arc;          // Edmonds–Karp: augmenting path
    std::vector<long long> excess;        // push-relabel
    std::vector<int> height;              // push-relabel
    std::vector<int> height_count;        // push-relabel: gap heuristic
    std::vector<std::vector<int>> active; // push-relabel: buckets per height

private:
    void touch(int index) {
        const auto a = static_cast<std::size_t>(index);
        if (in_log_[a] == 0) {
            in_log_[a] = 1;
            touched_.push_back(index);
        }
    }

    const FlowNetwork* net_ = nullptr;
    std::vector<ResidualArc> arcs_;  ///< residual cap + head per arc id
    std::vector<char> in_log_;       ///< arc already in the undo log?
    std::vector<int> touched_;       ///< undo log: arcs whose cap may differ
    Stats stats_;
};

}  // namespace kadsim::flow

#endif  // KADSIM_FLOW_FLOW_WORKSPACE_H
