// DIMACS max-flow format (the paper's §5.2 pipeline converts transformed
// graphs "to the supported input format of HIPR (i.e., DIMACS)"). Provided
// for fidelity and interop with external solvers; the in-memory path is the
// default inside this library.
//
// Format:
//   c <comment>
//   p max <nodes> <arcs>
//   n <id> s        (source; ids are 1-based)
//   n <id> t        (sink)
//   a <from> <to> <capacity>
#ifndef KADSIM_FLOW_DIMACS_H
#define KADSIM_FLOW_DIMACS_H

#include <iosfwd>

#include "flow/flow_network.h"

namespace kadsim::flow {

struct DimacsProblem {
    FlowNetwork network{0};
    int source = 0;
    int sink = 0;
};

/// Writes `net` with the given source/sink as a DIMACS max-flow problem.
/// Only forward arcs (even indices) are emitted.
void write_dimacs(const FlowNetwork& net, int source, int sink, std::ostream& out);

/// Parses a DIMACS max-flow problem into a finalized (ready-to-solve)
/// network; throws std::runtime_error on malformed input.
[[nodiscard]] DimacsProblem read_dimacs(std::istream& in);

}  // namespace kadsim::flow

#endif  // KADSIM_FLOW_DIMACS_H
