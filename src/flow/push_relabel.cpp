#include "flow/push_relabel.h"

#include <algorithm>

#include "util/assert.h"

namespace kadsim::flow {

void PushRelabel::global_relabel(const FlowNetwork& net, int s, int t) {
    const int n = net.vertex_count();
    // Reverse BFS from t along residual arcs (arc u→v is traversable in
    // reverse if its residual capacity from u is positive).
    std::fill(height_.begin(), height_.end(), 2 * n);
    height_[static_cast<std::size_t>(t)] = 0;
    std::vector<int> queue{t};
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const int v = queue[head];
        for (const int arc_index : net.arcs_of(v)) {
            // arc_index is an arc v→w; its pair (arc_index^1) is w→v. w can
            // reach v iff residual cap of (w→v) > 0.
            const auto& reverse = net.arc(arc_index ^ 1);
            const int w = net.arc(arc_index).to;
            if (reverse.cap > 0 && height_[static_cast<std::size_t>(w)] == 2 * n) {
                height_[static_cast<std::size_t>(w)] =
                    height_[static_cast<std::size_t>(v)] + 1;
                queue.push_back(w);
            }
        }
    }
    height_[static_cast<std::size_t>(s)] = n;
}

void PushRelabel::activate(int v, int s, int t) {
    if (v == s || v == t) return;
    const auto vs = static_cast<std::size_t>(v);
    if (excess_[vs] <= 0) return;
    const int h = height_[vs];
    // Vertices at height ≥ n cannot reach t (phase 1 strands their excess).
    if (h >= static_cast<int>(height_.size())) return;
    active_[static_cast<std::size_t>(h)].push_back(v);
    highest_ = std::max(highest_, h);
}

int PushRelabel::max_flow(FlowNetwork& net, int s, int t) {
    KADSIM_ASSERT(s != t);
    const int n = net.vertex_count();
    const auto ns = static_cast<std::size_t>(n);
    height_.assign(ns, 0);
    excess_.assign(ns, 0);
    iter_.assign(ns, 0);
    count_.assign(2 * ns + 1, 0);
    active_.assign(2 * ns + 1, {});
    highest_ = 0;

    global_relabel(net, s, t);
    for (int v = 0; v < n; ++v) {
        ++count_[static_cast<std::size_t>(std::min(height_[static_cast<std::size_t>(v)],
                                                   2 * n))];
    }

    // Saturate all arcs out of s.
    for (const int arc_index : net.arcs_of(s)) {
        auto& arc = net.arc(arc_index);
        if (arc_index % 2 != 0 || arc.cap <= 0) continue;  // forward arcs only
        const int w = arc.to;
        excess_[static_cast<std::size_t>(w)] += arc.cap;
        net.arc(arc_index ^ 1).cap += arc.cap;
        arc.cap = 0;
        activate(w, s, t);
    }

    while (highest_ >= 0) {
        auto& bucket = active_[static_cast<std::size_t>(highest_)];
        if (bucket.empty()) {
            --highest_;
            continue;
        }
        const int v = bucket.back();
        bucket.pop_back();
        const auto vs = static_cast<std::size_t>(v);
        if (excess_[vs] <= 0 || height_[vs] != highest_ || height_[vs] >= n) continue;

        // Discharge v.
        while (excess_[vs] > 0 && height_[vs] < n) {
            const auto arcs = net.arcs_of(v);
            if (iter_[vs] == arcs.size()) {
                // Relabel: one above the lowest admissible neighbour.
                const int old_height = height_[vs];
                int min_height = 2 * n;
                for (const int arc_index : arcs) {
                    const auto& arc = net.arc(arc_index);
                    if (arc.cap > 0) {
                        min_height = std::min(
                            min_height, height_[static_cast<std::size_t>(arc.to)] + 1);
                    }
                }
                iter_[vs] = 0;
                --count_[static_cast<std::size_t>(old_height)];
                height_[vs] = min_height;
                ++count_[static_cast<std::size_t>(std::min(min_height, 2 * n))];

                // Gap heuristic: if level old_height vanished, everything
                // strictly above it (below n) is cut off from t.
                if (count_[static_cast<std::size_t>(old_height)] == 0 &&
                    old_height < n) {
                    for (int w = 0; w < n; ++w) {
                        const auto wsz = static_cast<std::size_t>(w);
                        if (height_[wsz] > old_height && height_[wsz] < n) {
                            --count_[static_cast<std::size_t>(height_[wsz])];
                            height_[wsz] = n + 1;
                            ++count_[static_cast<std::size_t>(
                                std::min(height_[wsz], 2 * n))];
                        }
                    }
                }
                continue;
            }
            const int arc_index = arcs[iter_[vs]];
            auto& arc = net.arc(arc_index);
            const auto ws = static_cast<std::size_t>(arc.to);
            if (arc.cap > 0 && height_[vs] == height_[ws] + 1) {
                const long long delta =
                    std::min<long long>(excess_[vs], arc.cap);
                arc.cap -= static_cast<int>(delta);
                net.arc(arc_index ^ 1).cap += static_cast<int>(delta);
                excess_[vs] -= delta;
                const bool was_inactive = excess_[ws] == 0;
                excess_[ws] += delta;
                if (was_inactive) activate(arc.to, s, t);
            } else {
                ++iter_[vs];
            }
        }
        if (excess_[vs] > 0 && height_[vs] < n) {
            // Still active after relabel; requeue at its (new) height.
            active_[static_cast<std::size_t>(height_[vs])].push_back(v);
            highest_ = std::max(highest_, height_[vs]);
        }
    }

    return static_cast<int>(excess_[static_cast<std::size_t>(t)]);
}

}  // namespace kadsim::flow
