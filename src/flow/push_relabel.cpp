#include "flow/push_relabel.h"

#include <algorithm>

#include "util/assert.h"

namespace kadsim::flow {

void PushRelabel::global_relabel(FlowWorkspace& ws, int s, int t) {
    const FlowNetwork& net = ws.network();
    const int n = net.vertex_count();
    // Reverse BFS from t along residual arcs (arc u→v is traversable in
    // reverse if its residual capacity from u is positive).
    std::fill(ws.height.begin(), ws.height.end(), 2 * n);
    ws.height[static_cast<std::size_t>(t)] = 0;
    ws.queue.clear();
    ws.queue.push_back(t);
    for (std::size_t head = 0; head < ws.queue.size(); ++head) {
        const int v = ws.queue[head];
        for (const int arc_index : net.arcs_of(v)) {
            // arc_index is an arc v→w; its pair (arc_index^1) is w→v. w can
            // reach v iff residual cap of (w→v) > 0.
            const int w = ws.arc(arc_index).to;
            if (ws.cap(arc_index ^ 1) > 0 &&
                ws.height[static_cast<std::size_t>(w)] == 2 * n) {
                ws.height[static_cast<std::size_t>(w)] =
                    ws.height[static_cast<std::size_t>(v)] + 1;
                ws.queue.push_back(w);
            }
        }
    }
    ws.height[static_cast<std::size_t>(s)] = n;
}

void PushRelabel::activate(FlowWorkspace& ws, int v, int s, int t, int& highest) {
    if (v == s || v == t) return;
    const auto vs = static_cast<std::size_t>(v);
    if (ws.excess[vs] <= 0) return;
    const int h = ws.height[vs];
    // Vertices at height ≥ n cannot reach t (phase 1 strands their excess).
    if (h >= static_cast<int>(ws.height.size())) return;
    ws.active[static_cast<std::size_t>(h)].push_back(v);
    highest = std::max(highest, h);
}

int PushRelabel::max_flow(FlowWorkspace& ws, int s, int t) {
    KADSIM_ASSERT(s != t);
    const FlowNetwork& net = ws.network();
    const int n = net.vertex_count();
    const auto ns = static_cast<std::size_t>(n);
    ws.height.assign(ns, 0);
    ws.excess.assign(ns, 0);
    ws.iter.assign(ns, 0);
    ws.height_count.assign(2 * ns + 1, 0);
    for (auto& bucket : ws.active) bucket.clear();
    ws.active.resize(2 * ns + 1);
    int highest = 0;

    global_relabel(ws, s, t);
    for (int v = 0; v < n; ++v) {
        ++ws.height_count[static_cast<std::size_t>(
            std::min(ws.height[static_cast<std::size_t>(v)], 2 * n))];
    }

    // Saturate all arcs out of s.
    for (const int arc_index : net.arcs_of(s)) {
        const int residual = ws.cap(arc_index);
        if (arc_index % 2 != 0 || residual <= 0) continue;  // forward arcs only
        const int w = ws.arc(arc_index).to;
        ws.excess[static_cast<std::size_t>(w)] += residual;
        ws.add_flow(arc_index, residual);
        activate(ws, w, s, t, highest);
    }

    while (highest >= 0) {
        auto& bucket = ws.active[static_cast<std::size_t>(highest)];
        if (bucket.empty()) {
            --highest;
            continue;
        }
        const int v = bucket.back();
        bucket.pop_back();
        const auto vs = static_cast<std::size_t>(v);
        if (ws.excess[vs] <= 0 || ws.height[vs] != highest || ws.height[vs] >= n) {
            continue;
        }

        // Discharge v.
        while (ws.excess[vs] > 0 && ws.height[vs] < n) {
            const auto arcs = net.arcs_of(v);
            if (ws.iter[vs] == arcs.size()) {
                // Relabel: one above the lowest admissible neighbour.
                const int old_height = ws.height[vs];
                int min_height = 2 * n;
                for (const int arc_index : arcs) {
                    const auto& arc = ws.arc(arc_index);
                    if (arc.cap > 0) {
                        min_height = std::min(
                            min_height,
                            ws.height[static_cast<std::size_t>(arc.to)] + 1);
                    }
                }
                ws.iter[vs] = 0;
                --ws.height_count[static_cast<std::size_t>(old_height)];
                ws.height[vs] = min_height;
                ++ws.height_count[static_cast<std::size_t>(std::min(min_height, 2 * n))];

                // Gap heuristic: if level old_height vanished, everything
                // strictly above it (below n) is cut off from t.
                if (ws.height_count[static_cast<std::size_t>(old_height)] == 0 &&
                    old_height < n) {
                    for (int w = 0; w < n; ++w) {
                        const auto wsz = static_cast<std::size_t>(w);
                        if (ws.height[wsz] > old_height && ws.height[wsz] < n) {
                            --ws.height_count[static_cast<std::size_t>(ws.height[wsz])];
                            ws.height[wsz] = n + 1;
                            ++ws.height_count[static_cast<std::size_t>(
                                std::min(ws.height[wsz], 2 * n))];
                        }
                    }
                }
                continue;
            }
            const int arc_index = arcs[ws.iter[vs]];
            const auto& arc = ws.arc(arc_index);
            const auto ws_to = static_cast<std::size_t>(arc.to);
            if (arc.cap > 0 && ws.height[vs] == ws.height[ws_to] + 1) {
                const long long delta =
                    std::min<long long>(ws.excess[vs], arc.cap);
                ws.add_flow(arc_index, static_cast<int>(delta));
                ws.excess[vs] -= delta;
                const bool was_inactive = ws.excess[ws_to] == 0;
                ws.excess[ws_to] += delta;
                if (was_inactive) activate(ws, arc.to, s, t, highest);
            } else {
                ++ws.iter[vs];
            }
        }
        if (ws.excess[vs] > 0 && ws.height[vs] < n) {
            // Still active after relabel; requeue at its (new) height.
            ws.active[static_cast<std::size_t>(ws.height[vs])].push_back(v);
            highest = std::max(highest, ws.height[vs]);
        }
    }

    return static_cast<int>(ws.excess[static_cast<std::size_t>(t)]);
}

}  // namespace kadsim::flow
