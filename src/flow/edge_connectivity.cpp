#include "flow/edge_connectivity.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <limits>
#include <numeric>
#include <vector>

#include "exec/thread_pool.h"
#include "flow/dinic.h"
#include "flow/pair_reuse.h"
#include "flow/sampling.h"
#include "flow/witness.h"
#include "graph/certificate.h"
#include "util/assert.h"

namespace kadsim::flow {

FlowNetwork unit_capacity_network(const graph::Digraph& g) {
    KADSIM_ASSERT(g.edge_count() <= std::numeric_limits<int>::max() / 2);
    FlowNetwork net(g.vertex_count());
    net.reserve(static_cast<std::size_t>(g.edge_count()));
    for (int u = 0; u < g.vertex_count(); ++u) {
        for (const int v : g.out(u)) net.add_arc(u, v, 1);
    }
    net.finalize();
    return net;
}

namespace {

/// Arc id of the connectivity-graph edge with global CSR index `edge_index`
/// in a unit_capacity_network (arcs alternate forward/reverse).
int edge_arc(std::int64_t edge_index) {
    return static_cast<int>(2 * edge_index);
}

/// Reach budget of the sub-bound min-cut walk — same rationale as the κ
/// kernel's constant of the same name (vertex_connectivity.cpp).
constexpr std::size_t kMaxCutReach = 256;

struct PartialResult {
    int min_lambda = std::numeric_limits<int>::max();
    std::uint64_t sum = 0;
    std::uint64_t pairs = 0;
    std::uint64_t pairs_skipped = 0;
    std::uint64_t flows_capped = 0;
    std::uint64_t pairs_reused = 0;
};

/// Evaluates every sink for the sources handed out by `cursor`, accumulating
/// into a local result (returned by value; aggregation stays deterministic
/// for any worker count).
///
/// Degree-bound fast path: λ(u,v) ≤ min(out_degree(u), in_degree(v)) — every
/// u→v path consumes a distinct out-edge of u and in-edge of v. A zero bound
/// settles the pair without touching the network; otherwise the bound caps
/// the Dinic run, which stops augmenting the moment it is reached. Either
/// way the recorded λ is exact.
///
/// Path seeding (the λ analogue of the κ kernel's length-3 trick): the
/// direct edge u→v plus one two-hop path u→w→v per common neighbour
/// w ∈ out(u) ∩ in(v) are pairwise edge-disjoint — distinct first edges out
/// of u and distinct second edges into v. If they alone meet the bound the
/// pair settles with no flow run at all; otherwise they are saturated
/// directly into the workspace and Dinic tops up from the seeded residual
/// (a feasible integral flow is a legal warm start).
/// Delta reuse and certificate mode mirror the κ worker (see
/// vertex_connectivity.cpp): `gsel` — the original graph — drives source
/// degrees and sink bounds; `gflow` (== gsel unless a certificate is on)
/// is what the network, the reverse rows and the seeding walk. Settled
/// pairs are stored back with a two-sided witness: λ edge-disjoint paths
/// (the direct edge and two-hop candidates of the no-flow settle, or a
/// flow decomposition — flow/witness.h — of the seeded + Dinic flow) plus
/// a size-λ separating edge set — u's out-edges when the pair settles at
/// the out-degree bound, or the saturated edges crossing the
/// residual-reachable side (a minimum cut) when Dinic ends below the
/// bound.
PartialResult worker(const graph::Digraph& gsel, const graph::Digraph& gflow,
                     const graph::Digraph& rev, const FlowNetwork& base,
                     const std::vector<int>& sources,
                     const std::vector<int>& in_degrees,
                     std::atomic<std::size_t>& cursor, PairReuseHook* reuse) {
    PartialResult result;
    // Claim a source before paying for the private workspace: late jobs
    // that find the cursor exhausted return without touching the network.
    std::size_t index = cursor.fetch_add(1, std::memory_order_relaxed);
    if (index >= sources.size()) return result;
    FlowWorkspace workspace(base);
    Dinic dinic;
    const int n = gsel.vertex_count();
    // Per-source adjacency position: adjacent_pos[v] = 1 + position of v in
    // out(u), 0 if no edge — one fill per source replaces per-sink binary
    // searches for the direct edge.
    std::vector<std::int64_t> adjacent_pos(static_cast<std::size_t>(n), 0);
    // Epoch-stamped membership in in(v) (no O(n) clear between pairs).
    std::vector<int> in_v_stamp(static_cast<std::size_t>(n), 0);
    // Witness scratch, allocated only when a reuse hook is attached:
    // path-decomposition buffers plus the residual-BFS state of the
    // sub-bound min-cut extraction.
    std::vector<int> witness;
    std::vector<int> offsets;
    std::vector<int> on_path;
    std::vector<int> reach_stamp;
    std::vector<int> reach_list;
    std::vector<int> cut_scratch;
    if (reuse != nullptr) {
        on_path.assign(static_cast<std::size_t>(n), 0);
        reach_stamp.assign(static_cast<std::size_t>(n), 0);
    }
    int epoch = 0;
    for (; index < sources.size();
         index = cursor.fetch_add(1, std::memory_order_relaxed)) {
        const int u = sources[index];
        const int out_degree = gsel.out_degree(u);
        const auto out_u = gflow.out(u);
        const std::int64_t offset_u = gflow.edge_offset(u);
        for (std::size_t i = 0; i < out_u.size(); ++i) {
            adjacent_pos[static_cast<std::size_t>(out_u[i])] =
                static_cast<std::int64_t>(i) + 1;
        }
        for (int v = 0; v < n; ++v) {
            if (v == u) continue;
            const int bound =
                std::min(out_degree, in_degrees[static_cast<std::size_t>(v)]);
            int lambda = 0;
            if (bound == 0) {
                ++result.pairs_skipped;
            } else if (reuse != nullptr && (lambda = reuse->lookup(u, v)) >= 0) {
                ++result.pairs_reused;
            } else {
                lambda = 0;
                ++epoch;
                const auto in_v = rev.out(v);
                for (const int x : in_v) in_v_stamp[static_cast<std::size_t>(x)] = epoch;
                // Count the candidate disjoint paths first: if they alone
                // meet the bound, λ = bound without touching the network.
                const std::int64_t direct_pos =
                    adjacent_pos[static_cast<std::size_t>(v)];
                int candidates = direct_pos > 0 ? 1 : 0;
                for (const int w : out_u) {
                    if (w != v && in_v_stamp[static_cast<std::size_t>(w)] == epoch) {
                        ++candidates;
                    }
                }
                if (candidates >= bound) {
                    lambda = bound;
                    ++result.flows_capped;
                    // Storable only when the bound is u's out-degree: then
                    // u's out-edges are a size-λ separating edge set. See
                    // the κ worker for why the in-degree-pinned case is
                    // skipped.
                    if (reuse != nullptr && bound == out_degree) {
                        witness.clear();
                        offsets.assign(1, 0);
                        int taken = 0;
                        if (direct_pos > 0) {
                            // The direct edge is a zero-length path.
                            offsets.push_back(0);
                            ++taken;
                        }
                        for (const int w : out_u) {
                            if (taken == bound) break;
                            if (w == v ||
                                in_v_stamp[static_cast<std::size_t>(w)] != epoch) {
                                continue;
                            }
                            witness.push_back(w);
                            offsets.push_back(static_cast<int>(witness.size()));
                            ++taken;
                        }
                        cut_scratch.clear();
                        for (const int w : gsel.out(u)) {
                            cut_scratch.push_back(u);
                            cut_scratch.push_back(w);
                        }
                        reuse->store(u, v, lambda, witness, offsets,
                                     cut_scratch);
                    }
                } else {
                    workspace.reset();  // touched-arc undo of the previous run
                    int seeded = 0;
                    if (direct_pos > 0) {
                        workspace.add_flow(edge_arc(offset_u + direct_pos - 1), 1);
                        ++seeded;
                    }
                    for (std::size_t i = 0; i < out_u.size(); ++i) {
                        const int w = out_u[i];
                        if (w == v || in_v_stamp[static_cast<std::size_t>(w)] != epoch) {
                            continue;
                        }
                        workspace.add_flow(
                            edge_arc(offset_u + static_cast<std::int64_t>(i)), 1);
                        const auto out_w = gflow.out(w);
                        const auto pos = static_cast<std::int64_t>(
                            std::lower_bound(out_w.begin(), out_w.end(), v) -
                            out_w.begin());
                        workspace.add_flow(edge_arc(gflow.edge_offset(w) + pos), 1);
                        ++seeded;
                    }
                    lambda = seeded + dinic.max_flow(workspace, u, v, bound - seeded);
                    if (lambda == bound) {
                        ++result.flows_capped;
                        if (reuse != nullptr && bound == out_degree) {
                            witness.clear();
                            offsets.assign(1, 0);
                            decompose_unit_flow(workspace, u, v, lambda, on_path,
                                                witness, offsets);
                            cut_scratch.clear();
                            for (const int w : gsel.out(u)) {
                                cut_scratch.push_back(u);
                                cut_scratch.push_back(w);
                            }
                            reuse->store(u, v, lambda, witness, offsets,
                                         cut_scratch);
                        }
                    } else if (reuse != nullptr) {
                        // λ ended below the cap: the workspace holds a
                        // maximum flow, and the saturated edges leaving the
                        // residual-reachable set are a minimum edge cut.
                        // Walk it before decomposing the paths (the
                        // decomposition consumes the flow); give up past a
                        // small reach budget, which would make later
                        // revalidation BFS runs as dear as a recompute.
                        reach_list.clear();
                        reach_list.push_back(u);
                        reach_stamp[static_cast<std::size_t>(u)] = epoch;
                        bool overflow = false;
                        for (std::size_t head = 0; head < reach_list.size();
                             ++head) {
                            for (const int a : base.arcs_of(reach_list[head])) {
                                if (workspace.cap(a) <= 0) continue;
                                const auto y =
                                    static_cast<std::size_t>(base.arc_to(a));
                                if (reach_stamp[y] == epoch) continue;
                                reach_stamp[y] = epoch;
                                reach_list.push_back(static_cast<int>(y));
                            }
                            if (reach_list.size() > kMaxCutReach) {
                                overflow = true;
                                break;
                            }
                        }
                        if (!overflow) {
                            cut_scratch.clear();
                            for (const int x : reach_list) {
                                for (const int a : base.arcs_of(x)) {
                                    if (base.original_cap(a) <= 0) continue;
                                    const int y = base.arc_to(a);
                                    if (reach_stamp[static_cast<std::size_t>(
                                            y)] == epoch) {
                                        continue;
                                    }
                                    cut_scratch.push_back(x);
                                    cut_scratch.push_back(y);
                                }
                            }
                            if (static_cast<int>(cut_scratch.size()) ==
                                2 * lambda) {
                                witness.clear();
                                offsets.assign(1, 0);
                                decompose_unit_flow(workspace, u, v, lambda,
                                                    on_path, witness, offsets);
                                reuse->store(u, v, lambda, witness, offsets,
                                             cut_scratch);
                            }
                        }
                    }
                }
            }
            result.min_lambda = std::min(result.min_lambda, lambda);
            result.sum += static_cast<std::uint64_t>(lambda);
            ++result.pairs;
        }
        for (const int w : out_u) adjacent_pos[static_cast<std::size_t>(w)] = 0;
    }
    return result;
}

/// Evaluates every source on the pool (caller participates; worker jobs are
/// non-blocking, so this is safe even on a busy shared pool). Aggregation is
/// an integer min/sum over per-job locals: bit-identical for any job count.
PartialResult evaluate_sources(const graph::Digraph& gsel,
                               const graph::Digraph& gflow,
                               const graph::Digraph& rev, const FlowNetwork& base,
                               const std::vector<int>& sources,
                               const std::vector<int>& in_degrees,
                               PairReuseHook* reuse, exec::ThreadPool* pool) {
    std::atomic<std::size_t> cursor{0};
    // Re-entrant calls (a pool task computing connectivity on its own pool)
    // run inline: the calling thread is already one of the pool's lanes.
    if (pool == nullptr || exec::ThreadPool::in_worker()) {
        return worker(gsel, gflow, rev, base, sources, in_degrees, cursor, reuse);
    }

    const int jobs = std::min(pool->size(),
                              std::max(0, static_cast<int>(sources.size()) - 1));
    std::vector<std::future<PartialResult>> futures;
    futures.reserve(static_cast<std::size_t>(jobs));
    for (int i = 0; i < jobs; ++i) {
        futures.push_back(pool->submit(
            [&gsel, &gflow, &rev, &base, &sources, &in_degrees, &cursor, reuse] {
                return worker(gsel, gflow, rev, base, sources, in_degrees, cursor,
                              reuse);
            }));
    }
    // Every submitted job must be joined before this frame (holding the
    // graph, base network and cursor the jobs reference) can unwind — so
    // collect the first error but keep waiting.
    std::exception_ptr error;
    PartialResult combined;
    try {
        combined = worker(gsel, gflow, rev, base, sources, in_degrees, cursor,
                          reuse);
    } catch (...) {
        error = std::current_exception();
    }
    for (auto& future : futures) {
        try {
            const PartialResult p = pool->wait_get(future);
            combined.min_lambda = std::min(combined.min_lambda, p.min_lambda);
            combined.sum += p.sum;
            combined.pairs += p.pairs;
            combined.pairs_skipped += p.pairs_skipped;
            combined.flows_capped += p.flows_capped;
            combined.pairs_reused += p.pairs_reused;
        } catch (...) {
            if (!error) error = std::current_exception();
        }
    }
    if (error) std::rethrow_exception(error);
    return combined;
}

}  // namespace

EdgeConnectivityResult edge_connectivity(const graph::Digraph& g,
                                         const EdgeConnectivityOptions& options) {
    EdgeConnectivityResult result;
    result.n = g.vertex_count();
    result.m = g.edge_count();
    if (result.n <= 1) {
        result.complete = true;
        return result;
    }
    if (g.is_complete()) {
        // Direct edge plus a two-hop path through every other vertex:
        // λ(u,v) = n − 1 = the degree bound for every pair.
        result.complete = true;
        result.lambda_min = result.n - 1;
        result.lambda_avg = static_cast<double>(result.n - 1);
        return result;
    }

    // In-degrees bound each sink's λ from above — always from the original
    // graph, never the certificate.
    const std::vector<int> in_degrees = g.in_degrees();
    const std::vector<int> sources = pick_smallest_out_degree_sources(
        g, options.sample_fraction, options.min_sources);

    graph::SparseCertificate cert;
    const graph::Digraph* flow_g = &g;
    if (options.use_certificate) {
        int k = 1;
        for (const int u : sources) k = std::max(k, g.out_degree(u) + 1);
        cert = graph::build_certificate(g, k);
        flow_g = &cert.graph;
        result.cert_edges_kept = static_cast<std::uint64_t>(cert.core_edges_kept);
        result.cert_build_us = cert.build_us;
    }
    const FlowNetwork base = unit_capacity_network(*flow_g);
    const graph::Digraph rev = flow_g->reversed();

    // Unlike κ there is no adjacency exclusion: every source sees all n−1
    // sinks, so the sampled pair set is never empty for n ≥ 2.
    const PartialResult combined = evaluate_sources(
        g, *flow_g, rev, base, sources, in_degrees, options.reuse, options.pool);
    KADSIM_ASSERT(combined.pairs > 0);
    result.lambda_min = combined.min_lambda;
    result.lambda_sum = combined.sum;
    result.lambda_avg =
        static_cast<double>(combined.sum) / static_cast<double>(combined.pairs);
    result.pairs_evaluated = combined.pairs;
    result.pairs_skipped = combined.pairs_skipped;
    result.flows_capped = combined.flows_capped;
    result.pairs_reused = combined.pairs_reused;
    result.sources_used = static_cast<int>(sources.size());
    return result;
}

int pair_edge_connectivity(const graph::Digraph& g, int u, int v) {
    const FlowNetwork net = unit_capacity_network(g);
    FlowWorkspace workspace(net);
    return pair_edge_connectivity(g, net, workspace, u, v);
}

int pair_edge_connectivity(const graph::Digraph& g, const FlowNetwork& net,
                           FlowWorkspace& workspace, int u, int v) {
    KADSIM_ASSERT(u != v);
    KADSIM_ASSERT(net.vertex_count() == g.vertex_count());
    KADSIM_ASSERT(&workspace.network() == &net);
    workspace.reset();
    Dinic dinic;
    return dinic.max_flow(workspace, u, v);
}

namespace {

/// u→v reachability using only edges whose global CSR index is not removed.
bool path_exists_avoiding_edges(const graph::Digraph& g, int u, int v,
                                const std::vector<bool>& removed_edge) {
    std::vector<int> queue{u};
    std::vector<bool> seen(static_cast<std::size_t>(g.vertex_count()), false);
    seen[static_cast<std::size_t>(u)] = true;
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const int x = queue[head];
        const auto out = g.out(x);
        const auto offset = static_cast<std::size_t>(g.edge_offset(x));
        for (std::size_t i = 0; i < out.size(); ++i) {
            if (removed_edge[offset + i]) continue;
            const int y = out[i];
            if (y == v) return true;
            const auto ys = static_cast<std::size_t>(y);
            if (seen[ys]) continue;
            seen[ys] = true;
            queue.push_back(y);
        }
    }
    return false;
}

}  // namespace

int pair_edge_connectivity_bruteforce(const graph::Digraph& g, int u, int v) {
    KADSIM_ASSERT(u != v);
    const auto m = static_cast<int>(g.edge_count());
    // Smallest set of edges (by global CSR index) whose removal disconnects
    // u from v, found by combination walking over subset sizes. λ(u,v) is
    // capped by out_degree(u) — removing every out-edge of u always works —
    // which keeps the enumeration tiny on oracle graphs.
    const int cap = std::min(g.out_degree(u), m);
    for (int size = 0; size <= cap; ++size) {
        std::vector<int> pick(static_cast<std::size_t>(size));
        std::iota(pick.begin(), pick.end(), 0);
        while (true) {
            std::vector<bool> removed(static_cast<std::size_t>(m), false);
            for (const int i : pick) removed[static_cast<std::size_t>(i)] = true;
            if (!path_exists_avoiding_edges(g, u, v, removed)) return size;

            // Next combination.
            int pos = size - 1;
            while (pos >= 0 && pick[static_cast<std::size_t>(pos)] == m - size + pos) {
                --pos;
            }
            if (pos < 0) break;
            ++pick[static_cast<std::size_t>(pos)];
            for (int j = pos + 1; j < size; ++j) {
                pick[static_cast<std::size_t>(j)] =
                    pick[static_cast<std::size_t>(j - 1)] + 1;
            }
        }
    }
    return cap;
}

}  // namespace kadsim::flow
