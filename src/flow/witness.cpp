#include "flow/witness.h"

#include "flow/flow_network.h"
#include "util/assert.h"

namespace kadsim::flow {

namespace {

/// Extracts one s→t path from the workspace's remaining flow into
/// `path_arcs`, consuming one unit per traversed arc. Only forward arcs
/// can carry positive flow (reverse arcs are built with capacity 0), and a
/// revisited on-path vertex marks a flow cycle whose arcs — already
/// consumed — are simply dropped from the path: cycle cancellation keeps
/// the flow feasible and strictly shrinks it, so the walk terminates.
/// on_path[v] = 1 + number of path arcs when v was reached; restored to
/// all zeros before returning.
void walk_one_path(FlowWorkspace& workspace, const FlowNetwork& net, int s,
                   int t, std::vector<int>& on_path,
                   std::vector<int>& path_arcs) {
    path_arcs.clear();
    on_path[static_cast<std::size_t>(s)] = 1;
    int x = s;
    while (true) {
        int taken = -1;
        for (const int a : net.arcs_of(x)) {
            if (workspace.flow_on(a) > 0) {
                taken = a;
                break;
            }
        }
        KADSIM_ASSERT_MSG(taken >= 0, "flow conservation: the walk must progress");
        workspace.add_flow(taken, -1);
        const int y = net.arc_to(taken);
        if (y == t) {
            path_arcs.push_back(taken);
            break;
        }
        if (on_path[static_cast<std::size_t>(y)] != 0) {
            while (static_cast<int>(path_arcs.size()) + 1 >
                   on_path[static_cast<std::size_t>(y)]) {
                const int a = path_arcs.back();
                path_arcs.pop_back();
                on_path[static_cast<std::size_t>(net.arc_to(a))] = 0;
            }
            x = y;
            continue;
        }
        path_arcs.push_back(taken);
        on_path[static_cast<std::size_t>(y)] =
            static_cast<int>(path_arcs.size()) + 1;
        x = y;
    }
    on_path[static_cast<std::size_t>(s)] = 0;
    for (const int a : path_arcs) {
        const int y = net.arc_to(a);
        if (y != t) on_path[static_cast<std::size_t>(y)] = 0;
    }
}

}  // namespace

void decompose_even_flow(FlowWorkspace& workspace, int n, int s, int t,
                         int value, std::vector<int>& on_path,
                         std::vector<int>& witness,
                         std::vector<int>& offsets) {
    const FlowNetwork& net = workspace.network();
    std::vector<int>& path_arcs = workspace.queue;  // solver scratch, free here
    for (int p = 0; p < value; ++p) {
        walk_one_path(workspace, net, s, t, on_path, path_arcs);
        // Interior original vertices are exactly the traversed internal
        // arcs (even_transform.h: internal arc of w is arc 2w; edge arcs
        // start at 2n).
        for (const int a : path_arcs) {
            if (a < 2 * n) witness.push_back(a / 2);
        }
        offsets.push_back(static_cast<int>(witness.size()));
    }
}

void decompose_unit_flow(FlowWorkspace& workspace, int s, int t, int value,
                         std::vector<int>& on_path, std::vector<int>& witness,
                         std::vector<int>& offsets) {
    const FlowNetwork& net = workspace.network();
    std::vector<int>& path_arcs = workspace.queue;
    for (int p = 0; p < value; ++p) {
        walk_one_path(workspace, net, s, t, on_path, path_arcs);
        for (const int a : path_arcs) {
            const int y = net.arc_to(a);
            if (y != t) witness.push_back(y);
        }
        offsets.push_back(static_cast<int>(witness.size()));
    }
}

}  // namespace kadsim::flow
