#include "flow/dimacs.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace kadsim::flow {

void write_dimacs(const FlowNetwork& net, int source, int sink, std::ostream& out) {
    out << "c kadsim transformed connectivity graph\n";
    out << "p max " << net.vertex_count() << ' ' << net.arc_count() / 2 << '\n';
    out << "n " << source + 1 << " s\n";
    out << "n " << sink + 1 << " t\n";
    for (int i = 0; i < net.arc_count(); i += 2) {
        const int u = net.arc_to(i ^ 1);  // reverse arc points back to origin
        out << "a " << u + 1 << ' ' << net.arc_to(i) + 1 << ' '
            << net.original_cap(i) << '\n';
    }
}

DimacsProblem read_dimacs(std::istream& in) {
    DimacsProblem problem;
    bool have_problem_line = false;
    bool have_source = false;
    bool have_sink = false;
    std::string line;
    int declared_arcs = 0;
    int seen_arcs = 0;

    while (std::getline(in, line)) {
        if (line.empty()) continue;
        std::istringstream ls(line);
        char tag = 0;
        ls >> tag;
        switch (tag) {
            case 'c':
                break;
            case 'p': {
                std::string kind;
                int nodes = 0;
                ls >> kind >> nodes >> declared_arcs;
                if (!ls || kind != "max" || nodes < 0) {
                    throw std::runtime_error("dimacs: bad problem line: " + line);
                }
                problem.network = FlowNetwork(nodes);
                have_problem_line = true;
                break;
            }
            case 'n': {
                int id = 0;
                char which = 0;
                ls >> id >> which;
                if (!ls || id < 1) {
                    throw std::runtime_error("dimacs: bad node line: " + line);
                }
                if (which == 's') {
                    problem.source = id - 1;
                    have_source = true;
                } else if (which == 't') {
                    problem.sink = id - 1;
                    have_sink = true;
                } else {
                    throw std::runtime_error("dimacs: bad node designator: " + line);
                }
                break;
            }
            case 'a': {
                if (!have_problem_line) {
                    throw std::runtime_error("dimacs: arc before problem line");
                }
                int u = 0, v = 0, cap = 0;
                ls >> u >> v >> cap;
                if (!ls || u < 1 || v < 1 || u > problem.network.vertex_count() ||
                    v > problem.network.vertex_count() || cap < 0) {
                    throw std::runtime_error("dimacs: bad arc line: " + line);
                }
                problem.network.add_arc(u - 1, v - 1, cap);
                ++seen_arcs;
                break;
            }
            default:
                throw std::runtime_error("dimacs: unknown line tag: " + line);
        }
    }
    if (!have_problem_line || !have_source || !have_sink) {
        throw std::runtime_error("dimacs: missing problem/source/sink line");
    }
    if (declared_arcs != seen_arcs) {
        throw std::runtime_error("dimacs: arc count mismatch");
    }
    problem.network.finalize();
    return problem;
}

}  // namespace kadsim::flow
