// Disjoint-path witness extraction from a settled unit flow (kernel
// internal; used by the κ/λ workers to feed flow::PairReuseHook::store).
//
// Both routines decompose the integral flow currently held in a workspace
// into `value` paths by walking positive-flow arcs from the source,
// consuming one unit per traversed arc via add_flow(arc, -1). Every
// traversed arc already carries flow — i.e. is already in the workspace's
// undo log — so the walk adds no log entries and leaves every kernel
// counter and the subsequent reset() exactly as they would have been: a
// sweep's arcs_touched totals are identical with witness extraction on or
// off. Flow cycles (legal in any integral max flow) are cancelled in
// place when the walk revisits an on-path vertex.
#ifndef KADSIM_FLOW_WITNESS_H
#define KADSIM_FLOW_WITNESS_H

#include <vector>

#include "flow/flow_workspace.h"

namespace kadsim::flow {

/// Decomposes the κ = `value` flow of an Even-transformed network
/// (even_transform.h; n original vertices, s = out_vertex(u),
/// t = in_vertex(v)) into `value` vertex-disjoint paths, appending each
/// path's interior *original* vertices to `witness` and the pair_reuse.h
/// offset layout to `offsets` (offsets must start out as {0}). `on_path`
/// is caller-owned scratch of size ≥ 2n holding all zeros on entry and
/// exit.
void decompose_even_flow(FlowWorkspace& workspace, int n, int s, int t,
                         int value, std::vector<int>& on_path,
                         std::vector<int>& witness, std::vector<int>& offsets);

/// Decomposes the λ = `value` flow of a unit-capacity network
/// (edge_connectivity.h) into `value` edge-disjoint s→t paths, appending
/// each path's intermediate vertices (a direct edge contributes a
/// zero-length path). `on_path` is caller-owned scratch of size ≥ n, all
/// zeros on entry and exit.
void decompose_unit_flow(FlowWorkspace& workspace, int s, int t, int value,
                         std::vector<int>& on_path, std::vector<int>& witness,
                         std::vector<int>& offsets);

}  // namespace kadsim::flow

#endif  // KADSIM_FLOW_WITNESS_H
