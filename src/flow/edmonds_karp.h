// Edmonds–Karp (BFS augmenting paths): the simplest correct max-flow solver.
// Used as the independent oracle in cross-implementation property tests.
#ifndef KADSIM_FLOW_EDMONDS_KARP_H
#define KADSIM_FLOW_EDMONDS_KARP_H

#include <limits>
#include <vector>

#include "flow/flow_network.h"

namespace kadsim::flow {

class EdmondsKarp {
public:
    static constexpr int kUnbounded = std::numeric_limits<int>::max();

    int max_flow(FlowNetwork& net, int s, int t, int flow_limit = kUnbounded);

private:
    std::vector<int> parent_arc_;
    std::vector<int> queue_;
};

}  // namespace kadsim::flow

#endif  // KADSIM_FLOW_EDMONDS_KARP_H
