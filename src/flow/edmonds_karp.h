// Edmonds–Karp (BFS augmenting paths): the simplest correct max-flow solver.
// Used as the independent oracle in cross-implementation property tests.
// Stateless: all mutable state lives in the caller's flow::FlowWorkspace.
#ifndef KADSIM_FLOW_EDMONDS_KARP_H
#define KADSIM_FLOW_EDMONDS_KARP_H

#include <limits>

#include "flow/flow_workspace.h"

namespace kadsim::flow {

class EdmondsKarp {
public:
    static constexpr int kUnbounded = std::numeric_limits<int>::max();

    int max_flow(FlowWorkspace& ws, int s, int t, int flow_limit = kUnbounded);
};

}  // namespace kadsim::flow

#endif  // KADSIM_FLOW_EDMONDS_KARP_H
