// Edge connectivity λ of directed graphs (beyond the paper's κ; cf. the
// reachability/cut-structure measures of Heck et al. 2016 and Ferretti 2013).
//
// λ(u,v) is the maximum number of edge-disjoint u→v paths — by Menger, the
// unit-capacity max-flow u→v on the raw digraph, with NO vertex splitting:
// unlike κ, edges (not vertices) are the failure unit, so the connectivity
// graph itself is the flow network. λ(D) = min over ordered pairs; always
// κ(D) ≤ λ(D) ≤ δ_min(D) (min over all out-/in-degrees) — the invariant the
// analysis tests pin per sampled pair.
//
// The §5.2 sampling argument carries over: λ(u,v) ≤ out_degree(u), so the
// c·n smallest-out-degree sources (flow/sampling.h) pin the minimum, and
// because every vertex is a sink the reported λ_min ≤ δ_min is guaranteed
// even under sampling.
//
// Memory model matches the κ kernel: one immutable unit-capacity CSR
// FlowNetwork shared across workers, per-worker flow::FlowWorkspace with the
// touched-arc undo log making the per-pair reset O(arcs touched).
#ifndef KADSIM_FLOW_EDGE_CONNECTIVITY_H
#define KADSIM_FLOW_EDGE_CONNECTIVITY_H

#include <cstdint>

#include "flow/flow_network.h"
#include "flow/flow_workspace.h"
#include "graph/digraph.h"

namespace kadsim::exec {
class ThreadPool;
}  // namespace kadsim::exec

namespace kadsim::flow {

class PairReuseHook;

struct EdgeConnectivityOptions {
    /// Fraction c of vertices used as flow sources (1.0 = exact, all pairs).
    double sample_fraction = 1.0;
    /// Lower bound on the number of sampled sources.
    int min_sources = 1;
    /// Execution engine for the per-source flow jobs (each job shares the
    /// immutable unit-capacity network and owns a private workspace).
    /// nullptr = inline on the caller; results are bit-identical either way.
    exec::ThreadPool* pool = nullptr;
    /// Run the flows on a Nagamochi–Ibaraki sparse certificate of the graph
    /// (graph/certificate.h). Source selection and degree bounds still come
    /// from the original graph and the certificate order exceeds every
    /// evaluated pair's cap, so every recorded λ is bit-identical to the
    /// full sweep.
    bool use_certificate = false;
    /// Cross-snapshot pair-reuse hook (pair_reuse.h); nullptr = off. Not
    /// owned.
    PairReuseHook* reuse = nullptr;
};

struct EdgeConnectivityResult {
    int n = 0;
    std::int64_t m = 0;
    int lambda_min = 0;            ///< λ(D): min over evaluated ordered pairs
    double lambda_avg = 0.0;       ///< mean λ(u,v) over evaluated pairs
    std::uint64_t lambda_sum = 0;  ///< integer sum (deterministic aggregation)
    std::uint64_t pairs_evaluated = 0;
    /// Pairs settled as λ = 0 without a flow run because
    /// min(out_degree(u), in_degree(v)) = 0. Counted in pairs_evaluated too.
    std::uint64_t pairs_skipped = 0;
    /// Pairs whose capped Dinic run stopped early on reaching the degree
    /// bound min(out_degree(u), in_degree(v)) — λ is then exactly the bound.
    std::uint64_t flows_capped = 0;
    /// Pairs settled from the pair-reuse hook's witness cache (no flow run;
    /// subset of pairs_evaluated). 0 unless options.reuse was set.
    std::uint64_t pairs_reused = 0;
    /// Certificate accounting (0 unless options.use_certificate): undirected
    /// symmetric-core edges kept (≤ k·(n−1)) and the build time in µs.
    std::uint64_t cert_edges_kept = 0;
    std::uint64_t cert_build_us = 0;
    int sources_used = 0;
    bool complete = false;         ///< complete graph: λ = n−1 without flows
};

/// Computes λ(D) (exactly, or sampled per `options.sample_fraction`).
[[nodiscard]] EdgeConnectivityResult edge_connectivity(
    const graph::Digraph& g, const EdgeConnectivityOptions& options = {});

/// The digraph as a unit-capacity CSR flow network: same vertex ids, one
/// arc per edge with capacity 1. The arc of the connectivity-graph edge with
/// global CSR index j (graph::Digraph::edge_offset) is arc 2j.
[[nodiscard]] FlowNetwork unit_capacity_network(const graph::Digraph& g);

/// λ(u,v) for one ordered pair (u ≠ v; adjacency is fine — edges may be cut).
/// Builds a fresh unit-capacity network per call — convenience only; batch
/// callers should use the reuse overload below.
[[nodiscard]] int pair_edge_connectivity(const graph::Digraph& g, int u, int v);

/// λ(u,v) on a caller-supplied network (`net` must be
/// `unit_capacity_network(g)`) and workspace. The workspace is reset on
/// entry via its touched-arc undo log, so evaluating many pairs against one
/// network costs O(arcs touched) between pairs, not a rebuild.
[[nodiscard]] int pair_edge_connectivity(const graph::Digraph& g,
                                         const FlowNetwork& net,
                                         FlowWorkspace& workspace, int u, int v);

/// Brute-force λ(u,v) by definition: the smallest set of edges whose removal
/// cuts every path u→v (exponential in the cut size; test oracle for tiny
/// graphs).
[[nodiscard]] int pair_edge_connectivity_bruteforce(const graph::Digraph& g, int u,
                                                    int v);

}  // namespace kadsim::flow

#endif  // KADSIM_FLOW_EDGE_CONNECTIVITY_H
