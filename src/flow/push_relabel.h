// Highest-label push-relabel max-flow (the algorithm family of HIPR, the
// solver the paper used: Cherkassky–Goldberg's hi-level variant, §5.1/§5.2).
//
// Implements the first phase (max-flow *value*) with the two standard
// heuristics that make the hi-level variant fast in practice:
//   * exact initial distance labels via reverse BFS from the sink,
//   * the gap heuristic (a vanished height level disconnects every vertex
//     above it from the sink).
// Worst-case O(n²√m), matching the complexity the paper quotes for HIPR.
// The value equals Dinic's/Edmonds–Karp's (max-flow is unique in value);
// residual capacities after phase 1 are not a complete flow assignment, so
// cut extraction uses Dinic (see mincut.h).
#ifndef KADSIM_FLOW_PUSH_RELABEL_H
#define KADSIM_FLOW_PUSH_RELABEL_H

#include <vector>

#include "flow/flow_network.h"

namespace kadsim::flow {

class PushRelabel {
public:
    /// Max-flow value s→t (mutates `net` residual capacities).
    int max_flow(FlowNetwork& net, int s, int t);

private:
    void global_relabel(const FlowNetwork& net, int s, int t);
    void activate(int v, int s, int t);

    std::vector<int> height_;
    std::vector<long long> excess_;
    std::vector<std::size_t> iter_;
    std::vector<int> count_;                   // vertices per height
    std::vector<std::vector<int>> active_;     // active vertices per height
    int highest_ = 0;
};

}  // namespace kadsim::flow

#endif  // KADSIM_FLOW_PUSH_RELABEL_H
