// Highest-label push-relabel max-flow (the algorithm family of HIPR, the
// solver the paper used: Cherkassky–Goldberg's hi-level variant, §5.1/§5.2).
//
// Implements the first phase (max-flow *value*) with the two standard
// heuristics that make the hi-level variant fast in practice:
//   * exact initial distance labels via reverse BFS from the sink,
//   * the gap heuristic (a vanished height level disconnects every vertex
//     above it from the sink).
// Worst-case O(n²√m), matching the complexity the paper quotes for HIPR.
// The value equals Dinic's/Edmonds–Karp's (max-flow is unique in value);
// residual capacities after phase 1 are not a complete flow assignment, so
// cut extraction uses Dinic (see mincut.h).
//
// Stateless: excess/height/bucket scratch lives in the caller's
// flow::FlowWorkspace.
#ifndef KADSIM_FLOW_PUSH_RELABEL_H
#define KADSIM_FLOW_PUSH_RELABEL_H

#include "flow/flow_workspace.h"

namespace kadsim::flow {

class PushRelabel {
public:
    /// Max-flow value s→t (mutates `ws` residual capacities).
    int max_flow(FlowWorkspace& ws, int s, int t);

private:
    static void global_relabel(FlowWorkspace& ws, int s, int t);
    static void activate(FlowWorkspace& ws, int v, int s, int t, int& highest);
};

}  // namespace kadsim::flow

#endif  // KADSIM_FLOW_PUSH_RELABEL_H
