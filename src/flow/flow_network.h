// Mutable residual flow network shared by all max-flow solvers.
//
// Arcs are stored in a flat array; arc i and its reverse arc are paired as
// (i, i^1), the classic residual-graph trick. Capacities are mutated in place
// by solvers; reset() restores the as-built capacities so one network can be
// reused across the thousands of (source, sink) pairs a connectivity
// computation evaluates (Per.14: minimize allocations).
#ifndef KADSIM_FLOW_FLOW_NETWORK_H
#define KADSIM_FLOW_FLOW_NETWORK_H

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.h"

namespace kadsim::flow {

class FlowNetwork {
public:
    struct Arc {
        int to = 0;
        int cap = 0;  // residual capacity
    };

    explicit FlowNetwork(int n) : adj_(static_cast<std::size_t>(n)) {
        KADSIM_ASSERT(n >= 0);
    }

    /// Adds arc u→v with capacity `cap` (and its reverse with capacity 0).
    /// Returns the forward arc index; the reverse is index^1.
    int add_arc(int u, int v, int cap) {
        KADSIM_ASSERT(u >= 0 && u < vertex_count() && v >= 0 && v < vertex_count());
        KADSIM_ASSERT(cap >= 0);
        const int index = static_cast<int>(arcs_.size());
        arcs_.push_back(Arc{v, cap});
        arcs_.push_back(Arc{u, 0});
        original_caps_.push_back(cap);
        original_caps_.push_back(0);
        adj_[static_cast<std::size_t>(u)].push_back(index);
        adj_[static_cast<std::size_t>(v)].push_back(index + 1);
        return index;
    }

    [[nodiscard]] int vertex_count() const noexcept {
        return static_cast<int>(adj_.size());
    }
    [[nodiscard]] int arc_count() const noexcept {
        return static_cast<int>(arcs_.size());
    }

    [[nodiscard]] std::span<const int> arcs_of(int u) const {
        return adj_[static_cast<std::size_t>(u)];
    }

    [[nodiscard]] Arc& arc(int index) { return arcs_[static_cast<std::size_t>(index)]; }
    [[nodiscard]] const Arc& arc(int index) const {
        return arcs_[static_cast<std::size_t>(index)];
    }

    /// Flow currently routed through forward arc `index`.
    [[nodiscard]] int flow_on(int index) const {
        return original_caps_[static_cast<std::size_t>(index)] -
               arcs_[static_cast<std::size_t>(index)].cap;
    }

    [[nodiscard]] int original_cap(int index) const {
        return original_caps_[static_cast<std::size_t>(index)];
    }

    /// Restores every arc to its as-built capacity.
    void reset() noexcept {
        for (std::size_t i = 0; i < arcs_.size(); ++i) arcs_[i].cap = original_caps_[i];
    }

private:
    std::vector<Arc> arcs_;
    std::vector<int> original_caps_;
    std::vector<std::vector<int>> adj_;
};

}  // namespace kadsim::flow

#endif  // KADSIM_FLOW_FLOW_NETWORK_H
