// Immutable CSR flow-network structure shared by all max-flow solvers.
//
// Arcs are stored flat; arc i and its reverse are paired as (i, i^1), the
// classic residual-graph trick. After finalize() the arc structure, the CSR
// adjacency (offsets + arc-id array) and the as-built capacities are
// immutable: one FlowNetwork is shared by reference across every concurrent
// worker of a connectivity computation, and all mutable state — residual
// capacities plus solver scratch — lives in a per-thread flow::FlowWorkspace
// (flow_workspace.h). This is what makes a worker cost O(residual caps)
// instead of a deep copy of the whole network.
#ifndef KADSIM_FLOW_FLOW_NETWORK_H
#define KADSIM_FLOW_FLOW_NETWORK_H

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.h"

namespace kadsim::flow {

class FlowNetwork {
public:
    explicit FlowNetwork(int n) : n_(n) { KADSIM_ASSERT(n >= 0); }

    /// Pre-sizes the arc arrays for `arc_pairs` add_arc calls.
    void reserve(std::size_t arc_pairs) {
        arc_to_.reserve(2 * arc_pairs);
        original_caps_.reserve(2 * arc_pairs);
    }

    /// Adds arc u→v with capacity `cap` (and its reverse with capacity 0).
    /// Returns the forward arc index; the reverse is index^1. Only valid
    /// before finalize().
    int add_arc(int u, int v, int cap) {
        KADSIM_ASSERT(!finalized_);
        KADSIM_ASSERT(u >= 0 && u < n_ && v >= 0 && v < n_);
        KADSIM_ASSERT(cap >= 0);
        const int index = static_cast<int>(arc_to_.size());
        arc_to_.push_back(v);
        arc_to_.push_back(u);
        original_caps_.push_back(cap);
        original_caps_.push_back(0);
        return index;
    }

    /// Builds the CSR adjacency (one counting pass over the arc tails) and
    /// freezes the structure; must be called exactly once after the last
    /// add_arc. Per-vertex arc order equals arc-insertion order.
    void finalize() {
        KADSIM_ASSERT(!finalized_);
        first_out_.assign(static_cast<std::size_t>(n_) + 1, 0);
        for (std::size_t a = 0; a < arc_to_.size(); ++a) {
            // The tail of arc a is the head of its pair a^1.
            ++first_out_[static_cast<std::size_t>(arc_to_[a ^ 1]) + 1];
        }
        for (int v = 0; v < n_; ++v) {
            first_out_[static_cast<std::size_t>(v) + 1] +=
                first_out_[static_cast<std::size_t>(v)];
        }
        arc_ids_.resize(arc_to_.size());
        std::vector<std::int64_t> cursor(first_out_.begin(), first_out_.end() - 1);
        for (std::size_t a = 0; a < arc_to_.size(); ++a) {
            const auto tail = static_cast<std::size_t>(arc_to_[a ^ 1]);
            arc_ids_[static_cast<std::size_t>(cursor[tail]++)] = static_cast<int>(a);
        }
        finalized_ = true;
    }

    [[nodiscard]] bool finalized() const noexcept { return finalized_; }
    [[nodiscard]] int vertex_count() const noexcept { return n_; }
    [[nodiscard]] int arc_count() const noexcept {
        return static_cast<int>(arc_to_.size());
    }

    /// Arc indices leaving u (forward arcs and reverse stubs interleaved).
    [[nodiscard]] std::span<const int> arcs_of(int u) const {
        KADSIM_ASSERT(finalized_);
        const auto us = static_cast<std::size_t>(u);
        return {arc_ids_.data() + first_out_[us],
                static_cast<std::size_t>(first_out_[us + 1] - first_out_[us])};
    }

    /// Head vertex of arc `index` (the tail is arc_to(index ^ 1)).
    [[nodiscard]] int arc_to(int index) const {
        return arc_to_[static_cast<std::size_t>(index)];
    }

    [[nodiscard]] int original_cap(int index) const {
        return original_caps_[static_cast<std::size_t>(index)];
    }

    [[nodiscard]] std::span<const int> original_caps() const noexcept {
        return original_caps_;
    }

    /// Bytes held by the flat arrays (arena accounting in benches).
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return arc_to_.capacity() * sizeof(int) +
               original_caps_.capacity() * sizeof(int) +
               first_out_.capacity() * sizeof(std::int64_t) +
               arc_ids_.capacity() * sizeof(int);
    }

private:
    int n_ = 0;
    bool finalized_ = false;
    std::vector<int> arc_to_;                ///< head per arc id
    std::vector<int> original_caps_;         ///< as-built capacity per arc id
    std::vector<std::int64_t> first_out_;    ///< n+1 CSR offsets
    std::vector<int> arc_ids_;               ///< flat adjacency (arc ids)
};

}  // namespace kadsim::flow

#endif  // KADSIM_FLOW_FLOW_NETWORK_H
