// Vertex connectivity of directed graphs (paper §4.3–§4.4, §5.2).
//
// κ(v,w) for non-adjacent v ≠ w is the max-flow from v'' to w' in the
// Even-transformed network (Menger). κ(D) is the minimum over all such
// pairs; a complete graph has κ = n−1 by convention.
//
// Full evaluation costs n(n−1) max-flow runs. The paper's reduction (§5.2):
// because Kademlia connectivity graphs are nearly undirected, computing the
// flows from only the c·n vertices with the smallest out-degree (to all n−1
// sinks each) finds the true minimum — the authors validated c = 0.02 on 20
// fully-analyzed graphs; `bench/ablation_sampling_c` re-validates it here.
//
// Memory model: the Even-transformed network is built once (immutable CSR)
// and shared by reference across all workers; each worker owns only a
// flow::FlowWorkspace whose touched-arc undo log makes the per-pair reset
// O(arcs touched) instead of O(m+n).
#ifndef KADSIM_FLOW_VERTEX_CONNECTIVITY_H
#define KADSIM_FLOW_VERTEX_CONNECTIVITY_H

#include <cstdint>

#include "flow/flow_network.h"
#include "flow/flow_workspace.h"
#include "graph/digraph.h"

namespace kadsim::exec {
class ThreadPool;
}  // namespace kadsim::exec

namespace kadsim::flow {

class PairReuseHook;

struct ConnectivityOptions {
    /// Fraction c of vertices used as flow sources (1.0 = exact, all pairs).
    double sample_fraction = 1.0;
    /// Lower bound on the number of sampled sources.
    int min_sources = 1;
    /// Execution engine for the per-source flow jobs (each job shares the
    /// immutable transformed network and owns a private workspace). nullptr =
    /// inline on the caller; results are bit-identical either way (integer
    /// min/sum aggregation).
    exec::ThreadPool* pool = nullptr;
    /// Use the HIPR-style push-relabel solver instead of Dinic (results are
    /// identical; provided for fidelity runs and benchmarking).
    bool use_push_relabel = false;
    /// Run the flows on a Nagamochi–Ibaraki sparse certificate of the graph
    /// (graph/certificate.h) instead of the full edge set. Source selection,
    /// degree bounds and adjacency exclusion still come from the original
    /// graph, and the certificate order is chosen above every evaluated
    /// pair's degree cap, so every recorded κ is bit-identical to the full
    /// sweep — only the network the solver walks shrinks.
    bool use_certificate = false;
    /// Cross-snapshot pair-reuse hook (pair_reuse.h); nullptr = off. Pairs
    /// settled at their degree bound are offered with a disjoint-path
    /// witness; reused pairs skip the flow run entirely. Witness stores
    /// need the Dinic solver (ignored under use_push_relabel; lookups still
    /// apply). Not owned.
    PairReuseHook* reuse = nullptr;
};

struct ConnectivityResult {
    int n = 0;
    std::int64_t m = 0;
    int kappa_min = 0;            ///< κ(D): min over evaluated non-adjacent pairs
    double kappa_avg = 0.0;       ///< mean κ(v,w) over evaluated pairs
    std::uint64_t kappa_sum = 0;  ///< integer sum (deterministic aggregation)
    std::uint64_t pairs_evaluated = 0;
    /// Degree-bound fast path: pairs settled as κ = 0 without a flow run
    /// because min(out_degree(u), in_degree(v)) = 0. Counted in
    /// pairs_evaluated too — only the max-flow computation was skipped.
    std::uint64_t pairs_skipped = 0;
    /// Pairs settled at the degree bound (which is then the exact κ):
    /// either the seeded disjoint paths alone reached it — common-neighbour
    /// count or greedy length-5 packing, sometimes with no solver run at
    /// all — or the capped Dinic run stopped early on hitting it (skipping
    /// the final certifying BFS).
    std::uint64_t flows_capped = 0;
    /// Kernel counters, summed over all workers' workspaces: arcs restored
    /// by touched-arc undo logs, and how many of those undo passes did
    /// strictly less work than an O(m+n) full-capacity sweep. Both are
    /// per-pair deterministic, so the sums are thread-count independent.
    std::uint64_t arcs_touched = 0;
    std::uint64_t full_resets_avoided = 0;
    /// Peak flow-kernel arena: the shared CSR network plus every concurrent
    /// worker's workspace (residual caps, undo log, solver scratch).
    std::uint64_t arena_bytes = 0;
    /// Pairs settled from the pair-reuse hook's witness cache (no flow run;
    /// subset of pairs_evaluated). 0 unless options.reuse was set.
    std::uint64_t pairs_reused = 0;
    /// Certificate accounting (0 unless options.use_certificate): undirected
    /// symmetric-core edges kept — bounded by k·(n−1) by the NI forest
    /// decomposition — and the certificate build time in microseconds. The
    /// certificate digraph itself has ≤ 2·cert_edges_kept + (asymmetric)
    /// arcs.
    std::uint64_t cert_edges_kept = 0;
    std::uint64_t cert_build_us = 0;
    int sources_used = 0;
    bool complete = false;        ///< complete graph: κ = n−1 without flows
};

/// Computes κ(D) (exactly, or sampled per `options.sample_fraction`).
[[nodiscard]] ConnectivityResult vertex_connectivity(const graph::Digraph& g,
                                                     const ConnectivityOptions& options = {});

/// κ(v,w) for one non-adjacent pair (asserts non-adjacency and v ≠ w).
/// Builds a fresh Even transform per call — convenience only; batch callers
/// should use the reuse overload below.
[[nodiscard]] int pair_vertex_connectivity(const graph::Digraph& g, int v, int w);

/// κ(v,w) on a caller-supplied Even-transformed network (`even_net` must be
/// `even_transform(g)` with unit edge capacity) and workspace. The workspace
/// is reset on entry via its touched-arc undo log, so evaluating many pairs
/// against one network costs O(arcs touched) between pairs, not a rebuild.
[[nodiscard]] int pair_vertex_connectivity(const graph::Digraph& g,
                                           const FlowNetwork& even_net,
                                           FlowWorkspace& workspace, int v, int w);

/// Brute-force κ(v,w) by definition: the smallest set of other vertices whose
/// removal cuts every path v→w (exponential; test oracle for tiny graphs).
[[nodiscard]] int pair_vertex_connectivity_bruteforce(const graph::Digraph& g, int v,
                                                      int w);

}  // namespace kadsim::flow

#endif  // KADSIM_FLOW_VERTEX_CONNECTIVITY_H
